// bench_scale — the 64→1024-node scaling sweep (EXPERIMENTS.md Ext-R).
//
// For each node count the bench builds a full machine on the multi-level
// fat tree, runs a neighbor-exchange msg workload to completion, and
// reports three host-side curves:
//
//   scale_<N>_events_per_sec        simulation throughput during the run
//   scale_<N>_construct_nodes_per_sec
//                                   machine construction rate (catches a
//                                   construction path gone quadratic)
//   scale_<N>_nodes_per_gb          node density per GB of peak RSS
//                                   (catches per-node state regressing
//                                   from kilobytes back to megabytes)
//
// All three are higher-is-better, so the shared floor-style baseline
// check (--check_baseline=bench/baseline_scale.json, default tolerance
// 25%) gates regressions in time *and* space with one mechanism. This is
// a plain main, not a google-benchmark binary: every row is one
// deterministic run and the interesting outputs are the recorded curves,
// not iteration statistics.
//
// Flags: --quick (64/128 only — the CI scale-smoke lane), --json_out=F,
// --check_baseline=F, --tolerance=F.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "msg/endpoint.hpp"
#include "sys/machine.hpp"

namespace sv::bench {
namespace {

/// Peak resident set of this process in bytes (VmHWM). The sweep runs
/// smallest-to-largest, so the high-water mark after a row is dominated
/// by that row's own machine.
std::size_t peak_rss_bytes() {
  std::ifstream status("/proc/self/status");
  std::string word;
  while (status >> word) {
    if (word == "VmHWM:") {
      std::size_t kb = 0;
      status >> kb;
      return kb * 1024;
    }
  }
  return 0;
}

sys::Machine::Params scale_machine_params(std::size_t nodes) {
  sys::Machine::Params p;
  p.nodes = nodes;
  p.net = sys::Machine::NetKind::kFatTree;
  p.node.dram_size = 8ull * 1024 * 1024;
  p.node.scoma_size = 1ull * 1024 * 1024;
  p.node.numa_backing_size = 8ull * 1024 * 1024;
  return p;
}

struct Row {
  std::size_t nodes;
  double construct_sec;
  double run_sec;
  std::uint64_t events;
  std::size_t peak_rss;
  bool completed;
};

/// One sweep row: construct, run the neighbor-exchange msg workload
/// (every node sends `count` express messages to its right neighbor and
/// awaits the same number from its left), tear down, report.
Row run_row(std::size_t nodes, std::uint64_t count) {
  using Clock = std::chrono::steady_clock;
  Row row{};
  row.nodes = nodes;

  const auto t0 = Clock::now();
  sys::Machine machine(scale_machine_params(nodes));
  const auto t1 = Clock::now();
  row.construct_sec = std::chrono::duration<double>(t1 - t0).count();

  const auto map = machine.addr_map();
  std::vector<std::unique_ptr<msg::Endpoint>> eps;
  eps.reserve(nodes);
  for (sim::NodeId n = 0; n < machine.size(); ++n) {
    eps.push_back(std::make_unique<msg::Endpoint>(
        machine.node(n).ap(), machine.node(n).endpoint_config()));
  }
  std::vector<std::uint8_t> done(machine.size(), 0);
  for (sim::NodeId n = 0; n < machine.size(); ++n) {
    machine.node(n).ap().run(
        [](msg::Endpoint* ep, msg::AddressMap map_, sim::NodeId self,
           std::size_t n_nodes, std::uint64_t count_,
           std::uint8_t* flag) -> sim::Co<void> {
          std::vector<std::byte> payload(32);
          const auto right = static_cast<sim::NodeId>((self + 1) % n_nodes);
          for (std::uint64_t i = 0; i < count_; ++i) {
            co_await ep->send(map_.user0(right), payload);
          }
          for (std::uint64_t i = 0; i < count_; ++i) {
            (void)co_await ep->recv();
          }
          *flag = 1;
        }(eps[n].get(), map, n, nodes, count, &done[n]));
  }

  const auto all_done = [&done] {
    for (const auto f : done) {
      if (f == 0) {
        return false;
      }
    }
    return true;
  };
  const std::uint64_t events_before = machine.kernel().events_executed();
  const auto t2 = Clock::now();
  row.completed = sys::run_until(machine, all_done,
                                 machine.now() + 500 * sim::kMillisecond);
  const auto t3 = Clock::now();
  row.run_sec = std::chrono::duration<double>(t3 - t2).count();
  row.events = machine.kernel().events_executed() - events_before;
  row.peak_rss = peak_rss_bytes();
  return row;
}

int run_sweep() {
  const std::vector<std::size_t> counts =
      g_quick ? std::vector<std::size_t>{64, 128}
              : std::vector<std::size_t>{64, 128, 256, 512, 1024};
  std::printf("%8s %12s %12s %14s %12s %14s\n", "nodes", "construct_s",
              "run_s", "events/s", "peak_rss_mb", "nodes_per_gb");
  for (const std::size_t nodes : counts) {
    const Row row = run_row(nodes, /*count=*/4);
    if (!row.completed) {
      std::fprintf(stderr, "bench_scale: %zu-node run TIMED OUT\n", nodes);
      return 1;
    }
    const double events_per_sec =
        static_cast<double>(row.events) / (row.run_sec > 0 ? row.run_sec : 1);
    const double construct_rate =
        static_cast<double>(nodes) /
        (row.construct_sec > 0 ? row.construct_sec : 1e-9);
    const double nodes_per_gb =
        static_cast<double>(nodes) /
        (static_cast<double>(row.peak_rss) / (1024.0 * 1024.0 * 1024.0));
    std::printf("%8zu %12.3f %12.3f %14.3g %12.1f %14.1f\n", row.nodes,
                row.construct_sec, row.run_sec, events_per_sec,
                static_cast<double>(row.peak_rss) / (1024.0 * 1024.0),
                nodes_per_gb);
    const std::string prefix = "scale_" + std::to_string(nodes);
    record_kernel_result(prefix + "_events_per_sec", events_per_sec);
    record_kernel_result(prefix + "_construct_nodes_per_sec", construct_rate);
    record_kernel_result(prefix + "_nodes_per_gb", nodes_per_gb);
  }
  return finalize_kernel_results();
}

}  // namespace
}  // namespace sv::bench

int main(int argc, char** argv) {
  sv::bench::g_kernel_json_out = "BENCH_scale.json";
  sv::bench::parse_quick_flag(argc, argv);
  sv::bench::parse_kernel_json_flags(argc, argv);
  return sv::bench::run_sweep();
}

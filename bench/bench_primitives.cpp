// Ext-B (paper section 5): cost of the default communication mechanisms.
//
//   - one-way latency: Express (one uncached store / one uncached load),
//     Basic (compose + flush + pointer update), TagOn (+48/+80 bytes of
//     SRAM data appended by CTRL),
//   - round-trip (ping-pong) latency for Basic and Express,
//   - streaming throughput for Basic messages and for TagOn (which raises
//     the data moved per descriptor),
//   - DMA end-to-end latency (firmware + block engines).
//
// Expected shape: Express < Basic one-way latency; TagOn moves more bytes
// per descriptor at nearly the same descriptor cost.
#include <cstring>

#include "bench/bench_util.hpp"
#include "msg/dma.hpp"

namespace sv::bench {
namespace {

struct Rig {
  explicit Rig(std::size_t nodes = 2)
      : machine(default_machine_params(nodes)),
        ep0(machine.node(0).make_endpoint()),
        ep1(machine.node(1).make_endpoint()),
        map(machine.addr_map()) {}

  sim::Tick run_until_flag(bool* flag) {
    const sim::Tick t0 = machine.kernel().now();
    if (!sys::run_until(machine.kernel(), [=] { return *flag; },
                        t0 + 500 * sim::kMillisecond)) {
      return 0;
    }
    return machine.kernel().now() - t0;
  }

  sys::Machine machine;
  msg::Endpoint ep0, ep1;
  msg::AddressMap map;
};

void BM_OneWay_Express(benchmark::State& state) {
  Rig rig;
  for (auto _ : state) {
    bool done = false;
    rig.machine.node(0).ap().run(rig.ep0.send_express(
        static_cast<std::uint8_t>(rig.map.express(1)), 1, 0x12345678));
    rig.machine.node(1).ap().run(
        [](msg::Endpoint* ep, bool* d) -> sim::Co<void> {
          (void)co_await ep->recv_express();
          *d = true;
        }(&rig.ep1, &done));
    report_sim_time(state, rig.run_until_flag(&done));
  }
}

void BM_OneWay_Basic(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  Rig rig;
  std::vector<std::byte> payload(bytes);
  for (auto _ : state) {
    bool done = false;
    rig.machine.node(0).ap().run(
        rig.ep0.send(rig.map.user0(1), payload));
    rig.machine.node(1).ap().run(
        [](msg::Endpoint* ep, bool* d) -> sim::Co<void> {
          (void)co_await ep->recv();
          *d = true;
        }(&rig.ep1, &done));
    report_sim_time(state, rig.run_until_flag(&done));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(bytes * state.iterations()));
}

void BM_OneWay_TagOn(benchmark::State& state) {
  const bool large = state.range(0) != 0;
  Rig rig;
  std::vector<std::byte> inline_data(8);
  std::vector<std::byte> staged(large ? niu::kTagOnLargeBytes
                                      : niu::kTagOnSmallBytes);
  for (auto _ : state) {
    bool done = false;
    rig.machine.node(0).ap().run(
        [](msg::Endpoint* ep, std::uint16_t vdest,
           const std::vector<std::byte>* inl,
           const std::vector<std::byte>* stg, bool large_) -> sim::Co<void> {
          co_await ep->stage(ep->staging_base(), *stg);
          co_await ep->send_tagon(vdest, *inl, ep->staging_base(), large_);
        }(&rig.ep0, rig.map.user0(1), &inline_data, &staged, large));
    rig.machine.node(1).ap().run(
        [](msg::Endpoint* ep, bool* d) -> sim::Co<void> {
          (void)co_await ep->recv();
          *d = true;
        }(&rig.ep1, &done));
    report_sim_time(state, rig.run_until_flag(&done));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      (8 + staged.size()) * state.iterations()));
}

/// Interrupt-driven receive vs. the polled path: the interrupt adds ISR
/// entry/exit cost to the one-way latency but frees the aP while idle.
void BM_OneWay_Basic_Interrupt(benchmark::State& state) {
  Rig rig;
  std::vector<std::byte> payload(32);
  for (auto _ : state) {
    bool done = false;
    rig.machine.node(1).ap().run(
        [](msg::Endpoint* ep, bool* d) -> sim::Co<void> {
          (void)co_await ep->recv_interrupt();
          *d = true;
        }(&rig.ep1, &done));
    rig.machine.node(0).ap().run(
        rig.ep0.send(rig.map.user0(1), payload));
    report_sim_time(state, rig.run_until_flag(&done));
  }
}

void BM_PingPong_Basic(benchmark::State& state) {
  Rig rig;
  constexpr int kRounds = 20;
  for (auto _ : state) {
    bool done = false;
    rig.machine.node(0).ap().run(
        [](msg::Endpoint* ep, std::uint16_t peer, bool* d) -> sim::Co<void> {
          std::byte b[8] = {};
          for (int i = 0; i < kRounds; ++i) {
            co_await ep->send(peer, b);
            (void)co_await ep->recv();
          }
          *d = true;
        }(&rig.ep0, rig.map.user0(1), &done));
    rig.machine.node(1).ap().run(
        [](msg::Endpoint* ep, std::uint16_t peer) -> sim::Co<void> {
          std::byte b[8] = {};
          for (int i = 0; i < kRounds; ++i) {
            (void)co_await ep->recv();
            co_await ep->send(peer, b);
          }
        }(&rig.ep1, rig.map.user0(0)));
    report_sim_time(state, rig.run_until_flag(&done) / kRounds);
  }
  state.counters["rounds"] = kRounds;
}

void BM_PingPong_Express(benchmark::State& state) {
  Rig rig;
  constexpr int kRounds = 20;
  for (auto _ : state) {
    bool done = false;
    rig.machine.node(0).ap().run(
        [](msg::Endpoint* ep, std::uint8_t peer, bool* d) -> sim::Co<void> {
          for (int i = 0; i < kRounds; ++i) {
            co_await ep->send_express(peer, 0, 1);
            (void)co_await ep->recv_express();
          }
          *d = true;
        }(&rig.ep0, static_cast<std::uint8_t>(rig.map.express(1)), &done));
    rig.machine.node(1).ap().run(
        [](msg::Endpoint* ep, std::uint8_t peer) -> sim::Co<void> {
          for (int i = 0; i < kRounds; ++i) {
            (void)co_await ep->recv_express();
            co_await ep->send_express(peer, 0, 2);
          }
        }(&rig.ep1, static_cast<std::uint8_t>(rig.map.express(0))));
    report_sim_time(state, rig.run_until_flag(&done) / kRounds);
  }
  state.counters["rounds"] = kRounds;
}

void BM_Stream_Basic(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  Rig rig;
  constexpr int kCount = 100;
  std::vector<std::byte> payload(bytes);
  for (auto _ : state) {
    bool done = false;
    rig.machine.node(0).ap().run(
        [](msg::Endpoint* ep, std::uint16_t peer,
           const std::vector<std::byte>* p) -> sim::Co<void> {
          for (int i = 0; i < kCount; ++i) {
            co_await ep->send(peer, *p);
          }
        }(&rig.ep0, rig.map.user0(1), &payload));
    rig.machine.node(1).ap().run(
        [](msg::Endpoint* ep, bool* d) -> sim::Co<void> {
          for (int i = 0; i < kCount; ++i) {
            (void)co_await ep->recv();
          }
          *d = true;
        }(&rig.ep1, &done));
    report_sim_time(state, rig.run_until_flag(&done));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(bytes * kCount * state.iterations()));
}

void BM_Dma_EndToEnd(benchmark::State& state) {
  const auto len = static_cast<std::uint32_t>(state.range(0));
  Rig rig;
  for (auto _ : state) {
    bool done = false;
    rig.machine.node(0).ap().run(
        [](Rig* r, std::uint32_t n) -> sim::Co<void> {
          co_await msg::dma_write(r->ep0, r->map, 0, 1, 0x100000, 0x200000,
                                  n, msg::AddressMap::kUser0L, 1);
        }(&rig, len));
    rig.machine.node(1).ap().run(
        [](msg::Endpoint* ep, bool* d) -> sim::Co<void> {
          (void)co_await ep->recv();
          *d = true;
        }(&rig.ep1, &done));
    report_sim_time(state, rig.run_until_flag(&done));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(len * state.iterations()));
}

BENCHMARK(BM_OneWay_Express)->UseManualTime()->Iterations(3)->Unit(
    benchmark::kMicrosecond);
BENCHMARK(BM_OneWay_Basic)
    ->Arg(8)
    ->Arg(32)
    ->Arg(88)
    ->UseManualTime()
    ->Iterations(3)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_OneWay_TagOn)
    ->Arg(0)
    ->Arg(1)
    ->UseManualTime()
    ->Iterations(3)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_OneWay_Basic_Interrupt)
    ->UseManualTime()
    ->Iterations(3)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PingPong_Basic)->UseManualTime()->Iterations(2)->Unit(
    benchmark::kMicrosecond);
BENCHMARK(BM_PingPong_Express)->UseManualTime()->Iterations(2)->Unit(
    benchmark::kMicrosecond);
BENCHMARK(BM_Stream_Basic)
    ->Arg(8)
    ->Arg(88)
    ->UseManualTime()
    ->Iterations(2)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Dma_EndToEnd)
    ->Arg(4096)
    ->Arg(65536)
    ->UseManualTime()
    ->Iterations(2)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace sv::bench

BENCHMARK_MAIN();

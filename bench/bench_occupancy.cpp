// Ext-C (paper section 6): processor occupancy per block-transfer approach
// — the paper's qualitative claims made quantitative.
//
// Expected shape:
//   approach 1: sender/receiver aP occupancy dominates (they touch the
//               data and run the protocol); sP ~ 0.
//   approach 2: "a significant impact on sP occupancy" on both sides;
//               aP ~ 0 after the request message.
//   approach 3: "occupancy of both the aP and sP is minimal to nil".
//
// Counters report busy microseconds for each processor during one 16 KB
// transfer, plus occupancy fractions of the transfer latency.
#include "bench/bench_util.hpp"

namespace sv::bench {
namespace {

void BM_Occupancy(benchmark::State& state) {
  const int approach = static_cast<int>(state.range(0));
  const std::uint32_t len = 16384;

  sys::Machine machine(xfer_machine_params());
  xfer::BlockTransferHarness harness(machine);

  xfer::TransferResult last{};
  for (auto _ : state) {
    last = harness.run(approach, xfer_spec(len, approach >= 4));
    if (!last.ok) {
      state.SkipWithError("transfer failed verification");
      return;
    }
    report_sim_time(state, last.latency());
  }
  const auto us = [](sim::Tick t) { return static_cast<double>(t) / 1e6; };
  const double lat = us(last.latency());
  state.counters["tx_aP_us"] = us(last.sender_ap_busy);
  state.counters["rx_aP_us"] = us(last.receiver_ap_busy);
  state.counters["tx_sP_us"] = us(last.sender_sp_busy);
  state.counters["rx_sP_us"] = us(last.receiver_sp_busy);
  state.counters["tx_sP_occ"] =
      lat > 0 ? us(last.sender_sp_busy) / lat : 0.0;
  state.counters["tx_aP_occ"] =
      lat > 0 ? us(last.sender_ap_busy) / lat : 0.0;
  state.counters["approach"] = approach;
}

BENCHMARK(BM_Occupancy)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Arg(5)
    ->UseManualTime()
    ->Iterations(2)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace sv::bench

BENCHMARK_MAIN();

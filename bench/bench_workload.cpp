// Ext-K: mixed system workload — the paper's closing argument is that a
// real platform permits "system workload level studies", not single-
// program simulations. This bench measures what background load does to a
// foreground ping-pong when both share one NIU through protected queues:
//
//   - idle machine (baseline),
//   - concurrent DMA stream (block engines + remote command queue busy),
//   - concurrent S-COMA protocol traffic (sP + clsSRAM busy),
//   - both.
//
// The protected multi-queue design bounds the interference: the foreground
// never loses messages and its latency grows by contention only.
#include <cstring>

#include "bench/bench_util.hpp"
#include "msg/dma.hpp"
#include "shm/scoma_region.hpp"

namespace sv::bench {
namespace {

enum Load : int {
  kIdle = 0,
  kDma = 1,
  kScoma = 2,
  kBoth = 3,
};

void BM_Workload_PingPongUnderLoad(benchmark::State& state) {
  const int load = static_cast<int>(state.range(0));
  sys::Machine machine(default_machine_params(2));
  auto ep0 = machine.node(0).make_endpoint();
  auto ep1 = machine.node(1).make_endpoint();
  auto bg0 = machine.node(0).make_endpoint1();
  const auto map = machine.addr_map();

  bool stop = false;

  // Background DMA stream: back-to-back 8 KB pushes on the user1 queue.
  if (load & kDma) {
    machine.node(0).ap().run(
        [](msg::Endpoint* ep, msg::AddressMap map, bool* stop_) -> sim::Co<void> {
          std::uint32_t tag = 0x1000;
          while (!*stop_) {
            co_await msg::dma_write(*ep, map, 0, 1, 0x100000, 0x200000,
                                    8192, niu::kNoNotify, tag,
                                    /*sender_done_queue=*/
                                    msg::AddressMap::kUser1L);
            ++tag;
            (void)co_await ep->recv();  // sender-side completion
          }
        }(&bg0, map, &stop));
  }

  // Background S-COMA churn: node 1 ping-pongs line ownership with home 0.
  if (load & kScoma) {
    machine.node(1).ap().run(
        [](sys::Machine* m, bool* stop_) -> sim::Co<void> {
          shm::ScomaRegion sc(m->node(1).ap());
          std::uint32_t i = 0;
          while (!*stop_) {
            co_await sc.store<std::uint32_t>(0x40 * (1 + i % 16), i);
            ++i;
          }
        }(&machine, &stop));
  }

  // Let the background reach steady state.
  machine.kernel().run_until(machine.kernel().now() +
                             200 * sim::kMicrosecond);

  constexpr int kRounds = 30;
  for (auto _ : state) {
    bool done = false;
    machine.node(0).ap().run(
        [](msg::Endpoint* ep, std::uint16_t peer, bool* d) -> sim::Co<void> {
          std::byte b[8] = {};
          for (int i = 0; i < kRounds; ++i) {
            co_await ep->send(peer, b);
            (void)co_await ep->recv();
          }
          *d = true;
        }(&ep0, map.user0(1), &done));
    machine.node(1).ap().run(
        [](msg::Endpoint* ep, std::uint16_t peer) -> sim::Co<void> {
          std::byte b[8] = {};
          for (int i = 0; i < kRounds; ++i) {
            (void)co_await ep->recv();
            co_await ep->send(peer, b);
          }
        }(&ep1, map.user0(0)));
    const sim::Tick t0 = machine.kernel().now();
    if (!sys::run_until(machine.kernel(), [&] { return done; },
                        t0 + 500 * sim::kMillisecond)) {
      state.SkipWithError("foreground timed out under load");
      return;
    }
    report_sim_time(state, (machine.kernel().now() - t0) / kRounds);
  }
  stop = true;
  machine.kernel().run_until(machine.kernel().now() +
                             500 * sim::kMicrosecond);
  state.counters["load"] = load;
  state.counters["rx_dropped"] = static_cast<double>(
      machine.node(0).niu().ctrl().stats().rx_dropped.value() +
      machine.node(1).niu().ctrl().stats().rx_dropped.value());
}

BENCHMARK(BM_Workload_PingPongUnderLoad)
    ->Arg(kIdle)
    ->Arg(kDma)
    ->Arg(kScoma)
    ->Arg(kBoth)
    ->UseManualTime()
    ->Iterations(2)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace sv::bench

BENCHMARK_MAIN();

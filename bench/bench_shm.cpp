// Ext-F (paper section 5): shared-memory mechanism costs.
//
//   - S-COMA hit: once a line is resident in the local DRAM L3, access is
//     at local memory speed (the mechanism's whole point),
//   - S-COMA remote read/write miss: full firmware protocol round trip,
//     with the data grant executed by the requester's NIU hardware,
//   - NUMA remote read: forwarded to the sP, satisfied via kSupplyLoad,
//   - NUMA local read: firmware satisfies from local backing DRAM.
//
// Expected shape: scoma_hit << numa_local < numa_remote ~ scoma_miss; a
// re-read after a scoma miss is a hit, while every NUMA access pays the
// firmware toll again.
#include "bench/bench_util.hpp"
#include "shm/numa_region.hpp"
#include "shm/scoma_region.hpp"

namespace sv::bench {
namespace {

struct Timer {
  explicit Timer(sys::Machine& m) : machine(m) {}

  sim::Tick time(sim::NodeId node, sim::Co<void> co) {
    bool done = false;
    const sim::Tick t0 = machine.kernel().now();
    machine.node(node).ap().run(
        [](sim::Co<void> c, bool* d) -> sim::Co<void> {
          co_await std::move(c);
          *d = true;
        }(std::move(co), &done));
    sys::run_until(machine.kernel(), [&] { return done; },
                   t0 + 500 * sim::kMillisecond);
    return machine.kernel().now() - t0;
  }

  sys::Machine& machine;
};

void BM_ScomaHit(benchmark::State& state) {
  sys::Machine machine(default_machine_params(2));
  Timer timer(machine);
  shm::ScomaRegion sc(machine.node(1).ap());
  // Warm: fetch the line once (page 0x1000 homes on node 1... use an
  // offset homed on node 0 so node 1's access is a genuine remote line).
  (void)timer.time(1, [](shm::ScomaRegion* r) -> sim::Co<void> {
    (void)co_await r->load<std::uint32_t>(0x100);
  }(&sc));
  for (auto _ : state) {
    // Evict from the aP cache but keep the DRAM L3 copy: still a hit.
    machine.node(1).cache().purge_range(niu::kScomaBase + 0x100, 4);
    report_sim_time(
        state, timer.time(1, [](shm::ScomaRegion* r) -> sim::Co<void> {
          (void)co_await r->load<std::uint32_t>(0x100);
        }(&sc)));
  }
}

void BM_ScomaReadMiss(benchmark::State& state) {
  sys::Machine machine(default_machine_params(2));
  Timer timer(machine);
  shm::ScomaRegion sc(machine.node(1).ap());
  mem::Addr off = 0x2000;  // fresh line per iteration, homed on node 0
  for (auto _ : state) {
    report_sim_time(
        state,
        timer.time(1, [](shm::ScomaRegion* r, mem::Addr o) -> sim::Co<void> {
          (void)co_await r->load<std::uint32_t>(o);
        }(&sc, off)));
    off += mem::kLineBytes;
  }
  state.counters["grants"] = static_cast<double>(
      machine.node(0).scoma()->stats().grants.value());
}

void BM_ScomaWriteMiss(benchmark::State& state) {
  sys::Machine machine(default_machine_params(2));
  Timer timer(machine);
  shm::ScomaRegion sc(machine.node(1).ap());
  mem::Addr off = 0x8000;
  for (auto _ : state) {
    report_sim_time(
        state,
        timer.time(1, [](shm::ScomaRegion* r, mem::Addr o) -> sim::Co<void> {
          co_await r->store<std::uint32_t>(o, 1);
        }(&sc, off)));
    off += mem::kLineBytes;
  }
}

/// Ext-I ablation: the aBIU hardware miss send (paper section 5) versus
/// the default firmware-mediated miss path.
void BM_ScomaReadMissHwSend(benchmark::State& state) {
  sys::Machine machine(default_machine_params(2));
  for (sim::NodeId n = 0; n < machine.size(); ++n) {
    machine.node(n).scoma()->enable_hw_miss_send();
  }
  Timer timer(machine);
  shm::ScomaRegion sc(machine.node(1).ap());
  mem::Addr off = 0x2000;
  for (auto _ : state) {
    report_sim_time(
        state,
        timer.time(1, [](shm::ScomaRegion* r, mem::Addr o) -> sim::Co<void> {
          (void)co_await r->load<std::uint32_t>(o);
        }(&sc, off)));
    off += mem::kLineBytes;
  }
}

void BM_NumaLocalRead(benchmark::State& state) {
  sys::Machine machine(default_machine_params(2));
  Timer timer(machine);
  shm::NumaRegion numa(machine.node(0).ap());
  for (auto _ : state) {
    report_sim_time(
        state, timer.time(0, [](shm::NumaRegion* r) -> sim::Co<void> {
          (void)co_await r->load<std::uint32_t>(0x40);  // home: node 0
        }(&numa)));
  }
}

void BM_NumaRemoteRead(benchmark::State& state) {
  sys::Machine machine(default_machine_params(2));
  Timer timer(machine);
  shm::NumaRegion numa(machine.node(0).ap());
  for (auto _ : state) {
    report_sim_time(
        state, timer.time(0, [](shm::NumaRegion* r) -> sim::Co<void> {
          (void)co_await r->load<std::uint32_t>(4096 + 0x40);  // node 1
        }(&numa)));
  }
}

void BM_NumaRemoteWrite(benchmark::State& state) {
  sys::Machine machine(default_machine_params(2));
  Timer timer(machine);
  shm::NumaRegion numa(machine.node(0).ap());
  for (auto _ : state) {
    report_sim_time(
        state, timer.time(0, [](shm::NumaRegion* r) -> sim::Co<void> {
          co_await r->store<std::uint32_t>(4096 + 0x80, 7);  // posted
        }(&numa)));
  }
}

BENCHMARK(BM_ScomaHit)->UseManualTime()->Iterations(3)->Unit(
    benchmark::kMicrosecond);
BENCHMARK(BM_ScomaReadMiss)->UseManualTime()->Iterations(3)->Unit(
    benchmark::kMicrosecond);
BENCHMARK(BM_ScomaWriteMiss)->UseManualTime()->Iterations(3)->Unit(
    benchmark::kMicrosecond);
BENCHMARK(BM_ScomaReadMissHwSend)->UseManualTime()->Iterations(3)->Unit(
    benchmark::kMicrosecond);
BENCHMARK(BM_NumaLocalRead)->UseManualTime()->Iterations(3)->Unit(
    benchmark::kMicrosecond);
BENCHMARK(BM_NumaRemoteRead)->UseManualTime()->Iterations(3)->Unit(
    benchmark::kMicrosecond);
BENCHMARK(BM_NumaRemoteWrite)->UseManualTime()->Iterations(3)->Unit(
    benchmark::kMicrosecond);

}  // namespace
}  // namespace sv::bench

BENCHMARK_MAIN();

// Shared benchmark plumbing.
//
// All benches report *simulated* time: each measurement runs the cycle-level
// machine and feeds the simulated duration to google-benchmark through
// SetIterationTime (UseManualTime), so the "Time" column of every row is
// simulated latency, and bytes_per_second is simulated bandwidth. Runs are
// deterministic; one iteration per row is meaningful.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "fault/fault.hpp"
#include "sys/experiment.hpp"
#include "trace/chrome_sink.hpp"
#include "xfer/approaches.hpp"

namespace sv::bench {

inline constexpr double kPsToSec = 1e-12;

/// Trace output path from --trace=FILE; empty = tracing off (the default,
/// which costs nothing on the simulation's instrumented paths).
inline std::string g_trace_file;  // NOLINT(misc-definitions-in-headers)

/// Fault plan from --fault_* flags; all-zero rates (the default) mean no
/// injector is created and the run is bit-identical to a fault-free build.
inline fault::Plan g_fault_plan;  // NOLINT(misc-definitions-in-headers)

/// Worker threads from --threads=N; 0 (the default) keeps the classic
/// sequential machine. Honored by benches that build partition-safe
/// machines via parallel_machine_params (bench_parallel); benches that
/// drive machine.kernel() directly stay sequential regardless.
inline unsigned g_threads = 0;  // NOLINT(misc-definitions-in-headers)

/// --quick from argv: benches that honor it (fig4) register a reduced
/// sweep, sized for the CI perf-smoke job rather than a full figure.
inline bool g_quick = false;  // NOLINT(misc-definitions-in-headers)

/// Strip a leading --quick from argv. Call before benchmark::Initialize,
/// which rejects flags it does not know.
inline void parse_quick_flag(int& argc, char** argv) {
  int w = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--quick") {
      g_quick = true;
    } else {
      argv[w++] = argv[i];
    }
  }
  argc = w;
}

/// Strip a leading --threads=N from argv. Call before
/// benchmark::Initialize, which rejects flags it does not know.
inline void parse_threads_flag(int& argc, char** argv) {
  int w = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    constexpr std::string_view kFlag = "--threads=";
    if (arg.substr(0, kFlag.size()) == kFlag) {
      g_threads = static_cast<unsigned>(
          std::strtoul(std::string(arg.substr(kFlag.size())).c_str(),
                       nullptr, 10));
    } else {
      argv[w++] = argv[i];
    }
  }
  argc = w;
}

/// Strip a leading --trace=FILE from argv. Call before
/// benchmark::Initialize, which rejects flags it does not know.
inline void parse_trace_flag(int& argc, char** argv) {
  int w = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    constexpr std::string_view kFlag = "--trace=";
    if (arg.substr(0, kFlag.size()) == kFlag) {
      g_trace_file = std::string(arg.substr(kFlag.size()));
    } else {
      argv[w++] = argv[i];
    }
  }
  argc = w;
}

/// Strip --fault_drop=P, --fault_corrupt=P and --fault_seed=N (P in [0,1])
/// from argv into g_fault_plan. Call before benchmark::Initialize.
inline void parse_fault_flags(int& argc, char** argv) {
  const auto eat = [](std::string_view arg, std::string_view flag,
                      double* out) {
    if (arg.substr(0, flag.size()) != flag) {
      return false;
    }
    *out = std::strtod(std::string(arg.substr(flag.size())).c_str(), nullptr);
    return true;
  };
  int w = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    double v = 0.0;
    if (eat(arg, "--fault_drop=", &v)) {
      g_fault_plan.drop_rate = v;
    } else if (eat(arg, "--fault_corrupt=", &v)) {
      g_fault_plan.corrupt_rate = v;
    } else if (eat(arg, "--fault_seed=", &v)) {
      g_fault_plan.seed = static_cast<std::uint64_t>(v);
    } else {
      argv[w++] = argv[i];
    }
  }
  argc = w;
}

inline void maybe_enable_tracing(sys::Machine& machine) {
  if (!g_trace_file.empty()) {
    machine.enable_tracing();
  }
}

/// Write the machine's trace to the --trace file. Benches build a fresh
/// machine per benchmark case, so the last case's trace wins.
inline void maybe_write_trace(sys::Machine& machine) {
  if (!g_trace_file.empty() && machine.tracer() != nullptr) {
    trace::write_chrome_trace_file(
        *machine.tracer(), g_trace_file,
        trace::ChromeWriteOptions{machine.kernel().now()});
  }
}

inline sys::Machine::Params default_machine_params(std::size_t nodes = 2) {
  sys::Machine::Params p;
  p.nodes = nodes;
  p.node.dram_size = 16ull * 1024 * 1024;
  p.node.scoma_size = 2ull * 1024 * 1024;
  p.node.numa_backing_size = 16ull * 1024 * 1024;
  p.fault = g_fault_plan;
  return p;
}

/// Machine for partition-safe multi-node benches: ideal network (the only
/// partitionable fabric) with `threads` worker domains — pass
/// bench::g_threads to honor the --threads flag. The link latency is the
/// epoch length (lookahead) in partitioned mode; a generous 4 us keeps the
/// per-epoch barrier cost amortized so the bench measures simulation work,
/// not synchronization. Sequential rows use the same latency, so the
/// self-relative comparison is apples-to-apples.
inline sys::Machine::Params parallel_machine_params(std::size_t nodes,
                                                    unsigned threads) {
  auto p = default_machine_params(nodes);
  p.net = sys::Machine::NetKind::kIdeal;
  p.ideal_latency = 16 * sim::kMicrosecond;
  p.threads = threads;
  return p;
}

/// Machine configured for the block-transfer experiments (approaches 4/5
/// manage cls state themselves, so the S-COMA protocol engine is off).
inline sys::Machine::Params xfer_machine_params() {
  auto p = default_machine_params(2);
  p.node.enable_scoma = false;
  return p;
}

inline xfer::TransferSpec xfer_spec(std::uint32_t len, bool scoma_dst) {
  xfer::TransferSpec s;
  s.sender = 0;
  s.receiver = 1;
  s.src = 0x0010'0000;
  s.dst = scoma_dst ? niu::kScomaBase + 0x8000 : 0x0040'0000;
  s.len = len;
  return s;
}

/// Report a simulated duration for this benchmark iteration.
inline void report_sim_time(benchmark::State& state, sim::Tick ps) {
  state.SetIterationTime(static_cast<double>(ps) * kPsToSec);
}

// ---------------------------------------------------------------------------
// Kernel-bench result tracking: a flat {case: events_per_sec} JSON written
// after the run (BENCH_kernel.json by default) so the hot-path perf
// trajectory is recorded across PRs, plus an optional baseline check that
// turns a silent regression into a CI failure.
// ---------------------------------------------------------------------------

struct KernelResult {
  std::string name;
  double events_per_sec = 0.0;
};

inline std::vector<KernelResult>& kernel_results() {
  static std::vector<KernelResult> results;
  return results;
}

inline std::string g_kernel_json_out =  // NOLINT(misc-definitions-in-headers)
    "BENCH_kernel.json";
inline std::string g_kernel_baseline;   // NOLINT(misc-definitions-in-headers)
inline double g_kernel_tolerance = 0.25;  // NOLINT(misc-definitions-in-headers)

/// Record one kernel-bench case's measured host throughput. The framework
/// may run a case more than once (iteration-count estimation); the last —
/// longest, most reliable — run wins.
inline void record_kernel_result(std::string name, double events_per_sec) {
  for (auto& r : kernel_results()) {
    if (r.name == name) {
      r.events_per_sec = events_per_sec;
      return;
    }
  }
  kernel_results().push_back({std::move(name), events_per_sec});
}

/// Strip --json_out=FILE, --check_baseline=FILE and --tolerance=F from
/// argv. Call before benchmark::Initialize.
inline void parse_kernel_json_flags(int& argc, char** argv) {
  const auto eat = [](std::string_view arg, std::string_view flag,
                      std::string* out) {
    if (arg.substr(0, flag.size()) != flag) {
      return false;
    }
    *out = std::string(arg.substr(flag.size()));
    return true;
  };
  int w = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    std::string v;
    if (eat(arg, "--json_out=", &v)) {
      g_kernel_json_out = v;
    } else if (eat(arg, "--check_baseline=", &v)) {
      g_kernel_baseline = v;
    } else if (eat(arg, "--tolerance=", &v)) {
      g_kernel_tolerance = std::strtod(v.c_str(), nullptr);
    } else {
      argv[w++] = argv[i];
    }
  }
  argc = w;
}

/// Parse the flat {"case": number, ...} JSON this header itself writes.
/// Deliberately minimal: it only needs to round-trip our own output.
inline std::vector<KernelResult> read_kernel_json(const std::string& path) {
  std::vector<KernelResult> out;
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  std::size_t pos = 0;
  while ((pos = text.find('"', pos)) != std::string::npos) {
    const std::size_t end = text.find('"', pos + 1);
    if (end == std::string::npos) {
      break;
    }
    const std::string key = text.substr(pos + 1, end - pos - 1);
    const std::size_t colon = text.find(':', end);
    if (colon == std::string::npos) {
      break;
    }
    out.push_back({key, std::strtod(text.c_str() + colon + 1, nullptr)});
    pos = text.find(',', colon);
    if (pos == std::string::npos) {
      break;
    }
  }
  return out;
}

/// Write BENCH_kernel.json and, when --check_baseline was given, compare
/// against it. Returns a process exit code (non-zero on regression).
inline int finalize_kernel_results() {
  const auto& results = kernel_results();
  if (!g_kernel_json_out.empty()) {
    std::ofstream out(g_kernel_json_out);
    out << "{\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      out << "  \"" << results[i].name << "\": " << std::fixed
          << results[i].events_per_sec << (i + 1 < results.size() ? "," : "")
          << "\n";
    }
    out << "}\n";
  }
  if (g_kernel_baseline.empty()) {
    return 0;
  }
  const auto baseline = read_kernel_json(g_kernel_baseline);
  if (baseline.empty()) {
    std::fprintf(stderr, "bench_kernel: baseline %s missing or empty\n",
                 g_kernel_baseline.c_str());
    return 1;
  }
  int rc = 0;
  for (const auto& b : baseline) {
    for (const auto& r : results) {
      if (r.name != b.name) {
        continue;
      }
      const double floor = b.events_per_sec * (1.0 - g_kernel_tolerance);
      if (r.events_per_sec < floor) {
        std::fprintf(stderr,
                     "bench_kernel: REGRESSION %s: %.3g events/s < floor "
                     "%.3g (baseline %.3g, tolerance %g)\n",
                     r.name.c_str(), r.events_per_sec, floor,
                     b.events_per_sec, g_kernel_tolerance);
        rc = 1;
      } else {
        std::fprintf(stderr, "bench_kernel: ok %s: %.3g events/s (>= %.3g)\n",
                     r.name.c_str(), r.events_per_sec, floor);
      }
    }
  }
  return rc;
}

}  // namespace sv::bench

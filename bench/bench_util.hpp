// Shared benchmark plumbing.
//
// All benches report *simulated* time: each measurement runs the cycle-level
// machine and feeds the simulated duration to google-benchmark through
// SetIterationTime (UseManualTime), so the "Time" column of every row is
// simulated latency, and bytes_per_second is simulated bandwidth. Runs are
// deterministic; one iteration per row is meaningful.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <string_view>

#include "fault/fault.hpp"
#include "sys/experiment.hpp"
#include "trace/chrome_sink.hpp"
#include "xfer/approaches.hpp"

namespace sv::bench {

inline constexpr double kPsToSec = 1e-12;

/// Trace output path from --trace=FILE; empty = tracing off (the default,
/// which costs nothing on the simulation's instrumented paths).
inline std::string g_trace_file;  // NOLINT(misc-definitions-in-headers)

/// Fault plan from --fault_* flags; all-zero rates (the default) mean no
/// injector is created and the run is bit-identical to a fault-free build.
inline fault::Plan g_fault_plan;  // NOLINT(misc-definitions-in-headers)

/// Worker threads from --threads=N; 0 (the default) keeps the classic
/// sequential machine. Honored by benches that build partition-safe
/// machines via parallel_machine_params (bench_parallel); benches that
/// drive machine.kernel() directly stay sequential regardless.
inline unsigned g_threads = 0;  // NOLINT(misc-definitions-in-headers)

/// Strip a leading --threads=N from argv. Call before
/// benchmark::Initialize, which rejects flags it does not know.
inline void parse_threads_flag(int& argc, char** argv) {
  int w = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    constexpr std::string_view kFlag = "--threads=";
    if (arg.substr(0, kFlag.size()) == kFlag) {
      g_threads = static_cast<unsigned>(
          std::strtoul(std::string(arg.substr(kFlag.size())).c_str(),
                       nullptr, 10));
    } else {
      argv[w++] = argv[i];
    }
  }
  argc = w;
}

/// Strip a leading --trace=FILE from argv. Call before
/// benchmark::Initialize, which rejects flags it does not know.
inline void parse_trace_flag(int& argc, char** argv) {
  int w = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    constexpr std::string_view kFlag = "--trace=";
    if (arg.substr(0, kFlag.size()) == kFlag) {
      g_trace_file = std::string(arg.substr(kFlag.size()));
    } else {
      argv[w++] = argv[i];
    }
  }
  argc = w;
}

/// Strip --fault_drop=P, --fault_corrupt=P and --fault_seed=N (P in [0,1])
/// from argv into g_fault_plan. Call before benchmark::Initialize.
inline void parse_fault_flags(int& argc, char** argv) {
  const auto eat = [](std::string_view arg, std::string_view flag,
                      double* out) {
    if (arg.substr(0, flag.size()) != flag) {
      return false;
    }
    *out = std::strtod(std::string(arg.substr(flag.size())).c_str(), nullptr);
    return true;
  };
  int w = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    double v = 0.0;
    if (eat(arg, "--fault_drop=", &v)) {
      g_fault_plan.drop_rate = v;
    } else if (eat(arg, "--fault_corrupt=", &v)) {
      g_fault_plan.corrupt_rate = v;
    } else if (eat(arg, "--fault_seed=", &v)) {
      g_fault_plan.seed = static_cast<std::uint64_t>(v);
    } else {
      argv[w++] = argv[i];
    }
  }
  argc = w;
}

inline void maybe_enable_tracing(sys::Machine& machine) {
  if (!g_trace_file.empty()) {
    machine.enable_tracing();
  }
}

/// Write the machine's trace to the --trace file. Benches build a fresh
/// machine per benchmark case, so the last case's trace wins.
inline void maybe_write_trace(sys::Machine& machine) {
  if (!g_trace_file.empty() && machine.tracer() != nullptr) {
    trace::write_chrome_trace_file(
        *machine.tracer(), g_trace_file,
        trace::ChromeWriteOptions{machine.kernel().now()});
  }
}

inline sys::Machine::Params default_machine_params(std::size_t nodes = 2) {
  sys::Machine::Params p;
  p.nodes = nodes;
  p.node.dram_size = 16ull * 1024 * 1024;
  p.node.scoma_size = 2ull * 1024 * 1024;
  p.node.numa_backing_size = 16ull * 1024 * 1024;
  p.fault = g_fault_plan;
  return p;
}

/// Machine for partition-safe multi-node benches: ideal network (the only
/// partitionable fabric) with `threads` worker domains — pass
/// bench::g_threads to honor the --threads flag. The link latency is the
/// epoch length (lookahead) in partitioned mode; a generous 4 us keeps the
/// per-epoch barrier cost amortized so the bench measures simulation work,
/// not synchronization. Sequential rows use the same latency, so the
/// self-relative comparison is apples-to-apples.
inline sys::Machine::Params parallel_machine_params(std::size_t nodes,
                                                    unsigned threads) {
  auto p = default_machine_params(nodes);
  p.net = sys::Machine::NetKind::kIdeal;
  p.ideal_latency = 16 * sim::kMicrosecond;
  p.threads = threads;
  return p;
}

/// Machine configured for the block-transfer experiments (approaches 4/5
/// manage cls state themselves, so the S-COMA protocol engine is off).
inline sys::Machine::Params xfer_machine_params() {
  auto p = default_machine_params(2);
  p.node.enable_scoma = false;
  return p;
}

inline xfer::TransferSpec xfer_spec(std::uint32_t len, bool scoma_dst) {
  xfer::TransferSpec s;
  s.sender = 0;
  s.receiver = 1;
  s.src = 0x0010'0000;
  s.dst = scoma_dst ? niu::kScomaBase + 0x8000 : 0x0040'0000;
  s.len = len;
  return s;
}

/// Report a simulated duration for this benchmark iteration.
inline void report_sim_time(benchmark::State& state, sim::Tick ps) {
  state.SetIterationTime(static_cast<double>(ps) * kPsToSec);
}

}  // namespace sv::bench

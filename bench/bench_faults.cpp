// Delivered bandwidth under injected packet loss: a reliable n0 -> n1
// stream over the fat tree, swept over the link drop rate (argument in
// permille: 0, 10, 50, 100 = 0%, 1%, 5%, 10%).
//
// Expected shape: delivered payload bandwidth decreases monotonically as
// the drop rate rises — every lost DATA or ACK frame costs at least one
// retransmit timeout or NACK round-trip, and go-back-N resends the whole
// window behind a loss.
//
// The "Time" column is simulated transfer time (UseManualTime).
#include <numeric>

#include "bench/bench_util.hpp"
#include "msg/reliable.hpp"

namespace sv::bench {
namespace {

constexpr std::uint64_t kPayloads = 400;
constexpr std::size_t kBytes = msg::ReliableChannel::kMaxPayload;  // 72

void BM_Faults_Bandwidth(benchmark::State& state) {
  const double drop_rate = static_cast<double>(state.range(0)) / 1000.0;

  sim::Tick total = 0;
  std::uint64_t runs = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t dropped = 0;
  for (auto _ : state) {
    auto mp = default_machine_params(2);
    mp.fault.drop_rate = drop_rate;
    sys::Machine machine(mp);
    maybe_enable_tracing(machine);
    const auto map = machine.addr_map();

    auto ep0 = machine.node(0).make_endpoint();
    auto ep1 = machine.node(1).make_endpoint();
    msg::ReliableChannel tx(ep0, map, 0);
    msg::ReliableChannel rx(ep1, map, 1);
    tx.start();
    rx.start();

    machine.node(0).ap().run(
        [](msg::ReliableChannel* ch) -> sim::Co<void> {
          std::vector<std::byte> payload(kBytes);
          for (std::uint64_t i = 0; i < kPayloads; ++i) {
            for (std::size_t b = 0; b < payload.size(); ++b) {
              payload[b] = static_cast<std::byte>(i + b);
            }
            co_await ch->send(1, payload);
          }
        }(&tx));
    std::uint64_t got = 0;
    machine.node(1).ap().run(
        [](msg::ReliableChannel* ch, std::uint64_t* g) -> sim::Co<void> {
          for (std::uint64_t i = 0; i < kPayloads; ++i) {
            (void)co_await ch->recv(0);
            ++*g;
          }
        }(&rx, &got));

    const sim::Tick t0 = machine.kernel().now();
    const bool ok = sys::run_until(
        machine.kernel(),
        [&] { return got == kPayloads && tx.unacked() == 0; },
        t0 + 2000 * sim::kMillisecond);
    if (!ok) {
      state.SkipWithError("reliable stream did not complete");
      return;
    }
    const sim::Tick elapsed = machine.kernel().now() - t0;
    report_sim_time(state, elapsed);
    total += elapsed;
    ++runs;
    retransmits += tx.stats().retransmitted.value();
    dropped += machine.network().audit().dropped;
    maybe_write_trace(machine);
  }
  state.counters["drop_pct"] = static_cast<double>(state.range(0)) / 10.0;
  state.counters["retransmits"] =
      static_cast<double>(retransmits) / static_cast<double>(runs);
  state.counters["pkts_dropped"] =
      static_cast<double>(dropped) / static_cast<double>(runs);
  state.counters["mbps"] =
      static_cast<double>(kPayloads * kBytes * runs) /
      (static_cast<double>(total) / 1e6);
  state.SetBytesProcessed(
      static_cast<std::int64_t>(kPayloads * kBytes * runs));
}

BENCHMARK(BM_Faults_Bandwidth)
    ->Arg(0)
    ->Arg(10)
    ->Arg(50)
    ->Arg(100)
    ->UseManualTime()
    ->Iterations(3)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace sv::bench

int main(int argc, char** argv) {
  sv::bench::parse_trace_flag(argc, argv);
  sv::bench::parse_fault_flags(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

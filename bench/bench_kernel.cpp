// Kernel hot-path microbenchmark: raw schedule/dispatch throughput.
//
// Unlike the machine-level benches (which report *simulated* time), this
// bench reports **host** performance: events per host second and host
// nanoseconds per event. It is the ceiling on every other experiment —
// every simulated quantity is produced by pushing events through
// sim::Kernel, so this number is what "as fast as the hardware allows"
// means for the simulator itself.
//
// Cases:
//   ChainNear     self-rescheduling tickers with small deltas (timing-wheel
//                 territory: the steady-state shape of coroutine wakeups)
//   ChainFar      deltas beyond the wheel horizon (binary-heap territory)
//   ChainMixed    half near / half far
//   Burst         bulk schedule of N events, then drain (push/pop bound)
//   MailboxPosts  cross-domain post() + injection + dispatch
//
// Results are recorded into BENCH_kernel.json (override with
// --json_out=FILE) so the perf trajectory is tracked across PRs, and
// --check_baseline=FILE fails the run on a >tolerance regression against a
// checked-in baseline (see bench/baseline_kernel.json and the CI
// perf-smoke job).
#include <chrono>
#include <cstdint>

#include "bench/bench_util.hpp"
#include "sim/kernel.hpp"

namespace sv::bench {
namespace {

using Clock = std::chrono::steady_clock;

double elapsed_sec(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Deterministic delta stream (xorshift64*), so every run schedules the
/// same event pattern.
struct Rng {
  std::uint64_t s = 0x9E3779B97F4A7C15ull;
  std::uint64_t next() {
    s ^= s >> 12;
    s ^= s << 25;
    s ^= s >> 27;
    return s * 0x2545F4914F6CDD1Dull;
  }
};

/// A self-rescheduling event: the steady-state shape of simulation work
/// (coroutine wakeups that immediately schedule the next one). The functor
/// is small enough to live inline in the event queue's callable storage.
struct Ticker {
  sim::Kernel* kernel;
  std::uint64_t remaining;
  sim::Tick delta;

  void operator()() {
    if (remaining-- > 1) {
      kernel->schedule(delta, Ticker{*this});
    }
  }
};

constexpr std::uint64_t kChainEvents = 1 << 20;  // events per iteration
constexpr int kChains = 64;

/// Run `chains` interleaved tickers for ~kChainEvents total events, with
/// per-chain deltas drawn from [lo, hi). Returns host seconds.
double run_chains(sim::Tick lo, sim::Tick hi, sim::Tick far_every) {
  sim::Kernel k;
  Rng rng;
  const std::uint64_t per_chain = kChainEvents / kChains;
  for (int c = 0; c < kChains; ++c) {
    sim::Tick delta = lo + static_cast<sim::Tick>(rng.next() % (hi - lo));
    if (far_every != 0 && c % 2 == 1) {
      delta += far_every;  // alternate chains live beyond the wheel horizon
    }
    k.schedule(delta, Ticker{&k, per_chain, delta});
  }
  const auto t0 = Clock::now();
  k.run();
  return elapsed_sec(t0, Clock::now());
}

void finish(benchmark::State& state, const char* name, double host_sec,
            std::uint64_t events) {
  const double total_sec = host_sec;
  const double evps = static_cast<double>(events) / total_sec;
  state.counters["events/s"] = evps;
  state.counters["ns/event"] = 1e9 * total_sec / static_cast<double>(events);
  record_kernel_result(name, evps);
}

void BM_Kernel_ChainNear(benchmark::State& state) {
  double sec = 0.0;
  std::uint64_t events = 0;
  for (auto _ : state) {
    sec += run_chains(1, 1000, 0);
    events += kChainEvents;
  }
  finish(state, "ChainNear", sec, events);
}
BENCHMARK(BM_Kernel_ChainNear);

void BM_Kernel_ChainFar(benchmark::State& state) {
  double sec = 0.0;
  std::uint64_t events = 0;
  for (auto _ : state) {
    sec += run_chains(8192, 65536, 0);
    events += kChainEvents;
  }
  finish(state, "ChainFar", sec, events);
}
BENCHMARK(BM_Kernel_ChainFar);

void BM_Kernel_ChainMixed(benchmark::State& state) {
  double sec = 0.0;
  std::uint64_t events = 0;
  for (auto _ : state) {
    sec += run_chains(1, 1000, 16384);
    events += kChainEvents;
  }
  finish(state, "ChainMixed", sec, events);
}
BENCHMARK(BM_Kernel_ChainMixed);

void BM_Kernel_Burst(benchmark::State& state) {
  constexpr std::uint64_t kBurst = 1 << 14;
  constexpr int kRounds = 64;
  double sec = 0.0;
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::Kernel k;
    Rng rng;
    const auto t0 = Clock::now();
    for (int r = 0; r < kRounds; ++r) {
      const sim::Tick base = k.now();
      for (std::uint64_t i = 0; i < kBurst; ++i) {
        k.schedule(1 + static_cast<sim::Tick>(rng.next() % 2048), [] {});
      }
      k.run_until(base + 4096);
      k.run();
    }
    sec += elapsed_sec(t0, Clock::now());
    events += kBurst * kRounds;
  }
  finish(state, "Burst", sec, events);
}
BENCHMARK(BM_Kernel_Burst);

void BM_Kernel_MailboxPosts(benchmark::State& state) {
  constexpr std::uint64_t kPosts = 1 << 16;
  constexpr int kRounds = 8;
  double sec = 0.0;
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::Kernel k;
    const auto t0 = Clock::now();
    for (int r = 0; r < kRounds; ++r) {
      const sim::Tick base = k.now() + 1;
      for (std::uint64_t i = 0; i < kPosts; ++i) {
        // Two sources racing into the same ticks: exercises the (tick,
        // src, seq) injection rule, not just the queue.
        k.post(base + i / 2, /*src=*/static_cast<std::uint32_t>(i % 2),
               /*seq=*/i, [] {});
      }
      k.run();
    }
    sec += elapsed_sec(t0, Clock::now());
    events += kPosts * kRounds;
  }
  finish(state, "MailboxPosts", sec, events);
}
BENCHMARK(BM_Kernel_MailboxPosts);

}  // namespace
}  // namespace sv::bench

int main(int argc, char** argv) {
  sv::bench::parse_kernel_json_flags(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return sv::bench::finalize_kernel_results();
}

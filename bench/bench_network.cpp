// Ext-G: Arctic fat-tree substrate characterization.
//
//   - per-hop latency: one packet across 1-hop and 3-hop paths,
//   - link bandwidth: a saturating stream between two nodes (the 160
//     MB/s/direction wire limit, minus header overhead),
//   - priority isolation: high-priority transit time with and without a
//     low-priority background flood sharing the path,
//   - bisection scaling: all-to-all on 4/16-node trees.
#include <cstring>

#include "bench/bench_util.hpp"
#include "net/fat_tree.hpp"

namespace sv::bench {
namespace {

struct NetRig {
  explicit NetRig(std::size_t nodes, unsigned radix = 4) {
    net::FatTreeNetwork::Params p;
    p.nodes = nodes;
    p.radix = radix;
    net = std::make_unique<net::FatTreeNetwork>(kernel, "net", p);
    arrivals.resize(nodes);
    for (sim::NodeId n = 0; n < nodes; ++n) {
      net->set_endpoint(n, [this, n](net::Packet&& pkt) {
        ++arrivals[n];
        last_arrival = kernel.now();
        if (pkt.priority == net::kPriorityHigh) {
          last_high_arrival = kernel.now();
        }
        net->consume_done(n, pkt.priority);
      });
    }
  }

  net::Packet packet(sim::NodeId src, sim::NodeId dst, std::size_t bytes,
                     std::uint8_t prio = net::kPriorityLow) {
    net::Packet p;
    p.src = src;
    p.dest = dst;
    p.dest_queue = 1;
    p.priority = prio;
    p.payload.resize(bytes);
    return p;
  }

  sim::Kernel kernel;
  std::unique_ptr<net::FatTreeNetwork> net;
  std::vector<std::uint64_t> arrivals;
  sim::Tick last_arrival = 0;
  sim::Tick last_high_arrival = 0;
};

void BM_Net_OneHopLatency(benchmark::State& state) {
  NetRig rig(4);
  for (auto _ : state) {
    const sim::Tick t0 = rig.kernel.now();
    const auto before = rig.arrivals[1];
    sim::spawn(rig.net->inject(rig.packet(0, 1, 88)));
    sys::run_until(rig.kernel, [&] { return rig.arrivals[1] > before; },
                   t0 + sim::kMillisecond);
    report_sim_time(state, rig.last_arrival - t0);
  }
  state.counters["hops"] = rig.net->hops(0, 1);
}

void BM_Net_ThreeHopLatency(benchmark::State& state) {
  NetRig rig(16);
  for (auto _ : state) {
    const sim::Tick t0 = rig.kernel.now();
    const auto before = rig.arrivals[15];
    sim::spawn(rig.net->inject(rig.packet(0, 15, 88)));
    sys::run_until(rig.kernel, [&] { return rig.arrivals[15] > before; },
                   t0 + sim::kMillisecond);
    report_sim_time(state, rig.last_arrival - t0);
  }
  state.counters["hops"] = rig.net->hops(0, 15);
}

void BM_Net_LinkBandwidth(benchmark::State& state) {
  constexpr int kPackets = 500;
  constexpr std::size_t kBytes = 88;
  for (auto _ : state) {
    NetRig rig(4);
    const sim::Tick t0 = rig.kernel.now();
    sim::spawn([](NetRig* r) -> sim::Co<void> {
      for (int i = 0; i < kPackets; ++i) {
        co_await r->net->inject(r->packet(0, 1, kBytes));
      }
    }(&rig));
    sys::run_until(rig.kernel,
                   [&] { return rig.arrivals[1] == kPackets; },
                   t0 + 100 * sim::kMillisecond);
    const sim::Tick dur = rig.last_arrival - t0;
    report_sim_time(state, dur);
    state.counters["payload_MBps"] =
        static_cast<double>(kPackets) * kBytes /
        (static_cast<double>(dur) * kPsToSec) / 1e6;
    state.counters["wire_MBps"] =
        static_cast<double>(kPackets) * (kBytes + net::kHeaderBytes) /
        (static_cast<double>(dur) * kPsToSec) / 1e6;
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(kPackets * kBytes * state.iterations()));
}

void BM_Net_PriorityIsolation(benchmark::State& state) {
  const bool flood = state.range(0) != 0;
  for (auto _ : state) {
    NetRig rig(16);
    if (flood) {
      // Saturate the 0->15 path with low-priority traffic.
      sim::spawn([](NetRig* r) -> sim::Co<void> {
        for (int i = 0; i < 200; ++i) {
          co_await r->net->inject(
              r->packet(0, 15, 88, net::kPriorityLow));
        }
      }(&rig));
      rig.kernel.run_until(rig.kernel.now() + 20 * sim::kMicrosecond);
    }
    const sim::Tick t0 = rig.kernel.now();
    rig.last_high_arrival = sim::kTickInvalid;
    sim::spawn(rig.net->inject(rig.packet(0, 15, 8, net::kPriorityHigh)));
    sys::run_until(rig.kernel,
                   [&] { return rig.last_high_arrival != sim::kTickInvalid; },
                   t0 + 100 * sim::kMillisecond);
    report_sim_time(state, rig.last_high_arrival - t0);
  }
  state.counters["flooded"] = flood ? 1 : 0;
}

void BM_Net_AllToAll(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  constexpr int kPerPair = 4;
  for (auto _ : state) {
    NetRig rig(nodes);
    const sim::Tick t0 = rig.kernel.now();
    for (sim::NodeId s = 0; s < nodes; ++s) {
      sim::spawn([](NetRig* r, sim::NodeId src,
                    std::size_t n) -> sim::Co<void> {
        for (int i = 0; i < kPerPair; ++i) {
          for (sim::NodeId d = 0; d < n; ++d) {
            if (d != src) {
              co_await r->net->inject(r->packet(src, d, 88));
            }
          }
        }
      }(&rig, s, nodes));
    }
    const std::uint64_t expected = nodes * (nodes - 1) * kPerPair;
    sys::run_until(rig.kernel,
                   [&] {
                     std::uint64_t total = 0;
                     for (auto a : rig.arrivals) {
                       total += a;
                     }
                     return total == expected;
                   },
                   t0 + 1000 * sim::kMillisecond);
    const sim::Tick dur = rig.kernel.now() - t0;
    report_sim_time(state, dur);
    state.counters["agg_payload_MBps"] =
        static_cast<double>(expected) * 88 /
        (static_cast<double>(dur) * kPsToSec) / 1e6;
  }
  state.counters["nodes"] = static_cast<double>(nodes);
}

BENCHMARK(BM_Net_OneHopLatency)->UseManualTime()->Iterations(3)->Unit(
    benchmark::kMicrosecond);
BENCHMARK(BM_Net_ThreeHopLatency)->UseManualTime()->Iterations(3)->Unit(
    benchmark::kMicrosecond);
BENCHMARK(BM_Net_LinkBandwidth)->UseManualTime()->Iterations(2)->Unit(
    benchmark::kMicrosecond);
BENCHMARK(BM_Net_PriorityIsolation)
    ->Arg(0)
    ->Arg(1)
    ->UseManualTime()
    ->Iterations(2)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Net_AllToAll)
    ->Arg(4)
    ->Arg(16)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace sv::bench

BENCHMARK_MAIN();

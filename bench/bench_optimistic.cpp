// Ext-A (paper section 6, approaches 4-5): optimistic S-COMA notification.
//
// The paper describes approaches 4 and 5 but had no numbers ("we did not
// have sufficient time to produce numbers for the last two approaches");
// this bench produces them:
//   - notify latency: approaches 4/5 signal completion after ~1/4 of the
//     data, so the receiver unblocks far earlier than under approach 3;
//   - time-to-consumed: the receiver reads the whole buffer after the
//     notification, stalling on clsSRAM retries for lines still in flight;
//   - the degradation case: a consumer that races ahead of the data spins
//     on bus retries instead of doing useful work — "retry by S-COMA
//     cache-line state check hardware prevents the aP from doing any
//     useful work at all."
#include "bench/bench_util.hpp"

namespace sv::bench {
namespace {

void BM_Optimistic_Notify(benchmark::State& state) {
  const int approach = static_cast<int>(state.range(0));
  const auto len = static_cast<std::uint32_t>(state.range(1));

  sys::Machine machine(xfer_machine_params());
  xfer::BlockTransferHarness harness(machine);

  for (auto _ : state) {
    const auto res = harness.run(approach, xfer_spec(len, approach >= 4));
    if (!res.ok) {
      state.SkipWithError("transfer failed verification");
      return;
    }
    report_sim_time(state, res.latency());
  }
  state.counters["approach"] = approach;
}

void BM_Optimistic_Consume(benchmark::State& state) {
  const int approach = static_cast<int>(state.range(0));
  const auto len = static_cast<std::uint32_t>(state.range(1));

  sys::Machine machine(xfer_machine_params());
  xfer::BlockTransferHarness harness(machine);

  sim::Tick notify_total = 0, consume_total = 0, rx_sp = 0;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    xfer::RunOptions opt;
    opt.consume = true;
    const auto res =
        harness.run(approach, xfer_spec(len, approach >= 4), opt);
    if (!res.ok) {
      state.SkipWithError("transfer failed verification");
      return;
    }
    report_sim_time(state, res.consume_time - res.start);
    notify_total += res.latency();
    consume_total += res.consume_time - res.start;
    rx_sp += res.receiver_sp_busy;
    ++runs;
  }
  state.counters["notify_us"] =
      static_cast<double>(notify_total) / static_cast<double>(runs) / 1e6;
  state.counters["consumed_us"] =
      static_cast<double>(consume_total) / static_cast<double>(runs) / 1e6;
  state.counters["rx_sp_busy_us"] =
      static_cast<double>(rx_sp) / static_cast<double>(runs) / 1e6;
  state.counters["approach"] = approach;
}

/// The degradation experiment: measure the aP bus retry traffic when the
/// consumer starts immediately (racing the data) versus after the data has
/// fully arrived.
void BM_Optimistic_RetryStorm(benchmark::State& state) {
  const auto consume_delay_us = static_cast<sim::Tick>(state.range(0));
  const std::uint32_t len = 65536;

  sys::Machine machine(xfer_machine_params());
  xfer::BlockTransferHarness harness(machine);

  for (auto _ : state) {
    auto& abiu_stats = machine.node(1).niu().abiu().stats();
    const auto retries0 = abiu_stats.scoma_retries.value();
    xfer::RunOptions opt;
    opt.consume = true;
    opt.consume_delay = consume_delay_us * sim::kMicrosecond;
    const auto res = harness.run(5, xfer_spec(len, true), opt);
    if (!res.ok) {
      state.SkipWithError("transfer failed verification");
      return;
    }
    report_sim_time(state, res.consume_time - res.start);
    state.counters["bus_retries"] = static_cast<double>(
        abiu_stats.scoma_retries.value() - retries0);
  }
}

void A45Args(benchmark::internal::Benchmark* b) {
  for (int approach : {3, 4, 5}) {
    for (std::int64_t len : {4096, 16384, 65536}) {
      b->Args({approach, len});
    }
  }
}

BENCHMARK(BM_Optimistic_Notify)
    ->Apply(A45Args)
    ->UseManualTime()
    ->Iterations(3)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Optimistic_Consume)
    ->Apply(A45Args)
    ->UseManualTime()
    ->Iterations(3)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Optimistic_RetryStorm)
    ->Arg(0)
    ->Arg(200)
    ->Arg(1000)
    ->UseManualTime()
    ->Iterations(2)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace sv::bench

BENCHMARK_MAIN();

// Ext-D (paper section 4): receive-queue caching.
//
// The NIU caches a small number of logical receive queues in hardware;
// messages for unbound queues are diverted to the miss queue and spilled
// by firmware into DRAM-resident images. This bench measures the delivered
// message cost for:
//   - a hardware-resident (cached) queue,
//   - a DRAM-resident (missed) queue, including firmware service,
// and sweeps the number of distinct logical destinations to show the
// multitasking story: a handful of hot queues stay in hardware while a
// large namespace overflows gracefully.
#include "bench/bench_util.hpp"
#include "msg/dram_queue.hpp"

namespace sv::bench {
namespace {

void BM_RxCached(benchmark::State& state) {
  sys::Machine machine(default_machine_params(2));
  auto ep0 = machine.node(0).make_endpoint();
  auto ep1 = machine.node(1).make_endpoint();
  const auto map = machine.addr_map();
  constexpr int kCount = 50;

  for (auto _ : state) {
    bool done = false;
    machine.node(0).ap().run(
        [](msg::Endpoint* ep, std::uint16_t peer) -> sim::Co<void> {
          std::byte b[16] = {};
          for (int i = 0; i < kCount; ++i) {
            co_await ep->send(peer, b);
          }
        }(&ep0, map.user0(1)));
    machine.node(1).ap().run(
        [](msg::Endpoint* ep, bool* d) -> sim::Co<void> {
          for (int i = 0; i < kCount; ++i) {
            (void)co_await ep->recv();
          }
          *d = true;
        }(&ep1, &done));
    const sim::Tick t0 = machine.kernel().now();
    sys::run_until(machine.kernel(), [&] { return done; },
                   t0 + 500 * sim::kMillisecond);
    report_sim_time(state, (machine.kernel().now() - t0) / kCount);
  }
  state.counters["per_msg"] = 1;
}

void BM_RxMissToDram(benchmark::State& state) {
  sys::Machine machine(default_machine_params(2));
  auto ep0 = machine.node(0).make_endpoint();
  constexpr net::QueueId kSpill = 0x0700;
  fw::DramQueueDesc desc;
  desc.base = 0x400000;
  desc.slots = 64;
  machine.node(1).miss_service()->register_queue(kSpill, desc);
  msg::DramQueue dq(machine.node(1).ap(), desc);
  constexpr int kCount = 50;

  for (auto _ : state) {
    bool done = false;
    machine.node(0).ap().run(
        [](msg::Endpoint* ep) -> sim::Co<void> {
          std::byte b[16] = {};
          for (int i = 0; i < kCount; ++i) {
            co_await ep->send_raw(1, kSpill, b);
          }
        }(&ep0));
    machine.node(1).ap().run(
        [](msg::DramQueue* q, bool* d) -> sim::Co<void> {
          for (int i = 0; i < kCount; ++i) {
            (void)co_await q->recv();
          }
          *d = true;
        }(&dq, &done));
    const sim::Tick t0 = machine.kernel().now();
    sys::run_until(machine.kernel(), [&] { return done; },
                   t0 + 500 * sim::kMillisecond);
    report_sim_time(state, (machine.kernel().now() - t0) / kCount);
  }
  state.counters["per_msg"] = 1;
}

/// Sweep the number of distinct logical destinations: the first 3 map to
/// hardware queues (user0/user1/express namespaces aside, we reuse user0
/// and user1 plus DRAM-resident spill queues beyond that).
void BM_RxQueueNamespaceSweep(benchmark::State& state) {
  const auto num_queues = static_cast<std::size_t>(state.range(0));
  sys::Machine machine(default_machine_params(2));
  auto ep0 = machine.node(0).make_endpoint();
  constexpr int kPerQueue = 10;

  // Lossless spill: hold arriving messages when the miss queue is full
  // instead of dropping (backpressures the sender through the network).
  machine.node(1).niu().ctrl().rxq(niu::kMissRxQueue).full_policy =
      niu::RxFullPolicy::kHold;

  // Register DRAM images for every logical id we will hit; ids 0x0800+i.
  std::vector<msg::DramQueue> queues;
  for (std::size_t i = 0; i < num_queues; ++i) {
    fw::DramQueueDesc desc;
    desc.base = 0x400000 + i * 0x4000;
    desc.slots = 32;
    machine.node(1).miss_service()->register_queue(
        static_cast<net::QueueId>(0x0800 + i), desc);
    queues.emplace_back(machine.node(1).ap(), desc);
  }

  for (auto _ : state) {
    bool sent = false;
    machine.node(0).ap().run(
        [](msg::Endpoint* ep, std::size_t nq, bool* d) -> sim::Co<void> {
          std::byte b[16] = {};
          for (int i = 0; i < kPerQueue; ++i) {
            for (std::size_t q = 0; q < nq; ++q) {
              co_await ep->send_raw(
                  1, static_cast<net::QueueId>(0x0800 + q), b);
            }
          }
          *d = true;
        }(&ep0, num_queues, &sent));

    std::size_t drained = 0;
    machine.node(1).ap().run(
        [](std::vector<msg::DramQueue>* qs, std::size_t nq,
           std::size_t* n) -> sim::Co<void> {
          for (int i = 0; i < kPerQueue; ++i) {
            for (std::size_t q = 0; q < nq; ++q) {
              (void)co_await (*qs)[q].recv();
              ++*n;
            }
          }
        }(&queues, num_queues, &drained));

    const sim::Tick t0 = machine.kernel().now();
    const std::size_t want = num_queues * kPerQueue;
    sys::run_until(machine.kernel(), [&] { return drained == want; },
                   t0 + 2000 * sim::kMillisecond);
    report_sim_time(state,
                    (machine.kernel().now() - t0) / (want > 0 ? want : 1));
  }
  state.counters["logical_queues"] = static_cast<double>(num_queues);
  state.counters["fw_serviced"] = static_cast<double>(
      machine.node(1).miss_service()->serviced().value());
}

BENCHMARK(BM_RxCached)->UseManualTime()->Iterations(2)->Unit(
    benchmark::kMicrosecond);
BENCHMARK(BM_RxMissToDram)->UseManualTime()->Iterations(2)->Unit(
    benchmark::kMicrosecond);
BENCHMARK(BM_RxQueueNamespaceSweep)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(32)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace sv::bench

BENCHMARK_MAIN();

// Ext-H (paper section 5): diff-ing hardware for update-based shared
// memory.
//
// "Diff-ing is common to software-based shared memory implementations
// although it is expensive both because comparison is usually done for an
// entire page, and because it is extra overhead. StarT-Voyager's clsSRAM
// can be used to track modifications at the cache-line granularity, thus
// reducing the amount of diff-ing required."
//
// This bench propagates a 4 KB page with a varying fraction of dirty lines
// using three strategies:
//   - full transfer (kBlockXfer): ships everything regardless of dirtiness,
//   - value-diff (kBlockDiffTx mode 1): the engine reads the whole page
//     and compares against a staged old copy — full read cost, reduced
//     network cost,
//   - cls-tracked diff (kBlockDiffTx mode 0): the aBIU's write tracker
//     already knows the dirty lines — both read and network cost scale
//     with the modification density.
#include <cstring>

#include "bench/bench_util.hpp"

namespace sv::bench {
namespace {

constexpr mem::Addr kBuf = niu::kScomaBase + 0x10000;
constexpr std::uint32_t kLen = 4096;  // 128 lines
constexpr mem::Addr kDst = 0x0060'0000;
constexpr std::uint32_t kOldCopy = 0x18000;  // sSRAM

struct DiffRig {
  DiffRig() : machine(make_params()) {
    machine.node(0).niu().abiu().enable_write_tracking(kBuf, kLen);
  }

  static sys::Machine::Params make_params() {
    auto p = xfer_machine_params();
    return p;
  }

  /// Dirty `dirty_lines` evenly spread lines by writing through the aP
  /// (so the tracker sees them), then flush.
  void make_dirty(unsigned dirty_lines) {
    bool done = false;
    machine.node(0).ap().run(
        [](cpu::Processor* ap, unsigned n, std::uint32_t salt,
           bool* d) -> sim::Co<void> {
          const unsigned total = kLen / mem::kLineBytes;
          const unsigned stride = n == 0 ? total : total / n;
          for (unsigned i = 0; i < n; ++i) {
            co_await ap->store_scalar<std::uint32_t>(
                kBuf + static_cast<mem::Addr>(i) * stride *
                           mem::kLineBytes,
                salt + i);
          }
          co_await ap->flush_range(kBuf, kLen);
          *d = true;
        }(&machine.node(0).ap(), dirty_lines, salt_++, &done));
    sys::run_until(machine.kernel(), [&] { return done; },
                   machine.kernel().now() + 500 * sim::kMillisecond);
  }

  sim::Tick run_command(niu::Command cmd) {
    const sim::Tick t0 = machine.kernel().now();
    cmd.notify_queue = msg::AddressMap::kUser0L;
    cmd.notify_tag = salt_++;
    auto& rx = machine.node(0).niu().ctrl().rxq(sys::Node::kRxUser0);
    const auto before = rx.producer;
    machine.node(0).niu().ctrl().post_command(0, std::move(cmd));
    sys::run_until(machine.kernel(),
                   [&] {
                     return rx.producer != before &&
                            machine.node(0).niu().ctrl().commands_idle() &&
                            machine.node(1).niu().ctrl().commands_idle();
                   },
                   t0 + 500 * sim::kMillisecond);
    machine.node(0).niu().ctrl().rx_consumer_update(sys::Node::kRxUser0,
                                                    rx.producer);
    return machine.kernel().now() - t0;
  }

  sys::Machine machine;
  std::uint32_t salt_ = 1;
};

void BM_Diff_FullTransfer(benchmark::State& state) {
  DiffRig rig;
  const auto dirty = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    rig.make_dirty(dirty);
    niu::Command cmd;
    cmd.op = niu::CmdOp::kBlockXfer;
    cmd.addr = kBuf;
    cmd.dest_addr = kDst;
    cmd.len = kLen;
    cmd.bank = niu::SramBank::kSSram;
    cmd.sram_offset = sys::Node::kDmaStagingBase;
    cmd.dest_node = 1;
    report_sim_time(state, rig.run_command(std::move(cmd)));
  }
  state.counters["dirty_lines"] = dirty;
}

void BM_Diff_ValueMode(benchmark::State& state) {
  DiffRig rig;
  const auto dirty = static_cast<unsigned>(state.range(0));
  // Seed the old copy so only the dirtied lines differ.
  std::vector<std::byte> snapshot(kLen);
  rig.machine.node(0).dram().store().read(kBuf, snapshot);
  rig.machine.node(0).niu().ssram().write(kOldCopy, snapshot);
  for (auto _ : state) {
    rig.make_dirty(dirty);
    niu::Command cmd;
    cmd.op = niu::CmdOp::kBlockDiffTx;
    cmd.diff_mode = 1;
    cmd.addr = kBuf;
    cmd.len = kLen;
    cmd.bank = niu::SramBank::kSSram;
    cmd.sram_offset = kOldCopy;
    cmd.dest_node = 1;
    cmd.dest_addr = kDst;
    report_sim_time(state, rig.run_command(std::move(cmd)));
  }
  state.counters["dirty_lines"] = dirty;
}

void BM_Diff_ClsTracked(benchmark::State& state) {
  DiffRig rig;
  const auto dirty = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    rig.make_dirty(dirty);
    niu::Command cmd;
    cmd.op = niu::CmdOp::kBlockDiffTx;
    cmd.diff_mode = 0;
    cmd.addr = kBuf;
    cmd.len = kLen;
    cmd.dest_node = 1;
    cmd.dest_addr = kDst;
    report_sim_time(state, rig.run_command(std::move(cmd)));
  }
  state.counters["dirty_lines"] = dirty;
}

void DiffArgs(benchmark::internal::Benchmark* b) {
  for (std::int64_t dirty : {4, 16, 64, 128}) {
    b->Arg(dirty);
  }
}

BENCHMARK(BM_Diff_FullTransfer)
    ->Apply(DiffArgs)
    ->UseManualTime()
    ->Iterations(2)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Diff_ValueMode)
    ->Apply(DiffArgs)
    ->UseManualTime()
    ->Iterations(2)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Diff_ClsTracked)
    ->Apply(DiffArgs)
    ->UseManualTime()
    ->Iterations(2)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace sv::bench

BENCHMARK_MAIN();

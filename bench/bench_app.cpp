// Application-runtime macro-benchmark: the three shipped apps (stencil
// halo exchange, ring-allreduce sweep, KV request/reply) run end-to-end
// through app::World over each transport mechanism.
//
// Two kinds of numbers come out of every row:
//   - simulated time (UseManualTime): what the machine configuration
//     costs the *application* — the cross-mechanism comparison the
//     platform exists to make (msg vs shm vs reliable for one program).
//   - host_events/s: how fast the simulator chews through the run — the
//     number the CI perf-smoke job gates against bench/baseline_app.json
//     (--quick runs the msg-only subset; see .github/workflows/ci.yml).
//
// app_bytes is the application payload entered into the transport per
// run (aggregated over nodes), so bytes moved per mechanism is visible
// alongside the time it took.
#include <chrono>
#include <string>

#include "app/apps.hpp"
#include "bench/bench_util.hpp"

namespace sv::bench {
namespace {

enum AppCase : std::int64_t { kStencil, kAllreduce, kKv };
enum TransportCase : std::int64_t { kMsg, kShm, kReliable };

const char* app_name(std::int64_t a) {
  switch (a) {
    case kStencil:   return "stencil";
    case kAllreduce: return "allreduce";
    default:         return "kv";
  }
}

const char* transport_name(std::int64_t t) {
  switch (t) {
    case kMsg:      return "msg";
    case kShm:      return "shm";
    default:        return "reliable";
  }
}

app::World::Program make_program(std::int64_t a, app::AppResult* out) {
  switch (a) {
    case kStencil: {
      app::StencilParams p;  // 16x16, 4 iterations
      return app::make_stencil(p, out);
    }
    case kAllreduce: {
      app::AllreduceParams p;  // 4..64 doubling, 2 iterations each
      return app::make_allreduce_sweep(p, out);
    }
    default: {
      app::KvParams p;
      p.requests = 16;
      return app::make_kv(p, out);
    }
  }
}

void BM_App(benchmark::State& state) {
  const std::int64_t app_case = state.range(0);
  const std::int64_t transport_case = state.range(1);

  std::uint64_t events = 0;
  std::uint64_t app_bytes = 0;
  std::uint64_t ops = 0;
  double host_sec = 0.0;
  for (auto _ : state) {
    // A World runs once; every iteration gets a fresh machine. The run is
    // deterministic, so repeat iterations only improve the host timing.
    sys::Machine machine(default_machine_params(4));
    maybe_enable_tracing(machine);
    app::World::Params wp;
    wp.transport = transport_case == kMsg   ? app::TransportKind::kMsg
                   : transport_case == kShm ? app::TransportKind::kShm
                                            : app::TransportKind::kReliable;
    app::AppResult result;
    app::World world(machine, wp);
    world.launch(make_program(app_case, &result));

    const std::uint64_t events0 = machine.kernel().events_executed();
    const auto host0 = std::chrono::steady_clock::now();
    const sim::Tick t0 = machine.now();
    const bool ok =
        sys::run_until(machine, [&] { return world.done(); },
                       machine.now() + 2000 * sim::kMillisecond);
    host_sec += std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - host0)
                    .count();
    if (!ok || result.errors != 0) {
      state.SkipWithError("application run failed");
      return;
    }
    report_sim_time(state, machine.now() - t0);
    events += machine.kernel().events_executed() - events0;
    ops += result.ops;
    for (sim::NodeId n = 0; n < machine.size(); ++n) {
      app_bytes += world.transport(n).stats().bytes_sent.value();
    }
    maybe_write_trace(machine);
  }
  state.counters["app_bytes"] =
      static_cast<double>(app_bytes) /
      static_cast<double>(state.iterations());
  state.counters["ops"] =
      static_cast<double>(ops) / static_cast<double>(state.iterations());
  const double events_per_sec =
      host_sec > 0 ? static_cast<double>(events) / host_sec : 0;
  state.counters["host_events/s"] = events_per_sec;
  record_kernel_result(std::string("app_") + app_name(app_case) + "_" +
                           transport_name(transport_case),
                       events_per_sec);
}

void AppArgs(benchmark::internal::Benchmark* b) {
  for (std::int64_t app_case : {kStencil, kAllreduce, kKv}) {
    for (std::int64_t transport_case : {kMsg, kShm, kReliable}) {
      if (g_quick && transport_case != kMsg) {
        continue;  // --quick: one mechanism, enough for a CI smoke
      }
      b->Args({app_case, transport_case});
    }
  }
}

}  // namespace

// Registered from main(), not via the BENCHMARK macro: the sweep depends
// on --quick, which static-init registration would run too early to see.
void register_app() {
  AppArgs(benchmark::RegisterBenchmark("BM_App", BM_App)
              ->UseManualTime()
              ->Iterations(2)
              ->Unit(benchmark::kMicrosecond));
}

}  // namespace sv::bench

int main(int argc, char** argv) {
  sv::bench::parse_quick_flag(argc, argv);
  sv::bench::parse_trace_flag(argc, argv);
  sv::bench::parse_fault_flags(argc, argv);
  // Separate default from the other benches' so a CI job running several
  // in one directory never has one overwrite another's results.
  sv::bench::g_kernel_json_out = "BENCH_app.json";
  sv::bench::parse_kernel_json_flags(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  sv::bench::register_app();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return sv::bench::finalize_kernel_results();
}

// Figure 4 (paper section 6): block-transfer *bandwidth* for approaches
// 1-3, swept over transfer size, measured over back-to-back transfers.
//
// Expected shape (paper): approach 3 has the best bandwidth — the block
// engines read and transmit at almost maximum hardware speed, so large
// transfers approach the network's payload-limited ceiling; approach 2 is
// next (one bus crossing per side, but per-chunk sP occupancy bounds it);
// approach 1 is the worst (double bus crossings plus aP copy overhead).
//
// bytes_per_second is simulated bandwidth (UseManualTime). host_events/s
// is *host* kernel throughput — how fast the simulator itself chews
// through events while producing the figure — and is what the CI
// perf-smoke job watches (with --quick for a reduced sweep).
#include <chrono>

#include "bench/bench_util.hpp"

namespace sv::bench {
namespace {

void BM_Fig4_Bandwidth(benchmark::State& state) {
  const int approach = static_cast<int>(state.range(0));
  const auto len = static_cast<std::uint32_t>(state.range(1));

  sys::Machine machine(xfer_machine_params());
  maybe_enable_tracing(machine);
  xfer::BlockTransferHarness harness(machine);

  sim::Tick total = 0;
  std::uint64_t runs = 0;
  const std::uint64_t events0 = machine.kernel().events_executed();
  const auto host0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    const auto res = harness.run(approach, xfer_spec(len, false));
    if (!res.ok) {
      state.SkipWithError("transfer failed verification");
      return;
    }
    report_sim_time(state, res.latency());
    total += res.latency();
    ++runs;
  }
  const double host_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - host0)
          .count();
  const std::uint64_t events =
      machine.kernel().events_executed() - events0;
  state.SetBytesProcessed(static_cast<std::int64_t>(len) *
                          static_cast<std::int64_t>(runs));
  state.counters["MBps"] =
      static_cast<double>(len) * static_cast<double>(runs) /
      (static_cast<double>(total) * kPsToSec) / 1e6;
  state.counters["approach"] = approach;
  const double events_per_sec =
      host_sec > 0 ? static_cast<double>(events) / host_sec : 0;
  state.counters["host_events/s"] = events_per_sec;
  // Recorded under the same JSON/baseline machinery as bench_kernel, so
  // the CI perf-smoke job can gate the END-TO-END sweep (machine-level
  // slowdowns the kernel microbench can't see) against
  // bench/baseline_fig4.json.
  record_kernel_result("fig4_a" + std::to_string(approach) + "_" +
                           std::to_string(len),
                       events_per_sec);
  maybe_write_trace(machine);
}

void Fig4Args(benchmark::internal::Benchmark* b) {
  for (int approach = 1; approach <= 3; ++approach) {
    for (std::int64_t len : {1024, 4096, 16384, 65536, 262144}) {
      if (g_quick && (approach != 3 || (len != 4096 && len != 65536))) {
        continue;  // --quick: approach 3 at two sizes, enough for a smoke
      }
      b->Args({approach, len});
    }
  }
}

}  // namespace

// Registered from main(), not via the BENCHMARK macro: the sweep depends
// on --quick, which static-init registration would run too early to see.
void register_fig4() {
  Fig4Args(benchmark::RegisterBenchmark("BM_Fig4_Bandwidth",
                                        BM_Fig4_Bandwidth)
               ->UseManualTime()
               ->Iterations(3)
               ->Unit(benchmark::kMicrosecond));
}

}  // namespace sv::bench

int main(int argc, char** argv) {
  sv::bench::parse_quick_flag(argc, argv);
  sv::bench::parse_trace_flag(argc, argv);
  sv::bench::parse_fault_flags(argc, argv);
  // Separate default from bench_kernel's so a CI job running both benches
  // in one directory never has one overwrite the other's results.
  sv::bench::g_kernel_json_out = "BENCH_fig4.json";
  sv::bench::parse_kernel_json_flags(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  sv::bench::register_fig4();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return sv::bench::finalize_kernel_results();
}

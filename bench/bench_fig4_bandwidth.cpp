// Figure 4 (paper section 6): block-transfer *bandwidth* for approaches
// 1-3, swept over transfer size, measured over back-to-back transfers.
//
// Expected shape (paper): approach 3 has the best bandwidth — the block
// engines read and transmit at almost maximum hardware speed, so large
// transfers approach the network's payload-limited ceiling; approach 2 is
// next (one bus crossing per side, but per-chunk sP occupancy bounds it);
// approach 1 is the worst (double bus crossings plus aP copy overhead).
//
// bytes_per_second is simulated bandwidth (UseManualTime).
#include "bench/bench_util.hpp"

namespace sv::bench {
namespace {

void BM_Fig4_Bandwidth(benchmark::State& state) {
  const int approach = static_cast<int>(state.range(0));
  const auto len = static_cast<std::uint32_t>(state.range(1));

  sys::Machine machine(xfer_machine_params());
  maybe_enable_tracing(machine);
  xfer::BlockTransferHarness harness(machine);

  sim::Tick total = 0;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    const auto res = harness.run(approach, xfer_spec(len, false));
    if (!res.ok) {
      state.SkipWithError("transfer failed verification");
      return;
    }
    report_sim_time(state, res.latency());
    total += res.latency();
    ++runs;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(len) *
                          static_cast<std::int64_t>(runs));
  state.counters["MBps"] =
      static_cast<double>(len) * static_cast<double>(runs) /
      (static_cast<double>(total) * kPsToSec) / 1e6;
  state.counters["approach"] = approach;
  maybe_write_trace(machine);
}

void Fig4Args(benchmark::internal::Benchmark* b) {
  for (int approach = 1; approach <= 3; ++approach) {
    for (std::int64_t len : {1024, 4096, 16384, 65536, 262144}) {
      b->Args({approach, len});
    }
  }
}

BENCHMARK(BM_Fig4_Bandwidth)
    ->Apply(Fig4Args)
    ->UseManualTime()
    ->Iterations(3)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace sv::bench

int main(int argc, char** argv) {
  sv::bench::parse_trace_flag(argc, argv);
  sv::bench::parse_fault_flags(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Figure 3 (paper section 6): block-transfer *latency* for approaches 1-3,
// swept over transfer size. Latency = the sender's request to the moment
// the receiver reads the completion message from its regular queue.
//
// Expected shape (paper): approach 1 (aP-managed) is the slowest at every
// size — the data crosses each node's memory bus twice and the aP pays
// per-message software overhead; approach 2 (sP-managed) is faster;
// approach 3 (hardware block operations) is fastest.
//
// The "Time" column is simulated latency (UseManualTime).
#include "bench/bench_util.hpp"

namespace sv::bench {
namespace {

void BM_Fig3_Latency(benchmark::State& state) {
  const int approach = static_cast<int>(state.range(0));
  const auto len = static_cast<std::uint32_t>(state.range(1));

  sys::Machine machine(xfer_machine_params());
  maybe_enable_tracing(machine);
  xfer::BlockTransferHarness harness(machine);

  sim::Tick total = 0;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    const auto res = harness.run(approach, xfer_spec(len, false));
    if (!res.ok) {
      state.SkipWithError("transfer failed verification");
      return;
    }
    report_sim_time(state, res.latency());
    total += res.latency();
    ++runs;
  }
  state.counters["latency_us"] =
      static_cast<double>(total) / static_cast<double>(runs) / 1e6;
  state.counters["approach"] = approach;
  state.SetBytesProcessed(static_cast<std::int64_t>(len) *
                          static_cast<std::int64_t>(runs));
  maybe_write_trace(machine);
}

void Fig3Args(benchmark::internal::Benchmark* b) {
  for (int approach = 1; approach <= 3; ++approach) {
    for (std::int64_t len : {64, 256, 1024, 4096, 16384, 65536}) {
      b->Args({approach, len});
    }
  }
}

BENCHMARK(BM_Fig3_Latency)
    ->Apply(Fig3Args)
    ->UseManualTime()
    ->Iterations(3)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace sv::bench

int main(int argc, char** argv) {
  sv::bench::parse_trace_flag(argc, argv);
  sv::bench::parse_fault_flags(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Ext-E (paper section 4): transmit-queue prioritization.
//
// Two transmit queues on one node compete for the network port while a
// bulk stream saturates the low class. The bench measures the latency of
// a single message on the second queue when it is (a) in the same
// priority class and (b) in a higher class, demonstrating the dynamically
// reconfigurable arbitration register.
#include <cstring>

#include "bench/bench_util.hpp"

namespace sv::bench {
namespace {

/// Latency of one user1-queue probe message while 32 bulk messages stream
/// on the user0 queue. Arg0 = bulk class, arg1 = probe class: when the
/// bulk outranks the probe it starves it for the whole stream; equal
/// classes round-robin; an outranking probe preempts after at most one
/// packet time.
void BM_TxArbitration(benchmark::State& state) {
  const auto bulk_class = static_cast<std::uint64_t>(state.range(0));
  const auto probe_class = static_cast<std::uint64_t>(state.range(1));

  sys::Machine machine(default_machine_params(2));
  const auto map = machine.addr_map();

  auto& ctrl = machine.node(0).niu().ctrl();
  std::uint64_t prio = 0;
  prio |= bulk_class << (2 * sys::Node::kTxUser0);
  prio |= probe_class << (2 * sys::Node::kTxUser1);
  ctrl.write_reg(niu::SysReg::kTxPriority, prio);

  for (auto _ : state) {
    // Preload the user0 queue with bulk traffic (backdoor compose, like
    // the CTRL tests, so the probe timing is not polluted by compose).
    auto& asram = machine.node(0).niu().asram();
    auto& t0q = ctrl.txq(sys::Node::kTxUser0);
    for (int i = 0; i < 32; ++i) {
      niu::MsgDescriptor d;
      d.vdest = map.user0(1);
      d.length = 88;
      std::byte hdr[8];
      d.encode(hdr);
      asram.write(t0q.slot_addr(static_cast<std::uint16_t>(t0q.producer + i)),
                  hdr);
    }
    ctrl.tx_producer_update(sys::Node::kTxUser0,
                            static_cast<std::uint16_t>(t0q.producer + 32));

    // Now enqueue the probe on user1 and time its arrival.
    auto& t1q = ctrl.txq(sys::Node::kTxUser1);
    niu::MsgDescriptor probe;
    probe.vdest = map.user1(1);
    probe.length = 8;
    std::byte hdr[8];
    probe.encode(hdr);
    asram.write(t1q.slot_addr(t1q.producer), hdr);

    auto& rx = machine.node(1).niu().ctrl().rxq(sys::Node::kRxUser1);
    const std::uint16_t before = rx.producer;
    const sim::Tick t0 = machine.kernel().now();
    ctrl.tx_producer_update(sys::Node::kTxUser1,
                            static_cast<std::uint16_t>(t1q.producer + 1));
    sys::run_until(machine.kernel(),
                   [&] { return rx.producer != before; },
                   t0 + 500 * sim::kMillisecond);
    report_sim_time(state, machine.kernel().now() - t0);

    // Drain: free the receiver queues and let the bulk finish.
    sys::run_until(machine.kernel(),
                   [&] { return ctrl.txq(sys::Node::kTxUser0).empty(); },
                   machine.kernel().now() + 500 * sim::kMillisecond);
    auto& rx0 = machine.node(1).niu().ctrl().rxq(sys::Node::kRxUser0);
    machine.node(1).niu().ctrl().rx_consumer_update(sys::Node::kRxUser0,
                                                    rx0.producer);
    machine.node(1).niu().ctrl().rx_consumer_update(sys::Node::kRxUser1,
                                                    rx.producer);
  }
  state.counters["bulk_class"] = static_cast<double>(bulk_class);
  state.counters["probe_class"] = static_cast<double>(probe_class);
}

BENCHMARK(BM_TxArbitration)
    ->Args({3, 1})  // bulk outranks the probe: starvation
    ->Args({1, 1})  // equal: round-robin fairness
    ->Args({1, 3})  // probe outranks: immediate service
    ->UseManualTime()
    ->Iterations(3)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace sv::bench

BENCHMARK_MAIN();

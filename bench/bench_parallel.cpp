// Ext-M: self-relative speedup of the partitioned machine
// (sim::ParallelKernel) over the sequential kernel.
//
// Unlike every other bench, the number reported here is *wall-clock* time:
// the simulated result is bit-identical at every thread count (the
// ParallelKernel contract, enforced by parallel_equivalence_test), so the
// only interesting question is how much faster the host finishes the same
// simulation. Each row also exports the simulated duration and the total
// event count; the latter must be identical down the thread column — a
// cheap standing equivalence check inside the bench itself.
//
// Workload: compute + communicate in bounded rounds (the Ext-M shape).
// Every round each node sends one message to each other node, runs a local
// compute phase (cached stores walking its own DRAM), then drains its
// receive queue. The receive bound keeps unreliable rx queues from
// overflowing at any node count; the compute phase gives every domain
// purely node-local event traffic between communication bursts, the mix a
// real SMP application presents.
#include <chrono>
#include <cstdio>
#include <map>

#include "bench/bench_util.hpp"
#include "msg/endpoint.hpp"

namespace sv::bench {
namespace {

constexpr std::uint64_t kBytes = 64;
// Uncached stores per node per round, walking a 32 KiB window of the
// node's own DRAM — the "compute" half of the round, pure domain-local
// event traffic between communication bursts.
constexpr int kComputeOps = 8;
constexpr mem::Addr kComputeBase = 0x0010'0000;

struct RunOut {
  double wall_sec = 0.0;
  sim::Tick sim_ps = 0;
  std::uint64_t events = 0;
};

RunOut run_all_to_all(std::size_t nodes, unsigned threads, int rounds) {
  sys::Machine machine(parallel_machine_params(nodes, threads));
  const auto map = machine.addr_map();

  std::vector<std::unique_ptr<msg::Endpoint>> eps;
  for (sim::NodeId n = 0; n < machine.size(); ++n) {
    eps.push_back(std::make_unique<msg::Endpoint>(
        machine.node(n).ap(), machine.node(n).endpoint_config()));
  }
  std::vector<std::uint8_t> done(machine.size(), 0);
  for (sim::NodeId n = 0; n < machine.size(); ++n) {
    machine.node(n).ap().run(
        [](cpu::Processor* proc, msg::Endpoint* ep, msg::AddressMap map_,
           sim::NodeId self, std::size_t nodes_, int rounds_,
           std::uint8_t* flag) -> sim::Co<void> {
          std::vector<std::byte> payload(kBytes);
          for (int r = 0; r < rounds_; ++r) {
            for (sim::NodeId d = 0; d < nodes_; ++d) {
              if (d != self) {
                co_await ep->send(map_.user0(d), payload);
              }
            }
            for (int i = 0; i < kComputeOps; ++i) {
              const auto slot =
                  static_cast<mem::Addr>((r * kComputeOps + i) % 512);
              co_await proc->store_scalar<std::uint64_t>(
                  kComputeBase + slot * 64, slot, /*cached=*/false);
            }
            for (std::size_t i = 0; i + 1 < nodes_; ++i) {
              (void)co_await ep->recv();
            }
          }
          *flag = 1;
        }(&machine.node(n).ap(), eps[n].get(), map, n, machine.size(),
          rounds, &done[n]));
  }

  const auto t0 = std::chrono::steady_clock::now();
  const bool ok = sys::run_until(
      machine,
      [&] {
        for (const auto f : done) {
          if (f == 0) {
            return false;
          }
        }
        return true;
      },
      machine.now() + 10000 * sim::kMillisecond);
  const auto t1 = std::chrono::steady_clock::now();
  if (!ok) {
    std::fprintf(stderr, "bench_parallel: workload timed out\n");
  }

  RunOut out;
  out.wall_sec = std::chrono::duration<double>(t1 - t0).count();
  out.sim_ps = machine.now();
  out.events = machine.events_executed();
  return out;
}

/// Sequential wall time per node count, cached so the threads>0 rows can
/// report speedup relative to the threads=0 row of the same workload.
std::map<std::pair<std::size_t, int>, RunOut>& seq_baseline() {
  static std::map<std::pair<std::size_t, int>, RunOut> cache;
  return cache;
}

void BM_Parallel_AllToAll(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<unsigned>(state.range(1));
  // Scale rounds inversely with node count so every row simulates a
  // comparable amount of total traffic.
  const int rounds = static_cast<int>(1600 / nodes);

  RunOut out;
  for (auto _ : state) {
    out = run_all_to_all(nodes, threads, rounds);
    state.SetIterationTime(out.wall_sec);
  }

  const auto key = std::make_pair(nodes, rounds);
  if (threads == 0) {
    seq_baseline()[key] = out;
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["threads"] = threads;
  state.counters["sim_us"] = static_cast<double>(out.sim_ps) / 1e6;
  state.counters["events"] = static_cast<double>(out.events);
  const auto base = seq_baseline().find(key);
  if (base != seq_baseline().end() && out.wall_sec > 0.0) {
    state.counters["speedup"] = base->second.wall_sec / out.wall_sec;
    if (base->second.events != out.events) {
      // Bit-identity violation — the equivalence suite will catch it, but
      // flag it here too so a bench run never reports a bogus speedup.
      std::fprintf(stderr,
                   "bench_parallel: EVENT COUNT DIVERGED at nodes=%zu "
                   "threads=%u (%llu vs %llu)\n",
                   nodes, threads,
                   static_cast<unsigned long long>(base->second.events),
                   static_cast<unsigned long long>(out.events));
    }
  }
}

// threads=0 (sequential baseline) must come first in each node-count group
// so the speedup counter has its reference. g_threads (--threads=N) adds
// one extra user-chosen row per group.
void register_rows() {
  auto* b = benchmark::RegisterBenchmark("BM_Parallel_AllToAll",
                                         BM_Parallel_AllToAll);
  b->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
  for (const std::int64_t nodes : {8, 16, 32}) {
    b->Args({nodes, 0});
    b->Args({nodes, 1});
    b->Args({nodes, 2});
    b->Args({nodes, 4});
    if (g_threads > 4) {
      b->Args({nodes, g_threads});
    }
  }
}

}  // namespace
}  // namespace sv::bench

int main(int argc, char** argv) {
  sv::bench::parse_threads_flag(argc, argv);
  sv::bench::register_rows();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Tracer ring-buffer semantics, Chrome JSON round-trip, and the
// end-to-end guarantee that trace-derived occupancy agrees with the
// StatRegistry occupancy for the same run.
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sys/stats_dump.hpp"
#include "trace/analysis.hpp"
#include "trace/chrome_sink.hpp"
#include "trace/trace.hpp"
#include "xfer/approaches.hpp"

namespace sv::trace {
namespace {

TEST(Tracer, RingOverflowKeepsNewest) {
  Tracer tr(4);
  const TrackId t = tr.track("p", "lane", "test");
  for (int i = 0; i < 6; ++i) {
    tr.span(t, "s" + std::to_string(i), 10 * i, 10 * i + 5);
  }
  EXPECT_EQ(tr.size(), 4u);
  EXPECT_EQ(tr.recorded(), 6u);
  EXPECT_EQ(tr.dropped(), 2u);
  std::vector<std::string> names;
  tr.for_each([&](const Event& e) { names.push_back(e.name); });
  EXPECT_EQ(names, (std::vector<std::string>{"s2", "s3", "s4", "s5"}));
}

TEST(Tracer, DisabledRecordsNothing) {
  Tracer tr;
  tr.set_enabled(false);
  const TrackId t = tr.track("p", "lane", "test");
  tr.span(t, "s", 0, 10);
  tr.instant(t, "i", 5);
  tr.counter(t, 5, 1.0);
  EXPECT_EQ(tr.size(), 0u);
  EXPECT_EQ(tr.recorded(), 0u);
}

TEST(Tracer, TrackForSplitsAtFirstDot) {
  Tracer tr;
  const TrackId a = tr.track_for("n0.NIU.TxU", "niu");
  const TrackId b = tr.track("n0", "NIU.TxU", "niu");
  EXPECT_EQ(a, b);
  EXPECT_EQ(tr.tracks()[a].process, "n0");
  EXPECT_EQ(tr.tracks()[a].name, "NIU.TxU");
}

TEST(ChromeSink, RoundTripsThroughAnalysis) {
  Tracer tr;
  const TrackId bus = tr.track("n0", "bus", "bus");
  const TrackId link = tr.track("net", "inj0", "link");
  const TrackId depth = tr.track("n0", "txq0", "queue", /*counter=*/true);
  const std::uint64_t flow = tr.next_flow();
  tr.span(bus, "Read", 1'000'000, 2'000'000);
  tr.span(bus, "Read", 1'500'000, 2'500'000);  // overlaps: union = 1.5us
  tr.span(link, "pkt>n1", 3'000'000, 4'000'000, flow);
  tr.span(link, "pkt>n1", 5'000'000, 6'000'000, flow);
  tr.counter(depth, 1'000'000, 3.0);

  std::ostringstream os;
  write_chrome_trace(tr, os, ChromeWriteOptions{10'000'000});
  TraceAnalysis a = TraceAnalysis::parse_text(os.str());

  EXPECT_EQ(a.sim_now_ps, 10'000'000u);
  EXPECT_EQ(a.duration_ps(), 10'000'000u);
  EXPECT_EQ(a.spans.size(), 4u);
  EXPECT_EQ(a.counter_samples, 1u);
  EXPECT_EQ(a.counter_tracks, 1u);

  bool saw_bus = false;
  bool saw_link = false;
  for (std::size_t i = 0; i < a.tracks.size(); ++i) {
    const auto& t = a.tracks[i];
    if (t.full_name() == "n0.bus") {
      saw_bus = true;
      EXPECT_EQ(t.busy_ps, 1'500'000u);  // overlap merged
      EXPECT_DOUBLE_EQ(a.occupancy(i), 0.15);
    } else if (t.full_name() == "net.inj0") {
      saw_link = true;
      EXPECT_EQ(t.busy_ps, 2'000'000u);
      EXPECT_EQ(t.category, "link");
    }
  }
  EXPECT_TRUE(saw_bus);
  EXPECT_TRUE(saw_link);

  const auto flows = a.flows();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].id, flow);
  EXPECT_EQ(flows[0].hops, 2u);
  EXPECT_EQ(flows[0].latency_ps(), 3'000'000u);
  EXPECT_EQ(flows[0].by_category_ps.at("link"), 2'000'000u);
}

TEST(TraceIntegration, XferTraceMatchesStatRegistry) {
  sys::Machine::Params mp;
  mp.nodes = 2;
  mp.node.dram_size = 16ull * 1024 * 1024;
  mp.node.enable_scoma = false;
  sys::Machine machine(mp);
  machine.enable_tracing();

  xfer::BlockTransferHarness harness(machine);
  xfer::TransferSpec spec;
  spec.src = 0x0010'0000;
  spec.dst = 0x0040'0000;
  spec.len = 16384;
  const auto res = harness.run(3, spec);
  ASSERT_TRUE(res.ok);

  std::ostringstream os;
  write_chrome_trace(*machine.tracer(), os,
                     ChromeWriteOptions{machine.kernel().now()});
  TraceAnalysis a = TraceAnalysis::parse_text(os.str());
  const sim::StatRegistry reg = sys::collect_stats(machine);

  // The trace must show the message path across distinct hardware lanes,
  // plus at least one queue-depth counter track.
  std::size_t span_lanes = 0;
  bool saw_sp = false;
  bool saw_link = false;
  for (const auto& t : a.tracks) {
    span_lanes += t.spans > 0 ? 1 : 0;
    saw_sp = saw_sp || (t.full_name() == "n0.sP" && t.spans > 0);
    saw_link = saw_link || (t.category == "link" && t.spans > 0);
  }
  EXPECT_GE(span_lanes, 4u);
  EXPECT_TRUE(saw_sp);
  EXPECT_TRUE(saw_link);
  EXPECT_GE(a.counter_tracks, 1u);
  EXPECT_FALSE(a.flows().empty());

  // Trace-derived occupancy agrees with the StatRegistry (within 1%).
  const struct {
    const char* lane;
    const char* stat;
  } pairs[] = {
      {"n0.bus", "n0.bus.data_occupancy"},
      {"n1.bus", "n1.bus.data_occupancy"},
      {"n0.NIU.IBus", "n0.ctrl.ibus_occupancy"},
      {"n0.aP", "n0.aP.occupancy"},
      {"n0.sP", "n0.sP.occupancy"},
  };
  for (const auto& [lane, stat] : pairs) {
    bool found = false;
    for (std::size_t i = 0; i < a.tracks.size(); ++i) {
      if (a.tracks[i].full_name() == lane) {
        found = true;
        EXPECT_NEAR(a.occupancy(i), reg.get(stat), 0.01) << lane;
      }
    }
    EXPECT_TRUE(found) << lane;
  }
}

}  // namespace
}  // namespace sv::trace

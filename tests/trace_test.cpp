// Tracer ring-buffer semantics, Chrome JSON round-trip, and the
// end-to-end guarantee that trace-derived occupancy agrees with the
// StatRegistry occupancy for the same run.
#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sys/stats_dump.hpp"
#include "trace/analysis.hpp"
#include "trace/chrome_sink.hpp"
#include "trace/trace.hpp"
#include "xfer/approaches.hpp"

namespace sv::trace {
namespace {

TEST(Tracer, RingOverflowKeepsNewest) {
  Tracer tr(4);
  const TrackId t = tr.track("p", "lane", "test");
  for (int i = 0; i < 6; ++i) {
    tr.span(t, "s" + std::to_string(i), 10 * i, 10 * i + 5);
  }
  EXPECT_EQ(tr.size(), 4u);
  EXPECT_EQ(tr.recorded(), 6u);
  EXPECT_EQ(tr.dropped(), 2u);
  std::vector<std::string> names;
  tr.for_each([&](const Event& e) { names.push_back(e.name); });
  EXPECT_EQ(names, (std::vector<std::string>{"s2", "s3", "s4", "s5"}));
}

TEST(Tracer, DisabledRecordsNothing) {
  Tracer tr;
  tr.set_enabled(false);
  const TrackId t = tr.track("p", "lane", "test");
  tr.span(t, "s", 0, 10);
  tr.instant(t, "i", 5);
  tr.counter(t, 5, 1.0);
  EXPECT_EQ(tr.size(), 0u);
  EXPECT_EQ(tr.recorded(), 0u);
}

TEST(Tracer, TrackForSplitsAtFirstDot) {
  Tracer tr;
  const TrackId a = tr.track_for("n0.NIU.TxU", "niu");
  const TrackId b = tr.track("n0", "NIU.TxU", "niu");
  EXPECT_EQ(a, b);
  EXPECT_EQ(tr.tracks()[a].process, "n0");
  EXPECT_EQ(tr.tracks()[a].name, "NIU.TxU");
}

TEST(ChromeSink, RoundTripsThroughAnalysis) {
  Tracer tr;
  const TrackId bus = tr.track("n0", "bus", "bus");
  const TrackId link = tr.track("net", "inj0", "link");
  const TrackId depth = tr.track("n0", "txq0", "queue", /*counter=*/true);
  const std::uint64_t flow = tr.next_flow();
  tr.span(bus, "Read", 1'000'000, 2'000'000);
  tr.span(bus, "Read", 1'500'000, 2'500'000);  // overlaps: union = 1.5us
  tr.span(link, "pkt>n1", 3'000'000, 4'000'000, flow);
  tr.span(link, "pkt>n1", 5'000'000, 6'000'000, flow);
  tr.counter(depth, 1'000'000, 3.0);

  std::ostringstream os;
  write_chrome_trace(tr, os, ChromeWriteOptions{10'000'000});
  TraceAnalysis a = TraceAnalysis::parse_text(os.str());

  EXPECT_EQ(a.sim_now_ps, 10'000'000u);
  EXPECT_EQ(a.duration_ps(), 10'000'000u);
  EXPECT_EQ(a.spans.size(), 4u);
  EXPECT_EQ(a.counter_samples, 1u);
  EXPECT_EQ(a.counter_tracks, 1u);

  bool saw_bus = false;
  bool saw_link = false;
  for (std::size_t i = 0; i < a.tracks.size(); ++i) {
    const auto& t = a.tracks[i];
    if (t.full_name() == "n0.bus") {
      saw_bus = true;
      EXPECT_EQ(t.busy_ps, 1'500'000u);  // overlap merged
      EXPECT_DOUBLE_EQ(a.occupancy(i), 0.15);
    } else if (t.full_name() == "net.inj0") {
      saw_link = true;
      EXPECT_EQ(t.busy_ps, 2'000'000u);
      EXPECT_EQ(t.category, "link");
    }
  }
  EXPECT_TRUE(saw_bus);
  EXPECT_TRUE(saw_link);

  const auto flows = a.flows();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].id, flow);
  EXPECT_EQ(flows[0].hops, 2u);
  EXPECT_EQ(flows[0].latency_ps(), 3'000'000u);
  EXPECT_EQ(flows[0].by_category_ps.at("link"), 2'000'000u);
}

// Split a Chrome JSON document into the individual record lines, with
// metadata ("M") records separated out: the streaming sink emits those
// lazily (at a lane's first event) where the batch writer front-loads
// them, but every other record must match byte-for-byte and in order.
struct SplitRecords {
  std::vector<std::string> meta;
  std::vector<std::string> records;
};
SplitRecords split_records(const std::string& json) {
  SplitRecords out;
  std::istringstream is(json);
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("{\"ph\":", 0) != 0) {
      continue;  // header / footer
    }
    if (!line.empty() && line.back() == ',') {
      line.pop_back();
    }
    if (line.rfind("{\"ph\":\"M\"", 0) == 0) {
      out.meta.push_back(line);
    } else {
      out.records.push_back(line);
    }
  }
  return out;
}

TEST(ChromeStreamSink, MatchesBatchWriterRecords) {
  // One tracer, recorded once, exported both ways. Events are emitted in
  // track-registration order so both emitters assign identical pids/tids.
  Tracer tr;
  std::ostringstream stream_os;
  ChromeStreamSink sink(stream_os);
  tr.set_sink(&sink);

  const TrackId bus = tr.track("n0", "bus", "bus");
  const TrackId link = tr.track("net", "inj0", "link");
  const TrackId depth = tr.track("n1", "txq0", "queue", /*counter=*/true);
  const std::uint64_t flow = tr.next_flow();
  tr.span(bus, "Read", 1'000'000, 2'000'000);
  tr.span(link, "pkt>n1", 3'000'000, 4'000'000, flow);
  tr.instant(bus, "kick", 3'500'000);
  tr.span(link, "pkt>n1", 5'000'000, 6'000'000, flow);
  tr.counter(depth, 4'000'000, 2.0);
  sink.finish(10'000'000);
  tr.set_sink(nullptr);

  std::ostringstream batch_os;
  write_chrome_trace(tr, batch_os, ChromeWriteOptions{10'000'000});

  const SplitRecords streamed = split_records(stream_os.str());
  const SplitRecords batch = split_records(batch_os.str());
  EXPECT_EQ(streamed.records, batch.records);
  // Metadata: same set, different placement.
  auto streamed_meta = streamed.meta;
  auto batch_meta = batch.meta;
  std::sort(streamed_meta.begin(), streamed_meta.end());
  std::sort(batch_meta.begin(), batch_meta.end());
  EXPECT_EQ(streamed_meta, batch_meta);

  // Both parse to the same analysis.
  const TraceAnalysis sa = TraceAnalysis::parse_text(stream_os.str());
  const TraceAnalysis ba = TraceAnalysis::parse_text(batch_os.str());
  EXPECT_EQ(sa.sim_now_ps, ba.sim_now_ps);
  EXPECT_EQ(sa.spans.size(), ba.spans.size());
  EXPECT_EQ(sa.counter_samples, ba.counter_samples);
  ASSERT_EQ(sa.flows().size(), 1u);
  EXPECT_EQ(sa.flows()[0].latency_ps(), ba.flows()[0].latency_ps());
}

TEST(ChromeStreamSink, StreamsPastRingOverwrites) {
  // A tiny ring drops events from the ring, but the streamed file keeps
  // every one — that is the point of the sink.
  Tracer tr(2);
  std::ostringstream os;
  ChromeStreamSink sink(os);
  tr.set_sink(&sink);
  const TrackId t = tr.track("p", "lane", "test");
  for (int i = 0; i < 8; ++i) {
    tr.span(t, "s" + std::to_string(i), 10'000 * i, 10'000 * i + 5'000);
  }
  sink.finish(100'000);
  EXPECT_EQ(tr.dropped(), 6u);
  EXPECT_EQ(sink.events_written(), 8u);
  const TraceAnalysis a = TraceAnalysis::parse_text(os.str());
  EXPECT_EQ(a.spans.size(), 8u);
}

TEST(ChromeStreamSink, FlowTableBoundEvictsOldestChainIntact) {
  Tracer tr;
  std::ostringstream os;
  ChromeStreamSink::Options opts;
  opts.max_pending_flows = 2;
  ChromeStreamSink sink(os, opts);
  tr.set_sink(&sink);
  const TrackId a = tr.track("n0", "tx", "link");
  const TrackId b = tr.track("n1", "rx", "link");
  // Four flows, each complete (2 hops) before the next starts: evictions
  // flush finished chains, so no arrows are lost.
  for (int f = 0; f < 4; ++f) {
    const std::uint64_t id = tr.next_flow();
    const sim::Tick base = 1'000'000 * (f + 1);
    tr.span(a, "send", base, base + 100'000, id);
    tr.span(b, "recv", base + 200'000, base + 300'000, id);
  }
  sink.finish(10'000'000);
  EXPECT_EQ(sink.flows_evicted(), 2u);
  const auto flows = TraceAnalysis::parse_text(os.str()).flows();
  ASSERT_EQ(flows.size(), 4u);
  for (const auto& fl : flows) {
    EXPECT_EQ(fl.hops, 2u);
  }
}

TEST(TraceIntegration, XferTraceMatchesStatRegistry) {
  sys::Machine::Params mp;
  mp.nodes = 2;
  mp.node.dram_size = 16ull * 1024 * 1024;
  mp.node.enable_scoma = false;
  sys::Machine machine(mp);
  machine.enable_tracing();

  xfer::BlockTransferHarness harness(machine);
  xfer::TransferSpec spec;
  spec.src = 0x0010'0000;
  spec.dst = 0x0040'0000;
  spec.len = 16384;
  const auto res = harness.run(3, spec);
  ASSERT_TRUE(res.ok);

  std::ostringstream os;
  write_chrome_trace(*machine.tracer(), os,
                     ChromeWriteOptions{machine.kernel().now()});
  TraceAnalysis a = TraceAnalysis::parse_text(os.str());
  const sim::StatRegistry reg = sys::collect_stats(machine);

  // The trace must show the message path across distinct hardware lanes,
  // plus at least one queue-depth counter track.
  std::size_t span_lanes = 0;
  bool saw_sp = false;
  bool saw_link = false;
  for (const auto& t : a.tracks) {
    span_lanes += t.spans > 0 ? 1 : 0;
    saw_sp = saw_sp || (t.full_name() == "n0.sP" && t.spans > 0);
    saw_link = saw_link || (t.category == "link" && t.spans > 0);
  }
  EXPECT_GE(span_lanes, 4u);
  EXPECT_TRUE(saw_sp);
  EXPECT_TRUE(saw_link);
  EXPECT_GE(a.counter_tracks, 1u);
  EXPECT_FALSE(a.flows().empty());

  // Trace-derived occupancy agrees with the StatRegistry (within 1%).
  const struct {
    const char* lane;
    const char* stat;
  } pairs[] = {
      {"n0.bus", "n0.bus.data_occupancy"},
      {"n1.bus", "n1.bus.data_occupancy"},
      {"n0.NIU.IBus", "n0.ctrl.ibus_occupancy"},
      {"n0.aP", "n0.aP.occupancy"},
      {"n0.sP", "n0.sP.occupancy"},
  };
  for (const auto& [lane, stat] : pairs) {
    bool found = false;
    for (std::size_t i = 0; i < a.tracks.size(); ++i) {
      if (a.tracks[i].full_name() == lane) {
        found = true;
        EXPECT_NEAR(a.occupancy(i), reg.get(stat), 0.01) << lane;
      }
    }
    EXPECT_TRUE(found) << lane;
  }
}

}  // namespace
}  // namespace sv::trace

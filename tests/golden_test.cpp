// Golden-stats regression corpus (gem5-style result pinning): canonical
// machine-wide stats JSON for the paper's figure-3/figure-4 block
// transfers and the extended messaging / S-COMA / reliable-under-loss
// workloads, checked in under tests/golden/. Every run here uses the
// sequential kernel; parallel_equivalence_test then proves the partitioned
// kernel matches the sequential one, so together the two suites pin the
// parallel scheduler to these very bytes.
//
// On intentional behaviour changes regenerate the corpus with
//   SV_GOLDEN_WRITE=1 ./golden_test
// and commit the diff — reviewers see exactly which metrics moved.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/crc32.hpp"
#include "sys/stats_dump.hpp"
#include "tests/app_util.hpp"
#include "tests/ckpt_util.hpp"
#include "tests/test_util.hpp"
#include "xfer/approaches.hpp"

namespace sv {
namespace {

std::string golden_path(const std::string& name) {
  return std::string(SV_GOLDEN_DIR) + "/" + name + ".json";
}

std::uint32_t digest(const std::string& s) {
  return sim::crc32(std::as_bytes(std::span(s.data(), s.size())));
}

/// Compare `actual` against the checked-in corpus entry, or rewrite the
/// entry when SV_GOLDEN_WRITE is set. On mismatch, report the crc32 of
/// both versions and the first diverging byte so drift is easy to locate
/// in the (long) JSON strings.
void check_golden(const std::string& name, const std::string& actual) {
  ASSERT_FALSE(actual.empty()) << name;
  const std::string path = golden_path(name);

  if (std::getenv("SV_GOLDEN_WRITE") != nullptr) {
    std::ofstream os(path);
    ASSERT_TRUE(os) << "cannot write " << path;
    os << actual;
    ASSERT_TRUE(os.good()) << "write failed for " << path;
    return;
  }

  std::ifstream is(path);
  ASSERT_TRUE(is) << "missing golden file " << path
                  << " — regenerate with SV_GOLDEN_WRITE=1 ./golden_test";
  std::stringstream buf;
  buf << is.rdbuf();
  const std::string expected = buf.str();

  if (actual == expected) {
    return;
  }
  std::size_t diff = 0;
  while (diff < actual.size() && diff < expected.size() &&
         actual[diff] == expected[diff]) {
    ++diff;
  }
  const auto context = [&](const std::string& s) {
    const std::size_t from = diff < 40 ? 0 : diff - 40;
    return s.substr(from, 80);
  };
  FAIL() << "stats drifted from golden corpus entry '" << name << "'\n"
         << "  expected crc32=" << std::hex << digest(expected)
         << " actual crc32=" << digest(actual) << std::dec
         << "\n  first divergence at byte " << diff << ":\n  golden: ..."
         << context(expected) << "...\n  actual: ..." << context(actual)
         << "...\nIf the change is intentional, regenerate with "
            "SV_GOLDEN_WRITE=1 ./golden_test and commit the diff.";
}

/// Figure 3/4 block transfers: run one approach at one size on a 2-node
/// fat tree and dump the machine stats.
std::string run_xfer(int approach, std::uint32_t bytes) {
  sys::Machine machine(test::small_machine_params(2));
  xfer::BlockTransferHarness harness(machine);
  xfer::TransferSpec spec;
  spec.len = bytes;
  if (approach >= 4) {
    spec.dst = niu::kScomaBase + 0x8000;
  }
  xfer::RunOptions opt;
  opt.consume = approach >= 4;
  const auto res = harness.run(approach, spec, opt);
  EXPECT_TRUE(res.ok) << "approach " << approach << " failed verification";
  std::ostringstream os;
  sys::dump_stats_json(machine, os);
  return os.str();
}

TEST(GoldenStats, Fig3LatencyApproach1) {
  check_golden("fig3_xfer_a1_4kb", run_xfer(1, 4096));
}

TEST(GoldenStats, Fig3LatencyApproach3) {
  check_golden("fig3_xfer_a3_4kb", run_xfer(3, 4096));
}

TEST(GoldenStats, Fig4BandwidthApproach3) {
  check_golden("fig4_xfer_a3_64kb", run_xfer(3, 65536));
}

TEST(GoldenStats, ExtMsgAllToAll) {
  test::RunSpec spec;
  spec.workload = test::Workload::kMsg;
  spec.nodes = 4;
  spec.count = 16;
  spec.bytes = 32;
  const auto res = test::run_machine_and_dump_stats(spec);
  ASSERT_TRUE(res.completed);
  check_golden("ext_msg_4node", res.stats_json);
}

TEST(GoldenStats, ExtScomaContention) {
  test::RunSpec spec;
  spec.workload = test::Workload::kShm;
  spec.nodes = 4;
  spec.ops = 40;
  const auto res = test::run_machine_and_dump_stats(spec);
  ASSERT_TRUE(res.completed);
  check_golden("ext_scoma_4node", res.stats_json);
}

TEST(GoldenStats, ExtReliableUnderLoss) {
  test::RunSpec spec;
  spec.workload = test::Workload::kReliable;
  spec.nodes = 4;
  spec.count = 12;
  spec.bytes = 48;
  spec.fault.seed = sim::Rng::kDefaultSeed;
  spec.fault.drop_rate = 0.05;
  spec.fault.corrupt_rate = 0.05;
  const auto res = test::run_machine_and_dump_stats(spec);
  ASSERT_TRUE(res.completed);
  check_golden("ext_reliable_4node", res.stats_json);
}

TEST(GoldenStats, ExtReliableRestored) {
  // A checkpointed-and-restored run pinned to the same corpus bytes as
  // any uninterrupted run would produce (DESIGN.md §14): the machine is
  // snapshotted mid-flight, a second machine replays to the capture tick,
  // byte-verifies against the snapshot, then finishes — and its stats
  // must match this corpus entry forever after.
  test::RunSpec spec;
  spec.workload = test::Workload::kReliable;
  spec.nodes = 4;
  spec.count = 12;
  spec.bytes = 48;
  spec.fault.seed = sim::Rng::kDefaultSeed;
  spec.fault.drop_rate = 0.05;
  spec.fault.corrupt_rate = 0.05;
  spec.net = sys::Machine::NetKind::kFatTree;

  test::SteppableRun original(spec);
  const ckpt::Snapshot snap = original.capture_at(20 * sim::kMicrosecond);

  test::SteppableRun restored(spec);
  const ckpt::Snapshot replay = restored.capture_at(snap.tick);
  try {
    ckpt::Snapshot::verify(snap, replay);
  } catch (const ckpt::Error& e) {
    FAIL() << e.what();
  }
  restored.finish();
  check_golden("ext_reliable_restored", restored.stats_json());
}

// --- Application runtime (Ext-P): one entry per shipped app, each over
// the transport that stresses it best. The stats JSON includes the app.*
// transport counters, so both the machine and the runtime are pinned.

TEST(GoldenStats, ExtAppStencilMsg) {
  test::AppRunSpec spec;
  spec.app = test::AppKind::kStencil;
  spec.transport = app::TransportKind::kMsg;
  const auto res = test::run_app_and_dump_stats(spec);
  ASSERT_TRUE(res.completed);
  ASSERT_EQ(res.app.errors, 0u);
  check_golden("ext_app_stencil_msg", res.stats_json);
}

TEST(GoldenStats, ExtAppAllreduceShm) {
  test::AppRunSpec spec;
  spec.app = test::AppKind::kAllreduce;
  spec.transport = app::TransportKind::kShm;
  spec.allreduce.max_elems = 32;
  const auto res = test::run_app_and_dump_stats(spec);
  ASSERT_TRUE(res.completed);
  ASSERT_EQ(res.app.errors, 0u);
  check_golden("ext_app_allreduce_shm", res.stats_json);
}

TEST(GoldenStats, ExtAppKvReliable) {
  test::AppRunSpec spec;
  spec.app = test::AppKind::kKv;
  spec.transport = app::TransportKind::kReliable;
  spec.kv.requests = 16;
  const auto res = test::run_app_and_dump_stats(spec);
  ASSERT_TRUE(res.completed);
  ASSERT_EQ(res.app.errors, 0u);
  check_golden("ext_app_kv_reliable", res.stats_json);
}

}  // namespace
}  // namespace sv

// Functional tests for the app runtime: tag matching, wildcards,
// fragmentation, nonblocking completion, and the collectives against
// host-computed references — each core case swept over all three
// transports. These run sequentially (threads=0); cross-thread
// byte-identity is app_equivalence_test's job.
#include "app_util.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>

namespace sv::test {
namespace {

using app::Comm;
using app::Inbound;
using app::ReduceOp;
using app::TransportKind;

constexpr TransportKind kAllTransports[] = {
    TransportKind::kMsg, TransportKind::kShm, TransportKind::kReliable};

const char* transport_name(TransportKind t) {
  switch (t) {
    case TransportKind::kMsg:
      return "msg";
    case TransportKind::kShm:
      return "shm";
    case TransportKind::kReliable:
      return "reliable";
  }
  return "?";
}

/// Build a small machine, launch `program` and drive it to completion.
/// Returns the world's aggregate transport stats for extra assertions.
app::TransportStats run_program(TransportKind tk, std::size_t nodes,
                                std::size_t nranks,
                                const app::World::Program& program) {
  auto mp = small_machine_params(nodes, sys::Machine::NetKind::kIdeal);
  sys::Machine machine(mp);
  app::World::Params wp;
  wp.nranks = nranks;
  wp.transport = tk;
  app::World world(machine, wp);
  world.launch(program);
  EXPECT_TRUE(sys::run_until(machine, [&] { return world.done(); },
                             machine.now() + 2000 * sim::kMillisecond))
      << "program timed out at " << machine.now() << " ps";
  app::TransportStats total;
  for (sim::NodeId n = 0; n < machine.size(); ++n) {
    const auto& s = world.transport(n).stats();
    total.msgs_sent.inc(s.msgs_sent.value());
    total.frames_sent.inc(s.frames_sent.value());
    total.bytes_sent.inc(s.bytes_sent.value());
    total.msgs_delivered.inc(s.msgs_delivered.value());
    total.local_delivered.inc(s.local_delivered.value());
  }
  return total;
}

std::vector<std::byte> tagged_payload(std::uint32_t tag, std::size_t n) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((tag * 7 + i * 13 + 1) & 0xFF);
  }
  return v;
}

// ---------------------------------------------------------------------------
// Point-to-point.
// ---------------------------------------------------------------------------

sim::Co<void> tag_matching_program(Comm& c, std::uint64_t* mismatches) {
  if (c.rank() == 0) {
    co_await c.send(1, 7, tagged_payload(7, 24));
    co_await c.send(1, 8, tagged_payload(8, 24));
  } else {
    // Receive in the opposite order the sender posted: tag matching must
    // hold back the tag-7 message while tag 8 is awaited.
    const Inbound m8 = co_await c.recv(0, 8);
    const Inbound m7 = co_await c.recv(0, 7);
    if (m8.data != tagged_payload(8, 24) || m8.tag != 8) {
      ++*mismatches;
    }
    if (m7.data != tagged_payload(7, 24) || m7.tag != 7) {
      ++*mismatches;
    }
  }
}

TEST(AppPointToPoint, TagMatchingReordersDelivery) {
  for (const auto tk : kAllTransports) {
    SCOPED_TRACE(transport_name(tk));
    std::uint64_t mismatches = 0;
    run_program(tk, 2, 2, [&mismatches](Comm& c) -> sim::Co<void> {
      co_await tag_matching_program(c, &mismatches);
    });
    EXPECT_EQ(mismatches, 0u);
  }
}

sim::Co<void> wildcard_program(Comm& c, std::vector<std::uint64_t>* seen) {
  if (c.rank() == 0) {
    for (std::uint16_t i = 1; i < c.size(); ++i) {
      const Inbound m = co_await c.recv(app::kAnyRank, app::kAnyTag);
      ++(*seen)[m.src_rank];
      if (m.data != tagged_payload(m.src_rank, 16)) {
        seen->back() = 999;  // sentinel slot flags payload corruption
      }
    }
  } else {
    co_await c.send(0, c.rank(), tagged_payload(c.rank(), 16));
  }
}

TEST(AppPointToPoint, WildcardRecvAcceptsEverySource) {
  for (const auto tk : kAllTransports) {
    SCOPED_TRACE(transport_name(tk));
    std::vector<std::uint64_t> seen(5, 0);  // slots 0..3 ranks, 4 sentinel
    run_program(tk, 4, 4, [&seen](Comm& c) -> sim::Co<void> {
      co_await wildcard_program(c, &seen);
    });
    EXPECT_EQ(seen[1], 1u);
    EXPECT_EQ(seen[2], 1u);
    EXPECT_EQ(seen[3], 1u);
    EXPECT_EQ(seen[4], 0u);
  }
}

sim::Co<void> fragment_program(Comm& c, std::size_t bytes,
                               std::uint64_t* mismatches) {
  if (c.rank() == 0) {
    co_await c.send(1, 3, tagged_payload(3, bytes));
    co_await c.send(1, 4, {});  // zero-length message
  } else {
    const Inbound big = co_await c.recv(0, 3);
    const Inbound empty = co_await c.recv(0, 4);
    if (big.data != tagged_payload(3, bytes)) {
      ++*mismatches;
    }
    if (!empty.data.empty()) {
      ++*mismatches;
    }
  }
}

TEST(AppPointToPoint, FragmentsAndReassemblesLargeMessages) {
  // 1000 bytes spans many frames on every transport (payloads 72/104/56).
  for (const auto tk : kAllTransports) {
    SCOPED_TRACE(transport_name(tk));
    std::uint64_t mismatches = 0;
    const auto stats =
        run_program(tk, 2, 2, [&mismatches](Comm& c) -> sim::Co<void> {
          co_await fragment_program(c, 1000, &mismatches);
        });
    EXPECT_EQ(mismatches, 0u);
    EXPECT_EQ(stats.msgs_delivered.value(), 2u);
    EXPECT_GT(stats.frames_sent.value(), 8u);
  }
}

sim::Co<void> nonblocking_program(Comm& c, std::uint64_t* failures) {
  constexpr std::uint32_t kTags[] = {10, 11, 12, 13};
  if (c.rank() == 0) {
    std::vector<app::Request> reqs;
    for (const auto t : kTags) {
      reqs.push_back(c.isend(1, t, tagged_payload(t, 40)));
    }
    for (auto& r : reqs) {
      (void)co_await c.wait(r);
      if (!r.done()) {
        ++*failures;
      }
    }
  } else {
    // Post the receives in reverse tag order, redeem in posting order:
    // each wait() must yield the message matching its own tag, however
    // the frames interleaved on the wire.
    std::vector<app::Request> reqs;
    for (auto it = std::rbegin(kTags); it != std::rend(kTags); ++it) {
      reqs.push_back(c.irecv(0, *it));
    }
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      const std::uint32_t want = kTags[3 - i];
      const Inbound m = co_await c.wait(reqs[i]);
      if (m.tag != want || m.data != tagged_payload(want, 40)) {
        ++*failures;
      }
    }
  }
}

TEST(AppPointToPoint, NonblockingRequestsCompleteIndependently) {
  for (const auto tk : kAllTransports) {
    SCOPED_TRACE(transport_name(tk));
    std::uint64_t failures = 0;
    run_program(tk, 2, 2, [&failures](Comm& c) -> sim::Co<void> {
      co_await nonblocking_program(c, &failures);
    });
    EXPECT_EQ(failures, 0u);
  }
}

// Back-to-back nonblocking sends to the same peer: the regression case
// for completion paths that assumed one outstanding operation per
// endpoint (satellite: endpoint queue gates). All eight messages must
// arrive intact and in tag-matchable form.
sim::Co<void> burst_program(Comm& c, std::uint64_t* failures) {
  constexpr std::size_t kBurst = 8;
  if (c.rank() == 0) {
    std::vector<app::Request> reqs;
    for (std::size_t i = 0; i < kBurst; ++i) {
      reqs.push_back(c.isend(1, static_cast<std::uint32_t>(100 + i),
                             tagged_payload(static_cast<std::uint32_t>(i),
                                            120)));
    }
    for (auto& r : reqs) {
      (void)co_await c.wait(r);
    }
  } else {
    for (std::size_t i = 0; i < kBurst; ++i) {
      const Inbound m =
          co_await c.recv(0, static_cast<std::uint32_t>(100 + i));
      if (m.data != tagged_payload(static_cast<std::uint32_t>(i), 120)) {
        ++*failures;
      }
    }
  }
}

TEST(AppPointToPoint, BackToBackNonblockingSendsAllArrive) {
  for (const auto tk : kAllTransports) {
    SCOPED_TRACE(transport_name(tk));
    std::uint64_t failures = 0;
    run_program(tk, 2, 2, [&failures](Comm& c) -> sim::Co<void> {
      co_await burst_program(c, &failures);
    });
    EXPECT_EQ(failures, 0u);
  }
}

// ---------------------------------------------------------------------------
// Collectives.
// ---------------------------------------------------------------------------

TEST(AppCollective, BarrierHoldsEveryoneBack) {
  // Rank 0 burns simulated time before entering the barrier; no rank may
  // leave it earlier than that instant.
  for (const auto tk : kAllTransports) {
    SCOPED_TRACE(transport_name(tk));
    std::vector<sim::Tick> after(4, 0);
    std::vector<sim::Tick> straggler_ready(1, 0);
    auto prog = [&after, &straggler_ready](Comm& c) -> sim::Co<void> {
      if (c.rank() == 0) {
        co_await c.compute(2'000'000);
        straggler_ready[0] = c.kernel().now();
        for (int round = 0; round < 3; ++round) {
          co_await c.barrier();
        }
        after[0] = c.kernel().now();
      } else {
        for (int round = 0; round < 3; ++round) {
          co_await c.barrier();
        }
        after[c.rank()] = c.kernel().now();
      }
    };
    run_program(tk, 4, 4, prog);
    for (std::size_t r = 0; r < 4; ++r) {
      EXPECT_GE(after[r], straggler_ready[0]) << "rank " << r;
    }
  }
}

sim::Co<void> allreduce_program(Comm& c, std::uint64_t* errors) {
  const std::size_t n = c.size();
  constexpr std::size_t kElems = 10;
  std::vector<double> v(kElems);

  // kSum against the closed-form reference (ring order differs from the
  // naive order, so compare with a relative tolerance).
  for (std::size_t i = 0; i < kElems; ++i) {
    v[i] = static_cast<double>((c.rank() + 1) * (i + 2));
  }
  co_await c.allreduce(v, ReduceOp::kSum);
  for (std::size_t i = 0; i < kElems; ++i) {
    const double ref =
        static_cast<double>((i + 2) * n * (n + 1)) / 2.0;
    if (std::abs(v[i] - ref) > 1e-9 * std::max(1.0, std::abs(ref))) {
      ++*errors;
    }
  }

  // kMin / kMax are order-insensitive: exact equality required.
  for (std::size_t i = 0; i < kElems; ++i) {
    v[i] = static_cast<double>((c.rank() * 7 + i * 3) % 11);
  }
  std::vector<double> mx = v;
  co_await c.allreduce(v, ReduceOp::kMin);
  co_await c.allreduce(mx, ReduceOp::kMax);
  for (std::size_t i = 0; i < kElems; ++i) {
    double lo = 1e300;
    double hi = -1e300;
    for (std::size_t r = 0; r < n; ++r) {
      const double x = static_cast<double>((r * 7 + i * 3) % 11);
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
    if (v[i] != lo || mx[i] != hi) {
      ++*errors;
    }
  }
}

TEST(AppCollective, AllreduceMatchesHostReference) {
  for (const auto tk : kAllTransports) {
    SCOPED_TRACE(transport_name(tk));
    std::uint64_t errors = 0;
    run_program(tk, 4, 4, [&errors](Comm& c) -> sim::Co<void> {
      co_await allreduce_program(c, &errors);
    });
    EXPECT_EQ(errors, 0u);
  }
}

sim::Co<void> bcast_program(Comm& c, std::uint64_t* errors) {
  constexpr std::uint16_t kRoot = 2;
  std::vector<std::byte> buf(100);
  if (c.rank() == kRoot) {
    buf = tagged_payload(55, 100);
  }
  co_await c.bcast(kRoot, buf);
  if (buf != tagged_payload(55, 100)) {
    ++*errors;
  }
}

TEST(AppCollective, BcastFromNonzeroRoot) {
  for (const auto tk : kAllTransports) {
    SCOPED_TRACE(transport_name(tk));
    std::uint64_t errors = 0;
    run_program(tk, 4, 4, [&errors](Comm& c) -> sim::Co<void> {
      co_await bcast_program(c, &errors);
    });
    EXPECT_EQ(errors, 0u);
  }
}

sim::Co<void> reduce_program(Comm& c, std::uint64_t* errors) {
  constexpr std::uint16_t kRoot = 1;
  const std::size_t n = c.size();
  std::vector<double> v(8);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<double>(c.rank() + 1) * static_cast<double>(i + 1);
  }
  co_await c.reduce(kRoot, v, ReduceOp::kSum);
  if (c.rank() == kRoot) {
    for (std::size_t i = 0; i < v.size(); ++i) {
      const double ref =
          static_cast<double>((i + 1) * n * (n + 1)) / 2.0;
      if (std::abs(v[i] - ref) > 1e-9 * std::max(1.0, std::abs(ref))) {
        ++*errors;
      }
    }
  }
}

TEST(AppCollective, ReduceToNonzeroRoot) {
  for (const auto tk : kAllTransports) {
    SCOPED_TRACE(transport_name(tk));
    std::uint64_t errors = 0;
    run_program(tk, 4, 4, [&errors](Comm& c) -> sim::Co<void> {
      co_await reduce_program(c, &errors);
    });
    EXPECT_EQ(errors, 0u);
  }
}

// ---------------------------------------------------------------------------
// Rank placement.
// ---------------------------------------------------------------------------

sim::Co<void> ring_program(Comm& c, std::uint64_t* failures) {
  const std::uint16_t n = c.size();
  const auto right = static_cast<std::uint16_t>((c.rank() + 1) % n);
  const auto left = static_cast<std::uint16_t>((c.rank() + n - 1) % n);
  const app::Request r = c.irecv(left, 9);
  co_await c.send(right, 9, tagged_payload(c.rank(), 32));
  const Inbound m = co_await c.wait(r);
  if (m.src_rank != left || m.data != tagged_payload(left, 32)) {
    ++*failures;
  }
}

TEST(AppWorld, MultipleRanksPerNodeUseLocalDelivery) {
  // Round-robin placement puts ranks 0 and 2 on node 0: rank 0 -> rank 2
  // is a same-node message (short-circuited), rank 0 -> rank 1 crosses.
  for (const auto tk : kAllTransports) {
    SCOPED_TRACE(transport_name(tk));
    std::uint64_t failures = 0;
    const auto stats =
        run_program(tk, 2, 4, [&failures](Comm& c) -> sim::Co<void> {
          if (c.rank() == 0) {
            co_await c.send(2, 6, tagged_payload(6, 16));  // same node
            co_await c.send(1, 6, tagged_payload(6, 16));  // cross node
          } else if (c.rank() == 1 || c.rank() == 2) {
            const Inbound m = co_await c.recv(0, 6);
            if (m.data != tagged_payload(6, 16)) {
              ++failures;
            }
          }
          co_return;
        });
    EXPECT_EQ(failures, 0u);
    EXPECT_EQ(stats.local_delivered.value(), 1u);
    EXPECT_EQ(stats.msgs_delivered.value(), 2u);
  }
}

TEST(AppWorld, RingAcrossFourRanksOnTwoNodes) {
  for (const auto tk : kAllTransports) {
    SCOPED_TRACE(transport_name(tk));
    std::uint64_t failures = 0;
    run_program(tk, 2, 4, [&failures](Comm& c) -> sim::Co<void> {
      co_await ring_program(c, &failures);
    });
    EXPECT_EQ(failures, 0u);
  }
}

// ---------------------------------------------------------------------------
// Shipped applications (smoke; equivalence sweeps live elsewhere).
// ---------------------------------------------------------------------------

TEST(AppPrograms, StencilRunsCleanOnEveryTransport) {
  for (const auto tk : kAllTransports) {
    SCOPED_TRACE(transport_name(tk));
    AppRunSpec spec;
    spec.app = AppKind::kStencil;
    spec.transport = tk;
    const auto res = run_app_and_dump_stats(spec);
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(res.app.errors, 0u);
    EXPECT_EQ(res.app.ops, 4u * 4u);  // iters summed over 4 ranks
    EXPECT_GT(res.app.checksum, 0.0);
  }
}

TEST(AppPrograms, AllreduceSweepValidatesAgainstHost) {
  for (const auto tk : kAllTransports) {
    SCOPED_TRACE(transport_name(tk));
    AppRunSpec spec;
    spec.app = AppKind::kAllreduce;
    spec.transport = tk;
    const auto res = run_app_and_dump_stats(spec);
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(res.app.errors, 0u);
    EXPECT_GT(res.app.ops, 0u);
  }
}

TEST(AppPrograms, KvServiceAnswersEveryRequest) {
  for (const auto tk : kAllTransports) {
    SCOPED_TRACE(transport_name(tk));
    AppRunSpec spec;
    spec.app = AppKind::kKv;
    spec.transport = tk;
    spec.kv.requests = 24;
    const auto res = run_app_and_dump_stats(spec);
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(res.app.errors, 0u);
    // Clients and servers both count each request: 3 clients x 24, twice.
    EXPECT_EQ(res.app.ops, 2u * 24u * 3u);
  }
}

// ---------------------------------------------------------------------------
// Fault matrix: the applications must run to completion, with clean
// results, over the reliable transport on a lossy network. (msg and shm
// offer no delivery guarantee, so only reliable is asserted here.)
// ---------------------------------------------------------------------------

fault::Plan lossy_plan(std::uint64_t seed) {
  fault::Plan p;
  p.seed = seed;
  p.drop_rate = 0.05;
  p.corrupt_rate = 0.02;
  return p;
}

void run_app_under_faults(AppKind app, std::uint64_t seed) {
  AppRunSpec spec;
  spec.app = app;
  spec.transport = TransportKind::kReliable;
  spec.fault = lossy_plan(seed);
  spec.stencil.nx = 8;
  spec.stencil.ny = 8;
  spec.stencil.iters = 2;
  spec.allreduce.max_elems = 16;
  spec.allreduce.iters = 1;
  spec.kv.requests = 8;
  const auto res = run_app_and_dump_stats(spec);
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.app.errors, 0u);
  EXPECT_GT(res.app.ops, 0u);
}

TEST(AppFaultMatrix, StencilCompletesOverLossyReliable) {
  for (const std::uint64_t seed : {1ull, 99ull}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    run_app_under_faults(AppKind::kStencil, seed);
  }
}

TEST(AppFaultMatrix, AllreduceCompletesOverLossyReliable) {
  for (const std::uint64_t seed : {1ull, 99ull}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    run_app_under_faults(AppKind::kAllreduce, seed);
  }
}

TEST(AppFaultMatrix, KvCompletesOverLossyReliable) {
  for (const std::uint64_t seed : {1ull, 99ull}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    run_app_under_faults(AppKind::kKv, seed);
  }
}

}  // namespace
}  // namespace sv::test

// Allocation-counting hook: proves the kernel hot path is allocation-free.
//
// This binary replaces the global operator new/delete with counting
// versions (DESIGN.md §11). Each test warms the relevant path up — letting
// coroutine frames seed the FramePool freelists, PacketPool slots get
// created, event-queue buckets reach steady occupancy — then snapshots the
// allocation counter across a steady-state window and requires it not to
// move. Any regression that reintroduces a heap allocation per event
// dispatch or per packet hop (an oversized lambda falling back to
// std::function, a payload growing a vector again, a coroutine frame
// missing the pool) fails here with an exact count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "net/link.hpp"
#include "net/network.hpp"
#include "sim/coro.hpp"
#include "sim/kernel.hpp"

namespace {

std::atomic<std::uint64_t> g_news{0};

}  // namespace

// Counting global allocator. Counts every allocation in the process (gtest
// included), so tests only compare deltas across windows where the code
// under test runs alone.
void* operator new(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_news.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace sv {
namespace {

std::uint64_t allocs() { return g_news.load(std::memory_order_relaxed); }

// --- Event dispatch -------------------------------------------------------

// A self-rescheduling event chain: the canonical steady-state workload.
// Capture is 24 bytes — well inside InlineFunc's inline buffer.
struct Ticker {
  sim::Kernel* k;
  std::uint64_t remaining;
  sim::Tick delta;

  void operator()() {
    if (remaining == 0) {
      return;
    }
    --remaining;
    k->schedule(delta, Ticker{*this});
  }
};

TEST(AllocHook, EventDispatchIsAllocationFree) {
  sim::Kernel k;
  // Warmup: grows the wheel's bucket vectors to steady occupancy.
  k.schedule(1, Ticker{&k, 10'000, 100});
  k.run();

  const std::uint64_t before = allocs();
  k.schedule(1, Ticker{&k, 100'000, 100});
  k.run();
  EXPECT_EQ(allocs() - before, 0u)
      << "schedule/dispatch allocated on the steady-state path";
}

TEST(AllocHook, FarEventsUseOnlyTheWarmHeap) {
  sim::Kernel k;
  // Far-future deltas (beyond the wheel horizon) go through the binary
  // heap; after warmup its backing vector no longer grows.
  k.schedule(1, Ticker{&k, 10'000, 1'000'000});
  k.run();

  const std::uint64_t before = allocs();
  k.schedule(1, Ticker{&k, 100'000, 1'000'000});
  k.run();
  EXPECT_EQ(allocs() - before, 0u);
}

// --- Packet hop over a Link ----------------------------------------------

TEST(AllocHook, LinkPacketHopIsAllocationFree) {
  sim::Kernel k;
  net::Link link(k, "l", {});
  std::uint64_t received = 0;
  link.set_sink([&](net::Packet&& p) {
    ++received;
    link.return_credit(p.priority);
  });

  auto burst = [&](std::uint64_t count) -> sim::Co<void> {
    for (std::uint64_t i = 0; i < count; ++i) {
      net::Packet pkt;
      pkt.dest = 1;
      pkt.serial = i + 1;
      pkt.payload.resize(64);
      co_await link.send(std::move(pkt));
    }
  };

  // Warmup: seeds FramePool freelists (send/delay coroutine frames) and
  // the link's PacketPool slot.
  sim::spawn(burst(300));
  k.run();
  ASSERT_EQ(received, 300u);

  const std::uint64_t before = allocs();
  sim::spawn(burst(1'000));
  k.run();
  EXPECT_EQ(allocs() - before, 0u)
      << "a packet hop across a warm link allocated";
  EXPECT_EQ(received, 1'300u);
}

// --- Packet delivery through IdealNetwork --------------------------------

TEST(AllocHook, IdealNetworkSteadyStateIsAllocationFree) {
  sim::Kernel k;
  net::IdealNetwork net(k, "net", {.nodes = 2});
  std::uint64_t received = 0;
  net.set_endpoint(0, [&](net::Packet&&) {});
  net.set_endpoint(1, [&](net::Packet&&) { ++received; });

  auto burst = [&](std::uint64_t count) -> sim::Co<void> {
    for (std::uint64_t i = 0; i < count; ++i) {
      net::Packet pkt;
      pkt.src = 0;
      pkt.dest = 1;
      pkt.payload.resize(64);
      co_await net.inject(std::move(pkt));
    }
  };

  sim::spawn(burst(300));
  k.run();
  ASSERT_EQ(received, 300u);

  const std::uint64_t before = allocs();
  sim::spawn(burst(1'000));
  k.run();
  EXPECT_EQ(allocs() - before, 0u)
      << "an IdealNetwork inject->deliver round allocated";
  EXPECT_EQ(received, 1'300u);
}

}  // namespace
}  // namespace sv

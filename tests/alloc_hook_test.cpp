// Allocation-counting hook: proves the kernel hot path is allocation-free.
//
// This binary replaces the global operator new/delete with counting
// versions (DESIGN.md §11). Each test warms the relevant path up — letting
// coroutine frames seed the FramePool freelists, PacketPool slots get
// created, event-queue buckets reach steady occupancy — then snapshots the
// allocation counter across a steady-state window and requires it not to
// move. Any regression that reintroduces a heap allocation per event
// dispatch or per packet hop (an oversized lambda falling back to
// std::function, a payload growing a vector again, a coroutine frame
// missing the pool) fails here with an exact count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "net/link.hpp"
#include "net/network.hpp"
#include "sim/coro.hpp"
#include "sim/kernel.hpp"
#include "tests/test_util.hpp"
#include "xfer/approaches.hpp"

namespace {

std::atomic<std::uint64_t> g_news{0};

}  // namespace

// Counting global allocator. Counts every allocation in the process (gtest
// included), so tests only compare deltas across windows where the code
// under test runs alone.
void* operator new(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_news.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace sv {
namespace {

std::uint64_t allocs() { return g_news.load(std::memory_order_relaxed); }

// --- Event dispatch -------------------------------------------------------

// A self-rescheduling event chain: the canonical steady-state workload.
// Capture is 24 bytes — well inside InlineFunc's inline buffer.
struct Ticker {
  sim::Kernel* k;
  std::uint64_t remaining;
  sim::Tick delta;

  void operator()() {
    if (remaining == 0) {
      return;
    }
    --remaining;
    k->schedule(delta, Ticker{*this});
  }
};

TEST(AllocHook, EventDispatchIsAllocationFree) {
  sim::Kernel k;
  // Warmup: grows the wheel's bucket vectors to steady occupancy.
  k.schedule(1, Ticker{&k, 10'000, 100});
  k.run();

  const std::uint64_t before = allocs();
  k.schedule(1, Ticker{&k, 100'000, 100});
  k.run();
  EXPECT_EQ(allocs() - before, 0u)
      << "schedule/dispatch allocated on the steady-state path";
}

TEST(AllocHook, FarEventsUseOnlyTheWarmHeap) {
  sim::Kernel k;
  // Far-future deltas (beyond the wheel horizon) go through the binary
  // heap; after warmup its backing vector no longer grows.
  k.schedule(1, Ticker{&k, 10'000, 1'000'000});
  k.run();

  const std::uint64_t before = allocs();
  k.schedule(1, Ticker{&k, 100'000, 1'000'000});
  k.run();
  EXPECT_EQ(allocs() - before, 0u);
}

// --- Packet hop over a Link ----------------------------------------------

TEST(AllocHook, LinkPacketHopIsAllocationFree) {
  sim::Kernel k;
  net::Link link(k, "l", {});
  std::uint64_t received = 0;
  link.set_sink([&](net::Packet&& p) {
    ++received;
    link.return_credit(p.priority);
  });

  auto burst = [&](std::uint64_t count) -> sim::Co<void> {
    for (std::uint64_t i = 0; i < count; ++i) {
      net::Packet pkt;
      pkt.dest = 1;
      pkt.serial = i + 1;
      pkt.payload.resize(64);
      co_await link.send(std::move(pkt));
    }
  };

  // Warmup: seeds FramePool freelists (send/delay coroutine frames) and
  // the link's PacketPool slot.
  sim::spawn(burst(300));
  k.run();
  ASSERT_EQ(received, 300u);

  const std::uint64_t before = allocs();
  sim::spawn(burst(1'000));
  k.run();
  EXPECT_EQ(allocs() - before, 0u)
      << "a packet hop across a warm link allocated";
  EXPECT_EQ(received, 1'300u);
}

// --- Packet delivery through IdealNetwork --------------------------------

TEST(AllocHook, IdealNetworkSteadyStateIsAllocationFree) {
  sim::Kernel k;
  net::IdealNetwork net(k, "net", {.nodes = 2});
  std::uint64_t received = 0;
  net.set_endpoint(0, [&](net::Packet&&) {});
  net.set_endpoint(1, [&](net::Packet&&) { ++received; });

  auto burst = [&](std::uint64_t count) -> sim::Co<void> {
    for (std::uint64_t i = 0; i < count; ++i) {
      net::Packet pkt;
      pkt.src = 0;
      pkt.dest = 1;
      pkt.payload.resize(64);
      co_await net.inject(std::move(pkt));
    }
  };

  sim::spawn(burst(300));
  k.run();
  ASSERT_EQ(received, 300u);

  const std::uint64_t before = allocs();
  sim::spawn(burst(1'000));
  k.run();
  EXPECT_EQ(allocs() - before, 0u)
      << "an IdealNetwork inject->deliver round allocated";
  EXPECT_EQ(received, 1'300u);
}

// --- Functional-model steady state (fig4-style msg workload) --------------

// The full machine driving the Figure-4 messaging transfer (approach 1:
// aP copies through DRAM, NIU basic messages carry the data) — the steady
// state the fast-path layer (DESIGN.md §12) optimizes. Unlike the bare
// kernel paths above, the functional model is not yet allocation-FREE:
// after warmup, the known remaining allocators are (a) one payload-vector
// allocation per received basic message (msg::Message::data), (b) a
// std::deque<net::Packet> block node every handful of packets in the NIU
// tx and router output queues, and (c) a slowly decaying trickle of
// event-wheel buckets reaching new occupancy maxima. All are per-MESSAGE
// or rarer — measured ~500 per 16 KiB transfer (~190 basic messages), and
// this workload dispatches ~30k events per transfer. The bound below
// therefore still fails loudly on any per-event or per-packet-hop
// regression (which would add >= 30k allocations per transfer) while
// pinning the per-message costs so they cannot silently multiply.
TEST(AllocHook, Fig4MsgWorkloadSteadyStateAllocationsBounded) {
  auto mp = test::small_machine_params(2);
  sys::Machine machine(mp);
  xfer::BlockTransferHarness harness(machine);
  xfer::TransferSpec spec;
  spec.len = 16384;

  // Warmup: reach steady pool/bucket occupancy (the bucket-growth trickle
  // decays over the first several transfers).
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(harness.run(1, spec).ok);
  }

  const std::uint64_t before = allocs();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(harness.run(1, spec).ok);
  }
  // Measured: ~1550 over the 3-transfer window (~515 per transfer, ~2.7
  // per delivered message). The ceiling leaves ~35% noise headroom.
  EXPECT_LT(allocs() - before, 2100u)
      << "a warm fig4-style messaging transfer allocated far beyond the "
         "known per-message sources (payload vectors, packet-deque nodes)";
}

}  // namespace
}  // namespace sv

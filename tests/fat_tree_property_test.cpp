// Property tests for the k-ary n-tree at scale: LCA routing correctness,
// hop-count symmetry and bounds, up*/down* deadlock freedom, closed-form
// router/link counts against real construction, and loss-free permutation
// traffic audited at 256/512/1024 endpoints.
//
// The pure-arithmetic properties (FatTreeTopology) run at every size and
// radix unconditionally — no routers are built. Tests that construct or
// drive a real FatTreeNetwork gate their largest instances behind
// SV_SCALE_SLOW=1 so the default CI lane stays fast.
#include <cstdlib>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "net/fat_tree.hpp"
#include "net/topology.hpp"
#include "sim/coro.hpp"
#include "sim/kernel.hpp"
#include "tests/test_util.hpp"

namespace sv::net {
namespace {

Packet make_packet(sim::NodeId src, sim::NodeId dest, std::size_t bytes) {
  Packet p;
  p.src = src;
  p.dest = dest;
  p.dest_queue = 1;
  p.priority = kPriorityLow;
  p.payload.resize(bytes);
  return p;
}

bool scale_slow() {
  const char* v = std::getenv("SV_SCALE_SLOW");
  return v != nullptr && v[0] == '1';
}

const std::size_t kSizes[] = {256, 512, 1024};
const unsigned kRadixes[] = {2, 4, 8};

/// Deterministic sample of endpoint pairs covering near (same leaf) and
/// far (top-of-tree) traffic: strided sources against strided + bit-mixed
/// destinations. ~4k pairs per (size, radix) instance.
std::vector<std::pair<sim::NodeId, sim::NodeId>> sample_pairs(
    std::size_t nodes) {
  std::vector<std::pair<sim::NodeId, sim::NodeId>> out;
  const std::size_t stride = nodes / 64 == 0 ? 1 : nodes / 64;
  for (std::size_t s = 0; s < nodes; s += stride) {
    for (std::size_t d = 0; d < nodes; d += stride) {
      out.emplace_back(static_cast<sim::NodeId>(s),
                       static_cast<sim::NodeId>(d));
    }
    out.emplace_back(static_cast<sim::NodeId>(s),
                     static_cast<sim::NodeId>(s));  // self
    out.emplace_back(static_cast<sim::NodeId>(s),
                     static_cast<sim::NodeId>(nodes - 1 - s));  // mirror
  }
  return out;
}

TEST(FatTreeProperty, RoutingWalksReachTheDestination) {
  for (const std::size_t nodes : kSizes) {
    for (const unsigned k : kRadixes) {
      const FatTreeTopology t = FatTreeTopology::make(nodes, k);
      for (const auto& [src, dst] : sample_pairs(nodes)) {
        // Walk the route_port decisions from the source's leaf router.
        // `w` tracks the router's within-level index; going up through
        // up-port k+c replaces digit l with c, going down through port p
        // moves to the child whose level-(l-1) index restores digit
        // (l-1) of w — mirroring the link wiring in fat_tree.cpp.
        unsigned level = 0;
        std::uint64_t w = src / k;
        unsigned hops = 1;
        bool descending = false;
        while (true) {
          const unsigned port = t.route_port(level, w, dst);
          if (port < k) {
            // Down. Deadlock freedom: a descent never turns back up.
            descending = true;
            if (level == 0) {
              EXPECT_EQ(w, dst / k);
              EXPECT_EQ(port, dst % k);
              break;
            }
            --level;
            w = t.set_digit(w, level, port);
          } else {
            ASSERT_FALSE(descending)
                << "up after down: src=" << src << " dst=" << dst;
            ASSERT_LT(level + 1, t.levels) << "climbed past the top";
            w = t.set_digit(w, level, port - k);
            ++level;
          }
          ++hops;
          ASSERT_LE(hops, 2 * t.levels) << "routing loop";
        }
        EXPECT_EQ(hops, t.hops(src, dst))
            << "src=" << src << " dst=" << dst << " k=" << k;
      }
    }
  }
}

TEST(FatTreeProperty, HopsSymmetricAndBounded) {
  for (const std::size_t nodes : kSizes) {
    for (const unsigned k : kRadixes) {
      const FatTreeTopology t = FatTreeTopology::make(nodes, k);
      for (const auto& [a, b] : sample_pairs(nodes)) {
        const unsigned h = t.hops(a, b);
        EXPECT_EQ(h, t.hops(b, a));
        EXPECT_GE(h, 1u);
        EXPECT_LE(h, 2 * t.levels - 1);
        // 1 hop exactly when both endpoints share a leaf router.
        EXPECT_EQ(h == 1, a / k == b / k) << "a=" << a << " b=" << b;
      }
    }
  }
}

TEST(FatTreeProperty, ClosedFormCountsMatchConstruction) {
  // Construction is cheap enough to verify the closed forms against every
  // size (a 1024-endpoint radix-2 tree is 5120 routers) — plus a
  // non-power-of-radix size, where the tree rounds up and surplus leaf
  // ports stay unpopulated.
  struct Case {
    std::size_t nodes;
    unsigned radix;
    bool slow;
  };
  const Case cases[] = {
      {256, 4, false}, {256, 2, false}, {100, 4, false},
      {512, 8, false}, {1024, 2, true}, {1024, 4, true},
      {1024, 8, true},
  };
  for (const Case& c : cases) {
    if (c.slow && !scale_slow()) {
      continue;
    }
    sim::Kernel kernel;
    FatTreeNetwork::Params p;
    p.nodes = c.nodes;
    p.radix = c.radix;
    FatTreeNetwork net(kernel, "net", p);
    const FatTreeTopology& t = net.topology();
    EXPECT_EQ(net.router_count(), t.router_count());
    EXPECT_EQ(net.link_count(), t.link_count());
    EXPECT_EQ(t.router_count(),
              static_cast<std::size_t>(t.levels) * t.routers_per_level);
    std::size_t per_level_sum = 0;
    for (unsigned l = 0; l < t.levels; ++l) {
      per_level_sum += t.routers_at_level(l);
    }
    EXPECT_EQ(per_level_sum, t.router_count());
    EXPECT_EQ(t.routers_at_level(t.levels), 0u);
    EXPECT_EQ(t.link_count(),
              2 * c.nodes + 2ull * c.radix * t.routers_per_level *
                                (t.levels - 1));
  }
}

/// Drive a full permutation (every node sends to (node + nodes/2) % nodes)
/// through a real network and audit: everything injected must be
/// delivered — no drops, nothing in flight — which a routing deadlock or
/// credit leak would break.
void run_permutation_audit(std::size_t nodes, unsigned radix) {
  sim::Kernel kernel;
  kernel.set_event_limit(200'000'000);
  FatTreeNetwork::Params p;
  p.nodes = nodes;
  p.radix = radix;
  FatTreeNetwork net(kernel, "net", p);
  std::vector<unsigned> got(nodes, 0);
  for (sim::NodeId n = 0; n < nodes; ++n) {
    net.set_endpoint(n, [&got, &net, n](Packet&& pkt) {
      ++got[n];
      net.consume_done(n, pkt.priority);
    });
  }
  // All sources inject concurrently: the up paths contend for router
  // ports and links everywhere, which is the traffic a cyclic-dependency
  // bug would deadlock under.
  for (sim::NodeId src = 0; src < nodes; ++src) {
    const auto dst = static_cast<sim::NodeId>((src + nodes / 2) % nodes);
    sim::spawn(net.inject(make_packet(src, dst, 32)));
  }
  kernel.run();
  const Network::Audit a = net.audit();
  EXPECT_EQ(a.injected, nodes);
  EXPECT_EQ(a.delivered, nodes);
  EXPECT_EQ(a.dropped, 0u);
  EXPECT_TRUE(a.balanced());
  EXPECT_EQ(a.in_flight(), 0u);
  for (sim::NodeId n = 0; n < nodes; ++n) {
    EXPECT_EQ(got[n], 1u) << "node " << n;
  }
}

TEST(FatTreeProperty, PermutationTrafficAudits256) {
  for (const unsigned k : kRadixes) {
    run_permutation_audit(256, k);
  }
}

TEST(FatTreeProperty, PermutationTrafficAudits512) {
  run_permutation_audit(512, 8);
}

TEST(FatTreeProperty, PermutationTrafficAudits1024) {
  if (!scale_slow()) {
    GTEST_SKIP() << "set SV_SCALE_SLOW=1 to run the 1024-endpoint audits";
  }
  for (const unsigned k : kRadixes) {
    run_permutation_audit(1024, k);
  }
}

}  // namespace
}  // namespace sv::net

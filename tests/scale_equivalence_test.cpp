// Node-count-invariance lockdown for the scale work (ISSUE 9 / ROADMAP 1).
//
// The 512-1024-node changes — the O(active-domains) epoch barrier, the
// sharded StatRegistry, lazy clsSRAM state and lazy per-node pages — are
// all required to be *pure optimizations*: at small node counts every
// observable byte (machine-wide stats JSON, canonical trace-span dump)
// must be identical to what the machine produced before those changes
// existed. This suite pins that contract with a golden corpus generated
// from the pre-change tree (tests/golden/scale_*.golden) and swept over
//   {msg, shm, reliable, app.stencil} x nodes {8,16,32}
//     x threads {0,1,2,4} x fastpath {on,off}.
// Every cell of the sweep must match the one golden entry for its
// (workload, nodes) pair — byte-identity across thread counts and fast
// path settings falls out of the same comparison.
//
// On intentional behaviour changes regenerate with
//   SV_GOLDEN_WRITE=1 ./scale_equivalence_test
// and commit the diff.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/crc32.hpp"
#include "tests/app_util.hpp"
#include "tests/test_util.hpp"

namespace sv {
namespace {

constexpr std::size_t kTraceCapacity = 1u << 20;

std::string golden_path(const std::string& name) {
  return std::string(SV_GOLDEN_DIR) + "/" + name + ".golden";
}

/// The pinned artifact: the full stats JSON followed by one trailer line
/// carrying the crc32 of the canonical trace-span dump. The span dump
/// itself is megabytes at 32 nodes, so the corpus stores its digest; the
/// stats stay as full text so drift is reviewable in the diff.
std::string artifact(const std::string& stats_json,
                     const std::string& span_dump) {
  char trailer[32];
  std::snprintf(trailer, sizeof(trailer), "span_crc32=%08x\n",
                sim::crc32(std::as_bytes(
                    std::span(span_dump.data(), span_dump.size()))));
  return stats_json + trailer;
}

void check_against_golden(const std::string& name, const std::string& actual,
                          const std::string& context) {
  ASSERT_FALSE(actual.empty()) << name;
  const std::string path = golden_path(name);
  if (std::getenv("SV_GOLDEN_WRITE") != nullptr) {
    // Only the canonical cell (threads=0, fastpath on) writes; the other
    // sweep cells then verify against what it wrote, even in regen runs.
    if (context == "canonical") {
      std::ofstream os(path);
      ASSERT_TRUE(os) << "cannot write " << path;
      os << actual;
      ASSERT_TRUE(os.good()) << "write failed for " << path;
      return;
    }
  }
  std::ifstream is(path);
  ASSERT_TRUE(is) << "missing golden file " << path
                  << " — regenerate with SV_GOLDEN_WRITE=1 "
                     "./scale_equivalence_test";
  std::stringstream buf;
  buf << is.rdbuf();
  const std::string expected = buf.str();
  if (actual == expected) {
    return;
  }
  std::size_t diff = 0;
  while (diff < actual.size() && diff < expected.size() &&
         actual[diff] == expected[diff]) {
    ++diff;
  }
  const auto excerpt = [&](const std::string& s) {
    const std::size_t from = diff < 40 ? 0 : diff - 40;
    return s.substr(from, 80);
  };
  FAIL() << "scale equivalence broken for '" << name << "' at " << context
         << "\n  first divergence at byte " << diff << ":\n  golden: ..."
         << excerpt(expected) << "...\n  actual: ..." << excerpt(actual)
         << "...\nThe scale optimizations must be byte-invisible at small "
            "node counts. If the change is intentional, regenerate with "
            "SV_GOLDEN_WRITE=1 ./scale_equivalence_test and commit.";
}

struct SweepCell {
  unsigned threads;
  bool fastpath;
};

/// The swept cells. threads=0 is the classic sequential machine;
/// 1/2/4 partition into one domain per node. Fastpath off runs the
/// un-bypassed functional model — also required to be byte-identical.
const SweepCell kCells[] = {
    {0, true},  // canonical: writes the golden in regen runs
    {0, false}, {1, true}, {2, false}, {4, true}, {4, false},
};

std::string cell_name(const SweepCell& c) {
  std::ostringstream os;
  os << "threads=" << c.threads << " fastpath=" << c.fastpath;
  return os.str();
}

void sweep_machine_workload(test::Workload wl, const char* wl_name,
                            std::size_t nodes, std::uint64_t count,
                            std::uint64_t ops) {
  const std::string golden =
      std::string("scale_") + wl_name + "_" + std::to_string(nodes);
  for (const SweepCell& cell : kCells) {
    SCOPED_TRACE(golden + " " + cell_name(cell));
    test::RunSpec spec;
    spec.workload = wl;
    spec.nodes = nodes;
    spec.net = sys::Machine::NetKind::kIdeal;
    spec.threads = cell.threads;
    spec.fastpath = cell.fastpath;
    spec.count = count;
    spec.bytes = 32;
    spec.ops = ops;
    spec.trace_capacity = kTraceCapacity;
    const test::RunResult res = test::run_machine_and_dump_stats(spec);
    ASSERT_TRUE(res.completed);
    ASSERT_EQ(res.trace_dropped, 0u)
        << "trace ring wrapped; the span digest would be incomplete";
    check_against_golden(golden, artifact(res.stats_json, res.span_dump),
                         &cell == &kCells[0] ? "canonical" : cell_name(cell));
  }
}

void sweep_stencil(std::size_t nodes) {
  const std::string golden = "scale_stencil_" + std::to_string(nodes);
  for (const SweepCell& cell : kCells) {
    SCOPED_TRACE(golden + " " + cell_name(cell));
    test::AppRunSpec spec;
    spec.app = test::AppKind::kStencil;
    spec.transport = app::TransportKind::kMsg;
    spec.nodes = nodes;
    spec.threads = cell.threads;
    spec.fastpath = cell.fastpath;
    spec.stencil.nx = 8;
    spec.stencil.ny = 2 * nodes;
    spec.stencil.iters = 2;
    // The stencil produces far more spans than the raw-mechanism
    // workloads; the sequential machine holds all of them in one ring.
    spec.trace_capacity = 4 * kTraceCapacity;
    const test::AppRunResult res = test::run_app_and_dump_stats(spec);
    ASSERT_TRUE(res.completed);
    ASSERT_EQ(res.trace_dropped, 0u);
    check_against_golden(golden, artifact(res.stats_json, res.span_dump),
                         &cell == &kCells[0] ? "canonical" : cell_name(cell));
  }
}

TEST(ScaleEquivalence, Msg8) {
  sweep_machine_workload(test::Workload::kMsg, "msg", 8, 4, 0);
}
TEST(ScaleEquivalence, Msg16) {
  sweep_machine_workload(test::Workload::kMsg, "msg", 16, 4, 0);
}
TEST(ScaleEquivalence, Msg32) {
  sweep_machine_workload(test::Workload::kMsg, "msg", 32, 3, 0);
}

TEST(ScaleEquivalence, Shm8) {
  sweep_machine_workload(test::Workload::kShm, "shm", 8, 0, 12);
}
TEST(ScaleEquivalence, Shm16) {
  sweep_machine_workload(test::Workload::kShm, "shm", 16, 0, 8);
}

TEST(ScaleEquivalence, Reliable8) {
  sweep_machine_workload(test::Workload::kReliable, "reliable", 8, 3, 0);
}
TEST(ScaleEquivalence, Reliable16) {
  sweep_machine_workload(test::Workload::kReliable, "reliable", 16, 2, 0);
}

TEST(ScaleEquivalence, Stencil8) { sweep_stencil(8); }
TEST(ScaleEquivalence, Stencil16) { sweep_stencil(16); }
TEST(ScaleEquivalence, Stencil32) { sweep_stencil(32); }

}  // namespace
}  // namespace sv

// Property test for the reliable-delivery layer: across 32 master seeds,
// with the fabric dropping and corrupting up to ~10% of packets, a
// ReliableChannel stream must deliver every payload exactly once, in
// order, byte-identical to what was sent — and the network must conserve
// packets (delivered + dropped == injected) once the stream quiesces.
//
// Payload sizes and contents vary per message (driven by a host-side Rng
// derived from the seed) so header/CRC handling is exercised across the
// whole frame-size range, not just one shape.
#include <gtest/gtest.h>

#include <vector>

#include "fault/fault.hpp"
#include "msg/reliable.hpp"
#include "sim/random.hpp"
#include "tests/test_util.hpp"

namespace sv {
namespace {

constexpr std::uint64_t kCount = 60;

class FaultProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultProperty, ExactlyOnceInOrderUnderLossAndCorruption) {
  const std::uint64_t seed = GetParam();

  auto mp = test::small_machine_params(2);
  mp.fault.seed = seed;
  mp.fault.drop_rate = 0.08;
  mp.fault.corrupt_rate = 0.08;
  sys::Machine machine(mp);
  const auto map = machine.addr_map();

  msg::ReliableChannel::Params cp;
  cp.retransmit.base_timeout = 20 * sim::kMicrosecond;

  auto ep0 = machine.node(0).make_endpoint();
  auto ep1 = machine.node(1).make_endpoint();
  msg::ReliableChannel tx(ep0, map, 0, cp);
  msg::ReliableChannel rx(ep1, map, 1, cp);
  tx.start();
  rx.start();

  // Pre-generate the message sequence host-side so the receiver can check
  // content, not just count.
  sim::Rng payload_rng(seed ^ 0x9E3779B97F4A7C15ull);
  std::vector<std::vector<std::byte>> sent(kCount);
  for (auto& p : sent) {
    p.resize(1 + payload_rng.below(msg::ReliableChannel::kMaxPayload));
    for (auto& b : p) {
      b = static_cast<std::byte>(payload_rng.below(256));
    }
  }

  machine.node(0).ap().run(
      [](msg::ReliableChannel* ch,
         const std::vector<std::vector<std::byte>>* msgs) -> sim::Co<void> {
        for (const auto& m : *msgs) {
          co_await ch->send(1, m);
        }
      }(&tx, &sent));

  std::vector<std::vector<std::byte>> got;
  machine.node(1).ap().run(
      [](msg::ReliableChannel* ch,
         std::vector<std::vector<std::byte>>* out) -> sim::Co<void> {
        for (std::uint64_t i = 0; i < kCount; ++i) {
          out->push_back(co_await ch->recv(0));
        }
      }(&rx, &got));

  // Finish the stream, then quiesce the tail (final ACKs are droppable
  // too and may need a timeout round).
  test::drive(
      machine.kernel(),
      [&] {
        return got.size() == kCount && tx.unacked() == 0 &&
               machine.network().audit().balanced();
      },
      1000 * sim::kMillisecond);

  // Exactly once, in order, byte-identical.
  ASSERT_EQ(got.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(got[i], sent[i]) << "payload " << i << " mismatch";
  }
  EXPECT_EQ(rx.stats().payloads_delivered.value(), kCount);
  EXPECT_FALSE(tx.failed(1));

  // Corruption is invisible above the channel: flipped bits are caught by
  // the CRC, never delivered. (Not an equality: a frame corrupted on one
  // fat-tree hop can still be dropped on a later one, and never arrive to
  // be rejected.)
  ASSERT_NE(machine.fault_injector(), nullptr);
  const auto& fs = machine.fault_injector()->stats();
  EXPECT_LE(rx.stats().corrupt_rejected.value() +
                tx.stats().corrupt_rejected.value(),
            fs.corrupts.value());

  test::expect_network_conserves(machine);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultProperty,
                         ::testing::Range<std::uint64_t>(1, 33));

}  // namespace
}  // namespace sv

// Layer-0 library tests: the full aP path (cached compose + flush, pointer
// window stores, shadow polling) for Basic, Express, TagOn and raw
// messages; firmware DMA; the Channel (MPI-lite) veneer.
#include <gtest/gtest.h>

#include <cstring>

#include "msg/channel.hpp"
#include "msg/dma.hpp"
#include "tests/test_util.hpp"

namespace sv {
namespace {

class EndpointTest : public ::testing::Test {
 protected:
  EndpointTest() : machine(test::small_machine_params(2)) {
    for (sim::NodeId n = 0; n < machine.size(); ++n) {
      eps.push_back(std::make_unique<msg::Endpoint>(
          machine.node(n).ap(), machine.node(n).endpoint_config()));
    }
  }

  void drive_until(const std::function<bool()>& pred) {
    test::drive(machine.kernel(), pred);
  }

  sys::Machine machine;
  std::vector<std::unique_ptr<msg::Endpoint>> eps;
};

TEST_F(EndpointTest, BasicSendRecvRoundTrip) {
  const auto map = machine.addr_map();
  auto payload = test::pattern_bytes(48);
  bool got = false;

  machine.node(0).ap().run(eps[0]->send(map.user0(1), payload));
  machine.node(1).ap().run(
      [](msg::Endpoint* ep, const std::vector<std::byte>* want,
         bool* done) -> sim::Co<void> {
        msg::Message m = co_await ep->recv();
        EXPECT_EQ(m.src_node, 0);
        EXPECT_EQ(m.data, *want);
        *done = true;
      }(eps[1].get(), &payload, &got));
  drive_until([&] { return got; });
}

TEST_F(EndpointTest, ManyMessagesArriveInOrder) {
  const auto map = machine.addr_map();
  constexpr int kCount = 150;  // > queue depth: exercises flow control
  int received = 0;
  bool in_order = true;

  machine.node(0).ap().run(
      [](msg::Endpoint* ep, std::uint16_t vdest) -> sim::Co<void> {
        for (std::uint32_t i = 0; i < kCount; ++i) {
          std::byte buf[4];
          std::memcpy(buf, &i, 4);
          co_await ep->send(vdest, buf);
        }
      }(eps[0].get(), map.user0(1)));
  machine.node(1).ap().run(
      [](msg::Endpoint* ep, int* n, bool* ok) -> sim::Co<void> {
        for (std::uint32_t i = 0; i < kCount; ++i) {
          msg::Message m = co_await ep->recv();
          std::uint32_t seq = 0;
          std::memcpy(&seq, m.data.data(), 4);
          if (seq != i) {
            *ok = false;
          }
          ++*n;
        }
      }(eps[1].get(), &received, &in_order));
  drive_until([&] { return received == kCount; });
  EXPECT_TRUE(in_order);
}

TEST_F(EndpointTest, ConcurrentSendersShareOneEndpoint) {
  // Regression: Endpoint's send/recv are multi-step queue protocols
  // (compose, flush, producer bump, shadow poll). Two coroutines driving
  // the same endpoint concurrently used to interleave those steps and
  // clobber each other's slots; the per-queue gates must serialize them.
  // Back-to-back nonblocking sends from one node are exactly this shape.
  const auto map = machine.addr_map();
  constexpr int kSenders = 4;
  constexpr int kEach = 8;
  int sent = 0;
  int received = 0;
  std::vector<int> got(kSenders * kEach, 0);

  for (int s = 0; s < kSenders; ++s) {
    machine.node(0).ap().run(
        [](msg::Endpoint* ep, std::uint16_t vdest, int s_,
           int* done) -> sim::Co<void> {
          for (std::uint32_t i = 0; i < kEach; ++i) {
            const std::uint32_t id = s_ * kEach + i;
            auto payload = test::pattern_bytes(40, static_cast<std::uint8_t>(id));
            std::memcpy(payload.data(), &id, 4);
            co_await ep->send(vdest, payload);
          }
          ++*done;
        }(eps[0].get(), map.user0(1), s, &sent));
  }
  machine.node(1).ap().run(
      [](msg::Endpoint* ep, std::vector<int>* g, int* n) -> sim::Co<void> {
        for (int i = 0; i < kSenders * kEach; ++i) {
          msg::Message m = co_await ep->recv();
          std::uint32_t id = 0;
          std::memcpy(&id, m.data.data(), 4);
          EXPECT_LT(id, g->size());
          if (id >= g->size()) {
            continue;
          }
          auto want = test::pattern_bytes(40, static_cast<std::uint8_t>(id));
          std::memcpy(want.data(), &id, 4);
          EXPECT_EQ(m.data, want) << "payload " << id << " corrupted";
          ++(*g)[id];
          ++*n;
        }
      }(eps[1].get(), &got, &received));

  drive_until([&] { return received == kSenders * kEach; });
  EXPECT_EQ(sent, kSenders);
  for (int i = 0; i < kSenders * kEach; ++i) {
    EXPECT_EQ(got[i], 1) << "message " << i;
  }
}

TEST_F(EndpointTest, ExpressSingleStoreRoundTrip) {
  const auto map = machine.addr_map();
  bool got = false;

  machine.node(0).ap().run(
      eps[0]->send_express(static_cast<std::uint8_t>(map.express(1)), 0x7E,
                           0xDEADBEEF));
  machine.node(1).ap().run(
      [](msg::Endpoint* ep, bool* done) -> sim::Co<void> {
        msg::ExpressMessage m = co_await ep->recv_express();
        EXPECT_EQ(m.src_node, 0);
        EXPECT_EQ(m.extra, 0x7E);
        EXPECT_EQ(m.word, 0xDEADBEEFu);
        *done = true;
      }(eps[1].get(), &got));
  drive_until([&] { return got; });
}

TEST_F(EndpointTest, ExpressEmptyLoadReturnsNullopt) {
  bool checked = false;
  machine.node(0).ap().run(
      [](msg::Endpoint* ep, bool* done) -> sim::Co<void> {
        auto m = co_await ep->try_recv_express();
        EXPECT_FALSE(m.has_value());
        *done = true;
      }(eps[0].get(), &checked));
  drive_until([&] { return checked; });
}

TEST_F(EndpointTest, ExpressIsFasterThanBasic) {
  const auto map = machine.addr_map();
  sim::Tick basic_done = 0, express_done = 0;
  bool got_b = false, got_e = false;

  const sim::Tick t0 = machine.kernel().now();
  machine.node(0).ap().run(
      eps[0]->send(map.user0(1), test::pattern_bytes(5)));
  machine.node(1).ap().run(
      [](msg::Endpoint* ep, bool* done) -> sim::Co<void> {
        (void)co_await ep->recv();
        *done = true;
      }(eps[1].get(), &got_b));
  drive_until([&] { return got_b; });
  basic_done = machine.kernel().now() - t0;

  const sim::Tick t1 = machine.kernel().now();
  machine.node(0).ap().run(
      eps[0]->send_express(static_cast<std::uint8_t>(map.express(1)), 1, 2));
  machine.node(1).ap().run(
      [](msg::Endpoint* ep, bool* done) -> sim::Co<void> {
        (void)co_await ep->recv_express();
        *done = true;
      }(eps[1].get(), &got_e));
  drive_until([&] { return got_e; });
  express_done = machine.kernel().now() - t1;

  EXPECT_LT(express_done, basic_done)
      << "express=" << express_done << " basic=" << basic_done;
}

TEST_F(EndpointTest, TagOnCarriesStagedData) {
  const auto map = machine.addr_map();
  auto inline_data = test::pattern_bytes(8, 3);
  auto staged = test::pattern_bytes(niu::kTagOnLargeBytes, 4);
  bool got = false;

  machine.node(0).ap().run(
      [](msg::Endpoint* ep, std::uint16_t vdest,
         const std::vector<std::byte>* inl,
         const std::vector<std::byte>* stg) -> sim::Co<void> {
        co_await ep->stage(ep->staging_base(), *stg);
        co_await ep->send_tagon(vdest, *inl, ep->staging_base(),
                                /*large=*/true);
      }(eps[0].get(), map.user0(1), &inline_data, &staged));
  machine.node(1).ap().run(
      [](msg::Endpoint* ep, const std::vector<std::byte>* inl,
         const std::vector<std::byte>* stg, bool* done) -> sim::Co<void> {
        msg::Message m = co_await ep->recv();
        EXPECT_EQ(m.data.size(), inl->size() + stg->size());
        EXPECT_TRUE(std::equal(inl->begin(), inl->end(), m.data.begin()));
        EXPECT_TRUE(std::equal(stg->begin(), stg->end(),
                               m.data.begin() + inl->size()));
        *done = true;
      }(eps[1].get(), &inline_data, &staged, &got));
  drive_until([&] { return got; });
}

TEST_F(EndpointTest, RawSendBypassesTranslation) {
  auto payload = test::pattern_bytes(16, 5);
  bool got = false;
  machine.node(0).ap().run(
      eps[0]->send_raw(1, msg::AddressMap::kUser0L, payload));
  machine.node(1).ap().run(
      [](msg::Endpoint* ep, bool* done) -> sim::Co<void> {
        msg::Message m = co_await ep->recv();
        EXPECT_EQ(m.logical, msg::AddressMap::kUser0L);
        *done = true;
      }(eps[1].get(), &got));
  drive_until([&] { return got; });
}

TEST_F(EndpointTest, SelfSendDelivers) {
  const auto map = machine.addr_map();
  bool got = false;
  machine.node(0).ap().run(
      [](msg::Endpoint* ep, std::uint16_t self, bool* done) -> sim::Co<void> {
        co_await ep->send(self, test::pattern_bytes(8));
        (void)co_await ep->recv();
        *done = true;
      }(eps[0].get(), map.user0(0), &got));
  drive_until([&] { return got; });
}

TEST_F(EndpointTest, DmaWriteMovesDramAndNotifiesReceiver) {
  auto data = test::pattern_bytes(8192, 6);
  machine.node(0).dram().store().write(0x10000, data);

  bool got = false;
  machine.node(0).ap().run(
      [](msg::Endpoint* ep, msg::AddressMap map) -> sim::Co<void> {
        co_await msg::dma_write(*ep, map, 0, 1, 0x10000, 0x20000, 8192,
                                msg::AddressMap::kUser0L, 0x42);
      }(eps[0].get(), machine.addr_map()));
  machine.node(1).ap().run(
      [](msg::Endpoint* ep, bool* done) -> sim::Co<void> {
        msg::Message m = co_await ep->recv();
        std::uint32_t tag = 0;
        std::memcpy(&tag, m.data.data(), 4);
        EXPECT_EQ(tag, 0x42u);
        *done = true;
      }(eps[1].get(), &got));
  drive_until([&] { return got; });

  std::vector<std::byte> dst(8192);
  machine.node(1).dram().store().read(0x20000, dst);
  EXPECT_EQ(dst, data);
}

TEST_F(EndpointTest, DmaReadPullsRemoteData) {
  auto data = test::pattern_bytes(2048, 7);
  machine.node(1).dram().store().write(0x30000, data);

  bool got = false;
  machine.node(0).ap().run(
      [](msg::Endpoint* ep, msg::AddressMap map, bool* done) -> sim::Co<void> {
        co_await msg::dma_read(*ep, map, 0, 1, 0x30000, 0x40000, 2048,
                               msg::AddressMap::kUser0L, 0x43);
        msg::Message m = co_await ep->recv();
        std::uint32_t tag = 0;
        std::memcpy(&tag, m.data.data(), 4);
        EXPECT_EQ(tag, 0x43u);
        *done = true;
      }(eps[0].get(), machine.addr_map(), &got));
  drive_until([&] { return got; });

  std::vector<std::byte> dst(2048);
  machine.node(0).dram().store().read(0x40000, dst);
  EXPECT_EQ(dst, data);
}

TEST_F(EndpointTest, ChannelFragmentsLargePayload) {
  auto big = test::pattern_bytes(1000, 8);
  bool got = false;

  machine.node(0).ap().run(
      [](msg::Endpoint* ep, msg::AddressMap map,
         const std::vector<std::byte>* data) -> sim::Co<void> {
        msg::Channel ch(*ep, map, 0);
        co_await ch.send(1, 77, *data);
      }(eps[0].get(), machine.addr_map(), &big));
  machine.node(1).ap().run(
      [](msg::Endpoint* ep, msg::AddressMap map,
         const std::vector<std::byte>* want, bool* done) -> sim::Co<void> {
        msg::Channel ch(*ep, map, 1);
        auto data = co_await ch.recv(0, 77);
        EXPECT_EQ(data, *want);
        *done = true;
      }(eps[1].get(), machine.addr_map(), &big, &got));
  drive_until([&] { return got; });
}

TEST_F(EndpointTest, ChannelBarrierAndAllreduce) {
  int done = 0;
  for (sim::NodeId n = 0; n < 2; ++n) {
    machine.node(n).ap().run(
        [](msg::Endpoint* ep, msg::AddressMap map, sim::NodeId self,
           int* d) -> sim::Co<void> {
          msg::Channel ch(*ep, map, self);
          co_await ch.barrier();
          const std::uint64_t sum =
              co_await ch.allreduce_sum(self + 1);  // 1 + 2
          EXPECT_EQ(sum, 3u);
          co_await ch.barrier();
          ++*d;
        }(eps[n].get(), machine.addr_map(), n, &done));
  }
  drive_until([&] { return done == 2; });
}

}  // namespace
}  // namespace sv

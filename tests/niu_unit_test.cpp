// NIU unit tests: descriptor encodings, queue pointer arithmetic, the
// remote-command wire codec, and address-window encodings.
#include <gtest/gtest.h>

#include "niu/command.hpp"
#include "niu/queues.hpp"
#include "niu/regs.hpp"
#include "msg/endpoint.hpp"
#include "sim/random.hpp"
#include "tests/test_util.hpp"

namespace sv::niu {
namespace {

TEST(MsgDescriptorTest, RoundTrip) {
  MsgDescriptor d;
  d.vdest = 0x1234;
  d.length = 88;
  d.flags = MsgDescriptor::kFlagTagOn | MsgDescriptor::kFlagTagOnLarge;
  d.aux = 0xCAFEBABE;
  std::byte raw[8];
  d.encode(raw);
  const MsgDescriptor e = MsgDescriptor::decode(raw);
  EXPECT_EQ(e.vdest, d.vdest);
  EXPECT_EQ(e.length, d.length);
  EXPECT_EQ(e.flags, d.flags);
  EXPECT_EQ(e.aux, d.aux);
  EXPECT_TRUE(e.tagon());
  EXPECT_EQ(e.tagon_bytes(), kTagOnLargeBytes);
  EXPECT_FALSE(e.raw());
}

TEST(MsgDescriptorTest, TagOnSizes) {
  MsgDescriptor d;
  d.flags = MsgDescriptor::kFlagTagOn;
  EXPECT_EQ(d.tagon_bytes(), kTagOnSmallBytes);
  d.flags |= MsgDescriptor::kFlagTagOnLarge;
  EXPECT_EQ(d.tagon_bytes(), kTagOnLargeBytes);
}

TEST(XlatEntryTest, RoundTripAndValidity) {
  XlatEntry e;
  e.phys_node = 7;
  e.logical_queue = 0x0F00;
  e.priority = net::kPriorityHigh;
  e.valid = true;
  std::byte raw[8];
  e.encode(raw);
  const XlatEntry f = XlatEntry::decode(raw);
  EXPECT_EQ(f.phys_node, 7);
  EXPECT_EQ(f.logical_queue, 0x0F00);
  EXPECT_EQ(f.priority, net::kPriorityHigh);
  EXPECT_TRUE(f.valid);

  std::byte zeros[8] = {};
  EXPECT_FALSE(XlatEntry::decode(zeros).valid);
}

TEST(RxDescriptorTest, RoundTrip) {
  RxDescriptor d;
  d.src_node = 31;
  d.length = 96;
  d.flags = 1;
  d.logical = 0x0102;
  std::byte raw[8];
  d.encode(raw);
  const RxDescriptor e = RxDescriptor::decode(raw);
  EXPECT_EQ(e.src_node, 31);
  EXPECT_EQ(e.length, 96);
  EXPECT_EQ(e.logical, 0x0102);
}

TEST(QueueStateTest, PointerArithmetic) {
  TxQueueState q;
  q.slots = 8;
  q.slot_bytes = 96;
  q.base = 0x1000;
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.full());
  q.producer = 8;
  EXPECT_TRUE(q.full());
  EXPECT_EQ(q.occupancy(), 8);
  q.consumer = 3;
  EXPECT_EQ(q.occupancy(), 5);
  EXPECT_EQ(q.slot_addr(9), 0x1000u + 1 * 96);
}

TEST(QueueStateTest, WrapAroundAt16Bits) {
  RxQueueState q;
  q.slots = 4;
  q.producer = 2;
  q.consumer = 0xFFFE;  // free-running counters wrap
  EXPECT_EQ(q.occupancy(), 4);
  EXPECT_TRUE(q.full());
  q.consumer = 0xFFFF;
  EXPECT_EQ(q.occupancy(), 3);
}

TEST(RemoteCmdCodec, WriteApDramRoundTrip) {
  Command c;
  c.op = CmdOp::kWriteApDram;
  c.addr = 0x12345678;
  c.src_node = 3;
  c.set_cls = true;
  c.cls_bits = 2;
  c.chunk_notify = true;
  c.data = test::pattern_bytes(64);
  const auto wire = encode_remote(c);
  EXPECT_EQ(wire.size(), kRemoteCmdHeaderBytes + 64);
  const Command d = decode_remote(wire);
  EXPECT_EQ(d.op, CmdOp::kWriteApDram);
  EXPECT_EQ(d.addr, 0x12345678u);
  EXPECT_EQ(d.src_node, 3);
  EXPECT_TRUE(d.set_cls);
  EXPECT_TRUE(d.chunk_notify);
  EXPECT_EQ(d.cls_bits, 2);
  EXPECT_EQ(d.data, c.data);
  EXPECT_EQ(d.len, 64u);
}

TEST(RemoteCmdCodec, ClsStateCarriesLength) {
  Command c;
  c.op = CmdOp::kWriteClsState;
  c.addr = 0x8000'0000;
  c.len = 4096;
  c.cls_bits = 4;
  const Command d = decode_remote(encode_remote(c));
  EXPECT_EQ(d.addr, 0x8000'0000u);
  EXPECT_EQ(d.len, 4096u);
  EXPECT_EQ(d.cls_bits, 4);
}

TEST(RemoteCmdCodec, NotifyLocalCarriesQueueAndTag) {
  Command c;
  c.op = CmdOp::kNotifyLocal;
  c.queue = 0x0100;
  c.tag = 0x7777;
  c.data = test::pattern_bytes(4);
  const Command d = decode_remote(encode_remote(c));
  EXPECT_EQ(d.queue, 0x0100);
  EXPECT_EQ(d.tag, 0x7777u);
  EXPECT_EQ(d.data, c.data);
}

TEST(RemoteCmdCodec, RejectsUnroutableOps) {
  Command c;
  c.op = CmdOp::kBlockXfer;
  EXPECT_THROW(encode_remote(c), std::invalid_argument);
  c.op = CmdOp::kWriteApDram;
  c.data.resize(kRemoteCmdMaxData + 1);
  EXPECT_THROW(encode_remote(c), std::invalid_argument);
}

TEST(RemoteCmdCodec, RejectsMalformedWire) {
  std::vector<std::byte> junk(4);
  EXPECT_THROW(decode_remote(junk), std::invalid_argument);
  std::vector<std::byte> bad_op(kRemoteCmdHeaderBytes);
  bad_op[0] = static_cast<std::byte>(0xEE);
  EXPECT_THROW(decode_remote(bad_op), std::invalid_argument);
}

TEST(AddressWindows, ExpressTxEncoding) {
  const mem::Addr a = express_tx_addr(5, 0x42, 0xAB);
  EXPECT_EQ((a >> kExpressTxQueueShift) & 0xF, 5u);
  EXPECT_EQ((a >> kExpressTxDestShift) & 0xFF, 0x42u);
  EXPECT_EQ((a >> kExpressTxByteShift) & 0xFF, 0xABu);
  EXPECT_EQ(a % 4, 0u);  // word aligned: encodable in a store address
}

TEST(AddressWindows, PtrWindowEncoding) {
  EXPECT_EQ(ptr_window_addr(PtrKind::kTxProducer, 0), 0u);
  EXPECT_EQ(ptr_window_addr(PtrKind::kTxProducer, 5), 0x50u);
  EXPECT_EQ(ptr_window_addr(PtrKind::kRxConsumer, 5), 0x150u);
}

TEST(AddressWindows, ShadowsDoNotOverlap) {
  for (unsigned q = 0; q < kNumTxQueues; ++q) {
    EXPECT_LT(tx_consumer_shadow(q) + 4, kRxProducerShadowBase);
  }
  for (unsigned q = 0; q < kNumRxQueues; ++q) {
    EXPECT_LE(rx_producer_shadow(q) + 4, kShadowRegionBytes);
  }
}

TEST(AddressMapTest, SectionsArePowerOfTwoAligned) {
  for (std::size_t nodes : {2, 3, 4, 5, 8, 13, 16, 32}) {
    msg::AddressMap map{nodes};
    EXPECT_EQ(map.stride() & (map.stride() - 1), 0u);
    EXPECT_GE(map.stride(), nodes);
    for (sim::NodeId n = 0; n < nodes; ++n) {
      // The express OR-mask trick: section base OR node == section + node.
      EXPECT_EQ(map.express_section() | map.express(n),
                map.express_section() + n);
      EXPECT_NE(map.user0(n), map.dma(n));
      EXPECT_NE(map.dma(n), map.user1(n));
    }
    EXPECT_LE(map.table_entries(), 256u) << "fits an 8-bit express vdest";
  }
}

/// Property sweep: the codec round-trips random commands.
class RemoteCmdProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(RemoteCmdProperty, RandomRoundTrip) {
  sim::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    Command c;
    const int which = static_cast<int>(rng.below(3));
    c.op = which == 0   ? CmdOp::kWriteApDram
           : which == 1 ? CmdOp::kWriteClsState
                        : CmdOp::kNotifyLocal;
    c.addr = rng.next() & ((1ull << 40) - 1);
    c.src_node = static_cast<std::uint16_t>(rng.below(64));
    c.queue = static_cast<net::QueueId>(rng.below(0xF000));
    c.tag = static_cast<std::uint32_t>(rng.below(0x10000));
    c.set_cls = rng.chance(0.5);
    c.cls_bits = static_cast<std::uint8_t>(rng.below(16));
    c.chunk_notify = rng.chance(0.5);
    if (c.op == CmdOp::kWriteClsState) {
      c.len = static_cast<std::uint32_t>(rng.below(8192));
    } else {
      c.data = test::pattern_bytes(rng.below(kRemoteCmdMaxData + 1),
                                   static_cast<std::uint8_t>(i));
    }
    const Command d = decode_remote(encode_remote(c));
    EXPECT_EQ(d.op, c.op);
    EXPECT_EQ(d.addr, c.addr);
    EXPECT_EQ(d.set_cls, c.set_cls);
    EXPECT_EQ(d.cls_bits, c.cls_bits);
    EXPECT_EQ(d.chunk_notify, c.chunk_notify);
    EXPECT_EQ(d.data, c.data);
    if (c.op == CmdOp::kNotifyLocal) {
      EXPECT_EQ(d.queue, c.queue);
    }
    if (c.op == CmdOp::kWriteClsState) {
      EXPECT_EQ(d.len, c.len);
    }
    EXPECT_EQ(d.tag, c.tag & 0xFFFF);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RemoteCmdProperty,
                         ::testing::Values(10, 20, 30, 40));

}  // namespace
}  // namespace sv::niu

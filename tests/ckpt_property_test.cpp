// Snapshot container properties (DESIGN.md §14): serialization is a pure
// function of content (save → parse → save is byte-identical), and every
// structurally damaged input — bad magic, unknown version, CRC mismatch,
// truncation at *every* byte length, trailing garbage, overflow-crafted
// container lengths — is rejected with ckpt::Error, never undefined
// behaviour. CI runs this suite under ASan/UBSan, which is what turns
// "rejected cleanly" from a claim into a checked property.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/io.hpp"
#include "ckpt/snapshot.hpp"

namespace sv {
namespace {

ckpt::Snapshot make_snapshot() {
  ckpt::Snapshot s;
  s.config = "workload=msg\nnodes=4\nthreads=2\n";
  s.tick = 123456789;
  ckpt::Writer a;
  a.u64(42);
  a.u32(7);
  a.b(true);
  s.add_chunk("n0.kernel", a);
  ckpt::Writer b;
  b.str("hello");
  b.f64(2.5);
  s.add_chunk("net", b);
  ckpt::Writer c;  // empty chunks are legal
  s.add_chunk("fault", c);
  return s;
}

TEST(CkptPropertyTest, WriterReaderRoundTrip) {
  ckpt::Writer w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.b(true);
  w.b(false);
  w.tick(987654321);
  w.f64(-1.5e300);
  w.str("snapshot");
  const std::vector<std::byte> blob{std::byte{1}, std::byte{2},
                                    std::byte{3}};
  w.bytes(blob);

  ckpt::Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(r.b());
  EXPECT_FALSE(r.b());
  EXPECT_EQ(r.tick(), 987654321u);
  EXPECT_EQ(r.f64(), -1.5e300);
  EXPECT_EQ(r.str(), "snapshot");
  EXPECT_EQ(r.bytes(), blob);
  EXPECT_TRUE(r.done());
}

TEST(CkptPropertyTest, ReaderRejectsOverruns) {
  ckpt::Writer w;
  w.u32(5);
  ckpt::Reader r(w.data());
  (void)r.u32();
  EXPECT_THROW((void)r.u8(), ckpt::Error);

  // A length word larger than the remaining bytes must be rejected
  // before any allocation sized by it.
  ckpt::Writer crafted;
  crafted.u64(~0ull);
  ckpt::Reader r2(crafted.data());
  EXPECT_THROW((void)r2.bytes(), ckpt::Error);
  ckpt::Reader r3(crafted.data());
  EXPECT_THROW((void)r3.str(), ckpt::Error);
}

TEST(CkptPropertyTest, SerializeParseSerializeIsByteIdentical) {
  const ckpt::Snapshot s = make_snapshot();
  const std::vector<std::byte> first = s.serialize();
  const ckpt::Snapshot parsed = ckpt::Snapshot::parse(first);
  EXPECT_EQ(parsed.config, s.config);
  EXPECT_EQ(parsed.tick, s.tick);
  ASSERT_EQ(parsed.chunks().size(), s.chunks().size());
  for (std::size_t i = 0; i < s.chunks().size(); ++i) {
    EXPECT_EQ(parsed.chunks()[i], s.chunks()[i]) << "chunk " << i;
  }
  EXPECT_EQ(parsed.serialize(), first);
  EXPECT_EQ(parsed.state_hash(), s.state_hash());
}

TEST(CkptPropertyTest, FindLocatesChunksByName) {
  const ckpt::Snapshot s = make_snapshot();
  ASSERT_NE(s.find("net"), nullptr);
  EXPECT_EQ(s.find("net")->size(), s.chunks()[1].second.size());
  EXPECT_NE(s.find("fault"), nullptr);
  EXPECT_EQ(s.find("nonexistent"), nullptr);
}

TEST(CkptPropertyTest, StateHashTracksChunkBytes) {
  ckpt::Snapshot a = make_snapshot();
  const std::uint64_t h = a.state_hash();

  // Same chunks, different config/tick: the hash covers machine state
  // only — it is the explorer's dedup key across different run setups.
  a.config = "something else";
  a.tick = 1;
  EXPECT_EQ(a.state_hash(), h);

  // Any changed chunk byte moves the hash.
  ckpt::Snapshot b = make_snapshot();
  ckpt::Writer w;
  w.u64(43);
  w.u32(7);
  w.b(true);
  ckpt::Snapshot c;
  c.config = b.config;
  c.tick = b.tick;
  c.add_chunk("n0.kernel", w);
  EXPECT_NE(c.state_hash(), 0u);
  EXPECT_NE(c.state_hash(), h);
}

TEST(CkptPropertyTest, RejectsBadMagic) {
  std::vector<std::byte> data = make_snapshot().serialize();
  data[0] = static_cast<std::byte>('X');
  EXPECT_THROW((void)ckpt::Snapshot::parse(data), ckpt::Error);
}

TEST(CkptPropertyTest, RejectsUnknownVersion) {
  std::vector<std::byte> data = make_snapshot().serialize();
  data[4] = static_cast<std::byte>(ckpt::Snapshot::kVersion + 1);
  EXPECT_THROW((void)ckpt::Snapshot::parse(data), ckpt::Error);
}

TEST(CkptPropertyTest, RejectsCorruptedPayload) {
  // Flip every payload byte in turn: each single-byte corruption must be
  // caught (by the CRC, or — for the CRC trailer itself — by the
  // recomputed-vs-stored comparison).
  const std::vector<std::byte> good = make_snapshot().serialize();
  for (std::size_t i = 8; i < good.size(); ++i) {
    std::vector<std::byte> bad = good;
    bad[i] ^= std::byte{0x01};
    EXPECT_THROW((void)ckpt::Snapshot::parse(bad), ckpt::Error)
        << "flipped byte " << i << " was not rejected";
  }
}

TEST(CkptPropertyTest, RejectsEveryTruncation) {
  const std::vector<std::byte> good = make_snapshot().serialize();
  for (std::size_t len = 0; len < good.size(); ++len) {
    EXPECT_THROW((void)ckpt::Snapshot::parse(
                     std::span(good.data(), len)),
                 ckpt::Error)
        << "prefix of " << len << " bytes was not rejected";
  }
  // The untruncated original still parses.
  EXPECT_NO_THROW((void)ckpt::Snapshot::parse(good));
}

TEST(CkptPropertyTest, RejectsTrailingBytes) {
  // Appended bytes shift the CRC trailer, so the parse must fail — a
  // snapshot is exactly its serialized bytes, nothing more.
  std::vector<std::byte> data = make_snapshot().serialize();
  data.push_back(std::byte{0});
  EXPECT_THROW((void)ckpt::Snapshot::parse(data), ckpt::Error);
}

TEST(CkptPropertyTest, SaveLoadFileRoundTrip) {
  const ckpt::Snapshot s = make_snapshot();
  const std::string path = ::testing::TempDir() + "ckpt_property.svck";
  s.save_file(path);
  const ckpt::Snapshot loaded = ckpt::Snapshot::load_file(path);
  EXPECT_EQ(loaded.serialize(), s.serialize());
}

TEST(CkptPropertyTest, LoadRejectsMissingFile) {
  EXPECT_THROW(
      (void)ckpt::Snapshot::load_file("/nonexistent/dir/nope.svck"),
      ckpt::Error);
}

TEST(CkptPropertyTest, VerifyAcceptsIdenticalAndNamesFirstDivergence) {
  const ckpt::Snapshot a = make_snapshot();
  const ckpt::Snapshot b = make_snapshot();
  EXPECT_NO_THROW(ckpt::Snapshot::verify(a, b));

  // Diverging tick.
  ckpt::Snapshot c = make_snapshot();
  c.tick += 1;
  EXPECT_THROW(ckpt::Snapshot::verify(a, c), ckpt::Error);

  // Diverging config.
  ckpt::Snapshot d = make_snapshot();
  d.config += "extra=1\n";
  EXPECT_THROW(ckpt::Snapshot::verify(a, d), ckpt::Error);

  // Diverging chunk byte: the error names the chunk and the offset.
  ckpt::Snapshot e;
  e.config = a.config;
  e.tick = a.tick;
  ckpt::Writer w;
  w.u64(43);  // first chunk's first field differs
  w.u32(7);
  w.b(true);
  e.add_chunk("n0.kernel", w);
  try {
    ckpt::Snapshot::verify(a, e);
    FAIL() << "divergence not detected";
  } catch (const ckpt::Error& err) {
    EXPECT_NE(std::string(err.what()).find("n0.kernel"), std::string::npos)
        << err.what();
  }

  // Missing chunks.
  ckpt::Snapshot f;
  f.config = a.config;
  f.tick = a.tick;
  EXPECT_THROW(ckpt::Snapshot::verify(a, f), ckpt::Error);
}

}  // namespace
}  // namespace sv

// Stress and reconfiguration tests: multi-node shared-memory contention,
// runtime reconfiguration of the aBIU reaction tables and the rx-queue
// cache (firmware rebinding hardware queues to different logical ids),
// and a mixed "system workload" combining every mechanism at once.
#include <gtest/gtest.h>

#include <cstring>

#include "msg/dma.hpp"
#include "shm/numa_region.hpp"
#include "shm/scoma_region.hpp"
#include "sim/random.hpp"
#include "xfer/approaches.hpp"
#include "tests/test_util.hpp"

namespace sv {
namespace {

TEST(StressTest, FourNodeScomaRandomTraffic) {
  auto machine = sys::Machine(test::small_machine_params(4));
  std::vector<std::unique_ptr<shm::ScomaRegion>> regions;
  for (sim::NodeId n = 0; n < 4; ++n) {
    regions.push_back(
        std::make_unique<shm::ScomaRegion>(machine.node(n).ap()));
  }
  sim::Rng rng(99);
  std::vector<std::uint32_t> ref(24, 0);

  bool done = false;
  machine.node(0).ap().run(
      [](std::vector<std::unique_ptr<shm::ScomaRegion>>* rs, sim::Rng* rng,
         std::vector<std::uint32_t>* ref, bool* d) -> sim::Co<void> {
        for (int i = 0; i < 200; ++i) {
          auto& r = *(*rs)[rng->below(rs->size())];
          const std::size_t word = rng->below(ref->size());
          // Spread words across pages so all four homes participate.
          const mem::Addr off = 0x1000 * (1 + word % 4) + (word / 4) * 64;
          if (rng->chance(0.5)) {
            const auto v = static_cast<std::uint32_t>(rng->next());
            co_await r.store<std::uint32_t>(off, v);
            (*ref)[word] = v;
          } else {
            const auto v = co_await r.load<std::uint32_t>(off);
            EXPECT_EQ(v, (*ref)[word]) << "word " << word << " iter " << i;
          }
        }
        *d = true;
      }(&regions, &rng, &ref, &done));
  test::drive(machine.kernel(), [&] { return done; },
              5000 * sim::kMillisecond);
}

TEST(StressTest, NumaReactionReconfiguration) {
  // The paper: "a configurable table that decides whether an operation is
  // actually passed to the sP, allowing the filtering of operations that
  // are not useful for coherence". Reconfigure stores to be dropped
  // (absorbed but not forwarded): the store completes on the bus but the
  // firmware never sees it.
  auto machine = sys::Machine(test::small_machine_params(2));
  auto& abiu = machine.node(0).niu().abiu();
  abiu.set_numa_reaction(niu::OpClass::kStore, {false, false});

  shm::NumaRegion numa(machine.node(0).ap());
  bool done = false;
  machine.node(0).ap().run(
      [](shm::NumaRegion* r, bool* d) -> sim::Co<void> {
        co_await r->store<std::uint32_t>(0x40, 1234);  // filtered out
        *d = true;
      }(&numa, &done));
  test::drive(machine.kernel(), [&] { return done; });
  machine.kernel().run_until(machine.kernel().now() +
                             20 * sim::kMicrosecond);

  // Nothing reached the backing store; the forward count stayed at zero.
  EXPECT_EQ(machine.node(0).dram().store().read_scalar<std::uint32_t>(
                fw::kNumaBackingBase + 0x40),
            0u);
  EXPECT_EQ(abiu.stats().numa_forwards.value(), 0u);

  // Restore the default and verify stores flow again.
  abiu.set_numa_reaction(niu::OpClass::kStore, {false, true});
  done = false;
  machine.node(0).ap().run(
      [](shm::NumaRegion* r, bool* d) -> sim::Co<void> {
        co_await r->store<std::uint32_t>(0x40, 5678);
        *d = true;
      }(&numa, &done));
  test::drive(machine.kernel(), [&] {
    return machine.node(0).dram().store().read_scalar<std::uint32_t>(
               fw::kNumaBackingBase + 0x40) == 5678;
  });
}

TEST(StressTest, RxQueueCacheRebinding) {
  // "Selectively caching queues": the OS/firmware can rebind a hardware
  // receive queue to a different logical id at runtime. Traffic for the
  // old id then spills through the miss queue; traffic for the new id
  // lands in hardware.
  auto machine =
      sys::Machine(test::small_machine_params(2, sys::Machine::NetKind::kIdeal));
  auto ep0 = machine.node(0).make_endpoint();
  auto& rctrl = machine.node(1).niu().ctrl();

  constexpr net::QueueId kHot = 0x0200;
  // Rebind the user1 hardware queue to the new hot logical id.
  rctrl.rxq(sys::Node::kRxUser1).logical = kHot;

  machine.node(0).ap().run(
      [](msg::Endpoint* ep) -> sim::Co<void> {
        co_await ep->send_raw(1, kHot, test::pattern_bytes(8));
        // The old user1 logical id now misses.
        co_await ep->send_raw(1, msg::AddressMap::kUser1L,
                              test::pattern_bytes(8));
      }(&ep0));

  test::drive(machine.kernel(), [&] {
    return !rctrl.rxq(sys::Node::kRxUser1).empty() &&
           rctrl.stats().rx_misses.value() >= 1;
  });
}

TEST(StressTest, MixedSystemWorkload) {
  // The paper's closing argument: real platforms support "system workload
  // level studies". Run messaging, DMA, S-COMA and NUMA traffic at the
  // same time on one machine and verify every piece completes correctly.
  auto machine = sys::Machine(test::small_machine_params(2));
  auto ep0 = machine.node(0).make_endpoint();
  auto ep1 = machine.node(1).make_endpoint();
  const auto map = machine.addr_map();

  auto dma_src = test::pattern_bytes(8192, 77);
  machine.node(0).dram().store().write(0x100000, dma_src);

  int done = 0;
  bool msgs_ok = true;

  // Thread 1 (node 0 aP): DMA push + message stream.
  machine.node(0).ap().run(
      [](msg::Endpoint* ep, msg::AddressMap map, int* d) -> sim::Co<void> {
        co_await msg::dma_write(*ep, map, 0, 1, 0x100000, 0x200000, 8192,
                                msg::AddressMap::kUser1L, 0xD);
        for (std::uint32_t i = 0; i < 30; ++i) {
          std::byte b[4];
          std::memcpy(b, &i, 4);
          co_await ep->send(map.user0(1), b);
        }
        ++*d;
      }(&ep0, map, &done));

  // Thread 2 (node 1 aP): consume messages while touching shared memory.
  machine.node(1).ap().run(
      [](msg::Endpoint* ep, sys::Machine* m, int* d,
         bool* ok) -> sim::Co<void> {
        shm::ScomaRegion sc(m->node(1).ap());
        shm::NumaRegion nm(m->node(1).ap());
        for (std::uint32_t i = 0; i < 30; ++i) {
          msg::Message msg = co_await ep->recv();
          std::uint32_t seq = 0;
          std::memcpy(&seq, msg.data.data(), 4);
          if (seq != i) {
            *ok = false;
          }
          co_await sc.store<std::uint32_t>(0x40 * (i + 1), i);
          co_await nm.store<std::uint32_t>(0x40 * (i + 1), i + 100);
        }
        ++*d;
      }(&ep1, &machine, &done, &msgs_ok));

  // Thread 3 (node 1, second endpoint): wait for the DMA completion.
  auto ep1b = machine.node(1).make_endpoint1();
  machine.node(1).ap().run(
      [](msg::Endpoint* ep, int* d) -> sim::Co<void> {
        msg::Message m = co_await ep->recv_interrupt();
        std::uint32_t tag = 0;
        std::memcpy(&tag, m.data.data(), 4);
        EXPECT_EQ(tag, 0xDu);
        ++*d;
      }(&ep1b, &done));

  test::drive(machine.kernel(), [&] { return done == 3; },
              2000 * sim::kMillisecond);
  EXPECT_TRUE(msgs_ok);

  std::vector<std::byte> dst(8192);
  machine.node(1).dram().store().read(0x200000, dst);
  EXPECT_EQ(dst, dma_src);

  // The shared-memory side effects all landed.
  for (std::uint32_t i = 0; i < 30; ++i) {
    EXPECT_EQ(machine.node(1).niu().cls().peek(niu::kScomaBase +
                                               0x40 * (i + 1)),
              niu::ABiu::kClsReadWrite);
  }
}

TEST(StressTest, ManyTransfersAcrossAllApproachesStaysDeterministic) {
  auto run_once = [] {
    auto p = test::small_machine_params(2);
    p.node.enable_scoma = false;
    sys::Machine machine(p);
    xfer::BlockTransferHarness harness(machine);
    sim::Tick sum = 0;
    for (int i = 0; i < 2; ++i) {
      for (int approach = 1; approach <= 5; ++approach) {
        xfer::TransferSpec s;
        s.src = 0x0010'0000;
        s.dst = approach >= 4 ? niu::kScomaBase + 0x4000 : 0x0020'0000;
        s.len = 2048;
        xfer::RunOptions opt;
        opt.consume = approach >= 4;
        const auto res = harness.run(approach, s, opt);
        EXPECT_TRUE(res.ok);
        sum += res.latency();
      }
    }
    return sum;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace sv

// Cross-cutting property sweeps:
//   - Express messages: random (vdest byte, extra, word) tuples round-trip
//     end to end, in order, through the full aP/bus/NIU/network path;
//   - memory system: random-size random-alignment accesses through the
//     cached and uncached paths agree with a reference model;
//   - dirty tracking: a random write pattern marks exactly the written
//     lines, and a cls-mode diff reproduces the page remotely.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>

#include "sim/random.hpp"
#include "tests/test_util.hpp"
#include "xfer/approaches.hpp"

namespace sv {
namespace {

class ExpressProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(ExpressProperty, RandomTuplesRoundTripInOrder) {
  sys::Machine machine(test::small_machine_params(2));
  auto ep0 = machine.node(0).make_endpoint();
  auto ep1 = machine.node(1).make_endpoint();
  const auto map = machine.addr_map();
  sim::Rng rng(GetParam());

  constexpr int kCount = 60;
  std::vector<std::pair<std::uint8_t, std::uint32_t>> sent;
  for (int i = 0; i < kCount; ++i) {
    sent.emplace_back(static_cast<std::uint8_t>(rng.below(256)),
                      static_cast<std::uint32_t>(rng.next()));
  }

  machine.node(0).ap().run(
      [](msg::Endpoint* ep, std::uint8_t dst,
         const std::vector<std::pair<std::uint8_t, std::uint32_t>>* v)
          -> sim::Co<void> {
        for (const auto& [extra, word] : *v) {
          co_await ep->send_express(dst, extra, word);
        }
      }(&ep0, static_cast<std::uint8_t>(map.express(1)), &sent));

  int received = 0;
  bool ok = true;
  machine.node(1).ap().run(
      [](msg::Endpoint* ep,
         const std::vector<std::pair<std::uint8_t, std::uint32_t>>* want,
         int* n, bool* ok_) -> sim::Co<void> {
        for (std::size_t i = 0; i < want->size(); ++i) {
          const msg::ExpressMessage m = co_await ep->recv_express();
          if (m.extra != (*want)[i].first ||
              m.word != (*want)[i].second || m.src_node != 0) {
            *ok_ = false;
          }
          ++*n;
        }
      }(&ep1, &sent, &received, &ok));

  test::drive(machine.kernel(), [&] { return received == kCount; });
  EXPECT_TRUE(ok);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExpressProperty,
                         ::testing::Values(60, 61, 62, 63));

class MemoryPathProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(MemoryPathProperty, CachedAndUncachedPathsAgree) {
  sys::Machine machine(test::small_machine_params(2));
  auto& ap = machine.node(0).ap();
  sim::Rng rng(GetParam());
  std::vector<std::uint8_t> ref(2048, 0);
  constexpr mem::Addr kBase = 0x0008'0000;

  bool done = false;
  ap.run([](cpu::Processor* p, sim::Rng* rng, std::vector<std::uint8_t>* ref,
            bool* d) -> sim::Co<void> {
    for (int i = 0; i < 250; ++i) {
      const std::size_t len = 1 + rng->below(16);
      const std::size_t off = rng->below(ref->size() - len);
      const bool cached = rng->chance(0.5);
      if (rng->chance(0.5)) {
        std::vector<std::byte> data(len);
        for (auto& b : data) {
          b = static_cast<std::byte>(rng->below(256));
        }
        if (cached) {
          co_await p->store(kBase + off, data);
        } else {
          // Uncached stores must not race dirty cached lines: push them
          // out first (software-managed coherence, as on the real box).
          co_await p->flush_range(kBase + off, len);
          co_await p->store_uncached(kBase + off, data);
        }
        std::memcpy(ref->data() + off, data.data(), len);
      } else {
        std::vector<std::byte> got(len);
        if (cached) {
          co_await p->load(kBase + off, got);
        } else {
          co_await p->flush_range(kBase + off, len);
          co_await p->load_uncached(kBase + off, got);
        }
        for (std::size_t j = 0; j < len; ++j) {
          EXPECT_EQ(static_cast<std::uint8_t>(got[j]), (*ref)[off + j])
              << "off " << off + j << " iter " << i
              << (cached ? " cached" : " uncached");
        }
      }
    }
    *d = true;
  }(&ap, &rng, &ref, &done));
  test::drive(machine.kernel(), [&] { return done; },
              2000 * sim::kMillisecond);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemoryPathProperty,
                         ::testing::Values(70, 71, 72));

class DirtyTrackingProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(DirtyTrackingProperty, RandomWritePatternDiffsExactly) {
  auto p = test::small_machine_params(2);
  p.node.enable_scoma = false;
  sys::Machine machine(p);
  constexpr mem::Addr kBuf = niu::kScomaBase + 0x10000;
  constexpr std::uint32_t kLen = 2048;  // 64 lines
  constexpr mem::Addr kDst = 0x0060'0000;
  machine.node(0).niu().abiu().enable_write_tracking(kBuf, kLen);

  sim::Rng rng(GetParam());
  std::set<unsigned> dirty_lines;
  for (int i = 0; i < 12; ++i) {
    dirty_lines.insert(static_cast<unsigned>(rng.below(kLen / 32)));
  }

  bool wrote = false;
  machine.node(0).ap().run(
      [](cpu::Processor* ap, const std::set<unsigned>* lines,
         unsigned seed, bool* d) -> sim::Co<void> {
        for (const unsigned line : *lines) {
          co_await ap->store_scalar<std::uint32_t>(
              kBuf + static_cast<mem::Addr>(line) * 32, seed + line);
        }
        co_await ap->flush_range(kBuf, kLen);
        *d = true;
      }(&machine.node(0).ap(), &dirty_lines, GetParam(), &wrote));
  test::drive(machine.kernel(), [&] { return wrote; });

  // Every written line is marked, every untouched line is clean.
  auto& cls = machine.node(0).niu().cls();
  for (unsigned line = 0; line < kLen / 32; ++line) {
    const bool marked =
        (cls.peek(kBuf + line * 32) & niu::ABiu::kClsDirty) != 0;
    EXPECT_EQ(marked, dirty_lines.count(line) != 0) << "line " << line;
  }

  // A cls-mode diff ships exactly the dirty lines.
  niu::Command cmd;
  cmd.op = niu::CmdOp::kBlockDiffTx;
  cmd.diff_mode = 0;
  cmd.addr = kBuf;
  cmd.len = kLen;
  cmd.dest_node = 1;
  cmd.dest_addr = kDst;
  machine.node(0).niu().ctrl().post_command(0, cmd);
  test::drive(machine.kernel(), [&] {
    return machine.node(0).niu().ctrl().commands_idle() &&
           machine.node(1).niu().ctrl().commands_idle();
  });
  const sim::Tick settle = machine.kernel().now() + 50 * sim::kMicrosecond;
  sys::run_until(machine.kernel(),
                 [&] { return machine.kernel().now() >= settle; },
                 settle + sim::kMicrosecond);

  for (unsigned line = 0; line < kLen / 32; ++line) {
    const auto got =
        machine.node(1).dram().store().read_scalar<std::uint32_t>(
            kDst + line * 32);
    if (dirty_lines.count(line) != 0) {
      EXPECT_EQ(got, GetParam() + line) << "line " << line;
    } else {
      EXPECT_EQ(got, 0u) << "line " << line;
    }
    EXPECT_EQ(cls.peek(kBuf + line * 32) & niu::ABiu::kClsDirty, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirtyTrackingProperty,
                         ::testing::Values(80, 81, 82, 83));

}  // namespace
}  // namespace sv

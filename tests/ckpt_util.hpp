// Steppable workload runs for the checkpoint tests: the same drivers as
// run_machine_and_dump_stats / run_app_and_dump_stats (test_util.hpp,
// app_util.hpp), but the caller drives time — so a run can be captured
// mid-flight, a second identical run replayed to the same boundary, and
// the two snapshots byte-compared (Snapshot::verify). That replay
// equivalence is the restore contract DESIGN.md §14 states.
#pragma once

#include "ckpt/capture.hpp"
#include "tests/app_util.hpp"
#include "tests/test_util.hpp"

namespace sv::test {

/// A RunSpec workload materialized as a machine the caller steps.
struct SteppableRun {
  sys::Machine machine;
  std::vector<std::unique_ptr<msg::Endpoint>> eps;
  std::vector<std::unique_ptr<msg::ReliableChannel>> chans;
  std::vector<std::uint8_t> done;

  explicit SteppableRun(const RunSpec& spec)
      : machine(make_params(spec)), done(spec.nodes, 0) {
    if (spec.trace_capacity > 0) {
      machine.enable_tracing(spec.trace_capacity);
    }
    switch (spec.workload) {
      case Workload::kMsg:
        detail::start_msg_drivers(machine, spec, eps, done);
        break;
      case Workload::kShm:
        detail::start_shm_drivers(machine, spec, done);
        break;
      case Workload::kReliable:
        detail::start_reliable_drivers(machine, spec, eps, chans, done);
        break;
    }
  }

  [[nodiscard]] bool finished() const {
    for (const auto f : done) {
      if (f == 0) {
        return false;
      }
    }
    for (const auto& ch : chans) {
      if (ch->unacked() != 0) {
        return false;
      }
    }
    return true;
  }

  /// Drive to the first epoch boundary at/after `target` and capture.
  [[nodiscard]] ckpt::Snapshot capture_at(
      sim::Tick target, sim::Tick deadline = 2000 * sim::kMillisecond) {
    ckpt::run_to_tick(machine, target, machine.now() + deadline);
    return ckpt::capture(machine, "run");
  }

  void finish(sim::Tick deadline = 2000 * sim::kMillisecond) {
    ASSERT_TRUE(sys::run_until(machine, [&] { return finished(); },
                               machine.now() + deadline))
        << "workload timed out at " << machine.now() << " ps";
  }

  [[nodiscard]] std::string stats_json() {
    std::ostringstream os;
    sys::dump_stats_json(machine, os);
    return os.str();
  }

  /// Canonical trace-span dump (tracing-enabled specs only).
  [[nodiscard]] std::string span_dump() const {
    return trace::canonical_span_dump(machine.tracers());
  }

 private:
  static sys::Machine::Params make_params(const RunSpec& spec) {
    auto mp = small_machine_params(spec.nodes, spec.net);
    mp.threads = spec.threads;
    mp.fault = spec.fault;
    mp.node.bus.fastpath = spec.fastpath;
    mp.node.ap.fastpath = spec.fastpath;
    mp.node.sp.fastpath = spec.fastpath;
    return mp;
  }
};

/// An AppRunSpec workload (app runtime over a chosen transport),
/// steppable the same way; captures include the "app" chunk.
struct SteppableAppRun {
  sys::Machine machine;
  app::World world;
  app::AppResult app;

  explicit SteppableAppRun(const AppRunSpec& spec)
      : machine(make_params(spec)), world(machine, world_params(spec)) {
    world.launch(make_app_program(spec, &app));
  }

  [[nodiscard]] ckpt::Snapshot capture_at(
      sim::Tick target, sim::Tick deadline = 2000 * sim::kMillisecond) {
    ckpt::run_to_tick(machine, target, machine.now() + deadline);
    return ckpt::capture(machine, "app-run", &world);
  }

  void finish(sim::Tick deadline = 2000 * sim::kMillisecond) {
    ASSERT_TRUE(sys::run_until(machine, [&] { return world.done(); },
                               machine.now() + deadline))
        << "app timed out at " << machine.now() << " ps";
  }

  [[nodiscard]] std::string stats_json() {
    auto reg = sys::collect_stats(machine);
    world.add_stats(reg);
    std::ostringstream os;
    reg.dump_json(os);
    return os.str();
  }

 private:
  static sys::Machine::Params make_params(const AppRunSpec& spec) {
    auto mp = small_machine_params(spec.nodes, sys::Machine::NetKind::kIdeal);
    mp.threads = spec.threads;
    mp.fault = spec.fault;
    mp.node.bus.fastpath = spec.fastpath;
    mp.node.ap.fastpath = spec.fastpath;
    mp.node.sp.fastpath = spec.fastpath;
    return mp;
  }

  static app::World::Params world_params(const AppRunSpec& spec) {
    app::World::Params wp;
    wp.nranks = spec.nranks;
    wp.transport = spec.transport;
    wp.shm_region = spec.shm_region;
    wp.reliable = spec.reliable;
    return wp;
  }
};

}  // namespace sv::test

// Tests for the paper's "Extending Default Mechanisms" features:
//   - aBIU hardware miss send (S-COMA misses bypass the local sP),
//   - clsSRAM write tracking + the diff-ing transmit engine
//     (update-based shared memory support).
#include <gtest/gtest.h>

#include <cstring>

#include "shm/scoma_region.hpp"
#include "sim/random.hpp"
#include "tests/test_util.hpp"
#include "xfer/approaches.hpp"

namespace sv {
namespace {

class HwMissSendTest : public ::testing::Test {
 protected:
  HwMissSendTest() : machine(test::small_machine_params(2)) {
    for (sim::NodeId n = 0; n < machine.size(); ++n) {
      machine.node(n).scoma()->enable_hw_miss_send();
    }
  }

  void run_on_ap(sim::NodeId n, sim::Co<void> co) {
    bool done = false;
    machine.node(n).ap().run(
        [](sim::Co<void> c, bool* d) -> sim::Co<void> {
          co_await std::move(c);
          *d = true;
        }(std::move(co), &done));
    test::drive(machine.kernel(), [&] { return done; });
  }

  sys::Machine machine;
};

TEST_F(HwMissSendTest, RemoteReadMissStillCoherent) {
  shm::ScomaRegion sc0(machine.node(0).ap());
  shm::ScomaRegion sc1(machine.node(1).ap());

  run_on_ap(0, [](shm::ScomaRegion* r) -> sim::Co<void> {
    co_await r->store<std::uint64_t>(0x100, 0xABCD0123FEDC4567ull);
    co_await r->flush(0x100, 8);
  }(&sc0));
  run_on_ap(1, [](shm::ScomaRegion* r) -> sim::Co<void> {
    const auto v = co_await r->load<std::uint64_t>(0x100);
    EXPECT_EQ(v, 0xABCD0123FEDC4567ull);
  }(&sc1));
  // The requester's client loop never ran: the aBIU sent the request.
  EXPECT_TRUE(machine.node(1).niu().abiu().hw_miss_send_enabled());
  EXPECT_EQ(machine.node(1).niu().sbiu().scoma_ops().size(), 0u);
}

TEST_F(HwMissSendTest, WriteMissAndInvalidateStillWork) {
  shm::ScomaRegion sc0(machine.node(0).ap());
  shm::ScomaRegion sc1(machine.node(1).ap());

  run_on_ap(0, [](shm::ScomaRegion* r) -> sim::Co<void> {
    co_await r->store<std::uint32_t>(0x200, 1);
    co_await r->flush(0x200, 4);
  }(&sc0));
  run_on_ap(1, [](shm::ScomaRegion* r) -> sim::Co<void> {
    (void)co_await r->load<std::uint32_t>(0x200);
    co_await r->store<std::uint32_t>(0x200, 2);
  }(&sc1));
  EXPECT_EQ(machine.node(0).niu().cls().peek(niu::kScomaBase + 0x200),
            niu::ABiu::kClsInvalid);
  run_on_ap(0, [](shm::ScomaRegion* r) -> sim::Co<void> {
    const auto v = co_await r->load<std::uint32_t>(0x200);
    EXPECT_EQ(v, 2u);
  }(&sc0));
}

TEST_F(HwMissSendTest, MissPathSkipsRequesterSp) {
  // Compare the requester's sP busy time for one remote miss against the
  // firmware-mediated path on a second machine.
  shm::ScomaRegion sc1(machine.node(1).ap());
  const sim::Tick sp_before = machine.node(1).sp().busy();
  run_on_ap(1, [](shm::ScomaRegion* r) -> sim::Co<void> {
    (void)co_await r->load<std::uint32_t>(0x300);
  }(&sc1));
  const sim::Tick hw_sp = machine.node(1).sp().busy() - sp_before;

  sys::Machine fw_machine(test::small_machine_params(2));
  shm::ScomaRegion fsc1(fw_machine.node(1).ap());
  bool done = false;
  const sim::Tick fw_before = fw_machine.node(1).sp().busy();
  fw_machine.node(1).ap().run(
      [](shm::ScomaRegion* r, bool* d) -> sim::Co<void> {
        (void)co_await r->load<std::uint32_t>(0x300);
        *d = true;
      }(&fsc1, &done));
  test::drive(fw_machine.kernel(), [&] { return done; });
  const sim::Tick fw_sp = fw_machine.node(1).sp().busy() - fw_before;

  EXPECT_LT(hw_sp, fw_sp);
}

class HwMissSendProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(HwMissSendProperty, RandomTrafficCoherent) {
  auto machine = sys::Machine(test::small_machine_params(2));
  for (sim::NodeId n = 0; n < machine.size(); ++n) {
    machine.node(n).scoma()->enable_hw_miss_send();
  }
  shm::ScomaRegion sc0(machine.node(0).ap());
  shm::ScomaRegion sc1(machine.node(1).ap());
  sim::Rng rng(GetParam());
  std::vector<std::uint32_t> ref(16, 0);

  bool done = false;
  machine.node(0).ap().run(
      [](shm::ScomaRegion* a, shm::ScomaRegion* b, sim::Rng* rng,
         std::vector<std::uint32_t>* ref, bool* d) -> sim::Co<void> {
        for (int i = 0; i < 100; ++i) {
          shm::ScomaRegion* r = rng->chance(0.5) ? a : b;
          const std::size_t word = rng->below(16);
          const mem::Addr off = 0x1000 + word * 64;
          if (rng->chance(0.5)) {
            const auto v = static_cast<std::uint32_t>(rng->next());
            co_await r->store<std::uint32_t>(off, v);
            (*ref)[word] = v;
          } else {
            const auto v = co_await r->load<std::uint32_t>(off);
            EXPECT_EQ(v, (*ref)[word]) << "word " << word << " iter " << i;
          }
        }
        *d = true;
      }(&sc0, &sc1, &rng, &ref, &done));
  test::drive(machine.kernel(), [&] { return done; },
              2000 * sim::kMillisecond);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HwMissSendProperty,
                         ::testing::Values(7, 17, 27));

// --- Diff-ing hardware -----------------------------------------------------

class DiffTest : public ::testing::Test {
 protected:
  DiffTest() : machine(make_params()) {
    // The tracked buffer lives in the cls-covered region with the S-COMA
    // protocol disabled (the buffer is node-private; only the dirty bits
    // of clsSRAM are in play).
    machine.node(0).niu().abiu().enable_write_tracking(kBuf, kLen);
  }

  static sys::Machine::Params make_params() {
    auto p = test::small_machine_params(2);
    p.node.enable_scoma = false;
    return p;
  }

  void drive_idle() {
    test::drive(machine.kernel(), [&] {
      return machine.node(0).niu().ctrl().commands_idle() &&
             machine.node(1).niu().ctrl().commands_idle();
    });
    // Let trailing remote writes land.
    const sim::Tick settle = machine.kernel().now() + 50 * sim::kMicrosecond;
    sys::run_until(machine.kernel(),
                   [&] { return machine.kernel().now() >= settle; },
                   settle + sim::kMicrosecond);
  }

  static constexpr mem::Addr kBuf = niu::kScomaBase + 0x10000;
  static constexpr std::uint32_t kLen = 1024;  // 32 lines
  static constexpr mem::Addr kDst = 0x0060'0000;

  sys::Machine machine;
};

TEST_F(DiffTest, WriteTrackingMarksExactlyTheWrittenLines) {
  bool done = false;
  machine.node(0).ap().run(
      [](cpu::Processor* ap, bool* d) -> sim::Co<void> {
        co_await ap->store_scalar<std::uint32_t>(kBuf + 0 * 32, 1);
        co_await ap->store_scalar<std::uint32_t>(kBuf + 5 * 32, 2);
        co_await ap->store_scalar<std::uint32_t>(kBuf + 31 * 32, 3);
        // Flush so the writebacks surface (and mark) on the bus.
        co_await ap->flush_range(kBuf, kLen);
        *d = true;
      }(&machine.node(0).ap(), &done));
  test::drive(machine.kernel(), [&] { return done; });

  auto& cls = machine.node(0).niu().cls();
  for (std::uint32_t i = 0; i < 32; ++i) {
    const bool dirty = (cls.peek(kBuf + i * 32) & niu::ABiu::kClsDirty) != 0;
    const bool expect = i == 0 || i == 5 || i == 31;
    EXPECT_EQ(dirty, expect) << "line " << i;
  }
}

TEST_F(DiffTest, ClsModeDiffSendsOnlyDirtyLines) {
  // Populate the buffer (backdoor) and mark three lines dirty by writing.
  auto base_data = test::pattern_bytes(kLen, 20);
  machine.node(0).dram().store().write(kBuf, base_data);
  machine.node(1).dram().store().fill(kDst, kLen, std::byte{0});

  bool done = false;
  machine.node(0).ap().run(
      [](cpu::Processor* ap, bool* d) -> sim::Co<void> {
        co_await ap->store_scalar<std::uint32_t>(kBuf + 3 * 32, 0x31313131);
        co_await ap->store_scalar<std::uint32_t>(kBuf + 9 * 32, 0x32323232);
        co_await ap->flush_range(kBuf, kLen);
        *d = true;
      }(&machine.node(0).ap(), &done));
  test::drive(machine.kernel(), [&] { return done; });

  const auto sent_before = machine.network().packets_delivered();
  niu::Command cmd;
  cmd.op = niu::CmdOp::kBlockDiffTx;
  cmd.diff_mode = 0;
  cmd.addr = kBuf;
  cmd.len = kLen;
  cmd.dest_node = 1;
  cmd.dest_addr = kDst;
  machine.node(0).niu().ctrl().post_command(0, cmd);
  drive_idle();

  // Only the dirty lines landed at the destination.
  auto& dst = machine.node(1).dram().store();
  EXPECT_EQ(dst.read_scalar<std::uint32_t>(kDst + 3 * 32), 0x31313131u);
  EXPECT_EQ(dst.read_scalar<std::uint32_t>(kDst + 9 * 32), 0x32323232u);
  EXPECT_EQ(dst.read_scalar<std::uint32_t>(kDst + 4 * 32), 0u);
  EXPECT_EQ(dst.read_scalar<std::uint32_t>(kDst + 0 * 32), 0u);

  // Dirty bits cleared; a second diff sends nothing.
  auto& cls = machine.node(0).niu().cls();
  EXPECT_EQ(cls.peek(kBuf + 3 * 32) & niu::ABiu::kClsDirty, 0);
  const auto sent_mid = machine.network().packets_delivered();
  EXPECT_GE(sent_mid - sent_before, 2u);
  machine.node(0).niu().ctrl().post_command(0, cmd);
  drive_idle();
  EXPECT_EQ(machine.network().packets_delivered(), sent_mid);
}

TEST_F(DiffTest, ValueModeDiffAgainstStagedOldCopy) {
  // Old copy staged in sSRAM; DRAM region differs in two lines.
  auto old_data = test::pattern_bytes(kLen, 30);
  machine.node(0).dram().store().write(0x0070'0000, old_data);
  machine.node(0).niu().ssram().write(0x18000, old_data);
  machine.node(1).dram().store().fill(kDst, kLen, std::byte{0});

  auto new_data = old_data;
  new_data[7 * 32 + 4] = std::byte{0xEE};
  new_data[20 * 32] = std::byte{0xDD};
  machine.node(0).dram().store().write(0x0070'0000, new_data);

  niu::Command cmd;
  cmd.op = niu::CmdOp::kBlockDiffTx;
  cmd.diff_mode = 1;
  cmd.addr = 0x0070'0000;
  cmd.len = kLen;
  cmd.bank = niu::SramBank::kSSram;
  cmd.sram_offset = 0x18000;
  cmd.dest_node = 1;
  cmd.dest_addr = kDst;
  cmd.remote_notify = true;
  cmd.remote_notify_queue = msg::AddressMap::kUser0L;
  cmd.remote_notify_tag = 0x99;
  machine.node(0).niu().ctrl().post_command(0, cmd);
  drive_idle();

  auto& dst = machine.node(1).dram().store();
  std::vector<std::byte> line(32);
  dst.read(kDst + 7 * 32, line);
  EXPECT_EQ(line, std::vector<std::byte>(new_data.begin() + 7 * 32,
                                         new_data.begin() + 8 * 32));
  EXPECT_EQ(dst.read_scalar<std::uint8_t>(kDst + 6 * 32), 0u);

  // The old copy was refreshed: a re-diff sends nothing new.
  const auto sent = machine.network().packets_delivered();
  niu::Command again = cmd;
  again.remote_notify = false;
  machine.node(0).niu().ctrl().post_command(0, again);
  drive_idle();
  EXPECT_EQ(machine.network().packets_delivered(), sent);

  // The completion notification arrived at the receiver's user queue.
  EXPECT_FALSE(
      machine.node(1).niu().ctrl().rxq(sys::Node::kRxUser0).empty());
}

}  // namespace
}  // namespace sv

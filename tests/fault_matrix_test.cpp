// Deterministic fault-matrix harness: the full fault plan (drops,
// corruption, link-down windows, router stalls, priority starvation and
// forced Rx overflow, all at once) against a 4-node reliable ring.
//
// The headline property is *replayability*: the entire fault schedule is a
// pure function of the master seed, so running the same matrix twice must
// produce bit-identical machine-wide statistics — every retransmit, every
// CRC reject, every queue occupancy sample. A different seed produces a
// different schedule but the run must still complete, conserve packets and
// deliver everything exactly once.
//
// The base seed can be overridden from the environment (SV_FAULT_SEED) so
// CI can sweep seeds without a rebuild.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <vector>

#include "fault/fault.hpp"
#include "msg/reliable.hpp"
#include "sys/stats_dump.hpp"
#include "tests/test_util.hpp"

namespace sv {
namespace {

std::uint64_t base_seed() {
  if (const char* e = std::getenv("SV_FAULT_SEED")) {
    return std::strtoull(e, nullptr, 10);
  }
  return sim::Rng::kDefaultSeed;
}

fault::Plan full_matrix_plan(std::uint64_t seed) {
  fault::Plan p;
  p.seed = seed;
  p.drop_rate = 0.05;
  p.corrupt_rate = 0.05;
  p.link_down_rate = 0.02;
  p.router_stall_rate = 0.05;
  p.starve_rate = 0.05;
  p.rx_overflow_rate = 0.02;
  return p;
}

/// Run a reliable ring (every node streams kCount payloads to its right
/// neighbour) on a 4-node fat tree under the full fault matrix; assert
/// completion, exactly-once delivery counts and packet conservation; return
/// the machine-wide stats JSON for replay comparison.
std::string run_matrix(std::uint64_t seed) {
  constexpr std::uint64_t kCount = 25;
  constexpr std::size_t kBytes = 48;

  auto mp = test::small_machine_params(4);
  mp.fault = full_matrix_plan(seed);
  sys::Machine machine(mp);
  const auto map = machine.addr_map();

  msg::ReliableChannel::Params cp;
  cp.retransmit.base_timeout = 20 * sim::kMicrosecond;

  std::vector<std::unique_ptr<msg::Endpoint>> eps;
  std::vector<std::unique_ptr<msg::ReliableChannel>> chans;
  for (sim::NodeId n = 0; n < machine.size(); ++n) {
    eps.push_back(std::make_unique<msg::Endpoint>(
        machine.node(n).ap(), machine.node(n).endpoint_config()));
    chans.push_back(
        std::make_unique<msg::ReliableChannel>(*eps[n], map, n, cp));
    chans[n]->start();
  }

  std::size_t done = 0;
  for (sim::NodeId n = 0; n < machine.size(); ++n) {
    machine.node(n).ap().run(
        [](msg::ReliableChannel* ch, sim::NodeId self, std::size_t nodes,
           std::size_t* d) -> sim::Co<void> {
          const auto right = static_cast<sim::NodeId>((self + 1) % nodes);
          const auto left =
              static_cast<sim::NodeId>((self + nodes - 1) % nodes);
          for (std::uint64_t i = 0; i < kCount; ++i) {
            std::vector<std::byte> payload(kBytes);
            for (std::size_t b = 0; b < payload.size(); ++b) {
              payload[b] = static_cast<std::byte>(self + i + b);
            }
            co_await ch->send(right, payload);
          }
          for (std::uint64_t i = 0; i < kCount; ++i) {
            (void)co_await ch->recv(left);
          }
          ++*d;
        }(chans[n].get(), n, machine.size(), &done));
  }

  // Complete the ring, then quiesce: tail ACKs (themselves droppable) must
  // empty every retransmit window before the books can balance.
  test::drive(
      machine.kernel(),
      [&] {
        if (done != machine.size()) {
          return false;
        }
        for (const auto& ch : chans) {
          if (ch->unacked() != 0) {
            return false;
          }
        }
        return machine.network().audit().balanced();
      },
      2000 * sim::kMillisecond);

  // Exactly-once delivery, per channel.
  for (const auto& ch : chans) {
    EXPECT_EQ(ch->stats().payloads_delivered.value(), kCount);
    EXPECT_EQ(ch->unacked(), 0u);
    for (sim::NodeId peer = 0; peer < machine.size(); ++peer) {
      EXPECT_FALSE(ch->failed(peer));
    }
  }
  test::expect_network_conserves(machine);

  // The matrix must actually have fired: a fault plan this aggressive that
  // injects nothing would make the replay check vacuous.
  EXPECT_NE(machine.fault_injector(), nullptr);
  if (machine.fault_injector() != nullptr) {
    const auto& fs = machine.fault_injector()->stats();
    EXPECT_GT(fs.drops.value(), 0u);
    EXPECT_GT(fs.corrupts.value(), 0u);
    EXPECT_GT(fs.router_stalls.value(), 0u);
  }

  std::ostringstream os;
  sys::dump_stats_json(machine, os);
  return os.str();
}

TEST(FaultMatrixTest, ReplaySameSeedIsBitIdentical) {
  const std::uint64_t seed = base_seed();
  const std::string first = run_matrix(seed);
  const std::string second = run_matrix(seed);
  EXPECT_EQ(first, second)
      << "two runs of the identical fault matrix diverged (seed " << seed
      << ")";
}

TEST(FaultMatrixTest, DifferentSeedStillCompletes) {
  // A shifted seed reshuffles every fault stream; the run must still
  // terminate with exactly-once delivery and balanced books (asserted
  // inside run_matrix).
  (void)run_matrix(base_seed() + 1);
}

TEST(FaultMatrixTest, NamedStreamsAreDecorrelatedButStable) {
  const std::uint64_t s = base_seed();
  EXPECT_EQ(fault::Injector::stream_seed(s, "link.drop"),
            fault::Injector::stream_seed(s, "link.drop"));
  EXPECT_NE(fault::Injector::stream_seed(s, "link.drop"),
            fault::Injector::stream_seed(s, "link.corrupt"));
  EXPECT_NE(fault::Injector::stream_seed(s, "link.drop"),
            fault::Injector::stream_seed(s + 1, "link.drop"));
}

TEST(FaultMatrixTest, ZeroRatePlanCreatesNoInjector) {
  EXPECT_FALSE(fault::Plan{}.enabled());
  sys::Machine machine(test::small_machine_params(2));
  EXPECT_EQ(machine.fault_injector(), nullptr);
}

TEST(FaultMatrixTest, GiveUpSurfacesAsTxQueueShutdown) {
  // A black-holed fabric (100% drop) must not hang the sender forever:
  // the retransmit engine exhausts its attempts, declares the peer failed
  // and the give-up hook shuts the tx queue down, exactly like a
  // protection violation would.
  auto mp = test::small_machine_params(2);
  mp.fault.seed = base_seed();
  mp.fault.drop_rate = 1.0;
  sys::Machine machine(mp);
  const auto map = machine.addr_map();

  msg::ReliableChannel::Params cp;
  cp.retransmit.base_timeout = 5 * sim::kMicrosecond;
  cp.retransmit.give_up_after = 3;

  auto ep = machine.node(0).make_endpoint();
  msg::ReliableChannel ch(ep, map, 0, cp);
  unsigned give_ups = 0;
  ch.set_give_up([&](sim::NodeId /*peer*/) {
    ++give_ups;
    machine.node(0).niu().ctrl().shutdown_tx_queue(sys::Node::kTxUser0);
  });
  ch.start();

  machine.node(0).ap().run([](msg::ReliableChannel* c) -> sim::Co<void> {
    co_await c->send(1, test::pattern_bytes(32));
  }(&ch));

  test::drive(machine.kernel(), [&] { return ch.failed(1); });
  EXPECT_EQ(give_ups, 1u);
  EXPECT_TRUE(machine.node(0).niu().ctrl().txq(sys::Node::kTxUser0).shutdown);
  EXPECT_GE(ch.stats().retransmitted.value(), cp.retransmit.give_up_after);

  // Sends to a failed peer return immediately instead of blocking.
  bool returned = false;
  machine.node(0).ap().run(
      [](msg::ReliableChannel* c, bool* r) -> sim::Co<void> {
        co_await c->send(1, test::pattern_bytes(8));
        *r = true;
      }(&ch, &returned));
  test::drive(machine.kernel(), [&] { return returned; });

  // Every injected packet was dropped; the books still balance.
  test::expect_network_conserves(machine);
  const auto a = machine.network().audit();
  EXPECT_EQ(a.delivered, 0u);
  EXPECT_EQ(a.injected, a.dropped);
}

}  // namespace
}  // namespace sv

// Deterministic fault-matrix harness: the full fault plan (drops,
// corruption, link-down windows, router stalls, priority starvation and
// forced Rx overflow, all at once) against a 4-node reliable ring.
//
// The headline property is *replayability*: the entire fault schedule is a
// pure function of the master seed, so running the same matrix twice must
// produce bit-identical machine-wide statistics — every retransmit, every
// CRC reject, every queue occupancy sample. A different seed produces a
// different schedule but the run must still complete, conserve packets and
// deliver everything exactly once.
//
// The base seed can be overridden from the environment (SV_FAULT_SEED) so
// CI can sweep seeds without a rebuild.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <vector>

#include "fault/fault.hpp"
#include "msg/reliable.hpp"
#include "sys/stats_dump.hpp"
#include "tests/ckpt_util.hpp"
#include "tests/test_util.hpp"

namespace sv {
namespace {

std::uint64_t base_seed() {
  if (const char* e = std::getenv("SV_FAULT_SEED")) {
    return std::strtoull(e, nullptr, 10);
  }
  return sim::Rng::kDefaultSeed;
}

fault::Plan full_matrix_plan(std::uint64_t seed) {
  fault::Plan p;
  p.seed = seed;
  p.drop_rate = 0.05;
  p.corrupt_rate = 0.05;
  p.link_down_rate = 0.02;
  p.router_stall_rate = 0.05;
  p.starve_rate = 0.05;
  p.rx_overflow_rate = 0.02;
  return p;
}

/// Run a reliable ring (every node streams 25 payloads to its right
/// neighbour) on a 4-node fat tree under the full fault matrix via the
/// shared workload harness. The harness asserts completion, exactly-once
/// delivery counts and packet conservation; this wrapper additionally
/// checks the matrix actually fired and returns the machine-wide stats
/// JSON for replay comparison.
std::string run_matrix(std::uint64_t seed) {
  test::RunSpec spec;
  spec.workload = test::Workload::kReliable;
  spec.nodes = 4;
  spec.net = sys::Machine::NetKind::kFatTree;
  spec.fault = full_matrix_plan(seed);
  spec.count = 25;
  spec.bytes = 48;
  spec.retransmit_timeout = 20 * sim::kMicrosecond;
  const test::RunResult res = test::run_machine_and_dump_stats(spec);

  // The matrix must actually have fired: a fault plan this aggressive that
  // injects nothing would make the replay check vacuous.
  EXPECT_GT(res.fault_stats.drops.value(), 0u);
  EXPECT_GT(res.fault_stats.corrupts.value(), 0u);
  EXPECT_GT(res.fault_stats.router_stalls.value(), 0u);
  return res.stats_json;
}

TEST(FaultMatrixTest, ReplaySameSeedIsBitIdentical) {
  const std::uint64_t seed = base_seed();
  const std::string first = run_matrix(seed);
  const std::string second = run_matrix(seed);
  EXPECT_EQ(first, second)
      << "two runs of the identical fault matrix diverged (seed " << seed
      << ")";
}

TEST(FaultMatrixTest, DifferentSeedStillCompletes) {
  // A shifted seed reshuffles every fault stream; the run must still
  // terminate with exactly-once delivery and balanced books (asserted
  // inside run_matrix).
  (void)run_matrix(base_seed() + 1);
}

TEST(FaultMatrixTest, NamedStreamsAreDecorrelatedButStable) {
  const std::uint64_t s = base_seed();
  EXPECT_EQ(fault::Injector::stream_seed(s, "link.drop"),
            fault::Injector::stream_seed(s, "link.drop"));
  EXPECT_NE(fault::Injector::stream_seed(s, "link.drop"),
            fault::Injector::stream_seed(s, "link.corrupt"));
  EXPECT_NE(fault::Injector::stream_seed(s, "link.drop"),
            fault::Injector::stream_seed(s + 1, "link.drop"));
}

TEST(FaultMatrixTest, ZeroRatePlanCreatesNoInjector) {
  EXPECT_FALSE(fault::Plan{}.enabled());
  sys::Machine machine(test::small_machine_params(2));
  EXPECT_EQ(machine.fault_injector(), nullptr);
}

TEST(FaultMatrixTest, CheckpointPreservesInjectorCursorsBitIdentically) {
  // Mid-run checkpoint under the full fault matrix: the snapshot's
  // "fault" chunk records every lane's six raw RNG stream words plus the
  // per-category decision cursors, and a fresh machine replayed to the
  // same epoch boundary must land on the identical bytes — the injector's
  // schedule position survives restore bit for bit, which is what makes
  // the matrix replayable across a checkpoint.
  test::RunSpec spec;
  spec.workload = test::Workload::kReliable;
  spec.nodes = 4;
  spec.net = sys::Machine::NetKind::kFatTree;
  spec.fault = full_matrix_plan(base_seed());
  spec.count = 25;
  spec.bytes = 48;
  spec.retransmit_timeout = 20 * sim::kMicrosecond;

  test::SteppableRun a(spec);
  const ckpt::Snapshot snap = a.capture_at(30 * sim::kMicrosecond);
  ASSERT_NE(a.machine.fault_injector(), nullptr);
  const std::vector<std::byte>* fault_chunk = snap.find("fault");
  ASSERT_NE(fault_chunk, nullptr);
  ASSERT_FALSE(fault_chunk->empty());
  // The matrix must have fired before the capture, or the cursor check
  // is vacuous.
  EXPECT_GT(a.machine.fault_injector()->drop_opportunities(), 0u);

  test::SteppableRun b(spec);
  const ckpt::Snapshot replay = b.capture_at(snap.tick);
  ASSERT_EQ(replay.tick, snap.tick);
  const std::vector<std::byte>* replay_chunk = replay.find("fault");
  ASSERT_NE(replay_chunk, nullptr);
  EXPECT_EQ(*replay_chunk, *fault_chunk)
      << "injector RNG streams / cursors diverged across restore";
  try {
    ckpt::Snapshot::verify(snap, replay);
  } catch (const ckpt::Error& e) {
    ADD_FAILURE() << e.what();
  }

  // Both machines ride the same fault schedule to the end.
  a.finish();
  b.finish();
  EXPECT_EQ(a.stats_json(), b.stats_json());
}

TEST(FaultMatrixTest, GiveUpSurfacesAsTxQueueShutdown) {
  // A black-holed fabric (100% drop) must not hang the sender forever:
  // the retransmit engine exhausts its attempts, declares the peer failed
  // and the give-up hook shuts the tx queue down, exactly like a
  // protection violation would.
  auto mp = test::small_machine_params(2);
  mp.fault.seed = base_seed();
  mp.fault.drop_rate = 1.0;
  sys::Machine machine(mp);
  const auto map = machine.addr_map();

  msg::ReliableChannel::Params cp;
  cp.retransmit.base_timeout = 5 * sim::kMicrosecond;
  cp.retransmit.give_up_after = 3;

  auto ep = machine.node(0).make_endpoint();
  msg::ReliableChannel ch(ep, map, 0, cp);
  unsigned give_ups = 0;
  ch.set_give_up([&](sim::NodeId /*peer*/) {
    ++give_ups;
    machine.node(0).niu().ctrl().shutdown_tx_queue(sys::Node::kTxUser0);
  });
  ch.start();

  machine.node(0).ap().run([](msg::ReliableChannel* c) -> sim::Co<void> {
    co_await c->send(1, test::pattern_bytes(32));
  }(&ch));

  test::drive(machine.kernel(), [&] { return ch.failed(1); });
  EXPECT_EQ(give_ups, 1u);
  EXPECT_TRUE(machine.node(0).niu().ctrl().txq(sys::Node::kTxUser0).shutdown);
  EXPECT_GE(ch.stats().retransmitted.value(), cp.retransmit.give_up_after);

  // Sends to a failed peer return immediately instead of blocking.
  bool returned = false;
  machine.node(0).ap().run(
      [](msg::ReliableChannel* c, bool* r) -> sim::Co<void> {
        co_await c->send(1, test::pattern_bytes(8));
        *r = true;
      }(&ch, &returned));
  test::drive(machine.kernel(), [&] { return returned; });

  // Every injected packet was dropped; the books still balance.
  test::expect_network_conserves(machine);
  const auto a = machine.network().audit();
  EXPECT_EQ(a.delivered, 0u);
  EXPECT_EQ(a.injected, a.dropped);
}

}  // namespace
}  // namespace sv

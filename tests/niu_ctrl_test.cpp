// CTRL integration tests on a two-node machine: queue launch/receive,
// translation and protection, rx-queue caching, full-queue policies,
// express engines, the command machinery and the block engines.
#include <gtest/gtest.h>

#include <cstring>

#include "tests/test_util.hpp"

namespace sv {
namespace {

class CtrlTest : public ::testing::Test {
 protected:
  CtrlTest()
      : machine(test::small_machine_params(2, sys::Machine::NetKind::kIdeal)) {
  }

  niu::Ctrl& ctrl(sim::NodeId n) { return machine.node(n).niu().ctrl(); }

  /// Compose a Basic message directly in the tx queue's SRAM (backdoor) and
  /// launch it with a pointer update, as the aBIU would.
  void compose_and_launch(sim::NodeId n, unsigned txq,
                          const niu::MsgDescriptor& desc,
                          std::span<const std::byte> data) {
    auto& c = ctrl(n);
    auto& q = c.txq(txq);
    auto& sram = machine.node(n).niu().asram();
    const std::uint32_t slot = q.slot_addr(q.producer);
    std::byte hdr[8];
    desc.encode(hdr);
    sram.write(slot, hdr);
    if (!data.empty()) {
      sram.write(slot + niu::kBasicHeaderBytes, data);
    }
    c.tx_producer_update(txq, static_cast<std::uint16_t>(q.producer + 1));
  }

  /// Read the head message of an rx queue (backdoor) without consuming.
  std::pair<niu::RxDescriptor, std::vector<std::byte>> peek_rx(
      sim::NodeId n, unsigned rxq) {
    auto& q = ctrl(n).rxq(rxq);
    auto& sram = machine.node(n).niu().sram_of(q.bank);
    const std::uint32_t slot = q.slot_addr(q.consumer);
    std::byte hdr[8];
    sram.read(slot, hdr);
    auto desc = niu::RxDescriptor::decode(hdr);
    std::vector<std::byte> data(desc.length);
    if (desc.length > 0) {
      sram.read(slot + niu::kBasicHeaderBytes, data);
    }
    return {desc, data};
  }

  void drive_until(const std::function<bool()>& pred) {
    test::drive(machine.kernel(), pred);
  }

  sys::Machine machine;
};

TEST_F(CtrlTest, BasicMessageTravelsEndToEnd) {
  const auto map = machine.addr_map();
  auto payload = test::pattern_bytes(40);
  niu::MsgDescriptor d;
  d.vdest = map.user0(1);
  d.length = 40;
  compose_and_launch(0, sys::Node::kTxUser0, d, payload);

  // Wait for the rx producer shadow: it is written after the slot lands,
  // so everything below is stable once it reads 1.
  drive_until([&] {
    return machine.node(1).niu().asram().read_scalar<std::uint32_t>(
               niu::rx_producer_shadow(sys::Node::kRxUser0)) == 1;
  });
  auto [desc, data] = peek_rx(1, sys::Node::kRxUser0);
  EXPECT_EQ(desc.src_node, 0);
  EXPECT_EQ(desc.logical, msg::AddressMap::kUser0L);
  EXPECT_EQ(data, payload);
  EXPECT_EQ(ctrl(0).stats().msgs_launched.value(), 1u);
  // The tx consumer advanced and was shadowed into aSRAM.
  EXPECT_TRUE(ctrl(0).txq(sys::Node::kTxUser0).empty());
  EXPECT_EQ(machine.node(0).niu().asram().read_scalar<std::uint32_t>(
                niu::tx_consumer_shadow(sys::Node::kTxUser0)),
            1u);
  // The rx producer was shadowed on the receiver.
  EXPECT_EQ(machine.node(1).niu().asram().read_scalar<std::uint32_t>(
                niu::rx_producer_shadow(sys::Node::kRxUser0)),
            1u);
}

TEST_F(CtrlTest, TagOnAppendsSramData) {
  const auto map = machine.addr_map();
  auto inline_data = test::pattern_bytes(8, 1);
  auto tagon_data = test::pattern_bytes(niu::kTagOnSmallBytes, 2);
  machine.node(0).niu().asram().write(sys::Node::kStagingBase, tagon_data);

  niu::MsgDescriptor d;
  d.vdest = map.user0(1);
  d.length = 8;
  d.flags = niu::MsgDescriptor::kFlagTagOn;
  d.aux = sys::Node::kStagingBase;
  compose_and_launch(0, sys::Node::kTxUser0, d, inline_data);

  drive_until([&] { return !ctrl(1).rxq(sys::Node::kRxUser0).empty(); });
  auto [desc, data] = peek_rx(1, sys::Node::kRxUser0);
  ASSERT_EQ(data.size(), 8u + niu::kTagOnSmallBytes);
  EXPECT_TRUE(std::equal(data.begin(), data.begin() + 8,
                         inline_data.begin()));
  EXPECT_TRUE(std::equal(data.begin() + 8, data.end(), tagon_data.begin()));
}

TEST_F(CtrlTest, InvalidDestinationShutsQueueDown) {
  niu::MsgDescriptor d;
  d.vdest = 0xFF;  // beyond the table
  d.length = 0;
  compose_and_launch(0, sys::Node::kTxUser0, d, {});

  drive_until([&] { return ctrl(0).txq(sys::Node::kTxUser0).shutdown; });
  EXPECT_EQ(ctrl(0).stats().protection_violations.value(), 1u);
  EXPECT_NE(ctrl(0).interrupt_status() & niu::kIntrProtection, 0u);
  EXPECT_EQ(ctrl(0).read_reg(niu::SysReg::kShutdownStatus),
            1u << sys::Node::kTxUser0);

  // OS re-enables the queue; note the offending message is still at the
  // head and will shut it down again, so drain it first (backdoor).
  auto& q = ctrl(0).txq(sys::Node::kTxUser0);
  q.consumer = q.producer;
  ctrl(0).write_reg(niu::SysReg::kShutdownStatus,
                    1u << sys::Node::kTxUser0);
  EXPECT_FALSE(q.shutdown);
}

TEST_F(CtrlTest, RawMessageRequiresPermission) {
  // The user0 queue is not raw-allowed: a raw message kills it.
  niu::MsgDescriptor d;
  d.vdest = 1;
  d.flags = niu::MsgDescriptor::kFlagRaw;
  d.aux = msg::AddressMap::kUser0L;
  compose_and_launch(0, sys::Node::kTxUser0, d, {});
  drive_until([&] { return ctrl(0).txq(sys::Node::kTxUser0).shutdown; });

  // The trusted raw queue delivers it.
  niu::MsgDescriptor d2 = d;
  compose_and_launch(0, sys::Node::kTxRaw, d2, {});
  drive_until([&] { return !ctrl(1).rxq(sys::Node::kRxUser0).empty(); });
  EXPECT_FALSE(ctrl(0).txq(sys::Node::kTxRaw).shutdown);
}

TEST_F(CtrlTest, BogusProducerUpdateShutsQueueDown) {
  auto& c = ctrl(0);
  // Claiming more slots than exist is a protection violation.
  c.tx_producer_update(sys::Node::kTxUser0,
                       static_cast<std::uint16_t>(
                           sys::Node::kUserSlots + 5));
  EXPECT_TRUE(c.txq(sys::Node::kTxUser0).shutdown);
}

TEST_F(CtrlTest, RxCacheMissDivertsToMissQueue) {
  niu::MsgDescriptor d;
  d.vdest = 1;
  d.flags = niu::MsgDescriptor::kFlagRaw;
  d.aux = 0x0BAD;  // logical queue bound nowhere
  compose_and_launch(0, sys::Node::kTxRaw, d, test::pattern_bytes(16));

  drive_until([&] { return !ctrl(1).rxq(niu::kMissRxQueue).empty(); });
  auto [desc, data] = peek_rx(1, niu::kMissRxQueue);
  EXPECT_EQ(desc.logical, 0x0BAD);  // original logical id preserved
  EXPECT_EQ(ctrl(1).stats().rx_misses.value(), 1u);
  EXPECT_NE(ctrl(1).interrupt_status() & niu::kIntrRxMiss, 0u);
}

TEST_F(CtrlTest, FullQueuePolicyDrop) {
  auto& rq = ctrl(1).rxq(sys::Node::kRxUser1);
  rq.full_policy = niu::RxFullPolicy::kDrop;
  rq.slots = 2;

  const auto map = machine.addr_map();
  for (int i = 0; i < 4; ++i) {
    niu::MsgDescriptor d;
    d.vdest = map.user1(1);
    d.length = 4;
    compose_and_launch(0, sys::Node::kTxUser0, d, test::pattern_bytes(4));
  }
  drive_until([&] { return ctrl(0).stats().msgs_launched.value() == 4; });
  drive_until([&] { return ctrl(1).stats().rx_dropped.value() >= 1; });
  EXPECT_EQ(rq.occupancy(), 2);
}

TEST_F(CtrlTest, FullQueuePolicyDivertGoesToMissQueue) {
  auto& rq = ctrl(1).rxq(sys::Node::kRxUser1);
  rq.full_policy = niu::RxFullPolicy::kDivert;
  rq.slots = 2;

  const auto map = machine.addr_map();
  for (int i = 0; i < 3; ++i) {
    niu::MsgDescriptor d;
    d.vdest = map.user1(1);
    d.length = 4;
    compose_and_launch(0, sys::Node::kTxUser0, d, test::pattern_bytes(4));
  }
  drive_until([&] { return !ctrl(1).rxq(niu::kMissRxQueue).empty(); });
  auto [desc, data] = peek_rx(1, niu::kMissRxQueue);
  EXPECT_EQ(desc.logical, msg::AddressMap::kUser1L);
}

TEST_F(CtrlTest, FullQueuePolicyHoldBackpressuresAndResumes) {
  auto& rq = ctrl(1).rxq(sys::Node::kRxUser1);
  rq.full_policy = niu::RxFullPolicy::kHold;
  rq.slots = 2;

  const auto map = machine.addr_map();
  for (int i = 0; i < 3; ++i) {
    niu::MsgDescriptor d;
    d.vdest = map.user1(1);
    d.length = 4;
    compose_and_launch(0, sys::Node::kTxUser0, d, test::pattern_bytes(4));
  }
  drive_until([&] { return rq.full(); });
  // The third message is held; freeing a slot lets it land.
  const auto held_before = ctrl(1).stats().rx_held_ps.value();
  ctrl(1).rx_consumer_update(sys::Node::kRxUser1,
                             static_cast<std::uint16_t>(rq.consumer + 1));
  drive_until([&] { return ctrl(1).stats().rx_hits.value() == 3; });
  EXPECT_GE(ctrl(1).stats().rx_held_ps.value(), held_before);
}

TEST_F(CtrlTest, ExpressRoundTripThroughCtrl) {
  // Push an express entry on node 0's express queue; it must pop on node
  // 1's express rx queue, reformatted with the source node.
  std::byte entry[8] = {};
  entry[0] = std::byte{1};     // vdest = node 1 (express section ORed in)
  entry[1] = std::byte{0x5A};  // extra byte
  const std::uint32_t word = 0xA1B2C3D4;
  std::memcpy(entry + 4, &word, 4);
  std::uint64_t packed = 0;
  std::memcpy(&packed, entry, 8);

  sim::spawn(ctrl(0).express_tx_push(sys::Node::kTxExpress, packed));
  drive_until([&] { return !ctrl(1).rxq(sys::Node::kRxExpress).empty(); });

  const std::uint64_t rx = ctrl(1).express_rx_pop(sys::Node::kRxExpress);
  ASSERT_NE(rx, niu::Ctrl::kExpressEmpty);
  std::byte rx_bytes[8];
  std::memcpy(rx_bytes, &rx, 8);
  EXPECT_EQ(rx_bytes[0], std::byte{1});     // valid
  EXPECT_EQ(rx_bytes[1], std::byte{0});     // source node 0
  EXPECT_EQ(rx_bytes[2], std::byte{0x5A});  // extra byte
  std::uint32_t got = 0;
  std::memcpy(&got, rx_bytes + 4, 4);
  EXPECT_EQ(got, word);

  // Empty pop returns the canonical pattern.
  EXPECT_EQ(ctrl(1).express_rx_pop(sys::Node::kRxExpress),
            niu::Ctrl::kExpressEmpty);
}

TEST_F(CtrlTest, CommandWriteSramAndCopySram) {
  niu::Command wr;
  wr.op = niu::CmdOp::kWriteSram;
  wr.bank = niu::SramBank::kSSram;
  wr.sram_offset = 0x18000;
  wr.data = test::pattern_bytes(32);
  ctrl(0).post_command(0, wr);

  niu::Command cp;
  cp.op = niu::CmdOp::kCopySram;
  cp.bank = niu::SramBank::kSSram;
  cp.sram_offset = 0x18000;
  cp.bank2 = niu::SramBank::kASram;
  cp.sram_offset2 = 0x9000;
  cp.len = 32;
  ctrl(0).post_command(0, cp);

  drive_until([&] { return ctrl(0).commands_idle(); });
  std::vector<std::byte> got(32);
  machine.node(0).niu().asram().read(0x9000, got);
  EXPECT_EQ(got, wr.data);
}

TEST_F(CtrlTest, CommandCompletionNotifiesLocalQueue) {
  niu::Command wr;
  wr.op = niu::CmdOp::kWriteSram;
  wr.bank = niu::SramBank::kASram;
  wr.sram_offset = 0x9100;
  wr.data = test::pattern_bytes(8);
  wr.notify_queue = msg::AddressMap::kUser0L;
  wr.notify_tag = 0xBEEF;
  ctrl(0).post_command(0, wr);

  drive_until([&] {
    return !ctrl(0).rxq(sys::Node::kRxUser0).empty() &&
           (ctrl(0).interrupt_status() & niu::kIntrCmdComplete) != 0;
  });
  auto [desc, data] = peek_rx(0, sys::Node::kRxUser0);
  std::uint32_t tag = 0;
  std::memcpy(&tag, data.data(), 4);
  EXPECT_EQ(tag, 0xBEEFu);
}

TEST_F(CtrlTest, BlockReadMovesDramToSram) {
  auto data = test::pattern_bytes(256);
  machine.node(0).dram().store().write(0x4000, data);

  niu::Command cmd;
  cmd.op = niu::CmdOp::kBlockRead;
  cmd.addr = 0x4000;
  cmd.len = 256;
  cmd.bank = niu::SramBank::kASram;
  cmd.sram_offset = 0xA000;
  ctrl(0).post_command(0, cmd);

  drive_until([&] { return ctrl(0).commands_idle(); });
  std::vector<std::byte> got(256);
  machine.node(0).niu().asram().read(0xA000, got);
  EXPECT_EQ(got, data);
  EXPECT_EQ(ctrl(0).stats().block_reads.value(), 1u);
}

TEST_F(CtrlTest, BlockTxMovesSramToRemoteDram) {
  auto data = test::pattern_bytes(256);
  machine.node(0).niu().asram().write(0xA000, data);

  niu::Command cmd;
  cmd.op = niu::CmdOp::kBlockTx;
  cmd.bank = niu::SramBank::kASram;
  cmd.sram_offset = 0xA000;
  cmd.len = 256;
  cmd.dest_node = 1;
  cmd.dest_addr = 0x5000;
  cmd.remote_notify = true;
  cmd.remote_notify_queue = msg::AddressMap::kUser0L;
  cmd.remote_notify_tag = 7;
  ctrl(0).post_command(0, cmd);

  drive_until([&] { return !ctrl(1).rxq(sys::Node::kRxUser0).empty(); });
  std::vector<std::byte> got(256);
  machine.node(1).dram().store().read(0x5000, got);
  EXPECT_EQ(got, data);
}

TEST_F(CtrlTest, BlockXferChainsReadAndTx) {
  auto data = test::pattern_bytes(4096);
  machine.node(0).dram().store().write(0x8000, data);

  niu::Command cmd;
  cmd.op = niu::CmdOp::kBlockXfer;
  cmd.addr = 0x8000;
  cmd.dest_addr = 0x6000;
  cmd.len = 4096;
  cmd.bank = niu::SramBank::kSSram;
  cmd.sram_offset = sys::Node::kDmaStagingBase;
  cmd.dest_node = 1;
  ctrl(0).post_command(0, cmd);

  drive_until([&] {
    return ctrl(0).commands_idle() && ctrl(1).commands_idle() &&
           machine.node(1).dram().store().read_scalar<std::uint8_t>(
               0x6000 + 4095) ==
               static_cast<std::uint8_t>(data[4095]);
  });
  std::vector<std::byte> got(4096);
  machine.node(1).dram().store().read(0x6000, got);
  EXPECT_EQ(got, data);
  EXPECT_EQ(ctrl(0).stats().block_xfers.value(), 1u);
}

TEST_F(CtrlTest, FenceOrdersCommandAfterBlockOp) {
  auto data = test::pattern_bytes(1024);
  machine.node(0).dram().store().write(0x8000, data);

  niu::Command blk;
  blk.op = niu::CmdOp::kBlockRead;
  blk.addr = 0x8000;
  blk.len = 1024;
  blk.bank = niu::SramBank::kASram;
  blk.sram_offset = 0xB000;
  ctrl(0).post_command(0, blk);

  // A fenced copy of the staged data must see the complete block.
  niu::Command cp;
  cp.op = niu::CmdOp::kCopySram;
  cp.fence = true;
  cp.bank = niu::SramBank::kASram;
  cp.sram_offset = 0xB000;
  cp.bank2 = niu::SramBank::kASram;
  cp.sram_offset2 = 0xC000;
  cp.len = 1024;
  ctrl(0).post_command(0, cp);

  drive_until([&] { return ctrl(0).commands_idle(); });
  std::vector<std::byte> got(1024);
  machine.node(0).niu().asram().read(0xC000, got);
  EXPECT_EQ(got, data);
}

TEST_F(CtrlTest, TxPriorityClassesDrainHighFirst) {
  // Reconfigure: user1 queue to class 3, user0 stays at 1. Fill both while
  // the TxU is busy, then check completion order by timestamps.
  ctrl(0).write_reg(niu::SysReg::kTxPriority,
                    (3ull << (2 * sys::Node::kTxUser1)) |
                        (1ull << (2 * sys::Node::kTxUser0)));
  EXPECT_EQ(ctrl(0).txq(sys::Node::kTxUser1).priority_class, 3);

  const auto map = machine.addr_map();
  // Queue several messages on both queues back to back.
  for (int i = 0; i < 4; ++i) {
    niu::MsgDescriptor d;
    d.vdest = map.user0(1);
    d.length = 64;
    compose_and_launch(0, sys::Node::kTxUser0, d, test::pattern_bytes(64));
    niu::MsgDescriptor d1;
    d1.vdest = map.user1(1);
    d1.length = 64;
    compose_and_launch(0, sys::Node::kTxUser1, d1, test::pattern_bytes(64));
  }
  drive_until([&] {
    return ctrl(0).txq(sys::Node::kTxUser0).empty() &&
           ctrl(0).txq(sys::Node::kTxUser1).empty();
  });
  // High class must have fully drained before the low class finished:
  // count arrivals at the receiver per logical queue prefix.
  auto& r1 = ctrl(1).rxq(sys::Node::kRxUser1);
  auto& r0 = ctrl(1).rxq(sys::Node::kRxUser0);
  drive_until([&] { return r1.occupancy() == 4 && r0.occupancy() == 4; });
  SUCCEED();
}

}  // namespace
}  // namespace sv

// Restore-then-replay bit-identity (DESIGN.md §14): checkpoint a workload
// mid-run, rebuild an identical machine, replay it to the capture tick,
// and assert the re-captured state matches the snapshot byte for byte —
// then run both machines to completion and assert the final state, the
// stats JSON and (where tracing is on) the canonical trace-span dump are
// also byte-identical. The sweep covers every canonical workload
// {msg, shm, reliable, app.*}, both fast-path settings and sequential +
// partitioned kernels, because the restore contract is exactly "replay
// equals the uninterrupted run" and that must hold wherever the
// determinism contract does.
//
// The committed corpus entry tests/ckpt/reliable_ring.svck additionally
// pins the on-disk format: if a ckpt_save() changes shape, this suite
// fails until the snapshot version is bumped and the corpus regenerated
// (tools/svexplore write_snapshot=...).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ckpt/scenario.hpp"
#include "tests/ckpt_util.hpp"

namespace sv {
namespace {

void expect_verify_ok(const ckpt::Snapshot& expected,
                      const ckpt::Snapshot& actual) {
  try {
    ckpt::Snapshot::verify(expected, actual);
  } catch (const ckpt::Error& e) {
    ADD_FAILURE() << e.what();
  }
}

/// The core oracle: run A to the first boundary at/after `at` and
/// snapshot; run B — a fresh machine from the same spec, standing in for
/// the rebuilt-from-config restore path — to the same boundary, and
/// byte-verify. Then finish both and byte-compare the final capture and
/// the stats JSON.
void expect_replay_identical(const test::RunSpec& spec, sim::Tick at) {
  test::SteppableRun a(spec);
  const ckpt::Snapshot snap = a.capture_at(at);
  EXPECT_GE(snap.tick, at);
  EXPECT_FALSE(snap.chunks().empty());

  test::SteppableRun b(spec);
  const ckpt::Snapshot replay = b.capture_at(snap.tick);
  EXPECT_EQ(replay.tick, snap.tick);
  expect_verify_ok(snap, replay);

  a.finish();
  b.finish();
  const ckpt::Snapshot final_a = ckpt::capture(a.machine, "final");
  const ckpt::Snapshot final_b = ckpt::capture(b.machine, "final");
  EXPECT_EQ(final_a.tick, final_b.tick);
  expect_verify_ok(final_a, final_b);
  EXPECT_EQ(a.stats_json(), b.stats_json());
}

test::RunSpec base_spec(test::Workload w, unsigned threads, bool fastpath) {
  test::RunSpec spec;
  spec.workload = w;
  spec.nodes = 4;
  spec.threads = threads;
  spec.fastpath = fastpath;
  spec.count = 12;
  spec.bytes = 32;
  spec.ops = 40;
  return spec;
}

TEST(CkptReplayTest, MsgSweep) {
  for (const unsigned threads : {0u, 2u}) {
    for (const bool fastpath : {false, true}) {
      SCOPED_TRACE(::testing::Message()
                   << "threads=" << threads << " fastpath=" << fastpath);
      expect_replay_identical(
          base_spec(test::Workload::kMsg, threads, fastpath),
          10 * sim::kMicrosecond);
    }
  }
}

TEST(CkptReplayTest, ShmSweep) {
  for (const unsigned threads : {0u, 2u}) {
    for (const bool fastpath : {false, true}) {
      SCOPED_TRACE(::testing::Message()
                   << "threads=" << threads << " fastpath=" << fastpath);
      expect_replay_identical(
          base_spec(test::Workload::kShm, threads, fastpath),
          10 * sim::kMicrosecond);
    }
  }
}

TEST(CkptReplayTest, ReliableSweep) {
  for (const unsigned threads : {0u, 2u}) {
    for (const bool fastpath : {false, true}) {
      SCOPED_TRACE(::testing::Message()
                   << "threads=" << threads << " fastpath=" << fastpath);
      expect_replay_identical(
          base_spec(test::Workload::kReliable, threads, fastpath),
          10 * sim::kMicrosecond);
    }
  }
}

TEST(CkptReplayTest, ReliableUnderFaultsReplays) {
  // With the fault injector live, the snapshot additionally carries the
  // "fault" chunk (raw RNG words + decision cursors); the replay must
  // land on the very same words.
  test::RunSpec spec = base_spec(test::Workload::kReliable, 0, true);
  spec.net = sys::Machine::NetKind::kFatTree;
  spec.fault.seed = 7;
  spec.fault.drop_rate = 0.05;
  spec.fault.corrupt_rate = 0.05;
  expect_replay_identical(spec, 20 * sim::kMicrosecond);
}

TEST(CkptReplayTest, PartitionedCaptureIsThreadCountInvariant) {
  // All partitioned machines have the same domain shape (one per node),
  // so the snapshot is a function of the spec and the tick alone —
  // identical for 1, 2 and 4 workers.
  const test::RunSpec spec1 = base_spec(test::Workload::kMsg, 1, true);
  test::SteppableRun one(spec1);
  const ckpt::Snapshot ref = one.capture_at(10 * sim::kMicrosecond);
  for (const unsigned threads : {2u, 4u}) {
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    test::SteppableRun run(base_spec(test::Workload::kMsg, threads, true));
    expect_verify_ok(ref, run.capture_at(ref.tick));
  }
}

TEST(CkptReplayTest, LargeMachineReplays256) {
  // The scaling work (O(active-domain) barrier, sharded stats, lazy node
  // state) must not perturb capture/replay: a 256-node machine restores
  // and replays byte-identically under the same oracle as the 4-node
  // sweeps, sequential and partitioned.
  for (const unsigned threads : {0u, 4u}) {
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    test::RunSpec spec = base_spec(test::Workload::kMsg, threads, true);
    spec.nodes = 256;
    spec.count = 2;
    expect_replay_identical(spec, 2 * sim::kMicrosecond);
  }
}

TEST(CkptReplayTest, TraceSpansByteIdentical) {
  // A checkpointed-then-continued run and an uninterrupted run emit the
  // same golden trace, byte for byte — capture is observation only.
  test::RunSpec spec = base_spec(test::Workload::kMsg, 0, true);
  spec.trace_capacity = 4096;

  test::SteppableRun a(spec);
  const ckpt::Snapshot snap = a.capture_at(10 * sim::kMicrosecond);
  a.finish();

  test::SteppableRun b(spec);
  const ckpt::Snapshot replay = b.capture_at(snap.tick);
  expect_verify_ok(snap, replay);
  b.finish();

  EXPECT_EQ(a.span_dump(), b.span_dump());
  EXPECT_EQ(a.stats_json(), b.stats_json());
}

// --- Application runtime: the snapshot's "app" chunk covers rank
// completion, collective generations, transport sequence state and
// mailbox contents.

void expect_app_replay_identical(const test::AppRunSpec& spec,
                                 sim::Tick at) {
  test::SteppableAppRun a(spec);
  const ckpt::Snapshot snap = a.capture_at(at);
  EXPECT_NE(snap.find("app"), nullptr) << "app chunk missing from capture";

  test::SteppableAppRun b(spec);
  const ckpt::Snapshot replay = b.capture_at(snap.tick);
  expect_verify_ok(snap, replay);

  a.finish();
  b.finish();
  EXPECT_EQ(a.app.errors, 0u);
  EXPECT_EQ(b.app.errors, 0u);
  expect_verify_ok(ckpt::capture(a.machine, "final", &a.world),
                   ckpt::capture(b.machine, "final", &b.world));
  EXPECT_EQ(a.stats_json(), b.stats_json());
}

TEST(CkptReplayTest, AppStencilMsgSweep) {
  for (const unsigned threads : {0u, 2u}) {
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    test::AppRunSpec spec;
    spec.app = test::AppKind::kStencil;
    spec.transport = app::TransportKind::kMsg;
    spec.threads = threads;
    expect_app_replay_identical(spec, 10 * sim::kMicrosecond);
  }
}

TEST(CkptReplayTest, AppAllreduceShmReplay) {
  test::AppRunSpec spec;
  spec.app = test::AppKind::kAllreduce;
  spec.transport = app::TransportKind::kShm;
  spec.allreduce.max_elems = 32;
  expect_app_replay_identical(spec, 10 * sim::kMicrosecond);
}

TEST(CkptReplayTest, AppKvReliableReplay) {
  test::AppRunSpec spec;
  spec.app = test::AppKind::kKv;
  spec.transport = app::TransportKind::kReliable;
  spec.kv.requests = 16;
  expect_app_replay_identical(spec, 10 * sim::kMicrosecond);
}

// --- Committed corpus: the checked-in snapshot must restore against the
// current build. This is the on-disk format's regression pin: a changed
// ckpt_save() shape or walk order fails here first.

std::string corpus_path() {
  return std::string(SV_CKPT_DIR) + "/reliable_ring.svck";
}

TEST(CkptReplayTest, CommittedCorpusRestoresByteIdentically) {
  const ckpt::Snapshot snap = ckpt::Snapshot::load_file(corpus_path());
  EXPECT_GT(snap.tick, 0u);
  EXPECT_FALSE(snap.chunks().empty());

  // run_reliable_ring with a resume snapshot replays to the capture tick
  // and byte-verifies every chunk (throwing on divergence) before it
  // continues; a fault-free continuation must end without violation.
  const ckpt::RingSpec spec = ckpt::RingSpec::from_config(snap.config);
  const ckpt::ScenarioResult res = ckpt::run_reliable_ring(spec, {}, &snap);
  EXPECT_FALSE(res.violation) << res.detail;
}

}  // namespace
}  // namespace sv

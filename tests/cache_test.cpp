// Snooping-cache tests: MESI transitions, writebacks, upgrades, snoop
// pushes, intervention, and two-cache coherence on one bus.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "mem/bus.hpp"
#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "sim/random.hpp"
#include "tests/test_util.hpp"

namespace sv::mem {
namespace {

class CacheTest : public ::testing::Test {
 protected:
  CacheTest() {
    DramCtrl::Params dp;
    dp.ranges.push_back({0x0, 1 << 20});
    dram = std::make_unique<DramCtrl>(kernel, "dram", dp);
    bus.attach(dram.get());
    SnoopingCache::Params cp;
    cp.size_bytes = 4096;  // small: easy to force evictions
    cp.ways = 2;
    c0 = std::make_unique<SnoopingCache>(kernel, "c0", bus, cp);
    c1 = std::make_unique<SnoopingCache>(kernel, "c1", bus, cp);
  }

  void run(sim::Co<void> co) { test::run_co(kernel, std::move(co)); }

  sim::Kernel kernel;
  MemBus bus{kernel, "bus", {}};
  std::unique_ptr<DramCtrl> dram;
  std::unique_ptr<SnoopingCache> c0, c1;
};

TEST_F(CacheTest, ReadMissFillsExclusive) {
  dram->store().write_scalar<std::uint32_t>(0x100, 0xABCD1234);
  std::uint32_t v = 0;
  run([](SnoopingCache* c, std::uint32_t* out) -> sim::Co<void> {
    std::byte buf[4];
    co_await c->read(0x100, buf);
    std::memcpy(out, buf, 4);
  }(c0.get(), &v));
  EXPECT_EQ(v, 0xABCD1234u);
  EXPECT_EQ(c0->probe(0x100), MesiState::kExclusive);
  EXPECT_EQ(c0->stats().read_misses.value(), 1u);
}

TEST_F(CacheTest, SecondReadHits) {
  run([](SnoopingCache* c) -> sim::Co<void> {
    std::byte buf[4];
    co_await c->read(0x100, buf);
    co_await c->read(0x104, buf);  // same line
  }(c0.get()));
  EXPECT_EQ(c0->stats().read_misses.value(), 1u);
  EXPECT_EQ(c0->stats().read_hits.value(), 1u);
}

TEST_F(CacheTest, WriteMissFillsModified) {
  run([](SnoopingCache* c) -> sim::Co<void> {
    const std::uint32_t v = 42;
    co_await c->write(0x200, std::as_bytes(std::span(&v, 1)));
  }(c0.get()));
  EXPECT_EQ(c0->probe(0x200), MesiState::kModified);
  // DRAM not yet updated (write-back).
  EXPECT_EQ(dram->store().read_scalar<std::uint32_t>(0x200), 0u);
}

TEST_F(CacheTest, SharedOnSecondReader) {
  run([](SnoopingCache* a, SnoopingCache* b) -> sim::Co<void> {
    std::byte buf[4];
    co_await a->read(0x300, buf);
    co_await b->read(0x300, buf);
  }(c0.get(), c1.get()));
  EXPECT_EQ(c0->probe(0x300), MesiState::kShared);
  EXPECT_EQ(c1->probe(0x300), MesiState::kShared);
}

TEST_F(CacheTest, InterventionSuppliesDirtyDataAndReflects) {
  run([](SnoopingCache* a, SnoopingCache* b,
         DramCtrl* d) -> sim::Co<void> {
    const std::uint32_t v = 0xFEEDFACE;
    co_await a->write(0x400, std::as_bytes(std::span(&v, 1)));
    std::byte buf[4];
    co_await b->read(0x400, buf);
    std::uint32_t got = 0;
    std::memcpy(&got, buf, 4);
    EXPECT_EQ(got, 0xFEEDFACEu);
    // Dirty data was reflected into DRAM during the intervention.
    EXPECT_EQ(d->store().read_scalar<std::uint32_t>(0x400), 0xFEEDFACEu);
  }(c0.get(), c1.get(), dram.get()));
  EXPECT_EQ(c0->probe(0x400), MesiState::kShared);
  EXPECT_EQ(c1->probe(0x400), MesiState::kShared);
  EXPECT_EQ(c0->stats().snoop_interventions.value(), 1u);
}

TEST_F(CacheTest, UpgradeKillsOtherSharers) {
  run([](SnoopingCache* a, SnoopingCache* b) -> sim::Co<void> {
    std::byte buf[4];
    co_await a->read(0x500, buf);
    co_await b->read(0x500, buf);
    const std::uint32_t v = 7;
    co_await a->write(0x500, std::as_bytes(std::span(&v, 1)));
  }(c0.get(), c1.get()));
  EXPECT_EQ(c0->probe(0x500), MesiState::kModified);
  EXPECT_EQ(c1->probe(0x500), MesiState::kInvalid);
  EXPECT_EQ(c0->stats().upgrades.value(), 1u);
  EXPECT_EQ(c1->stats().snoop_invalidates.value(), 1u);
}

TEST_F(CacheTest, RwitmInvalidatesOtherCopy) {
  run([](SnoopingCache* a, SnoopingCache* b) -> sim::Co<void> {
    std::byte buf[4];
    co_await a->read(0x600, buf);
    const std::uint32_t v = 9;
    co_await b->write(0x600, std::as_bytes(std::span(&v, 1)));
  }(c0.get(), c1.get()));
  EXPECT_EQ(c0->probe(0x600), MesiState::kInvalid);
  EXPECT_EQ(c1->probe(0x600), MesiState::kModified);
}

TEST_F(CacheTest, DirtyEvictionWritesBack) {
  // 4 KB, 2-way, 32 B lines: 64 sets; addresses 0x0 and 0x800*k map to the
  // same set every 64 lines (stride 64*32 = 0x800).
  run([](SnoopingCache* c, DramCtrl* d) -> sim::Co<void> {
    const std::uint32_t v = 0x11111111;
    co_await c->write(0x0, std::as_bytes(std::span(&v, 1)));
    std::byte buf[4];
    co_await c->read(0x800, buf);
    co_await c->read(0x1000, buf);  // evicts the dirty line at 0x0
    EXPECT_EQ(d->store().read_scalar<std::uint32_t>(0x0), 0x11111111u);
  }(c0.get(), dram.get()));
  EXPECT_EQ(c0->probe(0x0), MesiState::kInvalid);
  EXPECT_GE(c0->stats().writebacks.value(), 1u);
}

TEST_F(CacheTest, FlushLineWritesBackAndInvalidates) {
  run([](SnoopingCache* c, DramCtrl* d) -> sim::Co<void> {
    const std::uint32_t v = 0x22222222;
    co_await c->write(0x700, std::as_bytes(std::span(&v, 1)));
    co_await c->flush_line(0x700);
    EXPECT_EQ(d->store().read_scalar<std::uint32_t>(0x700), 0x22222222u);
  }(c0.get(), dram.get()));
  EXPECT_EQ(c0->probe(0x700), MesiState::kInvalid);
}

TEST_F(CacheTest, FlushBroadcastReachesRemoteOwner) {
  // c0 flushes a line it does not hold; c1 holds it modified.
  run([](SnoopingCache* a, SnoopingCache* b, DramCtrl* d) -> sim::Co<void> {
    const std::uint32_t v = 0x33333333;
    co_await b->write(0x900, std::as_bytes(std::span(&v, 1)));
    co_await a->flush_line(0x900);
    EXPECT_EQ(d->store().read_scalar<std::uint32_t>(0x900), 0x33333333u);
  }(c0.get(), c1.get(), dram.get()));
  EXPECT_EQ(c1->probe(0x900), MesiState::kInvalid);
}

TEST_F(CacheTest, SnoopPushOnForeignWriteToDirtyLine) {
  // A non-cache master (simulated by raw bus ops) writes a line c0 holds
  // modified: c0 must push the line back and the writer must win.
  struct RawMaster : BusDevice {
    std::string_view device_name() const override { return "raw"; }
    SnoopResult bus_snoop(const BusRequest&) override { return {}; }
  } master;
  const int mid = bus.attach(&master);

  run([](SnoopingCache* c) -> sim::Co<void> {
    const std::uint32_t v = 0x44444444;
    co_await c->write(0xA00, std::as_bytes(std::span(&v, 1)));
  }(c0.get()));

  auto data = test::pattern_bytes(kLineBytes);
  run([](MemBus* b, int id, const std::vector<std::byte>* d) -> sim::Co<void> {
    BusRequest req;
    req.op = BusOp::kWriteLine;
    req.addr = 0xA00;
    req.size = kLineBytes;
    req.wdata = d->data();
    co_await b->transact_retry(id, req);
  }(&bus, mid, &data));

  EXPECT_EQ(c0->probe(0xA00), MesiState::kInvalid);
  EXPECT_GE(c0->stats().snoop_pushes.value(), 1u);
  std::vector<std::byte> got(kLineBytes);
  dram->store().read(0xA00, got);
  EXPECT_EQ(got, data);
}

TEST_F(CacheTest, UnalignedAccessSpansLines) {
  auto data = test::pattern_bytes(64);
  run([](SnoopingCache* c, const std::vector<std::byte>* d) -> sim::Co<void> {
    co_await c->write(0xB10, *d);  // crosses two line boundaries
    std::vector<std::byte> got(64);
    co_await c->read(0xB10, got);
    EXPECT_EQ(got, *d);
  }(c0.get(), &data));
}

TEST_F(CacheTest, InvalidateDiscardsWithoutWriteback) {
  run([](SnoopingCache* c, DramCtrl* d) -> sim::Co<void> {
    const std::uint32_t v = 0x55555555;
    co_await c->write(0xC00, std::as_bytes(std::span(&v, 1)));
    co_await c->invalidate_line(0xC00);
    // Discarded: memory never saw the store.
    EXPECT_EQ(d->store().read_scalar<std::uint32_t>(0xC00), 0u);
  }(c0.get(), dram.get()));
  EXPECT_EQ(c0->probe(0xC00), MesiState::kInvalid);
}

/// Property test: random accesses through two caches always read back what
/// the most recent write (through either cache) stored.
class CacheCoherenceProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(CacheCoherenceProperty, RandomTrafficStaysCoherent) {
  sim::Kernel kernel;
  MemBus bus(kernel, "bus", {});
  DramCtrl::Params dp;
  dp.ranges.push_back({0x0, 1 << 16});
  DramCtrl dram(kernel, "dram", dp);
  bus.attach(&dram);
  SnoopingCache::Params cp;
  cp.size_bytes = 2048;
  cp.ways = 2;
  SnoopingCache c0(kernel, "c0", bus, cp);
  SnoopingCache c1(kernel, "c1", bus, cp);

  sim::Rng rng(GetParam());
  // Reference model: plain byte array.
  std::vector<std::uint8_t> ref(4096, 0);

  test::run_co(
      kernel,
      [](sim::Rng* rng, SnoopingCache* a, SnoopingCache* b,
         std::vector<std::uint8_t>* ref) -> sim::Co<void> {
        for (int i = 0; i < 300; ++i) {
          SnoopingCache* c = rng->chance(0.5) ? a : b;
          const Addr addr = rng->below(4096 - 8);
          if (rng->chance(0.5)) {
            std::uint8_t val[4];
            for (auto& x : val) {
              x = static_cast<std::uint8_t>(rng->below(256));
            }
            co_await c->write(addr, std::as_bytes(std::span(val)));
            std::memcpy(ref->data() + addr, val, 4);
          } else {
            std::byte got[4];
            co_await c->read(addr, got);
            for (int j = 0; j < 4; ++j) {
              EXPECT_EQ(static_cast<std::uint8_t>(got[j]), (*ref)[addr + j])
                  << "mismatch at addr " << addr + j << " iter " << i;
            }
          }
        }
      }(&rng, &c0, &c1, &ref),
      sim::kMillisecond * 1000);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheCoherenceProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 23, 47));

}  // namespace
}  // namespace sv::mem

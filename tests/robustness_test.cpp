// Robustness and failure-injection tests: malformed traffic, protection
// fuzzing, queue-full stress, block-op bounds, and recovery paths. The
// protection story of paper section 4 is that bad actors lose *their*
// queue, never anyone else's.
#include <gtest/gtest.h>

#include <cstring>

#include "sim/random.hpp"
#include "tests/test_util.hpp"
#include "trace/trace.hpp"
#include "xfer/approaches.hpp"

namespace sv {
namespace {

class RobustnessTest : public ::testing::Test {
 protected:
  RobustnessTest()
      : machine(test::small_machine_params(2, sys::Machine::NetKind::kIdeal)) {
  }

  niu::Ctrl& ctrl(sim::NodeId n) { return machine.node(n).niu().ctrl(); }

  void compose(sim::NodeId n, unsigned txq, const niu::MsgDescriptor& desc,
               std::span<const std::byte> data) {
    auto& c = ctrl(n);
    auto& q = c.txq(txq);
    auto& sram = machine.node(n).niu().asram();
    const std::uint32_t slot = q.slot_addr(q.producer);
    std::byte hdr[8];
    desc.encode(hdr);
    sram.write(slot, hdr);
    if (!data.empty()) {
      sram.write(slot + niu::kBasicHeaderBytes, data);
    }
    c.tx_producer_update(txq, static_cast<std::uint16_t>(q.producer + 1));
  }

  void drive_until(const std::function<bool()>& pred) {
    test::drive(machine.kernel(), pred);
  }

  sys::Machine machine;
};

TEST_F(RobustnessTest, OversizedLengthFieldShutsQueueDown) {
  niu::MsgDescriptor d;
  d.vdest = machine.addr_map().user0(1);
  d.length = 255;  // > kBasicMaxData
  compose(0, sys::Node::kTxUser0, d, {});
  drive_until([&] { return ctrl(0).txq(sys::Node::kTxUser0).shutdown; });
  EXPECT_EQ(ctrl(0).stats().msgs_launched.value(), 0u);
}

TEST_F(RobustnessTest, OversizedTagOnShutsQueueDown) {
  niu::MsgDescriptor d;
  d.vdest = machine.addr_map().user0(1);
  d.length = 40;
  d.flags = niu::MsgDescriptor::kFlagTagOn |
            niu::MsgDescriptor::kFlagTagOnLarge;  // 40 + 80 > 88
  d.aux = sys::Node::kStagingBase;
  compose(0, sys::Node::kTxUser0, d, test::pattern_bytes(40));
  drive_until([&] { return ctrl(0).txq(sys::Node::kTxUser0).shutdown; });
}

TEST_F(RobustnessTest, RawToNonexistentNodeShutsQueueDown) {
  niu::MsgDescriptor d;
  d.vdest = 55;  // no such node
  d.flags = niu::MsgDescriptor::kFlagRaw;
  d.aux = msg::AddressMap::kUser0L;
  compose(0, sys::Node::kTxRaw, d, {});
  drive_until([&] { return ctrl(0).txq(sys::Node::kTxRaw).shutdown; });
}

TEST_F(RobustnessTest, ShutdownQueueDoesNotBlockOthers) {
  // Kill the user0 queue, then verify user1 still delivers.
  niu::MsgDescriptor bad;
  bad.vdest = 0xEE;
  compose(0, sys::Node::kTxUser0, bad, {});
  drive_until([&] { return ctrl(0).txq(sys::Node::kTxUser0).shutdown; });

  niu::MsgDescriptor good;
  good.vdest = machine.addr_map().user1(1);
  good.length = 8;
  compose(0, sys::Node::kTxUser1, good, test::pattern_bytes(8));
  drive_until(
      [&] { return !ctrl(1).rxq(sys::Node::kRxUser1).empty(); });
}

TEST_F(RobustnessTest, MalformedRemoteCommandDoesNotKillTheNode) {
  // Inject a garbage packet at the remote-command queue: CTRL must reject
  // it without corrupting anything, and normal traffic must still flow.
  net::Packet junk;
  junk.src = 0;
  junk.dest = 1;
  junk.dest_queue = net::kRemoteCmdQueue;
  junk.payload = test::pattern_bytes(7);  // shorter than the header
  bool threw = false;
  sim::spawn([](sys::Machine* m, net::Packet p, bool* t) -> sim::Co<void> {
    try {
      co_await m->node(0).niu().ctrl().inject(std::move(p));
    } catch (const std::exception&) {
      *t = true;
    }
  }(&machine, junk, &threw));
  // The malformed payload is detected at decode on the receive side; the
  // expected contract today is an exception surfaced by the decode (the
  // RxU catches-or-dies is part of this test: the machine must survive).
  machine.kernel().run_until(machine.kernel().now() +
                             10 * sim::kMicrosecond);

  niu::MsgDescriptor good;
  good.vdest = machine.addr_map().user0(1);
  good.length = 4;
  compose(0, sys::Node::kTxUser0, good, test::pattern_bytes(4));
  drive_until([&] { return !ctrl(1).rxq(sys::Node::kRxUser0).empty(); });
}

TEST_F(RobustnessTest, BlockOpBoundsAreEnforced) {
  auto& c = ctrl(0);
  bool threw = false;

  // Page-crossing block read must be rejected.
  sim::spawn([](niu::Ctrl* ctrl_, bool* t) -> sim::Co<void> {
    niu::Command cmd;
    cmd.op = niu::CmdOp::kBlockRead;
    cmd.addr = 0x4000 - 64;
    cmd.len = 256;  // crosses the page at 0x4000
    cmd.bank = niu::SramBank::kASram;
    cmd.sram_offset = 0xA000;
    try {
      co_await ctrl_->exec_immediate(std::move(cmd));
    } catch (const std::invalid_argument&) {
      *t = true;
    }
  }(&c, &threw));
  machine.kernel().run_until(machine.kernel().now() +
                             10 * sim::kMicrosecond);
  EXPECT_TRUE(threw);

  // Unaligned block op must be rejected.
  threw = false;
  sim::spawn([](niu::Ctrl* ctrl_, bool* t) -> sim::Co<void> {
    niu::Command cmd;
    cmd.op = niu::CmdOp::kBlockRead;
    cmd.addr = 0x4010;  // not line-aligned
    cmd.len = 64;
    try {
      co_await ctrl_->exec_immediate(std::move(cmd));
    } catch (const std::invalid_argument&) {
      *t = true;
    }
  }(&c, &threw));
  machine.kernel().run_until(machine.kernel().now() +
                             10 * sim::kMicrosecond);
  EXPECT_TRUE(threw);
}

TEST_F(RobustnessTest, DropPolicyUnderSustainedOverload) {
  machine.enable_tracing();
  auto& rq = ctrl(1).rxq(sys::Node::kRxUser1);
  rq.full_policy = niu::RxFullPolicy::kDrop;
  rq.slots = 4;

  const auto map = machine.addr_map();
  for (int i = 0; i < 32; ++i) {
    niu::MsgDescriptor d;
    d.vdest = map.user1(1);
    d.length = 8;
    compose(0, sys::Node::kTxUser0, d, test::pattern_bytes(8));
    // Stay within the sender queue's capacity.
    if (i % 16 == 15) {
      drive_until(
          [&] { return ctrl(0).txq(sys::Node::kTxUser0).empty(); });
    }
  }
  drive_until([&] { return ctrl(0).txq(sys::Node::kTxUser0).empty(); });
  drive_until([&] { return ctrl(1).stats().rx_dropped.value() >= 20; });
  // The queue holds exactly its capacity; the machine is still healthy.
  EXPECT_EQ(rq.occupancy(), 4);
  ctrl(1).rx_consumer_update(sys::Node::kRxUser1,
                             static_cast<std::uint16_t>(rq.consumer + 4));
  EXPECT_TRUE(rq.empty());

  // Let any straggling packets land, then cross-check: every drop counted
  // by CTRL must also appear as an "rx drop" span on n1's RxU trace lane
  // (and vice versa) — the stat and the trace are two views of one event.
  machine.kernel().run_until(machine.kernel().now() +
                             200 * sim::kMicrosecond);
  ASSERT_NE(machine.tracer(), nullptr);
  const auto& tracks = machine.tracer()->tracks();
  std::uint64_t traced_drops = 0;
  machine.tracer()->for_each([&](const trace::Event& ev) {
    if (ev.kind == trace::EventKind::kSpan && ev.name == "rx drop" &&
        tracks[ev.track].process == "n1" &&
        tracks[ev.track].name == "NIU.RxU") {
      ++traced_drops;
    }
  });
  EXPECT_EQ(traced_drops, ctrl(1).stats().rx_dropped.value());
}

/// Protection fuzz: a queue fed random descriptors either delivers valid
/// messages or gets shut down — and an innocent queue on the same node is
/// never disturbed.
class ProtectionFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(ProtectionFuzz, RandomDescriptorsNeverHurtInnocentQueue) {
  sys::Machine machine(
      test::small_machine_params(2, sys::Machine::NetKind::kIdeal));
  auto& ctrl0 = machine.node(0).niu().ctrl();
  auto& asram = machine.node(0).niu().asram();
  sim::Rng rng(GetParam());

  unsigned innocent_sent = 0;
  for (int round = 0; round < 40; ++round) {
    // Fuzz the user0 queue with a random descriptor.
    auto& q = ctrl0.txq(sys::Node::kTxUser0);
    if (!q.shutdown && !q.full()) {
      niu::MsgDescriptor d;
      d.vdest = static_cast<std::uint16_t>(rng.below(0x200));
      d.length = static_cast<std::uint8_t>(rng.below(256));
      d.flags = static_cast<std::uint8_t>(rng.below(256));
      d.aux = static_cast<std::uint32_t>(rng.next());
      std::byte hdr[8];
      d.encode(hdr);
      asram.write(q.slot_addr(q.producer), hdr);
      ctrl0.tx_producer_update(
          sys::Node::kTxUser0,
          static_cast<std::uint16_t>(q.producer + 1));
    }

    // The innocent user1 queue keeps sending real messages.
    auto& iq = ctrl0.txq(sys::Node::kTxUser1);
    if (!iq.full()) {
      niu::MsgDescriptor d;
      d.vdest = machine.addr_map().user1(1);
      d.length = 4;
      std::byte hdr[8];
      d.encode(hdr);
      asram.write(iq.slot_addr(iq.producer), hdr);
      ctrl0.tx_producer_update(
          sys::Node::kTxUser1,
          static_cast<std::uint16_t>(iq.producer + 1));
      ++innocent_sent;
    }
    machine.kernel().run_until(machine.kernel().now() +
                               20 * sim::kMicrosecond);
    // Drain the receiver so the innocent queue never backs up.
    auto& rx = machine.node(1).niu().ctrl().rxq(sys::Node::kRxUser1);
    machine.node(1).niu().ctrl().rx_consumer_update(sys::Node::kRxUser1,
                                                    rx.producer);
  }

  machine.kernel().run_until(machine.kernel().now() +
                             200 * sim::kMicrosecond);
  // The innocent queue was never shut down and delivered everything.
  EXPECT_FALSE(ctrl0.txq(sys::Node::kTxUser1).shutdown);
  EXPECT_TRUE(ctrl0.txq(sys::Node::kTxUser1).empty());
  const auto& rx1 = machine.node(1).niu().ctrl().rxq(sys::Node::kRxUser1);
  EXPECT_EQ(static_cast<unsigned>(rx1.producer), innocent_sent);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtectionFuzz,
                         ::testing::Values(3, 13, 23, 33, 43));

}  // namespace
}  // namespace sv

// Direct Router-class tests (the fat-tree tests exercise routers only
// end-to-end): routing dispatch, round-robin fairness among inputs, and
// output isolation when one port is blocked.
#include <gtest/gtest.h>

#include "net/link.hpp"
#include "net/router.hpp"
#include "tests/test_util.hpp"

namespace sv::net {
namespace {

Packet make_packet(sim::NodeId dest, std::size_t bytes,
                   std::uint8_t prio = kPriorityLow) {
  Packet p;
  p.dest = dest;
  p.priority = prio;
  p.payload.resize(bytes);
  return p;
}

struct RouterRig {
  explicit RouterRig(unsigned inputs = 4, unsigned outputs = 2) {
    Router::Params rp;
    rp.num_inputs = inputs;
    rp.num_outputs = outputs;
    // Route by destination id: dest selects the output port directly.
    router = std::make_unique<Router>(
        kernel, "r", rp, [](const Packet& p) { return p.dest; });
    for (unsigned o = 0; o < outputs; ++o) {
      links.push_back(std::make_unique<Link>(kernel, "l", Link::Params{}));
      const unsigned out = o;
      links.back()->set_sink([this, out](Packet&& p) {
        delivered[out].push_back(std::move(p));
        links[out]->return_credit(delivered[out].back().priority);
      });
      router->connect_output(o, links.back().get());
      delivered.emplace_back();
    }
    router->start();
  }

  sim::Kernel kernel;
  std::unique_ptr<Router> router;
  std::vector<std::unique_ptr<Link>> links;
  std::vector<std::vector<Packet>> delivered;
};

TEST(RouterTest, RoutesToCorrectOutput) {
  RouterRig rig;
  rig.router->receive(0, make_packet(0, 8));
  rig.router->receive(1, make_packet(1, 8));
  rig.router->receive(2, make_packet(1, 8));
  rig.kernel.run();
  EXPECT_EQ(rig.delivered[0].size(), 1u);
  EXPECT_EQ(rig.delivered[1].size(), 2u);
  EXPECT_EQ(rig.router->packets_routed().value(), 3u);
}

TEST(RouterTest, RoundRobinIsFairAcrossInputs) {
  RouterRig rig;
  // Four inputs each queue 8 packets for output 0; deliveries must
  // interleave (no input finishes before another has started).
  for (unsigned in = 0; in < 4; ++in) {
    for (int i = 0; i < 8; ++i) {
      Packet p = make_packet(0, 8);
      p.src = in;
      rig.router->receive(in, std::move(p));
    }
  }
  rig.kernel.run();
  ASSERT_EQ(rig.delivered[0].size(), 32u);
  // In the first 4 deliveries every input appears exactly once.
  std::set<sim::NodeId> first_four;
  for (int i = 0; i < 4; ++i) {
    first_four.insert(rig.delivered[0][i].src);
  }
  EXPECT_EQ(first_four.size(), 4u);
}

TEST(RouterTest, HighPriorityServedStrictlyFirst) {
  RouterRig rig;
  for (int i = 0; i < 6; ++i) {
    rig.router->receive(0, make_packet(0, 8, kPriorityLow));
  }
  rig.router->receive(1, make_packet(0, 8, kPriorityHigh));
  rig.router->receive(2, make_packet(0, 8, kPriorityHigh));
  rig.kernel.run();
  ASSERT_EQ(rig.delivered[0].size(), 8u);
  // Both high-priority packets leave before all low ones are done. (The
  // first low packet may already occupy the wire.)
  int high_seen = 0;
  for (int i = 0; i < 4; ++i) {
    if (rig.delivered[0][i].priority == kPriorityHigh) {
      ++high_seen;
    }
  }
  EXPECT_EQ(high_seen, 2);
}

TEST(RouterTest, BlockedOutputDoesNotStallOtherOutputs) {
  RouterRig rig;
  // Exhaust output 0's credits by never returning them.
  rig.links[0]->set_sink([&](Packet&& p) {
    rig.delivered[0].push_back(std::move(p));  // no credit return
  });
  for (int i = 0; i < 6; ++i) {
    rig.router->receive(0, make_packet(0, 8));
  }
  for (int i = 0; i < 6; ++i) {
    rig.router->receive(1, make_packet(1, 8));
  }
  rig.kernel.run();
  // Output 0 wedges after its credits run out; output 1 drains fully.
  EXPECT_LT(rig.delivered[0].size(), 6u);
  EXPECT_EQ(rig.delivered[1].size(), 6u);
}

TEST(RouterTest, PerPriorityQueuesPreventHolBlocking) {
  RouterRig rig;
  // Low-priority packets to the blocked output 0 sit at the head of input
  // 0's low queue; a high-priority packet to output 1 from the same input
  // must still get through (separate virtual queue).
  rig.links[0]->set_sink([&](Packet&& p) {
    rig.delivered[0].push_back(std::move(p));  // block output 0
  });
  for (int i = 0; i < 4; ++i) {
    rig.router->receive(0, make_packet(0, 8, kPriorityLow));
  }
  rig.router->receive(0, make_packet(1, 8, kPriorityHigh));
  rig.kernel.run();
  EXPECT_EQ(rig.delivered[1].size(), 1u);
  EXPECT_EQ(rig.delivered[1][0].priority, kPriorityHigh);
}

TEST(RouterTest, StartTwiceThrows) {
  RouterRig rig;
  EXPECT_THROW(rig.router->start(), std::logic_error);
}

}  // namespace
}  // namespace sv::net

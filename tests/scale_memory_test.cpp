// Memory and construction-cost budgets for large machines (the 1024-node
// tentpole). Uses the same global-allocator hook as alloc_hook_test, but
// counting requested bytes rather than call counts: cumulative allocation
// during Machine construction divided by node count must stay within a
// per-node budget, which is what keeps 1024 nodes inside a laptop's RAM.
// Also pins the laziness invariants directly: an idle node materializes no
// cache sets and no clsSRAM chunks.
//
// The 128-node cases run in every lane; the 1024-node case is gated on
// SV_SCALE_SLOW=1 (the CI scale-smoke job sets it). Time budgets are per
// node and generous enough for sanitizer lanes.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <new>

#include "sys/machine.hpp"

namespace {

std::atomic<std::uint64_t> g_bytes{0};

}  // namespace

// Counting global allocator: cumulative requested bytes. Frees are not
// tracked — construction cost is what the budgets bound, and a transient
// buffer counts against it like a retained one (both are peak pressure).
void* operator new(std::size_t n) {
  g_bytes.fetch_add(n, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_bytes.fetch_add(n, std::memory_order_relaxed);
  return std::malloc(n);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace sv {
namespace {

bool scale_slow() {
  const char* v = std::getenv("SV_SCALE_SLOW");
  return v != nullptr && v[0] == '1';
}

sys::Machine::Params scale_params(std::size_t nodes,
                                  sys::Machine::NetKind net) {
  sys::Machine::Params p;
  p.nodes = nodes;
  p.net = net;
  p.node.dram_size = 8ull * 1024 * 1024;
  p.node.scoma_size = 1ull * 1024 * 1024;
  p.node.numa_backing_size = 8ull * 1024 * 1024;
  return p;
}

struct BuildCost {
  std::uint64_t bytes_per_node;
  double ms_per_node;
};

BuildCost measure_build(std::unique_ptr<sys::Machine>& out,
                        std::size_t nodes, sys::Machine::NetKind net) {
  const std::uint64_t before = g_bytes.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  out = std::make_unique<sys::Machine>(scale_params(nodes, net));
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t after = g_bytes.load(std::memory_order_relaxed);
  return BuildCost{
      (after - before) / nodes,
      std::chrono::duration<double, std::milli>(t1 - t0).count() /
          static_cast<double>(nodes),
  };
}

// Budgets. The lazy-state work (cache sets, clsSRAM chunks, sparse
// backing pages) put measured cost around 200KB and well under 0.5ms per
// node; the budgets leave ~4x headroom so they catch a regression to
// eager allocation (a 512KB cache alone would blow the byte budget)
// without flaking on slow hosts or sanitizer lanes.
constexpr std::uint64_t kBytesPerNodeBudget = 768ull * 1024;
constexpr double kMsPerNodeBudget = 10.0;

TEST(ScaleMemory, IdleNodesStayLazy) {
  sys::Machine machine(scale_params(128, sys::Machine::NetKind::kIdeal));
  for (sim::NodeId i = 0; i < machine.size(); ++i) {
    sys::Node& node = machine.node(i);
    EXPECT_EQ(node.cache().sets_materialized(), 0u) << "node " << i;
    EXPECT_EQ(node.niu().ctrl().cls().chunks_materialized(), 0u)
        << "node " << i;
  }
}

TEST(ScaleMemory, ConstructionBudgets128) {
  std::unique_ptr<sys::Machine> machine;
  const BuildCost c =
      measure_build(machine, 128, sys::Machine::NetKind::kFatTree);
  RecordProperty("bytes_per_node", static_cast<int>(c.bytes_per_node));
  EXPECT_LE(c.bytes_per_node, kBytesPerNodeBudget);
  EXPECT_LE(c.ms_per_node, kMsPerNodeBudget);
}

TEST(ScaleMemory, ConstructionBudgets1024) {
  if (!scale_slow()) {
    GTEST_SKIP() << "set SV_SCALE_SLOW=1 to run the 1024-node budgets";
  }
  std::unique_ptr<sys::Machine> machine;
  const BuildCost c =
      measure_build(machine, 1024, sys::Machine::NetKind::kFatTree);
  RecordProperty("bytes_per_node", static_cast<int>(c.bytes_per_node));
  EXPECT_LE(c.bytes_per_node, kBytesPerNodeBudget);
  EXPECT_LE(c.ms_per_node, kMsPerNodeBudget);
  // Per-node cost must not grow with machine size (the O(nodes^2) trap):
  // compare against a small machine built the same way.
  std::unique_ptr<sys::Machine> small;
  const BuildCost s =
      measure_build(small, 64, sys::Machine::NetKind::kFatTree);
  EXPECT_LE(c.bytes_per_node, s.bytes_per_node * 3)
      << "per-node allocation grows superlinearly with machine size";
}

}  // namespace
}  // namespace sv

// Functional-model fast paths (DESIGN.md §12): prove the DMI-style bus
// bypass and quantum-batched processors actually engage on the paper's
// figure-3/4 workloads AND that engaging them changes nothing observable —
// stats JSON byte-identical to a slow-path (SV_NO_FASTPATH-equivalent) run
// of the same workload in the same process.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "sys/stats_dump.hpp"
#include "tests/test_util.hpp"
#include "xfer/approaches.hpp"

namespace sv {
namespace {

struct XferOut {
  std::string stats;
  std::uint64_t fast_hits = 0;      // summed bus fast-path completions
  std::uint64_t quantum_ticks = 0;  // summed processor batched ticks
  std::uint64_t executed = 0;       // host events actually dispatched
  std::uint64_t scheduled = 0;      // sequence numbers issued (mode-invariant)
};

/// Run one block-transfer approach on a 2-node fat tree with the fast
/// paths pinned on or off, returning the machine stats plus the
/// mode-variant engagement counters (which are deliberately NOT part of
/// the stats dump — they differ between modes by design).
XferOut run_xfer(int approach, std::uint32_t bytes, bool fastpath) {
  auto mp = test::small_machine_params(2);
  mp.node.bus.fastpath = fastpath;
  mp.node.ap.fastpath = fastpath;
  mp.node.sp.fastpath = fastpath;
  sys::Machine machine(mp);
  xfer::BlockTransferHarness harness(machine);
  xfer::TransferSpec spec;
  spec.len = bytes;
  if (approach >= 4) {
    spec.dst = niu::kScomaBase + 0x8000;
  }
  xfer::RunOptions opt;
  opt.consume = approach >= 4;
  const auto res = harness.run(approach, spec, opt);
  EXPECT_TRUE(res.ok) << "approach " << approach << " failed verification";

  XferOut out;
  for (sim::NodeId i = 0; i < machine.size(); ++i) {
    out.fast_hits += machine.node(i).bus().fast_path_hits();
    out.quantum_ticks += machine.node(i).ap().quantum_ticks();
    out.quantum_ticks += machine.node(i).sp().quantum_ticks();
  }
  out.executed = machine.events_executed();
  out.scheduled = machine.events_scheduled();
  std::ostringstream os;
  sys::dump_stats_json(machine, os);
  out.stats = os.str();
  return out;
}

/// The core contract, per workload: fast mode must (a) actually take fast
/// paths and (b) dump byte-identical stats to slow mode.
void expect_engaged_and_identical(int approach, std::uint32_t bytes) {
  const XferOut fast = run_xfer(approach, bytes, /*fastpath=*/true);
  const XferOut slow = run_xfer(approach, bytes, /*fastpath=*/false);
  SCOPED_TRACE("approach " + std::to_string(approach) + " bytes " +
               std::to_string(bytes));
  EXPECT_EQ(slow.fast_hits, 0u);
  EXPECT_EQ(slow.quantum_ticks, 0u);
  EXPECT_GT(fast.fast_hits + fast.quantum_ticks, 0u)
      << "fast mode never took a fast path (hits=" << fast.fast_hits
      << " quantum=" << fast.quantum_ticks << ")";
  EXPECT_EQ(fast.stats, slow.stats) << "fast path changed observable stats";
  // Engagement report — useful when tuning eligibility.
  std::printf(
      "[fastpath] a%d %uB: fast_hits=%llu quantum_ticks=%llu "
      "events %llu -> %llu (of %llu keys)\n",
      approach, bytes, static_cast<unsigned long long>(fast.fast_hits),
      static_cast<unsigned long long>(fast.quantum_ticks),
      static_cast<unsigned long long>(slow.executed),
      static_cast<unsigned long long>(fast.executed),
      static_cast<unsigned long long>(fast.scheduled));
}

TEST(FastPath, Fig3Approach1ByteIdentical) {
  expect_engaged_and_identical(1, 4096);
}

TEST(FastPath, Fig3Approach3ByteIdentical) {
  expect_engaged_and_identical(3, 4096);
}

TEST(FastPath, Fig4Approach3ByteIdentical) {
  expect_engaged_and_identical(3, 65536);
}

/// Messaging and shared-memory workloads through the canonical harness:
/// identical RunSpec, fastpath pinned each way, byte-identical results.
void expect_runspec_identical(test::RunSpec spec) {
  spec.fastpath = true;
  const auto fast = test::run_machine_and_dump_stats(spec);
  spec.fastpath = false;
  const auto slow = test::run_machine_and_dump_stats(spec);
  ASSERT_TRUE(fast.completed);
  ASSERT_TRUE(slow.completed);
  EXPECT_EQ(fast.end_time, slow.end_time);
  EXPECT_EQ(fast.stats_json, slow.stats_json);
}

TEST(FastPath, MsgWorkloadByteIdentical) {
  test::RunSpec spec;
  spec.workload = test::Workload::kMsg;
  spec.nodes = 4;
  spec.count = 16;
  spec.bytes = 32;
  expect_runspec_identical(spec);
}

TEST(FastPath, ShmWorkloadByteIdentical) {
  test::RunSpec spec;
  spec.workload = test::Workload::kShm;
  spec.nodes = 4;
  spec.ops = 40;
  expect_runspec_identical(spec);
}

/// Fast paths compose with the partitioned kernel: a threaded fast run
/// matches a sequential slow run byte for byte (the strongest cross-mode
/// statement the suite makes).
TEST(FastPath, PartitionedFastMatchesSequentialSlow) {
  test::RunSpec spec;
  spec.workload = test::Workload::kMsg;
  spec.nodes = 4;
  spec.count = 12;
  spec.bytes = 64;

  spec.fastpath = true;
  spec.threads = 2;
  const auto fast_par = test::run_machine_and_dump_stats(spec);
  spec.fastpath = false;
  spec.threads = 0;
  const auto slow_seq = test::run_machine_and_dump_stats(spec);
  ASSERT_TRUE(fast_par.completed);
  ASSERT_TRUE(slow_seq.completed);
  EXPECT_EQ(fast_par.end_time, slow_seq.end_time);
  EXPECT_EQ(fast_par.stats_json, slow_seq.stats_json);
}

}  // namespace
}  // namespace sv

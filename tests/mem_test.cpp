// Unit tests for the memory substrate: backing store, the split-transaction
// snooping bus, DRAM, SRAM banks and clsSRAM.
#include <gtest/gtest.h>

#include "mem/backing_store.hpp"
#include "mem/bus.hpp"
#include "mem/cls_sram.hpp"
#include "mem/dram.hpp"
#include "mem/sram.hpp"
#include "sim/coro.hpp"
#include "tests/test_util.hpp"

namespace sv::mem {
namespace {

TEST(BackingStore, ZeroFillAndRoundTrip) {
  BackingStore s;
  EXPECT_EQ(s.read_scalar<std::uint64_t>(0x1234), 0u);
  s.write_scalar<std::uint32_t>(0x1000, 0xDEADBEEF);
  EXPECT_EQ(s.read_scalar<std::uint32_t>(0x1000), 0xDEADBEEFu);
  EXPECT_EQ(s.allocated_pages(), 1u);
}

TEST(BackingStore, CrossPageAccess) {
  BackingStore s;
  auto data = test::pattern_bytes(100);
  const Addr addr = BackingStore::kPageBytes - 50;
  s.write(addr, data);
  std::vector<std::byte> got(100);
  s.read(addr, got);
  EXPECT_EQ(got, data);
  EXPECT_EQ(s.allocated_pages(), 2u);
}

TEST(BackingStore, FillRange) {
  BackingStore s;
  s.fill(10, 20, std::byte{0xAB});
  EXPECT_EQ(s.read_scalar<std::uint8_t>(10), 0xAB);
  EXPECT_EQ(s.read_scalar<std::uint8_t>(29), 0xAB);
  EXPECT_EQ(s.read_scalar<std::uint8_t>(30), 0x00);
}

/// A scriptable bus device for protocol tests.
class FakeDevice : public BusDevice {
 public:
  explicit FakeDevice(std::string name) : name_(std::move(name)) {}

  std::string_view device_name() const override { return name_; }
  SnoopResult bus_snoop(const BusRequest& req) override {
    last_snooped = req;
    ++snoops;
    return next_snoop;
  }
  void bus_read_data(const BusRequest&, std::span<std::byte> out) override {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = static_cast<std::byte>(0xC0 + i);
    }
    ++reads;
  }
  void bus_write_data(const BusRequest&,
                      std::span<const std::byte> in) override {
    captured.assign(in.begin(), in.end());
    ++writes;
  }
  void bus_observe(const BusRequest& req, const BusResult&) override {
    observed.push_back(req.op);
  }

  std::string name_;
  SnoopResult next_snoop;
  BusRequest last_snooped{};
  std::vector<std::byte> captured;
  std::vector<BusOp> observed;
  int snoops = 0, reads = 0, writes = 0;
};

class BusTest : public ::testing::Test {
 protected:
  sim::Kernel kernel;
  MemBus bus{kernel, "bus", {}};
  FakeDevice mem{"mem"};
  FakeDevice other{"other"};
  FakeDevice master{"master"};
  int mem_id = bus.attach(&mem);
  int other_id = bus.attach(&other);
  int master_id = bus.attach(&master);
};

TEST_F(BusTest, ReadCompletesWithResponderData) {
  mem.next_snoop = {SnoopAction::kAccept, 2};
  std::byte buf[8] = {};
  BusRequest req;
  req.op = BusOp::kReadSingle;
  req.addr = 0x100;
  req.size = 8;
  req.rdata = buf;
  BusResult res{};
  test::run_co(kernel, [](MemBus* b, int id, BusRequest r,
                          BusResult* out) -> sim::Co<void> {
    *out = co_await b->transact(id, r);
  }(&bus, master_id, req, &res));
  EXPECT_FALSE(res.retried);
  EXPECT_EQ(res.responder, mem_id);
  EXPECT_EQ(buf[0], std::byte{0xC0});
  EXPECT_EQ(mem.reads, 1);
  // Non-requesters observed the completed transaction.
  EXPECT_EQ(other.observed.size(), 1u);
  EXPECT_EQ(bus.stats().transactions.value(), 1u);
}

TEST_F(BusTest, RetryAbortsBeforeDataPhase) {
  mem.next_snoop = {SnoopAction::kAccept, 2};
  other.next_snoop = {SnoopAction::kRetry, 0};
  std::byte buf[8] = {};
  BusRequest req;
  req.op = BusOp::kReadSingle;
  req.addr = 0x100;
  req.size = 8;
  req.rdata = buf;
  BusResult res{};
  test::run_co(kernel, [](MemBus* b, int id, BusRequest r,
                          BusResult* out) -> sim::Co<void> {
    *out = co_await b->transact(id, r);
  }(&bus, master_id, req, &res));
  EXPECT_TRUE(res.retried);
  EXPECT_EQ(mem.reads, 0);
  EXPECT_EQ(bus.stats().retries.value(), 1u);
}

TEST_F(BusTest, TransactRetryEventuallySucceeds) {
  mem.next_snoop = {SnoopAction::kAccept, 2};
  other.next_snoop = {SnoopAction::kRetry, 0};
  // Stop retrying after the third snoop.
  std::byte buf[8] = {};
  BusRequest req;
  req.op = BusOp::kReadSingle;
  req.addr = 0x100;
  req.size = 8;
  req.rdata = buf;
  BusResult res{};
  kernel.schedule(1, [this] {});  // keep the queue warm
  sim::spawn([](MemBus* b, int id, BusRequest r, BusResult* out,
                FakeDevice* o) -> sim::Co<void> {
    // After two retried attempts the retrying device relents.
    (void)o;
    *out = co_await b->transact_retry(id, r);
  }(&bus, master_id, req, &res, &other));
  // Let two retries happen, then clear.
  kernel.run_until(kernel.now() + 200000);
  other.next_snoop = {};
  kernel.run();
  EXPECT_FALSE(res.retried);
  EXPECT_GE(bus.stats().retries.value(), 1u);
  EXPECT_EQ(mem.reads, 1);
}

// --- Retry-backoff vs fast-path arbitration (DESIGN.md §12) ----------------
//
// Regression for the retry-backoff edge: a retried op that re-arbitrates in
// the same cycle a fast path is granted must lose arbitration
// deterministically. Master A's read of the retried address backs off and
// re-enters transact at the exact tick — but after, in dispatch order —
// master B's bypass-eligible read engages the fast path. A's re-entry
// revokes B inside the arbitration window (wake at (t1, s0), address bus
// kept held), so A queues behind B exactly as it would behind B's slow-path
// address tenure, and the whole collision resolves bit-identically in both
// modes.

/// Accepts every address; stable and pure, so it never blocks a bypass.
class AcceptAllDevice : public BusDevice {
 public:
  std::string_view device_name() const override { return "acceptall"; }
  SnoopResult bus_snoop(const BusRequest&) override {
    return {SnoopAction::kAccept, 2};
  }
  void bus_read_data(const BusRequest&, std::span<std::byte> out) override {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = static_cast<std::byte>(0xA0 + i);
    }
  }
  bool bus_snoop_stable(const BusRequest&) const override { return true; }
  bool bus_observe_trivial(const BusRequest&) const override { return true; }
  bool bus_data_pure(const BusRequest&) const override { return true; }
};

/// ARTRYs the first `retries_left` transactions on `retry_addr`; ignores
/// everything else. Unstable for the armed address (the snoop has a side
/// effect), stable everywhere else — so it pins A to the slow path without
/// blocking B's bypass.
class RetryOnceDevice : public BusDevice {
 public:
  Addr retry_addr = 0;
  int retries_left = 0;

  std::string_view device_name() const override { return "retrier"; }
  SnoopResult bus_snoop(const BusRequest& req) override {
    if (retries_left > 0 && req.addr == retry_addr) {
      --retries_left;
      return {SnoopAction::kRetry, 0};
    }
    return {};
  }
  bool bus_snoop_stable(const BusRequest& req) const override {
    return !(retries_left > 0 && req.addr == retry_addr);
  }
  bool bus_observe_trivial(const BusRequest&) const override { return true; }
  bool bus_data_pure(const BusRequest&) const override { return true; }
};

/// A master that only issues; its snoops are trivially stable.
class QuietMaster : public BusDevice {
 public:
  explicit QuietMaster(std::string name) : name_(std::move(name)) {}
  std::string_view device_name() const override { return name_; }
  SnoopResult bus_snoop(const BusRequest&) override { return {}; }
  bool bus_snoop_stable(const BusRequest&) const override { return true; }
  bool bus_observe_trivial(const BusRequest&) const override { return true; }
  bool bus_data_pure(const BusRequest&) const override { return true; }

 private:
  std::string name_;
};

struct CollisionOutcome {
  sim::Tick a_done = 0;
  sim::Tick b_done = 0;
  std::string order;  // completion order, e.g. "BA"
  std::uint64_t retries = 0;
  std::uint64_t transactions = 0;
  std::uint64_t fast_hits = 0;
};

/// One run of the collision scenario. `with_a` = false runs B alone (the
/// control that proves B's read is bypass-eligible at the collision tick).
CollisionOutcome run_retry_fastpath_collision(bool fastpath, bool with_a) {
  constexpr Addr kRetried = 0x100;
  constexpr Addr kBypassed = 0x200;
  // A's timeline with the default 15000 ps clock and 4-cycle backoff:
  // entry at 0, align at 0, ARTRY at the 2-cycle tenure end (30000),
  // re-arbitration at 30000 + 4 * 15000 = 90000.
  constexpr sim::Tick kCollisionTick = 90000;

  sim::Kernel kernel;
  MemBus::Params p;
  p.fastpath = fastpath;
  MemBus bus{kernel, "bus", p};
  AcceptAllDevice responder;
  RetryOnceDevice retrier;
  retrier.retry_addr = kRetried;
  retrier.retries_left = 1;
  QuietMaster ma{"ma"};
  QuietMaster mb{"mb"};
  bus.attach(&responder);
  bus.attach(&retrier);
  const int a_id = bus.attach(&ma);
  const int b_id = bus.attach(&mb);

  CollisionOutcome out;
  std::byte abuf[8] = {};
  std::byte bbuf[8] = {};
  if (with_a) {
    BusRequest req;
    req.op = BusOp::kReadSingle;
    req.addr = kRetried;
    req.size = 8;
    req.rdata = abuf;
    sim::spawn([](MemBus* b, int id, BusRequest r, sim::Kernel* k,
                  CollisionOutcome* o) -> sim::Co<void> {
      co_await b->transact_retry(id, r);
      o->a_done = k->now();
      o->order += 'A';
    }(&bus, a_id, req, &kernel, &out));
  }
  // Scheduled before A's backoff delay exists, so at the collision tick
  // B's issue dispatches first: its fast path is granted, then A
  // re-arbitrates in the same cycle.
  kernel.schedule_abs(kCollisionTick, [&bus, &kernel, &out, bbuf = &bbuf[0],
                                       b_id] {
    BusRequest req;
    req.op = BusOp::kReadSingle;
    req.addr = kBypassed;
    req.size = 8;
    req.rdata = bbuf;
    sim::spawn([](MemBus* b, int id, BusRequest r, sim::Kernel* k,
                  CollisionOutcome* o) -> sim::Co<void> {
      co_await b->transact(id, r);
      o->b_done = k->now();
      o->order += 'B';
    }(&bus, b_id, req, &kernel, &out));
  });
  kernel.run();
  out.retries = bus.stats().retries.value();
  out.transactions = bus.stats().transactions.value();
  out.fast_hits = bus.fast_path_hits();
  return out;
}

TEST(BusRetryFastPath, ControlProvesBypassEligibility) {
  // B alone, fast mode: the read completes through the bypass, proving the
  // collision test below really engages (and then revokes) a fast path.
  const auto solo = run_retry_fastpath_collision(true, false);
  EXPECT_EQ(solo.order, "B");
  EXPECT_EQ(solo.fast_hits, 1u);
}

TEST(BusRetryFastPath, RetryLosesSameCycleArbitrationDeterministically) {
  const auto fast = run_retry_fastpath_collision(true, true);
  const auto slow = run_retry_fastpath_collision(false, true);

  // The retried master loses the same-cycle arbitration in both modes: B
  // completes first, A re-acquires only after B's tenures finish.
  EXPECT_EQ(fast.order, "BA");
  EXPECT_EQ(slow.order, "BA");
  EXPECT_GT(fast.a_done, fast.b_done);

  // And the whole collision resolves bit-identically: same completion
  // ticks, same stat counts. B's granted-then-revoked bypass finishes on
  // the slow schedule, so it does not count as a fast-path hit.
  EXPECT_EQ(fast.a_done, slow.a_done);
  EXPECT_EQ(fast.b_done, slow.b_done);
  EXPECT_EQ(fast.retries, slow.retries);
  EXPECT_EQ(fast.retries, 1u);
  EXPECT_EQ(fast.transactions, slow.transactions);
  EXPECT_EQ(fast.fast_hits, 0u);
}

TEST_F(BusTest, InterventionSuppliesAndReflects) {
  mem.next_snoop = {SnoopAction::kAccept, 6};
  other.next_snoop = {SnoopAction::kModified, 3};
  std::byte buf[kLineBytes] = {};
  BusRequest req;
  req.op = BusOp::kRead;
  req.addr = 0x200;
  req.size = kLineBytes;
  req.rdata = buf;
  BusResult res{};
  test::run_co(kernel, [](MemBus* b, int id, BusRequest r,
                          BusResult* out) -> sim::Co<void> {
    *out = co_await b->transact(id, r);
  }(&bus, master_id, req, &res));
  EXPECT_TRUE(res.intervened);
  EXPECT_TRUE(res.shared);
  EXPECT_EQ(res.responder, other_id);
  // Intervention data was reflected into the accepting device (memory).
  EXPECT_EQ(mem.writes, 1);
  EXPECT_EQ(mem.captured.size(), kLineBytes);
  EXPECT_EQ(mem.captured[0], std::byte{0xC0});
}

TEST_F(BusTest, AddressOnlyKillHasNoDataPhase) {
  BusRequest req;
  req.op = BusOp::kKill;
  req.addr = 0x300;
  req.size = 0;
  BusResult res{};
  test::run_co(kernel, [](MemBus* b, int id, BusRequest r,
                          BusResult* out) -> sim::Co<void> {
    *out = co_await b->transact(id, r);
  }(&bus, master_id, req, &res));
  EXPECT_FALSE(res.retried);
  EXPECT_EQ(mem.reads, 0);
  EXPECT_EQ(mem.writes, 0);
  EXPECT_EQ(bus.stats().address_only.value(), 1u);
  // Kill was observed by snoopers.
  ASSERT_EQ(other.observed.size(), 1u);
  EXPECT_EQ(other.observed[0], BusOp::kKill);
}

TEST_F(BusTest, NoResponderIsReported) {
  std::byte buf[8] = {};
  BusRequest req;
  req.op = BusOp::kReadSingle;
  req.addr = 0x400;
  req.size = 8;
  req.rdata = buf;
  BusResult res{};
  test::run_co(kernel, [](MemBus* b, int id, BusRequest r,
                          BusResult* out) -> sim::Co<void> {
    *out = co_await b->transact(id, r);
  }(&bus, master_id, req, &res));
  EXPECT_TRUE(res.no_responder);
}

TEST_F(BusTest, WriteDataReachesResponder) {
  mem.next_snoop = {SnoopAction::kAccept, 1};
  auto data = test::pattern_bytes(kLineBytes);
  BusRequest req;
  req.op = BusOp::kWriteLine;
  req.addr = 0x500;
  req.size = kLineBytes;
  req.wdata = data.data();
  test::run_co(kernel, [](MemBus* b, int id, BusRequest r) -> sim::Co<void> {
    co_await b->transact(id, r);
  }(&bus, master_id, req));
  EXPECT_EQ(mem.captured, data);
}

TEST_F(BusTest, DataTenuresSerializeOnDataBus) {
  mem.next_snoop = {SnoopAction::kAccept, 0};
  // Two line reads back to back: each needs 4 beats; with 2 address cycles
  // each, total completion must reflect serialized data tenures.
  std::byte b1[kLineBytes], b2[kLineBytes];
  int done = 0;
  for (std::byte* buf : {b1, b2}) {
    BusRequest req;
    req.op = BusOp::kRead;
    req.addr = 0x600;
    req.size = kLineBytes;
    req.rdata = buf;
    sim::spawn([](MemBus* b, int id, BusRequest r, int* d) -> sim::Co<void> {
      co_await b->transact(id, r);
      ++*d;
    }(&bus, master_id, req, &done));
  }
  kernel.run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(bus.stats().data_beats.value(), 8u);
  // 2 address cycles + 4 beats = 6 cycles minimum for the first; the second
  // pipelines its address tenure but serializes data: >= 10 cycles total.
  EXPECT_GE(kernel.now(), 10 * bus.clock().period());
}

TEST(DramTest, ClaimsOnlyItsRanges) {
  sim::Kernel kernel;
  DramCtrl::Params p;
  p.ranges.push_back({0x0, 0x1000});
  p.ranges.push_back({0x8000, 0x1000});
  DramCtrl dram(kernel, "dram", p);
  EXPECT_TRUE(dram.claims(0x0));
  EXPECT_TRUE(dram.claims(0xFFF));
  EXPECT_FALSE(dram.claims(0x1000));
  EXPECT_TRUE(dram.claims(0x8000));
  EXPECT_FALSE(dram.claims(0x9000));

  BusRequest req;
  req.op = BusOp::kRead;
  req.addr = 0x100;
  EXPECT_EQ(dram.bus_snoop(req).action, SnoopAction::kAccept);
  req.addr = 0x2000;
  EXPECT_EQ(dram.bus_snoop(req).action, SnoopAction::kIgnore);
}

TEST(DramTest, EndToEndReadWriteOverBus) {
  sim::Kernel kernel;
  MemBus bus(kernel, "bus", {});
  DramCtrl::Params p;
  p.ranges.push_back({0x0, 0x10000});
  DramCtrl dram(kernel, "dram", p);
  bus.attach(&dram);
  FakeDevice master{"m"};
  const int mid = bus.attach(&master);

  auto data = test::pattern_bytes(kLineBytes);
  BusRequest wr;
  wr.op = BusOp::kWriteLine;
  wr.addr = 0x40;
  wr.size = kLineBytes;
  wr.wdata = data.data();
  std::byte buf[kLineBytes] = {};
  BusRequest rd;
  rd.op = BusOp::kRead;
  rd.addr = 0x40;
  rd.size = kLineBytes;
  rd.rdata = buf;
  test::run_co(kernel, [](MemBus* b, int id, BusRequest w,
                          BusRequest r) -> sim::Co<void> {
    co_await b->transact(id, w);
    co_await b->transact(id, r);
  }(&bus, mid, wr, rd));
  EXPECT_EQ(std::vector<std::byte>(buf, buf + kLineBytes), data);
  EXPECT_EQ(dram.reads().value(), 1u);
  EXPECT_EQ(dram.writes().value(), 1u);
}

TEST(SramTest, PortsAreIndependentResources) {
  sim::Kernel kernel;
  DualPortedSram sram(kernel, "sram", {});
  sim::Tick bus_done = 0, ibus_done = 0;
  sim::spawn([](DualPortedSram* s, sim::Kernel* k,
                sim::Tick* out) -> sim::Co<void> {
    co_await s->access(DualPortedSram::Port::kBus, 64);
    *out = k->now();
  }(&sram, &kernel, &bus_done));
  sim::spawn([](DualPortedSram* s, sim::Kernel* k,
                sim::Tick* out) -> sim::Co<void> {
    co_await s->access(DualPortedSram::Port::kIBus, 64);
    *out = k->now();
  }(&sram, &kernel, &ibus_done));
  kernel.run();
  // Both finish at the same time: dual porting means no cross-port wait.
  EXPECT_EQ(bus_done, ibus_done);
  EXPECT_GT(bus_done, 0u);
}

TEST(SramTest, SamePortSerializes) {
  sim::Kernel kernel;
  DualPortedSram sram(kernel, "sram", {});
  sim::Tick first = 0, second = 0;
  for (sim::Tick* out : {&first, &second}) {
    sim::spawn([](DualPortedSram* s, sim::Kernel* k,
                  sim::Tick* o) -> sim::Co<void> {
      co_await s->access(DualPortedSram::Port::kBus, 64);
      *o = k->now();
    }(&sram, &kernel, out));
  }
  kernel.run();
  EXPECT_EQ(second, 2 * first);
}

TEST(SramTest, BoundsChecked) {
  sim::Kernel kernel;
  DualPortedSram::Params p;
  p.size = 1024;
  DualPortedSram sram(kernel, "sram", p);
  std::byte buf[8];
  EXPECT_THROW(sram.read(1020, buf), std::out_of_range);
  EXPECT_THROW(sram.write(1024, buf), std::out_of_range);
  EXPECT_NO_THROW(sram.write(1016, buf));
}

TEST(ClsSramTest, StateRoundTripAndRange) {
  sim::Kernel kernel;
  ClsSram::Params p;
  p.region_base = 0x8000'0000;
  p.region_size = 64 * 1024;
  ClsSram cls(kernel, "cls", p);

  EXPECT_TRUE(cls.covers(0x8000'0000));
  EXPECT_FALSE(cls.covers(0x8001'0000));
  EXPECT_EQ(cls.peek(0x8000'0000), 0);

  cls.poke(0x8000'0040, 3);
  EXPECT_EQ(cls.peek(0x8000'0040), 3);
  EXPECT_EQ(cls.peek(0x8000'005F), 3);  // same line
  EXPECT_EQ(cls.peek(0x8000'0060), 0);  // next line

  test::run_co(kernel, cls.write_state_range(0x8000'0100, 128, 2));
  for (Addr a = 0x8000'0100; a < 0x8000'0180; a += kLineBytes) {
    EXPECT_EQ(cls.peek(a), 2);
  }
  EXPECT_EQ(cls.peek(0x8000'0180), 0);
  EXPECT_THROW((void)cls.peek(0x9000'0000), std::out_of_range);
}

}  // namespace
}  // namespace sv::mem

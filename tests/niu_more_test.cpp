// Additional NIU behaviour tests: queue-pointer wrap-around, translation
// mask semantics, per-queue translation disable, TagOn-from-sSRAM,
// interrupt enable masking, system-register commands, and remote
// cls-state commands over the network.
#include <gtest/gtest.h>

#include <cstring>

#include "tests/test_util.hpp"

namespace sv {
namespace {

class NiuMoreTest : public ::testing::Test {
 protected:
  NiuMoreTest()
      : machine(test::small_machine_params(2, sys::Machine::NetKind::kIdeal)) {
  }

  niu::Ctrl& ctrl(sim::NodeId n) { return machine.node(n).niu().ctrl(); }

  void compose(sim::NodeId n, unsigned txq, const niu::MsgDescriptor& desc,
               std::span<const std::byte> data) {
    auto& c = ctrl(n);
    auto& q = c.txq(txq);
    auto& sram = machine.node(n).niu().asram();
    const std::uint32_t slot = q.slot_addr(q.producer);
    std::byte hdr[8];
    desc.encode(hdr);
    sram.write(slot, hdr);
    if (!data.empty()) {
      sram.write(slot + niu::kBasicHeaderBytes, data);
    }
    c.tx_producer_update(txq, static_cast<std::uint16_t>(q.producer + 1));
  }

  void drive_until(const std::function<bool()>& pred) {
    test::drive(machine.kernel(), pred);
  }

  sys::Machine machine;
};

TEST_F(NiuMoreTest, QueuePointersWrapPast64K) {
  // Pre-age the queue counters near the 16-bit boundary and run messages
  // across the wrap (free-running counter semantics).
  auto& tq = ctrl(0).txq(sys::Node::kTxUser0);
  auto& rq = ctrl(1).rxq(sys::Node::kRxUser0);
  tq.producer = tq.consumer = 0xFFFE;
  rq.producer = rq.consumer = 0xFFFD;

  const auto map = machine.addr_map();
  for (int i = 0; i < 6; ++i) {
    niu::MsgDescriptor d;
    d.vdest = map.user0(1);
    d.length = 4;
    std::uint32_t v = 0x1000 + i;
    std::byte b[4];
    std::memcpy(b, &v, 4);
    compose(0, sys::Node::kTxUser0, d, b);
  }
  drive_until([&] { return rq.occupancy() == 6; });
  // Consume across the receiver's wrap as well.
  for (int i = 0; i < 6; ++i) {
    auto& sram = machine.node(1).niu().asram();
    const std::uint32_t slot = rq.slot_addr(rq.consumer);
    std::byte buf[12];
    sram.read(slot, buf);
    std::uint32_t v = 0;
    std::memcpy(&v, buf + 8, 4);
    EXPECT_EQ(v, 0x1000u + i);
    ctrl(1).rx_consumer_update(
        sys::Node::kRxUser0, static_cast<std::uint16_t>(rq.consumer + 1));
  }
  EXPECT_TRUE(rq.empty());
  EXPECT_LT(rq.consumer, 0x10u);  // wrapped
}

TEST_F(NiuMoreTest, TranslationMasksSelectTableSection) {
  // Configure a queue whose AND/OR masks force every message into the
  // express section of the table regardless of the vdest's high bits —
  // the paper's "make routing and destination queue selection easier".
  auto& tq = ctrl(0).txq(sys::Node::kTxUser0);
  const auto map = machine.addr_map();
  tq.and_mask = 0x0001;  // keep only the node bit
  tq.or_mask = map.express_section();

  niu::MsgDescriptor d;
  d.vdest = 0xABC1;  // garbage high bits; AND keeps 1, OR adds the section
  d.length = 8;
  compose(0, sys::Node::kTxUser0, d, test::pattern_bytes(8));
  drive_until(
      [&] { return !ctrl(1).rxq(sys::Node::kRxExpress).empty(); });
}

TEST_F(NiuMoreTest, PerQueueTranslationDisable) {
  // With translate disabled on a trusted queue, the descriptor's fields
  // address the physical node and logical queue directly ("The OS or
  // firmware can disable translation on a per-queue basis").
  auto& tq = ctrl(0).txq(sys::Node::kTxUser0);
  tq.translate = false;
  tq.raw_allowed = true;  // untranslated queues are trusted

  niu::MsgDescriptor d;
  d.vdest = 1;  // physical node
  d.flags = niu::MsgDescriptor::kFlagRaw;
  d.aux = msg::AddressMap::kUser1L;
  d.length = 4;
  compose(0, sys::Node::kTxUser0, d, test::pattern_bytes(4));
  drive_until([&] { return !ctrl(1).rxq(sys::Node::kRxUser1).empty(); });
}

TEST_F(NiuMoreTest, TagOnFromSSram) {
  auto tag_data = test::pattern_bytes(niu::kTagOnSmallBytes, 42);
  machine.node(0).niu().ssram().write(0x18000, tag_data);

  niu::MsgDescriptor d;
  d.vdest = machine.addr_map().user0(1);
  d.length = 0;
  d.flags = niu::MsgDescriptor::kFlagTagOn |
            niu::MsgDescriptor::kFlagTagOnSSram;
  d.aux = 0x18000;
  compose(0, sys::Node::kTxUser0, d, {});

  drive_until([&] { return !ctrl(1).rxq(sys::Node::kRxUser0).empty(); });
  auto& rq = ctrl(1).rxq(sys::Node::kRxUser0);
  auto& sram = machine.node(1).niu().asram();
  std::byte hdr[8];
  sram.read(rq.slot_addr(rq.consumer), hdr);
  const auto desc = niu::RxDescriptor::decode(hdr);
  ASSERT_EQ(desc.length, niu::kTagOnSmallBytes);
  std::vector<std::byte> got(desc.length);
  sram.read(rq.slot_addr(rq.consumer) + 8, got);
  EXPECT_EQ(got, tag_data);
}

TEST_F(NiuMoreTest, InterruptEnableMasksSignal) {
  auto& c = ctrl(1);
  c.write_reg(niu::SysReg::kInterruptEnable, 0);  // mask everything

  int pulses = 0;
  sim::spawn([](niu::Ctrl* ctrl_, int* n) -> sim::Co<void> {
    for (;;) {
      co_await ctrl_->sp_interrupt();
      ++*n;
    }
  }(&c, &pulses));

  c.rxq(sys::Node::kRxUser0).interrupt_on_arrival = true;
  niu::MsgDescriptor d;
  d.vdest = machine.addr_map().user0(1);
  d.length = 4;
  compose(0, sys::Node::kTxUser0, d, test::pattern_bytes(4));
  drive_until([&] {
    return (c.interrupt_status() & niu::kIntrRxArrival) != 0;
  });

  // Status latched, signal suppressed.
  machine.kernel().run_until(machine.kernel().now() +
                             20 * sim::kMicrosecond);
  EXPECT_EQ(pulses, 0);

  // Unmask and send again: now the signal fires.
  c.write_reg(niu::SysReg::kInterruptEnable, ~0ull);
  compose(0, sys::Node::kTxUser0, d, test::pattern_bytes(4));
  drive_until([&] { return pulses > 0; });

  // Write-one-to-clear on the status register.
  c.write_reg(niu::SysReg::kInterruptStatus, niu::kIntrRxArrival);
  EXPECT_EQ(c.interrupt_status() & niu::kIntrRxArrival, 0u);
}

TEST_F(NiuMoreTest, WriteRegCommandReconfiguresPriorities) {
  niu::Command cmd;
  cmd.op = niu::CmdOp::kWriteReg;
  cmd.reg = static_cast<std::uint32_t>(niu::SysReg::kTxPriority);
  cmd.value = 3ull << (2 * sys::Node::kTxUser1);
  ctrl(0).post_command(0, cmd);
  drive_until([&] { return ctrl(0).commands_idle(); });
  EXPECT_EQ(ctrl(0).txq(sys::Node::kTxUser1).priority_class, 3);
  EXPECT_EQ(ctrl(0).txq(sys::Node::kTxUser0).priority_class, 0);
}

TEST_F(NiuMoreTest, RemoteClsStateCommandOverNetwork) {
  // Node 0 closes a cls range on node 1 via the remote command queue —
  // the remote half of the approach-4 preparation.
  const auto untouched_before =
      machine.node(1).niu().cls().peek(niu::kScomaBase + 0x9080);
  niu::Command cls_cmd;
  cls_cmd.op = niu::CmdOp::kWriteClsState;
  cls_cmd.addr = niu::kScomaBase + 0x9000;
  cls_cmd.len = 128;
  cls_cmd.cls_bits = 4;

  sim::spawn([](sys::Machine* m, niu::Command c) -> sim::Co<void> {
    net::Packet pkt;
    pkt.src = 0;
    pkt.dest = 1;
    pkt.dest_queue = net::kRemoteCmdQueue;
    pkt.payload = niu::encode_remote(c);
    co_await m->node(0).niu().ctrl().inject(std::move(pkt));
  }(&machine, cls_cmd));

  drive_until([&] {
    return machine.node(1).niu().cls().peek(niu::kScomaBase + 0x9000) == 4;
  });
  EXPECT_EQ(machine.node(1).niu().cls().peek(niu::kScomaBase + 0x9060), 4);
  // Lines beyond the range keep their prior (S-COMA init) state.
  EXPECT_EQ(machine.node(1).niu().cls().peek(niu::kScomaBase + 0x9080),
            untouched_before);
}

TEST_F(NiuMoreTest, ExpressQueueFillsAndRecovers) {
  // Fill the express rx queue completely (no consumer), verify the tail
  // behaviour, then drain and confirm recovery.
  auto& rx = ctrl(1).rxq(sys::Node::kRxExpress);
  const unsigned capacity = rx.slots;

  sim::spawn([](sys::Machine* m, unsigned n) -> sim::Co<void> {
    for (unsigned i = 0; i < n + 10; ++i) {
      std::byte entry[8] = {};
      entry[0] = std::byte{1};  // vdest: node 1 (express section ORed in)
      std::uint32_t w = i;
      std::memcpy(entry + 4, &w, 4);
      std::uint64_t packed = 0;
      std::memcpy(&packed, entry, 8);
      co_await m->node(0).niu().ctrl().express_tx_push(
          sys::Node::kTxExpress, packed);
    }
  }(&machine, capacity));

  drive_until([&] { return rx.full(); });
  // Drain everything; the overflow went to the miss queue (kDivert).
  unsigned drained = 0;
  while (true) {
    const std::uint64_t e = ctrl(1).express_rx_pop(sys::Node::kRxExpress);
    if (e == niu::Ctrl::kExpressEmpty) {
      if (rx.empty()) {
        break;
      }
      continue;
    }
    ++drained;
    machine.kernel().run_until(machine.kernel().now() + 1000);
  }
  EXPECT_GE(drained, capacity);
  machine.kernel().run_until(machine.kernel().now() +
                             50 * sim::kMicrosecond);
  EXPECT_GE(ctrl(1).stats().express_popped.value(), capacity);
}

}  // namespace
}  // namespace sv

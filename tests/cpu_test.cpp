// Processor-model tests: cached/uncached access paths, busy-time
// accounting, the sP mutual-exclusion helper, and program spawning.
#include <gtest/gtest.h>

#include <cstring>

#include "cpu/processor.hpp"
#include "mem/dram.hpp"
#include "tests/test_util.hpp"

namespace sv::cpu {
namespace {

class ProcessorTest : public ::testing::Test {
 protected:
  ProcessorTest() {
    mem::DramCtrl::Params dp;
    dp.ranges.push_back({0x0, 1 << 20});
    dram = std::make_unique<mem::DramCtrl>(kernel, "dram", dp);
    bus.attach(dram.get());
    cache = std::make_unique<mem::SnoopingCache>(kernel, "L2", bus,
                                                 mem::SnoopingCache::Params{});
    proc = std::make_unique<Processor>(kernel, "aP", bus, cache.get(),
                                       Processor::Params{});
    uncached_proc = std::make_unique<Processor>(kernel, "sP", bus, nullptr,
                                                Processor::Params{});
  }

  sim::Kernel kernel;
  mem::MemBus bus{kernel, "bus", {}};
  std::unique_ptr<mem::DramCtrl> dram;
  std::unique_ptr<mem::SnoopingCache> cache;
  std::unique_ptr<Processor> proc;
  std::unique_ptr<Processor> uncached_proc;
};

TEST_F(ProcessorTest, CachedRoundTrip) {
  test::run_co(kernel, [](Processor* p) -> sim::Co<void> {
    co_await p->store_scalar<std::uint64_t>(0x100, 0x1122334455667788ull);
    const auto v = co_await p->load_scalar<std::uint64_t>(0x100);
    EXPECT_EQ(v, 0x1122334455667788ull);
  }(proc.get()));
}

TEST_F(ProcessorTest, UncachedRoundTripHitsMemoryDirectly) {
  test::run_co(kernel, [](Processor* p, mem::DramCtrl* d) -> sim::Co<void> {
    co_await p->store_scalar<std::uint32_t>(0x200, 0xAABBCCDD,
                                            /*cached=*/false);
    // Visible in DRAM immediately (no write-back delay).
    EXPECT_EQ(d->store().read_scalar<std::uint32_t>(0x200), 0xAABBCCDDu);
    const auto v =
        co_await p->load_scalar<std::uint32_t>(0x200, /*cached=*/false);
    EXPECT_EQ(v, 0xAABBCCDDu);
  }(proc.get(), dram.get()));
}

TEST_F(ProcessorTest, UncachedLargeAccessSplitsIntoSingles) {
  auto data = test::pattern_bytes(40);  // crosses 8-byte boundaries
  test::run_co(kernel,
               [](Processor* p, const std::vector<std::byte>* d)
                   -> sim::Co<void> {
                 co_await p->store_uncached(0x304, *d);  // unaligned start
                 std::vector<std::byte> got(40);
                 co_await p->load_uncached(0x304, got);
                 EXPECT_EQ(got, *d);
               }(proc.get(), &data));
  // 0x304..0x32C unaligned: more than 40/8 singles.
  EXPECT_GT(proc->ops().value(), 10u);
}

TEST_F(ProcessorTest, ProcessorWithoutCacheFallsBackToUncached) {
  test::run_co(kernel, [](Processor* p) -> sim::Co<void> {
    co_await p->store_scalar<std::uint32_t>(0x400, 7);  // cached requested
    const auto v = co_await p->load_scalar<std::uint32_t>(0x400);
    EXPECT_EQ(v, 7u);
  }(uncached_proc.get()));
  EXPECT_EQ(cache->stats().write_misses.value(), 0u);
}

TEST_F(ProcessorTest, WorkAdvancesTimeAndBusy) {
  const sim::Tick t0 = kernel.now();
  test::run_co(kernel, proc->work(100));
  EXPECT_EQ(kernel.now() - t0, 100 * proc->params().clock.period());
  EXPECT_EQ(proc->busy(), 100 * proc->params().clock.period());
}

TEST_F(ProcessorTest, BusyCoversMemoryOperations) {
  test::run_co(kernel, [](Processor* p) -> sim::Co<void> {
    std::byte buf[64];
    co_await p->load(0x500, buf);  // two line misses: real bus time
  }(proc.get()));
  // Busy equals the elapsed time of the operation (the processor stalls).
  EXPECT_EQ(proc->busy(), kernel.now());
  EXPECT_GT(proc->busy(), 0u);
}

TEST_F(ProcessorTest, MutexSerializesAgents) {
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    sim::spawn([](Processor* p, sim::Kernel* k, std::vector<int>* out,
                  int id) -> sim::Co<void> {
      co_await p->acquire();
      out->push_back(id);
      co_await sim::delay(*k, 100);
      p->release();
    }(proc.get(), &kernel, &order, i));
  }
  kernel.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST_F(ProcessorTest, FlushRangePushesDirtyData) {
  auto data = test::pattern_bytes(128);
  test::run_co(kernel,
               [](Processor* p, mem::DramCtrl* d,
                  const std::vector<std::byte>* in) -> sim::Co<void> {
                 co_await p->store(0x600, *in);
                 co_await p->flush_range(0x600, in->size());
                 std::vector<std::byte> got(in->size());
                 d->store().read(0x600, got);
                 EXPECT_EQ(got, *in);
               }(proc.get(), dram.get(), &data));
}

TEST_F(ProcessorTest, RunFiresCompletionEvent) {
  sim::OneShot done(kernel);
  proc->run([](Processor* p) -> sim::Co<void> {
    co_await p->work(10);
  }(proc.get()),
            &done);
  EXPECT_FALSE(done.fired());
  kernel.run();
  EXPECT_TRUE(done.fired());
}

TEST_F(ProcessorTest, TwoProcessorsContendOnOneBus) {
  // Both processors hammer uncached ops; the bus serializes them, so the
  // total time exceeds what either would need alone.
  sim::Tick solo = 0;
  {
    const sim::Tick t0 = kernel.now();
    test::run_co(kernel, [](Processor* p) -> sim::Co<void> {
      for (int i = 0; i < 20; ++i) {
        co_await p->store_scalar<std::uint64_t>(0x700, 1, false);
      }
    }(proc.get()));
    solo = kernel.now() - t0;
  }
  const sim::Tick t1 = kernel.now();
  int done = 0;
  for (Processor* p : {proc.get(), uncached_proc.get()}) {
    sim::spawn([](Processor* pp, int* d) -> sim::Co<void> {
      for (int i = 0; i < 20; ++i) {
        co_await pp->store_scalar<std::uint64_t>(0x700, 2, false);
      }
      ++*d;
    }(p, &done));
  }
  kernel.run();
  EXPECT_EQ(done, 2);
  EXPECT_GT(kernel.now() - t1, solo);
}

}  // namespace
}  // namespace sv::cpu

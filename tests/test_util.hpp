// Shared test helpers: small-machine factories, kernel-driving utilities
// and a canonical "run a workload, dump its stats" harness used by the
// golden corpus and the parallel-equivalence sweep.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "msg/reliable.hpp"
#include "shm/scoma_region.hpp"
#include "sim/fastpath.hpp"
#include "sys/experiment.hpp"
#include "sys/machine.hpp"
#include "sys/stats_dump.hpp"
#include "trace/trace.hpp"

namespace sv::test {

inline sys::Machine::Params small_machine_params(
    std::size_t nodes, sys::Machine::NetKind net = sys::Machine::NetKind::kFatTree) {
  sys::Machine::Params p;
  p.nodes = nodes;
  p.net = net;
  p.node.dram_size = 8ull * 1024 * 1024;
  p.node.scoma_size = 1ull * 1024 * 1024;
  p.node.numa_backing_size = 8ull * 1024 * 1024;
  return p;
}

/// Drive `kernel` until `pred` holds; fail the test on timeout.
inline void drive(sim::Kernel& kernel, const std::function<bool()>& pred,
                  sim::Tick timeout = 100 * sim::kMillisecond) {
  ASSERT_TRUE(sys::run_until(kernel, pred, kernel.now() + timeout))
      << "simulation timed out at " << kernel.now() << " ps";
}

/// Run a single coroutine to completion on a bare kernel.
inline void run_co(sim::Kernel& kernel, sim::Co<void> co,
                   sim::Tick timeout = 100 * sim::kMillisecond) {
  sim::OneShot done(kernel);
  sim::spawn([](sim::Co<void> c, sim::OneShot* d) -> sim::Co<void> {
    co_await std::move(c);
    d->fire();
  }(std::move(co), &done));
  drive(kernel, [&] { return done.fired(); }, timeout);
}

/// Packet-conservation invariant checker (used by every fault test): after
/// `drain` of additional simulated time, everything the network's inject()
/// accepted must be accounted for — delivered or dropped, nothing stuck.
/// The drain runs in whole lookahead epochs so it is valid (and lands on
/// the same instant) for sequential and partitioned machines alike.
inline void expect_network_conserves(sys::Machine& machine,
                                     sim::Tick drain = 2 * sim::kMillisecond) {
  (void)sys::run_until(machine, [] { return false; },
                       machine.now() + drain);
  const auto a = machine.network().audit();
  EXPECT_TRUE(a.balanced())
      << "packet conservation violated: injected=" << a.injected
      << " delivered=" << a.delivered << " dropped=" << a.dropped
      << " unaccounted=" << a.in_flight();
}

inline std::vector<std::byte> pattern_bytes(std::size_t n,
                                            std::uint8_t seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 13 + seed) & 0xFF);
  }
  return v;
}

// ---------------------------------------------------------------------------
// Canonical workload harness (golden corpus + parallel-equivalence sweep)
// ---------------------------------------------------------------------------

enum class Workload {
  kMsg,       ///< all-to-all Basic messaging, one driver per node
  kShm,       ///< S-COMA load/store contention on a few shared words
  kReliable,  ///< ReliableChannel ring (survives drop/overflow faults)
};

struct RunSpec {
  Workload workload = Workload::kMsg;
  std::size_t nodes = 4;
  unsigned threads = 0;  ///< 0 = sequential single-domain machine
  sys::Machine::NetKind net = sys::Machine::NetKind::kIdeal;
  fault::Plan fault;
  /// Functional-model fast paths (DESIGN.md §12). Defaults to the process
  /// environment (SV_NO_FASTPATH); fastpath_test pins it both ways to
  /// assert byte-identity within one process.
  bool fastpath = sim::fastpath_default();

  std::uint64_t count = 20;  ///< messages per node (kMsg / kReliable)
  std::uint64_t bytes = 32;  ///< payload bytes per message
  std::uint64_t ops = 60;    ///< loads+stores per node (kShm)
  std::uint64_t seed = 42;   ///< base seed for kShm access streams

  // ReliableChannel knobs (kReliable only).
  std::size_t window = 16;
  sim::Tick retransmit_timeout = 20 * sim::kMicrosecond;
  unsigned give_up_after = 8;

  std::size_t trace_capacity = 0;  ///< >0 attaches tracers, captures spans
  sim::Tick deadline = 2000 * sim::kMillisecond;
  bool check_conservation = true;
};

struct RunResult {
  bool completed = false;
  sim::Tick end_time = 0;    ///< machine.now() after the run (and drain)
  std::string stats_json;    ///< sys::dump_stats_json of the whole machine
  std::string span_dump;     ///< trace::canonical_span_dump (tracing only)
  std::uint64_t trace_dropped = 0;
  fault::Stats fault_stats;  ///< zeroes when the plan created no injector
};

namespace detail {

inline void start_msg_drivers(sys::Machine& machine, const RunSpec& spec,
                              std::vector<std::unique_ptr<msg::Endpoint>>& eps,
                              std::vector<std::uint8_t>& done) {
  const auto map = machine.addr_map();
  for (sim::NodeId n = 0; n < machine.size(); ++n) {
    eps.push_back(std::make_unique<msg::Endpoint>(
        machine.node(n).ap(), machine.node(n).endpoint_config()));
  }
  for (sim::NodeId n = 0; n < machine.size(); ++n) {
    machine.node(n).ap().run(
        [](msg::Endpoint* ep, msg::AddressMap map_, sim::NodeId self,
           std::size_t nodes, std::uint64_t count, std::uint64_t bytes,
           std::uint8_t* flag) -> sim::Co<void> {
          std::vector<std::byte> payload(bytes);
          for (std::uint64_t i = 0; i < count; ++i) {
            const auto dst = static_cast<sim::NodeId>(
                (self + 1 + i % (nodes - 1)) % nodes);
            co_await ep->send(map_.user0(dst), payload);
          }
          for (std::uint64_t i = 0; i < count; ++i) {
            (void)co_await ep->recv();
          }
          *flag = 1;
        }(eps[n].get(), map, n, machine.size(), spec.count, spec.bytes,
          &done[n]));
  }
}

inline void start_shm_drivers(sys::Machine& machine, const RunSpec& spec,
                              std::vector<std::uint8_t>& done) {
  for (sim::NodeId n = 0; n < machine.size(); ++n) {
    machine.node(n).ap().run(
        [](sys::Node* node, std::uint64_t ops, std::uint64_t seed,
           std::uint8_t* flag) -> sim::Co<void> {
          // Every node hammers the same few shared words from its own
          // processor — the cross-node sharing the coherence protocol
          // exists for — with a private, seed-derived access stream.
          sim::Rng rng(seed);
          shm::ScomaRegion region(node->ap());
          for (std::uint64_t i = 0; i < ops; ++i) {
            const mem::Addr off = 0x1000 + rng.below(8) * 64;
            if (rng.chance(0.5)) {
              co_await region.store<std::uint32_t>(
                  off, static_cast<std::uint32_t>(i));
            } else {
              (void)co_await region.load<std::uint32_t>(off);
            }
          }
          *flag = 1;
        }(&machine.node(n), spec.ops,
          spec.seed ^ (0x9e3779b97f4a7c15ull * (n + 1)), &done[n]));
  }
}

inline void start_reliable_drivers(
    sys::Machine& machine, const RunSpec& spec,
    std::vector<std::unique_ptr<msg::Endpoint>>& eps,
    std::vector<std::unique_ptr<msg::ReliableChannel>>& chans,
    std::vector<std::uint8_t>& done) {
  const auto map = machine.addr_map();
  msg::ReliableChannel::Params cp;
  cp.window = spec.window;
  cp.retransmit.base_timeout = spec.retransmit_timeout;
  cp.retransmit.give_up_after = spec.give_up_after;
  for (sim::NodeId n = 0; n < machine.size(); ++n) {
    eps.push_back(std::make_unique<msg::Endpoint>(
        machine.node(n).ap(), machine.node(n).endpoint_config()));
    chans.push_back(
        std::make_unique<msg::ReliableChannel>(*eps[n], map, n, cp));
    chans[n]->start();
  }
  for (sim::NodeId n = 0; n < machine.size(); ++n) {
    machine.node(n).ap().run(
        [](msg::ReliableChannel* ch, sim::NodeId self, std::size_t nodes,
           std::uint64_t count, std::uint64_t bytes,
           std::uint8_t* flag) -> sim::Co<void> {
          const auto right = static_cast<sim::NodeId>((self + 1) % nodes);
          const auto left =
              static_cast<sim::NodeId>((self + nodes - 1) % nodes);
          for (std::uint64_t i = 0; i < count; ++i) {
            std::vector<std::byte> payload(bytes);
            for (std::size_t b = 0; b < payload.size(); ++b) {
              payload[b] = static_cast<std::byte>(self + i + b);
            }
            co_await ch->send(right, payload);
          }
          for (std::uint64_t i = 0; i < count; ++i) {
            (void)co_await ch->recv(left);
          }
          *flag = 1;
        }(chans[n].get(), n, machine.size(), spec.count, spec.bytes,
          &done[n]));
  }
}

}  // namespace detail

/// Build a machine for `spec`, start one driver coroutine per node, run to
/// completion in whole lookahead epochs and return the machine-wide stats
/// JSON (plus the canonical trace-span dump when tracing is on).
///
/// The drivers are partition-safe by construction: every completion flag,
/// endpoint, channel and region is owned by exactly one node's domain, and
/// the run is driven through Machine::run_epochs_until. The identical
/// RunSpec therefore produces a byte-identical RunResult at every
/// Params::threads value — that equivalence is what
/// parallel_equivalence_test asserts and golden_test pins over time.
inline RunResult run_machine_and_dump_stats(const RunSpec& spec) {
  auto mp = small_machine_params(spec.nodes, spec.net);
  mp.threads = spec.threads;
  mp.fault = spec.fault;
  mp.node.bus.fastpath = spec.fastpath;
  mp.node.ap.fastpath = spec.fastpath;
  mp.node.sp.fastpath = spec.fastpath;
  sys::Machine machine(mp);
  if (spec.trace_capacity > 0) {
    machine.enable_tracing(spec.trace_capacity);
  }

  std::vector<std::unique_ptr<msg::Endpoint>> eps;
  std::vector<std::unique_ptr<msg::ReliableChannel>> chans;
  std::vector<std::uint8_t> done(machine.size(), 0);
  switch (spec.workload) {
    case Workload::kMsg:
      detail::start_msg_drivers(machine, spec, eps, done);
      break;
    case Workload::kShm:
      detail::start_shm_drivers(machine, spec, done);
      break;
    case Workload::kReliable:
      detail::start_reliable_drivers(machine, spec, eps, chans, done);
      break;
  }

  // Completion is evaluated at epoch boundaries only (workers parked), so
  // reading the per-node flags and channel state here is race-free and the
  // stop boundary is the same whatever the thread count. Reliable runs
  // additionally wait for empty retransmit windows and balanced books —
  // tail ACKs are droppable too.
  const auto all_done = [&] {
    for (const auto f : done) {
      if (f == 0) {
        return false;
      }
    }
    for (const auto& ch : chans) {
      if (ch->unacked() != 0) {
        return false;
      }
    }
    return chans.empty() || machine.network().audit().balanced();
  };

  RunResult res;
  res.completed =
      sys::run_until(machine, all_done, machine.now() + spec.deadline);
  EXPECT_TRUE(res.completed)
      << "workload timed out at " << machine.now() << " ps";

  if (spec.workload == Workload::kReliable && res.completed) {
    for (const auto& ch : chans) {
      EXPECT_EQ(ch->stats().payloads_delivered.value(), spec.count);
      EXPECT_EQ(ch->unacked(), 0u);
      for (sim::NodeId peer = 0; peer < machine.size(); ++peer) {
        EXPECT_FALSE(ch->failed(peer));
      }
    }
  }
  if (spec.check_conservation && res.completed) {
    expect_network_conserves(machine);
  }

  res.end_time = machine.now();
  if (machine.fault_injector() != nullptr) {
    res.fault_stats = machine.fault_injector()->stats();
  }
  std::ostringstream os;
  sys::dump_stats_json(machine, os);
  res.stats_json = os.str();
  if (spec.trace_capacity > 0) {
    const auto trs = machine.tracers();
    for (const auto* t : trs) {
      res.trace_dropped += t->dropped();
    }
    res.span_dump = trace::canonical_span_dump(trs);
  }
  return res;
}

}  // namespace sv::test

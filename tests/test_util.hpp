// Shared test helpers: small-machine factories and kernel-driving utilities.
#pragma once

#include <gtest/gtest.h>

#include "sys/experiment.hpp"
#include "sys/machine.hpp"

namespace sv::test {

inline sys::Machine::Params small_machine_params(
    std::size_t nodes, sys::Machine::NetKind net = sys::Machine::NetKind::kFatTree) {
  sys::Machine::Params p;
  p.nodes = nodes;
  p.net = net;
  p.node.dram_size = 8ull * 1024 * 1024;
  p.node.scoma_size = 1ull * 1024 * 1024;
  p.node.numa_backing_size = 8ull * 1024 * 1024;
  return p;
}

/// Drive `kernel` until `pred` holds; fail the test on timeout.
inline void drive(sim::Kernel& kernel, const std::function<bool()>& pred,
                  sim::Tick timeout = 100 * sim::kMillisecond) {
  ASSERT_TRUE(sys::run_until(kernel, pred, kernel.now() + timeout))
      << "simulation timed out at " << kernel.now() << " ps";
}

/// Run a single coroutine to completion on a bare kernel.
inline void run_co(sim::Kernel& kernel, sim::Co<void> co,
                   sim::Tick timeout = 100 * sim::kMillisecond) {
  sim::OneShot done(kernel);
  sim::spawn([](sim::Co<void> c, sim::OneShot* d) -> sim::Co<void> {
    co_await std::move(c);
    d->fire();
  }(std::move(co), &done));
  drive(kernel, [&] { return done.fired(); }, timeout);
}

/// Packet-conservation invariant checker (used by every fault test): after
/// `drain` of additional simulated time, everything the network's inject()
/// accepted must be accounted for — delivered or dropped, nothing stuck.
inline void expect_network_conserves(sys::Machine& machine,
                                     sim::Tick drain = 2 * sim::kMillisecond) {
  machine.kernel().run_until(machine.kernel().now() + drain);
  const auto a = machine.network().audit();
  EXPECT_TRUE(a.balanced())
      << "packet conservation violated: injected=" << a.injected
      << " delivered=" << a.delivered << " dropped=" << a.dropped
      << " unaccounted=" << a.in_flight();
}

inline std::vector<std::byte> pattern_bytes(std::size_t n,
                                            std::uint8_t seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 13 + seed) & 0xFF);
  }
  return v;
}

}  // namespace sv::test

// Machine-level tests: construction across cluster sizes and network
// kinds, all-to-all traffic, and cross-subsystem interference (message
// passing and shared memory running simultaneously — the coexistence the
// paper's protected multi-queue design is for).
#include <gtest/gtest.h>

#include <cstring>

#include "msg/channel.hpp"
#include "shm/scoma_region.hpp"
#include "tests/test_util.hpp"

namespace sv {
namespace {

struct MachineParam {
  std::size_t nodes;
  sys::Machine::NetKind net;
};

class MachineSweep : public ::testing::TestWithParam<MachineParam> {};

TEST_P(MachineSweep, AllToAllMessaging) {
  const auto param = GetParam();
  sys::Machine machine(test::small_machine_params(param.nodes, param.net));
  const auto map = machine.addr_map();

  std::vector<std::unique_ptr<msg::Endpoint>> eps;
  for (sim::NodeId n = 0; n < machine.size(); ++n) {
    eps.push_back(std::make_unique<msg::Endpoint>(
        machine.node(n).ap(), machine.node(n).endpoint_config()));
  }

  std::size_t done = 0;
  for (sim::NodeId n = 0; n < machine.size(); ++n) {
    machine.node(n).ap().run(
        [](msg::Endpoint* ep, msg::AddressMap map, sim::NodeId self,
           std::size_t nodes, std::size_t* d) -> sim::Co<void> {
          // Send one message to every node (including self)...
          for (sim::NodeId dst = 0; dst < nodes; ++dst) {
            std::byte payload[8];
            const std::uint64_t v =
                (static_cast<std::uint64_t>(self) << 32) | dst;
            std::memcpy(payload, &v, 8);
            co_await ep->send(map.user0(dst), payload);
          }
          // ...and collect one from every node.
          std::vector<bool> seen(nodes, false);
          for (std::size_t i = 0; i < nodes; ++i) {
            msg::Message m = co_await ep->recv();
            std::uint64_t v = 0;
            std::memcpy(&v, m.data.data(), 8);
            EXPECT_EQ(v & 0xFFFFFFFF, self);
            EXPECT_EQ(v >> 32, m.src_node);
            EXPECT_FALSE(seen[m.src_node]);
            seen[m.src_node] = true;
          }
          ++*d;
        }(eps[n].get(), map, n, machine.size(), &done));
  }
  test::drive(machine.kernel(), [&] { return done == machine.size(); },
              500 * sim::kMillisecond);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MachineSweep,
    ::testing::Values(MachineParam{2, sys::Machine::NetKind::kFatTree},
                      MachineParam{3, sys::Machine::NetKind::kFatTree},
                      MachineParam{4, sys::Machine::NetKind::kFatTree},
                      MachineParam{8, sys::Machine::NetKind::kFatTree},
                      MachineParam{2, sys::Machine::NetKind::kIdeal},
                      MachineParam{4, sys::Machine::NetKind::kIdeal}));

TEST(MachineTest, MessagingAndSharedMemoryCoexist) {
  // Run a message ping-pong and S-COMA traffic simultaneously on the same
  // pair of nodes: the NIU's multiple protected queues keep them isolated.
  sys::Machine machine(test::small_machine_params(2));
  const auto map = machine.addr_map();
  auto ep0 = machine.node(0).make_endpoint();
  auto ep1 = machine.node(1).make_endpoint();
  shm::ScomaRegion sc1(machine.node(1).ap());

  bool msg_done = false, shm_done = false;
  machine.node(0).ap().run(
      [](msg::Endpoint* ep, msg::AddressMap map, bool* d) -> sim::Co<void> {
        for (int i = 0; i < 20; ++i) {
          std::byte b[4] = {};
          co_await ep->send(map.user0(1), b);
          (void)co_await ep->recv();
        }
        *d = true;
      }(&ep0, map, &msg_done));
  machine.node(1).ap().run(
      [](msg::Endpoint* ep, msg::AddressMap map, shm::ScomaRegion* r,
         bool* d) -> sim::Co<void> {
        for (int i = 0; i < 20; ++i) {
          msg::Message m = co_await ep->recv();
          // Interleave S-COMA writes to lines homed on node 0.
          co_await r->store<std::uint32_t>(0x40 * (i + 1),
                                           static_cast<std::uint32_t>(i));
          co_await ep->send(map.user0(0), m.data);
        }
        *d = true;
      }(&ep1, map, &sc1, &shm_done));
  test::drive(machine.kernel(), [&] { return msg_done && shm_done; },
              500 * sim::kMillisecond);

  // All S-COMA lines ended up owned by node 1.
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(machine.node(1).niu().cls().peek(niu::kScomaBase +
                                               0x40 * (i + 1)),
              niu::ABiu::kClsReadWrite);
  }
}

TEST(MachineTest, DisabledEnginesLeaveNullAccessors) {
  auto p = test::small_machine_params(2);
  p.node.enable_dma = false;
  p.node.enable_numa = false;
  p.node.enable_scoma = false;
  p.node.enable_miss_service = false;
  p.node.enable_chunk_opener = false;
  sys::Machine machine(p);
  EXPECT_EQ(machine.node(0).dma(), nullptr);
  EXPECT_EQ(machine.node(0).numa(), nullptr);
  EXPECT_EQ(machine.node(0).scoma(), nullptr);
  EXPECT_EQ(machine.node(0).miss_service(), nullptr);
  EXPECT_EQ(machine.node(0).chunk_opener(), nullptr);

  // Plain messaging still works without any firmware engines.
  auto ep0 = machine.node(0).make_endpoint();
  auto ep1 = machine.node(1).make_endpoint();
  bool got = false;
  machine.node(0).ap().run(
      ep0.send(machine.addr_map().user0(1), test::pattern_bytes(8)));
  machine.node(1).ap().run(
      [](msg::Endpoint* ep, bool* d) -> sim::Co<void> {
        (void)co_await ep->recv();
        *d = true;
      }(&ep1, &got));
  test::drive(machine.kernel(), [&] { return got; });
}

TEST(MachineTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    sys::Machine machine(test::small_machine_params(4));
    auto ep0 = machine.node(0).make_endpoint();
    auto ep3 = machine.node(3).make_endpoint();
    bool got = false;
    machine.node(0).ap().run(
        ep0.send(machine.addr_map().user0(3), test::pattern_bytes(32)));
    machine.node(3).ap().run(
        [](msg::Endpoint* ep, bool* d) -> sim::Co<void> {
          (void)co_await ep->recv();
          *d = true;
        }(&ep3, &got));
    test::drive(machine.kernel(), [&] { return got; });
    return machine.kernel().now();
  };
  const sim::Tick a = run_once();
  const sim::Tick b = run_once();
  EXPECT_EQ(a, b);
}

TEST(MachineTest, NetworkStatsAccumulate) {
  sys::Machine machine(test::small_machine_params(2));
  auto ep0 = machine.node(0).make_endpoint();
  auto ep1 = machine.node(1).make_endpoint();
  bool got = false;
  machine.node(0).ap().run(
      ep0.send(machine.addr_map().user0(1), test::pattern_bytes(8)));
  machine.node(1).ap().run(
      [](msg::Endpoint* ep, bool* d) -> sim::Co<void> {
        (void)co_await ep->recv();
        *d = true;
      }(&ep1, &got));
  test::drive(machine.kernel(), [&] { return got; });
  EXPECT_GE(machine.network().packets_delivered(), 1u);
  EXPECT_GT(machine.network().transit_ps().mean(), 0.0);
}

}  // namespace
}  // namespace sv

// Firmware-service tests: rx-queue-cache miss service with DRAM-resident
// queues, reflective memory (firmware and all-hardware modes), and the
// approach-4 chunk opener.
#include <gtest/gtest.h>

#include <cstring>

#include "msg/dram_queue.hpp"
#include "tests/test_util.hpp"
#include "xfer/approaches.hpp"

namespace sv {
namespace {

class FwTest : public ::testing::Test {
 protected:
  FwTest() : machine(test::small_machine_params(2)) {
    for (sim::NodeId n = 0; n < machine.size(); ++n) {
      eps.push_back(std::make_unique<msg::Endpoint>(
          machine.node(n).ap(), machine.node(n).endpoint_config()));
    }
  }

  void drive_until(const std::function<bool()>& pred) {
    test::drive(machine.kernel(), pred);
  }

  sys::Machine machine;
  std::vector<std::unique_ptr<msg::Endpoint>> eps;
};

TEST_F(FwTest, MissServiceSpillsToDramQueue) {
  // Register a DRAM-resident queue for an unbound logical id on node 1.
  constexpr net::QueueId kSpill = 0x0777;
  fw::DramQueueDesc desc;
  desc.base = 0x50000;
  desc.slots = 16;
  machine.node(1).miss_service()->register_queue(kSpill, desc);

  auto payload = test::pattern_bytes(24, 9);
  machine.node(0).ap().run(eps[0]->send_raw(1, kSpill, payload));

  bool got = false;
  msg::DramQueue dq(machine.node(1).ap(), desc);
  machine.node(1).ap().run(
      [](msg::DramQueue* q, const std::vector<std::byte>* want,
         bool* done) -> sim::Co<void> {
        msg::Message m = co_await q->recv();
        EXPECT_EQ(m.logical, 0x0777);
        EXPECT_EQ(m.src_node, 0);
        EXPECT_EQ(m.data, *want);
        *done = true;
      }(&dq, &payload, &got));
  drive_until([&] { return got; });
  EXPECT_EQ(machine.node(1).miss_service()->serviced().value(), 1u);
}

TEST_F(FwTest, MissServiceHandlesBurstAcrossWrap) {
  constexpr net::QueueId kSpill = 0x0778;
  fw::DramQueueDesc desc;
  desc.base = 0x58000;
  desc.slots = 4;  // tiny: forces wrap handling
  machine.node(1).miss_service()->register_queue(kSpill, desc);

  constexpr int kCount = 10;
  machine.node(0).ap().run(
      [](msg::Endpoint* ep) -> sim::Co<void> {
        for (std::uint32_t i = 0; i < kCount; ++i) {
          std::byte b[4];
          std::memcpy(b, &i, 4);
          co_await ep->send_raw(1, kSpill, b);
        }
      }(eps[0].get()));

  int received = 0;
  bool ordered = true;
  msg::DramQueue dq(machine.node(1).ap(), desc);
  machine.node(1).ap().run(
      [](msg::DramQueue* q, int* n, bool* ok) -> sim::Co<void> {
        for (std::uint32_t i = 0; i < kCount; ++i) {
          msg::Message m = co_await q->recv();
          std::uint32_t seq = 0;
          std::memcpy(&seq, m.data.data(), 4);
          if (seq != i) {
            *ok = false;
          }
          ++*n;
        }
      }(&dq, &received, &ordered));
  drive_until([&] { return received == kCount; });
  EXPECT_TRUE(ordered);
  EXPECT_EQ(machine.node(1).miss_service()->overflowed().value(), 0u);
}

TEST_F(FwTest, MissServiceCountsUnregisteredQueues) {
  machine.node(0).ap().run(
      eps[0]->send_raw(1, 0x0BBB, test::pattern_bytes(8)));
  drive_until([&] {
    return machine.node(1).miss_service()->unregistered().value() == 1;
  });
}

TEST_F(FwTest, ReflectiveMemoryFirmwareMode) {
  // Install a firmware reflective engine on node 0: writes to a local DRAM
  // window propagate to node 1.
  fw::ReflectiveEngine::Params rp;
  rp.local_base = 0x60000;
  rp.size = 4096;
  rp.peers.push_back({1, 0x70000});
  fw::ReflectiveEngine refl(machine.kernel(), "n0.fw.refl",
                            machine.node(0).sp(),
                            machine.node(0).niu().sbiu(), rp);
  refl.start();

  machine.node(0).ap().run(
      [](cpu::Processor* ap) -> sim::Co<void> {
        co_await ap->store_scalar<std::uint64_t>(0x60040, 0xCAFED00DBEEF1234,
                                                 /*cached=*/false);
      }(&machine.node(0).ap()));
  drive_until([&] {
    return machine.node(1).dram().store().read_scalar<std::uint64_t>(
               0x70040) == 0xCAFED00DBEEF1234ull;
  });
  EXPECT_EQ(refl.updates_forwarded().value(), 1u);
}

TEST_F(FwTest, ReflectiveMemoryHardwareMode) {
  // All-hardware mode: the aBIU emits the remote update itself; the sP
  // never runs.
  machine.node(0).niu().abiu().add_reflect_range(
      0x62000, 4096, /*hw_mode=*/true, {{1, 0x72000}});

  const sim::Tick sp_busy_before = machine.node(0).sp().busy();
  machine.node(0).ap().run(
      [](cpu::Processor* ap) -> sim::Co<void> {
        co_await ap->store_scalar<std::uint32_t>(0x62080, 0xA5A5A5A5,
                                                 /*cached=*/false);
      }(&machine.node(0).ap()));
  drive_until([&] {
    return machine.node(1).dram().store().read_scalar<std::uint32_t>(
               0x72080) == 0xA5A5A5A5u;
  });
  EXPECT_EQ(machine.node(0).sp().busy(), sp_busy_before);
}

TEST_F(FwTest, ReflectiveMemoryFanOutToMultiplePeers) {
  auto machine4 = sys::Machine(test::small_machine_params(4));
  machine4.node(0).niu().abiu().add_reflect_range(
      0x64000, 4096, /*hw_mode=*/true,
      {{1, 0x74000}, {2, 0x74000}, {3, 0x74000}});

  machine4.node(0).ap().run(
      [](cpu::Processor* ap) -> sim::Co<void> {
        co_await ap->store_scalar<std::uint32_t>(0x64010, 0x0F0F0F0F,
                                                 /*cached=*/false);
      }(&machine4.node(0).ap()));
  test::drive(machine4.kernel(), [&] {
    for (sim::NodeId n = 1; n < 4; ++n) {
      if (machine4.node(n).dram().store().read_scalar<std::uint32_t>(
              0x74010) != 0x0F0F0F0Fu) {
        return false;
      }
    }
    return true;
  });
}

TEST_F(FwTest, ChunkOpenerOpensLinesOnArrival) {
  // Close a cls range, then send a remote write with chunk_notify: the
  // chunk opener must open exactly the written lines.
  auto& cls1 = machine.node(1).niu().cls();
  for (mem::Addr a = 0; a < 256; a += mem::kLineBytes) {
    cls1.poke(niu::kScomaBase + 0x8000 + a, xfer::kClsBlockPending);
  }

  niu::Command wr;
  wr.op = niu::CmdOp::kWriteApDram;
  wr.addr = niu::kScomaBase + 0x8000;
  wr.data = test::pattern_bytes(64, 10);
  wr.chunk_notify = true;
  wr.src_node = 0;

  sim::spawn([](sys::Machine* m, niu::Command c) -> sim::Co<void> {
    net::Packet pkt;
    pkt.src = 0;
    pkt.dest = 1;
    pkt.dest_queue = net::kRemoteCmdQueue;
    pkt.payload = niu::encode_remote(c);
    co_await m->node(0).niu().ctrl().inject(std::move(pkt));
  }(&machine, wr));

  drive_until([&] {
    return cls1.peek(niu::kScomaBase + 0x8000) ==
               niu::ABiu::kClsReadWrite &&
           cls1.peek(niu::kScomaBase + 0x8020) == niu::ABiu::kClsReadWrite;
  });
  // Lines beyond the written chunk stay closed.
  EXPECT_EQ(cls1.peek(niu::kScomaBase + 0x8040), xfer::kClsBlockPending);
  EXPECT_EQ(machine.node(1).chunk_opener()->chunks_opened().value(), 1u);
}

TEST_F(FwTest, FirmwareOccupancyAccrues) {
  // A DMA request occupies the sP measurably.
  auto data = test::pattern_bytes(4096, 11);
  machine.node(0).dram().store().write(0x10000, data);
  const sim::Tick sp0 = machine.node(0).sp().busy();

  bool got = false;
  machine.node(0).ap().run(
      [](msg::Endpoint* ep, msg::AddressMap map) -> sim::Co<void> {
        co_await msg::dma_write(*ep, map, 0, 1, 0x10000, 0x20000, 4096,
                                msg::AddressMap::kUser0L, 1);
      }(eps[0].get(), machine.addr_map()));
  machine.node(1).ap().run(
      [](msg::Endpoint* ep, bool* done) -> sim::Co<void> {
        (void)co_await ep->recv();
        *done = true;
      }(eps[1].get(), &got));
  drive_until([&] { return got; });
  EXPECT_GT(machine.node(0).sp().busy(), sp0);
}

}  // namespace
}  // namespace sv

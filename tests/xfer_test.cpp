// Block-transfer approach tests (the paper's section-6 experiment):
// correctness of all five approaches, plus the qualitative shape relations
// the paper reports (approach ordering, occupancy, optimistic latency).
#include <gtest/gtest.h>

#include "tests/test_util.hpp"
#include "xfer/approaches.hpp"

namespace sv {
namespace {

class XferTest : public ::testing::Test {
 protected:
  XferTest() : machine(make_params()), harness(machine) {}

  static sys::Machine::Params make_params() {
    auto p = test::small_machine_params(2);
    // Approaches 4/5 manage cls state themselves.
    p.node.enable_scoma = false;
    return p;
  }

  static xfer::TransferSpec spec_for(std::uint32_t len, bool scoma_dst) {
    xfer::TransferSpec s;
    s.sender = 0;
    s.receiver = 1;
    s.src = 0x0010'0000;
    s.dst = scoma_dst ? niu::kScomaBase + 0x4000 : 0x0020'0000;
    s.len = len;
    return s;
  }

  sys::Machine machine;
  xfer::BlockTransferHarness harness;
};

TEST_F(XferTest, Approach1TransfersCorrectly) {
  auto res = harness.run(1, spec_for(2048, false));
  EXPECT_TRUE(res.ok);
  EXPECT_GT(res.latency(), 0u);
}

TEST_F(XferTest, Approach2TransfersCorrectly) {
  auto res = harness.run(2, spec_for(2048, false));
  EXPECT_TRUE(res.ok);
}

TEST_F(XferTest, Approach3TransfersCorrectly) {
  auto res = harness.run(3, spec_for(2048, false));
  EXPECT_TRUE(res.ok);
}

TEST_F(XferTest, Approach4TransfersCorrectly) {
  xfer::RunOptions opt;
  opt.consume = true;
  auto res = harness.run(4, spec_for(2048, true), opt);
  EXPECT_TRUE(res.ok);
  EXPECT_GT(res.consume_time, res.notify_time);
}

TEST_F(XferTest, Approach5TransfersCorrectly) {
  xfer::RunOptions opt;
  opt.consume = true;
  auto res = harness.run(5, spec_for(2048, true), opt);
  EXPECT_TRUE(res.ok);
}

TEST_F(XferTest, LargeMultiPageTransfers) {
  for (int approach : {1, 2, 3}) {
    auto res = harness.run(approach, spec_for(16384, false));
    EXPECT_TRUE(res.ok) << "approach " << approach;
  }
}

TEST_F(XferTest, BackToBackTransfersStayCorrect) {
  // Reusing the harness (and hence queue pointers) across many transfers.
  for (int i = 0; i < 3; ++i) {
    for (int approach : {3, 1, 2}) {
      auto res = harness.run(approach, spec_for(1024, false));
      EXPECT_TRUE(res.ok) << "approach " << approach << " iter " << i;
    }
  }
}

TEST_F(XferTest, PaperShapeLatencyOrdering) {
  // Figure 3's shape: approach 1 is the slowest; approach 3 beats it.
  const auto r1 = harness.run(1, spec_for(4096, false));
  const auto r2 = harness.run(2, spec_for(4096, false));
  const auto r3 = harness.run(3, spec_for(4096, false));
  ASSERT_TRUE(r1.ok && r2.ok && r3.ok);
  EXPECT_GT(r1.latency(), r2.latency());
  EXPECT_GT(r2.latency(), r3.latency());
}

TEST_F(XferTest, PaperShapeOccupancy) {
  // Approach 1 burns aP time; approach 2 shifts the burden to the sPs;
  // approach 3 leaves both nearly idle.
  const auto r1 = harness.run(1, spec_for(4096, false));
  const auto r2 = harness.run(2, spec_for(4096, false));
  const auto r3 = harness.run(3, spec_for(4096, false));
  ASSERT_TRUE(r1.ok && r2.ok && r3.ok);

  EXPECT_GT(r1.sender_ap_busy, r2.sender_ap_busy);
  EXPECT_GT(r1.sender_ap_busy, r3.sender_ap_busy);
  EXPECT_GT(r2.sender_sp_busy, r1.sender_sp_busy);
  EXPECT_GT(r2.sender_sp_busy, r3.sender_sp_busy);
  EXPECT_GT(r2.receiver_sp_busy, r3.receiver_sp_busy);
}

TEST_F(XferTest, OptimisticNotificationArrivesEarly) {
  // Approaches 4/5 notify after ~1/4 of the data: the notify must land
  // well before an equally-sized approach-3 transfer completes.
  const auto r3 = harness.run(3, spec_for(16384, true));
  const auto r4 = harness.run(4, spec_for(16384, true));
  const auto r5 = harness.run(5, spec_for(16384, true));
  ASSERT_TRUE(r3.ok && r4.ok && r5.ok);
  EXPECT_LT(r4.latency(), r3.latency());
  EXPECT_LT(r5.latency(), r3.latency());
}

TEST_F(XferTest, HardwareClsBeatsFirmwareOpener) {
  // Approach 5 (aBIU cls update) consumes less receiver sP time than
  // approach 4 (per-chunk firmware).
  xfer::RunOptions opt;
  opt.consume = true;
  const auto r4 = harness.run(4, spec_for(8192, true), opt);
  const auto r5 = harness.run(5, spec_for(8192, true), opt);
  ASSERT_TRUE(r4.ok && r5.ok);
  EXPECT_LT(r5.receiver_sp_busy, r4.receiver_sp_busy);
}

class XferSizeSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(XferSizeSweep, AllApproachesCorrectAcrossSizes) {
  auto p = test::small_machine_params(2);
  p.node.enable_scoma = false;
  sys::Machine machine(p);
  xfer::BlockTransferHarness harness(machine);

  const std::uint32_t len = GetParam();
  for (int approach = 1; approach <= 5; ++approach) {
    xfer::TransferSpec s;
    s.src = 0x0010'0000;
    s.dst = approach >= 4 ? niu::kScomaBase + 0x4000 : 0x0020'0000;
    s.len = len;
    xfer::RunOptions opt;
    opt.consume = approach >= 4;
    auto res = harness.run(approach, s, opt);
    EXPECT_TRUE(res.ok) << "approach " << approach << " len " << len;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, XferSizeSweep,
                         ::testing::Values(64, 256, 1024, 4096, 12288));

}  // namespace
}  // namespace sv

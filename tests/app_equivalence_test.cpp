// The app runtime inherits the machine's tentpole guarantee: a World run
// at any thread count is bit-identical to the sequential run — same stats
// JSON (machine counters *and* app.* transport counters) to the last
// byte, same merged trace spans, same final time — for every shipped
// application over every transport. If these EXPECT_EQs break, rank
// programs have smuggled cross-domain state outside the mechanisms.
#include <string>

#include "tests/app_util.hpp"

namespace sv {
namespace {

constexpr std::size_t kTraceCapacity = 1u << 19;
const unsigned kThreadSweep[] = {1, 2, 4};
const std::uint64_t kSeeds[] = {1, 0xfeedbeef};

/// Derive a small per-seed parameter variation so both sweeps exercise
/// different traffic, not just a different label.
test::AppRunSpec make_spec(test::AppKind app, app::TransportKind tk,
                           std::uint64_t seed) {
  test::AppRunSpec spec;
  spec.app = app;
  spec.transport = tk;
  spec.nodes = 4;
  spec.trace_capacity = kTraceCapacity;
  switch (app) {
    case test::AppKind::kStencil:
      spec.stencil.nx = 8;
      spec.stencil.ny = 8 + (seed % 3);  // uneven row blocks on one seed
      spec.stencil.iters = 2;
      break;
    case test::AppKind::kAllreduce:
      spec.allreduce.min_elems = 4;
      spec.allreduce.max_elems = 16;
      spec.allreduce.iters = 1 + (seed % 2);
      break;
    case test::AppKind::kKv:
      spec.kv.requests = 8;
      spec.kv.seed = seed;
      break;
  }
  return spec;
}

void expect_bit_identical_across_threads(test::AppRunSpec spec) {
  spec.threads = 0;
  const test::AppRunResult seq = test::run_app_and_dump_stats(spec);
  ASSERT_TRUE(seq.completed);
  ASSERT_EQ(seq.trace_dropped, 0u)
      << "trace ring wrapped; grow kTraceCapacity so the comparison is "
         "complete";
  ASSERT_FALSE(seq.stats_json.empty());
  ASSERT_FALSE(seq.span_dump.empty());
  EXPECT_EQ(seq.app.errors, 0u);

  for (const unsigned threads : kThreadSweep) {
    spec.threads = threads;
    const test::AppRunResult par = test::run_app_and_dump_stats(spec);
    ASSERT_TRUE(par.completed) << "threads=" << threads;
    EXPECT_EQ(par.trace_dropped, 0u) << "threads=" << threads;
    EXPECT_EQ(par.end_time, seq.end_time) << "threads=" << threads;
    EXPECT_EQ(par.app.checksum, seq.app.checksum) << "threads=" << threads;
    EXPECT_EQ(par.app.ops, seq.app.ops) << "threads=" << threads;
    EXPECT_EQ(par.stats_json, seq.stats_json)
        << "stats diverged at threads=" << threads;
    EXPECT_EQ(par.span_dump, seq.span_dump)
        << "trace spans diverged at threads=" << threads;
  }
}

void sweep(test::AppKind app, app::TransportKind tk) {
  for (const auto seed : kSeeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    expect_bit_identical_across_threads(make_spec(app, tk, seed));
  }
}

TEST(AppEquivalence, StencilOverMsg) {
  sweep(test::AppKind::kStencil, app::TransportKind::kMsg);
}
TEST(AppEquivalence, StencilOverShm) {
  sweep(test::AppKind::kStencil, app::TransportKind::kShm);
}
TEST(AppEquivalence, StencilOverReliable) {
  sweep(test::AppKind::kStencil, app::TransportKind::kReliable);
}

TEST(AppEquivalence, AllreduceOverMsg) {
  sweep(test::AppKind::kAllreduce, app::TransportKind::kMsg);
}
TEST(AppEquivalence, AllreduceOverShm) {
  sweep(test::AppKind::kAllreduce, app::TransportKind::kShm);
}
TEST(AppEquivalence, AllreduceOverReliable) {
  sweep(test::AppKind::kAllreduce, app::TransportKind::kReliable);
}

TEST(AppEquivalence, KvOverMsg) {
  sweep(test::AppKind::kKv, app::TransportKind::kMsg);
}
TEST(AppEquivalence, KvOverShm) {
  sweep(test::AppKind::kKv, app::TransportKind::kShm);
}
TEST(AppEquivalence, KvOverReliable) {
  sweep(test::AppKind::kKv, app::TransportKind::kReliable);
}

// S-COMA-backed shared-memory transport: coherent cached stores instead
// of posted uncached ones — a different protocol mix under the same ring.
TEST(AppEquivalence, StencilOverScomaShm) {
  test::AppRunSpec spec = make_spec(test::AppKind::kStencil,
                                    app::TransportKind::kShm, 1);
  spec.shm_region = app::ShmTransport::Region::kScoma;
  expect_bit_identical_across_threads(spec);
}

// Untraced S-COMA run with the fastpath left at its default: tracing
// disables quantum batching, so only an untraced run exercises batching
// under concurrent cached-access programs (ranks + the shm dispatcher on
// one aP). Regression for a processor batch-record aliasing crash, plus a
// parity check: fastpath on and off must agree to the byte.
TEST(AppEquivalence, ScomaFastpathParityUntraced) {
  test::AppRunSpec spec = make_spec(test::AppKind::kStencil,
                                    app::TransportKind::kShm, 1);
  spec.shm_region = app::ShmTransport::Region::kScoma;
  spec.trace_capacity = 0;

  spec.fastpath = true;
  const test::AppRunResult fast = test::run_app_and_dump_stats(spec);
  ASSERT_TRUE(fast.completed);
  EXPECT_EQ(fast.app.errors, 0u);

  spec.fastpath = false;
  const test::AppRunResult slow = test::run_app_and_dump_stats(spec);
  ASSERT_TRUE(slow.completed);
  EXPECT_EQ(slow.end_time, fast.end_time);
  EXPECT_EQ(slow.app.checksum, fast.app.checksum);
  EXPECT_EQ(slow.app.ops, fast.app.ops);
  EXPECT_EQ(slow.stats_json, fast.stats_json)
      << "fastpath must be timing-invisible";
}

// A run that stops with a dispatcher poll mid-access dumps hit counters
// at the termination instant — which must not depend on whether the
// access was batched. Regression: the slow path used to count cache hits
// at the probe key while batch_commit counts at the completion key, so a
// drain ending inside that window dumped read_hits off by one (kv at 64
// requests over S-COMA is a configuration that landed there).
TEST(AppEquivalence, FastpathParityAtTerminationWindow) {
  test::AppRunSpec spec = make_spec(test::AppKind::kKv,
                                    app::TransportKind::kShm, 1);
  spec.shm_region = app::ShmTransport::Region::kScoma;
  spec.trace_capacity = 0;
  spec.kv.requests = 64;
  spec.kv.seed = 1;

  spec.fastpath = true;
  const test::AppRunResult fast = test::run_app_and_dump_stats(spec);
  ASSERT_TRUE(fast.completed);
  EXPECT_EQ(fast.app.errors, 0u);

  spec.fastpath = false;
  const test::AppRunResult slow = test::run_app_and_dump_stats(spec);
  ASSERT_TRUE(slow.completed);
  EXPECT_EQ(slow.end_time, fast.end_time);
  EXPECT_EQ(slow.app.checksum, fast.app.checksum);
  EXPECT_EQ(slow.stats_json, fast.stats_json)
      << "hit counters must be mode-invariant at any stopping point";
}

// Ranks oversubscribe nodes: local short-circuit delivery and remote
// frames interleave, and the interleaving must still be epoch-stable.
TEST(AppEquivalence, TwoRanksPerNodeStillIdentical) {
  test::AppRunSpec spec = make_spec(test::AppKind::kAllreduce,
                                    app::TransportKind::kMsg, 1);
  spec.nodes = 2;
  spec.nranks = 4;
  expect_bit_identical_across_threads(spec);
}

}  // namespace
}  // namespace sv

// The tentpole guarantee of the partitioned machine: a run at any thread
// count is *bit-identical* to the sequential run — the same stats JSON to
// the last byte and the same merged trace-span sequence — across
// workloads and fault seeds. This is the whole point of the deterministic
// (tick, source, sequence) mailbox rule; if any of these EXPECT_EQs break,
// parallel mode has silently become a different simulator.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tests/test_util.hpp"

namespace sv {
namespace {

constexpr std::size_t kTraceCapacity = 1u << 19;
const unsigned kThreadSweep[] = {1, 2, 4};
const std::uint64_t kSeeds[] = {sim::Rng::kDefaultSeed,
                                sim::Rng::kDefaultSeed + 1, 0xfeedbeef};

/// Run `spec` sequentially, then at each swept thread count, and require
/// byte-identical stats and span dumps. The spec's net must be kIdeal
/// (partitioning requires it) and its tracer must be big enough that
/// nothing is dropped — a wrapped ring would hide divergence.
void expect_bit_identical_across_threads(test::RunSpec spec) {
  spec.net = sys::Machine::NetKind::kIdeal;
  spec.trace_capacity = kTraceCapacity;

  spec.threads = 0;
  const test::RunResult seq = test::run_machine_and_dump_stats(spec);
  ASSERT_TRUE(seq.completed);
  ASSERT_EQ(seq.trace_dropped, 0u)
      << "trace ring wrapped; grow kTraceCapacity so the comparison is "
         "complete";
  ASSERT_FALSE(seq.stats_json.empty());
  ASSERT_FALSE(seq.span_dump.empty());

  for (const unsigned threads : kThreadSweep) {
    spec.threads = threads;
    const test::RunResult par = test::run_machine_and_dump_stats(spec);
    ASSERT_TRUE(par.completed) << "threads=" << threads;
    EXPECT_EQ(par.trace_dropped, 0u) << "threads=" << threads;
    EXPECT_EQ(par.end_time, seq.end_time) << "threads=" << threads;
    EXPECT_EQ(par.stats_json, seq.stats_json)
        << "stats diverged at threads=" << threads;
    EXPECT_EQ(par.span_dump, seq.span_dump)
        << "trace spans diverged at threads=" << threads;
  }
}

fault::Plan corrupt_only_plan(std::uint64_t seed) {
  // Corruption flips payload bytes but still delivers, so unreliable
  // workloads complete; the fault RNG streams and trace markers still get
  // exercised across domains.
  fault::Plan p;
  p.seed = seed;
  p.corrupt_rate = 0.05;
  return p;
}

fault::Plan lossy_plan(std::uint64_t seed) {
  fault::Plan p;
  p.seed = seed;
  p.drop_rate = 0.05;
  p.corrupt_rate = 0.05;
  p.rx_overflow_rate = 0.02;
  return p;
}

TEST(ParallelEquivalence, MsgAllToAllMatchesSequential) {
  for (const auto seed : kSeeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    test::RunSpec spec;
    spec.workload = test::Workload::kMsg;
    spec.nodes = 4;
    spec.count = 10;
    spec.bytes = 32;
    spec.fault = corrupt_only_plan(seed);
    expect_bit_identical_across_threads(spec);
  }
}

TEST(ParallelEquivalence, ScomaContentionMatchesSequential) {
  // No injector here: S-COMA protocol messages carry their command
  // structure in the packet payload, so corruption (the only fault that
  // unreliable traffic survives) would scramble the protocol itself. The
  // three seeds instead vary the access streams, which reshuffles every
  // coherence interleaving the epochs have to reproduce.
  for (const auto seed : kSeeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    test::RunSpec spec;
    spec.workload = test::Workload::kShm;
    spec.nodes = 4;
    spec.ops = 30;
    spec.seed = seed;
    expect_bit_identical_across_threads(spec);
  }
}

TEST(ParallelEquivalence, ReliableRingUnderLossMatchesSequential) {
  for (const auto seed : kSeeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    test::RunSpec spec;
    spec.workload = test::Workload::kReliable;
    spec.nodes = 4;
    spec.count = 8;
    spec.bytes = 48;
    spec.fault = lossy_plan(seed);
    // The completion predicate already requires balanced books; skip the
    // extra conservation drain, whose millisecond of retransmit-timer
    // traffic would need an enormous trace ring.
    spec.check_conservation = false;
    expect_bit_identical_across_threads(spec);
  }
}

TEST(ParallelEquivalence, FaultFreeMachineMatchesToo) {
  // No injector at all: the zero-fault fast path must be just as identical.
  test::RunSpec spec;
  spec.workload = test::Workload::kMsg;
  spec.nodes = 4;
  spec.count = 12;
  expect_bit_identical_across_threads(spec);
}

TEST(ParallelEquivalence, OversubscribedThreadsStillIdentical) {
  // More nodes than workers: each worker runs several domains; results
  // must not change (ParallelKernel clamps and stripes deterministically,
  // but the *simulation output* must be stripe-agnostic).
  test::RunSpec spec;
  spec.workload = test::Workload::kMsg;
  spec.nodes = 6;
  spec.count = 6;
  expect_bit_identical_across_threads(spec);
}

}  // namespace
}  // namespace sv

// Shared helpers for the app-runtime tests: build a machine, run one of
// the shipped applications over a chosen transport, and dump a combined
// machine+app stats JSON — the app-level analogue of
// run_machine_and_dump_stats (test_util.hpp), with the same determinism
// contract: one AppRunSpec produces a byte-identical AppRunResult at
// every threads= value.
#pragma once

#include "app/apps.hpp"
#include "test_util.hpp"

namespace sv::test {

enum class AppKind { kStencil, kAllreduce, kKv };

inline const char* app_name(AppKind k) {
  switch (k) {
    case AppKind::kStencil:
      return "stencil";
    case AppKind::kAllreduce:
      return "allreduce";
    case AppKind::kKv:
      return "kv";
  }
  return "?";
}

struct AppRunSpec {
  AppKind app = AppKind::kStencil;
  app::TransportKind transport = app::TransportKind::kMsg;
  std::size_t nodes = 4;
  std::size_t nranks = 0;  ///< 0 = one per node
  unsigned threads = 0;
  fault::Plan fault;
  bool fastpath = sim::fastpath_default();
  app::ShmTransport::Region shm_region = app::ShmTransport::Region::kNuma;
  msg::ReliableChannel::Params reliable;

  app::StencilParams stencil;
  app::AllreduceParams allreduce;
  app::KvParams kv;

  std::size_t trace_capacity = 0;
  sim::Tick deadline = 2000 * sim::kMillisecond;
  bool check_conservation = true;
};

struct AppRunResult {
  bool completed = false;
  sim::Tick end_time = 0;
  std::string stats_json;  ///< machine stats + app.* counters, one object
  std::string span_dump;
  std::uint64_t trace_dropped = 0;
  app::AppResult app;
};

inline app::World::Program make_app_program(const AppRunSpec& spec,
                                            app::AppResult* out) {
  switch (spec.app) {
    case AppKind::kStencil:
      return app::make_stencil(spec.stencil, out);
    case AppKind::kAllreduce:
      return app::make_allreduce_sweep(spec.allreduce, out);
    case AppKind::kKv:
      return app::make_kv(spec.kv, out);
  }
  return {};
}

inline AppRunResult run_app_and_dump_stats(const AppRunSpec& spec) {
  auto mp = small_machine_params(spec.nodes, sys::Machine::NetKind::kIdeal);
  mp.threads = spec.threads;
  mp.fault = spec.fault;
  mp.node.bus.fastpath = spec.fastpath;
  mp.node.ap.fastpath = spec.fastpath;
  mp.node.sp.fastpath = spec.fastpath;
  sys::Machine machine(mp);
  if (spec.trace_capacity > 0) {
    machine.enable_tracing(spec.trace_capacity);
  }

  app::World::Params wp;
  wp.nranks = spec.nranks;
  wp.transport = spec.transport;
  wp.shm_region = spec.shm_region;
  wp.reliable = spec.reliable;
  app::World world(machine, wp);

  AppRunResult res;
  world.launch(make_app_program(spec, &res.app));

  res.completed = sys::run_until(machine, [&] { return world.done(); },
                                 machine.now() + spec.deadline);
  EXPECT_TRUE(res.completed)
      << app_name(spec.app) << " timed out at " << machine.now() << " ps";
  if (spec.check_conservation && res.completed) {
    expect_network_conserves(machine);
  }

  res.end_time = machine.now();
  auto reg = sys::collect_stats(machine);
  world.add_stats(reg);
  std::ostringstream os;
  reg.dump_json(os);
  res.stats_json = os.str();
  if (spec.trace_capacity > 0) {
    const auto trs = machine.tracers();
    for (const auto* t : trs) {
      res.trace_dropped += t->dropped();
    }
    res.span_dump = trace::canonical_span_dump(trs);
  }
  return res;
}

}  // namespace sv::test

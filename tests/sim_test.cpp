// Unit tests for the simulation kernel: event ordering, coroutines,
#include <bit>
#include <sstream>
// synchronization primitives, statistics, configuration, PRNG.
#include <gtest/gtest.h>

#include "sim/config.hpp"
#include "sim/coro.hpp"
#include "sim/kernel.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"

namespace sv::sim {
namespace {

TEST(EventQueue, OrdersByTimeThenSequence) {
  EventQueue q;
  std::vector<int> order;
  q.push(20, [&] { order.push_back(2); });
  q.push(10, [&] { order.push_back(0); });
  q.push(10, [&] { order.push_back(1); });
  while (!q.empty()) {
    q.pop().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, EqualTickFifoAcrossWheelAndHeap) {
  // Two events at the same tick, one scheduled while the tick was beyond
  // the wheel horizon (heap) and one after it came inside (wheel), must
  // still pop in insertion order — the (tick, seq) key spans both levels.
  EventQueue q;
  std::vector<int> order;
  const Tick t = EventQueue::kHorizonTicks + 100;
  q.push(t, [&] { order.push_back(0); });      // beyond horizon: heap
  q.push(1, [&] { order.push_back(-1); });
  EXPECT_EQ(q.pop().when, 1u);                 // floor advances past 1
  order.clear();
  q.push(t, [&] { order.push_back(1); });      // still beyond: heap
  q.advance(200);                              // t now inside the window
  q.push(t, [&] { order.push_back(2); });      // wheel
  q.push(t, [&] { order.push_back(3); });      // wheel
  while (!q.empty()) {
    EXPECT_EQ(q.next_time(), t);
    q.pop().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, WheelRolloverPastHorizon) {
  // March a self-rescheduling chain far enough that every wheel bucket is
  // reused several times; ordering must hold across every wrap.
  EventQueue q;
  constexpr Tick kStep = EventQueue::kHorizonTicks / 3 + 7;
  Tick last = 0;
  std::uint64_t fired = 0;
  struct Chain {
    EventQueue* q;
    Tick* last;
    std::uint64_t* fired;
    Tick at;
    void operator()() const {
      EXPECT_GE(at, *last);
      *last = at;
      ++*fired;
      if (*fired < 64) {
        q->push(at + kStep, Chain{q, last, fired, at + kStep});
      }
    }
  };
  q.push(kStep, Chain{&q, &last, &fired, kStep});
  while (!q.empty()) {
    auto p = q.pop();
    q.advance(p.when);
    p.fn();
  }
  EXPECT_EQ(fired, 64u);
  EXPECT_EQ(last, 64 * kStep);  // > 20 horizons: many full revolutions
}

TEST(EventQueue, FarFutureEventsStayOrdered) {
  // Events far beyond the horizon (heap residents) interleaved with near
  // ones; pops must come out in global (tick, seq) order.
  EventQueue q;
  std::vector<Tick> pops;
  for (Tick t : {EventQueue::kHorizonTicks * 5, Tick{3},
                 EventQueue::kHorizonTicks * 2, Tick{50},
                 EventQueue::kHorizonTicks + 1}) {
    q.push(t, [] {});
    pops.push_back(t);
  }
  std::sort(pops.begin(), pops.end());
  for (const Tick expect : pops) {
    ASSERT_FALSE(q.empty());
    EXPECT_EQ(q.next_time(), expect);
    auto p = q.pop();
    EXPECT_EQ(p.when, expect);
    q.advance(p.when);
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, OutOfOrderBurstIntoOneBucketPopsSorted) {
  // 64 events pushed in scrambled time order into one 16-tick bucket:
  // exercises the lazy tail sort, including the large-bucket key-sort
  // path, and same-tick FIFO within the sorted bucket.
  EventQueue q;
  constexpr int kN = 64;
  std::vector<int> order;
  for (int i = 0; i < kN; ++i) {
    const Tick t = 1 + static_cast<Tick>((kN - 1 - i) % 13);
    q.push(t, [&order, i] { order.push_back(i); });
  }
  Tick prev = 0;
  while (!q.empty()) {
    auto p = q.pop();
    EXPECT_GE(p.when, prev);
    prev = p.when;
    p.fn();
  }
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kN));
  // Same-tick events (same value of (kN-1-i) % 13) must pop in push order.
  for (std::size_t j = 1; j < order.size(); ++j) {
    if ((kN - 1 - order[j]) % 13 == (kN - 1 - order[j - 1]) % 13) {
      EXPECT_LT(order[j - 1], order[j]);
    }
  }
}

TEST(EventQueue, TryPopRespectsBound) {
  EventQueue q;
  q.push(100, [] {});
  auto none = q.try_pop(99);
  EXPECT_EQ(none.when, kTickInvalid);
  EXPECT_FALSE(static_cast<bool>(none.fn));
  EXPECT_EQ(q.size(), 1u);  // declined pop leaves the queue intact
  auto got = q.try_pop(100);
  EXPECT_EQ(got.when, 100u);
  EXPECT_TRUE(static_cast<bool>(got.fn));
  EXPECT_TRUE(q.empty());
}

TEST(Kernel, AdvancesTimeMonotonically) {
  Kernel k;
  std::vector<Tick> times;
  k.schedule(100, [&] { times.push_back(k.now()); });
  k.schedule(50, [&] { times.push_back(k.now()); });
  k.schedule(50, [&] { k.schedule(25, [&] { times.push_back(k.now()); }); });
  k.run();
  EXPECT_EQ(times, (std::vector<Tick>{50, 75, 100}));
}

TEST(Kernel, RunUntilStopsAtBoundary) {
  Kernel k;
  int fired = 0;
  k.schedule(10, [&] { ++fired; });
  k.schedule(20, [&] { ++fired; });
  k.run_until(15);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(k.now(), 15u);
  k.run();
  EXPECT_EQ(fired, 2);
}

TEST(Kernel, ZeroDelayRunsAfterCurrentEvent) {
  Kernel k;
  std::vector<int> order;
  k.schedule(10, [&] {
    order.push_back(0);
    k.schedule(0, [&] { order.push_back(2); });
    order.push_back(1);
  });
  k.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(k.now(), 10u);
}

TEST(Kernel, EventLimitThrows) {
  Kernel k;
  k.set_event_limit(10);
  std::function<void()> loop = [&] { k.schedule(1, loop); };
  k.schedule(1, loop);
  EXPECT_THROW(k.run(), std::runtime_error);
}

TEST(Kernel, EventLimitIsPerRun) {
  // The budget is per run()/run_until() call: a limit that each individual
  // run stays under must never trip across runs. (This regressed once —
  // the counter was cumulative, so enough short runs eventually threw.)
  Kernel k;
  k.set_event_limit(10);
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 8; ++i) {
      k.schedule(1, [] {});
    }
    EXPECT_NO_THROW(k.run());
  }
  EXPECT_EQ(k.events_executed(), 40u);

  // And run_until budgets the same way.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 8; ++i) {
      k.schedule(1, [] {});
    }
    EXPECT_NO_THROW(k.run_until(k.now() + 10));
  }
}

TEST(Kernel, SchedulePastThrows) {
  Kernel k;
  k.schedule(10, [] {});
  k.run();
  EXPECT_THROW(k.schedule_abs(5, [] {}), std::logic_error);
}

TEST(Kernel, ScheduleAbsAtNowRunsThisInstant) {
  // when == now() is valid: the event runs after currently-queued work at
  // the same timestamp, exactly like schedule(0, ...).
  Kernel k;
  std::vector<int> order;
  k.schedule(10, [&] {
    order.push_back(0);
    k.schedule_abs(k.now(), [&] { order.push_back(1); });
  });
  k.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_EQ(k.now(), 10u);
}

TEST(Kernel, MailboxOrdersByTickSourceSequence) {
  // post() arrival order is scrambled on purpose; delivery must follow the
  // (when, src, seq) key alone.
  Kernel k;
  std::vector<int> order;
  k.post(20, /*src=*/1, /*seq=*/2, [&] { order.push_back(3); });
  k.post(10, /*src=*/2, /*seq=*/1, [&] { order.push_back(2); });
  k.post(10, /*src=*/0, /*seq=*/9, [&] { order.push_back(0); });
  k.post(10, /*src=*/1, /*seq=*/5, [&] { order.push_back(1); });
  k.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(k.now(), 20u);
}

TEST(Kernel, MailboxInjectsAfterQueuedBeforeScheduledDuring) {
  // At its tick, a mailbox message runs after every event that was already
  // queued there, but before anything those events schedule for the same
  // tick — the injection point is where the destination's clock first
  // reaches the tick.
  Kernel k;
  std::vector<int> order;
  k.schedule(10, [&] {
    order.push_back(0);
    k.schedule(0, [&] { order.push_back(2); });
  });
  k.post(10, 0, 1, [&] { order.push_back(1); });
  k.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Kernel, DeferredMailboxInvisibleUntilCommit) {
  Kernel k;
  bool fired = false;
  k.set_deferred_mailbox(true);
  k.post(10, 0, 1, [&] { fired = true; });
  EXPECT_TRUE(k.idle());  // staged messages are not pending work yet
  k.run();
  EXPECT_FALSE(fired);
  k.commit_mailbox();
  EXPECT_FALSE(k.idle());
  EXPECT_EQ(k.next_event_time(), 10u);
  k.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(k.now(), 10u);
}

TEST(Clock, CycleConversions) {
  Clock c(15000);  // 66.67 MHz
  EXPECT_EQ(c.to_ticks(4), 60000u);
  EXPECT_EQ(c.to_cycles(60000), 4u);
  EXPECT_EQ(c.until_next_edge(0), 0u);
  EXPECT_EQ(c.until_next_edge(1), 14999u);
  EXPECT_EQ(c.until_next_edge(15000), 0u);
  EXPECT_NEAR(c.mhz(), 66.67, 0.01);
}

TEST(Coro, DelayResumesAtRightTime) {
  Kernel k;
  Tick seen = 0;
  spawn([](Kernel* kp, Tick* out) -> Co<void> {
    co_await delay(*kp, 123);
    *out = kp->now();
  }(&k, &seen));
  k.run();
  EXPECT_EQ(seen, 123u);
}

TEST(Coro, NestedAwaitPropagatesValues) {
  Kernel k;
  int result = 0;
  spawn([](Kernel* kp, int* out) -> Co<void> {
    auto inner = [](Kernel* kk) -> Co<int> {
      co_await delay(*kk, 5);
      co_return 21;
    };
    const int a = co_await inner(kp);
    const int b = co_await inner(kp);
    *out = a + b;
  }(&k, &result));
  k.run();
  EXPECT_EQ(result, 42);
  EXPECT_EQ(k.now(), 10u);
}

TEST(Coro, ExceptionPropagatesThroughCo) {
  Kernel k;
  bool caught = false;
  spawn([](Kernel* kp, bool* flag) -> Co<void> {
    auto bad = [](Kernel* kk) -> Co<void> {
      co_await delay(*kk, 1);
      throw std::runtime_error("boom");
    };
    try {
      co_await bad(kp);
    } catch (const std::runtime_error&) {
      *flag = true;
    }
  }(&k, &caught));
  k.run();
  EXPECT_TRUE(caught);
}

TEST(OneShot, WakesAllWaitersAndStaysFired) {
  Kernel k;
  OneShot ev(k);
  int woken = 0;
  for (int i = 0; i < 3; ++i) {
    spawn([](OneShot* e, int* n) -> Co<void> {
      co_await *e;
      ++*n;
    }(&ev, &woken));
  }
  k.schedule(10, [&] { ev.fire(); });
  k.run();
  EXPECT_EQ(woken, 3);
  // Late waiter resumes immediately.
  spawn([](OneShot* e, int* n) -> Co<void> {
    co_await *e;
    ++*n;
  }(&ev, &woken));
  k.run();
  EXPECT_EQ(woken, 4);
}

TEST(Signal, OnlyWakesCurrentWaiters) {
  Kernel k;
  Signal sig(k);
  int woken = 0;
  spawn([](Signal* s, int* n) -> Co<void> {
    co_await *s;
    ++*n;
    co_await *s;
    ++*n;
  }(&sig, &woken));
  k.schedule(10, [&] { sig.pulse(); });
  k.run();
  EXPECT_EQ(woken, 1);  // second wait needs a second pulse
  k.schedule(10, [&] { sig.pulse(); });
  k.run();
  EXPECT_EQ(woken, 2);
}

TEST(Signal, UntilChecksPredicateOnEveryPulse) {
  Kernel k;
  Signal sig(k);
  int x = 0;
  bool done = false;
  spawn([](Signal* s, int* xp, bool* d) -> Co<void> {
    co_await s->until([xp] { return *xp >= 3; });
    *d = true;
  }(&sig, &x, &done));
  for (Tick t = 1; t <= 5; ++t) {
    k.schedule(t * 10, [&] {
      ++x;
      sig.pulse();
    });
  }
  k.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(x, 5);
}

TEST(Future, DeliversValueToMultipleConsumers) {
  Kernel k;
  Promise<int> p(k);
  int sum = 0;
  for (int i = 0; i < 2; ++i) {
    spawn([](Future<int> f, int* out) -> Co<void> {
      *out += co_await f.get();
    }(p.get_future(), &sum));
  }
  k.schedule(5, [&] { p.set_value(21); });
  k.run();
  EXPECT_EQ(sum, 42);
}

TEST(Channel, FifoOrderAndDirectHandoff) {
  Kernel k;
  Channel<int> ch(k);
  std::vector<int> got;
  spawn([](Channel<int>* c, std::vector<int>* out) -> Co<void> {
    for (int i = 0; i < 4; ++i) {
      out->push_back(co_await c->pop());
    }
  }(&ch, &got));
  ch.push(1);
  ch.push(2);
  k.schedule(10, [&] { ch.push(3); });
  k.schedule(20, [&] { ch.push(4); });
  k.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3, 4}));
}

TEST(Channel, TryPopDoesNotStealFromWaiters) {
  Kernel k;
  Channel<int> ch(k);
  int got = -1;
  spawn([](Channel<int>* c, int* out) -> Co<void> {
    *out = co_await c->pop();
  }(&ch, &got));
  k.run();
  ch.push(7);
  // The waiter owns the item even before it resumes.
  EXPECT_FALSE(ch.try_pop().has_value());
  k.run();
  EXPECT_EQ(got, 7);
}

TEST(Semaphore, MutualExclusionAndFifoWakeup) {
  Kernel k;
  Semaphore sem(k, 1);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    spawn([](Kernel* kp, Semaphore* s, std::vector<int>* out,
             int id) -> Co<void> {
      co_await s->acquire();
      out->push_back(id);
      co_await delay(*kp, 10);
      s->release();
    }(&k, &sem, &order, i));
  }
  k.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(k.now(), 30u);
  EXPECT_EQ(sem.available(), 1u);
}

TEST(Stats, AccumulatorAndHistogram) {
  Accumulator a;
  a.sample(1.0);
  a.sample(3.0);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 3.0);

  Histogram h;
  h.sample(1);
  h.sample(2);
  h.sample(1000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_GE(h.percentile(100), 1000u);
}

TEST(Stats, HistogramPercentileEdges) {
  Histogram empty;
  EXPECT_EQ(empty.percentile(0), 0u);
  EXPECT_EQ(empty.percentile(50), 0u);
  EXPECT_EQ(empty.percentile(100), 0u);

  Histogram h;
  h.sample(2);
  h.sample(1000);
  EXPECT_EQ(h.percentile(0), 2u);     // p=0 is the minimum
  EXPECT_EQ(h.percentile(-5), 2u);    // out-of-range p clamps
  EXPECT_EQ(h.percentile(100), 1000u);
  EXPECT_EQ(h.percentile(200), 1000u);

  // A single exact value must round-trip at every percentile, not be
  // rounded up to its bucket's power-of-two boundary.
  Histogram one;
  one.sample(1000);
  EXPECT_EQ(one.percentile(50), 1000u);
  EXPECT_EQ(one.percentile(100), 1000u);
}

TEST(Stats, RegistryDumpJson) {
  StatRegistry reg;
  reg.set("a.b", 1.5);
  reg.set("c", 3);
  std::ostringstream os;
  reg.dump_json(os);
  EXPECT_EQ(os.str(), "{\n  \"a.b\": 1.5,\n  \"c\": 3\n}\n");
}

TEST(Stats, RegistryShardedDumpMatchesUnsharded) {
  // Whatever the split between shards and direct set() calls, and whatever
  // the append order, dump_json must emit the same canonical bytes as an
  // unsharded registry holding the same final values.
  StatRegistry plain;
  plain.set("a", 1);
  plain.set("m.x", 2);
  plain.set("n0.z", 3);
  plain.set("n1.q", 4);
  std::ostringstream want;
  plain.dump_json(want);

  StatRegistry sharded;
  StatRegistry::Shard& s0 = sharded.open_shard();
  StatRegistry::Shard& s1 = sharded.open_shard();
  s1.set("n1.q", 4);  // out of name order, across shards
  s0.set("n0.z", 3);
  sharded.set("m.x", 2);
  s0.set("a", 1);
  std::ostringstream got;
  sharded.dump_json(got);
  EXPECT_EQ(got.str(), want.str());

  // dump() agrees on ordering too.
  std::ostringstream plain_txt;
  std::ostringstream sharded_txt;
  plain.dump(plain_txt);
  sharded.dump(sharded_txt);
  EXPECT_EQ(sharded_txt.str(), plain_txt.str());
}

TEST(Stats, RegistryShardDuplicateResolution) {
  // Overlay set() beats shards; among shard writes the last wins.
  StatRegistry reg;
  StatRegistry::Shard& s0 = reg.open_shard();
  StatRegistry::Shard& s1 = reg.open_shard();
  s0.set("dup.shards", 1);
  s1.set("dup.shards", 2);  // later shard wins
  s0.set("dup.overlay", 10);
  reg.set("dup.overlay", 20);  // overlay wins regardless of timing
  std::ostringstream os;
  reg.dump_json(os);
  EXPECT_EQ(os.str(),
            "{\n  \"dup.overlay\": 20,\n  \"dup.shards\": 2\n}\n");
  // Lookups materialize to the same resolution as the dump.
  EXPECT_DOUBLE_EQ(reg.get("dup.shards"), 2);
  EXPECT_DOUBLE_EQ(reg.get("dup.overlay"), 20);
}

TEST(Stats, RegistryShardMaterializesForLookups) {
  StatRegistry reg;
  StatRegistry::Shard& sh = reg.open_shard();
  sh.set("lazy", 5);
  EXPECT_TRUE(reg.contains("lazy"));
  EXPECT_DOUBLE_EQ(reg.get("lazy"), 5);
  reg.add("lazy", 1.5);
  EXPECT_DOUBLE_EQ(reg.get("lazy"), 6.5);
  EXPECT_EQ(reg.all().count("lazy"), 1u);
  // Dump after materialization still emits the merged value once.
  std::ostringstream os;
  reg.dump_json(os);
  EXPECT_EQ(os.str(), "{\n  \"lazy\": 6.5\n}\n");
}

TEST(Stats, BusyTrackerOccupancy) {
  BusyTracker b;
  b.add_busy(25);
  b.add_busy(25);
  EXPECT_DOUBLE_EQ(b.occupancy(100), 0.5);
  EXPECT_DOUBLE_EQ(b.occupancy(0), 0.0);
}

TEST(Config, TypedAccessAndParsing) {
  auto cfg = Config::from_args({"a=1", "b=2.5", "c=true", "d=hello"});
  EXPECT_EQ(cfg.get_u64("a", 0), 1u);
  EXPECT_DOUBLE_EQ(cfg.get_double("b", 0), 2.5);
  EXPECT_TRUE(cfg.get_bool("c", false));
  EXPECT_EQ(cfg.get_string("d"), "hello");
  EXPECT_EQ(cfg.get_u64("missing", 42), 42u);
  EXPECT_THROW(Config::from_args({"novalue"}), std::invalid_argument);
  EXPECT_THROW((void)Config::from_args({"x=maybe"}).get_bool("x", false),
               std::invalid_argument);
}

TEST(Config, MergeOverrides) {
  Config base;
  base.set_u64("a", 1);
  base.set_u64("b", 2);
  Config over;
  over.set_u64("b", 3);
  base.merge(over);
  EXPECT_EQ(base.get_u64("a", 0), 1u);
  EXPECT_EQ(base.get_u64("b", 0), 3u);
}

TEST(Rng, DeterministicAndUniform) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  Rng c(43);
  EXPECT_NE(a.next(), c.next());

  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.range(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

class HistogramBucketTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HistogramBucketTest, SampleLandsInCorrectBucket) {
  Histogram h;
  const std::uint64_t v = GetParam();
  h.sample(v);
  // Bucket i covers (2^(i-1), 2^i]; bucket 0 covers 0..1.
  const std::size_t expected =
      v <= 1 ? 0 : static_cast<std::size_t>(std::bit_width(v - 1));
  const auto& b = h.buckets();
  ASSERT_GT(b.size(), expected);
  EXPECT_EQ(b[expected], 1u);
  std::uint64_t total = 0;
  for (const auto count : b) {
    total += count;
  }
  EXPECT_EQ(total, 1u);
}

INSTANTIATE_TEST_SUITE_P(Powers, HistogramBucketTest,
                         ::testing::Values(0, 1, 2, 3, 4, 7, 8, 9, 1023,
                                           1024, 1025, 1u << 20));

}  // namespace
}  // namespace sv::sim

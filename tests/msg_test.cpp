// Message-library tests beyond the endpoint basics: Channel edge cases
// (tag matching, interleaved sources, empty payloads), dual endpoints per
// node (multitasking), interrupt-driven receive, and express flow control.
#include <gtest/gtest.h>

#include <cstring>

#include "msg/channel.hpp"
#include "tests/test_util.hpp"

namespace sv {
namespace {

class MsgTest : public ::testing::Test {
 protected:
  MsgTest() : machine(test::small_machine_params(2)) {}

  void drive_until(const std::function<bool()>& pred,
                   sim::Tick timeout = 500 * sim::kMillisecond) {
    test::drive(machine.kernel(), pred, timeout);
  }

  sys::Machine machine;
};

TEST_F(MsgTest, ChannelTagMatchingBuffersOutOfOrder) {
  auto ep0 = machine.node(0).make_endpoint();
  auto ep1 = machine.node(1).make_endpoint();
  const auto map = machine.addr_map();
  bool done = false;

  machine.node(0).ap().run(
      [](msg::Endpoint* ep, msg::AddressMap map) -> sim::Co<void> {
        msg::Channel ch(*ep, map, 0);
        co_await ch.send_value<std::uint32_t>(1, /*tag=*/10, 100);
        co_await ch.send_value<std::uint32_t>(1, /*tag=*/20, 200);
        co_await ch.send_value<std::uint32_t>(1, /*tag=*/30, 300);
      }(&ep0, map));
  machine.node(1).ap().run(
      [](msg::Endpoint* ep, msg::AddressMap map, bool* d) -> sim::Co<void> {
        msg::Channel ch(*ep, map, 1);
        // Receive in the *reverse* tag order: earlier messages buffer.
        EXPECT_EQ((co_await ch.recv_value<std::uint32_t>(0, 30)), 300u);
        EXPECT_EQ((co_await ch.recv_value<std::uint32_t>(0, 20)), 200u);
        EXPECT_EQ((co_await ch.recv_value<std::uint32_t>(0, 10)), 100u);
        *d = true;
      }(&ep1, map, &done));
  drive_until([&] { return done; });
}

TEST_F(MsgTest, ChannelEmptyPayload) {
  auto ep0 = machine.node(0).make_endpoint();
  auto ep1 = machine.node(1).make_endpoint();
  const auto map = machine.addr_map();
  bool done = false;

  machine.node(0).ap().run(
      [](msg::Endpoint* ep, msg::AddressMap map) -> sim::Co<void> {
        msg::Channel ch(*ep, map, 0);
        co_await ch.send(1, /*tag=*/5, {});
      }(&ep0, map));
  machine.node(1).ap().run(
      [](msg::Endpoint* ep, msg::AddressMap map, bool* d) -> sim::Co<void> {
        msg::Channel ch(*ep, map, 1);
        auto data = co_await ch.recv(0, 5);
        EXPECT_TRUE(data.empty());
        *d = true;
      }(&ep1, map, &done));
  drive_until([&] { return done; });
}

TEST_F(MsgTest, ChannelExactFragmentBoundary) {
  auto ep0 = machine.node(0).make_endpoint();
  auto ep1 = machine.node(1).make_endpoint();
  const auto map = machine.addr_map();
  // 80 bytes of fragment data per Basic message: test exactly 1x and 2x.
  for (const std::size_t size : {80u, 160u, 161u}) {
    auto data = test::pattern_bytes(size, static_cast<std::uint8_t>(size));
    bool done = false;
    machine.node(0).ap().run(
        [](msg::Endpoint* ep, msg::AddressMap map,
           const std::vector<std::byte>* d) -> sim::Co<void> {
          msg::Channel ch(*ep, map, 0);
          co_await ch.send(1, 1, *d);
        }(&ep0, map, &data));
    machine.node(1).ap().run(
        [](msg::Endpoint* ep, msg::AddressMap map,
           const std::vector<std::byte>* want, bool* d) -> sim::Co<void> {
          msg::Channel ch(*ep, map, 1);
          auto got = co_await ch.recv(0, 1);
          EXPECT_EQ(got, *want);
          *d = true;
        }(&ep1, map, &data, &done));
    drive_until([&] { return done; });
  }
}

TEST_F(MsgTest, TwoJobsShareOneNiuWithoutInterference) {
  // Job A uses the user0 endpoints, job B the user1 endpoints, running
  // concurrently on the same pair of nodes.
  auto a0 = machine.node(0).make_endpoint();
  auto a1 = machine.node(1).make_endpoint();
  auto b0 = machine.node(0).make_endpoint1();
  auto b1 = machine.node(1).make_endpoint1();
  const auto map = machine.addr_map();

  int done = 0;
  bool ok = true;
  constexpr int kCount = 40;

  // Job A: node 0 -> node 1 stream on user0.
  machine.node(0).ap().run(
      [](msg::Endpoint* ep, std::uint16_t vdest) -> sim::Co<void> {
        for (std::uint32_t i = 0; i < kCount; ++i) {
          std::byte b[4];
          std::memcpy(b, &i, 4);
          co_await ep->send(vdest, b);
        }
      }(&a0, map.user0(1)));
  machine.node(1).ap().run(
      [](msg::Endpoint* ep, int* d, bool* ok_) -> sim::Co<void> {
        for (std::uint32_t i = 0; i < kCount; ++i) {
          msg::Message m = co_await ep->recv();
          std::uint32_t seq = 0;
          std::memcpy(&seq, m.data.data(), 4);
          if (seq != i || m.logical != msg::AddressMap::kUser0L) {
            *ok_ = false;
          }
        }
        ++*d;
      }(&a1, &done, &ok));

  // Job B: node 1 -> node 0 stream on user1, simultaneously.
  machine.node(1).ap().run(
      [](msg::Endpoint* ep, std::uint16_t vdest) -> sim::Co<void> {
        for (std::uint32_t i = 0; i < kCount; ++i) {
          std::byte b[4];
          const std::uint32_t v = i + 1000;
          std::memcpy(b, &v, 4);
          co_await ep->send(vdest, b);
        }
      }(&b1, map.user1(0)));
  machine.node(0).ap().run(
      [](msg::Endpoint* ep, int* d, bool* ok_) -> sim::Co<void> {
        for (std::uint32_t i = 0; i < kCount; ++i) {
          msg::Message m = co_await ep->recv();
          std::uint32_t seq = 0;
          std::memcpy(&seq, m.data.data(), 4);
          if (seq != i + 1000 || m.logical != msg::AddressMap::kUser1L) {
            *ok_ = false;
          }
        }
        ++*d;
      }(&b0, &done, &ok));

  drive_until([&] { return done == 2; });
  EXPECT_TRUE(ok);
}

TEST_F(MsgTest, InterruptDrivenReceive) {
  auto ep0 = machine.node(0).make_endpoint();
  auto ep1 = machine.node(1).make_endpoint();
  const auto map = machine.addr_map();
  bool done = false;

  // The receiver sleeps on the arrival interrupt; the sender fires after
  // a long idle period. The receiver's aP busy time must be far below the
  // elapsed time (it slept instead of polling).
  machine.node(1).ap().run(
      [](msg::Endpoint* ep, bool* d) -> sim::Co<void> {
        msg::Message m = co_await ep->recv_interrupt();
        EXPECT_EQ(m.data.size(), 8u);
        *d = true;
      }(&ep1, &done));
  machine.node(0).ap().run(
      [](msg::Endpoint* ep, sim::Kernel* k,
         std::uint16_t vdest) -> sim::Co<void> {
        co_await sim::delay(*k, 200 * sim::kMicrosecond);  // receiver idles
        co_await ep->send(vdest, test::pattern_bytes(8));
      }(&ep0, &machine.kernel(), map.user0(1)));
  drive_until([&] { return done; });

  EXPECT_GT(machine.kernel().now(), 200 * sim::kMicrosecond);
  // Receiver slept through the idle window.
  EXPECT_LT(machine.node(1).ap().busy(), 50 * sim::kMicrosecond);
}

TEST_F(MsgTest, ExpressFlowControlAcrossQueueWrap) {
  auto ep0 = machine.node(0).make_endpoint();
  auto ep1 = machine.node(1).make_endpoint();
  const auto map = machine.addr_map();
  constexpr int kCount = 300;  // > 128 express slots: wraps + flow control
  int received = 0;
  bool ordered = true;

  machine.node(0).ap().run(
      [](msg::Endpoint* ep, std::uint8_t vdest) -> sim::Co<void> {
        for (std::uint32_t i = 0; i < kCount; ++i) {
          co_await ep->send_express(vdest, static_cast<std::uint8_t>(i),
                                    i);
        }
      }(&ep0, static_cast<std::uint8_t>(map.express(1))));
  machine.node(1).ap().run(
      [](msg::Endpoint* ep, int* n, bool* ok) -> sim::Co<void> {
        for (std::uint32_t i = 0; i < kCount; ++i) {
          msg::ExpressMessage m = co_await ep->recv_express();
          if (m.word != i ||
              m.extra != static_cast<std::uint8_t>(i)) {
            *ok = false;
          }
          ++*n;
        }
      }(&ep1, &received, &ordered));
  drive_until([&] { return received == kCount; });
  EXPECT_TRUE(ordered);
}

TEST_F(MsgTest, EndpointRejectsOversizedSend) {
  auto ep0 = machine.node(0).make_endpoint();
  bool threw = false;
  machine.node(0).ap().run(
      [](msg::Endpoint* ep, bool* t) -> sim::Co<void> {
        try {
          co_await ep->send(0, std::vector<std::byte>(89));
        } catch (const std::invalid_argument&) {
          *t = true;
        }
      }(&ep0, &threw));
  drive_until([&] { return threw; });
}

TEST_F(MsgTest, RecvInterruptWithoutWiringThrows) {
  msg::Endpoint::Config cfg = machine.node(0).endpoint_config();
  cfg.arrival = nullptr;
  msg::Endpoint ep(machine.node(0).ap(), cfg);
  bool threw = false;
  machine.node(0).ap().run(
      [](msg::Endpoint* e, bool* t) -> sim::Co<void> {
        try {
          (void)co_await e->recv_interrupt();
        } catch (const std::logic_error&) {
          *t = true;
        }
      }(&ep, &threw));
  drive_until([&] { return threw; });
}

}  // namespace
}  // namespace sv

// System-harness tests: the experiment helpers (run_until, run_programs,
// Table formatting) and machine-wide statistics collection.
#include <gtest/gtest.h>

#include <sstream>

#include "sys/stats_dump.hpp"
#include "tests/test_util.hpp"

namespace sv::sys {
namespace {

TEST(ExperimentTest, RunUntilHonorsDeadline) {
  sim::Kernel kernel;
  bool flag = false;
  kernel.schedule(100, [&] { flag = true; });
  EXPECT_FALSE(run_until(kernel, [&] { return flag; }, 50));
  EXPECT_TRUE(run_until(kernel, [&] { return flag; }, 200));
}

TEST(ExperimentTest, RunUntilReturnsFalseOnIdleKernel) {
  sim::Kernel kernel;
  bool never = false;
  EXPECT_FALSE(run_until(kernel, [&] { return never; }, 1000));
}

TEST(ExperimentTest, RunProgramsCollectsFinishTimes) {
  sim::Kernel kernel;
  std::vector<sim::Co<void>> programs;
  for (int i = 1; i <= 3; ++i) {
    programs.push_back([](sim::Kernel* k, sim::Tick d) -> sim::Co<void> {
      co_await sim::delay(*k, d);
    }(&kernel, i * 100));
  }
  std::vector<sim::Tick> times;
  EXPECT_TRUE(run_programs(kernel, std::move(programs), 10000, &times));
  EXPECT_EQ(times, (std::vector<sim::Tick>{100, 200, 300}));
}

TEST(ExperimentTest, RunProgramsTimesOut) {
  sim::Kernel kernel;
  sim::Signal never(kernel);
  std::vector<sim::Co<void>> programs;
  programs.push_back([](sim::Signal* s) -> sim::Co<void> {
    co_await *s;  // never pulsed
  }(&never));
  EXPECT_FALSE(run_programs(kernel, std::move(programs), 1000));
}

TEST(TableTest, FormatsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"short", "1"});
  t.add_row({"a-much-longer-name", "22222"});
  std::ostringstream oss;
  t.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("a-much-longer-name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TableTest, Formatters) {
  EXPECT_EQ(Table::fmt_us(1'500'000), "1.50");
  EXPECT_EQ(Table::fmt_pct(0.375), "37.5%");
  // 1000 bytes in 10 us = 100 MB/s.
  EXPECT_EQ(Table::fmt_mbps(1000.0, 10 * sim::kMicrosecond), "100.0");
  EXPECT_EQ(Table::fmt_mbps(1000.0, 0), "inf");
}

TEST(StatsDumpTest, CollectsPerNodeAndMachineCounters) {
  auto machine = sys::Machine(test::small_machine_params(2));
  auto ep0 = machine.node(0).make_endpoint();
  auto ep1 = machine.node(1).make_endpoint();
  bool got = false;
  machine.node(0).ap().run(
      ep0.send(machine.addr_map().user0(1), test::pattern_bytes(16)));
  machine.node(1).ap().run(
      [](msg::Endpoint* ep, bool* d) -> sim::Co<void> {
        (void)co_await ep->recv();
        *d = true;
      }(&ep1, &got));
  test::drive(machine.kernel(), [&] { return got; });

  const auto reg = collect_stats(machine);
  EXPECT_GE(reg.get("net.packets_delivered"), 1.0);
  EXPECT_GE(reg.get("n0.ctrl.msgs_launched"), 1.0);
  EXPECT_GE(reg.get("n1.ctrl.msgs_received"), 1.0);
  EXPECT_GT(reg.get("n0.bus.transactions"), 0.0);
  EXPECT_GT(reg.get("n0.aP.busy_us"), 0.0);
  EXPECT_TRUE(reg.contains("n1.scoma.grants"));
  EXPECT_GT(reg.get("sim.now_us"), 0.0);

  std::ostringstream oss;
  dump_stats(machine, oss);
  EXPECT_NE(oss.str().find("n0.ctrl.msgs_launched"), std::string::npos);
}

TEST(StatsDumpTest, DisabledEnginesOmitTheirKeys) {
  auto p = test::small_machine_params(2);
  p.node.enable_scoma = false;
  p.node.enable_numa = false;
  p.node.enable_miss_service = false;
  auto machine = sys::Machine(p);
  const auto reg = collect_stats(machine);
  EXPECT_FALSE(reg.contains("n0.scoma.grants"));
  EXPECT_FALSE(reg.contains("n0.numa.remote_loads"));
  EXPECT_FALSE(reg.contains("n0.miss_service.serviced"));
}

}  // namespace
}  // namespace sv::sys

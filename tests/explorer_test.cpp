// Scenario-explorer properties (DESIGN.md §14): against synthetic
// scenarios with planted violations the search must return exactly the
// known-minimal drop pattern (fewest drops, lexicographically first), and
// against clean scenarios it must prove the bound exhaustively with a
// predictable number of simulated runs. The real reliable-ring scenario
// is then pinned: within the explored bound no drop pattern breaks the
// channel's exactly-once / in-order / give-up contract — if a future
// change to msg::ReliableChannel introduces a liveness or ordering bug,
// this suite both fails and prints the minimal counterexample pattern
// that reproduces it.
//
// Deep searches (the committed-corpus exploration) honour
// SV_EXPLORER_QUICK: when set, they skip — that is the "--quick" lane CI
// uses under sanitizers, where each simulated run is several times
// slower.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "ckpt/explore.hpp"
#include "ckpt/scenario.hpp"

namespace sv {
namespace {

bool quick_mode() { return std::getenv("SV_EXPLORER_QUICK") != nullptr; }

bool contains(const std::vector<std::uint64_t>& v, std::uint64_t x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

/// Distinct deterministic hash per pattern, so state-dedup never merges
/// two different synthetic trajectories.
std::uint64_t pattern_hash(const std::vector<std::uint64_t>& v) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const std::uint64_t x : v) {
    h = (h ^ (x + 1)) * 0x100000001b3ull;
  }
  return h;
}

TEST(ExplorerTest, FindsSeededMinimalPair) {
  // Violation iff both opportunities 2 and 5 are dropped: neither single
  // drop trips it, so the minimal pattern has cardinality 2 and the
  // search must return exactly {2, 5}.
  const ckpt::ScenarioFn fn =
      [](const std::vector<std::uint64_t>& drops) {
        ckpt::ScenarioResult r;
        r.opportunities = 8;
        r.state_hash = pattern_hash(drops);
        if (contains(drops, 2) && contains(drops, 5)) {
          r.violation = true;
          r.detail = "planted double-drop violation";
        }
        return r;
      };
  ckpt::ExploreParams p;
  p.max_drops = 2;
  const ckpt::ExploreResult res = ckpt::explore(fn, p);
  EXPECT_TRUE(res.found);
  EXPECT_FALSE(res.baseline_violation);
  EXPECT_FALSE(res.exhausted);
  EXPECT_EQ(res.minimal, (std::vector<std::uint64_t>{2, 5}));
  EXPECT_EQ(res.detail, "planted double-drop violation");
}

TEST(ExplorerTest, MinimalIsLexicographicallyFirst) {
  // Two independent single-drop violations: the lower index wins.
  const ckpt::ScenarioFn fn =
      [](const std::vector<std::uint64_t>& drops) {
        ckpt::ScenarioResult r;
        r.opportunities = 8;
        r.state_hash = pattern_hash(drops);
        r.violation = contains(drops, 3) || contains(drops, 6);
        return r;
      };
  ckpt::ExploreParams p;
  p.max_drops = 2;
  const ckpt::ExploreResult res = ckpt::explore(fn, p);
  EXPECT_TRUE(res.found);
  EXPECT_EQ(res.minimal, (std::vector<std::uint64_t>{3}));
}

TEST(ExplorerTest, ProvesCleanBoundExhaustively) {
  // No violation anywhere, 4 opportunities, bound 2: the proof costs
  // exactly 1 baseline + 4 singles + C(4,2)=6 pairs = 11 runs (the
  // iterative deepening re-visits singles from the pattern cache, not
  // the simulator).
  std::uint64_t calls = 0;
  const ckpt::ScenarioFn fn =
      [&calls](const std::vector<std::uint64_t>& drops) {
        ++calls;
        ckpt::ScenarioResult r;
        r.opportunities = 4;
        r.state_hash = pattern_hash(drops);
        return r;
      };
  ckpt::ExploreParams p;
  p.max_drops = 2;
  const ckpt::ExploreResult res = ckpt::explore(fn, p);
  EXPECT_FALSE(res.found);
  EXPECT_TRUE(res.exhausted);
  EXPECT_EQ(res.runs, 11u);
  EXPECT_EQ(calls, res.runs) << "cache failed to absorb re-visits";
  // Extending {3} has no candidate below the horizon of 4.
  EXPECT_GE(res.pruned_horizon, 1u);
}

TEST(ExplorerTest, BaselineViolationShortCircuits) {
  const ckpt::ScenarioFn fn = [](const std::vector<std::uint64_t>&) {
    ckpt::ScenarioResult r;
    r.opportunities = 100;
    r.violation = true;
    r.detail = "broken without any drops";
    return r;
  };
  ckpt::ExploreParams p;
  const ckpt::ExploreResult res = ckpt::explore(fn, p);
  EXPECT_TRUE(res.found);
  EXPECT_TRUE(res.baseline_violation);
  EXPECT_TRUE(res.minimal.empty());
  EXPECT_EQ(res.runs, 1u);
}

TEST(ExplorerTest, RunBudgetStopsWithoutClaimingProof) {
  const ckpt::ScenarioFn fn = [](const std::vector<std::uint64_t>& drops) {
    ckpt::ScenarioResult r;
    r.opportunities = 64;
    r.state_hash = pattern_hash(drops);
    return r;
  };
  ckpt::ExploreParams p;
  p.max_drops = 2;
  p.max_runs = 3;
  const ckpt::ExploreResult res = ckpt::explore(fn, p);
  EXPECT_FALSE(res.found);
  EXPECT_FALSE(res.exhausted) << "out-of-budget search must not claim a proof";
  EXPECT_EQ(res.runs, 3u);
}

TEST(ExplorerTest, MaxOpportunitiesCapsTheHorizon) {
  std::uint64_t max_index_seen = 0;
  const ckpt::ScenarioFn fn =
      [&max_index_seen](const std::vector<std::uint64_t>& drops) {
        for (const std::uint64_t d : drops) {
          max_index_seen = std::max(max_index_seen, d);
        }
        ckpt::ScenarioResult r;
        r.opportunities = 1000;
        r.state_hash = pattern_hash(drops);
        return r;
      };
  ckpt::ExploreParams p;
  p.max_drops = 1;
  p.max_opportunities = 5;
  const ckpt::ExploreResult res = ckpt::explore(fn, p);
  EXPECT_TRUE(res.exhausted);
  EXPECT_EQ(res.runs, 6u);  // baseline + indices 0..4
  EXPECT_EQ(max_index_seen, 4u);
}

TEST(ExplorerTest, StateHashDedupPrunesEquivalentSubtrees) {
  // A constant state hash asserts every prefix reaches the same machine
  // state, so subtrees sharing (hash, first-candidate) are explored once.
  const ckpt::ScenarioFn fn = [](const std::vector<std::uint64_t>&) {
    ckpt::ScenarioResult r;
    r.opportunities = 4;
    r.state_hash = 42;
    return r;
  };
  ckpt::ExploreParams p;
  p.max_drops = 3;
  const ckpt::ExploreResult res = ckpt::explore(fn, p);
  EXPECT_TRUE(res.exhausted);
  EXPECT_GT(res.pruned_dedup, 0u);
  // Without dedup the proof costs 1 + 4 + 6 + 4 = 15 runs.
  EXPECT_LT(res.runs, 15u);
}

// --- The real reliable-ring scenario. These searches simulate the full
// machine per candidate pattern, so the specs stay deliberately small.

ckpt::RingSpec small_ring() {
  ckpt::RingSpec spec;
  spec.nodes = 2;
  spec.count = 4;
  spec.bytes = 16;
  spec.window = 4;
  spec.timeout_us = 20;
  spec.give_up = 4;
  spec.deadline_ms = 20;
  return spec;
}

TEST(ExplorerTest, ReliableRingBaselineIsClean) {
  const ckpt::ScenarioResult res =
      ckpt::run_reliable_ring(small_ring(), {});
  EXPECT_FALSE(res.violation) << res.detail;
  EXPECT_GT(res.opportunities, 0u);
  EXPECT_NE(res.state_hash, 0u);
}

TEST(ExplorerTest, ReliableRingSingleDropBoundProven) {
  // Pinned regression for msg::ReliableChannel's contract: within the
  // single-drop bound, every placement either recovers (retransmit) or
  // declares failure (give-up) — the exploration proved no liveness or
  // ordering violation exists, and this test keeps that proof true. A
  // regression prints the minimal counterexample pattern via `detail`.
  ckpt::ExploreParams p;
  p.max_drops = 1;
  p.max_runs = 500;
  const ckpt::ExploreResult res =
      ckpt::explore(ckpt::reliable_ring_scenario(small_ring()), p);
  EXPECT_FALSE(res.found) << "minimal violating pattern: " << res.detail;
  EXPECT_TRUE(res.exhausted);
  EXPECT_GT(res.runs, 1u);
}

TEST(ExplorerTest, CheckpointResumeExploresOnlyTheSuffix) {
  ckpt::RingSpec spec = small_ring();
  spec.count = 6;
  const ckpt::Snapshot snap =
      ckpt::checkpoint_reliable_ring(spec, 2 * sim::kMicrosecond);
  EXPECT_GE(snap.tick, 2 * sim::kMicrosecond);
  EXPECT_NE(snap.config.find("base_opp="), std::string::npos)
      << "checkpoint must record the opportunity base";

  // A resumed run replays to the capture tick and byte-verifies against
  // the snapshot before continuing (run_reliable_ring throws on any
  // divergence), with drop indices interpreted relative to the base.
  const ckpt::ScenarioResult baseline =
      ckpt::run_reliable_ring(spec, {}, &snap);
  EXPECT_FALSE(baseline.violation) << baseline.detail;

  ckpt::ExploreParams p;
  p.max_drops = 1;
  p.max_runs = 500;
  const ckpt::ExploreResult res = ckpt::explore(
      ckpt::reliable_ring_scenario(spec, &snap), p);
  EXPECT_FALSE(res.found) << "minimal violating pattern: " << res.detail;
  EXPECT_TRUE(res.exhausted);
  // The suffix horizon is strictly smaller than the whole run's.
  EXPECT_LT(baseline.opportunities,
            ckpt::run_reliable_ring(spec, {}).opportunities);
}

TEST(ExplorerTest, CommittedCorpusExplorationReproduces) {
  if (quick_mode()) {
    GTEST_SKIP() << "SV_EXPLORER_QUICK set: skipping deep corpus search";
  }
  // The committed checkpoint (tests/ckpt/reliable_ring.svck) is the
  // published starting point for `svexplore --snapshot=...`; the proof it
  // yields must reproduce on every machine, every build.
  const ckpt::Snapshot snap = ckpt::Snapshot::load_file(
      std::string(SV_CKPT_DIR) + "/reliable_ring.svck");
  const ckpt::RingSpec spec = ckpt::RingSpec::from_config(snap.config);
  ckpt::ExploreParams p;
  p.max_drops = 1;
  p.max_runs = 2000;
  const ckpt::ExploreResult res = ckpt::explore(
      ckpt::reliable_ring_scenario(spec, &snap), p);
  EXPECT_FALSE(res.found) << "minimal violating pattern: " << res.detail;
  EXPECT_TRUE(res.exhausted);
}

}  // namespace
}  // namespace sv

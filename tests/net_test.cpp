// Arctic network tests: links (credits, serialization), routers, fat-tree
// topology/routing, ordering and priority properties.
#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "net/fat_tree.hpp"
#include "net/link.hpp"
#include "net/network.hpp"
#include "net/router.hpp"
#include "sim/random.hpp"
#include "tests/test_util.hpp"

namespace sv::net {
namespace {

Packet make_packet(sim::NodeId src, sim::NodeId dest, std::size_t bytes,
                   std::uint8_t prio = kPriorityLow, QueueId q = 1) {
  Packet p;
  p.src = src;
  p.dest = dest;
  p.dest_queue = q;
  p.priority = prio;
  p.payload.resize(bytes);
  return p;
}

TEST(LinkTest, SerializationTimeMatchesBandwidth) {
  sim::Kernel kernel;
  Link link(kernel, "l", {});
  std::vector<sim::Tick> arrivals;
  link.set_sink([&](Packet&&) { arrivals.push_back(kernel.now()); });

  // 88-byte payload -> 96 wire bytes -> 48 cycles at 2 B/cycle, + 3 cycles
  // propagation: arrival at 51 link cycles.
  test::run_co(kernel, link.send(make_packet(0, 1, 88)));
  kernel.run();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0], (48 + 3) * link.params().clock.period());
  EXPECT_EQ(link.bytes_sent().value(), 96u);
}

TEST(LinkTest, CreditsBlockUntilReturned) {
  sim::Kernel kernel;
  Link::Params lp;
  lp.credits_per_priority = 1;
  Link link(kernel, "l", lp);
  int delivered = 0;
  link.set_sink([&](Packet&&) { ++delivered; });

  sim::spawn([](Link* l) -> sim::Co<void> {
    co_await l->send(make_packet(0, 1, 8));
    co_await l->send(make_packet(0, 1, 8));  // blocks on credit
  }(&link));
  kernel.run();
  EXPECT_EQ(delivered, 1);  // second send stuck
  link.return_credit(kPriorityLow);
  kernel.run();
  EXPECT_EQ(delivered, 2);
}

TEST(LinkTest, PrioritiesHaveIndependentCredits) {
  sim::Kernel kernel;
  Link::Params lp;
  lp.credits_per_priority = 1;
  Link link(kernel, "l", lp);
  int delivered = 0;
  link.set_sink([&](Packet&&) { ++delivered; });

  sim::spawn([](Link* l) -> sim::Co<void> {
    co_await l->send(make_packet(0, 1, 8, kPriorityLow));
    // Low credits exhausted, but high proceeds.
    co_await l->send(make_packet(0, 1, 8, kPriorityHigh));
  }(&link));
  kernel.run();
  EXPECT_EQ(delivered, 2);
}

TEST(IdealNetworkTest, DeliversAfterFixedLatency) {
  sim::Kernel kernel;
  IdealNetwork::Params p;
  p.nodes = 2;
  p.latency = 1000;
  IdealNetwork net(kernel, "net", p);
  std::vector<std::pair<sim::Tick, std::uint64_t>> got;
  net.set_endpoint(1, [&](Packet&& pkt) {
    got.emplace_back(kernel.now(), pkt.serial);
  });
  test::run_co(kernel, [](IdealNetwork* n) -> sim::Co<void> {
    co_await n->inject(make_packet(0, 1, 8));
    co_await n->inject(make_packet(0, 1, 8));
  }(&net));
  kernel.run();
  ASSERT_EQ(got.size(), 2u);
  // Serials are namespaced by source ((src + 1) << 40) and sequential
  // within it, starting at 1: 0 stays reserved for "no flow id assigned".
  const std::uint64_t ns = std::uint64_t{1} << 40;
  EXPECT_EQ(got[0].second, ns | 1u);
  EXPECT_EQ(got[1].second, ns | 2u);
  EXPECT_LT(got[0].first, got[1].first);  // source serialization
  EXPECT_EQ(net.packets_delivered(), 2u);
}

TEST(FatTreeTest, TopologyShape) {
  sim::Kernel kernel;
  FatTreeNetwork::Params p;
  p.nodes = 16;
  p.radix = 4;
  FatTreeNetwork net(kernel, "net", p);
  EXPECT_EQ(net.levels(), 2u);
  EXPECT_EQ(net.router_count(), 8u);  // 2 levels x 4 routers
  // Same leaf: 1 hop. Cross-tree: up + top + down = 3.
  EXPECT_EQ(net.hops(0, 1), 1u);
  EXPECT_EQ(net.hops(0, 4), 3u);
  EXPECT_EQ(net.hops(0, 15), 3u);
}

TEST(FatTreeTest, SingleLevelForSmallClusters) {
  sim::Kernel kernel;
  FatTreeNetwork::Params p;
  p.nodes = 4;
  p.radix = 4;
  FatTreeNetwork net(kernel, "net", p);
  EXPECT_EQ(net.levels(), 1u);
  EXPECT_EQ(net.router_count(), 1u);
  EXPECT_EQ(net.hops(0, 3), 1u);
}

TEST(FatTreeTest, DeliversAcrossTheTree) {
  sim::Kernel kernel;
  FatTreeNetwork::Params p;
  p.nodes = 16;
  p.radix = 4;
  FatTreeNetwork net(kernel, "net", p);

  std::map<sim::NodeId, std::vector<Packet>> got;
  for (sim::NodeId n = 0; n < 16; ++n) {
    net.set_endpoint(n, [&got, &net, n](Packet&& pkt) {
      got[n].push_back(std::move(pkt));
      net.consume_done(n, got[n].back().priority);
    });
  }
  test::run_co(kernel, [](FatTreeNetwork* n) -> sim::Co<void> {
    for (sim::NodeId d = 0; d < 16; ++d) {
      co_await n->inject(make_packet(0, d, 16));
    }
  }(&net));
  kernel.run();
  for (sim::NodeId d = 0; d < 16; ++d) {
    ASSERT_EQ(got[d].size(), 1u) << "node " << d;
    EXPECT_EQ(got[d][0].src, 0u);
  }
}

TEST(FatTreeTest, SelfSendWorks) {
  sim::Kernel kernel;
  FatTreeNetwork::Params p;
  p.nodes = 8;
  p.radix = 4;
  FatTreeNetwork net(kernel, "net", p);
  int got = 0;
  for (sim::NodeId n = 0; n < 8; ++n) {
    net.set_endpoint(n, [&got, &net, n](Packet&& pkt) {
      ++got;
      net.consume_done(n, pkt.priority);
    });
  }
  test::run_co(kernel, net.inject(make_packet(3, 3, 8)));
  kernel.run();
  EXPECT_EQ(got, 1);
}

TEST(FatTreeTest, HighPriorityOvertakesQueuedLow) {
  sim::Kernel kernel;
  FatTreeNetwork::Params p;
  p.nodes = 4;
  p.radix = 4;
  p.link.credits_per_priority = 1;
  FatTreeNetwork net(kernel, "net", p);

  std::vector<std::uint8_t> arrival_order;
  std::vector<std::pair<sim::NodeId, std::uint8_t>> pending_credits;
  net.set_endpoint(1, [&](Packet&& pkt) {
    arrival_order.push_back(pkt.priority);
    // Withhold credits so low packets congest the ejection port.
    pending_credits.emplace_back(1, pkt.priority);
  });
  for (sim::NodeId n : {0u, 2u, 3u}) {
    net.set_endpoint(n, [&net, n](Packet&& pkt) {
      net.consume_done(n, pkt.priority);
    });
  }

  sim::spawn([](FatTreeNetwork* n) -> sim::Co<void> {
    // Flood low priority, then send one high: high must not arrive last.
    for (int i = 0; i < 6; ++i) {
      co_await n->inject(make_packet(0, 1, 80, kPriorityLow));
    }
    co_await n->inject(make_packet(0, 1, 8, kPriorityHigh));
  }(&net));
  // Drain, returning withheld ejection credits one batch at a time so the
  // router output stage must re-arbitrate between priorities.
  for (int rounds = 0; rounds < 100 && arrival_order.size() < 7; ++rounds) {
    kernel.run();
    for (auto [node, prio] : pending_credits) {
      net.consume_done(node, prio);
    }
    pending_credits.clear();
  }
  kernel.run();
  ASSERT_EQ(arrival_order.size(), 7u);
  // The high-priority packet must overtake at least some queued low ones.
  std::size_t high_pos = 0;
  for (std::size_t i = 0; i < arrival_order.size(); ++i) {
    if (arrival_order[i] == kPriorityHigh) {
      high_pos = i;
    }
  }
  EXPECT_LT(high_pos, arrival_order.size() - 1);
}

/// Property: random traffic on random fat trees is delivered completely,
/// without duplication, and in per-(src,dst,priority) FIFO order.
struct FatTreeParam {
  std::size_t nodes;
  unsigned radix;
  unsigned seed;
};

class FatTreeProperty : public ::testing::TestWithParam<FatTreeParam> {};

TEST_P(FatTreeProperty, CompleteOrderedDelivery) {
  const auto param = GetParam();
  sim::Kernel kernel;
  FatTreeNetwork::Params p;
  p.nodes = param.nodes;
  p.radix = param.radix;
  FatTreeNetwork net(kernel, "net", p);

  struct Key {
    sim::NodeId src;
    std::uint8_t prio;
    bool operator<(const Key& o) const {
      return std::tie(src, prio) < std::tie(o.src, o.prio);
    }
  };
  // Per (dst, src, prio): sequence numbers seen, must be increasing.
  std::map<sim::NodeId, std::map<Key, std::vector<std::uint32_t>>> seen;
  std::size_t delivered = 0;

  for (sim::NodeId n = 0; n < param.nodes; ++n) {
    net.set_endpoint(n, [&, n](Packet&& pkt) {
      std::uint32_t seq = 0;
      std::memcpy(&seq, pkt.payload.data(), 4);
      seen[n][Key{pkt.src, pkt.priority}].push_back(seq);
      ++delivered;
      net.consume_done(n, pkt.priority);
    });
  }

  constexpr int kPerSource = 40;
  std::size_t injected = 0;
  for (sim::NodeId src = 0; src < param.nodes; ++src) {
    sim::spawn([](FatTreeNetwork* net_, sim::NodeId s, std::size_t nodes,
                  unsigned seed, std::size_t* count) -> sim::Co<void> {
      sim::Rng rng(seed + s * 977);
      std::uint32_t seq_per_key[64][2] = {};
      for (int i = 0; i < kPerSource; ++i) {
        const auto dst = static_cast<sim::NodeId>(rng.below(nodes));
        const auto prio =
            static_cast<std::uint8_t>(rng.chance(0.3) ? 1 : 0);
        Packet pkt = make_packet(s, dst, 8 + rng.below(80), prio);
        std::uint32_t seq = seq_per_key[dst][prio]++;
        std::memcpy(pkt.payload.data(), &seq, 4);
        co_await net_->inject(std::move(pkt));
        ++*count;
      }
    }(&net, src, param.nodes, param.seed, &injected));
  }
  kernel.run();

  EXPECT_EQ(injected, param.nodes * kPerSource);
  EXPECT_EQ(delivered, injected);
  for (const auto& [dst, by_key] : seen) {
    for (const auto& [key, seqs] : by_key) {
      for (std::size_t i = 1; i < seqs.size(); ++i) {
        EXPECT_EQ(seqs[i], seqs[i - 1] + 1)
            << "out of order: dst=" << dst << " src=" << key.src
            << " prio=" << int(key.prio);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, FatTreeProperty,
    ::testing::Values(FatTreeParam{2, 2, 1}, FatTreeParam{4, 2, 2},
                      FatTreeParam{8, 2, 3}, FatTreeParam{4, 4, 4},
                      FatTreeParam{8, 4, 5}, FatTreeParam{16, 4, 6},
                      FatTreeParam{32, 4, 7}, FatTreeParam{13, 4, 8},
                      FatTreeParam{5, 2, 9}));

}  // namespace
}  // namespace sv::net

// Unit tests for sim::InlineFunc, the fixed-capacity allocation-free
// callable the event queue stores: capture size limits, move-only
// captures, destruction counting, and the trivial-relocation fast path.
#include <gtest/gtest.h>

#include <memory>
#include <type_traits>
#include <utility>

#include "sim/inline_func.hpp"

namespace sv::sim {
namespace {

TEST(InlineFunc, InvokesCapturedState) {
  int hits = 0;
  InlineFunc f([&hits] { ++hits; });
  f();
  f();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFunc, DefaultConstructedIsEmpty) {
  InlineFunc f;
  EXPECT_FALSE(static_cast<bool>(f));
  InlineFunc g([] {});
  EXPECT_TRUE(static_cast<bool>(g));
}

TEST(InlineFunc, CapturesUpToCapacityFit) {
  // A capture of exactly kCapacity bytes must compile and work; one byte
  // more is rejected at compile time (covered by the static_assert in the
  // converting constructor — not instantiable from a test, by design).
  struct Fat {
    char bytes[InlineFunc::kCapacity - sizeof(int*)];
    int* out;
    void operator()() const { ++*out; }
  };
  static_assert(sizeof(Fat) == InlineFunc::kCapacity);
  int hits = 0;
  InlineFunc f(Fat{{}, &hits});
  f();
  EXPECT_EQ(hits, 1);
}

TEST(InlineFunc, MoveTransfersOwnership) {
  int hits = 0;
  InlineFunc a([&hits] { ++hits; });
  InlineFunc b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);

  InlineFunc c;
  c = std::move(b);
  EXPECT_FALSE(static_cast<bool>(b));  // NOLINT(bugprone-use-after-move)
  c();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFunc, MoveOnlyCaptureWorks) {
  auto p = std::make_unique<int>(7);
  int got = 0;
  InlineFunc f([p = std::move(p), &got] { got = *p; });
  InlineFunc g(std::move(f));
  g();
  EXPECT_EQ(got, 7);
}

struct DtorCounter {
  int* count;
  explicit DtorCounter(int* c) : count(c) {}
  DtorCounter(DtorCounter&& o) noexcept : count(std::exchange(o.count, nullptr)) {}
  DtorCounter(const DtorCounter&) = delete;
  ~DtorCounter() {
    if (count != nullptr) {
      ++*count;
    }
  }
  void operator()() const {}
};

TEST(InlineFunc, DestroysCaptureExactlyOnce) {
  int dtors = 0;
  {
    InlineFunc f(DtorCounter{&dtors});
    EXPECT_EQ(dtors, 0);
  }
  EXPECT_EQ(dtors, 1);
}

TEST(InlineFunc, MovedThroughQueueDestroysOnce) {
  // The queue relocates callables (vector growth, heap sift, bucket
  // sorts); however many times it moves, the capture dies exactly once.
  int dtors = 0;
  {
    InlineFunc a(DtorCounter{&dtors});
    InlineFunc b(std::move(a));
    InlineFunc c;
    c = std::move(b);
    EXPECT_EQ(dtors, 0);
  }
  EXPECT_EQ(dtors, 1);
}

TEST(InlineFunc, AssignOverEngagedDestroysOldCapture) {
  int old_dtors = 0;
  int new_hits = 0;
  InlineFunc f(DtorCounter{&old_dtors});
  f = InlineFunc([&new_hits] { ++new_hits; });
  EXPECT_EQ(old_dtors, 1);
  f();
  EXPECT_EQ(new_hits, 1);
}

TEST(InlineFunc, TrivialCaptureRelocatesWithoutManager) {
  // Trivially copyable + destructible captures relocate by memcpy; the
  // observable contract is just that state survives moves intact.
  struct Plain {
    int a;
    int b;
    int* out;
    void operator()() const { *out = a + b; }
  };
  static_assert(std::is_trivially_copyable_v<Plain>);
  int result = 0;
  InlineFunc f(Plain{20, 22, &result});
  InlineFunc g(std::move(f));
  InlineFunc h;
  h = std::move(g);
  h();
  EXPECT_EQ(result, 42);
}

TEST(InlineFunc, SizeIsOneCacheLine) {
  static_assert(sizeof(InlineFunc) == 64);
  static_assert(alignof(InlineFunc) >= alignof(std::max_align_t));
}

}  // namespace
}  // namespace sv::sim

// Unit tests for the conservative parallel scheduler: epoch stepping,
// deferred-mailbox commit at barriers, determinism across thread counts,
// worker-exception propagation and constructor validation. Machine-level
// bit-identity is covered by parallel_equivalence_test.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/parallel.hpp"

namespace sv::sim {
namespace {

constexpr Tick kLookahead = 100;

std::vector<Kernel*> ptrs(std::vector<Kernel>& ks) {
  std::vector<Kernel*> out;
  for (auto& k : ks) {
    out.push_back(&k);
  }
  return out;
}

TEST(DomainMap, SequentialMapsEveryNodeToOneKernel) {
  Kernel k;
  DomainMap map(k, 4);
  EXPECT_FALSE(map.partitioned());
  EXPECT_EQ(map.nodes(), 4u);
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_EQ(&map.of(n), &k);
  }
}

TEST(DomainMap, PartitionedMapsNodeToItsDomain) {
  std::vector<Kernel> ks(3);
  DomainMap map(ptrs(ks));
  EXPECT_TRUE(map.partitioned());
  EXPECT_EQ(map.nodes(), 3u);
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(&map.of(n), &ks[n]);
  }
}

TEST(ParallelKernel, RejectsBadConfig) {
  std::vector<Kernel> ks(2);
  EXPECT_THROW(ParallelKernel({}, 1, kLookahead), std::invalid_argument);
  EXPECT_THROW(ParallelKernel(ptrs(ks), 1, 0), std::invalid_argument);
}

TEST(ParallelKernel, ClampsThreadsToDomainCount) {
  std::vector<Kernel> ks(2);
  ParallelKernel pk(ptrs(ks), 16, kLookahead);
  EXPECT_EQ(pk.threads(), 2u);
}

TEST(ParallelKernel, RunEpochAdvancesEveryDomainToTheBoundary) {
  std::vector<Kernel> ks(2);
  std::vector<Tick> fired;
  ks[0].schedule(10, [&] { fired.push_back(ks[0].now()); });
  ks[1].schedule(150, [&] { fired.push_back(ks[1].now()); });
  ParallelKernel pk(ptrs(ks), 1, kLookahead);

  pk.run_epoch();
  EXPECT_EQ(pk.now(), kLookahead - 1);
  EXPECT_EQ(fired, (std::vector<Tick>{10}));

  pk.run_epoch();
  EXPECT_EQ(pk.now(), 2 * kLookahead - 1);
  EXPECT_EQ(fired, (std::vector<Tick>{10, 150}));
  EXPECT_TRUE(pk.idle());
}

TEST(ParallelKernel, CrossDomainPostDeliversNextEpoch) {
  std::vector<Kernel> ks(2);
  Tick delivered_at = 0;
  // Domain 0 sends at t=10 with one full lookahead of latency; domain 1
  // must run it at exactly t=110 even though the post is staged until the
  // epoch barrier.
  ks[0].schedule(10, [&] {
    ks[1].post(ks[0].now() + kLookahead, /*src=*/0, /*seq=*/1,
               [&] { delivered_at = ks[1].now(); });
  });
  ParallelKernel pk(ptrs(ks), 2, kLookahead);
  pk.run_epoch();
  EXPECT_EQ(delivered_at, 0u);  // staged, not yet runnable
  pk.run_epoch();
  EXPECT_EQ(delivered_at, 110u);
}

TEST(ParallelKernel, RunEpochsUntilStopsAtPredicateBoundary) {
  std::vector<Kernel> ks(2);
  int count = 0;
  // One event per epoch for a while.
  for (Tick t = 50; t < 1000; t += kLookahead) {
    ks[1].schedule(t, [&] { ++count; });
  }
  ParallelKernel pk(ptrs(ks), 2, kLookahead);
  EXPECT_TRUE(pk.run_epochs_until([&] { return count >= 3; }, 100000));
  EXPECT_EQ(count, 3);
  EXPECT_EQ(pk.now(), 3 * kLookahead - 1);
}

TEST(ParallelKernel, RunEpochsUntilStopsWhenIdleOrDeadline) {
  std::vector<Kernel> ks(2);
  ks[0].schedule(10, [] {});
  ParallelKernel pk(ptrs(ks), 1, kLookahead);
  // Predicate never holds; the scheduler must still stop once both domains
  // drain rather than spinning to the deadline.
  EXPECT_FALSE(pk.run_epochs_until([] { return false; }, 100000));
  EXPECT_TRUE(pk.idle());
  EXPECT_LT(pk.now(), Tick{100000});
}

TEST(ParallelKernel, IdenticalResultForEveryThreadCount) {
  // A little ping-pong network: each domain, on receipt, posts back to the
  // other with lookahead latency. The event counts and final clocks must
  // not depend on the worker count.
  auto run = [](unsigned threads) {
    std::vector<Kernel> ks(4);
    std::vector<std::uint64_t> hits(4, 0);
    std::function<void(NodeId, NodeId, int)> send =
        [&](NodeId from, NodeId to, int hops) {
          if (hops == 0) {
            return;
          }
          ks[to].post(ks[from].now() + kLookahead, from, ++hits[from],
                      [&, from, to, hops] {
                        ++hits[to];
                        send(to, from, hops - 1);
                      });
        };
    for (NodeId n = 0; n < 4; ++n) {
      ks[n].schedule(n + 1, [&, n] {
        send(n, static_cast<NodeId>((n + 1) % 4), 8);
      });
    }
    ParallelKernel pk(ptrs(ks), threads, kLookahead);
    EXPECT_TRUE(pk.run_epochs_until(
        [&] {
          std::uint64_t total = 0;
          for (const auto h : hits) {
            total += h;
          }
          return total >= 4 * 12;
        },
        1000000));
    std::vector<std::uint64_t> result = hits;
    for (const auto& k : ks) {
      result.push_back(k.events_executed());
      result.push_back(k.now());
    }
    result.push_back(pk.now());
    return result;
  };
  const auto seq = run(1);
  EXPECT_EQ(run(2), seq);
  EXPECT_EQ(run(4), seq);
}

TEST(ParallelKernel, WorkerExceptionSurfacesAtBarrier) {
  std::vector<Kernel> ks(2);
  ks[1].schedule(10, [] { throw std::runtime_error("boom"); });
  ParallelKernel pk(ptrs(ks), 2, kLookahead);
  EXPECT_THROW(pk.run_epoch(), std::runtime_error);
}

}  // namespace
}  // namespace sv::sim

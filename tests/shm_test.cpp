// Shared-memory tests: NUMA (uncached remote access through firmware) and
// S-COMA (cls-gated local-DRAM caching with a home-based invalidate
// protocol), including multi-node coherence properties.
#include <gtest/gtest.h>

#include <cstring>

#include "shm/numa_region.hpp"
#include "sim/random.hpp"
#include "shm/scoma_region.hpp"
#include "tests/test_util.hpp"

namespace sv {
namespace {

class ShmTest : public ::testing::Test {
 protected:
  explicit ShmTest(std::size_t nodes = 2)
      : machine(test::small_machine_params(nodes)) {}

  void drive_until(const std::function<bool()>& pred) {
    test::drive(machine.kernel(), pred);
  }

  void run_on_ap(sim::NodeId n, sim::Co<void> co) {
    bool done = false;
    machine.node(n).ap().run(
        [](sim::Co<void> c, bool* d) -> sim::Co<void> {
          co_await std::move(c);
          *d = true;
        }(std::move(co), &done));
    drive_until([&] { return done; });
  }

  sys::Machine machine;
};

// --- NUMA -------------------------------------------------------------------

TEST_F(ShmTest, NumaStoreThenLoadLocalHome) {
  // Page 0 of the NUMA window homes on node 0.
  shm::NumaRegion numa(machine.node(0).ap());
  run_on_ap(0, [](shm::NumaRegion* r) -> sim::Co<void> {
    co_await r->store<std::uint64_t>(0x100, 0xABCDEF0123456789ull);
    const auto v = co_await r->load<std::uint64_t>(0x100);
    EXPECT_EQ(v, 0xABCDEF0123456789ull);
  }(&numa));
  // The value landed in node 0's NUMA backing DRAM.
  EXPECT_EQ(machine.node(0).dram().store().read_scalar<std::uint64_t>(
                fw::kNumaBackingBase + 0x100),
            0xABCDEF0123456789ull);
}

TEST_F(ShmTest, NumaRemoteHomeRoundTrip) {
  // Page 1 homes on node 1; node 0 writes and reads it remotely.
  shm::NumaRegion numa(machine.node(0).ap());
  const mem::Addr off = 4096 + 0x40;
  run_on_ap(0, [](shm::NumaRegion* r, mem::Addr o) -> sim::Co<void> {
    co_await r->store<std::uint32_t>(o, 0x5555AAAA);
    const auto v = co_await r->load<std::uint32_t>(o);
    EXPECT_EQ(v, 0x5555AAAAu);
  }(&numa, off));
  EXPECT_EQ(machine.node(1).dram().store().read_scalar<std::uint32_t>(
                fw::kNumaBackingBase + off),
            0x5555AAAAu);
  EXPECT_GE(machine.node(0).numa()->remote_loads().value(), 1u);
  EXPECT_GE(machine.node(0).numa()->remote_stores().value(), 1u);
}

TEST_F(ShmTest, NumaCrossNodeVisibility) {
  // Node 0 writes, node 1 reads the same NUMA address.
  shm::NumaRegion numa0(machine.node(0).ap());
  shm::NumaRegion numa1(machine.node(1).ap());
  run_on_ap(0, [](shm::NumaRegion* r) -> sim::Co<void> {
    co_await r->store<std::uint32_t>(0x80, 42);
  }(&numa0));
  run_on_ap(1, [](shm::NumaRegion* r) -> sim::Co<void> {
    const auto v = co_await r->load<std::uint32_t>(0x80);
    EXPECT_EQ(v, 42u);
  }(&numa1));
}

TEST_F(ShmTest, NumaRemoteLoadSlowerThanLocal) {
  shm::NumaRegion numa(machine.node(0).ap());
  auto& kernel = machine.kernel();

  sim::Tick local_time = 0, remote_time = 0;
  {
    const sim::Tick t0 = kernel.now();
    run_on_ap(0, [](shm::NumaRegion* r) -> sim::Co<void> {
      (void)co_await r->load<std::uint32_t>(0x0);  // home: node 0
    }(&numa));
    local_time = kernel.now() - t0;
  }
  {
    const sim::Tick t0 = kernel.now();
    run_on_ap(0, [](shm::NumaRegion* r) -> sim::Co<void> {
      (void)co_await r->load<std::uint32_t>(4096);  // home: node 1
    }(&numa));
    remote_time = kernel.now() - t0;
  }
  EXPECT_GT(remote_time, local_time);
}

// --- S-COMA -----------------------------------------------------------------

TEST_F(ShmTest, ScomaHomeAccessIsLocal) {
  // Page 0 of the S-COMA region homes on node 0: its aP reads/writes at
  // local speed with no protocol traffic.
  shm::ScomaRegion sc(machine.node(0).ap());
  run_on_ap(0, [](shm::ScomaRegion* r) -> sim::Co<void> {
    co_await r->store<std::uint64_t>(0x40, 0x1122334455667788ull);
    const auto v = co_await r->load<std::uint64_t>(0x40);
    EXPECT_EQ(v, 0x1122334455667788ull);
  }(&sc));
  EXPECT_EQ(machine.node(0).scoma()->stats().read_misses.value(), 0u);
  EXPECT_EQ(machine.node(0).scoma()->stats().write_misses.value(), 0u);
}

TEST_F(ShmTest, ScomaRemoteReadMissFetchesLine) {
  // Node 0 writes a home line; node 1 reads it (read miss -> grant).
  shm::ScomaRegion sc0(machine.node(0).ap());
  shm::ScomaRegion sc1(machine.node(1).ap());

  run_on_ap(0, [](shm::ScomaRegion* r) -> sim::Co<void> {
    co_await r->store<std::uint64_t>(0x100, 0xFACEFACEFACEFACEull);
    // Push it to the local DRAM L3 so the home copy is current.
    co_await r->flush(0x100, 8);
  }(&sc0));

  run_on_ap(1, [](shm::ScomaRegion* r) -> sim::Co<void> {
    const auto v = co_await r->load<std::uint64_t>(0x100);
    EXPECT_EQ(v, 0xFACEFACEFACEFACEull);
  }(&sc1));

  EXPECT_GE(machine.node(1).scoma()->stats().read_misses.value(), 1u);
  // Node 1's cls state for the line is now ReadOnly.
  EXPECT_EQ(machine.node(1).niu().cls().peek(niu::kScomaBase + 0x100),
            niu::ABiu::kClsReadOnly);
}

TEST_F(ShmTest, ScomaWriteMissGainsOwnershipAndInvalidatesHome) {
  shm::ScomaRegion sc1(machine.node(1).ap());
  run_on_ap(1, [](shm::ScomaRegion* r) -> sim::Co<void> {
    co_await r->store<std::uint32_t>(0x200, 0x77778888);
  }(&sc1));

  // Node 1 now owns the line read-write; the home (node 0) is invalid.
  EXPECT_EQ(machine.node(1).niu().cls().peek(niu::kScomaBase + 0x200),
            niu::ABiu::kClsReadWrite);
  EXPECT_EQ(machine.node(0).niu().cls().peek(niu::kScomaBase + 0x200),
            niu::ABiu::kClsInvalid);
}

TEST_F(ShmTest, ScomaDirtyRecallSuppliesFreshData) {
  shm::ScomaRegion sc0(machine.node(0).ap());
  shm::ScomaRegion sc1(machine.node(1).ap());

  // Node 1 takes ownership and dirties the line (in its aP cache).
  run_on_ap(1, [](shm::ScomaRegion* r) -> sim::Co<void> {
    co_await r->store<std::uint32_t>(0x300, 0xD1D1D1D1);
  }(&sc1));
  // Home node 0 reads it back: recall must flush node 1's cache and DRAM.
  run_on_ap(0, [](shm::ScomaRegion* r) -> sim::Co<void> {
    const auto v = co_await r->load<std::uint32_t>(0x300);
    EXPECT_EQ(v, 0xD1D1D1D1u);
  }(&sc0));
  EXPECT_GE(machine.node(0).scoma()->stats().recalls.value(), 1u);
}

TEST_F(ShmTest, ScomaUpgradeInvalidatesSharers) {
  shm::ScomaRegion sc0(machine.node(0).ap());
  shm::ScomaRegion sc1(machine.node(1).ap());

  // Both nodes read the line (node 0 is home, node 1 becomes a sharer).
  run_on_ap(0, [](shm::ScomaRegion* r) -> sim::Co<void> {
    co_await r->store<std::uint32_t>(0x400, 1);
    co_await r->flush(0x400, 4);
  }(&sc0));
  run_on_ap(1, [](shm::ScomaRegion* r) -> sim::Co<void> {
    (void)co_await r->load<std::uint32_t>(0x400);
  }(&sc1));

  // Node 1 upgrades to write: node 0's copy must be invalidated.
  run_on_ap(1, [](shm::ScomaRegion* r) -> sim::Co<void> {
    co_await r->store<std::uint32_t>(0x400, 2);
  }(&sc1));
  EXPECT_EQ(machine.node(0).niu().cls().peek(niu::kScomaBase + 0x400),
            niu::ABiu::kClsInvalid);

  // Node 0 re-reads: sees node 1's value via recall.
  run_on_ap(0, [](shm::ScomaRegion* r) -> sim::Co<void> {
    const auto v = co_await r->load<std::uint32_t>(0x400);
    EXPECT_EQ(v, 2u);
  }(&sc0));
}

TEST_F(ShmTest, ScomaPingPongConverges) {
  // Two nodes alternately increment one shared counter 10 times each.
  shm::ScomaRegion sc0(machine.node(0).ap());
  shm::ScomaRegion sc1(machine.node(1).ap());
  const mem::Addr off = 0x500;

  // Strict alternation via a turn flag in a second line.
  auto worker = [](shm::ScomaRegion* r, mem::Addr counter, mem::Addr turn,
                   std::uint32_t me, int rounds) -> sim::Co<void> {
    for (int i = 0; i < rounds; ++i) {
      for (;;) {
        const auto t = co_await r->load<std::uint32_t>(turn);
        if (t == me) {
          break;
        }
      }
      const auto v = co_await r->load<std::uint32_t>(counter);
      co_await r->store<std::uint32_t>(counter, v + 1);
      co_await r->store<std::uint32_t>(turn, 1 - me);
    }
  };

  bool d0 = false, d1 = false;
  machine.node(0).ap().run(
      [](sim::Co<void> c, bool* d) -> sim::Co<void> {
        co_await std::move(c);
        *d = true;
      }(worker(&sc0, off, off + 64, 0, 10), &d0));
  machine.node(1).ap().run(
      [](sim::Co<void> c, bool* d) -> sim::Co<void> {
        co_await std::move(c);
        *d = true;
      }(worker(&sc1, off, off + 64, 1, 10), &d1));
  drive_until([&] { return d0 && d1; });

  shm::ScomaRegion check(machine.node(0).ap());
  run_on_ap(0, [](shm::ScomaRegion* r, mem::Addr o) -> sim::Co<void> {
    const auto v = co_await r->load<std::uint32_t>(o);
    EXPECT_EQ(v, 20u);
  }(&check, off));
}

class ShmTest4 : public ShmTest {
 protected:
  ShmTest4() : ShmTest(4) {}
};

TEST_F(ShmTest4, ScomaAllNodesReadSharedLine) {
  shm::ScomaRegion sc0(machine.node(0).ap());
  run_on_ap(0, [](shm::ScomaRegion* r) -> sim::Co<void> {
    co_await r->store<std::uint32_t>(0x600, 0x600D);
    co_await r->flush(0x600, 4);
  }(&sc0));

  for (sim::NodeId n = 1; n < 4; ++n) {
    shm::ScomaRegion sc(machine.node(n).ap());
    run_on_ap(n, [](shm::ScomaRegion* r) -> sim::Co<void> {
      const auto v = co_await r->load<std::uint32_t>(0x600);
      EXPECT_EQ(v, 0x600Du);
    }(&sc));
  }
  // Then one node writes: everyone else invalidates.
  shm::ScomaRegion sc3(machine.node(3).ap());
  run_on_ap(3, [](shm::ScomaRegion* r) -> sim::Co<void> {
    co_await r->store<std::uint32_t>(0x600, 0xBADD);
  }(&sc3));
  for (sim::NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(machine.node(n).niu().cls().peek(niu::kScomaBase + 0x600),
              niu::ABiu::kClsInvalid)
        << "node " << n;
  }
  // And a reader sees the new value.
  shm::ScomaRegion sc1(machine.node(1).ap());
  run_on_ap(1, [](shm::ScomaRegion* r) -> sim::Co<void> {
    const auto v = co_await r->load<std::uint32_t>(0x600);
    EXPECT_EQ(v, 0xBADDu);
  }(&sc1));
}

TEST_F(ShmTest4, NumaPagesInterleaveAcrossHomes) {
  auto* numa = machine.node(0).numa();
  ASSERT_NE(numa, nullptr);
  EXPECT_EQ(numa->home_of(niu::kNumaBase + 0 * 4096), 0u);
  EXPECT_EQ(numa->home_of(niu::kNumaBase + 1 * 4096), 1u);
  EXPECT_EQ(numa->home_of(niu::kNumaBase + 2 * 4096), 2u);
  EXPECT_EQ(numa->home_of(niu::kNumaBase + 3 * 4096), 3u);
  EXPECT_EQ(numa->home_of(niu::kNumaBase + 4 * 4096), 0u);
}

/// Property: random single-writer-per-line traffic across 2 nodes stays
/// coherent with a reference model.
class ScomaProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(ScomaProperty, RandomSharedTrafficCoherent) {
  auto machine = sys::Machine(test::small_machine_params(2));
  shm::ScomaRegion sc0(machine.node(0).ap());
  shm::ScomaRegion sc1(machine.node(1).ap());

  sim::Rng rng(GetParam());
  std::vector<std::uint32_t> ref(16, 0);  // 16 words on distinct lines

  bool done = false;
  machine.node(0).ap().run(
      [](shm::ScomaRegion* a, shm::ScomaRegion* b, sim::Rng* rng,
         std::vector<std::uint32_t>* ref, bool* d) -> sim::Co<void> {
        // Alternate actors sequentially (sequential consistency check):
        // every read must observe the latest write, regardless of node.
        for (int i = 0; i < 120; ++i) {
          shm::ScomaRegion* r = rng->chance(0.5) ? a : b;
          const std::size_t word = rng->below(16);
          const mem::Addr off = 0x1000 + word * 64;
          if (rng->chance(0.5)) {
            const auto v = static_cast<std::uint32_t>(rng->next());
            co_await r->store<std::uint32_t>(off, v);
            (*ref)[word] = v;
          } else {
            const auto v = co_await r->load<std::uint32_t>(off);
            EXPECT_EQ(v, (*ref)[word]) << "word " << word << " iter " << i;
          }
        }
        *d = true;
      }(&sc0, &sc1, &rng, &ref, &done));
  test::drive(machine.kernel(), [&] { return done; },
              2000 * sim::kMillisecond);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScomaProperty,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace sv

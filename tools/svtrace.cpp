// svtrace: offline analyzer for traces produced by svsim / the benches.
//
// Reads a Chrome trace-event JSON file (as written by
// trace::write_chrome_trace) and prints the summaries that are awkward to
// eyeball in the Perfetto UI: per-unit occupancy, the longest spans, and
// per-message latency broken down by where the time went (NIU queues, bus,
// wire).
//
// Usage:
//   svtrace <trace.json> [top=N]
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "sim/config.hpp"
#include "trace/analysis.hpp"

using namespace sv;

namespace {

double us(std::uint64_t ps) { return static_cast<double>(ps) / 1e6; }

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: svtrace <trace.json> [top=N]\n");
    return 2;
  }
  const std::string path = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  sim::Config cfg;
  try {
    cfg = sim::Config::from_args(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "svtrace: %s\n", e.what());
    return 2;
  }
  const auto top_n = cfg.get_u64("top", 10);

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "svtrace: cannot open %s\n", path.c_str());
    return 1;
  }
  trace::TraceAnalysis a;
  try {
    a = trace::TraceAnalysis::parse(in);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "svtrace: %s: %s\n", path.c_str(), e.what());
    return 1;
  }

  std::printf("%s: %.3f us of simulated time, %zu tracks, %zu spans, "
              "%llu counter samples",
              path.c_str(), us(a.duration_ps()), a.tracks.size(),
              a.spans.size(),
              static_cast<unsigned long long>(a.counter_samples));
  if (a.dropped > 0) {
    std::printf(" (%llu events dropped from the ring)",
                static_cast<unsigned long long>(a.dropped));
  }
  std::printf("\n");

  // Per-unit occupancy, busiest first. Counter tracks have no spans and
  // are skipped.
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < a.tracks.size(); ++i) {
    if (a.tracks[i].spans > 0) {
      order.push_back(i);
    }
  }
  std::stable_sort(order.begin(), order.end(), [&](std::size_t x,
                                                   std::size_t y) {
    return a.tracks[x].busy_ps > a.tracks[y].busy_ps;
  });
  std::printf("\nper-unit occupancy\n");
  std::printf("  %-24s %8s %12s %10s\n", "unit", "occ", "busy us", "spans");
  for (const std::size_t i : order) {
    const auto& t = a.tracks[i];
    std::printf("  %-24s %7.2f%% %12.3f %10llu\n", t.full_name().c_str(),
                100.0 * a.occupancy(i), us(t.busy_ps),
                static_cast<unsigned long long>(t.spans));
  }

  const auto longest = a.longest(top_n);
  if (!longest.empty()) {
    std::printf("\ntop %zu longest spans\n", longest.size());
    for (const auto& s : longest) {
      std::printf("  %10.3f us  %-24s %-20s @ %.3f us", us(s.dur_ps),
                  a.tracks[s.track].full_name().c_str(), s.name.c_str(),
                  us(s.ts_ps));
      if (s.flow != 0) {
        std::printf("  flow %llu", static_cast<unsigned long long>(s.flow));
      }
      std::printf("\n");
    }
  }

  const auto flows = a.flows();
  if (!flows.empty()) {
    std::uint64_t lat_min = ~std::uint64_t{0};
    std::uint64_t lat_max = 0;
    double lat_sum = 0.0;
    std::map<std::string, double> cat_sum;
    for (const auto& f : flows) {
      lat_min = std::min(lat_min, f.latency_ps());
      lat_max = std::max(lat_max, f.latency_ps());
      lat_sum += static_cast<double>(f.latency_ps());
      for (const auto& [cat, ps] : f.by_category_ps) {
        cat_sum[cat] += static_cast<double>(ps);
      }
    }
    const double n = static_cast<double>(flows.size());
    std::printf("\nflows: %zu messages, latency min/mean/max = "
                "%.3f / %.3f / %.3f us\n",
                flows.size(), us(lat_min), lat_sum / n / 1e6, us(lat_max));
    std::printf("  mean per-message span time by category:\n");
    for (const auto& [cat, sum] : cat_sum) {
      std::printf("    %-10s %10.3f us\n", cat.c_str(), sum / n / 1e6);
    }
  }
  return 0;
}

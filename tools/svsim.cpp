// svsim: command-line driver for the simulated StarT-Voyager machine.
//
// Runs a parameterized workload and dumps machine-wide statistics —
// the quickest way to poke at configuration questions ("what does the bus
// occupancy look like at 8 nodes?", "how many bus retries does a racing
// S-COMA consumer cause?") without writing a program.
//
// Usage:
//   svsim <workload> [key=value ...]
//
// Workloads:
//   msg       all-to-all Basic messaging       (nodes, count, bytes)
//   express   all-to-all Express messaging     (nodes, count)
//   xfer      block transfer                   (approach, bytes)
//   dma       DMA write                        (bytes)
//   scoma     random shared-memory traffic     (nodes, ops, words, seed)
//   numa      random NUMA traffic              (nodes, ops, words, seed)
//   reliable  ring traffic over ReliableChannel (nodes, count, bytes,
//             window, timeout_us, give_up)
//
// Application runtime workloads (src/app/): real parallel programs run
// through the SMPI-style World/Comm API over a selectable transport.
// App keys: ranks=N (0 = one per node) transport=msg|shm|reliable
//   app.shm=numa|scoma; the reliable transport honors window/timeout_us/
//   give_up like the `reliable` workload.
//   app.stencil    Jacobi halo exchange    (nx, ny, iters, point_cycles)
//   app.allreduce  ring-allreduce sweep    (min_elems, max_elems, iters)
//   app.kv         key-value request/reply (servers, requests, keys,
//                  value_bytes, seed, op_cycles)
//
// Common keys: nodes=N net=fattree|ideal radix=K stats=0|1
//   stats_format=text|json deadline_ms=N trace=FILE trace_buf=N
//   trace_stream=FILE (stream Chrome JSON incrementally: bounded memory
//   for arbitrarily long traces, no ring overwrites in the file;
//   sequential machines only — a partitioned run has no global record
//   order until the merge)
//
// Parallel execution: threads=N partitions the machine into one event
// domain per node on N worker threads (results are bit-identical to
// threads=0). Partitioning needs the ideal network, so threads>0 defaults
// net=ideal; combining threads>0 with net=fattree is an error. The xfer
// workload drives the machine through a sequential-only harness and
// rejects threads>0.
//
// Fault injection (all workloads): fault.drop_rate=P fault.corrupt_rate=P
//   fault.link_down_rate=P fault.router_stall_rate=P fault.starve_rate=P
//   fault.rx_overflow_rate=P fault.seed=N (see fault::Plan::from_config).
//   Unreliable workloads will typically time out or hang under drops; the
//   `reliable` workload and reliable-transport app.* workloads recover.
//
// Checkpointing (DESIGN.md §14):
//   --checkpoint-at=TICK [--checkpoint-out=FILE]   snapshot at the first
//       epoch boundary at/after TICK (picoseconds), then keep running
//   --checkpoint-every=TICKS [--checkpoint-out=PREFIX]   periodic
//       snapshots PREFIX.<tick>.svck — the raw material for bisecting a
//       failing tick range (EXPERIMENTS.md Ext-Q)
//   --restore=FILE   rebuild the run from the snapshot's embedded config,
//       replay to its capture tick, byte-verify every component chunk
//       against the file, then continue to completion. Extra key=value
//       args are rejected: the snapshot is the configuration.
//   (key=value spellings ckpt.at / ckpt.every / ckpt.out also work.)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "app/apps.hpp"
#include "ckpt/capture.hpp"
#include "msg/dma.hpp"
#include "msg/reliable.hpp"
#include "shm/numa_region.hpp"
#include "shm/scoma_region.hpp"
#include "sim/config.hpp"
#include "sim/random.hpp"
#include "sys/stats_dump.hpp"
#include "trace/chrome_sink.hpp"
#include "xfer/approaches.hpp"

using namespace sv;

namespace {

sys::Machine::Params machine_params(const sim::Config& cfg) {
  sys::Machine::Params p;
  p.nodes = cfg.get_u64("nodes", 2);
  p.radix = static_cast<unsigned>(cfg.get_u64("radix", 4));
  p.threads = static_cast<unsigned>(cfg.get_u64("threads", 0));
  p.net = cfg.get_string("net", p.threads > 0 ? "ideal" : "fattree") ==
                  "ideal"
              ? sys::Machine::NetKind::kIdeal
              : sys::Machine::NetKind::kFatTree;
  p.node.dram_size = cfg.get_u64("dram_mb", 16) * 1024 * 1024;
  p.node.scoma_size = cfg.get_u64("scoma_mb", 2) * 1024 * 1024;
  p.node.enable_scoma = cfg.get_bool("scoma", true);
  p.fault = fault::Plan::from_config(cfg);
  return p;
}

/// The workload-driver boilerplate every run_* repeats, factored out: the
/// per-node completion flags (one per node so each is only ever written by
/// the domain that owns that node — the pattern that keeps every workload
/// valid under threads=N), the run-until-deadline loop with its timeout
/// diagnostic, elapsed-simulated-time reporting, and the stats dump —
/// which lives here so workloads with extra counters (the app runtime)
/// can append them while the owning objects are still alive.
class Harness {
 public:
  Harness(sys::Machine& machine, const sim::Config& cfg)
      : machine_(machine), cfg_(cfg), done_(machine.size(), 0) {}

  [[nodiscard]] sys::Machine& machine() { return machine_; }
  [[nodiscard]] std::uint8_t* done_flag(sim::NodeId n) { return &done_[n]; }

  /// Drive the machine until every per-node done flag is set.
  bool drive() {
    return drive([this] {
      for (const auto f : done_) {
        if (f == 0) {
          return false;
        }
      }
      return true;
    });
  }

  /// App workloads register their World so its runtime state rides along
  /// in every capture; restore mode registers the loaded snapshot so the
  /// replay is byte-verified at the capture tick.
  void set_world(const app::World* world) { world_ = world; }
  void set_restore(const ckpt::Snapshot* snap) { restore_ = snap; }
  void set_workload(std::string name) { workload_ = std::move(name); }

  /// Drive the machine until `ready`; on deadline expiry prints the
  /// timeout diagnostic and returns false. Pauses at every scheduled
  /// checkpoint/verify tick on the way (epoch boundaries, so the pause
  /// points — and the snapshots — are identical for every threads=).
  bool drive(const std::function<bool()>& ready) {
    t0_ = machine_.now();
    const sim::Tick deadline =
        machine_.now() +
        cfg_.get_u64("deadline_ms", 2000) * sim::kMillisecond;

    const auto at = cfg_.get_u64("ckpt.at", 0);
    const auto every = cfg_.get_u64("ckpt.every", 0);
    sim::Tick next_save = at != 0 ? at : (every != 0 ? every : 0);
    sim::Tick verify_at = restore_ != nullptr ? restore_->tick : 0;

    while (true) {
      sim::Tick stop = 0;  // 0 = no pause pending
      if (next_save != 0) {
        stop = next_save;
      }
      if (verify_at != 0 && (stop == 0 || verify_at < stop)) {
        stop = verify_at;
      }
      if (stop == 0) {
        break;
      }
      machine_.run_epochs_until(
          [&] { return ready() || machine_.now() >= stop; }, deadline);
      if (machine_.now() < stop) {
        break;  // workload finished (or deadline hit) before the tick
      }
      if (verify_at != 0 && machine_.now() >= verify_at) {
        try {
          ckpt::Snapshot::verify(*restore_, capture());
        } catch (const std::exception& e) {
          std::fprintf(stderr, "svsim: restore verify FAILED: %s\n",
                       e.what());
          return false;
        }
        std::printf("restore: replayed to tick %llu, %zu chunks verified "
                    "byte-identical\n",
                    static_cast<unsigned long long>(restore_->tick),
                    restore_->chunks().size());
        verify_at = 0;
      }
      if (next_save != 0 && machine_.now() >= next_save) {
        save_checkpoint();
        next_save = every != 0 ? machine_.now() + every : 0;
      }
    }

    if (!sys::run_until(machine_, ready, deadline)) {
      std::fprintf(stderr, "svsim: timed out\n");
      return false;
    }
    return true;
  }

  /// The run configuration a snapshot embeds: the workload name plus every
  /// key=value except the ckpt.* directives themselves (a restored run
  /// must not re-checkpoint).
  [[nodiscard]] std::string config_text() const {
    std::string out = "workload=" + workload_ + "\n";
    for (const auto& [key, value] : cfg_.all()) {
      if (key.rfind("ckpt.", 0) == 0) {
        continue;
      }
      out += key + "=" + value + "\n";
    }
    return out;
  }

  [[nodiscard]] ckpt::Snapshot capture() const {
    return ckpt::capture(machine_, config_text(), world_);
  }

  void save_checkpoint() const {
    const auto every = cfg_.get_u64("ckpt.every", 0);
    std::string path = cfg_.get_string("ckpt.out", "svsim.svck");
    if (every != 0) {
      path += "." + std::to_string(machine_.now()) + ".svck";
    }
    const ckpt::Snapshot snap = capture();
    snap.save_file(path);
    std::printf("checkpoint: tick %llu, %zu chunks -> %s\n",
                static_cast<unsigned long long>(snap.tick),
                snap.chunks().size(), path.c_str());
  }

  /// Simulated microseconds between the last drive() start and now.
  [[nodiscard]] double elapsed_us() const {
    return static_cast<double>(machine_.now() - t0_) / 1e6;
  }

  /// Honor stats=0|1 / stats_format=text|json, letting the caller append
  /// extra counters to the registry first. Idempotent: the first call
  /// (typically from a workload that has extra counters to add) wins and
  /// the fallback call in main() becomes a no-op.
  void dump_stats(
      const std::function<void(sim::StatRegistry&)>& extra = nullptr) {
    if (stats_dumped_ || !cfg_.get_bool("stats", false)) {
      return;
    }
    stats_dumped_ = true;
    auto reg = sys::collect_stats(machine_);
    if (extra) {
      extra(reg);
    }
    if (cfg_.get_string("stats_format", "text") == "json") {
      reg.dump_json(std::cout);
    } else {
      std::printf("\n--- machine statistics ---\n");
      reg.dump(std::cout);
    }
  }

 private:
  sys::Machine& machine_;
  const sim::Config& cfg_;
  std::vector<std::uint8_t> done_;
  sim::Tick t0_ = 0;
  bool stats_dumped_ = false;
  std::string workload_;
  const app::World* world_ = nullptr;
  const ckpt::Snapshot* restore_ = nullptr;
};

int run_msg(Harness& h, const sim::Config& cfg, bool express) {
  sys::Machine& machine = h.machine();
  const auto count = cfg.get_u64("count", 100);
  const auto bytes = cfg.get_u64("bytes", 32);
  const auto map = machine.addr_map();

  std::vector<std::unique_ptr<msg::Endpoint>> eps;
  for (sim::NodeId n = 0; n < machine.size(); ++n) {
    eps.push_back(std::make_unique<msg::Endpoint>(
        machine.node(n).ap(), machine.node(n).endpoint_config()));
  }

  for (sim::NodeId n = 0; n < machine.size(); ++n) {
    machine.node(n).ap().run(
        [](msg::Endpoint* ep, msg::AddressMap map, sim::NodeId self,
           std::size_t nodes, std::uint64_t count, std::uint64_t bytes,
           bool express_, std::uint8_t* d) -> sim::Co<void> {
          std::vector<std::byte> payload(bytes);
          for (std::uint64_t i = 0; i < count; ++i) {
            const auto dst =
                static_cast<sim::NodeId>((self + 1 + i % (nodes - 1)) %
                                         nodes);
            if (express_) {
              co_await ep->send_express(
                  static_cast<std::uint8_t>(map.express(dst)), 0,
                  static_cast<std::uint32_t>(i));
            } else {
              co_await ep->send(map.user0(dst), payload);
            }
          }
          for (std::uint64_t i = 0; i < count; ++i) {
            if (express_) {
              (void)co_await ep->recv_express();
            } else {
              (void)co_await ep->recv();
            }
          }
          *d = 1;
        }(eps[n].get(), map, n, machine.size(), count, bytes, express,
          h.done_flag(n)));
  }
  if (!h.drive()) {
    return 1;
  }
  const double us = h.elapsed_us();
  const double total_bytes =
      static_cast<double>(machine.size() * count * (express ? 5 : bytes));
  std::printf("%s all-to-all: %zu nodes x %llu msgs in %.1f us "
              "(%.1f MB/s aggregate payload)\n",
              express ? "express" : "basic", machine.size(),
              static_cast<unsigned long long>(count), us,
              total_bytes / us);
  return 0;
}

int run_xfer(sys::Machine& machine, const sim::Config& cfg) {
  if (machine.partitioned()) {
    std::fprintf(stderr,
                 "svsim: the xfer harness is sequential-only; rerun "
                 "without threads=\n");
    return 2;
  }
  const int approach = static_cast<int>(cfg.get_u64("approach", 3));
  const auto bytes = static_cast<std::uint32_t>(cfg.get_u64("bytes", 16384));
  xfer::BlockTransferHarness harness(machine);
  xfer::TransferSpec spec;
  spec.src = 0x0010'0000;
  spec.dst = approach >= 4 ? niu::kScomaBase + 0x8000 : 0x0040'0000;
  spec.len = bytes;
  xfer::RunOptions opt;
  opt.consume = cfg.get_bool("consume", approach >= 4);
  const auto res = harness.run(approach, spec, opt);
  std::printf("approach %d, %u bytes: notify %.2f us (%.1f MB/s)%s, "
              "tx aP %.2f us / tx sP %.2f us / rx sP %.2f us, %s\n",
              approach, bytes,
              static_cast<double>(res.latency()) / 1e6,
              res.bandwidth_mbps(bytes),
              opt.consume
                  ? (", consumed " +
                     std::to_string(
                         static_cast<double>(res.consume_time - res.start) /
                         1e6) +
                     " us")
                        .c_str()
                  : "",
              static_cast<double>(res.sender_ap_busy) / 1e6,
              static_cast<double>(res.sender_sp_busy) / 1e6,
              static_cast<double>(res.receiver_sp_busy) / 1e6,
              res.ok ? "verified" : "VERIFY FAILED");
  return res.ok ? 0 : 1;
}

int run_dma(Harness& h, const sim::Config& cfg) {
  sys::Machine& machine = h.machine();
  const auto bytes = static_cast<std::uint32_t>(cfg.get_u64("bytes", 65536));
  auto ep0 = machine.node(0).make_endpoint();
  auto ep1 = machine.node(1).make_endpoint();
  bool got = false;
  machine.node(0).ap().run(
      [](msg::Endpoint* ep, msg::AddressMap map,
         std::uint32_t n) -> sim::Co<void> {
        co_await msg::dma_write(*ep, map, 0, 1, 0x100000, 0x200000, n,
                                msg::AddressMap::kUser0L, 1);
      }(&ep0, machine.addr_map(), bytes));
  machine.node(1).ap().run(
      [](msg::Endpoint* ep, bool* d) -> sim::Co<void> {
        (void)co_await ep->recv();
        *d = true;
      }(&ep1, &got));
  if (!h.drive([&] { return got; })) {
    return 1;
  }
  const double us = h.elapsed_us();
  std::printf("dma: %u bytes in %.1f us = %.1f MB/s\n", bytes, us,
              static_cast<double>(bytes) / us);
  return 0;
}

msg::ReliableChannel::Params reliable_params(const sim::Config& cfg) {
  msg::ReliableChannel::Params cp;
  cp.window = cfg.get_u64("window", 16);
  cp.retransmit.base_timeout =
      cfg.get_u64("timeout_us", 50) * sim::kMicrosecond;
  cp.retransmit.give_up_after =
      static_cast<unsigned>(cfg.get_u64("give_up", 8));
  return cp;
}

int run_reliable(Harness& h, const sim::Config& cfg) {
  sys::Machine& machine = h.machine();
  const auto count = cfg.get_u64("count", 100);
  const auto bytes = std::min<std::uint64_t>(
      cfg.get_u64("bytes", 64), msg::ReliableChannel::kMaxPayload);
  const auto map = machine.addr_map();
  const auto cp = reliable_params(cfg);

  std::vector<std::unique_ptr<msg::Endpoint>> eps;
  std::vector<std::unique_ptr<msg::ReliableChannel>> chans;
  for (sim::NodeId n = 0; n < machine.size(); ++n) {
    eps.push_back(std::make_unique<msg::Endpoint>(
        machine.node(n).ap(), machine.node(n).endpoint_config()));
    chans.push_back(
        std::make_unique<msg::ReliableChannel>(*eps[n], map, n, cp));
    chans[n]->set_give_up([&machine, n](sim::NodeId peer) {
      std::fprintf(stderr, "svsim: n%u gave up on peer n%u\n", n, peer);
      machine.node(n).niu().ctrl().shutdown_tx_queue(sys::Node::kTxUser0);
    });
    chans[n]->start();
  }

  // Ring traffic: every node streams `count` payloads to its right
  // neighbour and consumes `count` from its left.
  for (sim::NodeId n = 0; n < machine.size(); ++n) {
    machine.node(n).ap().run(
        [](msg::ReliableChannel* ch, sim::NodeId self, std::size_t nodes,
           std::uint64_t count_, std::uint64_t bytes_,
           std::uint8_t* d) -> sim::Co<void> {
          const auto right = static_cast<sim::NodeId>((self + 1) % nodes);
          const auto left =
              static_cast<sim::NodeId>((self + nodes - 1) % nodes);
          for (std::uint64_t i = 0; i < count_; ++i) {
            std::vector<std::byte> payload(bytes_);
            for (std::size_t b = 0; b < payload.size(); ++b) {
              payload[b] = static_cast<std::byte>(self + i + b);
            }
            co_await ch->send(right, payload);
          }
          for (std::uint64_t i = 0; i < count_; ++i) {
            (void)co_await ch->recv(left);
          }
          *d = 1;
        }(chans[n].get(), n, machine.size(), count, bytes, h.done_flag(n)));
  }

  if (!h.drive()) {
    return 1;
  }
  const double us = h.elapsed_us();
  std::uint64_t retx = 0;
  std::uint64_t corrupt = 0;
  for (auto& ch : chans) {
    retx += ch->stats().retransmitted.value();
    corrupt += ch->stats().corrupt_rejected.value();
  }
  const auto audit = machine.network().audit();
  std::printf(
      "reliable ring: %zu nodes x %llu msgs x %llu B in %.1f us "
      "(%.1f MB/s payload), %llu retransmits, %llu crc rejects, "
      "%llu/%llu packets dropped\n",
      machine.size(), static_cast<unsigned long long>(count),
      static_cast<unsigned long long>(bytes), us,
      static_cast<double>(machine.size() * count * bytes) / us,
      static_cast<unsigned long long>(retx),
      static_cast<unsigned long long>(corrupt),
      static_cast<unsigned long long>(audit.dropped),
      static_cast<unsigned long long>(audit.injected));
  return 0;
}

int run_shm(Harness& h, const sim::Config& cfg, bool scoma) {
  sys::Machine& machine = h.machine();
  const auto ops = cfg.get_u64("ops", 200);
  const auto words = cfg.get_u64("words", 16);
  const auto seed = cfg.get_u64("seed", 42);

  // One driver per node, each with its own seed-derived access stream over
  // the same shared words: the contention is cross-node (that is what the
  // coherence protocols exist for) while every coroutine stays inside the
  // domain that owns its processor, so the workload is valid — and
  // bit-identical — at every threads= value. `ops` counts per node.
  for (sim::NodeId n = 0; n < machine.size(); ++n) {
    machine.node(n).ap().run(
        [](sys::Node* node, std::uint64_t ops_, std::uint64_t words_,
           std::uint64_t seed_, bool scoma_,
           std::uint8_t* d) -> sim::Co<void> {
          sim::Rng rng(seed_);
          shm::ScomaRegion sc(node->ap());
          shm::NumaRegion nm(node->ap());
          for (std::uint64_t i = 0; i < ops_; ++i) {
            const mem::Addr off = 0x1000 + rng.below(words_) * 64;
            if (scoma_) {
              if (rng.chance(0.5)) {
                co_await sc.store<std::uint32_t>(
                    off, static_cast<std::uint32_t>(i));
              } else {
                (void)co_await sc.load<std::uint32_t>(off);
              }
            } else {
              if (rng.chance(0.5)) {
                co_await nm.store<std::uint32_t>(
                    off, static_cast<std::uint32_t>(i));
              } else {
                (void)co_await nm.load<std::uint32_t>(off);
              }
            }
          }
          *d = 1;
        }(&machine.node(n), ops, words,
          seed ^ (0x9e3779b97f4a7c15ull * (n + 1)), scoma, h.done_flag(n)));
  }
  if (!h.drive()) {
    return 1;
  }
  std::printf("%s: %llu ops/node over %llu shared words in %.1f us\n",
              scoma ? "scoma" : "numa",
              static_cast<unsigned long long>(ops),
              static_cast<unsigned long long>(words), h.elapsed_us());
  return 0;
}

/// app.* workloads: run one of the shipped applications (src/app/apps.hpp)
/// through the SMPI-style runtime over the configured transport.
int run_app(Harness& h, const sim::Config& cfg, const std::string& name) {
  sys::Machine& machine = h.machine();

  app::World::Params wp;
  wp.nranks = cfg.get_u64("ranks", 0);
  const std::string transport = cfg.get_string("transport", "msg");
  if (transport == "msg") {
    wp.transport = app::TransportKind::kMsg;
  } else if (transport == "shm") {
    wp.transport = app::TransportKind::kShm;
  } else if (transport == "reliable") {
    wp.transport = app::TransportKind::kReliable;
  } else {
    std::fprintf(stderr, "svsim: unknown transport '%s'\n",
                 transport.c_str());
    return 2;
  }
  wp.shm_region = cfg.get_string("app.shm", "numa") == "scoma"
                      ? app::ShmTransport::Region::kScoma
                      : app::ShmTransport::Region::kNuma;
  wp.reliable = reliable_params(cfg);

  app::AppResult result;
  app::World::Program program;
  if (name == "app.stencil") {
    app::StencilParams p;
    p.nx = cfg.get_u64("nx", p.nx);
    p.ny = cfg.get_u64("ny", p.ny);
    p.iters = cfg.get_u64("iters", p.iters);
    p.point_cycles = cfg.get_u64("point_cycles", p.point_cycles);
    program = app::make_stencil(p, &result);
  } else if (name == "app.allreduce") {
    app::AllreduceParams p;
    p.min_elems = cfg.get_u64("min_elems", p.min_elems);
    p.max_elems = cfg.get_u64("max_elems", p.max_elems);
    p.iters = cfg.get_u64("iters", p.iters);
    program = app::make_allreduce_sweep(p, &result);
  } else if (name == "app.kv") {
    app::KvParams p;
    p.servers = cfg.get_u64("servers", p.servers);
    p.requests = cfg.get_u64("requests", p.requests);
    p.keys = cfg.get_u64("keys", p.keys);
    p.value_bytes = cfg.get_u64("value_bytes", p.value_bytes);
    p.seed = cfg.get_u64("seed", p.seed);
    p.op_cycles = cfg.get_u64("op_cycles", p.op_cycles);
    program = app::make_kv(p, &result);
  } else {
    std::fprintf(stderr, "svsim: unknown app workload '%s'\n", name.c_str());
    return 2;
  }

  app::World world(machine, wp);
  world.launch(program);
  h.set_world(&world);
  if (!h.drive([&] { return world.done(); })) {
    return 1;
  }
  std::printf("%s over %s: %zu ranks on %zu nodes, %llu ops, "
              "checksum %.10g, %llu errors in %.1f us\n",
              name.c_str(), world.transport(0).kind(), world.nranks(),
              machine.size(), static_cast<unsigned long long>(result.ops),
              result.checksum,
              static_cast<unsigned long long>(result.errors),
              h.elapsed_us());
  // Dump here (not from main) so the World's app.* counters are included.
  h.dump_stats([&](sim::StatRegistry& reg) { world.add_stats(reg); });
  return result.errors == 0 ? 0 : 1;
}

}  // namespace

namespace {

/// Translate the --checkpoint-*/--restore spellings into their ckpt.*
/// config keys; returns the restore path ("" = none).
std::string translate_ckpt_args(std::vector<std::string>& args) {
  std::string restore;
  for (auto& a : args) {
    for (const auto& [flag, key] :
         {std::pair<const char*, const char*>{"--checkpoint-at=", "ckpt.at="},
          {"--checkpoint-every=", "ckpt.every="},
          {"--checkpoint-out=", "ckpt.out="}}) {
      if (a.rfind(flag, 0) == 0) {
        a = key + a.substr(std::strlen(flag));
      }
    }
    if (a.rfind("--restore=", 0) == 0) {
      restore = a.substr(std::strlen("--restore="));
      a = "ckpt.restore=1";  // placeholder; stripped from snapshots anyway
    }
  }
  return restore;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: svsim <msg|express|xfer|dma|scoma|numa|reliable|"
                 "app.stencil|app.allreduce|app.kv> [key=value ...]\n"
                 "       svsim --restore=FILE\n");
    return 2;
  }
  std::string workload = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (workload.rfind("--", 0) == 0) {
    args.insert(args.begin(), workload);
    workload.clear();
  }
  const std::string restore_path = translate_ckpt_args(args);

  sim::Config cfg;
  ckpt::Snapshot restored;
  try {
    if (!restore_path.empty()) {
      // The snapshot is the configuration: workload and every key come
      // from its embedded config text, one key=value (or workload=) line
      // each. Anything else on the command line would silently fork the
      // replay from the original run, so extra args are rejected.
      for (const auto& a : args) {
        if (a != "ckpt.restore=1") {
          throw std::runtime_error("--restore takes no other arguments");
        }
      }
      restored = ckpt::Snapshot::load_file(restore_path);
      std::vector<std::string> lines;
      std::size_t pos = 0;
      while (pos < restored.config.size()) {
        const std::size_t nl = restored.config.find('\n', pos);
        const std::size_t end =
            nl == std::string::npos ? restored.config.size() : nl;
        if (end > pos) {
          lines.push_back(restored.config.substr(pos, end - pos));
        }
        pos = end + 1;
      }
      for (auto& line : lines) {
        if (line.rfind("workload=", 0) == 0) {
          workload = line.substr(std::strlen("workload="));
          line = lines.back();
          lines.pop_back();
          break;
        }
      }
      cfg = sim::Config::from_args(lines);
      if (workload.empty()) {
        throw std::runtime_error("snapshot config names no workload");
      }
    } else {
      if (workload.empty()) {
        throw std::runtime_error("no workload given");
      }
      cfg = sim::Config::from_args(args);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "svsim: %s\n", e.what());
    return 2;
  }

  std::unique_ptr<sys::Machine> machine_ptr;
  try {
    machine_ptr = std::make_unique<sys::Machine>(machine_params(cfg));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "svsim: %s\n", e.what());
    return 2;
  }
  sys::Machine& machine = *machine_ptr;

  const std::string trace_file = cfg.get_string("trace", "");
  const std::string trace_stream = cfg.get_string("trace_stream", "");
  if (!trace_file.empty() || !trace_stream.empty()) {
    machine.enable_tracing(
        cfg.get_u64("trace_buf", trace::Tracer::kDefaultCapacity));
  }
  std::ofstream stream_os;
  std::unique_ptr<trace::ChromeStreamSink> stream_sink;
  if (!trace_stream.empty()) {
    if (machine.tracers().size() != 1) {
      std::fprintf(stderr,
                   "svsim: trace_stream requires a sequential machine "
                   "(threads=0); use trace= for partitioned runs\n");
      return 2;
    }
    stream_os.open(trace_stream);
    if (!stream_os) {
      std::fprintf(stderr, "svsim: cannot open %s\n", trace_stream.c_str());
      return 2;
    }
    stream_sink = std::make_unique<trace::ChromeStreamSink>(stream_os);
    machine.tracer()->set_sink(stream_sink.get());
  }

  Harness harness(machine, cfg);
  harness.set_workload(workload);
  if (!restore_path.empty()) {
    harness.set_restore(&restored);
  }
  int rc = 2;
  if (workload == "msg") {
    rc = run_msg(harness, cfg, false);
  } else if (workload == "express") {
    rc = run_msg(harness, cfg, true);
  } else if (workload == "xfer") {
    rc = run_xfer(machine, cfg);
  } else if (workload == "dma") {
    rc = run_dma(harness, cfg);
  } else if (workload == "scoma") {
    rc = run_shm(harness, cfg, true);
  } else if (workload == "numa") {
    rc = run_shm(harness, cfg, false);
  } else if (workload == "reliable") {
    rc = run_reliable(harness, cfg);
  } else if (workload.rfind("app.", 0) == 0) {
    rc = run_app(harness, cfg, workload);
  } else {
    std::fprintf(stderr, "svsim: unknown workload '%s'\n",
                 workload.c_str());
    return 2;
  }

  if (stream_sink) {
    stream_sink->finish(machine.now());
    machine.tracer()->set_sink(nullptr);
    if (!stream_os) {
      std::fprintf(stderr, "svsim: write failed for %s\n",
                   trace_stream.c_str());
      return 1;
    }
    std::printf("trace: %llu events streamed (%llu flows evicted) -> %s\n",
                static_cast<unsigned long long>(stream_sink->events_written()),
                static_cast<unsigned long long>(stream_sink->flows_evicted()),
                trace_stream.c_str());
  }
  if (!trace_file.empty()) {
    // Merge the per-domain tracers into one canonical timeline — for a
    // sequential machine that is a single-tracer merge, so the file is the
    // same either way.
    const auto tracers = machine.tracers();
    std::size_t events = 0;
    std::uint64_t dropped = 0;
    for (const auto* tr : tracers) {
      events += tr->size();
      dropped += tr->dropped();
    }
    try {
      trace::write_chrome_trace_file(
          tracers, trace_file, trace::ChromeWriteOptions{machine.now()});
    } catch (const std::exception& e) {
      std::fprintf(stderr, "svsim: %s\n", e.what());
      return 1;
    }
    std::printf("trace: %zu events (%llu dropped) -> %s\n", events,
                static_cast<unsigned long long>(dropped),
                trace_file.c_str());
  }

  harness.dump_stats();
  return rc;
}

// svexplore: systematic fault-scenario exploration for the reliable
// channel (DESIGN.md §14, EXPERIMENTS.md Ext-Q).
//
// Enumerates scripted packet-drop patterns against the reliable-ring
// workload — every node streams verified payloads around a ring over
// msg::ReliableChannel — and reports either the minimal pattern that
// breaks the channel's exactly-once / in-order / give-up contract, or a
// proof that no pattern of at most max_drops drops (within the explored
// opportunity horizon) can break it. The search is deterministic: same
// arguments, same answer, run to run and machine to machine.
//
// Usage:
//   svexplore [--snapshot=FILE] [key=value ...]
//
// With --snapshot (a checkpoint written by checkpoint_reliable_ring or
// ckpt_replay_test's committed corpus), the workload spec comes from the
// snapshot, every candidate run first replays to the capture tick and
// byte-verifies against the file, and only drop placements *after* the
// checkpoint are explored.
//
// Keys (standalone mode): nodes count bytes window timeout_us give_up
//   deadline_ms fault_seed — the ring spec; and the search bounds
//   max_drops (default 2) max_opportunities (0 = observed horizon)
//   max_runs (default 2000).
//
// write_snapshot=FILE at=TICK: instead of exploring, run the fault-free
// ring to the first epoch boundary at/after TICK, write the checkpoint
// (the file --snapshot= later consumes), and exit.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "ckpt/scenario.hpp"
#include "sim/config.hpp"

using namespace sv;

int main(int argc, char** argv) {
  std::string snapshot_path;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--snapshot=", 0) == 0) {
      snapshot_path = a.substr(std::strlen("--snapshot="));
    } else {
      args.push_back(a);
    }
  }

  sim::Config cfg;
  try {
    cfg = sim::Config::from_args(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "svexplore: %s\n", e.what());
    return 2;
  }

  ckpt::ExploreParams ep;
  ep.max_drops = static_cast<std::uint32_t>(cfg.get_u64("max_drops", 2));
  ep.max_opportunities = cfg.get_u64("max_opportunities", 0);
  ep.max_runs = cfg.get_u64("max_runs", 2000);

  try {
    ckpt::RingSpec spec;
    ckpt::Snapshot snap;
    const ckpt::Snapshot* resume = nullptr;
    if (!snapshot_path.empty()) {
      snap = ckpt::Snapshot::load_file(snapshot_path);
      spec = ckpt::RingSpec::from_config(snap.config);
      resume = &snap;
      std::printf("svexplore: exploring from %s (tick %llu)\n",
                  snapshot_path.c_str(),
                  static_cast<unsigned long long>(snap.tick));
    } else {
      spec.nodes = cfg.get_u64("nodes", spec.nodes);
      spec.count = cfg.get_u64("count", spec.count);
      spec.bytes = cfg.get_u64("bytes", spec.bytes);
      spec.window = cfg.get_u64("window", spec.window);
      spec.timeout_us = cfg.get_u64("timeout_us", spec.timeout_us);
      spec.give_up = cfg.get_u64("give_up", spec.give_up);
      spec.deadline_ms = cfg.get_u64("deadline_ms", spec.deadline_ms);
      spec.fault_seed = cfg.get_u64("fault_seed", spec.fault_seed);
    }

    const std::string write_path = cfg.get_string("write_snapshot", "");
    if (!write_path.empty()) {
      const ckpt::Snapshot out =
          ckpt::checkpoint_reliable_ring(spec, cfg.get_u64("at", 0));
      out.save_file(write_path);
      std::printf("svexplore: checkpoint at tick %llu (%zu chunks) -> %s\n",
                  static_cast<unsigned long long>(out.tick),
                  out.chunks().size(), write_path.c_str());
      return 0;
    }

    const ckpt::ExploreResult res =
        ckpt::explore(ckpt::reliable_ring_scenario(spec, resume), ep);

    std::printf("svexplore: %llu runs, %llu dedup-pruned, "
                "%llu horizon-pruned\n",
                static_cast<unsigned long long>(res.runs),
                static_cast<unsigned long long>(res.pruned_dedup),
                static_cast<unsigned long long>(res.pruned_horizon));
    if (res.found) {
      std::string pattern;
      for (const std::uint64_t i : res.minimal) {
        pattern += (pattern.empty() ? "" : ",") + std::to_string(i);
      }
      std::printf("VIOLATION: minimal drop pattern {%s}%s\n  %s\n",
                  pattern.c_str(),
                  res.baseline_violation ? " (baseline, no drops)" : "",
                  res.detail.c_str());
      return 1;
    }
    if (res.exhausted) {
      std::printf("PROVEN: no pattern of <= %u drops breaks the contract "
                  "(bound searched exhaustively)\n",
                  ep.max_drops);
      return 0;
    }
    std::printf("INCONCLUSIVE: run budget (%llu) exhausted before the "
                "bound was covered\n",
                static_cast<unsigned long long>(ep.max_runs));
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "svexplore: %s\n", e.what());
    return 2;
  }
}

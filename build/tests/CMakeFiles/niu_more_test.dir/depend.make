# Empty dependencies file for niu_more_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/niu_more_test.dir/niu_more_test.cpp.o"
  "CMakeFiles/niu_more_test.dir/niu_more_test.cpp.o.d"
  "niu_more_test"
  "niu_more_test.pdb"
  "niu_more_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/niu_more_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/niu_unit_test.dir/niu_unit_test.cpp.o"
  "CMakeFiles/niu_unit_test.dir/niu_unit_test.cpp.o.d"
  "niu_unit_test"
  "niu_unit_test.pdb"
  "niu_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/niu_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

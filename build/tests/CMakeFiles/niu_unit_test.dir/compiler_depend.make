# Empty compiler generated dependencies file for niu_unit_test.
# This may be replaced when dependencies are built.

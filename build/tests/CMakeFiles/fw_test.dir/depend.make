# Empty dependencies file for fw_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fw_test.dir/fw_test.cpp.o"
  "CMakeFiles/fw_test.dir/fw_test.cpp.o.d"
  "fw_test"
  "fw_test.pdb"
  "fw_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

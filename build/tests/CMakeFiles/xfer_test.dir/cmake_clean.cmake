file(REMOVE_RECURSE
  "CMakeFiles/xfer_test.dir/xfer_test.cpp.o"
  "CMakeFiles/xfer_test.dir/xfer_test.cpp.o.d"
  "xfer_test"
  "xfer_test.pdb"
  "xfer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xfer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for xfer_test.
# This may be replaced when dependencies are built.

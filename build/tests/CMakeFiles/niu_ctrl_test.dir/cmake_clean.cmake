file(REMOVE_RECURSE
  "CMakeFiles/niu_ctrl_test.dir/niu_ctrl_test.cpp.o"
  "CMakeFiles/niu_ctrl_test.dir/niu_ctrl_test.cpp.o.d"
  "niu_ctrl_test"
  "niu_ctrl_test.pdb"
  "niu_ctrl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/niu_ctrl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

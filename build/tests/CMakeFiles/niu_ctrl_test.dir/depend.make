# Empty dependencies file for niu_ctrl_test.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/niu_unit_test[1]_include.cmake")
include("/root/repo/build/tests/niu_ctrl_test[1]_include.cmake")
include("/root/repo/build/tests/endpoint_test[1]_include.cmake")
include("/root/repo/build/tests/shm_test[1]_include.cmake")
include("/root/repo/build/tests/fw_test[1]_include.cmake")
include("/root/repo/build/tests/xfer_test[1]_include.cmake")
include("/root/repo/build/tests/machine_test[1]_include.cmake")
include("/root/repo/build/tests/ext_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/msg_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/router_test[1]_include.cmake")
include("/root/repo/build/tests/niu_more_test[1]_include.cmake")
include("/root/repo/build/tests/sys_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")

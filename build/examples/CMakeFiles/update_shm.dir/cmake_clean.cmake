file(REMOVE_RECURSE
  "CMakeFiles/update_shm.dir/update_shm.cpp.o"
  "CMakeFiles/update_shm.dir/update_shm.cpp.o.d"
  "update_shm"
  "update_shm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/update_shm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

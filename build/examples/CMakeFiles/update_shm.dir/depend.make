# Empty dependencies file for update_shm.
# This may be replaced when dependencies are built.

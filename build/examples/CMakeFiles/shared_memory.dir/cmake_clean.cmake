file(REMOVE_RECURSE
  "CMakeFiles/shared_memory.dir/shared_memory.cpp.o"
  "CMakeFiles/shared_memory.dir/shared_memory.cpp.o.d"
  "shared_memory"
  "shared_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

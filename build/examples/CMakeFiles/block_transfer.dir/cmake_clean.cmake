file(REMOVE_RECURSE
  "CMakeFiles/block_transfer.dir/block_transfer.cpp.o"
  "CMakeFiles/block_transfer.dir/block_transfer.cpp.o.d"
  "block_transfer"
  "block_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for block_transfer.
# This may be replaced when dependencies are built.

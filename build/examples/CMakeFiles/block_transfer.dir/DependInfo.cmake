
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/block_transfer.cpp" "examples/CMakeFiles/block_transfer.dir/block_transfer.cpp.o" "gcc" "examples/CMakeFiles/block_transfer.dir/block_transfer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sv_xfer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sv_sys.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sv_shm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sv_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sv_fw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sv_niu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sv_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sv_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sv_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

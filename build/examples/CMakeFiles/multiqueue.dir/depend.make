# Empty dependencies file for multiqueue.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/multiqueue.dir/multiqueue.cpp.o"
  "CMakeFiles/multiqueue.dir/multiqueue.cpp.o.d"
  "multiqueue"
  "multiqueue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiqueue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

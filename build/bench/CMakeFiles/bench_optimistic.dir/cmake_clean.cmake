file(REMOVE_RECURSE
  "CMakeFiles/bench_optimistic.dir/bench_optimistic.cpp.o"
  "CMakeFiles/bench_optimistic.dir/bench_optimistic.cpp.o.d"
  "bench_optimistic"
  "bench_optimistic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_optimistic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

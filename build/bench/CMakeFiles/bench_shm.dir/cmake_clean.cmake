file(REMOVE_RECURSE
  "CMakeFiles/bench_shm.dir/bench_shm.cpp.o"
  "CMakeFiles/bench_shm.dir/bench_shm.cpp.o.d"
  "bench_shm"
  "bench_shm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_rxcache.dir/bench_rxcache.cpp.o"
  "CMakeFiles/bench_rxcache.dir/bench_rxcache.cpp.o.d"
  "bench_rxcache"
  "bench_rxcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rxcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_rxcache.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_txarb.dir/bench_txarb.cpp.o"
  "CMakeFiles/bench_txarb.dir/bench_txarb.cpp.o.d"
  "bench_txarb"
  "bench_txarb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_txarb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_txarb.
# This may be replaced when dependencies are built.

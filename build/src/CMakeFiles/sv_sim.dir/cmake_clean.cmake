file(REMOVE_RECURSE
  "CMakeFiles/sv_sim.dir/sim/config.cpp.o"
  "CMakeFiles/sv_sim.dir/sim/config.cpp.o.d"
  "CMakeFiles/sv_sim.dir/sim/event.cpp.o"
  "CMakeFiles/sv_sim.dir/sim/event.cpp.o.d"
  "CMakeFiles/sv_sim.dir/sim/kernel.cpp.o"
  "CMakeFiles/sv_sim.dir/sim/kernel.cpp.o.d"
  "CMakeFiles/sv_sim.dir/sim/logger.cpp.o"
  "CMakeFiles/sv_sim.dir/sim/logger.cpp.o.d"
  "CMakeFiles/sv_sim.dir/sim/stats.cpp.o"
  "CMakeFiles/sv_sim.dir/sim/stats.cpp.o.d"
  "libsv_sim.a"
  "libsv_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sv_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

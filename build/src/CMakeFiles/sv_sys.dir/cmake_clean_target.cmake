file(REMOVE_RECURSE
  "libsv_sys.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/sv_sys.dir/sys/experiment.cpp.o"
  "CMakeFiles/sv_sys.dir/sys/experiment.cpp.o.d"
  "CMakeFiles/sv_sys.dir/sys/machine.cpp.o"
  "CMakeFiles/sv_sys.dir/sys/machine.cpp.o.d"
  "CMakeFiles/sv_sys.dir/sys/node.cpp.o"
  "CMakeFiles/sv_sys.dir/sys/node.cpp.o.d"
  "CMakeFiles/sv_sys.dir/sys/stats_dump.cpp.o"
  "CMakeFiles/sv_sys.dir/sys/stats_dump.cpp.o.d"
  "libsv_sys.a"
  "libsv_sys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sv_sys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sv_sys.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsv_cpu.a"
)

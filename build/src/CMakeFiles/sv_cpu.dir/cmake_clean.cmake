file(REMOVE_RECURSE
  "CMakeFiles/sv_cpu.dir/cpu/processor.cpp.o"
  "CMakeFiles/sv_cpu.dir/cpu/processor.cpp.o.d"
  "libsv_cpu.a"
  "libsv_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sv_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

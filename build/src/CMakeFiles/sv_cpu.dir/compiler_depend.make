# Empty compiler generated dependencies file for sv_cpu.
# This may be replaced when dependencies are built.

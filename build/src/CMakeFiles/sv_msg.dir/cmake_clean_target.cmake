file(REMOVE_RECURSE
  "libsv_msg.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/sv_msg.dir/msg/channel.cpp.o"
  "CMakeFiles/sv_msg.dir/msg/channel.cpp.o.d"
  "CMakeFiles/sv_msg.dir/msg/dma.cpp.o"
  "CMakeFiles/sv_msg.dir/msg/dma.cpp.o.d"
  "CMakeFiles/sv_msg.dir/msg/dram_queue.cpp.o"
  "CMakeFiles/sv_msg.dir/msg/dram_queue.cpp.o.d"
  "CMakeFiles/sv_msg.dir/msg/endpoint.cpp.o"
  "CMakeFiles/sv_msg.dir/msg/endpoint.cpp.o.d"
  "libsv_msg.a"
  "libsv_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sv_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

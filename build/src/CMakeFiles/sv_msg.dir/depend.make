# Empty dependencies file for sv_msg.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/msg/channel.cpp" "src/CMakeFiles/sv_msg.dir/msg/channel.cpp.o" "gcc" "src/CMakeFiles/sv_msg.dir/msg/channel.cpp.o.d"
  "/root/repo/src/msg/dma.cpp" "src/CMakeFiles/sv_msg.dir/msg/dma.cpp.o" "gcc" "src/CMakeFiles/sv_msg.dir/msg/dma.cpp.o.d"
  "/root/repo/src/msg/dram_queue.cpp" "src/CMakeFiles/sv_msg.dir/msg/dram_queue.cpp.o" "gcc" "src/CMakeFiles/sv_msg.dir/msg/dram_queue.cpp.o.d"
  "/root/repo/src/msg/endpoint.cpp" "src/CMakeFiles/sv_msg.dir/msg/endpoint.cpp.o" "gcc" "src/CMakeFiles/sv_msg.dir/msg/endpoint.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sv_niu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sv_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sv_fw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sv_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sv_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

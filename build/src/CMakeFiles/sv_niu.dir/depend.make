# Empty dependencies file for sv_niu.
# This may be replaced when dependencies are built.

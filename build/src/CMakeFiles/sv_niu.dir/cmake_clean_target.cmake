file(REMOVE_RECURSE
  "libsv_niu.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/sv_niu.dir/niu/abiu.cpp.o"
  "CMakeFiles/sv_niu.dir/niu/abiu.cpp.o.d"
  "CMakeFiles/sv_niu.dir/niu/block_ops.cpp.o"
  "CMakeFiles/sv_niu.dir/niu/block_ops.cpp.o.d"
  "CMakeFiles/sv_niu.dir/niu/command.cpp.o"
  "CMakeFiles/sv_niu.dir/niu/command.cpp.o.d"
  "CMakeFiles/sv_niu.dir/niu/ctrl.cpp.o"
  "CMakeFiles/sv_niu.dir/niu/ctrl.cpp.o.d"
  "CMakeFiles/sv_niu.dir/niu/niu.cpp.o"
  "CMakeFiles/sv_niu.dir/niu/niu.cpp.o.d"
  "CMakeFiles/sv_niu.dir/niu/queues.cpp.o"
  "CMakeFiles/sv_niu.dir/niu/queues.cpp.o.d"
  "CMakeFiles/sv_niu.dir/niu/sbiu.cpp.o"
  "CMakeFiles/sv_niu.dir/niu/sbiu.cpp.o.d"
  "CMakeFiles/sv_niu.dir/niu/txu_rxu.cpp.o"
  "CMakeFiles/sv_niu.dir/niu/txu_rxu.cpp.o.d"
  "libsv_niu.a"
  "libsv_niu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sv_niu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

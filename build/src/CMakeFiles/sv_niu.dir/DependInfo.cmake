
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/niu/abiu.cpp" "src/CMakeFiles/sv_niu.dir/niu/abiu.cpp.o" "gcc" "src/CMakeFiles/sv_niu.dir/niu/abiu.cpp.o.d"
  "/root/repo/src/niu/block_ops.cpp" "src/CMakeFiles/sv_niu.dir/niu/block_ops.cpp.o" "gcc" "src/CMakeFiles/sv_niu.dir/niu/block_ops.cpp.o.d"
  "/root/repo/src/niu/command.cpp" "src/CMakeFiles/sv_niu.dir/niu/command.cpp.o" "gcc" "src/CMakeFiles/sv_niu.dir/niu/command.cpp.o.d"
  "/root/repo/src/niu/ctrl.cpp" "src/CMakeFiles/sv_niu.dir/niu/ctrl.cpp.o" "gcc" "src/CMakeFiles/sv_niu.dir/niu/ctrl.cpp.o.d"
  "/root/repo/src/niu/niu.cpp" "src/CMakeFiles/sv_niu.dir/niu/niu.cpp.o" "gcc" "src/CMakeFiles/sv_niu.dir/niu/niu.cpp.o.d"
  "/root/repo/src/niu/queues.cpp" "src/CMakeFiles/sv_niu.dir/niu/queues.cpp.o" "gcc" "src/CMakeFiles/sv_niu.dir/niu/queues.cpp.o.d"
  "/root/repo/src/niu/sbiu.cpp" "src/CMakeFiles/sv_niu.dir/niu/sbiu.cpp.o" "gcc" "src/CMakeFiles/sv_niu.dir/niu/sbiu.cpp.o.d"
  "/root/repo/src/niu/txu_rxu.cpp" "src/CMakeFiles/sv_niu.dir/niu/txu_rxu.cpp.o" "gcc" "src/CMakeFiles/sv_niu.dir/niu/txu_rxu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sv_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sv_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

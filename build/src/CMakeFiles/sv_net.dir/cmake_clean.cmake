file(REMOVE_RECURSE
  "CMakeFiles/sv_net.dir/net/fat_tree.cpp.o"
  "CMakeFiles/sv_net.dir/net/fat_tree.cpp.o.d"
  "CMakeFiles/sv_net.dir/net/link.cpp.o"
  "CMakeFiles/sv_net.dir/net/link.cpp.o.d"
  "CMakeFiles/sv_net.dir/net/network.cpp.o"
  "CMakeFiles/sv_net.dir/net/network.cpp.o.d"
  "CMakeFiles/sv_net.dir/net/packet.cpp.o"
  "CMakeFiles/sv_net.dir/net/packet.cpp.o.d"
  "CMakeFiles/sv_net.dir/net/router.cpp.o"
  "CMakeFiles/sv_net.dir/net/router.cpp.o.d"
  "libsv_net.a"
  "libsv_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sv_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sv_net.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsv_net.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/sv_mem.dir/mem/backing_store.cpp.o"
  "CMakeFiles/sv_mem.dir/mem/backing_store.cpp.o.d"
  "CMakeFiles/sv_mem.dir/mem/bus.cpp.o"
  "CMakeFiles/sv_mem.dir/mem/bus.cpp.o.d"
  "CMakeFiles/sv_mem.dir/mem/cache.cpp.o"
  "CMakeFiles/sv_mem.dir/mem/cache.cpp.o.d"
  "CMakeFiles/sv_mem.dir/mem/cls_sram.cpp.o"
  "CMakeFiles/sv_mem.dir/mem/cls_sram.cpp.o.d"
  "CMakeFiles/sv_mem.dir/mem/dram.cpp.o"
  "CMakeFiles/sv_mem.dir/mem/dram.cpp.o.d"
  "CMakeFiles/sv_mem.dir/mem/sram.cpp.o"
  "CMakeFiles/sv_mem.dir/mem/sram.cpp.o.d"
  "libsv_mem.a"
  "libsv_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sv_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsv_mem.a"
)

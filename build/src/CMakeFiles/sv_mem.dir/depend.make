# Empty dependencies file for sv_mem.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/backing_store.cpp" "src/CMakeFiles/sv_mem.dir/mem/backing_store.cpp.o" "gcc" "src/CMakeFiles/sv_mem.dir/mem/backing_store.cpp.o.d"
  "/root/repo/src/mem/bus.cpp" "src/CMakeFiles/sv_mem.dir/mem/bus.cpp.o" "gcc" "src/CMakeFiles/sv_mem.dir/mem/bus.cpp.o.d"
  "/root/repo/src/mem/cache.cpp" "src/CMakeFiles/sv_mem.dir/mem/cache.cpp.o" "gcc" "src/CMakeFiles/sv_mem.dir/mem/cache.cpp.o.d"
  "/root/repo/src/mem/cls_sram.cpp" "src/CMakeFiles/sv_mem.dir/mem/cls_sram.cpp.o" "gcc" "src/CMakeFiles/sv_mem.dir/mem/cls_sram.cpp.o.d"
  "/root/repo/src/mem/dram.cpp" "src/CMakeFiles/sv_mem.dir/mem/dram.cpp.o" "gcc" "src/CMakeFiles/sv_mem.dir/mem/dram.cpp.o.d"
  "/root/repo/src/mem/sram.cpp" "src/CMakeFiles/sv_mem.dir/mem/sram.cpp.o" "gcc" "src/CMakeFiles/sv_mem.dir/mem/sram.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sv_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/sv_fw.dir/fw/dma.cpp.o"
  "CMakeFiles/sv_fw.dir/fw/dma.cpp.o.d"
  "CMakeFiles/sv_fw.dir/fw/firmware.cpp.o"
  "CMakeFiles/sv_fw.dir/fw/firmware.cpp.o.d"
  "CMakeFiles/sv_fw.dir/fw/miss_service.cpp.o"
  "CMakeFiles/sv_fw.dir/fw/miss_service.cpp.o.d"
  "CMakeFiles/sv_fw.dir/fw/numa.cpp.o"
  "CMakeFiles/sv_fw.dir/fw/numa.cpp.o.d"
  "CMakeFiles/sv_fw.dir/fw/reflective.cpp.o"
  "CMakeFiles/sv_fw.dir/fw/reflective.cpp.o.d"
  "CMakeFiles/sv_fw.dir/fw/scoma.cpp.o"
  "CMakeFiles/sv_fw.dir/fw/scoma.cpp.o.d"
  "libsv_fw.a"
  "libsv_fw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sv_fw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

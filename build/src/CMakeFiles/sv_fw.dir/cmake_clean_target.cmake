file(REMOVE_RECURSE
  "libsv_fw.a"
)

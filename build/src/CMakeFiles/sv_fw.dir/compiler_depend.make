# Empty compiler generated dependencies file for sv_fw.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fw/dma.cpp" "src/CMakeFiles/sv_fw.dir/fw/dma.cpp.o" "gcc" "src/CMakeFiles/sv_fw.dir/fw/dma.cpp.o.d"
  "/root/repo/src/fw/firmware.cpp" "src/CMakeFiles/sv_fw.dir/fw/firmware.cpp.o" "gcc" "src/CMakeFiles/sv_fw.dir/fw/firmware.cpp.o.d"
  "/root/repo/src/fw/miss_service.cpp" "src/CMakeFiles/sv_fw.dir/fw/miss_service.cpp.o" "gcc" "src/CMakeFiles/sv_fw.dir/fw/miss_service.cpp.o.d"
  "/root/repo/src/fw/numa.cpp" "src/CMakeFiles/sv_fw.dir/fw/numa.cpp.o" "gcc" "src/CMakeFiles/sv_fw.dir/fw/numa.cpp.o.d"
  "/root/repo/src/fw/reflective.cpp" "src/CMakeFiles/sv_fw.dir/fw/reflective.cpp.o" "gcc" "src/CMakeFiles/sv_fw.dir/fw/reflective.cpp.o.d"
  "/root/repo/src/fw/scoma.cpp" "src/CMakeFiles/sv_fw.dir/fw/scoma.cpp.o" "gcc" "src/CMakeFiles/sv_fw.dir/fw/scoma.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sv_niu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sv_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sv_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sv_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

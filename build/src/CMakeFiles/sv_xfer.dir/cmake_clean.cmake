file(REMOVE_RECURSE
  "CMakeFiles/sv_xfer.dir/xfer/approaches.cpp.o"
  "CMakeFiles/sv_xfer.dir/xfer/approaches.cpp.o.d"
  "CMakeFiles/sv_xfer.dir/xfer/sp_copy.cpp.o"
  "CMakeFiles/sv_xfer.dir/xfer/sp_copy.cpp.o.d"
  "libsv_xfer.a"
  "libsv_xfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sv_xfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

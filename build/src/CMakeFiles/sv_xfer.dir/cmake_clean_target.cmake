file(REMOVE_RECURSE
  "libsv_xfer.a"
)

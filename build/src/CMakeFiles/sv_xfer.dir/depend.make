# Empty dependencies file for sv_xfer.
# This may be replaced when dependencies are built.

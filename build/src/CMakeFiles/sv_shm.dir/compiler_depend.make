# Empty compiler generated dependencies file for sv_shm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsv_shm.a"
)

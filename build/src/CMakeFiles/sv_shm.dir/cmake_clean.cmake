file(REMOVE_RECURSE
  "CMakeFiles/sv_shm.dir/shm/numa_region.cpp.o"
  "CMakeFiles/sv_shm.dir/shm/numa_region.cpp.o.d"
  "CMakeFiles/sv_shm.dir/shm/scoma_region.cpp.o"
  "CMakeFiles/sv_shm.dir/shm/scoma_region.cpp.o.d"
  "libsv_shm.a"
  "libsv_shm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sv_shm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

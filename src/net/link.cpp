#include "net/link.hpp"

#include <cassert>
#include <utility>

#include "ckpt/stats_io.hpp"
#include "fault/fault.hpp"

namespace sv::net {

Link::Link(sim::Kernel& kernel, std::string name, Params params)
    : sim::SimObject(kernel, std::move(name)),
      params_(params),
      credits_{params.credits_per_priority, params.credits_per_priority},
      credit_freed_(kernel),
      wire_(kernel, 1) {}

sim::Co<void> Link::send(Packet pkt) {
  assert(pkt.priority < kNumPriorities);
  assert(deliver_ && "link has no sink");
  assert(pkt.payload.size() <= kMaxPayloadBytes);

  // Acquire a receiver buffer credit for this priority class.
  while (credits_[pkt.priority] == 0) {
    co_await credit_freed_;
  }
  --credits_[pkt.priority];

  // Serialize on the wire.
  co_await wire_.acquire();
  if (fault::Injector* inj = kernel_.fault_injector()) {
    // Transient outage: the wire is unusable for a window before this
    // packet's head can go out.
    if (const sim::Tick down =
            inj->link_down_window(kernel_, params_.fault_lane, pkt.serial)) {
      co_await sim::delay(kernel_, down);
    }
  }
  const sim::Tick ser =
      params_.clock.to_ticks(serialize_cycles(pkt.wire_bytes()));
  busy_.add_busy(ser);
  packets_.inc();
  bytes_.inc(pkt.wire_bytes());
  co_await sim::delay(kernel_, ser);
  if (trace::Tracer* tr = kernel_.tracer(); tr != nullptr && tr->enabled()) {
    if (trace_track_ == trace::kNoTrack) {
      trace_track_ = tr->track_for(name(), "link");
    }
    tr->span(trace_track_, "pkt>n" + std::to_string(pkt.dest), now() - ser,
             now(), pkt.serial);
  }
  wire_.release();

  const sim::Tick prop = params_.clock.to_ticks(params_.propagation_cycles);
  if (fault::Injector* inj = kernel_.fault_injector()) {
    if (inj->drop_packet(kernel_, params_.fault_lane, pkt.serial)) {
      // The packet is lost on the wire. The receiver's buffer slot was
      // never filled, so the credit comes back after the propagation
      // delay (when the mangled tail would have been rejected) — without
      // this the credit would leak and the link would wedge.
      dropped_.inc();
      kernel_.schedule(prop, [this, prio = pkt.priority] {
        return_credit(prio);
      });
      co_return;
    }
    if (inj->corrupt_packet(kernel_, params_.fault_lane, pkt.serial)) {
      inj->corrupt(params_.fault_lane, pkt.payload);
    }
  }

  // Propagate: the packet arrives at the far end after the wire delay.
  // The packet parks in the pool so the event captures 12 bytes, not a
  // whole Packet (which would overflow InlineFunc's inline buffer).
  const PacketPool::Handle h = pool_.put(std::move(pkt));
  kernel_.schedule(prop, [this, h] { deliver_(pool_.take(h)); });
}

void Link::return_credit(std::uint8_t priority) {
  assert(priority < kNumPriorities);
  assert(credits_[priority] < params_.credits_per_priority);
  ++credits_[priority];
  credit_freed_.pulse();
}

void Link::ckpt_save(ckpt::Writer& w) const {
  ckpt::save(w, packets_);
  ckpt::save(w, bytes_);
  ckpt::save(w, dropped_);
  ckpt::save(w, busy_);
  for (const std::uint32_t c : credits_) {
    w.u32(c);
  }
}

}  // namespace sv::net

// Network facade: what a NIU sees of the interconnect.
//
// Implementations: FatTreeNetwork (the Arctic fat tree) and IdealNetwork
// (fixed-latency, used for unit tests and as an ablation baseline).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "net/packet.hpp"
#include "sim/coro.hpp"
#include "sim/kernel.hpp"
#include "sim/stats.hpp"
#include "trace/trace.hpp"

namespace sv::net {

class Network : public sim::SimObject {
 public:
  using Deliver = std::function<void(Packet&&)>;

  Network(sim::Kernel& kernel, std::string name)
      : sim::SimObject(kernel, std::move(name)) {}

  /// Register the delivery callback for packets addressed to `node`.
  virtual void set_endpoint(sim::NodeId node, Deliver deliver) = 0;

  /// Inject a packet at its source node. Suspends the caller for source-link
  /// credit and serialization (this is the NIU TxU's injection port).
  virtual sim::Co<void> inject(Packet pkt) = 0;

  /// The endpoint signals it has drained one packet of `priority` from its
  /// ingress buffer, freeing a flow-control credit.
  virtual void consume_done(sim::NodeId node, std::uint8_t priority) = 0;

  [[nodiscard]] virtual std::size_t num_nodes() const = 0;

  [[nodiscard]] const sim::Counter& packets_delivered() const {
    return delivered_;
  }
  [[nodiscard]] const sim::Counter& packets_injected() const {
    return injected_;
  }
  [[nodiscard]] const sim::Histogram& transit_ps() const { return transit_; }

  /// Packet-conservation snapshot for the invariant checker: every packet
  /// accepted by inject() must eventually be delivered or (fault-)dropped.
  struct Audit {
    std::uint64_t injected = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;

    [[nodiscard]] std::uint64_t in_flight() const {
      return injected - delivered - dropped;
    }
    /// True once the network has quiesced with no packet unaccounted for.
    [[nodiscard]] bool balanced() const {
      return injected == delivered + dropped;
    }
  };
  [[nodiscard]] virtual Audit audit() const {
    return {injected_.value(), delivered_.value(), dropped_.value()};
  }

 protected:
  void count_inject() { injected_.inc(); }
  void count_drop() { dropped_.inc(); }
  void count_delivery(const Packet& pkt) {
    delivered_.inc();
    transit_.sample(now() - pkt.inject_time);
  }

  // Serial 0 is reserved: it means "no flow id assigned yet", and a
  // tracing NIU stamps its own flow ids before injection.
  std::uint64_t next_serial_ = 1;

 private:
  sim::Counter injected_;
  sim::Counter delivered_;
  sim::Counter dropped_;
  sim::Histogram transit_;
};

/// Fixed-latency, contention-free network. Each source still serializes its
/// own injections at link bandwidth (so bandwidth numbers stay meaningful),
/// but the fabric itself is ideal. Per-(src,dst,priority) FIFO order holds.
class IdealNetwork final : public Network {
 public:
  struct Params {
    std::size_t nodes = 2;
    sim::Tick latency = 500 * sim::kNanosecond;
    sim::Clock link_clock{12500};
    std::uint32_t bytes_per_cycle = 2;
  };

  IdealNetwork(sim::Kernel& kernel, std::string name, Params params);

  void set_endpoint(sim::NodeId node, Deliver deliver) override;
  sim::Co<void> inject(Packet pkt) override;
  void consume_done(sim::NodeId node, std::uint8_t priority) override;
  [[nodiscard]] std::size_t num_nodes() const override {
    return params_.nodes;
  }

 private:
  Params params_;
  std::vector<Deliver> endpoints_;
  std::vector<std::unique_ptr<sim::Semaphore>> inject_ports_;
  trace::TrackId trace_track_ = trace::kNoTrack;
};

}  // namespace sv::net

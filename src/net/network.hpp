// Network facade: what a NIU sees of the interconnect.
//
// Implementations: FatTreeNetwork (the Arctic fat tree) and IdealNetwork
// (fixed-latency, used for unit tests and as an ablation baseline).
//
// Partitioning: IdealNetwork can span multiple event domains (one per
// node, see sim::ParallelKernel) — every per-packet action runs in the
// *source* node's domain, delivery crosses into the destination domain
// through the kernel mailbox, and all bookkeeping is sharded per node so
// no two domains ever touch the same counter. FatTreeNetwork models shared
// routers and therefore requires the whole machine in one domain.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "net/packet.hpp"
#include "sim/coro.hpp"
#include "sim/kernel.hpp"
#include "sim/parallel.hpp"
#include "sim/stats.hpp"
#include "trace/trace.hpp"

namespace sv::net {

class Network : public sim::SimObject {
 public:
  using Deliver = std::function<void(Packet&&)>;

  Network(sim::Kernel& kernel, std::string name, std::size_t nodes)
      : sim::SimObject(kernel, std::move(name)), shards_(nodes) {}

  /// Register the delivery callback for packets addressed to `node`.
  virtual void set_endpoint(sim::NodeId node, Deliver deliver) = 0;

  /// Inject a packet at its source node. Suspends the caller for source-link
  /// credit and serialization (this is the NIU TxU's injection port).
  virtual sim::Co<void> inject(Packet pkt) = 0;

  /// The endpoint signals it has drained one packet of `priority` from its
  /// ingress buffer, freeing a flow-control credit.
  virtual void consume_done(sim::NodeId node, std::uint8_t priority) = 0;

  [[nodiscard]] virtual std::size_t num_nodes() const = 0;

  // Aggregated views over the per-node shards, merged in node order so the
  // result is identical however the machine was partitioned. Call only
  // while no domain is executing (sequentially, or at an epoch barrier).
  [[nodiscard]] std::uint64_t packets_delivered() const;
  [[nodiscard]] std::uint64_t packets_injected() const;
  [[nodiscard]] sim::Histogram transit_ps() const;

  /// Packet-conservation snapshot for the invariant checker: every packet
  /// accepted by inject() must eventually be delivered or (fault-)dropped.
  struct Audit {
    std::uint64_t injected = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;

    [[nodiscard]] std::uint64_t in_flight() const {
      return injected - delivered - dropped;
    }
    /// True once the network has quiesced with no packet unaccounted for.
    [[nodiscard]] bool balanced() const {
      return injected == delivered + dropped;
    }
  };
  [[nodiscard]] virtual Audit audit() const;

  /// Snapshot state: every shard in node order — packet counters, transit
  /// histogram, serial and mailbox-post sequences. Call only at a barrier
  /// (same rule as the aggregated views above).
  void ckpt_save(ckpt::Writer& w) const;

 protected:
  // Per-packet bookkeeping is sharded by node — injection and serial
  // assignment by source, delivery by destination — so each shard is only
  // ever touched from the domain that owns that node. Cache-line alignment
  // keeps neighbouring shards from false-sharing under parallel execution.
  void count_inject(sim::NodeId src) { shards_[src].injected.inc(); }
  void count_drop(sim::NodeId src) { shards_[src].dropped.inc(); }
  void count_delivery(const sim::Kernel& k, const Packet& pkt) {
    Shard& s = shards_[pkt.dest];
    s.delivered.inc();
    s.transit.sample(k.now() - pkt.inject_time);
  }

  /// Deterministic packet serial for an unstamped packet: namespaced by
  /// source node, sequential within it. Serial 0 stays reserved ("no flow
  /// id assigned yet"); NIU-stamped flow ids live in a disjoint namespace
  /// (bit 62 set).
  std::uint64_t assign_serial(sim::NodeId src) {
    return ((static_cast<std::uint64_t>(src) + 1) << 40) |
           ++shards_[src].serial_seq;
  }

  /// Monotone per-source sequence for mailbox posts (the `seq` in the
  /// deterministic (tick, source, sequence) delivery order).
  std::uint64_t next_post_seq(sim::NodeId src) {
    return ++shards_[src].post_seq;
  }

 private:
  struct alignas(64) Shard {
    sim::Counter injected;
    sim::Counter delivered;
    sim::Counter dropped;
    sim::Histogram transit;
    std::uint64_t serial_seq = 0;
    std::uint64_t post_seq = 0;
  };

  std::vector<Shard> shards_;
};

/// Fixed-latency, contention-free network. Each source still serializes its
/// own injections at link bandwidth (so bandwidth numbers stay meaningful),
/// but the fabric itself is ideal. Per-(src,dst,priority) FIFO order holds.
/// The latency is the domain-crossing lookahead when partitioned.
class IdealNetwork final : public Network {
 public:
  struct Params {
    std::size_t nodes = 2;
    sim::Tick latency = 500 * sim::kNanosecond;
    sim::Clock link_clock{12500};
    std::uint32_t bytes_per_cycle = 2;
  };

  /// Single-domain layout: every node simulated by `kernel`.
  IdealNetwork(sim::Kernel& kernel, std::string name, Params params);

  /// Partition-aware layout: node n's injection runs in domains.of(n);
  /// delivery crosses into domains.of(dest) through the mailbox.
  IdealNetwork(const sim::DomainMap& domains, std::string name,
               Params params);

  void set_endpoint(sim::NodeId node, Deliver deliver) override;
  sim::Co<void> inject(Packet pkt) override;
  void consume_done(sim::NodeId node, std::uint8_t priority) override;
  [[nodiscard]] std::size_t num_nodes() const override {
    return params_.nodes;
  }

 private:
  sim::DomainMap domains_;
  Params params_;
  // In-flight packets between fault checks and delivery; concurrent iff
  // the machine is partitioned (put in source domain, take in dest's).
  PacketPool pool_;
  std::vector<Deliver> endpoints_;
  std::vector<std::unique_ptr<sim::Semaphore>> inject_ports_;
  // Per-source wire track, cached lazily; slot n is only touched by the
  // domain owning node n.
  std::vector<trace::TrackId> wire_tracks_;
};

}  // namespace sv::net

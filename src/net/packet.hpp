// Arctic network packets.
//
// An Arctic packet carries an 8-byte header and up to 88 bytes of payload
// (the Basic message maximum). Two priority classes exist; the NIU uses the
// high-priority class for protocol replies so that request/reply protocols
// cannot deadlock the network.
//
// The payload lives *inside* the Packet (Payload: a fixed 88-byte buffer
// plus a length), not in a heap vector: packets are built, moved through
// router/NIU queues and retired without ever touching the allocator. A
// Packet is ~120 bytes and trivially movable. When a packet must ride
// through a scheduled event (link propagation, cross-domain delivery), it
// parks in a PacketPool and the event captures the 4-byte handle — the
// whole steady-state packet path is allocation-free (DESIGN.md §11).
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace sv::net {

inline constexpr std::size_t kHeaderBytes = 8;
inline constexpr std::size_t kMaxPayloadBytes = 88;
inline constexpr std::size_t kMaxPacketBytes = kHeaderBytes + kMaxPayloadBytes;

inline constexpr unsigned kNumPriorities = 2;
inline constexpr std::uint8_t kPriorityLow = 0;
inline constexpr std::uint8_t kPriorityHigh = 1;

/// Logical receive-queue numbers live in a large namespace; a handful of
/// well-known values address NIU-internal queues rather than user queues.
using QueueId = std::uint16_t;

/// Messages addressed to this queue id are enqueued on the destination
/// NIU's remote command queue and executed by its CTRL.
inline constexpr QueueId kRemoteCmdQueue = 0xFFFF;

/// Inline packet payload: vector-like surface over a fixed 88-byte buffer.
/// Contiguous range of std::byte, so it converts to std::span wherever the
/// old std::vector<std::byte> did.
class Payload {
 public:
  Payload() = default;

  [[nodiscard]] std::size_t size() const { return len_; }
  [[nodiscard]] bool empty() const { return len_ == 0; }
  [[nodiscard]] std::byte* data() { return buf_; }
  [[nodiscard]] const std::byte* data() const { return buf_; }
  [[nodiscard]] std::byte* begin() { return buf_; }
  [[nodiscard]] std::byte* end() { return buf_ + len_; }
  [[nodiscard]] const std::byte* begin() const { return buf_; }
  [[nodiscard]] const std::byte* end() const { return buf_ + len_; }

  std::byte& operator[](std::size_t i) { return buf_[i]; }
  const std::byte& operator[](std::size_t i) const { return buf_[i]; }

  /// Grow/shrink; new bytes are zeroed (matching vector::resize, which the
  /// wire format and CRC paths relied on).
  void resize(std::size_t n) {
    assert(n <= kMaxPayloadBytes && "payload exceeds the Arctic maximum");
    if (n > len_) {
      std::memset(buf_ + len_, 0, n - len_);
    }
    len_ = static_cast<std::uint8_t>(n);
  }

  void clear() { len_ = 0; }

  /// Accepts any contiguous byte iterator pair (vector, span, pointer).
  template <typename It>
  void assign(It first, It last) {
    const auto n = static_cast<std::size_t>(last - first);
    assert(n <= kMaxPayloadBytes && "payload exceeds the Arctic maximum");
    if (n > 0) {
      std::memcpy(buf_, std::to_address(first), n);
    }
    len_ = static_cast<std::uint8_t>(n);
  }

  Payload& operator=(std::span<const std::byte> s) {
    assign(s.data(), s.data() + s.size());
    return *this;
  }

 private:
  std::byte buf_[kMaxPayloadBytes];
  std::uint8_t len_ = 0;
};

struct Packet {
  sim::NodeId dest = 0;
  sim::NodeId src = 0;
  QueueId dest_queue = 0;
  std::uint8_t priority = kPriorityLow;
  Payload payload;

  // Bookkeeping (not on the wire).
  sim::Tick inject_time = 0;
  std::uint64_t serial = 0;

  [[nodiscard]] std::size_t wire_bytes() const {
    return kHeaderBytes + payload.size();
  }

  [[nodiscard]] std::string summary() const;
};

/// Build a payload from an arbitrary byte span (convenience).
[[nodiscard]] Payload to_payload(std::span<const std::byte> s);

/// Parking lot for in-flight packets, so scheduled events capture a 4-byte
/// handle instead of a 120-byte Packet (which would not fit — by design —
/// in sim::InlineFunc's inline buffer). Slots recycle through a freelist;
/// steady state allocates nothing.
///
/// A pool is per-domain by construction when owned by a single SimObject
/// (net::Link). A pool whose packets cross event domains (IdealNetwork
/// under the parallel kernel: put() in the source node's domain, take() in
/// the destination's) must be constructed with concurrent=true, which
/// guards the freelist with a mutex.
class PacketPool {
 public:
  using Handle = std::uint32_t;

  explicit PacketPool(bool concurrent = false) : concurrent_(concurrent) {}

  /// Park a packet; returns the handle to fetch it back.
  Handle put(Packet&& pkt) {
    if (concurrent_) {
      const std::lock_guard<std::mutex> lock(mu_);
      return put_locked(std::move(pkt));
    }
    return put_locked(std::move(pkt));
  }

  /// Fetch and release. Each handle is good for exactly one take().
  Packet take(Handle h) {
    if (concurrent_) {
      std::unique_lock<std::mutex> lock(mu_);
      Packet p = std::move(slots_[h]);
      free_.push_back(h);
      return p;
    }
    Packet p = std::move(slots_[h]);
    free_.push_back(h);
    return p;
  }

  /// Slots ever created (high-water mark of in-flight packets).
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

 private:
  Handle put_locked(Packet&& pkt) {
    if (free_.empty()) {
      slots_.push_back(std::move(pkt));
      return static_cast<Handle>(slots_.size() - 1);
    }
    const Handle h = free_.back();
    free_.pop_back();
    slots_[h] = std::move(pkt);
    return h;
  }

  std::deque<Packet> slots_;  // deque: handles stay stable as it grows
  std::vector<Handle> free_;
  std::mutex mu_;
  bool concurrent_;
};

}  // namespace sv::net

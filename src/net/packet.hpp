// Arctic network packets.
//
// An Arctic packet carries an 8-byte header and up to 88 bytes of payload
// (the Basic message maximum). Two priority classes exist; the NIU uses the
// high-priority class for protocol replies so that request/reply protocols
// cannot deadlock the network.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace sv::net {

inline constexpr std::size_t kHeaderBytes = 8;
inline constexpr std::size_t kMaxPayloadBytes = 88;
inline constexpr std::size_t kMaxPacketBytes = kHeaderBytes + kMaxPayloadBytes;

inline constexpr unsigned kNumPriorities = 2;
inline constexpr std::uint8_t kPriorityLow = 0;
inline constexpr std::uint8_t kPriorityHigh = 1;

/// Logical receive-queue numbers live in a large namespace; a handful of
/// well-known values address NIU-internal queues rather than user queues.
using QueueId = std::uint16_t;

/// Messages addressed to this queue id are enqueued on the destination
/// NIU's remote command queue and executed by its CTRL.
inline constexpr QueueId kRemoteCmdQueue = 0xFFFF;

struct Packet {
  sim::NodeId dest = 0;
  sim::NodeId src = 0;
  QueueId dest_queue = 0;
  std::uint8_t priority = kPriorityLow;
  std::vector<std::byte> payload;

  // Bookkeeping (not on the wire).
  sim::Tick inject_time = 0;
  std::uint64_t serial = 0;

  [[nodiscard]] std::size_t wire_bytes() const {
    return kHeaderBytes + payload.size();
  }

  [[nodiscard]] std::string summary() const;
};

/// Build a payload vector from an arbitrary byte span (convenience).
[[nodiscard]] std::vector<std::byte> to_payload(std::span<const std::byte> s);

}  // namespace sv::net

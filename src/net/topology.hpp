// Pure k-ary n-tree arithmetic, factored out of FatTreeNetwork so the
// topology can be reasoned about — and property-tested at 1024 endpoints
// with several radixes — without constructing a single router or link.
//
// Geometry (standard k-ary n-tree, the Arctic fabric's shape): k^n
// endpoints, n levels of k^(n-1) routers. A level-l router and a
// level-(l+1) router are linked iff their (n-1)-digit base-k indices agree
// everywhere except digit l. Router ports follow the network's convention:
// 0..k-1 down, k..2k-1 up. Routing is up*/down*: climb to the lowest
// common ancestor (deterministic up-port choice), then descend along the
// destination's digits.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>

#include "sim/types.hpp"

namespace sv::net {

struct FatTreeTopology {
  std::size_t nodes = 0;
  unsigned radix = 0;                    // k
  unsigned levels = 0;                   // n
  std::uint64_t routers_per_level = 0;   // k^(n-1)

  static constexpr std::uint64_t ipow(std::uint64_t base, unsigned exp) {
    std::uint64_t r = 1;
    while (exp-- > 0) {
      r *= base;
    }
    return r;
  }

  /// Smallest n with k^n >= nodes (the tree is sized up to the next full
  /// power of k; surplus leaf ports simply go unpopulated).
  static constexpr unsigned levels_for(std::size_t nodes, unsigned radix) {
    unsigned n = 1;
    std::uint64_t cap = radix;
    while (cap < nodes) {
      cap *= radix;
      ++n;
    }
    return n;
  }

  static FatTreeTopology make(std::size_t nodes, unsigned radix) {
    if (nodes == 0) {
      throw std::invalid_argument("FatTreeTopology: zero nodes");
    }
    if (radix < 2) {
      throw std::invalid_argument("FatTreeTopology: radix must be >= 2");
    }
    FatTreeTopology t;
    t.nodes = nodes;
    t.radix = radix;
    t.levels = levels_for(nodes, radix);
    t.routers_per_level = ipow(radix, t.levels - 1);
    return t;
  }

  [[nodiscard]] constexpr unsigned digit(std::uint64_t x, unsigned i) const {
    return static_cast<unsigned>(x / ipow(radix, i) % radix);
  }

  [[nodiscard]] constexpr std::uint64_t set_digit(std::uint64_t x, unsigned i,
                                                  unsigned v) const {
    const std::uint64_t p = ipow(radix, i);
    const unsigned old = digit(x, i);
    return x + (static_cast<std::uint64_t>(v) - old) * p;
  }

  [[nodiscard]] constexpr std::size_t router_index(unsigned level,
                                                   std::uint64_t w) const {
    return level * routers_per_level + w;
  }

  /// True when router <level, w> is an ancestor of endpoint `d`: digits
  /// [level .. n-2] of w equal digits [level+1 .. n-1] of d.
  [[nodiscard]] constexpr bool is_ancestor(unsigned level, std::uint64_t w,
                                           std::uint64_t d) const {
    for (unsigned i = level; i + 1 < levels; ++i) {
      if (digit(w, i) != digit(d, i + 1)) {
        return false;
      }
    }
    return true;
  }

  /// Output port router <level, w> forwards a packet for endpoint `dest`
  /// to: a down port once the router is an ancestor of the destination,
  /// else the deterministic up port keyed by the destination digit.
  [[nodiscard]] constexpr unsigned route_port(unsigned level, std::uint64_t w,
                                              std::uint64_t dest) const {
    if (is_ancestor(level, w, dest)) {
      return digit(dest, level);  // down port
    }
    return radix + digit(dest, level);  // up port (deterministic spread)
  }

  /// Router hops on the src -> dst path: up to the LCA level, through that
  /// router, back down — 2*lca + 1 (1 for the self loop through the leaf).
  [[nodiscard]] constexpr unsigned hops(sim::NodeId src,
                                        sim::NodeId dst) const {
    if (src == dst) {
      return 1;
    }
    unsigned lca = 0;
    for (unsigned i = 0; i < levels; ++i) {
      if (digit(src, i) != digit(dst, i)) {
        lca = i;
      }
    }
    return 2 * lca + 1;
  }

  // Closed-form element counts, matched against the constructed network by
  // fat_tree_property_test: n levels of k^(n-1) routers; one inject and
  // one eject link per endpoint, plus one link per direction per
  // (level, router, up-port) pair between adjacent levels.
  [[nodiscard]] constexpr std::size_t router_count() const {
    return static_cast<std::size_t>(levels) * routers_per_level;
  }
  [[nodiscard]] constexpr std::size_t routers_at_level(unsigned level) const {
    return level < levels ? routers_per_level : 0;
  }
  [[nodiscard]] constexpr std::size_t link_count() const {
    return 2 * nodes +
           2ull * radix * routers_per_level * (levels - 1);
  }
};

}  // namespace sv::net

#include "net/network.hpp"

#include <cassert>
#include <stdexcept>

#include "fault/fault.hpp"

namespace sv::net {

IdealNetwork::IdealNetwork(sim::Kernel& kernel, std::string name,
                           Params params)
    : Network(kernel, std::move(name)), params_(params) {
  endpoints_.resize(params_.nodes);
  inject_ports_.reserve(params_.nodes);
  for (std::size_t i = 0; i < params_.nodes; ++i) {
    inject_ports_.push_back(std::make_unique<sim::Semaphore>(kernel, 1));
  }
}

void IdealNetwork::set_endpoint(sim::NodeId node, Deliver deliver) {
  endpoints_.at(node) = std::move(deliver);
}

sim::Co<void> IdealNetwork::inject(Packet pkt) {
  if (pkt.dest >= params_.nodes) {
    throw std::out_of_range(name() + ": bad destination node");
  }
  assert(endpoints_[pkt.dest] && "destination endpoint not attached");
  pkt.inject_time = now();
  if (pkt.serial == 0) {
    pkt.serial = next_serial_++;
  }
  count_inject();

  auto& port = *inject_ports_[pkt.src];
  co_await port.acquire();
  const sim::Cycles ser_cycles =
      (pkt.wire_bytes() + params_.bytes_per_cycle - 1) /
      params_.bytes_per_cycle;
  const sim::Tick ser_start = now();
  co_await sim::delay(kernel_, params_.link_clock.to_ticks(ser_cycles));
  if (trace::Tracer* tr = kernel_.tracer(); tr != nullptr && tr->enabled()) {
    if (trace_track_ == trace::kNoTrack) {
      trace_track_ = tr->track_for(name() + ".wire", "link");
    }
    tr->span(trace_track_, "pkt>n" + std::to_string(pkt.dest), ser_start,
             now(), pkt.serial);
  }
  port.release();

  if (fault::Injector* inj = kernel_.fault_injector()) {
    if (inj->drop_packet(pkt.serial)) {
      count_drop();
      co_return;
    }
    if (inj->corrupt_packet(pkt.serial)) {
      inj->corrupt(pkt.payload);
    }
  }

  kernel_.schedule(params_.latency, [this, p = std::move(pkt)]() mutable {
    count_delivery(p);
    endpoints_[p.dest](std::move(p));
  });
}

void IdealNetwork::consume_done(sim::NodeId node, std::uint8_t priority) {
  (void)node;
  (void)priority;  // infinite buffering: nothing to return
}

}  // namespace sv::net

#include "net/network.hpp"

#include <cassert>
#include <stdexcept>

#include "ckpt/stats_io.hpp"
#include "fault/fault.hpp"

namespace sv::net {

std::uint64_t Network::packets_delivered() const {
  std::uint64_t n = 0;
  for (const Shard& s : shards_) {
    n += s.delivered.value();
  }
  return n;
}

std::uint64_t Network::packets_injected() const {
  std::uint64_t n = 0;
  for (const Shard& s : shards_) {
    n += s.injected.value();
  }
  return n;
}

sim::Histogram Network::transit_ps() const {
  sim::Histogram h;
  for (const Shard& s : shards_) {
    h.merge(s.transit);
  }
  return h;
}

Network::Audit Network::audit() const {
  Audit a;
  for (const Shard& s : shards_) {
    a.injected += s.injected.value();
    a.delivered += s.delivered.value();
    a.dropped += s.dropped.value();
  }
  return a;
}

IdealNetwork::IdealNetwork(sim::Kernel& kernel, std::string name,
                           Params params)
    : IdealNetwork(sim::DomainMap(kernel, params.nodes), std::move(name),
                   params) {}

IdealNetwork::IdealNetwork(const sim::DomainMap& domains, std::string name,
                           Params params)
    : Network(domains.of(0), std::move(name), params.nodes),
      domains_(domains),
      params_(params),
      pool_(domains.partitioned()) {
  if (domains_.nodes() != params_.nodes) {
    throw std::invalid_argument(this->name() +
                                ": domain map does not cover all nodes");
  }
  if (domains_.partitioned() && params_.latency == 0) {
    throw std::invalid_argument(
        this->name() + ": partitioned layout needs latency >= 1 (lookahead)");
  }
  endpoints_.resize(params_.nodes);
  wire_tracks_.resize(params_.nodes, trace::kNoTrack);
  inject_ports_.reserve(params_.nodes);
  for (std::size_t i = 0; i < params_.nodes; ++i) {
    inject_ports_.push_back(std::make_unique<sim::Semaphore>(
        domains_.of(static_cast<sim::NodeId>(i)), 1));
  }
}

void IdealNetwork::set_endpoint(sim::NodeId node, Deliver deliver) {
  endpoints_.at(node) = std::move(deliver);
}

sim::Co<void> IdealNetwork::inject(Packet pkt) {
  if (pkt.dest >= params_.nodes) {
    throw std::out_of_range(name() + ": bad destination node");
  }
  assert(endpoints_[pkt.dest] && "destination endpoint not attached");
  // Everything up to delivery runs in the source node's domain.
  sim::Kernel& k = domains_.of(pkt.src);
  pkt.inject_time = k.now();
  if (pkt.serial == 0) {
    pkt.serial = assign_serial(pkt.src);
  }
  count_inject(pkt.src);

  auto& port = *inject_ports_[pkt.src];
  co_await port.acquire();
  const sim::Cycles ser_cycles =
      (pkt.wire_bytes() + params_.bytes_per_cycle - 1) /
      params_.bytes_per_cycle;
  const sim::Tick ser_start = k.now();
  co_await sim::delay(k, params_.link_clock.to_ticks(ser_cycles));
  if (trace::Tracer* tr = k.tracer(); tr != nullptr && tr->enabled()) {
    trace::TrackId& track = wire_tracks_[pkt.src];
    if (track == trace::kNoTrack) {
      track = tr->track("net", "wire.n" + std::to_string(pkt.src), "link");
    }
    tr->span(track, "pkt>n" + std::to_string(pkt.dest), ser_start, k.now(),
             pkt.serial);
  }
  port.release();

  if (fault::Injector* inj = k.fault_injector()) {
    if (inj->drop_packet(k, pkt.src, pkt.serial)) {
      count_drop(pkt.src);
      co_return;
    }
    if (inj->corrupt_packet(k, pkt.src, pkt.serial)) {
      inj->corrupt(pkt.src, pkt.payload);
    }
  }

  // Hand the packet to the destination domain through the mailbox. The
  // (when, src, seq) key — not the order domains reach this line — fixes
  // the delivery order, which is what keeps a partitioned run bit-identical
  // to the sequential one. With latency >= 1, `when` is always past the
  // current epoch's boundary, satisfying the conservative lookahead.
  const sim::Tick when = k.now() + params_.latency;
  const std::uint64_t seq = next_post_seq(pkt.src);
  // The packet parks in the pool (put here in the source domain, taken in
  // the destination's — pool_ is constructed concurrent-safe when the
  // machine is partitioned) so the mailbox event captures a handle, not a
  // Packet.
  const sim::NodeId src = pkt.src;
  const sim::NodeId dest = pkt.dest;
  const PacketPool::Handle h = pool_.put(std::move(pkt));
  domains_.of(dest).post(when, src, seq, [this, h] {
    Packet p = pool_.take(h);
    count_delivery(domains_.of(p.dest), p);
    endpoints_[p.dest](std::move(p));
  });
}

void IdealNetwork::consume_done(sim::NodeId node, std::uint8_t priority) {
  (void)node;
  (void)priority;  // infinite buffering: nothing to return
}

void Network::ckpt_save(ckpt::Writer& w) const {
  w.u64(shards_.size());
  for (const Shard& s : shards_) {
    ckpt::save(w, s.injected);
    ckpt::save(w, s.delivered);
    ckpt::save(w, s.dropped);
    ckpt::save(w, s.transit);
    w.u64(s.serial_seq);
    w.u64(s.post_seq);
  }
}

}  // namespace sv::net

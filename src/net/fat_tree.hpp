// The MIT Arctic fat-tree fabric: a k-ary n-tree of Arctic routers.
//
// Topology (standard k-ary n-tree): k^n endpoints, n levels of k^(n-1)
// routers. A level-l router and a level-(l+1) router are linked iff their
// (n-1)-digit base-k indices agree everywhere except digit l. Routing goes
// up to the lowest common ancestor (deterministic up-port choice for
// reproducibility), then down along the destination's digits — the
// deadlock-free up*/down* scheme fat trees support.
#pragma once

#include <memory>
#include <vector>

#include "net/link.hpp"
#include "net/network.hpp"
#include "net/router.hpp"
#include "net/topology.hpp"

namespace sv::net {

class FatTreeNetwork final : public Network {
 public:
  struct Params {
    std::size_t nodes = 8;
    unsigned radix = 4;  // k: Arctic switches form radix-4 trees
    Link::Params link;
    sim::Clock router_clock{12500};
    sim::Cycles fall_through_cycles = 3;
  };

  FatTreeNetwork(sim::Kernel& kernel, std::string name, Params params);

  void set_endpoint(sim::NodeId node, Deliver deliver) override;
  sim::Co<void> inject(Packet pkt) override;
  void consume_done(sim::NodeId node, std::uint8_t priority) override;
  [[nodiscard]] std::size_t num_nodes() const override {
    return params_.nodes;
  }

  /// Base counts plus fault drops summed over every link in the fabric.
  [[nodiscard]] Audit audit() const override;

  // Topology introspection (tests, reporting). The arithmetic lives in
  // FatTreeTopology so it can be property-checked without a network.
  [[nodiscard]] const FatTreeTopology& topology() const { return topo_; }
  [[nodiscard]] unsigned levels() const { return topo_.levels; }
  [[nodiscard]] std::size_t router_count() const { return routers_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  /// Router hops a packet from src to dst traverses.
  [[nodiscard]] unsigned hops(sim::NodeId src, sim::NodeId dst) const {
    return topo_.hops(src, dst);
  }

  [[nodiscard]] const Params& params() const { return params_; }

 private:
  Link* new_link(std::string name);

  Params params_;
  FatTreeTopology topo_;
  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<Link*> inject_links_;  // node -> leaf router
  std::vector<Link*> eject_links_;   // leaf router -> node
  std::vector<Deliver> endpoints_;
};

}  // namespace sv::net

#include "net/router.hpp"

#include <cassert>
#include <stdexcept>

#include "fault/fault.hpp"

namespace sv::net {

Router::Router(sim::Kernel& kernel, std::string name, Params params,
               RouteFn route)
    : sim::SimObject(kernel, std::move(name)),
      params_(params),
      route_(std::move(route)),
      inputs_(params.num_inputs),
      outputs_(params.num_outputs, nullptr),
      rr_next_(params.num_outputs, 0),
      work_(kernel) {}

void Router::receive(unsigned in, Packet&& pkt) {
  assert(in < inputs_.size());
  assert(pkt.priority < kNumPriorities);
  inputs_[in].vq[pkt.priority].push_back(std::move(pkt));
  work_.pulse();
}

void Router::connect_output(unsigned out, Link* link) {
  assert(out < outputs_.size());
  outputs_[out] = link;
}

void Router::connect_input_upstream(unsigned in, Link* link) {
  assert(in < inputs_.size());
  inputs_[in].upstream = link;
}

void Router::start() {
  if (started_) {
    throw std::logic_error(name() + ": started twice");
  }
  started_ = true;
  for (unsigned o = 0; o < outputs_.size(); ++o) {
    if (outputs_[o] != nullptr) {
      sim::spawn(output_process(o));
    }
  }
}

int Router::pick_input(unsigned out, std::uint8_t priority) {
  const unsigned n = static_cast<unsigned>(inputs_.size());
  for (unsigned k = 0; k < n; ++k) {
    const unsigned i = (rr_next_[out] + k) % n;
    const auto& q = inputs_[i].vq[priority];
    if (!q.empty() && route_(q.front()) == out) {
      rr_next_[out] = (i + 1) % n;
      return static_cast<int>(i);
    }
  }
  return -1;
}

sim::Co<void> Router::output_process(unsigned out) {
  Link* link = outputs_[out];
  for (;;) {
    int in = -1;
    std::uint8_t prio = kPriorityHigh;
    for (;;) {
      in = pick_input(out, kPriorityHigh);
      if (in >= 0) {
        prio = kPriorityHigh;
        break;
      }
      in = pick_input(out, kPriorityLow);
      if (in >= 0) {
        prio = kPriorityLow;
        break;
      }
      co_await work_;
    }

    InPort& port = inputs_[static_cast<unsigned>(in)];
    Packet pkt = std::move(port.vq[prio].front());
    port.vq[prio].pop_front();
    // The buffer slot is free: return the credit upstream immediately.
    if (port.upstream != nullptr) {
      port.upstream->return_credit(prio);
    }

    const sim::Tick route_start = now();
    if (fault::Injector* inj = kernel_.fault_injector()) {
      // Backpressure bubble on the output port, plus (for low-priority
      // traffic only) an extra starvation window modelling a high-priority
      // storm monopolizing the crossbar.
      if (const std::uint32_t stall =
              inj->router_stall_cycles(kernel_, params_.fault_lane)) {
        co_await sim::delay(kernel_, params_.clock.to_ticks(stall));
      }
      if (prio == kPriorityLow) {
        if (const std::uint32_t starve =
                inj->starvation_cycles(kernel_, params_.fault_lane)) {
          co_await sim::delay(kernel_, params_.clock.to_ticks(starve));
        }
      }
    }
    co_await sim::delay(kernel_,
                        params_.clock.to_ticks(params_.fall_through_cycles));
    if (trace::Tracer* tr = kernel_.tracer();
        tr != nullptr && tr->enabled()) {
      if (trace_track_ == trace::kNoTrack) {
        trace_track_ = tr->track_for(name(), "router");
      }
      tr->span(trace_track_, "route out" + std::to_string(out), route_start,
               now(), pkt.serial);
    }
    co_await link->send(std::move(pkt));
    routed_.inc();
  }
}

}  // namespace sv::net

// Unidirectional Arctic link with credit-based flow control.
//
// A link models the 16-bit-wide, 80 MHz Arctic channel: 2 bytes per link
// cycle = 160 MB/s per direction. The receiver grants a fixed number of
// packet credits per priority class; the sender must hold a credit before
// serializing a packet, which bounds receiver buffering and propagates
// backpressure hop by hop. Credits are returned by the receiver when the
// packet leaves its input buffer.
//
// Exactly one packet serializes on the wire at a time; priority selection
// among waiting packets is the *sender's* job (router output stage / NIU
// TxU), so the link itself never queues more than one send.
#pragma once

#include <functional>
#include <string>

#include "net/packet.hpp"
#include "sim/coro.hpp"
#include "sim/kernel.hpp"
#include "sim/stats.hpp"
#include "trace/trace.hpp"

namespace sv::net {

class Link : public sim::SimObject {
 public:
  struct Params {
    sim::Clock clock{12500};        // 80 MHz link clock
    std::uint32_t bytes_per_cycle = 2;  // 16-bit channel
    sim::Cycles propagation_cycles = 3; // wire + synchronizer
    std::uint32_t credits_per_priority = 2;  // receiver buffer slots
    std::uint32_t fault_lane = 0;  // fault::Injector stream this link draws
  };

  /// Called when a packet fully arrives at the receiving end.
  using Deliver = std::function<void(Packet&&)>;

  Link(sim::Kernel& kernel, std::string name, Params params);

  void set_sink(Deliver deliver) { deliver_ = std::move(deliver); }

  /// Transmit one packet: waits for a credit of the packet's priority,
  /// serializes it on the wire, and schedules delivery at the far end after
  /// propagation. Returns when the wire is free again (tail has left).
  sim::Co<void> send(Packet pkt);

  /// Receiver-side: return one buffer credit for `priority`.
  void return_credit(std::uint8_t priority);

  [[nodiscard]] std::uint32_t credits(std::uint8_t priority) const {
    return credits_[priority];
  }

  [[nodiscard]] sim::Cycles serialize_cycles(std::size_t bytes) const {
    return (bytes + params_.bytes_per_cycle - 1) / params_.bytes_per_cycle;
  }

  [[nodiscard]] const sim::Counter& packets_sent() const { return packets_; }
  [[nodiscard]] const sim::Counter& bytes_sent() const { return bytes_; }
  /// Packets lost to injected faults on this link.
  [[nodiscard]] const sim::Counter& packets_dropped() const {
    return dropped_;
  }
  [[nodiscard]] const sim::BusyTracker& busy() const { return busy_; }
  [[nodiscard]] const Params& params() const { return params_; }

  /// Snapshot state: wire counters, busy time, live credit counts.
  void ckpt_save(ckpt::Writer& w) const;

 private:
  Params params_;
  Deliver deliver_;
  std::uint32_t credits_[kNumPriorities];
  sim::Signal credit_freed_;
  sim::Semaphore wire_;
  PacketPool pool_;  // in-flight packets between wire tail and delivery
  sim::Counter packets_;
  sim::Counter bytes_;
  sim::Counter dropped_;
  sim::BusyTracker busy_;
  trace::TrackId trace_track_ = trace::kNoTrack;
};

}  // namespace sv::net

#include "net/fat_tree.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

namespace sv::net {

namespace {

unsigned levels_for(std::size_t nodes, unsigned radix) {
  unsigned n = 1;
  std::uint64_t cap = radix;
  while (cap < nodes) {
    cap *= radix;
    ++n;
  }
  return n;
}

std::uint64_t ipow(std::uint64_t base, unsigned exp) {
  std::uint64_t r = 1;
  while (exp-- > 0) {
    r *= base;
  }
  return r;
}

}  // namespace

FatTreeNetwork::FatTreeNetwork(sim::Kernel& kernel, std::string name,
                               Params params)
    : Network(kernel, std::move(name), params.nodes), params_(params) {
  if (params_.nodes == 0) {
    throw std::invalid_argument("FatTreeNetwork: zero nodes");
  }
  if (params_.radix < 2) {
    throw std::invalid_argument("FatTreeNetwork: radix must be >= 2");
  }
  const unsigned k = params_.radix;
  levels_ = levels_for(params_.nodes, k);
  routers_per_level_ = ipow(k, levels_ - 1);

  endpoints_.resize(params_.nodes);
  inject_links_.resize(params_.nodes, nullptr);
  eject_links_.resize(params_.nodes, nullptr);

  // Create routers. Port convention: 0..k-1 down, k..2k-1 up.
  routers_.reserve(levels_ * routers_per_level_);
  for (unsigned l = 0; l < levels_; ++l) {
    for (std::uint64_t w = 0; w < routers_per_level_; ++w) {
      Router::Params rp;
      rp.num_inputs = 2 * k;
      rp.num_outputs = 2 * k;
      rp.clock = params_.router_clock;
      rp.fall_through_cycles = params_.fall_through_cycles;
      // Creation-order fault lane: stable for a given topology, so the
      // fault schedule each router sees replays from the seed alone.
      rp.fault_lane = static_cast<std::uint32_t>(routers_.size());
      auto route = [this, l, w](const Packet& p) {
        return route_at(l, w, p);
      };
      routers_.push_back(std::make_unique<Router>(
          kernel_, this->name() + ".r" + std::to_string(l) + "_" +
                       std::to_string(w),
          rp, route));
    }
  }

  // Node <-> leaf router links.
  for (sim::NodeId node = 0; node < params_.nodes; ++node) {
    const std::uint64_t w = node / k;
    const unsigned port = node % k;
    Router* leaf = routers_[router_index(0, w)].get();

    Link* up = new_link("inj" + std::to_string(node));
    up->set_sink([leaf, port](Packet&& p) { leaf->receive(port, std::move(p)); });
    leaf->connect_input_upstream(port, up);
    inject_links_[node] = up;

    Link* down = new_link("ej" + std::to_string(node));
    down->set_sink([this, node](Packet&& p) {
      count_delivery(kernel_, p);
      assert(endpoints_[node] && "endpoint not attached");
      endpoints_[node](std::move(p));
    });
    leaf->connect_output(port, down);
    eject_links_[node] = down;
  }

  // Inter-level links: <l, w> up port c  <->  <l+1, w[l->c]> down port
  // digit_l(w), one link per direction.
  for (unsigned l = 0; l + 1 < levels_; ++l) {
    for (std::uint64_t w = 0; w < routers_per_level_; ++w) {
      Router* lo = routers_[router_index(l, w)].get();
      for (unsigned c = 0; c < k; ++c) {
        const std::uint64_t w_hi = set_digit(w, l, c);
        const unsigned hi_port = digit(w, l);
        Router* hi = routers_[router_index(l + 1, w_hi)].get();

        Link* up = new_link("u" + std::to_string(l) + "_" +
                            std::to_string(w) + "_" + std::to_string(c));
        up->set_sink(
            [hi, hi_port](Packet&& p) { hi->receive(hi_port, std::move(p)); });
        hi->connect_input_upstream(hi_port, up);
        lo->connect_output(k + c, up);

        Link* dn = new_link("d" + std::to_string(l) + "_" +
                            std::to_string(w) + "_" + std::to_string(c));
        dn->set_sink(
            [lo, c, k](Packet&& p) { lo->receive(k + c, std::move(p)); });
        lo->connect_input_upstream(k + c, dn);
        hi->connect_output(hi_port, dn);
      }
    }
  }

  for (auto& r : routers_) {
    r->start();
  }
}

Link* FatTreeNetwork::new_link(std::string link_name) {
  Link::Params lp = params_.link;
  lp.fault_lane = static_cast<std::uint32_t>(links_.size());
  links_.push_back(std::make_unique<Link>(
      kernel_, name() + "." + std::move(link_name), lp));
  return links_.back().get();
}

unsigned FatTreeNetwork::digit(std::uint64_t x, unsigned i) const {
  return static_cast<unsigned>(x / ipow(params_.radix, i) % params_.radix);
}

std::uint64_t FatTreeNetwork::set_digit(std::uint64_t x, unsigned i,
                                        unsigned v) const {
  const std::uint64_t p = ipow(params_.radix, i);
  const unsigned old = digit(x, i);
  return x + (static_cast<std::uint64_t>(v) - old) * p;
}

std::size_t FatTreeNetwork::router_index(unsigned level,
                                         std::uint64_t w) const {
  return level * routers_per_level_ + w;
}

unsigned FatTreeNetwork::route_at(unsigned level, std::uint64_t w,
                                  const Packet& pkt) const {
  const unsigned k = params_.radix;
  const std::uint64_t d = pkt.dest;
  // Ancestor iff digits [level .. n-2] of w equal digits [level+1 .. n-1]
  // of the destination node address.
  bool ancestor = true;
  for (unsigned i = level; i + 1 < levels_; ++i) {
    if (digit(w, i) != digit(d, i + 1)) {
      ancestor = false;
      break;
    }
  }
  if (ancestor) {
    return digit(d, level);  // down port
  }
  return k + digit(d, level);  // up port (deterministic spread)
}

unsigned FatTreeNetwork::hops(sim::NodeId src, sim::NodeId dst) const {
  if (src == dst) {
    return 1;
  }
  // Lowest common ancestor level: the highest differing address digit.
  unsigned lca = 0;
  for (unsigned i = 0; i < levels_; ++i) {
    if (digit(src, i) != digit(dst, i)) {
      lca = i;
    }
  }
  return 2 * lca + 1;  // up lca routers, through the top one, down lca
}

void FatTreeNetwork::set_endpoint(sim::NodeId node, Deliver deliver) {
  endpoints_.at(node) = std::move(deliver);
}

sim::Co<void> FatTreeNetwork::inject(Packet pkt) {
  if (pkt.dest >= params_.nodes) {
    throw std::out_of_range(name() + ": bad destination node");
  }
  pkt.inject_time = now();
  if (pkt.serial == 0) {
    // A tracing NIU already stamped a flow id; otherwise number here.
    pkt.serial = assign_serial(pkt.src);
  }
  count_inject(pkt.src);
  co_await inject_links_[pkt.src]->send(std::move(pkt));
}

Network::Audit FatTreeNetwork::audit() const {
  Audit a = Network::audit();
  for (const auto& link : links_) {
    a.dropped += link->packets_dropped().value();
  }
  return a;
}

void FatTreeNetwork::consume_done(sim::NodeId node, std::uint8_t priority) {
  eject_links_.at(node)->return_credit(priority);
}

}  // namespace sv::net

#include "net/fat_tree.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

namespace sv::net {

FatTreeNetwork::FatTreeNetwork(sim::Kernel& kernel, std::string name,
                               Params params)
    : Network(kernel, std::move(name), params.nodes),
      params_(params),
      topo_(FatTreeTopology::make(params.nodes, params.radix)) {
  const unsigned k = params_.radix;

  endpoints_.resize(params_.nodes);
  inject_links_.resize(params_.nodes, nullptr);
  eject_links_.resize(params_.nodes, nullptr);

  // Create routers. Port convention: 0..k-1 down, k..2k-1 up.
  routers_.reserve(topo_.router_count());
  for (unsigned l = 0; l < topo_.levels; ++l) {
    for (std::uint64_t w = 0; w < topo_.routers_per_level; ++w) {
      Router::Params rp;
      rp.num_inputs = 2 * k;
      rp.num_outputs = 2 * k;
      rp.clock = params_.router_clock;
      rp.fall_through_cycles = params_.fall_through_cycles;
      // Creation-order fault lane: stable for a given topology, so the
      // fault schedule each router sees replays from the seed alone.
      rp.fault_lane = static_cast<std::uint32_t>(routers_.size());
      auto route = [this, l, w](const Packet& p) {
        return topo_.route_port(l, w, p.dest);
      };
      routers_.push_back(std::make_unique<Router>(
          kernel_, this->name() + ".r" + std::to_string(l) + "_" +
                       std::to_string(w),
          rp, route));
    }
  }

  // Node <-> leaf router links.
  for (sim::NodeId node = 0; node < params_.nodes; ++node) {
    const std::uint64_t w = node / k;
    const unsigned port = node % k;
    Router* leaf = routers_[topo_.router_index(0, w)].get();

    Link* up = new_link("inj" + std::to_string(node));
    up->set_sink([leaf, port](Packet&& p) { leaf->receive(port, std::move(p)); });
    leaf->connect_input_upstream(port, up);
    inject_links_[node] = up;

    Link* down = new_link("ej" + std::to_string(node));
    down->set_sink([this, node](Packet&& p) {
      count_delivery(kernel_, p);
      assert(endpoints_[node] && "endpoint not attached");
      endpoints_[node](std::move(p));
    });
    leaf->connect_output(port, down);
    eject_links_[node] = down;
  }

  // Inter-level links: <l, w> up port c  <->  <l+1, w[l->c]> down port
  // digit_l(w), one link per direction.
  for (unsigned l = 0; l + 1 < topo_.levels; ++l) {
    for (std::uint64_t w = 0; w < topo_.routers_per_level; ++w) {
      Router* lo = routers_[topo_.router_index(l, w)].get();
      for (unsigned c = 0; c < k; ++c) {
        const std::uint64_t w_hi = topo_.set_digit(w, l, c);
        const unsigned hi_port = topo_.digit(w, l);
        Router* hi = routers_[topo_.router_index(l + 1, w_hi)].get();

        Link* up = new_link("u" + std::to_string(l) + "_" +
                            std::to_string(w) + "_" + std::to_string(c));
        up->set_sink(
            [hi, hi_port](Packet&& p) { hi->receive(hi_port, std::move(p)); });
        hi->connect_input_upstream(hi_port, up);
        lo->connect_output(k + c, up);

        Link* dn = new_link("d" + std::to_string(l) + "_" +
                            std::to_string(w) + "_" + std::to_string(c));
        dn->set_sink(
            [lo, c, k](Packet&& p) { lo->receive(k + c, std::move(p)); });
        lo->connect_input_upstream(k + c, dn);
        hi->connect_output(hi_port, dn);
      }
    }
  }

  for (auto& r : routers_) {
    r->start();
  }
}

Link* FatTreeNetwork::new_link(std::string link_name) {
  Link::Params lp = params_.link;
  lp.fault_lane = static_cast<std::uint32_t>(links_.size());
  links_.push_back(std::make_unique<Link>(
      kernel_, name() + "." + std::move(link_name), lp));
  return links_.back().get();
}

void FatTreeNetwork::set_endpoint(sim::NodeId node, Deliver deliver) {
  endpoints_.at(node) = std::move(deliver);
}

sim::Co<void> FatTreeNetwork::inject(Packet pkt) {
  if (pkt.dest >= params_.nodes) {
    throw std::out_of_range(name() + ": bad destination node");
  }
  pkt.inject_time = now();
  if (pkt.serial == 0) {
    // A tracing NIU already stamped a flow id; otherwise number here.
    pkt.serial = assign_serial(pkt.src);
  }
  count_inject(pkt.src);
  co_await inject_links_[pkt.src]->send(std::move(pkt));
}

Network::Audit FatTreeNetwork::audit() const {
  Audit a = Network::audit();
  for (const auto& link : links_) {
    a.dropped += link->packets_dropped().value();
  }
  return a;
}

void FatTreeNetwork::consume_done(sim::NodeId node, std::uint8_t priority) {
  eject_links_.at(node)->return_credit(priority);
}

}  // namespace sv::net

// Arctic-style packet router.
//
// The modelled router has per-input, per-priority packet buffers, a routing
// function supplied by the topology, and one output process per output port
// that selects among buffered head packets (high priority strictly first,
// round-robin within a priority class) — the scheduling discipline the
// Arctic switch implements. Forwarding a packet takes a fall-through delay
// plus serialization on the output link; upstream credits are returned the
// moment a packet leaves its input buffer.
#pragma once

#include <array>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/coro.hpp"
#include "sim/kernel.hpp"
#include "sim/stats.hpp"

namespace sv::net {

class Router : public sim::SimObject {
 public:
  struct Params {
    unsigned num_inputs = 8;
    unsigned num_outputs = 8;
    sim::Clock clock{12500};
    sim::Cycles fall_through_cycles = 3;  // header decode + crossbar
    std::uint32_t fault_lane = 0;  // fault::Injector stream this router draws
  };

  /// Maps a packet to the output port it must leave through.
  using RouteFn = std::function<unsigned(const Packet&)>;

  Router(sim::Kernel& kernel, std::string name, Params params, RouteFn route);

  /// Receive a packet on input port `in` (wired as the upstream link's sink).
  void receive(unsigned in, Packet&& pkt);

  /// Wire output port `out` to `link` (not owned).
  void connect_output(unsigned out, Link* link);

  /// Wire the upstream link of input port `in`, for credit returns.
  void connect_input_upstream(unsigned in, Link* link);

  /// Spawn the output processes. Call once after wiring.
  void start();

  [[nodiscard]] const sim::Counter& packets_routed() const {
    return routed_;
  }

 private:
  struct InPort {
    std::array<std::deque<Packet>, kNumPriorities> vq;
    Link* upstream = nullptr;
  };

  sim::Co<void> output_process(unsigned out);

  /// Find a buffered head packet routed to `out`; highest priority first,
  /// round-robin across inputs within a priority. Returns input index or -1.
  int pick_input(unsigned out, std::uint8_t priority);

  Params params_;
  RouteFn route_;
  std::vector<InPort> inputs_;
  std::vector<Link*> outputs_;
  std::vector<unsigned> rr_next_;  // per output: next input for round-robin
  sim::Signal work_;
  sim::Counter routed_;
  bool started_ = false;
  trace::TrackId trace_track_ = trace::kNoTrack;
};

}  // namespace sv::net

#include "net/packet.hpp"

#include <sstream>

namespace sv::net {

std::string Packet::summary() const {
  std::ostringstream oss;
  oss << "pkt[" << src << "->" << dest << " q=" << dest_queue
      << " prio=" << static_cast<int>(priority) << " len=" << payload.size()
      << " #" << serial << "]";
  return oss.str();
}

Payload to_payload(std::span<const std::byte> s) {
  Payload p;
  p = s;
  return p;
}

}  // namespace sv::net

#include "fault/fault.hpp"

#include <algorithm>
#include <sstream>

#include "ckpt/stats_io.hpp"
#include "sim/config.hpp"
#include "trace/trace.hpp"

namespace sv::fault {

Plan Plan::from_config(const sim::Config& cfg) {
  Plan p;
  p.seed = cfg.get_u64("fault.seed", p.seed);
  p.drop_rate = cfg.get_double("fault.drop_rate", p.drop_rate);
  p.corrupt_rate = cfg.get_double("fault.corrupt_rate", p.corrupt_rate);
  p.link_down_rate = cfg.get_double("fault.link_down_rate", p.link_down_rate);
  p.link_down_ticks = cfg.get_u64("fault.link_down_ticks", p.link_down_ticks);
  p.router_stall_rate =
      cfg.get_double("fault.router_stall_rate", p.router_stall_rate);
  p.router_stall_cycles = static_cast<std::uint32_t>(
      cfg.get_u64("fault.router_stall_cycles", p.router_stall_cycles));
  p.starve_rate = cfg.get_double("fault.starve_rate", p.starve_rate);
  p.starve_cycles = static_cast<std::uint32_t>(
      cfg.get_u64("fault.starve_cycles", p.starve_cycles));
  p.rx_overflow_rate =
      cfg.get_double("fault.rx_overflow_rate", p.rx_overflow_rate);
  // fault.drop_script=3,17,42 switches to scripted mode (the explorer's
  // reproduction path): those global drop opportunities and only those.
  if (const std::string script = cfg.get_string("fault.drop_script");
      !script.empty()) {
    p.scripted = true;
    std::istringstream in(script);
    std::string tok;
    while (std::getline(in, tok, ',')) {
      if (!tok.empty()) {
        p.drop_script.push_back(std::stoull(tok));
      }
    }
    std::sort(p.drop_script.begin(), p.drop_script.end());
  }
  return p;
}

std::uint64_t Injector::stream_seed(std::uint64_t master,
                                    std::string_view stream) {
  // FNV-1a over the stream name, then one SplitMix64-style finalizer over
  // the combination so nearby master seeds still give unrelated streams.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : stream) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  std::uint64_t z = h ^ (master + 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Injector::lane_seed(std::uint64_t master,
                                  std::string_view stream,
                                  std::uint32_t lane) {
  std::uint64_t z = stream_seed(master, stream) ^
                    ((lane + 1ULL) * 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Injector::Lane::Lane(std::uint64_t master, std::uint32_t index)
    : drop(lane_seed(master, "link.drop", index)),
      corrupt(lane_seed(master, "link.corrupt", index)),
      down(lane_seed(master, "link.down", index)),
      stall(lane_seed(master, "router.stall", index)),
      starve(lane_seed(master, "router.starve", index)),
      overflow(lane_seed(master, "rxu.overflow", index)) {}

Injector::Injector(std::string name, Plan plan, std::size_t lanes)
    : name_(std::move(name)), plan_(plan) {
  for (std::size_t i = 0; i < lanes; ++i) {
    lanes_.emplace_back(plan_.seed, static_cast<std::uint32_t>(i));
  }
}

Injector::Lane& Injector::lane(std::uint32_t i) {
  while (i >= lanes_.size()) {
    lanes_.emplace_back(plan_.seed, static_cast<std::uint32_t>(lanes_.size()));
  }
  return lanes_[i];
}

Stats Injector::stats() const {
  Stats s;
  for (const Lane& l : lanes_) {
    s.drops.inc(l.stats.drops.value());
    s.corrupts.inc(l.stats.corrupts.value());
    s.link_downs.inc(l.stats.link_downs.value());
    s.router_stalls.inc(l.stats.router_stalls.value());
    s.starvations.inc(l.stats.starvations.value());
    s.rx_overflows.inc(l.stats.rx_overflows.value());
  }
  return s;
}

void Injector::mark(sim::Kernel& k, std::uint32_t lane, const char* what,
                    std::uint64_t flow) {
  if (trace::Tracer* tr = k.tracer()) {
    const trace::TrackId t =
        tr->track("net", "faults.n" + std::to_string(lane), "fault");
    tr->instant(t, what, k.now(), flow);
  }
}

bool Injector::drop_packet(sim::Kernel& k, std::uint32_t l,
                           std::uint64_t flow) {
  Lane& ln = lane(l);
  ++ln.cursors.drop;
  if (plan_.scripted) {
    const std::uint64_t idx = script_cursor_++;
    if (!std::binary_search(plan_.drop_script.begin(),
                            plan_.drop_script.end(), idx)) {
      return false;
    }
    ln.stats.drops.inc();
    mark(k, l, "fault: drop", flow);
    return true;
  }
  if (plan_.drop_rate <= 0.0 || !ln.drop.chance(plan_.drop_rate)) {
    return false;
  }
  ln.stats.drops.inc();
  mark(k, l, "fault: drop", flow);
  return true;
}

bool Injector::corrupt_packet(sim::Kernel& k, std::uint32_t l,
                              std::uint64_t flow) {
  Lane& ln = lane(l);
  ++ln.cursors.corrupt;
  if (plan_.corrupt_rate <= 0.0 || !ln.corrupt.chance(plan_.corrupt_rate)) {
    return false;
  }
  ln.stats.corrupts.inc();
  mark(k, l, "fault: corrupt", flow);
  return true;
}

void Injector::corrupt(std::uint32_t l, std::span<std::byte> payload) {
  if (payload.empty()) {
    return;
  }
  Lane& ln = lane(l);
  const std::uint64_t bit = ln.corrupt.below(payload.size() * 8);
  payload[bit / 8] ^= static_cast<std::byte>(1U << (bit % 8));
}

sim::Tick Injector::link_down_window(sim::Kernel& k, std::uint32_t l,
                                     std::uint64_t flow) {
  Lane& ln = lane(l);
  ++ln.cursors.down;
  if (plan_.link_down_rate <= 0.0 ||
      !ln.down.chance(plan_.link_down_rate)) {
    return 0;
  }
  ln.stats.link_downs.inc();
  mark(k, l, "fault: link down", flow);
  return plan_.link_down_ticks;
}

std::uint32_t Injector::router_stall_cycles(sim::Kernel& k, std::uint32_t l) {
  Lane& ln = lane(l);
  ++ln.cursors.stall;
  if (plan_.router_stall_rate <= 0.0 ||
      !ln.stall.chance(plan_.router_stall_rate)) {
    return 0;
  }
  ln.stats.router_stalls.inc();
  mark(k, l, "fault: router stall", 0);
  return plan_.router_stall_cycles;
}

std::uint32_t Injector::starvation_cycles(sim::Kernel& k, std::uint32_t l) {
  Lane& ln = lane(l);
  ++ln.cursors.starve;
  if (plan_.starve_rate <= 0.0 || !ln.starve.chance(plan_.starve_rate)) {
    return 0;
  }
  ln.stats.starvations.inc();
  mark(k, l, "fault: starvation", 0);
  return plan_.starve_cycles;
}

bool Injector::rx_overflow(sim::Kernel& k, std::uint32_t l,
                           std::uint64_t flow) {
  Lane& ln = lane(l);
  ++ln.cursors.overflow;
  if (plan_.rx_overflow_rate <= 0.0 ||
      !ln.overflow.chance(plan_.rx_overflow_rate)) {
    return false;
  }
  ln.stats.rx_overflows.inc();
  mark(k, l, "fault: rx overflow", flow);
  return true;
}

std::uint64_t Injector::drop_opportunities() const {
  std::uint64_t n = 0;
  for (const Lane& l : lanes_) {
    n += l.cursors.drop;
  }
  return n;
}

void Injector::ckpt_save(ckpt::Writer& w) const {
  w.u64(lanes_.size());
  for (const Lane& l : lanes_) {
    ckpt::save(w, l.drop);
    ckpt::save(w, l.corrupt);
    ckpt::save(w, l.down);
    ckpt::save(w, l.stall);
    ckpt::save(w, l.starve);
    ckpt::save(w, l.overflow);
    w.u64(l.cursors.drop);
    w.u64(l.cursors.corrupt);
    w.u64(l.cursors.down);
    w.u64(l.cursors.stall);
    w.u64(l.cursors.starve);
    w.u64(l.cursors.overflow);
    ckpt::save(w, l.stats.drops);
    ckpt::save(w, l.stats.corrupts);
    ckpt::save(w, l.stats.link_downs);
    ckpt::save(w, l.stats.router_stalls);
    ckpt::save(w, l.stats.starvations);
    ckpt::save(w, l.stats.rx_overflows);
  }
  w.u64(script_cursor_);
}

}  // namespace sv::fault

#include "fault/fault.hpp"

#include "sim/config.hpp"
#include "trace/trace.hpp"

namespace sv::fault {

Plan Plan::from_config(const sim::Config& cfg) {
  Plan p;
  p.seed = cfg.get_u64("fault.seed", p.seed);
  p.drop_rate = cfg.get_double("fault.drop_rate", p.drop_rate);
  p.corrupt_rate = cfg.get_double("fault.corrupt_rate", p.corrupt_rate);
  p.link_down_rate = cfg.get_double("fault.link_down_rate", p.link_down_rate);
  p.link_down_ticks = cfg.get_u64("fault.link_down_ticks", p.link_down_ticks);
  p.router_stall_rate =
      cfg.get_double("fault.router_stall_rate", p.router_stall_rate);
  p.router_stall_cycles = static_cast<std::uint32_t>(
      cfg.get_u64("fault.router_stall_cycles", p.router_stall_cycles));
  p.starve_rate = cfg.get_double("fault.starve_rate", p.starve_rate);
  p.starve_cycles = static_cast<std::uint32_t>(
      cfg.get_u64("fault.starve_cycles", p.starve_cycles));
  p.rx_overflow_rate =
      cfg.get_double("fault.rx_overflow_rate", p.rx_overflow_rate);
  return p;
}

std::uint64_t Injector::stream_seed(std::uint64_t master,
                                    std::string_view stream) {
  // FNV-1a over the stream name, then one SplitMix64-style finalizer over
  // the combination so nearby master seeds still give unrelated streams.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : stream) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  std::uint64_t z = h ^ (master + 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Injector::Injector(sim::Kernel& kernel, std::string name, Plan plan)
    : SimObject(kernel, std::move(name)),
      plan_(plan),
      drop_rng_(stream_seed(plan.seed, "link.drop")),
      corrupt_rng_(stream_seed(plan.seed, "link.corrupt")),
      down_rng_(stream_seed(plan.seed, "link.down")),
      stall_rng_(stream_seed(plan.seed, "router.stall")),
      starve_rng_(stream_seed(plan.seed, "router.starve")),
      overflow_rng_(stream_seed(plan.seed, "rxu.overflow")) {}

void Injector::mark(const char* what, std::uint64_t flow) {
  if (trace::Tracer* tr = kernel_.tracer()) {
    const trace::TrackId t = tr->track("net", "faults", "fault");
    tr->instant(t, what, now(), flow);
  }
}

bool Injector::drop_packet(std::uint64_t flow) {
  if (plan_.drop_rate <= 0.0 || !drop_rng_.chance(plan_.drop_rate)) {
    return false;
  }
  stats_.drops.inc();
  mark("fault: drop", flow);
  return true;
}

bool Injector::corrupt_packet(std::uint64_t flow) {
  if (plan_.corrupt_rate <= 0.0 || !corrupt_rng_.chance(plan_.corrupt_rate)) {
    return false;
  }
  stats_.corrupts.inc();
  mark("fault: corrupt", flow);
  return true;
}

void Injector::corrupt(std::vector<std::byte>& payload) {
  if (payload.empty()) {
    return;
  }
  const std::uint64_t bit = corrupt_rng_.below(payload.size() * 8);
  payload[bit / 8] ^= static_cast<std::byte>(1U << (bit % 8));
}

sim::Tick Injector::link_down_window(std::uint64_t flow) {
  if (plan_.link_down_rate <= 0.0 || !down_rng_.chance(plan_.link_down_rate)) {
    return 0;
  }
  stats_.link_downs.inc();
  mark("fault: link down", flow);
  return plan_.link_down_ticks;
}

std::uint32_t Injector::router_stall_cycles() {
  if (plan_.router_stall_rate <= 0.0 ||
      !stall_rng_.chance(plan_.router_stall_rate)) {
    return 0;
  }
  stats_.router_stalls.inc();
  mark("fault: router stall", 0);
  return plan_.router_stall_cycles;
}

std::uint32_t Injector::starvation_cycles() {
  if (plan_.starve_rate <= 0.0 || !starve_rng_.chance(plan_.starve_rate)) {
    return 0;
  }
  stats_.starvations.inc();
  mark("fault: starvation", 0);
  return plan_.starve_cycles;
}

bool Injector::rx_overflow(std::uint64_t flow) {
  if (plan_.rx_overflow_rate <= 0.0 ||
      !overflow_rng_.chance(plan_.rx_overflow_rate)) {
    return false;
  }
  stats_.rx_overflows.inc();
  mark("fault: rx overflow", flow);
  return true;
}

}  // namespace sv::fault

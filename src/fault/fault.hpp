// Deterministic, config-driven fault injection.
//
// A fault::Injector hangs off the Kernel exactly like the trace::Tracer:
// hook sites in net::Link (packet drop, payload corruption, transient
// link-down windows), net::Router (backpressure stalls, low-priority
// starvation) and niu::RxU (forced Rx-queue overflow) do a single pointer
// null-check when fault injection is off — that check is the entire
// disabled-path cost, so a run with no injector is bit-identical to a
// build without the subsystem.
//
// Decisions are drawn from per-*lane* RNG streams, where a lane is the
// hook site's stable identity: the source node for IdealNetwork wire
// faults, the creation-order link/router index in the fat tree, the node
// id for Rx overflow. Each (category, lane) stream is seeded from the
// master seed alone, so the decision sequence a given hook site sees is
// independent of every other site's traffic — which is what lets a
// machine partitioned into per-node event domains replay exactly the
// fault schedule of the sequential run (and lets any observed failure
// replay from the master seed alone). One Injector is shared by all
// domains; a lane is only ever exercised from the domain that owns it, so
// no locking is needed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "sim/kernel.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace sv::sim {
class Config;
}  // namespace sv::sim

namespace sv::fault {

/// What to inject and how often. All rates are per-opportunity
/// probabilities in [0, 1]; a default-constructed Plan injects nothing.
struct Plan {
  std::uint64_t seed = sim::Rng::kDefaultSeed;

  // net::Link faults, evaluated once per packet crossing a link.
  double drop_rate = 0.0;     // packet vanishes on the wire
  double corrupt_rate = 0.0;  // one payload bit flips in flight
  double link_down_rate = 0.0;
  sim::Tick link_down_ticks = 2'000'000;  // 2 us outage per event

  // net::Router faults, evaluated once per packet forwarded.
  double router_stall_rate = 0.0;
  std::uint32_t router_stall_cycles = 32;  // backpressure bubble
  double starve_rate = 0.0;
  std::uint32_t starve_cycles = 64;  // extra wait charged to low priority

  // niu::RxU fault: packet discarded as if the Rx queue overflowed.
  double rx_overflow_rate = 0.0;

  /// Scripted drop mode (the scenario explorer, DESIGN.md §14): instead of
  /// drawing from the per-lane RNG streams, drop exactly the opportunities
  /// whose global index — counting every drop_packet() call across all
  /// lanes in arrival order — appears in `drop_script` (kept sorted).
  /// Global arrival order is only deterministic in a single event domain,
  /// so scripted runs require threads == 0.
  bool scripted = false;
  std::vector<std::uint64_t> drop_script;

  [[nodiscard]] bool enabled() const {
    return scripted || drop_rate > 0.0 || corrupt_rate > 0.0 ||
           link_down_rate > 0.0 || router_stall_rate > 0.0 ||
           starve_rate > 0.0 || rx_overflow_rate > 0.0;
  }

  /// Read "fault.*" keys (fault.seed, fault.drop_rate, fault.corrupt_rate,
  /// fault.link_down_rate, fault.link_down_ticks, fault.router_stall_rate,
  /// fault.router_stall_cycles, fault.starve_rate, fault.starve_cycles,
  /// fault.rx_overflow_rate). Missing keys keep the defaults above.
  static Plan from_config(const sim::Config& cfg);
};

/// Counts of injected faults, per category.
struct Stats {
  sim::Counter drops;
  sim::Counter corrupts;
  sim::Counter link_downs;
  sim::Counter router_stalls;
  sim::Counter starvations;
  sim::Counter rx_overflows;
};

class Injector {
 public:
  /// `lanes` pre-allocates that many lanes; more are grown on demand, but
  /// on-demand growth is only safe while a single event domain is running
  /// (the fat-tree case). A partitioned machine must pre-allocate every
  /// lane its domains will touch.
  Injector(std::string name, Plan plan, std::size_t lanes = 1);

  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const Plan& plan() const { return plan_; }

  /// Counts aggregated over all lanes, in lane order.
  [[nodiscard]] Stats stats() const;

  // --- Hook-point decisions. Each call advances only the (category, lane)
  // stream it names; `k` is the calling domain's kernel, used for the
  // current time and the trace marker. `flow` tags the marker. ---

  /// True: the packet is lost on the wire.
  bool drop_packet(sim::Kernel& k, std::uint32_t lane, std::uint64_t flow);

  /// True: the packet's payload should be corrupted (call corrupt()).
  bool corrupt_packet(sim::Kernel& k, std::uint32_t lane, std::uint64_t flow);

  /// Flip one uniformly-chosen bit of `payload` (no-op when empty).
  void corrupt(std::uint32_t lane, std::span<std::byte> payload);

  /// Nonzero: the link goes down for that many ticks before this packet
  /// can serialize.
  sim::Tick link_down_window(sim::Kernel& k, std::uint32_t lane,
                             std::uint64_t flow);

  /// Nonzero: the router output port stalls for that many cycles
  /// (backpressure bubble) before forwarding.
  std::uint32_t router_stall_cycles(sim::Kernel& k, std::uint32_t lane);

  /// Nonzero: a low-priority packet is starved for that many extra cycles.
  std::uint32_t starvation_cycles(sim::Kernel& k, std::uint32_t lane);

  /// True: the RxU discards this packet as a forced Rx-queue overflow.
  bool rx_overflow(sim::Kernel& k, std::uint32_t lane, std::uint64_t flow);

  /// Seed for a named stream: master seed mixed with an FNV-1a hash of the
  /// stream name, so streams are decorrelated but fully determined by
  /// (master, name).
  [[nodiscard]] static std::uint64_t stream_seed(std::uint64_t master,
                                                 std::string_view stream);

  /// Per-lane variant: stream_seed further mixed with the lane index.
  [[nodiscard]] static std::uint64_t lane_seed(std::uint64_t master,
                                               std::string_view stream,
                                               std::uint32_t lane);

  /// Total drop opportunities observed so far (drop_packet calls), summed
  /// over all lanes in lane order. In a scripted (single-domain) run this
  /// equals the global opportunity index the script addresses; the
  /// explorer uses it as the reachability horizon for extending patterns.
  [[nodiscard]] std::uint64_t drop_opportunities() const;

  /// Snapshot state: per-lane decision cursors (one per category — a count
  /// of draws taken), the six raw RNG streams per lane, per-lane injection
  /// counters, and the scripted-mode cursor. A restored run's streams must
  /// land on the same words bit-for-bit (the fault_matrix_test oracle).
  void ckpt_save(ckpt::Writer& w) const;

 private:
  struct Lane {
    Lane(std::uint64_t master, std::uint32_t index);

    sim::Rng drop;
    sim::Rng corrupt;
    sim::Rng down;
    sim::Rng stall;
    sim::Rng starve;
    sim::Rng overflow;
    Stats stats;
    /// Decision cursors: how many times each category's hook ran on this
    /// lane (whether or not it injected). Purely additive bookkeeping —
    /// the RNG draw sequence is unchanged.
    struct Cursors {
      std::uint64_t drop = 0;
      std::uint64_t corrupt = 0;
      std::uint64_t down = 0;
      std::uint64_t stall = 0;
      std::uint64_t starve = 0;
      std::uint64_t overflow = 0;
    } cursors;
  };

  Lane& lane(std::uint32_t i);

  /// Record the fault on the lane's "net"/"faults.n<lane>" trace track of
  /// the calling domain's tracer (if tracing).
  void mark(sim::Kernel& k, std::uint32_t lane, const char* what,
            std::uint64_t flow);

  std::string name_;
  Plan plan_;
  // deque: lane references stay valid across on-demand growth.
  std::deque<Lane> lanes_;
  /// Global drop-opportunity cursor, advanced only in scripted mode (which
  /// requires a single event domain — see Plan::scripted).
  std::uint64_t script_cursor_ = 0;
};

}  // namespace sv::fault

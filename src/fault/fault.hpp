// Deterministic, config-driven fault injection.
//
// A fault::Injector hangs off the Kernel exactly like the trace::Tracer:
// hook sites in net::Link (packet drop, payload corruption, transient
// link-down windows), net::Router (backpressure stalls, low-priority
// starvation) and niu::RxU (forced Rx-queue overflow) do a single pointer
// null-check when fault injection is off — that check is the entire
// disabled-path cost, so a run with no injector is bit-identical to a
// build without the subsystem.
//
// Every fault category draws from its own sim::Rng seeded from a named
// stream ("link.drop", "link.corrupt", ...) mixed with one master seed, so
// the decision sequence of one category is independent of whether another
// category is enabled, and any observed failure replays exactly from the
// master seed alone.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/kernel.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace sv::sim {
class Config;
}  // namespace sv::sim

namespace sv::fault {

/// What to inject and how often. All rates are per-opportunity
/// probabilities in [0, 1]; a default-constructed Plan injects nothing.
struct Plan {
  std::uint64_t seed = sim::Rng::kDefaultSeed;

  // net::Link faults, evaluated once per packet crossing a link.
  double drop_rate = 0.0;     // packet vanishes on the wire
  double corrupt_rate = 0.0;  // one payload bit flips in flight
  double link_down_rate = 0.0;
  sim::Tick link_down_ticks = 2'000'000;  // 2 us outage per event

  // net::Router faults, evaluated once per packet forwarded.
  double router_stall_rate = 0.0;
  std::uint32_t router_stall_cycles = 32;  // backpressure bubble
  double starve_rate = 0.0;
  std::uint32_t starve_cycles = 64;  // extra wait charged to low priority

  // niu::RxU fault: packet discarded as if the Rx queue overflowed.
  double rx_overflow_rate = 0.0;

  [[nodiscard]] bool enabled() const {
    return drop_rate > 0.0 || corrupt_rate > 0.0 || link_down_rate > 0.0 ||
           router_stall_rate > 0.0 || starve_rate > 0.0 ||
           rx_overflow_rate > 0.0;
  }

  /// Read "fault.*" keys (fault.seed, fault.drop_rate, fault.corrupt_rate,
  /// fault.link_down_rate, fault.link_down_ticks, fault.router_stall_rate,
  /// fault.router_stall_cycles, fault.starve_rate, fault.starve_cycles,
  /// fault.rx_overflow_rate). Missing keys keep the defaults above.
  static Plan from_config(const sim::Config& cfg);
};

/// Counts of injected faults, per category.
struct Stats {
  sim::Counter drops;
  sim::Counter corrupts;
  sim::Counter link_downs;
  sim::Counter router_stalls;
  sim::Counter starvations;
  sim::Counter rx_overflows;
};

class Injector : public sim::SimObject {
 public:
  Injector(sim::Kernel& kernel, std::string name, Plan plan);

  [[nodiscard]] const Plan& plan() const { return plan_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  // --- Hook-point decisions. Each call advances only its own stream. ---

  /// True: the packet is lost on the wire. `flow` is the packet serial,
  /// used to tag the trace marker.
  bool drop_packet(std::uint64_t flow);

  /// True: the packet's payload should be corrupted (call corrupt()).
  bool corrupt_packet(std::uint64_t flow);

  /// Flip one uniformly-chosen bit of `payload` (no-op when empty).
  void corrupt(std::vector<std::byte>& payload);

  /// Nonzero: the link goes down for that many ticks before this packet
  /// can serialize.
  sim::Tick link_down_window(std::uint64_t flow);

  /// Nonzero: the router output port stalls for that many cycles
  /// (backpressure bubble) before forwarding.
  std::uint32_t router_stall_cycles();

  /// Nonzero: a low-priority packet is starved for that many extra cycles.
  std::uint32_t starvation_cycles();

  /// True: the RxU discards this packet as a forced Rx-queue overflow.
  bool rx_overflow(std::uint64_t flow);

  /// Seed for a named stream: master seed mixed with an FNV-1a hash of the
  /// stream name, so streams are decorrelated but fully determined by
  /// (master, name).
  [[nodiscard]] static std::uint64_t stream_seed(std::uint64_t master,
                                                 std::string_view stream);

 private:
  /// Record the fault on the shared "net/faults" trace lane (if tracing).
  void mark(const char* what, std::uint64_t flow);

  Plan plan_;
  Stats stats_;
  sim::Rng drop_rng_;
  sim::Rng corrupt_rng_;
  sim::Rng down_rng_;
  sim::Rng stall_rng_;
  sim::Rng starve_rng_;
  sim::Rng overflow_rng_;
};

}  // namespace sv::fault

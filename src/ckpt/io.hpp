// Byte-level serialization primitives for machine snapshots (DESIGN.md
// §14).
//
// Header-only on purpose: every component library implements a
// ckpt_save() method that appends its architectural state to a Writer,
// and depending on a low-level header (rather than a ckpt library) keeps
// the dependency graph acyclic — sv_ckpt sits on top of sv_app/sv_sys and
// orchestrates, while the components below it only ever see these two
// classes.
//
// Encoding rules, chosen so a snapshot is a deterministic function of
// machine state alone:
//   - all integers little-endian, fixed width (no varints)
//   - doubles as IEEE-754 bit patterns in a u64 (never formatted text)
//   - containers as u64 count followed by elements, in a canonical order
//     (map iteration order, node-id order, sequence order)
// A Reader checks bounds on every read and throws ckpt::Error instead of
// ever reading past the end, so truncated or corrupted snapshots are
// rejected, never UB (ckpt_property_test runs this under ASan/UBSan).
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace sv::ckpt {

/// Any structural problem with a snapshot: bad magic, version mismatch,
/// CRC failure, truncation, or a state-verification divergence.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

class Writer {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(static_cast<std::byte>(v)); }
  void u16(std::uint16_t v) { put_le(v); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }
  void b(bool v) { u8(v ? 1 : 0); }
  void tick(std::uint64_t v) { u64(v); }

  /// IEEE bit pattern, not text: bit-identical round-trips, no locale or
  /// formatting dependence.
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  void str(std::string_view s) {
    u64(s.size());
    const auto* p = reinterpret_cast<const std::byte*>(s.data());
    bytes_.insert(bytes_.end(), p, p + s.size());
  }

  void bytes(std::span<const std::byte> s) {
    u64(s.size());
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }

  [[nodiscard]] const std::vector<std::byte>& data() const { return bytes_; }
  [[nodiscard]] std::size_t size() const { return bytes_.size(); }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      bytes_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
    }
  }

  std::vector<std::byte> bytes_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::byte> data) : data_(data) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(take(1)[0]); }
  std::uint16_t u16() { return get_le<std::uint16_t>(); }
  std::uint32_t u32() { return get_le<std::uint32_t>(); }
  std::uint64_t u64() { return get_le<std::uint64_t>(); }
  bool b() { return u8() != 0; }
  std::uint64_t tick() { return u64(); }
  double f64() { return std::bit_cast<double>(u64()); }

  std::string str() {
    const std::uint64_t n = len(u64());
    const auto s = take(n);
    return {reinterpret_cast<const char*>(s.data()), s.size()};
  }

  std::vector<std::byte> bytes() {
    const std::uint64_t n = len(u64());
    const auto s = take(n);
    return {s.begin(), s.end()};
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool done() const { return remaining() == 0; }

 private:
  std::span<const std::byte> take(std::size_t n) {
    if (n > remaining()) {
      throw Error("snapshot truncated: need " + std::to_string(n) +
                  " bytes at offset " + std::to_string(pos_) + ", have " +
                  std::to_string(remaining()));
    }
    const auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  /// Guard container lengths against overflow-crafted values before any
  /// allocation sized by them.
  std::uint64_t len(std::uint64_t n) {
    if (n > remaining()) {
      throw Error("snapshot corrupt: length " + std::to_string(n) +
                  " exceeds remaining " + std::to_string(remaining()) +
                  " bytes");
    }
    return n;
  }

  template <typename T>
  T get_le() {
    const auto s = take(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<std::uint8_t>(s[i])) << (8 * i);
    }
    return v;
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace sv::ckpt

// Scenario explorer: systematic fault-placement search (DESIGN.md §14).
//
// The explorer asks one question about a deterministic workload: does any
// pattern of at most `max_drops` packet losses break the workload's
// stated guarantees — and if so, which minimal pattern? It enumerates
// scripted drop patterns (fault::Plan::drop_script — sets of global
// drop-opportunity indices) in order of increasing cardinality, so the
// first violation found has minimal drop count, and within a cardinality
// patterns are visited in lexicographic order, so the answer is unique
// and reproducible.
//
// The search stays tractable through two sound prunings plus one
// deduplication:
//   * reachability: extending pattern P with index i >= the number of
//     drop opportunities the run of P actually observed is a no-op —
//     run(P u {i}) == run(P) because opportunity i never happens — so
//     only indices below the observed horizon (and the configured cap)
//     are explored;
//   * monotone indices: patterns are ordered sets, each extension index
//     exceeds the pattern's last, so no pattern is visited twice;
//   * state-hash dedup: two prefixes with the same final state hash
//     (Snapshot::state_hash — cumulative counters and RNG cursors, so
//     equal hashes mean equal trajectories) and the same last index
//     reach identical futures; the subtree is explored once.
//
// The engine is workload-agnostic: the caller supplies a ScenarioFn that
// builds a machine (typically restored from a checkpoint), applies the
// drop pattern, runs to completion, and reports what it saw. tools/
// svexplore and tests/explorer_test provide their own runners.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace sv::ckpt {

/// One scripted run's outcome, as the caller's runner reports it.
struct ScenarioResult {
  /// A guarantee was broken (lost/duplicated/reordered message, missed
  /// give-up, stuck workload, ...).
  bool violation = false;
  /// Human-readable description of the violation (empty otherwise).
  std::string detail;
  /// Drop opportunities the run observed (fault::Injector::
  /// drop_opportunities()) — the reachability horizon for extensions.
  std::uint64_t opportunities = 0;
  /// Final machine state hash (Snapshot::state_hash of a capture at the
  /// end of the run) — the dedup key. 0 disables dedup for this run.
  std::uint64_t state_hash = 0;
};

/// Run the workload with exactly the given drop pattern applied
/// (sorted global opportunity indices; empty = fault-free baseline).
using ScenarioFn =
    std::function<ScenarioResult(const std::vector<std::uint64_t>& drops)>;

struct ExploreParams {
  /// Pattern-cardinality bound: search |pattern| = 1 .. max_drops.
  std::uint32_t max_drops = 2;
  /// Hard cap on the opportunity indices considered, on top of each
  /// run's observed horizon. 0 = no cap.
  std::uint64_t max_opportunities = 0;
  /// Simulation budget; the search stops (exhausted = false) on excess.
  std::uint64_t max_runs = 10000;
};

struct ExploreResult {
  /// A violating pattern was found.
  bool found = false;
  /// The minimal violating pattern (fewest drops; lexicographically
  /// first among those). Empty when !found.
  std::vector<std::uint64_t> minimal;
  /// The violating run's own description.
  std::string detail;
  /// True when the baseline (no drops) already violates — found with an
  /// empty `minimal`.
  bool baseline_violation = false;
  /// The whole bound was searched without finding a violation: a proof
  /// that no pattern of <= max_drops drops (within the opportunity cap)
  /// breaks the workload. False when found or out of budget.
  bool exhausted = false;
  /// Simulated runs actually performed.
  std::uint64_t runs = 0;
  /// Subtrees skipped by the two prunings.
  std::uint64_t pruned_dedup = 0;
  std::uint64_t pruned_horizon = 0;
};

/// Search drop patterns of cardinality 1..max_drops (after a baseline
/// run) and return either the minimal violating pattern or the bounded
/// exhaustiveness proof. Deterministic: same ScenarioFn behaviour, same
/// answer.
[[nodiscard]] ExploreResult explore(const ScenarioFn& run,
                                    const ExploreParams& params);

}  // namespace sv::ckpt

// The reliable-ring scenario: the concrete workload tools/svexplore and
// tests/explorer_test explore.
//
// Every node streams `count` CRC-protected payloads to its right
// neighbour over msg::ReliableChannel and consumes `count` from its left,
// verifying each received payload byte-for-byte against the sender's
// deterministic pattern. Run under a scripted drop pattern
// (fault::Plan::drop_script), the outcome classifies the channel's
// contract:
//
//   completed, payloads correct          ok (give-up allowed: a final-ACK
//                                        loss burst can exhaust the
//                                        retransmit budget after every
//                                        payload already arrived)
//   any payload wrong / reordered /      violation (exactly-once or
//   duplicated                           in-order broken)
//   stuck at the deadline, some node     ok (give-up is the contract's
//   gave up                              declared-failure outcome)
//   stuck at the deadline, nobody        violation (liveness: neither
//   gave up                              delivery nor give-up)
//
// A run can start from a committed checkpoint: replay to the snapshot's
// tick (byte-verified against the file), with the drop pattern's indices
// interpreted relative to the drop-opportunity horizon recorded in the
// snapshot — so the explorer searches only placements after the
// checkpoint, exactly the "explore from here" workflow.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/explore.hpp"
#include "ckpt/snapshot.hpp"
#include "sim/types.hpp"

namespace sv::ckpt {

struct RingSpec {
  std::uint64_t nodes = 2;
  std::uint64_t count = 20;
  std::uint64_t bytes = 32;
  std::uint64_t window = 8;
  std::uint64_t timeout_us = 20;
  std::uint64_t give_up = 4;
  std::uint64_t deadline_ms = 20;
  std::uint64_t fault_seed = 1;

  /// key=value lines, the snapshot-embedded form.
  [[nodiscard]] std::string to_config() const;
  /// Inverse of to_config(); throws ckpt::Error on malformed text or a
  /// non-ring scenario tag.
  static RingSpec from_config(const std::string& text);
};

/// Run the ring once with the given relative drop pattern. With `resume`,
/// the spec is taken from the snapshot, the replay is byte-verified at
/// the capture tick (throws Error on divergence — the drops all land
/// after it, so the prefix must match the fault-free original), and drop
/// indices are offset by the snapshot's recorded opportunity base.
[[nodiscard]] ScenarioResult run_reliable_ring(
    const RingSpec& spec, const std::vector<std::uint64_t>& drops,
    const Snapshot* resume = nullptr);

/// Run the fault-free ring to the first epoch boundary at/after `at` and
/// capture. The snapshot embeds the spec plus the drop-opportunity count
/// observed so far (`base_opp=`), which later resumed runs subtract.
[[nodiscard]] Snapshot checkpoint_reliable_ring(const RingSpec& spec,
                                                sim::Tick at);

/// Bind spec (+ optional resume point) into the explorer's ScenarioFn.
/// `resume`, when given, must outlive the returned function.
[[nodiscard]] ScenarioFn reliable_ring_scenario(RingSpec spec,
                                                const Snapshot* resume =
                                                    nullptr);

}  // namespace sv::ckpt

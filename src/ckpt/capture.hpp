// Whole-machine snapshot capture (DESIGN.md §14).
//
// capture() walks a sys::Machine in canonical order — event domains,
// fault injector, network, then every node's bus/memory/processors/NIU/
// firmware, then the app runtime if one is attached — and collects each
// component's ckpt_save() output as a named Snapshot chunk. The walk
// order (and therefore the serialized byte stream) is a function of the
// machine's shape alone, never of host iteration order or thread count,
// so two captures of bit-identical machine states produce bit-identical
// snapshots.
//
// Captures are only meaningful at an epoch boundary: that is the one
// instant where every domain agrees on the time, the parallel scheduler's
// staged mailbox posts have been merged, and run_epochs_until() stops at
// identical boundaries for every threads= value. run_to_tick() drives the
// machine to the first boundary at or after a target tick.
#pragma once

#include <string>

#include "ckpt/snapshot.hpp"
#include "sim/types.hpp"

namespace sv::app {
class World;
}  // namespace sv::app

namespace sv::sys {
class Machine;
}  // namespace sv::sys

namespace sv::ckpt {

/// Capture the machine's architectural state into a Snapshot carrying
/// `config` (the text needed to rebuild the run) and the machine's current
/// time. `world` adds the app-runtime chunk when the workload runs one.
/// Call only while no domain is executing (sequentially, or at an epoch
/// boundary) — the same rule as every aggregated stats view.
[[nodiscard]] Snapshot capture(sys::Machine& machine, std::string config,
                               const app::World* world = nullptr);

/// Drive the machine in whole epochs until now() >= target (or `deadline`
/// passes, or everything idles). Returns the boundary tick reached —
/// identical for every threads= value, and >= target on success.
sim::Tick run_to_tick(sys::Machine& machine, sim::Tick target,
                      sim::Tick deadline);

}  // namespace sv::ckpt

// Canonical encodings for the stats primitives (sim/stats.hpp) and RNG
// streams, shared by every component's ckpt_save(). Free functions rather
// than methods so the stats classes stay serialization-agnostic.
#pragma once

#include "ckpt/io.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"

namespace sv::ckpt {

inline void save(Writer& w, const sim::Counter& c) { w.u64(c.value()); }

inline void save(Writer& w, const sim::Accumulator& a) {
  w.u64(a.count());
  w.f64(a.sum());
  w.f64(a.min());
  w.f64(a.max());
}

inline void save(Writer& w, const sim::Histogram& h) {
  w.u64(h.count());
  w.f64(h.mean());
  w.u64(h.count() ? h.min() : 0);
  w.u64(h.count() ? h.max() : 0);
  w.u64(h.buckets().size());
  for (const std::uint64_t b : h.buckets()) {
    w.u64(b);
  }
}

inline void save(Writer& w, const sim::BusyTracker& b) { w.u64(b.busy()); }

/// Raw xoshiro words: the strongest possible cursor — a single extra or
/// missing draw anywhere in the replay flips all four.
inline void save(Writer& w, const sim::Rng& r) {
  const sim::Rng::State st = r.state();
  for (const std::uint64_t s : st.s) {
    w.u64(s);
  }
}

/// std::map iterates in key order, so the registry dump is canonical.
inline void save(Writer& w, const sim::StatRegistry& reg) {
  w.u64(reg.all().size());
  for (const auto& [name, value] : reg.all()) {
    w.str(name);
    w.f64(value);
  }
}

}  // namespace sv::ckpt

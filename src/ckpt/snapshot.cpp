#include "ckpt/snapshot.hpp"

#include <cstdio>
#include <fstream>

#include "sim/crc32.hpp"

namespace sv::ckpt {

const std::vector<std::byte>* Snapshot::find(const std::string& name) const {
  for (const auto& [n, bytes] : chunks_) {
    if (n == name) {
      return &bytes;
    }
  }
  return nullptr;
}

std::vector<std::byte> Snapshot::serialize() const {
  Writer payload;
  payload.str(config);
  payload.u64(tick);
  payload.u64(chunks_.size());
  for (const auto& [name, bytes] : chunks_) {
    payload.str(name);
    payload.bytes(bytes);
  }
  Writer out;
  out.u32(kMagic);
  out.u32(kVersion);
  std::vector<std::byte> data = out.data();
  data.insert(data.end(), payload.data().begin(), payload.data().end());
  const std::uint32_t crc = sim::crc32(payload.data());
  for (std::size_t i = 0; i < 4; ++i) {
    data.push_back(static_cast<std::byte>((crc >> (8 * i)) & 0xFF));
  }
  return data;
}

Snapshot Snapshot::parse(std::span<const std::byte> data) {
  Reader hdr(data);
  if (hdr.u32() != kMagic) {
    throw Error("snapshot rejected: bad magic (not an SVCK snapshot file)");
  }
  const std::uint32_t version = hdr.u32();
  if (version != kVersion) {
    throw Error("snapshot rejected: version " + std::to_string(version) +
                " (this build reads version " + std::to_string(kVersion) +
                ")");
  }
  if (hdr.remaining() < 4) {
    throw Error("snapshot truncated: missing CRC trailer");
  }
  const std::span<const std::byte> payload =
      data.subspan(8, data.size() - 12);
  std::uint32_t stored = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    stored |= static_cast<std::uint32_t>(
                  static_cast<std::uint8_t>(data[data.size() - 4 + i]))
              << (8 * i);
  }
  const std::uint32_t computed = sim::crc32(payload);
  if (stored != computed) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "stored %08x, computed %08x", stored,
                  computed);
    throw Error(std::string("snapshot rejected: payload CRC mismatch (") +
                buf + ")");
  }
  Snapshot s;
  Reader r(payload);
  s.config = r.str();
  s.tick = r.u64();
  const std::uint64_t count = r.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string name = r.str();
    s.chunks_.emplace_back(std::move(name), r.bytes());
  }
  if (!r.done()) {
    throw Error("snapshot corrupt: " + std::to_string(r.remaining()) +
                " trailing bytes after last chunk");
  }
  return s;
}

std::uint64_t Snapshot::state_hash() const {
  std::uint32_t crc = 0;
  for (const auto& [name, bytes] : chunks_) {
    crc = sim::crc32(std::as_bytes(std::span(name.data(), name.size())), crc);
    crc = sim::crc32(bytes, crc);
  }
  return crc;
}

void Snapshot::verify(const Snapshot& expected, const Snapshot& actual) {
  if (expected.tick != actual.tick) {
    throw Error("restore diverged: snapshot tick " +
                std::to_string(expected.tick) + " vs replayed tick " +
                std::to_string(actual.tick));
  }
  if (expected.config != actual.config) {
    throw Error("restore diverged: configuration text differs");
  }
  const std::size_t n =
      std::min(expected.chunks_.size(), actual.chunks_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto& [en, eb] = expected.chunks_[i];
    const auto& [an, ab] = actual.chunks_[i];
    if (en != an) {
      throw Error("restore diverged: chunk " + std::to_string(i) +
                  " named '" + en + "' in snapshot but '" + an +
                  "' after replay");
    }
    const std::size_t m = std::min(eb.size(), ab.size());
    for (std::size_t off = 0; off < m; ++off) {
      if (eb[off] != ab[off]) {
        throw Error("restore diverged: chunk '" + en + "' byte " +
                    std::to_string(off) + ": snapshot " +
                    std::to_string(static_cast<unsigned>(eb[off])) +
                    " vs replay " +
                    std::to_string(static_cast<unsigned>(ab[off])));
      }
    }
    if (eb.size() != ab.size()) {
      throw Error("restore diverged: chunk '" + en + "' is " +
                  std::to_string(eb.size()) + " bytes in snapshot, " +
                  std::to_string(ab.size()) + " after replay");
    }
  }
  if (expected.chunks_.size() != actual.chunks_.size()) {
    throw Error("restore diverged: snapshot has " +
                std::to_string(expected.chunks_.size()) + " chunks, replay " +
                std::to_string(actual.chunks_.size()));
  }
}

void Snapshot::save_file(const std::string& path) const {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    throw Error("cannot open snapshot file for writing: " + path);
  }
  const std::vector<std::byte> data = serialize();
  f.write(reinterpret_cast<const char*>(data.data()),
          static_cast<std::streamsize>(data.size()));
  if (!f) {
    throw Error("short write to snapshot file: " + path);
  }
}

Snapshot Snapshot::load_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    throw Error("cannot open snapshot file: " + path);
  }
  std::vector<char> raw((std::istreambuf_iterator<char>(f)),
                        std::istreambuf_iterator<char>());
  return parse(std::as_bytes(std::span(raw.data(), raw.size())));
}

}  // namespace sv::ckpt

#include "ckpt/capture.hpp"

#include <cstdio>

#include "app/runtime.hpp"
#include "ckpt/io.hpp"
#include "sys/machine.hpp"

namespace sv::ckpt {

namespace {

/// "n3.cache" etc. — chunk names are part of the on-disk format, keep
/// them short and stable.
std::string node_chunk(sim::NodeId i, const char* what) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "n%u.%s", static_cast<unsigned>(i), what);
  return buf;
}

template <typename T>
void add(Snapshot& snap, std::string name, const T& component) {
  Writer w;
  component.ckpt_save(w);
  snap.add_chunk(std::move(name), w);
}

}  // namespace

Snapshot capture(sys::Machine& machine, std::string config,
                 const app::World* world) {
  Snapshot snap;
  snap.config = std::move(config);
  snap.tick = machine.now();

  // Event domains. Sequential machines have one ("k0"); partitioned
  // machines one per node — same boundary, same per-domain queues, so the
  // chunk set is identical for threads {1, 2, 4}.
  const std::size_t ndomains =
      machine.partitioned() ? machine.size() : std::size_t{1};
  for (std::size_t d = 0; d < ndomains; ++d) {
    add(snap, node_chunk(static_cast<sim::NodeId>(d), "kernel"),
        machine.domain(static_cast<sim::NodeId>(d)));
  }

  if (const fault::Injector* inj = machine.fault_injector()) {
    add(snap, "fault", *inj);
  }
  add(snap, "net", machine.network());

  for (sim::NodeId i = 0; i < static_cast<sim::NodeId>(machine.size());
       ++i) {
    sys::Node& node = machine.node(i);
    add(snap, node_chunk(i, "bus"), node.bus());
    add(snap, node_chunk(i, "dram"), node.dram());
    add(snap, node_chunk(i, "cache"), node.cache());
    add(snap, node_chunk(i, "ap"), node.ap());
    add(snap, node_chunk(i, "sp"), node.sp());
    add(snap, node_chunk(i, "ctrl"), node.niu().ctrl());
    add(snap, node_chunk(i, "asram"), node.niu().asram());
    add(snap, node_chunk(i, "ssram"), node.niu().ssram());
    add(snap, node_chunk(i, "cls"), node.niu().cls());
    if (const fw::DmaEngine* e = node.dma()) {
      add(snap, node_chunk(i, "fw.dma"), *e);
    }
    if (const fw::NumaEngine* e = node.numa()) {
      add(snap, node_chunk(i, "fw.numa"), *e);
    }
    if (const fw::ScomaEngine* e = node.scoma()) {
      add(snap, node_chunk(i, "fw.scoma"), *e);
    }
    if (const fw::MissService* e = node.miss_service()) {
      add(snap, node_chunk(i, "fw.miss"), *e);
    }
    if (const fw::ChunkOpener* e = node.chunk_opener()) {
      add(snap, node_chunk(i, "fw.chunk"), *e);
    }
  }

  if (world != nullptr) {
    add(snap, "app", *world);
  }
  return snap;
}

sim::Tick run_to_tick(sys::Machine& machine, sim::Tick target,
                      sim::Tick deadline) {
  machine.run_epochs_until([&] { return machine.now() >= target; }, deadline);
  return machine.now();
}

}  // namespace sv::ckpt

#include "ckpt/explore.hpp"

#include <map>
#include <utility>

namespace sv::ckpt {

namespace {

/// Iterative-deepening DFS over ordered drop patterns. Scenario results
/// are cached by pattern, so a prefix evaluated as a round-j leaf costs
/// nothing when round k > j revisits it as an interior node.
class Search {
 public:
  Search(const ScenarioFn& run, const ExploreParams& params)
      : run_(run), params_(params) {}

  ExploreResult go() {
    std::vector<std::uint64_t> pattern;
    const ScenarioResult* base = eval(pattern);
    if (base == nullptr) {
      return std::move(result_);  // max_runs == 0
    }
    if (base->violation) {
      result_.found = true;
      result_.baseline_violation = true;
      result_.detail = base->detail;
      return std::move(result_);
    }
    for (std::uint32_t depth = 1; depth <= params_.max_drops; ++depth) {
      if (extend(pattern, *base, depth) || !budget_ok_) {
        break;
      }
    }
    result_.exhausted = !result_.found && budget_ok_;
    return std::move(result_);
  }

 private:
  /// Run (or recall) the scenario for `pattern`. Null when out of budget.
  const ScenarioResult* eval(const std::vector<std::uint64_t>& pattern) {
    auto it = cache_.find(pattern);
    if (it != cache_.end()) {
      return &it->second;
    }
    if (result_.runs >= params_.max_runs) {
      budget_ok_ = false;
      return nullptr;
    }
    ++result_.runs;
    return &cache_.emplace(pattern, run_(pattern)).first->second;
  }

  /// Append up to `remaining` further drops to `pattern` (whose own run
  /// produced `r`). True when a violation was found and recorded.
  bool extend(std::vector<std::uint64_t>& pattern, const ScenarioResult& r,
              std::uint32_t remaining) {
    if (remaining == 0) {
      return false;
    }
    std::uint64_t horizon = r.opportunities;
    if (params_.max_opportunities != 0 &&
        horizon > params_.max_opportunities) {
      horizon = params_.max_opportunities;
    }
    const std::uint64_t first = pattern.empty() ? 0 : pattern.back() + 1;
    if (first >= horizon) {
      ++result_.pruned_horizon;
      return false;
    }
    if (r.state_hash != 0) {
      // Same machine state + same candidate index range => same subtree.
      std::uint32_t& explored = seen_[{r.state_hash, first}];
      if (explored >= remaining) {
        ++result_.pruned_dedup;
        return false;
      }
      explored = remaining;
    }
    for (std::uint64_t i = first; i < horizon; ++i) {
      pattern.push_back(i);
      const ScenarioResult* next = eval(pattern);
      if (next == nullptr) {
        pattern.pop_back();
        return false;
      }
      if (next->violation) {
        result_.found = true;
        result_.minimal = pattern;
        result_.detail = next->detail;
        pattern.pop_back();
        return true;
      }
      const bool hit = extend(pattern, *next, remaining - 1);
      pattern.pop_back();
      if (hit) {
        return true;
      }
      if (!budget_ok_) {
        return false;
      }
    }
    return false;
  }

  const ScenarioFn& run_;
  const ExploreParams& params_;
  ExploreResult result_;
  std::map<std::vector<std::uint64_t>, ScenarioResult> cache_;
  /// (state hash, first candidate index) -> deepest `remaining` explored.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint32_t> seen_;
  bool budget_ok_ = true;
};

}  // namespace

ExploreResult explore(const ScenarioFn& run, const ExploreParams& params) {
  return Search(run, params).go();
}

}  // namespace sv::ckpt

// The Checkpointable interface (DESIGN.md §14).
//
// A component that carries architectural state implements ckpt_save() to
// append that state to a Writer in the canonical encoding (ckpt/io.hpp).
// Snapshot capture walks the machine and records one named chunk per
// component; restore replays the simulation to the snapshot tick and then
// re-captures, byte-comparing every chunk — so ckpt_save() doubles as the
// component's bit-identity oracle. Two consequences for implementers:
//
//   - ckpt_save() must be a pure read of simulation state: no RNG draws,
//     no host-dependent values (pointers, host time, iteration order of
//     unordered containers), no simulated side effects.
//   - Bulk payload state (DRAM pages, SRAM banks, cache data arrays) may
//     be captured as a CRC-32 digest instead of raw bytes; control state
//     (sequence numbers, window contents, queue cursors, RNG streams) is
//     captured raw. Either way a single diverging bit fails verification.
#pragma once

#include <string>

#include "ckpt/io.hpp"

namespace sv::ckpt {

class Checkpointable {
 public:
  virtual ~Checkpointable() = default;

  /// Stable chunk name, unique within one machine ("n3.bus", "fault", ...).
  [[nodiscard]] virtual std::string ckpt_name() const = 0;

  /// Append this component's architectural state to `w`.
  virtual void ckpt_save(Writer& w) const = 0;
};

}  // namespace sv::ckpt

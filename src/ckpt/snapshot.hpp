// The versioned machine-snapshot container (DESIGN.md §14).
//
// A Snapshot is a bag of named chunks — one per component, produced by its
// ckpt_save() — plus the capture tick and the complete configuration text
// needed to rebuild the run. Events in this simulator are arbitrary
// closures and cannot be serialized, so restore works by deterministic
// re-execution: rebuild the machine from the embedded config, replay to
// the capture tick, re-capture, and byte-compare every chunk against the
// file. A snapshot is therefore simultaneously a resume point and a
// machine-checked bit-identity oracle over the whole architectural state.
//
// On-disk layout (all integers little-endian):
//   magic   u32  'SVCK'
//   version u32  kVersion
//   payload:
//     config str   (key=value lines, or a caller-defined spec string)
//     tick   u64   (capture time; an epoch boundary)
//     count  u64
//     count x { name str, chunk bytes }
//   crc     u32  CRC-32 of the payload
// Any structural problem — bad magic, unknown version, CRC mismatch,
// truncation — raises ckpt::Error; a Reader bounds-checks every access so
// corrupt input is rejected, never undefined behaviour.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/io.hpp"

namespace sv::ckpt {

class Snapshot {
 public:
  static constexpr std::uint32_t kMagic = 0x4B435653;  // "SVCK" little-endian
  static constexpr std::uint32_t kVersion = 1;

  std::string config;  // full run configuration, caller-defined text
  std::uint64_t tick = 0;

  /// Add one component chunk. Names must be unique and appended in a
  /// canonical order (the capture walk's machine order).
  void add_chunk(std::string name, const Writer& w) {
    chunks_.emplace_back(std::move(name), w.data());
  }

  [[nodiscard]] const std::vector<
      std::pair<std::string, std::vector<std::byte>>>&
  chunks() const {
    return chunks_;
  }

  [[nodiscard]] const std::vector<std::byte>* find(
      const std::string& name) const;

  /// Serialize to the on-disk byte layout (header + payload + CRC).
  [[nodiscard]] std::vector<std::byte> serialize() const;

  /// Parse serialized bytes; throws ckpt::Error on any structural problem.
  static Snapshot parse(std::span<const std::byte> data);

  /// CRC-32 over the chunk payloads (names included). This is the state
  /// hash the scenario explorer prunes on: equal hashes mean the two
  /// machine states are observationally identical, because the chunks
  /// cover cumulative counters and RNG cursors, not just live state.
  [[nodiscard]] std::uint64_t state_hash() const;

  /// Byte-compare every chunk of `expected` (the file) against `actual`
  /// (the re-captured state after replay). Throws ckpt::Error naming the
  /// first diverging chunk and byte offset, or the first missing/extra
  /// chunk. Config and tick must match too.
  static void verify(const Snapshot& expected, const Snapshot& actual);

  void save_file(const std::string& path) const;
  static Snapshot load_file(const std::string& path);

 private:
  std::vector<std::pair<std::string, std::vector<std::byte>>> chunks_;
};

}  // namespace sv::ckpt

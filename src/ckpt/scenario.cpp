#include "ckpt/scenario.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <utility>

#include "ckpt/capture.hpp"
#include "msg/reliable.hpp"
#include "sim/config.hpp"
#include "sys/experiment.hpp"
#include "sys/machine.hpp"

namespace sv::ckpt {

namespace {

constexpr char kScenarioTag[] = "reliable_ring";

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      nl = text.size();
    }
    if (nl > pos) {
      lines.push_back(text.substr(pos, nl - pos));
    }
    pos = nl + 1;
  }
  return lines;
}

sim::Config parse_config(const std::string& text) {
  try {
    return sim::Config::from_args(split_lines(text));
  } catch (const std::exception& e) {
    throw Error(std::string("bad scenario config: ") + e.what());
  }
}

/// The deterministic payload node `src` sends as its i-th message.
std::vector<std::byte> ring_payload(sim::NodeId src, std::uint64_t i,
                                    std::uint64_t bytes) {
  std::vector<std::byte> p(bytes);
  for (std::size_t b = 0; b < p.size(); ++b) {
    p[b] = static_cast<std::byte>(src + i + b);
  }
  return p;
}

/// One ring machine plus its channels and completion/verdict flags.
struct RingRun {
  sys::Machine machine;
  std::vector<std::unique_ptr<msg::Endpoint>> eps;
  std::vector<std::unique_ptr<msg::ReliableChannel>> chans;
  std::vector<std::uint8_t> done;
  std::vector<std::uint8_t> gave_up;
  std::string mismatch;  // first content violation seen, machine-wide

  RingRun(const RingSpec& spec, std::vector<std::uint64_t> script)
      : machine(machine_params(spec, std::move(script))),
        done(spec.nodes, 0),
        gave_up(spec.nodes, 0) {
    const auto map = machine.addr_map();
    msg::ReliableChannel::Params cp;
    cp.window = spec.window;
    cp.retransmit.base_timeout = spec.timeout_us * sim::kMicrosecond;
    cp.retransmit.give_up_after = static_cast<unsigned>(spec.give_up);
    for (sim::NodeId n = 0; n < machine.size(); ++n) {
      eps.push_back(std::make_unique<msg::Endpoint>(
          machine.node(n).ap(), machine.node(n).endpoint_config()));
      chans.push_back(
          std::make_unique<msg::ReliableChannel>(*eps[n], map, n, cp));
      chans[n]->set_give_up(
          [this, n](sim::NodeId) { gave_up[n] = 1; });
      chans[n]->start();
    }
    for (sim::NodeId n = 0; n < machine.size(); ++n) {
      machine.node(n).ap().run(node_program(n, spec));
    }
  }

  [[nodiscard]] bool all_done() const {
    for (const auto f : done) {
      if (f == 0) {
        return false;
      }
    }
    return true;
  }

  [[nodiscard]] bool any_gave_up() const {
    for (const auto f : gave_up) {
      if (f != 0) {
        return true;
      }
    }
    return false;
  }

 private:
  static sys::Machine::Params machine_params(
      const RingSpec& spec, std::vector<std::uint64_t> script) {
    sys::Machine::Params mp;
    mp.nodes = spec.nodes;
    mp.net = sys::Machine::NetKind::kIdeal;
    mp.fault.seed = spec.fault_seed;
    // Scripted mode (single event domain): even an empty script keeps the
    // injector alive so drop opportunities are counted.
    mp.fault.scripted = true;
    std::sort(script.begin(), script.end());
    mp.fault.drop_script = std::move(script);
    return mp;
  }

  // `spec` by value: the coroutine frame outlives the constructor call
  // that spawns it.
  sim::Co<void> node_program(sim::NodeId self, RingSpec spec) {
    const auto nodes = machine.size();
    const auto right = static_cast<sim::NodeId>((self + 1) % nodes);
    const auto left =
        static_cast<sim::NodeId>((self + nodes - 1) % nodes);
    msg::ReliableChannel& ch = *chans[self];
    for (std::uint64_t i = 0; i < spec.count; ++i) {
      co_await ch.send(right, ring_payload(self, i, spec.bytes));
    }
    for (std::uint64_t i = 0; i < spec.count; ++i) {
      const std::vector<std::byte> got = co_await ch.recv(left);
      const std::vector<std::byte> want =
          ring_payload(left, i, spec.bytes);
      if (got != want && mismatch.empty()) {
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "node %u message %llu from node %u: payload "
                      "mismatch (%zu bytes)",
                      self, static_cast<unsigned long long>(i), left,
                      got.size());
        mismatch = buf;
      }
    }
    done[self] = 1;
  }
};

}  // namespace

std::string RingSpec::to_config() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "scenario=%s\nnodes=%llu\ncount=%llu\nbytes=%llu\n"
                "window=%llu\ntimeout_us=%llu\ngive_up=%llu\n"
                "deadline_ms=%llu\nfault_seed=%llu\n",
                kScenarioTag, static_cast<unsigned long long>(nodes),
                static_cast<unsigned long long>(count),
                static_cast<unsigned long long>(bytes),
                static_cast<unsigned long long>(window),
                static_cast<unsigned long long>(timeout_us),
                static_cast<unsigned long long>(give_up),
                static_cast<unsigned long long>(deadline_ms),
                static_cast<unsigned long long>(fault_seed));
  return buf;
}

RingSpec RingSpec::from_config(const std::string& text) {
  const sim::Config cfg = parse_config(text);
  if (cfg.get_string("scenario") != kScenarioTag) {
    throw Error("snapshot is not a reliable_ring scenario (scenario=" +
                cfg.get_string("scenario", "<missing>") + ")");
  }
  RingSpec spec;
  spec.nodes = cfg.get_u64("nodes", spec.nodes);
  spec.count = cfg.get_u64("count", spec.count);
  spec.bytes = cfg.get_u64("bytes", spec.bytes);
  spec.window = cfg.get_u64("window", spec.window);
  spec.timeout_us = cfg.get_u64("timeout_us", spec.timeout_us);
  spec.give_up = cfg.get_u64("give_up", spec.give_up);
  spec.deadline_ms = cfg.get_u64("deadline_ms", spec.deadline_ms);
  spec.fault_seed = cfg.get_u64("fault_seed", spec.fault_seed);
  return spec;
}

ScenarioResult run_reliable_ring(const RingSpec& spec,
                                 const std::vector<std::uint64_t>& drops,
                                 const Snapshot* resume) {
  RingSpec eff = spec;
  std::uint64_t base = 0;
  if (resume != nullptr) {
    eff = RingSpec::from_config(resume->config);
    base = parse_config(resume->config).get_u64("base_opp", 0);
  }
  std::vector<std::uint64_t> script;
  script.reserve(drops.size());
  for (const std::uint64_t d : drops) {
    script.push_back(base + d);
  }
  RingRun run(eff, std::move(script));
  const sim::Tick deadline = eff.deadline_ms * sim::kMillisecond;

  if (resume != nullptr) {
    // Every scripted drop lands at/after the checkpoint's opportunity
    // base, so the replay prefix must reproduce the fault-free capture
    // bit-for-bit; verify() throws otherwise.
    run_to_tick(run.machine, resume->tick, deadline);
    Snapshot::verify(*resume, capture(run.machine, resume->config));
  }

  const bool completed = sys::run_until(
      run.machine, [&] { return run.all_done(); }, deadline);

  ScenarioResult r;
  r.opportunities =
      run.machine.fault_injector()->drop_opportunities() - base;
  r.state_hash = capture(run.machine, "").state_hash();
  if (!run.mismatch.empty()) {
    r.violation = true;
    r.detail = run.mismatch;
  } else if (!completed && !run.any_gave_up()) {
    r.violation = true;
    r.detail = "stuck: ring never completed and no channel gave up";
  }
  return r;
}

Snapshot checkpoint_reliable_ring(const RingSpec& spec, sim::Tick at) {
  RingRun run(spec, {});
  const sim::Tick deadline = spec.deadline_ms * sim::kMillisecond;
  run_to_tick(run.machine, at, deadline);
  std::string config = spec.to_config();
  config += "base_opp=" +
            std::to_string(
                run.machine.fault_injector()->drop_opportunities()) +
            "\n";
  return capture(run.machine, std::move(config));
}

ScenarioFn reliable_ring_scenario(RingSpec spec, const Snapshot* resume) {
  return [spec, resume](const std::vector<std::uint64_t>& drops) {
    return run_reliable_ring(spec, drops, resume);
  };
}

}  // namespace sv::ckpt

// The full StarT-Voyager machine: N nodes on the Arctic fat tree (or an
// ideal network for unit tests / ablation).
#pragma once

#include <memory>
#include <vector>

#include "fault/fault.hpp"
#include "net/fat_tree.hpp"
#include "net/network.hpp"
#include "sys/node.hpp"
#include "trace/trace.hpp"

namespace sv::sys {

class Machine {
 public:
  enum class NetKind { kFatTree, kIdeal };

  struct Params {
    std::size_t nodes = 2;
    NetKind net = NetKind::kFatTree;
    unsigned radix = 4;
    net::Link::Params link;
    sim::Tick ideal_latency = 500 * sim::kNanosecond;
    Node::Params node;  // template applied to every node
    /// Fault-injection plan. Default-constructed => no injector is ever
    /// created, so a fault-free machine is bit-identical to one built
    /// before the fault subsystem existed.
    fault::Plan fault;
  };

  explicit Machine(Params params);

  [[nodiscard]] sim::Kernel& kernel() { return kernel_; }
  [[nodiscard]] net::Network& network() { return *network_; }
  [[nodiscard]] Node& node(sim::NodeId i) { return *nodes_.at(i); }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] msg::AddressMap addr_map() const {
    return msg::AddressMap{nodes_.size()};
  }
  [[nodiscard]] const Params& params() const { return params_; }

  /// Attach a tracer to the kernel and enable it. All instrumented units
  /// start recording from the current simulation time. Idempotent.
  trace::Tracer& enable_tracing(
      std::size_t capacity = trace::Tracer::kDefaultCapacity);

  /// The attached tracer, or nullptr if enable_tracing was never called.
  [[nodiscard]] trace::Tracer* tracer() { return tracer_.get(); }

  /// The fault injector, or nullptr when Params::fault injects nothing.
  [[nodiscard]] fault::Injector* fault_injector() { return fault_.get(); }

 private:
  Params params_;
  sim::Kernel kernel_;
  std::unique_ptr<net::Network> network_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unique_ptr<trace::Tracer> tracer_;
  std::unique_ptr<fault::Injector> fault_;
};

}  // namespace sv::sys

// The full StarT-Voyager machine: N nodes on the Arctic fat tree (or an
// ideal network for unit tests / ablation).
//
// With Params::threads == 0 the whole machine lives in one event domain
// (one sim::Kernel) and runs sequentially. With threads > 0 the machine is
// partitioned into one domain per node (aP + bus + caches + NIU + sP)
// scheduled by sim::ParallelKernel, with the network's fixed latency as the
// conservative lookahead. Both layouts route cross-node deliveries through
// the same deterministic kernel mailbox, so a partitioned run is
// bit-identical to the sequential one — same stats, same traces, same
// fault schedule. Partitioning requires NetKind::kIdeal: the fat tree
// models shared routers, which have no home domain.
#pragma once

#include <memory>
#include <vector>

#include "fault/fault.hpp"
#include "net/fat_tree.hpp"
#include "net/network.hpp"
#include "sim/parallel.hpp"
#include "sys/node.hpp"
#include "trace/trace.hpp"

namespace sv::sys {

class Machine {
 public:
  enum class NetKind { kFatTree, kIdeal };

  struct Params {
    std::size_t nodes = 2;
    NetKind net = NetKind::kFatTree;
    unsigned radix = 4;
    net::Link::Params link;
    sim::Tick ideal_latency = 500 * sim::kNanosecond;
    Node::Params node;  // template applied to every node
    /// Fault-injection plan. Default-constructed => no injector is ever
    /// created, so a fault-free machine is bit-identical to one built
    /// before the fault subsystem existed.
    fault::Plan fault;
    /// Worker threads for partitioned execution; 0 = classic sequential
    /// single-domain machine. Any value > 0 partitions into one domain per
    /// node (requires NetKind::kIdeal) and gives identical results for
    /// every thread count.
    unsigned threads = 0;
  };

  explicit Machine(Params params);

  /// The first (and, unpartitioned, only) event domain. Prefer now() /
  /// events_executed() / run_epochs_until() for anything that must hold
  /// machine-wide.
  [[nodiscard]] sim::Kernel& kernel() { return *domains_.front(); }
  /// Domain that simulates node i.
  [[nodiscard]] sim::Kernel& domain(sim::NodeId i) {
    return partitioned() ? *domains_[i] : *domains_.front();
  }
  [[nodiscard]] bool partitioned() const { return domains_.size() > 1; }

  [[nodiscard]] net::Network& network() { return *network_; }
  [[nodiscard]] Node& node(sim::NodeId i) { return *nodes_.at(i); }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] msg::AddressMap addr_map() const {
    return msg::AddressMap{nodes_.size()};
  }
  [[nodiscard]] const Params& params() const { return params_; }

  /// Machine-wide simulated time: the last epoch boundary when driven by
  /// run_epochs_until, or the single kernel's clock otherwise.
  [[nodiscard]] sim::Tick now() { return sched_ ? sched_->now() : kernel().now(); }
  /// Events executed across all domains (summed in domain order).
  [[nodiscard]] std::uint64_t events_executed() const;

  /// Sequence numbers issued across all domains. Unlike events_executed(),
  /// this is invariant across fast-path/slow-path runs (the fast paths
  /// reserve the keys of the events they bypass), so it is the count the
  /// stats dump reports.
  [[nodiscard]] std::uint64_t events_scheduled() const;

  /// Epoch length: the minimum latency of any domain-crossing path. For
  /// the ideal network this is its fixed latency; the (never-partitioned)
  /// fat tree uses a 1 us scheduling quantum.
  [[nodiscard]] sim::Tick lookahead() const;

  /// Drive the machine in whole epochs of lookahead() ticks until `pred`
  /// holds at an epoch boundary, everything is idle, or the next epoch
  /// would start past `deadline`. Returns the final value of `pred`.
  /// Sequential and partitioned machines stop at identical boundaries —
  /// use this (not kernel().run_until) wherever results are compared
  /// across thread counts.
  bool run_epochs_until(const std::function<bool()>& pred,
                        sim::Tick deadline);

  /// Attach one tracer per event domain and enable them. All instrumented
  /// units start recording from the current simulation time. Idempotent.
  /// Returns the first domain's tracer; use tracers() for the full set
  /// (trace::merge_traces recombines them deterministically).
  trace::Tracer& enable_tracing(
      std::size_t capacity = trace::Tracer::kDefaultCapacity);

  /// The first domain's tracer, or nullptr if enable_tracing was never
  /// called. Unpartitioned this is the whole machine's trace.
  [[nodiscard]] trace::Tracer* tracer() {
    return tracers_.empty() ? nullptr : tracers_.front().get();
  }
  /// All per-domain tracers, in domain order (empty before enable_tracing).
  [[nodiscard]] std::vector<const trace::Tracer*> tracers() const;

  /// The fault injector, or nullptr when Params::fault injects nothing.
  [[nodiscard]] fault::Injector* fault_injector() { return fault_.get(); }

 private:
  [[nodiscard]] sim::Kernel& domain_for_node(sim::NodeId i) {
    return domains_.size() > 1 ? *domains_[i] : *domains_.front();
  }

  Params params_;
  // Kernels are declared first so every object holding a Kernel& is
  // destroyed before its domain; sched_ last so worker threads join first.
  std::vector<std::unique_ptr<sim::Kernel>> domains_;
  std::unique_ptr<fault::Injector> fault_;
  std::vector<std::unique_ptr<trace::Tracer>> tracers_;
  std::unique_ptr<net::Network> network_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unique_ptr<sim::ParallelKernel> sched_;
  sim::Tick epoch_start_ = 0;  // sequential epoch runner's cursor
};

}  // namespace sv::sys

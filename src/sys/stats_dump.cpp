#include "sys/stats_dump.hpp"

#include <string>

namespace sv::sys {

sim::StatRegistry collect_stats(Machine& machine) {
  sim::StatRegistry reg;
  const double now = static_cast<double>(machine.now());

  reg.set("sim.now_us", now / 1e6);
  // Scheduled (= sequence numbers issued), not executed: fast paths bypass
  // events but reserve their keys, so this count is byte-identical across
  // fast and slow runs where the executed count is not.
  reg.set("sim.events", static_cast<double>(machine.events_scheduled()));
  reg.set("net.packets_delivered",
          static_cast<double>(machine.network().packets_delivered()));
  reg.set("net.mean_transit_us",
          machine.network().transit_ps().mean() / 1e6);
  const auto audit = machine.network().audit();
  reg.set("net.packets_injected", static_cast<double>(audit.injected));
  reg.set("net.packets_dropped", static_cast<double>(audit.dropped));

  if (auto* inj = machine.fault_injector()) {
    const auto& fs = inj->stats();
    reg.set("fault.drops", static_cast<double>(fs.drops.value()));
    reg.set("fault.corrupts", static_cast<double>(fs.corrupts.value()));
    reg.set("fault.link_downs", static_cast<double>(fs.link_downs.value()));
    reg.set("fault.router_stalls",
            static_cast<double>(fs.router_stalls.value()));
    reg.set("fault.starvations",
            static_cast<double>(fs.starvations.value()));
    reg.set("fault.rx_overflows",
            static_cast<double>(fs.rx_overflows.value()));
  }

  for (sim::NodeId i = 0; i < machine.size(); ++i) {
    Node& node = machine.node(i);
    const std::string p = "n" + std::to_string(i) + ".";
    // Per-node stats go through a shard: append-only, merged canonically
    // at dump. At 1024 nodes this is ~40k names that skip the sorted-map
    // insert walk (see StatRegistry).
    sim::StatRegistry::Shard& sh = reg.open_shard();

    const auto& bus = node.bus().stats();
    sh.set(p + "bus.transactions",
            static_cast<double>(bus.transactions.value()));
    sh.set(p + "bus.retries", static_cast<double>(bus.retries.value()));
    sh.set(p + "bus.interventions",
            static_cast<double>(bus.interventions.value()));
    sh.set(p + "bus.data_occupancy",
            bus.data_busy.occupancy(machine.now()));

    const auto& cache = node.cache().stats();
    sh.set(p + "cache.read_hits",
            static_cast<double>(cache.read_hits.value()));
    sh.set(p + "cache.read_misses",
            static_cast<double>(cache.read_misses.value()));
    sh.set(p + "cache.write_hits",
            static_cast<double>(cache.write_hits.value()));
    sh.set(p + "cache.write_misses",
            static_cast<double>(cache.write_misses.value()));
    sh.set(p + "cache.writebacks",
            static_cast<double>(cache.writebacks.value()));
    sh.set(p + "cache.snoop_invalidates",
            static_cast<double>(cache.snoop_invalidates.value()));

    const auto& ctrl = node.niu().ctrl().stats();
    sh.set(p + "ctrl.msgs_launched",
            static_cast<double>(ctrl.msgs_launched.value()));
    sh.set(p + "ctrl.msgs_received",
            static_cast<double>(ctrl.msgs_received.value()));
    sh.set(p + "ctrl.express_pushed",
            static_cast<double>(ctrl.express_pushed.value()));
    sh.set(p + "ctrl.rx_hits", static_cast<double>(ctrl.rx_hits.value()));
    sh.set(p + "ctrl.rx_misses",
            static_cast<double>(ctrl.rx_misses.value()));
    sh.set(p + "ctrl.rx_dropped",
            static_cast<double>(ctrl.rx_dropped.value()));
    sh.set(p + "ctrl.cmds_local",
            static_cast<double>(ctrl.cmds_local.value()));
    sh.set(p + "ctrl.cmds_remote",
            static_cast<double>(ctrl.cmds_remote.value()));
    sh.set(p + "ctrl.cmds_immediate",
            static_cast<double>(ctrl.cmds_immediate.value()));
    sh.set(p + "ctrl.protection_violations",
            static_cast<double>(ctrl.protection_violations.value()));
    sh.set(p + "ctrl.block_ops",
            static_cast<double>(ctrl.block_reads.value() +
                                ctrl.block_txs.value() +
                                ctrl.block_xfers.value()));
    sh.set(p + "ctrl.ibus_occupancy",
            ctrl.ibus_busy.occupancy(machine.now()));

    const auto& abiu = node.niu().abiu().stats();
    sh.set(p + "abiu.express_stores",
            static_cast<double>(abiu.express_stores.value()));
    sh.set(p + "abiu.pointer_updates",
            static_cast<double>(abiu.pointer_updates.value()));
    sh.set(p + "abiu.numa_forwards",
            static_cast<double>(abiu.numa_forwards.value()));
    sh.set(p + "abiu.scoma_checks",
            static_cast<double>(abiu.scoma_checks.value()));
    sh.set(p + "abiu.scoma_retries",
            static_cast<double>(abiu.scoma_retries.value()));
    sh.set(p + "abiu.master_reads",
            static_cast<double>(abiu.master_reads.value()));
    sh.set(p + "abiu.master_writes",
            static_cast<double>(abiu.master_writes.value()));

    sh.set(p + "aP.busy_us", static_cast<double>(node.ap().busy()) / 1e6);
    sh.set(p + "aP.occupancy",
            now > 0 ? static_cast<double>(node.ap().busy()) / now : 0.0);
    sh.set(p + "sP.busy_us", static_cast<double>(node.sp().busy()) / 1e6);
    sh.set(p + "sP.occupancy",
            now > 0 ? static_cast<double>(node.sp().busy()) / now : 0.0);

    if (auto* scoma = node.scoma()) {
      sh.set(p + "scoma.read_misses",
              static_cast<double>(scoma->stats().read_misses.value()));
      sh.set(p + "scoma.write_misses",
              static_cast<double>(scoma->stats().write_misses.value()));
      sh.set(p + "scoma.recalls",
              static_cast<double>(scoma->stats().recalls.value()));
      sh.set(p + "scoma.invalidations",
              static_cast<double>(scoma->stats().invalidations.value()));
      sh.set(p + "scoma.grants",
              static_cast<double>(scoma->stats().grants.value()));
    }
    if (auto* numa = node.numa()) {
      sh.set(p + "numa.remote_loads",
              static_cast<double>(numa->remote_loads().value()));
      sh.set(p + "numa.remote_stores",
              static_cast<double>(numa->remote_stores().value()));
    }
    if (auto* miss = node.miss_service()) {
      sh.set(p + "miss_service.serviced",
              static_cast<double>(miss->serviced().value()));
    }
  }
  return reg;
}

void dump_stats(Machine& machine, std::ostream& os) {
  collect_stats(machine).dump(os);
}

void dump_stats_json(Machine& machine, std::ostream& os) {
  collect_stats(machine).dump_json(os);
}

}  // namespace sv::sys

#include "sys/stats_dump.hpp"

#include <string>

namespace sv::sys {

sim::StatRegistry collect_stats(Machine& machine) {
  sim::StatRegistry reg;
  const double now = static_cast<double>(machine.now());

  reg.set("sim.now_us", now / 1e6);
  // Scheduled (= sequence numbers issued), not executed: fast paths bypass
  // events but reserve their keys, so this count is byte-identical across
  // fast and slow runs where the executed count is not.
  reg.set("sim.events", static_cast<double>(machine.events_scheduled()));
  reg.set("net.packets_delivered",
          static_cast<double>(machine.network().packets_delivered()));
  reg.set("net.mean_transit_us",
          machine.network().transit_ps().mean() / 1e6);
  const auto audit = machine.network().audit();
  reg.set("net.packets_injected", static_cast<double>(audit.injected));
  reg.set("net.packets_dropped", static_cast<double>(audit.dropped));

  if (auto* inj = machine.fault_injector()) {
    const auto& fs = inj->stats();
    reg.set("fault.drops", static_cast<double>(fs.drops.value()));
    reg.set("fault.corrupts", static_cast<double>(fs.corrupts.value()));
    reg.set("fault.link_downs", static_cast<double>(fs.link_downs.value()));
    reg.set("fault.router_stalls",
            static_cast<double>(fs.router_stalls.value()));
    reg.set("fault.starvations",
            static_cast<double>(fs.starvations.value()));
    reg.set("fault.rx_overflows",
            static_cast<double>(fs.rx_overflows.value()));
  }

  for (sim::NodeId i = 0; i < machine.size(); ++i) {
    Node& node = machine.node(i);
    const std::string p = "n" + std::to_string(i) + ".";

    const auto& bus = node.bus().stats();
    reg.set(p + "bus.transactions",
            static_cast<double>(bus.transactions.value()));
    reg.set(p + "bus.retries", static_cast<double>(bus.retries.value()));
    reg.set(p + "bus.interventions",
            static_cast<double>(bus.interventions.value()));
    reg.set(p + "bus.data_occupancy",
            bus.data_busy.occupancy(machine.now()));

    const auto& cache = node.cache().stats();
    reg.set(p + "cache.read_hits",
            static_cast<double>(cache.read_hits.value()));
    reg.set(p + "cache.read_misses",
            static_cast<double>(cache.read_misses.value()));
    reg.set(p + "cache.write_hits",
            static_cast<double>(cache.write_hits.value()));
    reg.set(p + "cache.write_misses",
            static_cast<double>(cache.write_misses.value()));
    reg.set(p + "cache.writebacks",
            static_cast<double>(cache.writebacks.value()));
    reg.set(p + "cache.snoop_invalidates",
            static_cast<double>(cache.snoop_invalidates.value()));

    const auto& ctrl = node.niu().ctrl().stats();
    reg.set(p + "ctrl.msgs_launched",
            static_cast<double>(ctrl.msgs_launched.value()));
    reg.set(p + "ctrl.msgs_received",
            static_cast<double>(ctrl.msgs_received.value()));
    reg.set(p + "ctrl.express_pushed",
            static_cast<double>(ctrl.express_pushed.value()));
    reg.set(p + "ctrl.rx_hits", static_cast<double>(ctrl.rx_hits.value()));
    reg.set(p + "ctrl.rx_misses",
            static_cast<double>(ctrl.rx_misses.value()));
    reg.set(p + "ctrl.rx_dropped",
            static_cast<double>(ctrl.rx_dropped.value()));
    reg.set(p + "ctrl.cmds_local",
            static_cast<double>(ctrl.cmds_local.value()));
    reg.set(p + "ctrl.cmds_remote",
            static_cast<double>(ctrl.cmds_remote.value()));
    reg.set(p + "ctrl.cmds_immediate",
            static_cast<double>(ctrl.cmds_immediate.value()));
    reg.set(p + "ctrl.protection_violations",
            static_cast<double>(ctrl.protection_violations.value()));
    reg.set(p + "ctrl.block_ops",
            static_cast<double>(ctrl.block_reads.value() +
                                ctrl.block_txs.value() +
                                ctrl.block_xfers.value()));
    reg.set(p + "ctrl.ibus_occupancy",
            ctrl.ibus_busy.occupancy(machine.now()));

    const auto& abiu = node.niu().abiu().stats();
    reg.set(p + "abiu.express_stores",
            static_cast<double>(abiu.express_stores.value()));
    reg.set(p + "abiu.pointer_updates",
            static_cast<double>(abiu.pointer_updates.value()));
    reg.set(p + "abiu.numa_forwards",
            static_cast<double>(abiu.numa_forwards.value()));
    reg.set(p + "abiu.scoma_checks",
            static_cast<double>(abiu.scoma_checks.value()));
    reg.set(p + "abiu.scoma_retries",
            static_cast<double>(abiu.scoma_retries.value()));
    reg.set(p + "abiu.master_reads",
            static_cast<double>(abiu.master_reads.value()));
    reg.set(p + "abiu.master_writes",
            static_cast<double>(abiu.master_writes.value()));

    reg.set(p + "aP.busy_us", static_cast<double>(node.ap().busy()) / 1e6);
    reg.set(p + "aP.occupancy",
            now > 0 ? static_cast<double>(node.ap().busy()) / now : 0.0);
    reg.set(p + "sP.busy_us", static_cast<double>(node.sp().busy()) / 1e6);
    reg.set(p + "sP.occupancy",
            now > 0 ? static_cast<double>(node.sp().busy()) / now : 0.0);

    if (auto* scoma = node.scoma()) {
      reg.set(p + "scoma.read_misses",
              static_cast<double>(scoma->stats().read_misses.value()));
      reg.set(p + "scoma.write_misses",
              static_cast<double>(scoma->stats().write_misses.value()));
      reg.set(p + "scoma.recalls",
              static_cast<double>(scoma->stats().recalls.value()));
      reg.set(p + "scoma.invalidations",
              static_cast<double>(scoma->stats().invalidations.value()));
      reg.set(p + "scoma.grants",
              static_cast<double>(scoma->stats().grants.value()));
    }
    if (auto* numa = node.numa()) {
      reg.set(p + "numa.remote_loads",
              static_cast<double>(numa->remote_loads().value()));
      reg.set(p + "numa.remote_stores",
              static_cast<double>(numa->remote_stores().value()));
    }
    if (auto* miss = node.miss_service()) {
      reg.set(p + "miss_service.serviced",
              static_cast<double>(miss->serviced().value()));
    }
  }
  return reg;
}

void dump_stats(Machine& machine, std::ostream& os) {
  collect_stats(machine).dump(os);
}

void dump_stats_json(Machine& machine, std::ostream& os) {
  collect_stats(machine).dump_json(os);
}

}  // namespace sv::sys

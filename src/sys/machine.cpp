#include "sys/machine.hpp"

namespace sv::sys {

Machine::Machine(Params params) : params_(params) {
  if (params_.fault.enabled()) {
    fault_ = std::make_unique<fault::Injector>(kernel_, "fault",
                                               params_.fault);
    kernel_.set_fault_injector(fault_.get());
  }
  if (params_.net == NetKind::kFatTree) {
    net::FatTreeNetwork::Params np;
    np.nodes = params_.nodes;
    np.radix = params_.radix;
    np.link = params_.link;
    network_ = std::make_unique<net::FatTreeNetwork>(kernel_, "net", np);
  } else {
    net::IdealNetwork::Params np;
    np.nodes = params_.nodes;
    np.latency = params_.ideal_latency;
    network_ = std::make_unique<net::IdealNetwork>(kernel_, "net", np);
  }

  Node::Params node_params = params_.node;
  node_params.num_nodes = params_.nodes;

  nodes_.reserve(params_.nodes);
  for (sim::NodeId i = 0; i < params_.nodes; ++i) {
    nodes_.push_back(std::make_unique<Node>(
        kernel_, "n" + std::to_string(i), i, *network_, node_params));
  }
  const msg::AddressMap map = addr_map();
  for (auto& n : nodes_) {
    n->setup(map);
    n->start();
  }
}

trace::Tracer& Machine::enable_tracing(std::size_t capacity) {
  if (tracer_ == nullptr) {
    tracer_ = std::make_unique<trace::Tracer>(capacity);
    kernel_.set_tracer(tracer_.get());
  }
  tracer_->set_enabled(true);
  return *tracer_;
}

}  // namespace sv::sys

#include "sys/machine.hpp"

#include <stdexcept>

namespace sv::sys {

Machine::Machine(Params params) : params_(params) {
  const bool partitioned = params_.threads > 0;
  if (partitioned && params_.net == NetKind::kFatTree) {
    throw std::invalid_argument(
        "Machine: threads > 0 requires NetKind::kIdeal (the fat tree's "
        "shared routers have no home domain)");
  }
  const std::size_t ndomains = partitioned ? params_.nodes : 1;
  domains_.reserve(ndomains);
  for (std::size_t i = 0; i < ndomains; ++i) {
    domains_.push_back(std::make_unique<sim::Kernel>());
  }

  if (params_.fault.enabled()) {
    // One injector shared by every domain: decision streams are per lane,
    // and a lane is only exercised from the domain owning it. Pre-allocate
    // a lane per node so partitioned execution never grows the table.
    fault_ = std::make_unique<fault::Injector>("fault", params_.fault,
                                               params_.nodes);
    for (auto& d : domains_) {
      d->set_fault_injector(fault_.get());
    }
  }

  if (params_.net == NetKind::kFatTree) {
    net::FatTreeNetwork::Params np;
    np.nodes = params_.nodes;
    np.radix = params_.radix;
    np.link = params_.link;
    network_ =
        std::make_unique<net::FatTreeNetwork>(*domains_.front(), "net", np);
  } else {
    net::IdealNetwork::Params np;
    np.nodes = params_.nodes;
    np.latency = params_.ideal_latency;
    std::vector<sim::Kernel*> raw;
    raw.reserve(params_.nodes);
    for (sim::NodeId i = 0; i < params_.nodes; ++i) {
      raw.push_back(&domain_for_node(i));
    }
    const sim::DomainMap map =
        partitioned ? sim::DomainMap(std::move(raw))
                    : sim::DomainMap(*domains_.front(), params_.nodes);
    network_ = std::make_unique<net::IdealNetwork>(map, "net", np);
  }

  Node::Params node_params = params_.node;
  node_params.num_nodes = params_.nodes;

  nodes_.reserve(params_.nodes);
  for (sim::NodeId i = 0; i < params_.nodes; ++i) {
    nodes_.push_back(std::make_unique<Node>(domain_for_node(i),
                                            "n" + std::to_string(i), i,
                                            *network_, node_params));
  }
  const msg::AddressMap map = addr_map();
  for (auto& n : nodes_) {
    n->setup(map);
    n->start();
  }

  if (partitioned) {
    std::vector<sim::Kernel*> raw;
    raw.reserve(domains_.size());
    for (auto& d : domains_) {
      raw.push_back(d.get());
    }
    sched_ = std::make_unique<sim::ParallelKernel>(std::move(raw),
                                                   params_.threads,
                                                   lookahead());
  }
}

std::uint64_t Machine::events_executed() const {
  std::uint64_t n = 0;
  for (const auto& d : domains_) {
    n += d->events_executed();
  }
  return n;
}

std::uint64_t Machine::events_scheduled() const {
  std::uint64_t n = 0;
  for (const auto& d : domains_) {
    n += d->events_scheduled();
  }
  return n;
}

sim::Tick Machine::lookahead() const {
  return params_.net == NetKind::kIdeal ? params_.ideal_latency
                                        : sim::kMicrosecond;
}

bool Machine::run_epochs_until(const std::function<bool()>& pred,
                               sim::Tick deadline) {
  if (sched_) {
    return sched_->run_epochs_until(pred, deadline);
  }
  // Sequential twin of ParallelKernel::run_epochs_until: identical epoch
  // boundaries, identical stopping rule, so predicates observe the two
  // layouts at exactly the same instants.
  const sim::Tick lk = lookahead();
  if (pred()) {
    return true;
  }
  while (epoch_start_ <= deadline) {
    kernel().run_until(epoch_start_ + lk - 1);
    epoch_start_ += lk;
    if (pred()) {
      return true;
    }
    if (kernel().idle()) {
      return false;
    }
  }
  return false;
}

trace::Tracer& Machine::enable_tracing(std::size_t capacity) {
  if (tracers_.empty()) {
    tracers_.reserve(domains_.size());
    for (auto& d : domains_) {
      tracers_.push_back(std::make_unique<trace::Tracer>(capacity));
      d->set_tracer(tracers_.back().get());
    }
  }
  for (auto& t : tracers_) {
    t->set_enabled(true);
  }
  return *tracers_.front();
}

std::vector<const trace::Tracer*> Machine::tracers() const {
  std::vector<const trace::Tracer*> out;
  out.reserve(tracers_.size());
  for (const auto& t : tracers_) {
    out.push_back(t.get());
  }
  return out;
}

}  // namespace sv::sys

// One StarT-Voyager node (paper Figure 2): an unmodified PowerPC SMP —
// 604e aP, in-line L2 cache, memory controller and DRAM on a 60x bus —
// with the NIU in the second processor slot and the sP running firmware.
#pragma once

#include <memory>

#include "cpu/processor.hpp"
#include "fw/dma.hpp"
#include "fw/miss_service.hpp"
#include "fw/numa.hpp"
#include "fw/reflective.hpp"
#include "fw/scoma.hpp"
#include "mem/bus.hpp"
#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "msg/endpoint.hpp"
#include "niu/niu.hpp"

namespace sv::sys {

class Node {
 public:
  struct Params {
    std::size_t num_nodes = 2;
    mem::Addr dram_size = niu::kApDramDefaultSize;
    mem::Addr scoma_size = niu::kScomaDefaultSize;
    mem::Addr numa_backing_size = 64ull * 1024 * 1024;

    mem::MemBus::Params bus;
    mem::SnoopingCache::Params cache;
    cpu::Processor::Params ap;       // 166 MHz
    cpu::Processor::Params sp;       // 100 MHz
    niu::Niu::Params niu;

    fw::FwService::Costs fw_costs;
    fw::FwQueueMap fw_queues;
    std::uint32_t scoma_page_bytes = 4096;

    bool enable_dma = true;
    bool enable_numa = true;
    bool enable_scoma = true;
    bool enable_miss_service = true;
    bool enable_chunk_opener = true;

    Params() { sp.clock = sim::Clock{10000}; }
  };

  // --- Standard queue plan (user side; firmware queues in fw::FwQueueMap) --
  // Hardware tx queues:
  static constexpr unsigned kTxUser0 = 0;    // basic, translated
  static constexpr unsigned kTxExpress = 1;  // express, translated
  static constexpr unsigned kTxUser1 = 2;    // basic, translated
  static constexpr unsigned kTxRaw = 3;      // basic, raw allowed (trusted)
  // Hardware rx queues:
  static constexpr unsigned kRxUser0 = 0;    // logical AddressMap::kUser0L
  static constexpr unsigned kRxExpress = 1;  // logical AddressMap::kExpressL
  static constexpr unsigned kRxUser1 = 2;    // logical AddressMap::kUser1L

  // aSRAM layout (bank-relative offsets).
  static constexpr std::uint32_t kTx0Base = 0x0100;
  static constexpr std::uint32_t kExTxBase = 0x1900;
  static constexpr std::uint32_t kRx0Base = 0x2000;
  static constexpr std::uint32_t kExRxBase = 0x3800;
  static constexpr std::uint32_t kTx1Base = 0x4000;
  static constexpr std::uint32_t kRx1Base = 0x5800;
  static constexpr std::uint32_t kTxRawBase = 0x7000;
  static constexpr std::uint32_t kStagingBase = 0x8000;
  static constexpr std::uint16_t kUserSlots = 64;
  static constexpr std::uint16_t kExpressSlots = 128;

  // sSRAM layout.
  static constexpr std::uint32_t kXlatBase = 0x0000;
  static constexpr std::uint32_t kFwQueueBase = 0x1000;
  static constexpr std::uint32_t kFwQueueStride = 0x1800;  // 64 x 96
  static constexpr std::uint16_t kFwSlots = 64;
  static constexpr std::uint32_t kDmaStagingBase = 0x20000;

  Node(sim::Kernel& kernel, const std::string& name, sim::NodeId id,
       net::Network& network, Params params);

  /// Configure queues, the translation table, firmware bindings ("OS
  /// boot"). Call once before start().
  void setup(const msg::AddressMap& map);

  /// Spawn NIU and firmware processes.
  void start();

  [[nodiscard]] sim::NodeId id() const { return id_; }
  [[nodiscard]] mem::MemBus& bus() { return *bus_; }
  [[nodiscard]] mem::DramCtrl& dram() { return *dram_; }
  [[nodiscard]] mem::SnoopingCache& cache() { return *cache_; }
  [[nodiscard]] cpu::Processor& ap() { return *ap_; }
  [[nodiscard]] cpu::Processor& sp() { return *sp_; }
  [[nodiscard]] niu::Niu& niu() { return *niu_; }
  [[nodiscard]] fw::DmaEngine* dma() { return dma_.get(); }
  [[nodiscard]] fw::NumaEngine* numa() { return numa_.get(); }
  [[nodiscard]] fw::ScomaEngine* scoma() { return scoma_.get(); }
  [[nodiscard]] fw::MissService* miss_service() { return miss_.get(); }
  [[nodiscard]] fw::ChunkOpener* chunk_opener() { return chunk_.get(); }
  [[nodiscard]] const Params& params() const { return params_; }

  /// Library configuration for a user endpoint on this node.
  [[nodiscard]] msg::Endpoint::Config endpoint_config();
  [[nodiscard]] msg::Endpoint make_endpoint() {
    return msg::Endpoint(*ap_, endpoint_config());
  }

  /// A second, fully independent endpoint over the user1 queue pair (no
  /// express/raw queues): the multitasking story — two jobs sharing one
  /// NIU through protected queues.
  [[nodiscard]] msg::Endpoint::Config endpoint1_config();
  [[nodiscard]] msg::Endpoint make_endpoint1() {
    return msg::Endpoint(*ap_, endpoint1_config());
  }

 private:
  void setup_tx_queues();
  void setup_rx_queues();
  void write_translation_table(const msg::AddressMap& map);

  sim::NodeId id_;
  Params params_;
  std::unique_ptr<mem::MemBus> bus_;
  std::unique_ptr<mem::DramCtrl> dram_;
  std::unique_ptr<mem::SnoopingCache> cache_;
  std::unique_ptr<cpu::Processor> ap_;
  std::unique_ptr<cpu::Processor> sp_;
  std::unique_ptr<niu::Niu> niu_;
  std::unique_ptr<fw::DmaEngine> dma_;
  std::unique_ptr<fw::NumaEngine> numa_;
  std::unique_ptr<fw::ScomaEngine> scoma_;
  std::unique_ptr<fw::MissService> miss_;
  std::unique_ptr<fw::ChunkOpener> chunk_;
  bool setup_done_ = false;
};

}  // namespace sv::sys

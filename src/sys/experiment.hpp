// Experiment harness helpers: run programs on node processors, wait for
// completion flags with timeouts, and format result tables.
#pragma once

#include <functional>
#include <iomanip>
#include <ostream>
#include <string>
#include <vector>

#include "sys/machine.hpp"

namespace sv::sys {

/// Run the kernel until `pred()` holds or `deadline` passes. Returns true
/// if the predicate was satisfied. (The machine's service loops never
/// terminate, so the event queue never drains — completion is always
/// predicate-based.)
bool run_until(sim::Kernel& kernel, const std::function<bool()>& pred,
               sim::Tick deadline);

/// Machine-level variant: drives the machine in whole lookahead epochs
/// (Machine::run_epochs_until), which works for both the sequential and
/// the partitioned layout and stops at identical instants in each. Use
/// this wherever results are compared across --threads values.
bool run_until(Machine& machine, const std::function<bool()>& pred,
               sim::Tick deadline);

/// Spawn one program per entry and run until all complete. Returns true on
/// success, false on timeout. Completion times (per program) are appended
/// to `finish_times` when non-null.
bool run_programs(sim::Kernel& kernel, std::vector<sim::Co<void>> programs,
                  sim::Tick deadline,
                  std::vector<sim::Tick>* finish_times = nullptr);

/// Simple fixed-width table printer for bench output.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

  static std::string fmt_us(sim::Tick ps);
  static std::string fmt_mbps(double bytes, sim::Tick ps);
  static std::string fmt_pct(double frac);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sv::sys

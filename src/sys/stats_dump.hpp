// Aggregate every component's counters into one registry and print it —
// the "system workload level" observability the paper argues a real
// platform enables (section 7).
#pragma once

#include <ostream>

#include "sim/stats.hpp"
#include "sys/machine.hpp"

namespace sv::sys {

/// Collect all counters of `machine` into a registry, keyed
/// "n<i>.<unit>.<metric>" plus machine-wide "net.*" entries.
[[nodiscard]] sim::StatRegistry collect_stats(Machine& machine);

/// collect_stats + formatted print.
void dump_stats(Machine& machine, std::ostream& os);

/// collect_stats + flat JSON object print.
void dump_stats_json(Machine& machine, std::ostream& os);

}  // namespace sv::sys

#include "sys/node.hpp"

#include <stdexcept>

namespace sv::sys {

Node::Node(sim::Kernel& kernel, const std::string& name, sim::NodeId id,
           net::Network& network, Params params)
    : id_(id), params_(params) {
  bus_ = std::make_unique<mem::MemBus>(kernel, name + ".bus", params.bus);

  mem::DramCtrl::Params dram;
  dram.ranges.push_back({niu::kApDramBase, params.dram_size});
  dram.ranges.push_back({niu::kScomaBase, params.scoma_size});
  dram.ranges.push_back({fw::kNumaBackingBase, params.numa_backing_size});
  dram_ = std::make_unique<mem::DramCtrl>(kernel, name + ".dram", dram);
  bus_->attach(dram_.get());

  cache_ = std::make_unique<mem::SnoopingCache>(kernel, name + ".L2", *bus_,
                                                params.cache);
  ap_ = std::make_unique<cpu::Processor>(kernel, name + ".aP", *bus_,
                                         cache_.get(), params.ap);

  niu::Niu::Params np = params.niu;
  np.cls.region_base = niu::kScomaBase;
  np.cls.region_size = params.scoma_size;
  // The standard layout (queues + DMA staging) sizes the banks.
  np.asram.size = 128 * 1024;
  np.ssram.size = 256 * 1024;
  niu_ = std::make_unique<niu::Niu>(kernel, name + ".NIU", id, *bus_,
                                    network, np);

  // The sP runs uncached out of its own space; it reaches the node through
  // the sBIU only, so it is not attached to the aP bus.
  sp_ = std::make_unique<cpu::Processor>(kernel, name + ".sP", *bus_,
                                         nullptr, params.sp);

  auto& sbiu = niu_->sbiu();
  if (params.enable_dma) {
    fw::DmaEngine::Params dp;
    dp.staging_offset = kDmaStagingBase;
    dp.queues = params.fw_queues;
    dma_ = std::make_unique<fw::DmaEngine>(kernel, name + ".fw.dma", *sp_,
                                           sbiu, dp, params.fw_costs);
  }
  if (params.enable_numa) {
    fw::NumaEngine::Params fnp;
    fnp.queues = params.fw_queues;
    fnp.num_nodes = params.num_nodes;
    numa_ = std::make_unique<fw::NumaEngine>(kernel, name + ".fw.numa", *sp_,
                                             sbiu, fnp, params.fw_costs);
  }
  if (params.enable_scoma) {
    fw::ScomaEngine::Params spp;
    spp.queues = params.fw_queues;
    spp.num_nodes = params.num_nodes;
    spp.size = params.scoma_size;
    spp.page_bytes = params.scoma_page_bytes;
    scoma_ = std::make_unique<fw::ScomaEngine>(kernel, name + ".fw.scoma",
                                               *sp_, sbiu, spp,
                                               params.fw_costs);
  }
  if (params.enable_miss_service) {
    miss_ = std::make_unique<fw::MissService>(
        kernel, name + ".fw.miss", *sp_, sbiu, params.fw_queues,
        params.fw_costs);
  }
  if (params.enable_chunk_opener) {
    chunk_ = std::make_unique<fw::ChunkOpener>(
        kernel, name + ".fw.chunk", *sp_, sbiu, params.fw_queues,
        niu::ABiu::kClsReadWrite, params.fw_costs);
  }
}

void Node::setup_tx_queues() {
  auto& ctrl = niu_->ctrl();

  auto& t0 = ctrl.txq(kTxUser0);
  t0.enabled = true;
  t0.bank = niu::SramBank::kASram;
  t0.base = kTx0Base;
  t0.slots = kUserSlots;
  t0.slot_bytes = niu::kBasicSlotBytes;
  t0.priority_class = 1;

  auto& te = ctrl.txq(kTxExpress);
  te.enabled = true;
  te.express = true;
  te.bank = niu::SramBank::kASram;
  te.base = kExTxBase;
  te.slots = kExpressSlots;
  te.slot_bytes = niu::kExpressSlotBytes;
  te.priority_class = 2;  // express messages jump ahead of bulk traffic
  // The express vdest is only 8 bits: OR the express section's base into
  // the translated index so stores address the express table section.
  te.and_mask = 0x00FF;
  te.or_mask = 0;  // rewritten in write_translation_table()

  auto& t1 = ctrl.txq(kTxUser1);
  t1.enabled = true;
  t1.bank = niu::SramBank::kASram;
  t1.base = kTx1Base;
  t1.slots = kUserSlots;
  t1.slot_bytes = niu::kBasicSlotBytes;
  t1.priority_class = 1;

  auto& tr = ctrl.txq(kTxRaw);
  tr.enabled = true;
  tr.raw_allowed = true;
  tr.bank = niu::SramBank::kASram;
  tr.base = kTxRawBase;
  tr.slots = 16;
  tr.slot_bytes = niu::kBasicSlotBytes;
  tr.priority_class = 1;
}

void Node::setup_rx_queues() {
  auto& ctrl = niu_->ctrl();

  auto bind = [&](unsigned hwq, net::QueueId logical, niu::SramBank bank,
                  std::uint32_t base, std::uint16_t slots,
                  std::uint16_t slot_bytes, bool express) {
    auto& r = ctrl.rxq(hwq);
    r.enabled = true;
    r.express = express;
    r.bank = bank;
    r.base = base;
    r.slots = slots;
    r.slot_bytes = slot_bytes;
    r.logical = logical;
    r.full_policy = niu::RxFullPolicy::kDivert;
  };

  bind(kRxUser0, msg::AddressMap::kUser0L, niu::SramBank::kASram, kRx0Base,
       kUserSlots, niu::kBasicSlotBytes, false);
  bind(kRxExpress, msg::AddressMap::kExpressL, niu::SramBank::kASram,
       kExRxBase, kExpressSlots, niu::kExpressSlotBytes, true);
  bind(kRxUser1, msg::AddressMap::kUser1L, niu::SramBank::kASram, kRx1Base,
       kUserSlots, niu::kBasicSlotBytes, false);

  // Firmware queues live in sSRAM.
  const auto& q = params_.fw_queues;
  auto fw_bind = [&](unsigned hwq, net::QueueId logical) {
    bind(hwq, logical, niu::SramBank::kSSram,
         kFwQueueBase + (hwq - 8) * kFwQueueStride, kFwSlots,
         niu::kBasicSlotBytes, false);
  };
  fw_bind(q.dma_req, fw::kDmaReqL);
  fw_bind(q.numa_req, fw::kNumaReqL);
  fw_bind(q.numa_rsp, fw::kNumaRspL);
  fw_bind(q.scoma_req, fw::kScomaReqL);
  fw_bind(q.scoma_rsp, fw::kScomaRspL);
  fw_bind(q.chunk_arrival, niu::kChunkArrivalQueue);
  fw_bind(q.fw_done, fw::kFwDoneL);
  // The miss queue has no logical binding: it catches lookup misses.
  auto& miss = ctrl.rxq(q.miss);
  miss.enabled = true;
  miss.bank = niu::SramBank::kSSram;
  miss.base = kFwQueueBase + (q.miss - 8) * kFwQueueStride;
  miss.slots = kFwSlots;
  miss.slot_bytes = niu::kBasicSlotBytes;
  miss.logical = niu::RxQueueState::kLogicalNone;
  miss.full_policy = niu::RxFullPolicy::kDrop;
}

void Node::write_translation_table(const msg::AddressMap& map) {
  auto& ctrl = niu_->ctrl();
  ctrl.write_reg(niu::SysReg::kTranslationBase, kXlatBase);
  ctrl.write_reg(niu::SysReg::kTranslationSize, map.table_entries());

  // The express queue's 8-bit vdest indexes the express section via the
  // queue's OR mask (sections are power-of-two aligned).
  ctrl.txq(kTxExpress).or_mask = map.express_section();

  auto& ssram = niu_->ssram();
  const std::size_t stride = map.stride();
  for (std::size_t v = 0; v < map.table_entries(); ++v) {
    niu::XlatEntry e;
    e.valid = true;
    e.priority = net::kPriorityLow;
    const auto n = static_cast<std::uint16_t>(v % stride);
    if (n >= map.nodes) {
      e.valid = false;
    }
    switch (v / stride) {
      case 0:
        e.phys_node = n;
        e.logical_queue = msg::AddressMap::kUser0L;
        break;
      case 1:
        e.phys_node = n;
        e.logical_queue = fw::kDmaReqL;
        break;
      case 2:
        e.phys_node = n;
        e.logical_queue = msg::AddressMap::kUser1L;
        break;
      case 3:
        e.phys_node = n;
        e.logical_queue = msg::AddressMap::kExpressL;
        break;
      default:
        e.valid = false;
        break;
    }
    std::byte raw[niu::XlatEntry::kBytes];
    e.encode(raw);
    ssram.write(kXlatBase + v * niu::XlatEntry::kBytes, raw);
  }
}

void Node::setup(const msg::AddressMap& map) {
  if (setup_done_) {
    throw std::logic_error("Node::setup called twice");
  }
  setup_done_ = true;
  setup_tx_queues();
  setup_rx_queues();
  write_translation_table(map);
  if (scoma_) {
    scoma_->init_cls();
  }
}

void Node::start() {
  if (!setup_done_) {
    throw std::logic_error("Node::start before setup");
  }
  niu_->start();
  if (dma_) {
    dma_->start();
  }
  if (numa_) {
    numa_->start();
  }
  if (scoma_) {
    scoma_->start();
  }
  if (miss_) {
    miss_->start();
  }
  if (chunk_) {
    chunk_->start();
  }
}

msg::Endpoint::Config Node::endpoint_config() {
  msg::Endpoint::Config cfg;
  cfg.tx = {kTxUser0, kTx0Base, kUserSlots, niu::kBasicSlotBytes};
  cfg.rx = {kRxUser0, kRx0Base, kUserSlots, niu::kBasicSlotBytes};
  cfg.express_tx = {kTxExpress, kExTxBase, kExpressSlots,
                    niu::kExpressSlotBytes};
  cfg.express_rx = {kRxExpress, kExRxBase, kExpressSlots,
                    niu::kExpressSlotBytes};
  cfg.raw_tx = {kTxRaw, kTxRawBase, 16, niu::kBasicSlotBytes};
  cfg.staging_base = kStagingBase;
  cfg.arrival = &niu_->ctrl().rx_arrival();
  return cfg;
}

msg::Endpoint::Config Node::endpoint1_config() {
  msg::Endpoint::Config cfg;
  cfg.tx = {kTxUser1, kTx1Base, kUserSlots, niu::kBasicSlotBytes};
  cfg.rx = {kRxUser1, kRx1Base, kUserSlots, niu::kBasicSlotBytes};
  // No express or raw queues for the second job; the staging area is
  // split so the two jobs cannot clobber each other's TagOn data.
  cfg.staging_base = kStagingBase + 0x8000;
  cfg.arrival = &niu_->ctrl().rx_arrival();
  return cfg;
}

}  // namespace sv::sys

#include "sys/experiment.hpp"

#include <algorithm>
#include <sstream>

namespace sv::sys {

bool run_until(sim::Kernel& kernel, const std::function<bool()>& pred,
               sim::Tick deadline) {
  while (!pred()) {
    if (kernel.idle() || kernel.next_event_time() > deadline) {
      return false;
    }
    kernel.step();
  }
  return true;
}

bool run_until(Machine& machine, const std::function<bool()>& pred,
               sim::Tick deadline) {
  return machine.run_epochs_until(pred, deadline);
}

bool run_programs(sim::Kernel& kernel, std::vector<sim::Co<void>> programs,
                  sim::Tick deadline,
                  std::vector<sim::Tick>* finish_times) {
  const std::size_t n = programs.size();
  std::vector<sim::Tick> finished(n, sim::kTickInvalid);
  std::size_t remaining = n;

  for (std::size_t i = 0; i < n; ++i) {
    sim::spawn([](sim::Co<void> prog, sim::Kernel* k, sim::Tick* slot,
                  std::size_t* rem) -> sim::Co<void> {
      co_await std::move(prog);
      *slot = k->now();
      --*rem;
    }(std::move(programs[i]), &kernel, &finished[i], &remaining));
  }

  const bool ok =
      run_until(kernel, [&] { return remaining == 0; }, deadline);
  if (finish_times != nullptr) {
    *finish_times = std::move(finished);
  }
  return ok;
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::setw(static_cast<int>(widths[c]) + 2) << cells[c];
    }
    os << '\n';
  };
  line(headers_);
  std::size_t total = 0;
  for (auto w : widths) {
    total += w + 2;
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    line(row);
  }
}

std::string Table::fmt_us(sim::Tick ps) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(2)
      << static_cast<double>(ps) / 1e6;
  return oss.str();
}

std::string Table::fmt_mbps(double bytes, sim::Tick ps) {
  if (ps == 0) {
    return "inf";
  }
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(1)
      << bytes / (static_cast<double>(ps) * 1e-12) / 1e6;
  return oss.str();
}

std::string Table::fmt_pct(double frac) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(1) << frac * 100.0 << "%";
  return oss.str();
}

}  // namespace sv::sys

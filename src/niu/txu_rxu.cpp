#include "niu/txu_rxu.hpp"

#include <stdexcept>

#include "fault/fault.hpp"

namespace sv::niu {

TxU::TxU(sim::Kernel& kernel, std::string name, Ctrl& ctrl, Params params)
    : sim::SimObject(kernel, std::move(name)), ctrl_(ctrl), params_(params) {}

void TxU::start() {
  if (started_) {
    throw std::logic_error(name() + ": started twice");
  }
  started_ = true;
  sim::spawn(loop());
}

sim::Co<void> TxU::loop() {
  for (;;) {
    const int q = ctrl_.pick_tx_queue();
    if (q < 0) {
      co_await ctrl_.tx_work();
      continue;
    }
    co_await sim::delay(kernel_,
                        params_.clock.to_ticks(params_.per_message_cycles));
    co_await ctrl_.tx_launch(static_cast<unsigned>(q));
  }
}

RxU::RxU(sim::Kernel& kernel, std::string name, Ctrl& ctrl,
         net::Network& network, Params params)
    : sim::SimObject(kernel, std::move(name)),
      ctrl_(ctrl),
      network_(network),
      params_(params),
      arrived_(kernel) {}

void RxU::start() {
  if (started_) {
    throw std::logic_error(name() + ": started twice");
  }
  started_ = true;
  network_.set_endpoint(ctrl_.node(),
                        [this](net::Packet&& p) { deliver(std::move(p)); });
  sim::spawn(loop());
}

void RxU::deliver(net::Packet&& pkt) {
  vq_[pkt.priority].push_back(std::move(pkt));
  arrived_.pulse();
}

sim::Co<void> RxU::loop() {
  for (;;) {
    while (vq_[net::kPriorityHigh].empty() && vq_[net::kPriorityLow].empty()) {
      co_await arrived_;
    }
    const std::uint8_t prio = !vq_[net::kPriorityHigh].empty()
                                  ? net::kPriorityHigh
                                  : net::kPriorityLow;
    net::Packet pkt = std::move(vq_[prio].front());
    vq_[prio].pop_front();

    if (fault::Injector* inj = kernel_.fault_injector();
        inj != nullptr && inj->rx_overflow(kernel_, ctrl_.node(), pkt.serial)) {
      // Forced Rx-queue overflow: discard at the NIU boundary as if no
      // buffer slot existed, but still free the fabric credit.
      ctrl_.stats().rx_dropped.inc();
      network_.consume_done(ctrl_.node(), prio);
      continue;
    }

    co_await sim::delay(kernel_,
                        params_.clock.to_ticks(params_.per_message_cycles));
    co_await ctrl_.rx_deliver(std::move(pkt));
    // Credit back to the fabric only once CTRL has accepted the packet.
    network_.consume_done(ctrl_.node(), prio);
  }
}

}  // namespace sv::niu

#include "niu/abiu.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

namespace sv::niu {

OpClass classify(mem::BusOp op) {
  switch (op) {
    case mem::BusOp::kRead:
    case mem::BusOp::kReadSingle:
      return OpClass::kLoad;
    case mem::BusOp::kRWITM:
    case mem::BusOp::kKill:
    case mem::BusOp::kWriteSingle:
      return OpClass::kStore;
    case mem::BusOp::kWriteLine:
    case mem::BusOp::kFlush:
      return OpClass::kWriteback;
  }
  return OpClass::kLoad;
}

ABiu::ABiu(sim::Kernel& kernel, std::string name, Ctrl& ctrl,
           mem::MemBus& bus, Params params)
    : sim::SimObject(kernel, std::move(name)),
      ctrl_(ctrl),
      bus_(bus),
      bus_id_(bus.attach(this)),
      params_(params),
      numa_ops_(kernel),
      scoma_ops_(kernel),
      reflect_ops_(kernel) {
  // Default NUMA policy: loads are retried until firmware supplies the
  // data; stores are absorbed and forwarded (posted writes).
  numa_table_[static_cast<unsigned>(OpClass::kLoad)] = {true, true};
  numa_table_[static_cast<unsigned>(OpClass::kStore)] = {false, true};
  numa_table_[static_cast<unsigned>(OpClass::kWriteback)] = {false, false};

  // Default S-COMA reaction table (MSI-flavoured):
  //   Invalid:   loads and stores miss -> retry + forward
  //   ReadOnly:  loads hit; stores need an upgrade -> retry + forward
  //   ReadWrite: everything hits
  //   Pending:   transaction in flight -> retry, already forwarded
  for (unsigned c = 0; c < static_cast<unsigned>(OpClass::kCount); ++c) {
    for (unsigned b = 0; b < 16; ++b) {
      scoma_table_[c][b] = {};
    }
  }
  auto& loads = scoma_table_[static_cast<unsigned>(OpClass::kLoad)];
  auto& stores = scoma_table_[static_cast<unsigned>(OpClass::kStore)];
  loads[kClsInvalid] = {true, true};
  loads[kClsPending] = {true, false};
  stores[kClsInvalid] = {true, true};
  stores[kClsReadOnly] = {true, true};
  stores[kClsPending] = {true, false};
}

void ABiu::set_scoma_reaction(OpClass cls, std::uint8_t bits, Reaction r) {
  scoma_table_[static_cast<unsigned>(cls)][bits & 0x0F] = r;
}

Reaction ABiu::scoma_reaction(OpClass cls, std::uint8_t bits) const {
  return scoma_table_[static_cast<unsigned>(cls)][bits & 0x0F];
}

void ABiu::set_numa_reaction(OpClass cls, Reaction r) {
  numa_table_[static_cast<unsigned>(cls)] = r;
}

// --- Address decode -----------------------------------------------------------

bool ABiu::in_niu_window(mem::Addr a) const {
  return a >= kNiuBase && a < kNiuBase + kNiuWindowSpan;
}

bool ABiu::in_numa(mem::Addr a) const {
  return a >= params_.numa_base && a < params_.numa_base + params_.numa_size;
}

mem::SnoopResult ABiu::bus_snoop(const mem::BusRequest& req) {
  if (in_niu_window(req.addr)) {
    return snoop_niu_window(req);
  }
  if (in_numa(req.addr)) {
    return snoop_numa(req);
  }
  if (ctrl_.cls().covers(req.addr)) {
    return snoop_scoma(req);
  }
  return {};
}

bool ABiu::bus_snoop_stable(const mem::BusRequest& req) const {
  // snoop_niu_window is a pure decode (kAccept with a static latency, or
  // ignore); snoop_numa and snoop_scoma mutate pending-op state and can
  // answer kRetry, so their regions are never stable.
  return in_niu_window(req.addr) ||
         (!in_numa(req.addr) && !ctrl_.cls().covers(req.addr));
}

bool ABiu::bus_observe_trivial(const mem::BusRequest& req) const {
  const OpClass c = classify(req.op);
  if ((c == OpClass::kStore ||
       (c == OpClass::kWriteback && req.op != mem::BusOp::kFlush)) &&
      in_tracked(req.addr)) {
    return false;  // would dirty-mark the tracked line
  }
  if (mem::op_writes_data(req.op)) {
    for (const ReflectRange& range : reflect_ranges_) {
      if (req.addr >= range.base && req.addr < range.base + range.size) {
        return false;  // would capture and forward the written data
      }
    }
  }
  return true;
}

mem::SnoopResult ABiu::snoop_niu_window(const mem::BusRequest& req) {
  const mem::Addr off = req.addr - kNiuBase;
  if (off < kAsramWindowOffset + ctrl_.sram(SramBank::kASram).size()) {
    const bool read = mem::op_reads_data(req.op);
    return {mem::SnoopAction::kAccept, read ? params_.sram_read_latency
                                            : params_.sram_write_latency};
  }
  if (off >= kExpressTxWindowOffset && off < kExpressRxWindowOffset) {
    if (req.op == mem::BusOp::kWriteSingle) {
      return {mem::SnoopAction::kAccept, params_.sram_write_latency};
    }
    return {};
  }
  if (off >= kExpressRxWindowOffset && off < kPtrWindowOffset) {
    if (req.op == mem::BusOp::kReadSingle) {
      return {mem::SnoopAction::kAccept, params_.express_rx_latency};
    }
    return {};
  }
  if (off >= kPtrWindowOffset && off < kSysRegWindowOffset) {
    if (req.op == mem::BusOp::kWriteSingle) {
      return {mem::SnoopAction::kAccept, params_.sram_write_latency};
    }
    return {};
  }
  if (off >= kSysRegWindowOffset && off < kNiuWindowSpan) {
    return {mem::SnoopAction::kAccept, params_.regop_latency};
  }
  return {};
}

mem::SnoopResult ABiu::snoop_numa(const mem::BusRequest& req) {
  const OpClass c = classify(req.op);
  const Reaction r = numa_table_[static_cast<unsigned>(c)];
  const mem::Addr line = mem::line_base(req.addr);

  if (c == OpClass::kLoad) {
    auto it = numa_pending_.find(line);
    if (it != numa_pending_.end() && it->second.ready) {
      // Firmware supplied the data: stop retrying, we respond.
      return {mem::SnoopAction::kAccept, params_.supplied_load_latency};
    }
    if (r.forward && it == numa_pending_.end()) {
      PendingLoad pl;
      pl.token = next_token_++;
      numa_pending_.emplace(line, pl);
      numa_ops_.push(FwdOp{req.op, line, mem::kLineBytes, pl.token, {}});
      stats_.numa_forwards.inc();
    }
    if (r.retry) {
      stats_.numa_retries.inc();
      return {mem::SnoopAction::kRetry, 0};
    }
    // Misconfigured table (load neither retried nor supplied): absorb and
    // return zeros rather than leaving the bus unanswered.
    return {mem::SnoopAction::kAccept, params_.supplied_load_latency};
  }

  // Stores / writebacks: optionally retried; otherwise absorbed (posted)
  // and the captured data forwarded to firmware.
  if (r.retry) {
    stats_.numa_retries.inc();
    return {mem::SnoopAction::kRetry, 0};
  }
  return {mem::SnoopAction::kAccept, params_.sram_write_latency};
}

mem::SnoopResult ABiu::snoop_scoma(const mem::BusRequest& req) {
  stats_.scoma_checks.inc();
  const std::uint8_t bits = ctrl_.cls().peek(req.addr);
  const OpClass c = classify(req.op);
  const Reaction r = scoma_table_[static_cast<unsigned>(c)][bits];
  const mem::Addr line = mem::line_base(req.addr);

  if (r.forward && scoma_pending_.insert(line).second) {
    FwdOp fwd{req.op, line, mem::kLineBytes, 0, {}};
    if (hw_miss_composer_) {
      // Hardware miss send: compose and inject the protocol request
      // directly; the local sP never sees the miss.
      sim::spawn(hw_miss_send(hw_miss_composer_(fwd)));
    } else {
      scoma_ops_.push(std::move(fwd));
    }
    stats_.scoma_forwards.inc();
  }
  if (r.retry) {
    stats_.scoma_retries.inc();
    return {mem::SnoopAction::kRetry, 0};
  }
  // Lines the node holds read-only must not be cached Exclusive: assert
  // SHD so the aP cache fills them Shared and a later store raises an
  // upgrade bus operation the cls check can intercept. Tracked lines get
  // the same treatment so every store surfaces on the bus for dirty
  // marking (a silent E->M upgrade would escape the tracker).
  if (c == OpClass::kLoad &&
      (bits == kClsReadOnly || in_tracked(req.addr))) {
    return {mem::SnoopAction::kShared, 0};
  }
  return {};  // the memory controller serves it
}

void ABiu::add_reflect_range(mem::Addr base, mem::Addr size, bool hw_mode,
                             std::vector<ReflectPeer> peers) {
  reflect_ranges_.push_back(
      ReflectRange{base, size, hw_mode, std::move(peers)});
}

void ABiu::bus_observe(const mem::BusRequest& req,
                       const mem::BusResult& res) {
  (void)res;
  const OpClass c = classify(req.op);
  // Write-intent ops and real writebacks mark tracked lines dirty; a
  // flush broadcast carries no modification and must not.
  if ((c == OpClass::kStore ||
       (c == OpClass::kWriteback && req.op != mem::BusOp::kFlush)) &&
      in_tracked(req.addr)) {
    auto& cls = ctrl_.cls();
    const std::uint8_t bits = cls.peek(req.addr);
    if ((bits & kClsDirty) == 0) {
      sim::spawn(cls.write_state(mem::line_base(req.addr),
                                 bits | kClsDirty));
    }
  }
  if (!mem::op_writes_data(req.op) || reflect_ranges_.empty()) {
    return;
  }
  for (const ReflectRange& range : reflect_ranges_) {
    if (req.addr < range.base || req.addr >= range.base + range.size) {
      continue;
    }
    std::vector<std::byte> data(req.wdata, req.wdata + req.size);
    if (range.hw_mode) {
      // All-hardware reflective memory: the aBIU composes the remote
      // update itself, no firmware involvement.
      sim::spawn(hw_reflect(range, req.addr, std::move(data)));
    } else {
      reflect_ops_.push(
          FwdOp{req.op, req.addr, req.size, 0, std::move(data)});
    }
    return;
  }
}

sim::Co<void> ABiu::hw_reflect(const ReflectRange& range, mem::Addr addr,
                               std::vector<std::byte> data) {
  for (const ReflectPeer& peer : range.peers) {
    Command wr;
    wr.op = CmdOp::kWriteApDram;
    wr.addr = peer.remote_base + (addr - range.base);
    wr.src_node = static_cast<std::uint16_t>(ctrl_.node());
    wr.data = data;

    net::Packet pkt;
    pkt.src = ctrl_.node();
    pkt.dest = peer.node;
    pkt.dest_queue = net::kRemoteCmdQueue;
    pkt.priority = net::kPriorityLow;
    pkt.payload = encode_remote(wr);
    co_await ctrl_.inject(std::move(pkt));
  }
}

void ABiu::enable_write_tracking(mem::Addr base, mem::Addr size) {
  auto& cls = ctrl_.cls();
  if (!cls.covers(base) || !cls.covers(base + size - 1)) {
    throw std::invalid_argument(
        name() + ": tracked range must lie inside the clsSRAM region");
  }
  for (mem::Addr a = mem::line_base(base); a < base + size;
       a += mem::kLineBytes) {
    cls.poke(a, kClsReadWrite);
  }
  track_ranges_.push_back(TrackRange{base, size});
}

bool ABiu::in_tracked(mem::Addr a) const {
  for (const TrackRange& t : track_ranges_) {
    if (a >= t.base && a < t.base + t.size) {
      return true;
    }
  }
  return false;
}

sim::Co<void> ABiu::hw_miss_send(net::Packet pkt) {
  co_await ctrl_.inject(std::move(pkt));
}

void ABiu::scoma_complete(mem::Addr line) {
  scoma_pending_.erase(mem::line_base(line));
}

void ABiu::cls_updated(mem::Addr addr, std::uint32_t len) {
  if (len == 0) {
    return;
  }
  const mem::Addr first = mem::line_base(addr);
  const mem::Addr last = mem::line_base(addr + len - 1);
  for (mem::Addr a = first; a <= last; a += mem::kLineBytes) {
    scoma_pending_.erase(a);
  }
}

// --- Data-phase handling ---------------------------------------------------------

void ABiu::bus_read_data(const mem::BusRequest& req,
                         std::span<std::byte> out) {
  if (in_numa(req.addr)) {
    const mem::Addr line = mem::line_base(req.addr);
    auto it = numa_pending_.find(line);
    if (it != numa_pending_.end() && it->second.ready) {
      const std::size_t off = req.addr - line;
      std::memcpy(out.data(), it->second.data.data() + off,
                  std::min(out.size(), mem::kLineBytes - off));
      numa_pending_.erase(it);
      stats_.supplied_loads.inc();
    } else {
      std::fill(out.begin(), out.end(), std::byte{0});
    }
    return;
  }

  const mem::Addr off = req.addr - kNiuBase;
  if (off < ctrl_.sram(SramBank::kASram).size()) {
    ctrl_.sram(SramBank::kASram).read(off, out);
    stats_.sram_reads.inc();
    return;
  }
  if (off >= kExpressRxWindowOffset && off < kPtrWindowOffset) {
    const unsigned q = static_cast<unsigned>(
        (off - kExpressRxWindowOffset) / kExpressRxStride);
    const std::uint64_t entry = ctrl_.express_rx_pop(q % kNumRxQueues);
    if (entry == Ctrl::kExpressEmpty) {
      stats_.express_empty_loads.inc();
    } else {
      stats_.express_loads.inc();
    }
    std::byte bytes[8];
    std::memcpy(bytes, &entry, 8);
    std::memcpy(out.data(), bytes, std::min<std::size_t>(out.size(), 8));
    return;
  }
  if (off >= kSysRegWindowOffset && off < kNiuWindowSpan) {
    std::uint64_t v = 0;
    if (params_.ap_sysreg_access) {
      const auto reg = static_cast<SysReg>((off - kSysRegWindowOffset) / 8);
      v = ctrl_.read_reg(reg);
    }
    std::memcpy(out.data(), &v, std::min<std::size_t>(out.size(), 8));
    return;
  }
  std::fill(out.begin(), out.end(), std::byte{0});
}

void ABiu::bus_write_data(const mem::BusRequest& req,
                          std::span<const std::byte> in) {
  if (in_numa(req.addr)) {
    // Absorbed NUMA store: capture the data and forward it to firmware —
    // unless the reaction table filters this operation class out.
    const Reaction r = numa_table_[static_cast<unsigned>(classify(req.op))];
    if (r.forward) {
      FwdOp fwd{req.op, req.addr, static_cast<std::uint32_t>(in.size()), 0,
                std::vector<std::byte>(in.begin(), in.end())};
      numa_ops_.push(std::move(fwd));
      stats_.numa_forwards.inc();
    }
    return;
  }

  const mem::Addr off = req.addr - kNiuBase;
  if (off < ctrl_.sram(SramBank::kASram).size()) {
    ctrl_.sram(SramBank::kASram).write(off, in);
    stats_.sram_writes.inc();
    return;
  }
  if (off >= kExpressTxWindowOffset && off < kExpressRxWindowOffset) {
    const mem::Addr enc = off - kExpressTxWindowOffset;
    const unsigned q = static_cast<unsigned>(enc >> kExpressTxQueueShift) %
                       kNumTxQueues;
    const auto vdest =
        static_cast<std::uint8_t>((enc >> kExpressTxDestShift) & 0xFF);
    const auto extra =
        static_cast<std::uint8_t>((enc >> kExpressTxByteShift) & 0xFF);
    std::byte entry[8] = {};
    entry[0] = static_cast<std::byte>(vdest);
    entry[1] = static_cast<std::byte>(extra);
    std::memcpy(entry + 4, in.data(), std::min<std::size_t>(in.size(), 4));
    std::uint64_t packed = 0;
    std::memcpy(&packed, entry, 8);
    stats_.express_stores.inc();
    sim::spawn(ctrl_.express_tx_push(q, packed));
    return;
  }
  if (off >= kPtrWindowOffset && off < kSysRegWindowOffset) {
    const mem::Addr enc = off - kPtrWindowOffset;
    const auto kind = static_cast<PtrKind>((enc / 0x100) & 0x1);
    const unsigned q = static_cast<unsigned>((enc / 0x10) & 0xF);
    std::uint32_t value = 0;
    std::memcpy(&value, in.data(), std::min<std::size_t>(in.size(), 4));
    stats_.pointer_updates.inc();
    if (kind == PtrKind::kTxProducer) {
      ctrl_.tx_producer_update(q, static_cast<std::uint16_t>(value));
    } else {
      ctrl_.rx_consumer_update(q, static_cast<std::uint16_t>(value));
    }
    return;
  }
  if (off >= kSysRegWindowOffset && off < kNiuWindowSpan) {
    if (params_.ap_sysreg_access) {
      std::uint64_t v = 0;
      std::memcpy(&v, in.data(), std::min<std::size_t>(in.size(), 8));
      const auto reg = static_cast<SysReg>((off - kSysRegWindowOffset) / 8);
      ctrl_.write_reg(reg, v);
    }
    return;
  }
}

// --- Bus mastering (ApBusPort) ------------------------------------------------------

sim::Co<void> ABiu::master_read(mem::Addr addr, std::span<std::byte> out) {
  std::size_t done = 0;
  while (done < out.size()) {
    const mem::Addr a = addr + done;
    const std::size_t remaining = out.size() - done;
    mem::BusRequest req;
    if (a % mem::kLineBytes == 0 && remaining >= mem::kLineBytes) {
      if (bus_.params().fastpath && remaining >= 2 * mem::kLineBytes) {
        // Tenure coalescing: fold as many consecutive line reads as can be
        // proven interference-free into one kernel event. Falls back to
        // per-tenure transactions (below) when ineligible.
        const std::size_t n = co_await bus_.transact_burst(
            bus_id_, a, remaining / mem::kLineBytes, out.data() + done,
            nullptr, false);
        if (n > 0) {
          stats_.master_reads.inc(n);
          done += n * mem::kLineBytes;
          continue;
        }
      }
      req.op = mem::BusOp::kRead;
      req.size = mem::kLineBytes;
    } else {
      req.op = mem::BusOp::kReadSingle;
      const std::size_t to_boundary = 8 - (a % 8);
      req.size = static_cast<std::uint32_t>(
          std::min<std::size_t>({remaining, to_boundary, 8}));
    }
    req.addr = a;
    req.rdata = out.data() + done;
    co_await bus_.transact_retry(bus_id_, req);
    stats_.master_reads.inc();
    done += req.size;
  }
}

sim::Co<void> ABiu::master_write(mem::Addr addr,
                                 std::span<const std::byte> in) {
  std::size_t done = 0;
  while (done < in.size()) {
    const mem::Addr a = addr + done;
    const std::size_t remaining = in.size() - done;
    mem::BusRequest req;
    if (a % mem::kLineBytes == 0 && remaining >= mem::kLineBytes) {
      if (bus_.params().fastpath && remaining >= 2 * mem::kLineBytes) {
        const std::size_t n = co_await bus_.transact_burst(
            bus_id_, a, remaining / mem::kLineBytes, nullptr,
            in.data() + done, false);
        if (n > 0) {
          stats_.master_writes.inc(n);
          done += n * mem::kLineBytes;
          continue;
        }
      }
      req.op = mem::BusOp::kWriteLine;
      req.size = mem::kLineBytes;
    } else {
      req.op = mem::BusOp::kWriteSingle;
      const std::size_t to_boundary = 8 - (a % 8);
      req.size = static_cast<std::uint32_t>(
          std::min<std::size_t>({remaining, to_boundary, 8}));
    }
    req.addr = a;
    req.wdata = in.data() + done;
    co_await bus_.transact_retry(bus_id_, req);
    stats_.master_writes.inc();
    done += req.size;
  }
}

sim::Co<void> ABiu::master_kill(mem::Addr line) {
  mem::BusRequest req;
  req.op = mem::BusOp::kKill;
  req.addr = mem::line_base(line);
  req.size = 0;
  co_await bus_.transact_retry(bus_id_, req);
  stats_.master_kills.inc();
}

sim::Co<void> ABiu::master_flush(mem::Addr line) {
  mem::BusRequest req;
  req.op = mem::BusOp::kFlush;
  req.addr = mem::line_base(line);
  req.size = mem::kLineBytes;
  co_await bus_.transact_retry(bus_id_, req);
}

void ABiu::supply_load(std::uint32_t tag, std::span<const std::byte> data) {
  for (auto& [line, pl] : numa_pending_) {
    if (pl.token == tag) {
      pl.ready = true;
      std::memcpy(pl.data.data(), data.data(),
                  std::min<std::size_t>(data.size(), mem::kLineBytes));
      return;
    }
  }
  // Late supply for a load that is no longer pending: drop it.
}

}  // namespace sv::niu

#include "niu/niu.hpp"

namespace sv::niu {

Niu::Niu(sim::Kernel& kernel, const std::string& name, sim::NodeId node,
         mem::MemBus& ap_bus, net::Network& network, Params params) {
  asram_ = std::make_unique<mem::DualPortedSram>(kernel, name + ".aSRAM",
                                                 params.asram);
  ssram_ = std::make_unique<mem::DualPortedSram>(kernel, name + ".sSRAM",
                                                 params.ssram);
  cls_ = std::make_unique<mem::ClsSram>(kernel, name + ".clsSRAM",
                                        params.cls);
  ctrl_ = std::make_unique<Ctrl>(kernel, name + ".CTRL", node, params.ctrl,
                                 *asram_, *ssram_, *cls_);
  abiu_ = std::make_unique<ABiu>(kernel, name + ".aBIU", *ctrl_, ap_bus,
                                 params.abiu);
  sbiu_ = std::make_unique<SBiu>(kernel, name + ".sBIU", *ctrl_, *abiu_,
                                 params.sbiu);
  txu_ = std::make_unique<TxU>(kernel, name + ".TxU", *ctrl_, params.txu);
  rxu_ = std::make_unique<RxU>(kernel, name + ".RxU", *ctrl_, network,
                               params.rxu);
  ctrl_->bind(abiu_.get(), &network);
}

void Niu::start() {
  ctrl_->start();
  txu_->start();
  rxu_->start();
}

}  // namespace sv::niu

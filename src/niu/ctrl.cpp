#include "niu/ctrl.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

#include "ckpt/stats_io.hpp"
#include "niu/block_ops.hpp"

namespace sv::niu {

namespace {

const char* cmd_name(CmdOp op) {
  switch (op) {
    case CmdOp::kWriteSram: return "WriteSram";
    case CmdOp::kWriteApDram: return "WriteApDram";
    case CmdOp::kReadApDram: return "ReadApDram";
    case CmdOp::kSendMessage: return "SendMessage";
    case CmdOp::kWriteClsState: return "WriteClsState";
    case CmdOp::kBusKill: return "BusKill";
    case CmdOp::kBusFlush: return "BusFlush";
    case CmdOp::kSupplyLoad: return "SupplyLoad";
    case CmdOp::kBlockRead: return "BlockRead";
    case CmdOp::kBlockTx: return "BlockTx";
    case CmdOp::kBlockXfer: return "BlockXfer";
    case CmdOp::kBlockDiffTx: return "BlockDiffTx";
    case CmdOp::kCopySram: return "CopySram";
    case CmdOp::kNotifyLocal: return "NotifyLocal";
    case CmdOp::kWriteReg: return "WriteReg";
  }
  return "Cmd?";
}

}  // namespace

Ctrl::Ctrl(sim::Kernel& kernel, std::string name, sim::NodeId node,
           Params params, mem::DualPortedSram& asram,
           mem::DualPortedSram& ssram, mem::ClsSram& cls)
    : sim::SimObject(kernel, std::move(name)),
      node_(node),
      params_(params),
      asram_(asram),
      ssram_(ssram),
      cls_(cls),
      cmds_drained_(kernel),
      cmd_progress_(kernel),
      ibus_(kernel, 1),
      net_port_(kernel, 1),
      tx_work_(kernel),
      rx_arrival_(kernel),
      queue_space_(kernel),
      sp_intr_(kernel),
      log_(kernel, this->name()) {
  for (auto& c : local_cmds_) {
    c = std::make_unique<sim::Channel<Command>>(kernel);
  }
  remote_cmds_ = std::make_unique<sim::Channel<Command>>(kernel);
  blocks_ = std::make_unique<BlockEngines>(*this);
  txq_depth_track_.fill(trace::kNoTrack);
  rxq_depth_track_.fill(trace::kNoTrack);
  rxq_res_track_.fill(trace::kNoTrack);
}

// --- Tracing -----------------------------------------------------------------

trace::Tracer* Ctrl::tracing() const {
  trace::Tracer* tr = kernel_.tracer();
  return (tr != nullptr && tr->enabled()) ? tr : nullptr;
}

trace::TrackId Ctrl::trace_lane(trace::TrackId& cache, std::string lane,
                                std::string_view category,
                                bool counter) const {
  if (cache == trace::kNoTrack) {
    const std::string& n = name();
    const std::string_view process =
        std::string_view(n).substr(0, n.find('.'));
    cache = kernel_.tracer()->track(process, lane, category, counter);
  }
  return cache;
}

void Ctrl::trace_tx_depth(unsigned q) {
  if (trace::Tracer* tr = tracing()) {
    tr->counter(trace_lane(txq_depth_track_[q],
                           "txq" + std::to_string(q), "queue",
                           /*counter=*/true),
                now(), txq_[q].occupancy());
  }
}

void Ctrl::trace_rx_depth(unsigned q) {
  if (trace::Tracer* tr = tracing()) {
    tr->counter(trace_lane(rxq_depth_track_[q],
                           "rxq" + std::to_string(q), "queue",
                           /*counter=*/true),
                now(), rxq_[q].occupancy());
  }
}

void Ctrl::trace_rx_consumed(unsigned q, unsigned count) {
  auto& resident = rx_resident_[q];
  trace::Tracer* tr = tracing();
  while (count > 0 && !resident.empty()) {
    const RxResident r = resident.front();
    resident.pop_front();
    --count;
    if (tr != nullptr) {
      tr->span(trace_lane(rxq_res_track_[q],
                          "rxq" + std::to_string(q) + ".res", "queue"),
               "resident", r.since, now(), r.flow);
    }
  }
}

Ctrl::~Ctrl() = default;

void Ctrl::bind(ApBusPort* ap_port, net::Network* network) {
  ap_port_ = ap_port;
  network_ = network;
}

void Ctrl::start() {
  if (started_) {
    throw std::logic_error(name() + ": started twice");
  }
  if (ap_port_ == nullptr || network_ == nullptr) {
    throw std::logic_error(name() + ": start() before bind()");
  }
  started_ = true;
  for (auto& c : local_cmds_) {
    sim::spawn(command_loop(*c, stats_.cmds_local));
  }
  sim::spawn(command_loop(*remote_cmds_, stats_.cmds_remote));
}

// --- IBus --------------------------------------------------------------------

sim::Co<void> Ctrl::ibus_access(SramBank bank, std::uint32_t bytes) {
  co_await ibus_.acquire();
  const sim::Tick t0 = now();
  co_await sram(bank).access(mem::DualPortedSram::Port::kIBus, bytes);
  stats_.ibus_busy.add_busy(now() - t0);
  if (trace::Tracer* tr = tracing()) {
    // Span sum mirrors ibus_busy exactly (the semaphore prevents overlap).
    tr->span(trace_lane(ibus_track_, "NIU.IBus", "niu"), "ibus", t0, now());
  }
  ibus_.release();
}

sim::Co<void> Ctrl::write_shadow(mem::Addr offset, std::uint32_t value) {
  co_await ibus_access(SramBank::kASram, 4);
  asram_.write_scalar<std::uint32_t>(offset, value);
}

// --- Pointer interface ----------------------------------------------------------

void Ctrl::tx_producer_update(unsigned q, std::uint16_t value) {
  TxQueueState& t = txq_.at(q);
  if (!t.enabled || t.shutdown) {
    return;
  }
  // The new producer may not move backwards or claim more slots than exist.
  const std::uint16_t advance = static_cast<std::uint16_t>(value - t.producer);
  const std::uint16_t new_occupancy =
      static_cast<std::uint16_t>(value - t.consumer);
  if (advance > t.slots || new_occupancy > t.slots) {
    shutdown_tx_queue(q);
    return;
  }
  t.producer = value;
  trace_tx_depth(q);
  tx_work_.pulse();
}

void Ctrl::rx_consumer_update(unsigned q, std::uint16_t value) {
  RxQueueState& r = rxq_.at(q);
  if (!r.enabled) {
    return;
  }
  const std::uint16_t advance = static_cast<std::uint16_t>(value - r.consumer);
  if (advance > r.occupancy()) {
    return;  // bogus update: ignore (cannot free slots that are not used)
  }
  r.consumer = value;
  trace_rx_consumed(q, advance);
  trace_rx_depth(q);
  queue_space_.pulse();
}

// --- Express engines -------------------------------------------------------------

sim::Co<void> Ctrl::express_tx_push(unsigned q, std::uint64_t entry) {
  TxQueueState& t = txq_.at(q);
  if (!t.enabled || t.shutdown || !t.express) {
    co_return;
  }
  while (t.full()) {
    co_await queue_space_;
  }
  const std::uint32_t slot = t.slot_addr(t.producer);
  co_await ibus_access(t.bank, kExpressSlotBytes);
  sram(t.bank).write_scalar<std::uint64_t>(slot, entry);
  ++t.producer;
  stats_.express_pushed.inc();
  trace_tx_depth(q);
  tx_work_.pulse();
}

std::uint64_t Ctrl::express_rx_pop(unsigned q) {
  RxQueueState& r = rxq_.at(q);
  if (!r.enabled || !r.express || r.empty()) {
    return kExpressEmpty;
  }
  const std::uint32_t slot = r.slot_addr(r.consumer);
  const auto entry = sram(r.bank).read_scalar<std::uint64_t>(slot);
  ++r.consumer;
  stats_.express_popped.inc();
  trace_rx_consumed(q, 1);
  trace_rx_depth(q);
  queue_space_.pulse();
  return entry;
}

// --- Translation and protection ------------------------------------------------------

sim::Co<std::optional<XlatEntry>> Ctrl::translate(std::uint16_t and_mask,
                                                  std::uint16_t or_mask,
                                                  std::uint16_t vdest) {
  stats_.xlat_lookups.inc();
  const std::uint16_t idx = static_cast<std::uint16_t>(
      (vdest & and_mask) | or_mask);
  if (idx >= params_.xlat_entries) {
    co_return std::nullopt;
  }
  co_await ibus_access(SramBank::kSSram, XlatEntry::kBytes);
  std::byte raw[XlatEntry::kBytes];
  ssram_.read(params_.xlat_base + idx * XlatEntry::kBytes, raw);
  const XlatEntry e = XlatEntry::decode(raw);
  if (!e.valid) {
    co_return std::nullopt;
  }
  co_return e;
}

void Ctrl::shutdown_tx_queue(unsigned q) {
  txq_.at(q).shutdown = true;
  stats_.protection_violations.inc();
  log_.warn("tx queue ", q, " shut down (protection violation)");
  raise_interrupt(kIntrProtection);
}

// --- Transmit path ---------------------------------------------------------------------

int Ctrl::pick_tx_queue() {
  for (int cls = kNumPriorityClasses - 1; cls >= 0; --cls) {
    unsigned& rr = tx_rr_[cls];
    for (unsigned k = 0; k < kNumTxQueues; ++k) {
      const unsigned q = (rr + k) % kNumTxQueues;
      const TxQueueState& t = txq_[q];
      if (t.enabled && !t.shutdown && t.priority_class == cls && !t.empty()) {
        rr = (q + 1) % kNumTxQueues;
        return static_cast<int>(q);
      }
    }
  }
  return -1;
}

sim::Co<void> Ctrl::tx_launch(unsigned q) {
  TxQueueState& t = txq_.at(q);
  if (!t.enabled || t.shutdown || t.empty()) {
    co_return;
  }
  const sim::Tick launch_start = now();
  const std::uint32_t slot = t.slot_addr(t.consumer);
  net::Packet pkt;
  pkt.src = node_;

  if (t.express) {
    co_await ibus_access(t.bank, kExpressSlotBytes);
    std::byte entry[kExpressSlotBytes];
    sram(t.bank).read(slot, entry);
    const auto vdest = static_cast<std::uint16_t>(entry[0]);
    const auto xe = co_await translate(t.and_mask, t.or_mask, vdest);
    if (!xe) {
      shutdown_tx_queue(q);
      co_return;
    }
    pkt.dest = xe->phys_node;
    pkt.dest_queue = xe->logical_queue;
    pkt.priority = xe->priority;
    pkt.payload.assign(entry, entry + kExpressSlotBytes);
  } else {
    co_await ibus_access(t.bank, kBasicHeaderBytes);
    std::byte hdr[kBasicHeaderBytes];
    sram(t.bank).read(slot, hdr);
    const MsgDescriptor d = MsgDescriptor::decode(hdr);
    if (d.length > kBasicMaxData ||
        d.length + kBasicHeaderBytes > t.slot_bytes) {
      shutdown_tx_queue(q);
      co_return;
    }
    if (d.length > 0) {
      co_await ibus_access(t.bank, d.length);
      pkt.payload.resize(d.length);
      sram(t.bank).read(slot + kBasicHeaderBytes, pkt.payload);
    }

    if (d.raw()) {
      if (!t.raw_allowed) {
        shutdown_tx_queue(q);
        co_return;
      }
      pkt.dest = d.vdest;
      pkt.dest_queue = static_cast<net::QueueId>(d.aux & 0xFFFF);
      pkt.priority = (d.flags & MsgDescriptor::kFlagHighPriority) != 0
                         ? net::kPriorityHigh
                         : net::kPriorityLow;
    } else {
      const auto xe = co_await translate(t.and_mask, t.or_mask, d.vdest);
      if (!xe) {
        shutdown_tx_queue(q);
        co_return;
      }
      pkt.dest = xe->phys_node;
      pkt.dest_queue = xe->logical_queue;
      pkt.priority = xe->priority;
    }

    if (d.tagon()) {
      const std::uint32_t tb = d.tagon_bytes();
      if (pkt.payload.size() + tb > net::kMaxPayloadBytes) {
        shutdown_tx_queue(q);
        co_return;
      }
      const SramBank tbank =
          (d.flags & MsgDescriptor::kFlagTagOnSSram) != 0 ? SramBank::kSSram
                                                          : t.bank;
      co_await ibus_access(tbank, tb);
      const std::size_t off = pkt.payload.size();
      pkt.payload.resize(off + tb);
      sram(tbank).read(d.aux,
                       std::span<std::byte>(pkt.payload).subspan(off, tb));
    }
  }

  if (pkt.dest >= network_->num_nodes()) {
    shutdown_tx_queue(q);
    co_return;
  }

  co_await inject(std::move(pkt));
  stats_.msgs_launched.inc();
  ++t.consumer;
  if (trace::Tracer* tr = tracing()) {
    tr->span(trace_lane(txu_track_, "NIU.TxU", "niu"),
             "launch q" + std::to_string(q), launch_start, now());
  }
  trace_tx_depth(q);
  co_await write_shadow(tx_consumer_shadow(q), t.consumer);
  queue_space_.pulse();
}

sim::Co<void> Ctrl::inject(net::Packet pkt) {
  trace::Tracer* tr = tracing();
  sim::Tick t0 = 0;
  std::uint64_t flow = 0;
  if (tr != nullptr) {
    // All NIU-originated packets funnel through here: assign the flow id
    // that links this send to its link/router/deliver hops downstream.
    // Namespaced by node (bit 62 keeps it disjoint from network-assigned
    // serials) so the id depends only on this node's own send order, never
    // on how sends from different nodes interleave.
    if (pkt.serial == 0) {
      pkt.serial = (std::uint64_t{1} << 62) |
                   (static_cast<std::uint64_t>(node_) << 40) | ++flow_seq_;
    }
    flow = pkt.serial;
    t0 = now();
  }
  const sim::NodeId dest = pkt.dest;
  co_await net_port_.acquire();
  co_await network_->inject(std::move(pkt));
  net_port_.release();
  if (tr != nullptr) {
    tr->span(trace_lane(inject_track_, "NIU.inject", "niu"),
             "inject>n" + std::to_string(dest), t0, now(), flow);
  }
}

// --- Receive path ----------------------------------------------------------------------

int Ctrl::rx_lookup(net::QueueId logical) const {
  for (unsigned i = 0; i < kNumRxQueues; ++i) {
    if (rxq_[i].enabled && rxq_[i].logical == logical) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

sim::Co<void> Ctrl::rx_enqueue(unsigned qidx, const RxDescriptor& desc,
                               std::span<const std::byte> data,
                               std::uint64_t flow) {
  RxQueueState& r = rxq_.at(qidx);
  assert(!r.full());
  const std::uint32_t slot = r.slot_addr(r.producer);
  if (r.express) {
    // Reformat the 8-byte express tx entry into the rx entry the aP reads:
    // [0]=valid, [1]=source node, [2]=extra byte, [4..7]=data word.
    std::byte entry[kExpressSlotBytes] = {};
    entry[0] = std::byte{1};
    entry[1] = static_cast<std::byte>(desc.src_node & 0xFF);
    entry[2] = data.size() > 1 ? data[1] : std::byte{0};
    for (std::size_t i = 4; i < 8 && i < data.size(); ++i) {
      entry[i] = data[i];
    }
    co_await ibus_access(r.bank, kExpressSlotBytes);
    sram(r.bank).write(slot, entry);
  } else {
    const auto len = static_cast<std::uint8_t>(
        std::min<std::size_t>(data.size(), r.slot_bytes - kBasicHeaderBytes));
    RxDescriptor d = desc;
    d.length = len;
    std::byte hdr[kBasicHeaderBytes];
    d.encode(hdr);
    co_await ibus_access(r.bank,
                         kBasicHeaderBytes + static_cast<std::uint32_t>(len));
    sram(r.bank).write(slot, hdr);
    if (len > 0) {
      sram(r.bank).write(slot + kBasicHeaderBytes, data.first(len));
    }
  }
  ++r.producer;
  if (tracing() != nullptr && flow != 0) {
    rx_resident_[qidx].push_back(RxResident{flow, now()});
  }
  trace_rx_depth(qidx);
  co_await write_shadow(rx_producer_shadow(qidx), r.producer);
  if (r.interrupt_on_arrival) {
    raise_interrupt(kIntrRxArrival);
  }
  rx_arrival_.pulse();
}

sim::Co<bool> Ctrl::divert_to_miss() {
  RxQueueState& miss = rxq_[kMissRxQueue];
  if (!miss.enabled) {
    co_return false;
  }
  if (miss.full()) {
    if (miss.full_policy != RxFullPolicy::kHold) {
      co_return false;
    }
    const sim::Tick t0 = now();
    while (miss.full()) {
      co_await queue_space_;
    }
    stats_.rx_held_ps.inc(now() - t0);
  }
  co_return true;
}

sim::Co<void> Ctrl::rx_deliver(net::Packet pkt) {
  stats_.msgs_received.inc();
  const sim::Tick rx_start = now();
  const std::uint64_t flow = pkt.serial;
  trace::Tracer* tr = tracing();
  const auto rx_span = [&](const char* what) {
    if (tr != nullptr) {
      tr->span(trace_lane(rxu_track_, "NIU.RxU", "niu"), what, rx_start,
               now(), flow);
    }
  };

  if (pkt.dest_queue == net::kRemoteCmdQueue) {
    try {
      post_remote_command(decode_remote(pkt.payload));
    } catch (const std::invalid_argument&) {
      // Malformed remote command: drop it, like hardware would, and count.
      stats_.rx_dropped.inc();
      log_.warn("dropped malformed remote command packet from node ",
                pkt.src);
    }
    rx_span("rx cmd");
    co_return;
  }

  RxDescriptor desc;
  desc.src_node = static_cast<std::uint16_t>(pkt.src);
  desc.logical = pkt.dest_queue;

  int qi = rx_lookup(pkt.dest_queue);
  if (qi < 0) {
    // Rx-queue cache miss: divert to the miss/overflow queue for firmware.
    stats_.rx_misses.inc();
    raise_interrupt(kIntrRxMiss);
    const bool ok = co_await divert_to_miss();
    if (!ok) {
      stats_.rx_dropped.inc();
      rx_span("rx drop");
      co_return;
    }
    co_await rx_enqueue(kMissRxQueue, desc, pkt.payload, flow);
    rx_span("rx miss");
    co_return;
  }

  RxQueueState& r = rxq_[static_cast<unsigned>(qi)];
  if (r.full()) {
    switch (r.full_policy) {
      case RxFullPolicy::kDrop:
        stats_.rx_dropped.inc();
        rx_span("rx drop");
        co_return;
      case RxFullPolicy::kDivert: {
        stats_.rx_misses.inc();
        raise_interrupt(kIntrRxMiss);
        const bool ok = qi != static_cast<int>(kMissRxQueue) &&
                        co_await divert_to_miss();
        if (!ok) {
          stats_.rx_dropped.inc();
          rx_span("rx drop");
          co_return;
        }
        co_await rx_enqueue(kMissRxQueue, desc, pkt.payload, flow);
        rx_span("rx miss");
        co_return;
      }
      case RxFullPolicy::kHold: {
        // Stall the receive path until the aP frees a slot. This blocks the
        // RxU (and, through credits, the network) — the deadlock-prone
        // option the paper warns about.
        const sim::Tick t0 = now();
        while (r.full()) {
          co_await queue_space_;
        }
        stats_.rx_held_ps.inc(now() - t0);
        break;
      }
    }
  }
  stats_.rx_hits.inc();
  co_await rx_enqueue(static_cast<unsigned>(qi), desc, pkt.payload, flow);
  rx_span("rx");
}

sim::Co<void> Ctrl::notify_local(net::QueueId logical,
                                 std::span<const std::byte> data,
                                 std::uint16_t src_node) {
  assert(logical != net::kRemoteCmdQueue);
  net::Packet pkt;
  pkt.dest = node_;
  pkt.src = src_node;
  pkt.dest_queue = logical;
  pkt.payload.assign(data.begin(), data.end());
  co_await rx_deliver(std::move(pkt));
}

// --- Command machinery --------------------------------------------------------------------

void Ctrl::post_command(unsigned cmdq, Command cmd) {
  ++cmds_in_flight_;
  local_cmds_.at(cmdq)->push(std::move(cmd));
}

void Ctrl::post_remote_command(Command cmd) {
  ++cmds_in_flight_;
  remote_cmds_->push(std::move(cmd));
}

bool Ctrl::commands_idle() const {
  return cmds_in_flight_ == 0 && blocks_->outstanding() == 0;
}

namespace {
bool is_block_op(CmdOp op) {
  return op == CmdOp::kBlockRead || op == CmdOp::kBlockTx ||
         op == CmdOp::kBlockXfer || op == CmdOp::kBlockDiffTx;
}
}  // namespace

sim::Co<void> Ctrl::command_loop(sim::Channel<Command>& chan,
                                 sim::Counter& counter) {
  for (;;) {
    Command cmd = co_await chan.pop();
    co_await sim::delay(kernel_,
                        params_.clock.to_ticks(params_.cmd_dispatch_cycles));
    if (cmd.fence) {
      while (blocks_->outstanding() != 0) {
        co_await blocks_->drained();
      }
    }
    counter.inc();
    if (is_block_op(cmd.op)) {
      // Block operations run on the engines and complete out of order with
      // respect to this queue (paper section 4).
      blocks_->begin_op();
      sim::spawn(run_block_command(std::move(cmd)));
    } else {
      const sim::Tick exec_start = now();
      const CmdOp op = cmd.op;
      co_await execute(cmd);
      co_await finish_command(cmd);
      if (trace::Tracer* tr = tracing()) {
        tr->span(trace_lane(cmd_track_, "NIU.CTRL", "niu"), cmd_name(op),
                 exec_start, now());
      }
    }
    --cmds_in_flight_;
    cmd_progress_.pulse();
    if (commands_idle()) {
      cmds_drained_.pulse();
    }
  }
}

sim::Co<void> Ctrl::run_block_command(Command cmd) {
  const sim::Tick block_start = now();
  const CmdOp op = cmd.op;
  switch (cmd.op) {
    case CmdOp::kBlockRead:
      stats_.block_reads.inc();
      co_await blocks_->block_read(cmd);
      break;
    case CmdOp::kBlockTx:
      stats_.block_txs.inc();
      co_await blocks_->block_tx(cmd);
      break;
    case CmdOp::kBlockXfer:
      stats_.block_xfers.inc();
      co_await blocks_->block_xfer(cmd);
      break;
    case CmdOp::kBlockDiffTx:
      stats_.block_txs.inc();
      co_await blocks_->block_diff_tx(cmd);
      break;
    default:
      assert(false);
  }
  co_await finish_command(cmd);
  if (trace::Tracer* tr = tracing()) {
    tr->span(trace_lane(cmd_track_, "NIU.CTRL", "niu"), cmd_name(op),
             block_start, now());
  }
  blocks_->end_op();
  cmd_progress_.pulse();
  if (commands_idle()) {
    cmds_drained_.pulse();
  }
}

sim::Co<void> Ctrl::finish_command(const Command& cmd) {
  if (cmd.notify_queue == kNoNotify) {
    co_return;
  }
  std::byte payload[8] = {};
  std::memcpy(payload, &cmd.notify_tag, sizeof(cmd.notify_tag));
  co_await notify_local(cmd.notify_queue, payload,
                        static_cast<std::uint16_t>(node_));
  raise_interrupt(kIntrCmdComplete);
}

sim::Co<void> Ctrl::exec_immediate(Command cmd) {
  stats_.cmds_immediate.inc();
  if (is_block_op(cmd.op)) {
    blocks_->begin_op();
    co_await run_block_command(std::move(cmd));
    co_return;
  }
  co_await execute(cmd);
  co_await finish_command(cmd);
}

sim::Co<void> Ctrl::execute(Command cmd) {
  switch (cmd.op) {
    case CmdOp::kWriteSram: {
      co_await ibus_access(cmd.bank,
                           static_cast<std::uint32_t>(cmd.data.size()));
      sram(cmd.bank).write(cmd.sram_offset, cmd.data);
      break;
    }
    case CmdOp::kWriteApDram: {
      co_await ap_port_->master_write(cmd.addr, cmd.data);
      if (cmd.set_cls && cls_.covers(cmd.addr)) {
        co_await cls_.write_state_range(
            cmd.addr, static_cast<mem::Addr>(cmd.data.size()), cmd.cls_bits);
        ap_port_->cls_updated(cmd.addr,
                              static_cast<std::uint32_t>(cmd.data.size()));
      }
      if (cmd.chunk_notify) {
        std::byte note[12];
        const std::uint64_t a = cmd.addr;
        const auto l = static_cast<std::uint32_t>(cmd.data.size());
        std::memcpy(note, &a, 8);
        std::memcpy(note + 8, &l, 4);
        co_await notify_local(kChunkArrivalQueue, note, cmd.src_node);
      }
      break;
    }
    case CmdOp::kReadApDram: {
      std::vector<std::byte> buf(cmd.len);
      co_await ap_port_->master_read(cmd.addr, buf);
      co_await ibus_access(cmd.bank, cmd.len);
      sram(cmd.bank).write(cmd.sram_offset, buf);
      break;
    }
    case CmdOp::kSendMessage: {
      net::Packet pkt;
      pkt.src = node_;
      if (cmd.translate) {
        const auto xe = co_await translate(0xFFFF, 0, cmd.vdest);
        if (!xe) {
          log_.warn("kSendMessage translation failed, vdest=", cmd.vdest);
          break;
        }
        pkt.dest = xe->phys_node;
        pkt.dest_queue = xe->logical_queue;
        pkt.priority = xe->priority;
      } else {
        pkt.dest = cmd.dest_node;
        pkt.dest_queue = cmd.queue;
        pkt.priority = cmd.priority;
      }
      pkt.payload = cmd.data;
      if (cmd.attach_len > 0) {
        co_await ibus_access(cmd.bank, cmd.attach_len);
        const std::size_t off = pkt.payload.size();
        pkt.payload.resize(off + cmd.attach_len);
        sram(cmd.bank).read(cmd.sram_offset,
                            std::span<std::byte>(pkt.payload)
                                .subspan(off, cmd.attach_len));
      }
      if (pkt.payload.size() > net::kMaxPayloadBytes) {
        throw std::invalid_argument(name() + ": kSendMessage too large");
      }
      co_await inject(std::move(pkt));
      stats_.msgs_launched.inc();
      break;
    }
    case CmdOp::kWriteClsState: {
      co_await cls_.write_state_range(cmd.addr, cmd.len, cmd.cls_bits);
      ap_port_->cls_updated(cmd.addr, cmd.len);
      break;
    }
    case CmdOp::kBusKill: {
      co_await ap_port_->master_kill(cmd.addr);
      break;
    }
    case CmdOp::kBusFlush: {
      co_await ap_port_->master_flush(cmd.addr);
      break;
    }
    case CmdOp::kSupplyLoad: {
      ap_port_->supply_load(cmd.tag, cmd.data);
      break;
    }
    case CmdOp::kCopySram: {
      std::vector<std::byte> buf(cmd.len);
      co_await ibus_access(cmd.bank, cmd.len);
      sram(cmd.bank).read(cmd.sram_offset, buf);
      co_await ibus_access(cmd.bank2, cmd.len);
      sram(cmd.bank2).write(cmd.sram_offset2, buf);
      break;
    }
    case CmdOp::kNotifyLocal: {
      co_await notify_local(cmd.queue, cmd.data, cmd.src_node);
      break;
    }
    case CmdOp::kWriteReg: {
      write_reg(static_cast<SysReg>(cmd.reg), cmd.value);
      break;
    }
    case CmdOp::kBlockRead:
    case CmdOp::kBlockTx:
    case CmdOp::kBlockXfer:
    case CmdOp::kBlockDiffTx:
      assert(false && "block ops are dispatched by the command loop");
      break;
  }
}

// --- Registers and interrupts ------------------------------------------------------------

std::uint64_t Ctrl::read_reg(SysReg r) const {
  switch (r) {
    case SysReg::kTxPriority: {
      std::uint64_t v = 0;
      for (unsigned q = 0; q < kNumTxQueues; ++q) {
        v |= static_cast<std::uint64_t>(txq_[q].priority_class & 0x3)
             << (2 * q);
      }
      return v;
    }
    case SysReg::kInterruptStatus:
      return intr_status_;
    case SysReg::kInterruptEnable:
      return intr_enable_;
    case SysReg::kTranslationBase:
      return params_.xlat_base;
    case SysReg::kTranslationSize:
      return params_.xlat_entries;
    case SysReg::kShutdownStatus: {
      std::uint64_t v = 0;
      for (unsigned q = 0; q < kNumTxQueues; ++q) {
        if (txq_[q].shutdown) {
          v |= std::uint64_t{1} << q;
        }
      }
      return v;
    }
    case SysReg::kNodeId:
      return node_;
    case SysReg::kCount:
      break;
  }
  return 0;
}

void Ctrl::write_reg(SysReg r, std::uint64_t v) {
  switch (r) {
    case SysReg::kTxPriority:
      for (unsigned q = 0; q < kNumTxQueues; ++q) {
        txq_[q].priority_class =
            static_cast<std::uint8_t>((v >> (2 * q)) & 0x3);
      }
      tx_work_.pulse();  // re-arbitrate under the new priorities
      break;
    case SysReg::kInterruptStatus:
      clear_interrupts(v);
      break;
    case SysReg::kInterruptEnable:
      intr_enable_ = v;
      break;
    case SysReg::kTranslationBase:
      params_.xlat_base = static_cast<std::uint32_t>(v);
      break;
    case SysReg::kTranslationSize:
      params_.xlat_entries = static_cast<std::uint32_t>(v);
      break;
    case SysReg::kShutdownStatus:
      // Writing a bit re-enables the corresponding shut-down queue.
      for (unsigned q = 0; q < kNumTxQueues; ++q) {
        if ((v & (std::uint64_t{1} << q)) != 0) {
          txq_[q].shutdown = false;
        }
      }
      tx_work_.pulse();
      break;
    case SysReg::kNodeId:
    case SysReg::kCount:
      break;
  }
}

void Ctrl::raise_interrupt(std::uint64_t cause) {
  intr_status_ |= cause;
  if ((cause & intr_enable_) != 0) {
    sp_intr_.pulse();
  }
}

void Ctrl::clear_interrupts(std::uint64_t mask) { intr_status_ &= ~mask; }

void Ctrl::ckpt_save(ckpt::Writer& w) const {
  for (const TxQueueState& q : txq_) {
    w.b(q.enabled);
    w.b(q.shutdown);
    w.b(q.express);
    w.b(q.raw_allowed);
    w.b(q.translate);
    w.u8(static_cast<std::uint8_t>(q.bank));
    w.u32(q.base);
    w.u16(q.slots);
    w.u16(q.slot_bytes);
    w.u16(q.producer);
    w.u16(q.consumer);
    w.u16(q.and_mask);
    w.u16(q.or_mask);
    w.u8(q.priority_class);
  }
  for (const RxQueueState& q : rxq_) {
    w.b(q.enabled);
    w.b(q.express);
    w.b(q.interrupt_on_arrival);
    w.u8(static_cast<std::uint8_t>(q.bank));
    w.u32(q.base);
    w.u16(q.slots);
    w.u16(q.slot_bytes);
    w.u16(q.producer);
    w.u16(q.consumer);
    w.u8(static_cast<std::uint8_t>(q.full_policy));
    w.u16(q.logical);
  }
  for (const unsigned rr : tx_rr_) {
    w.u32(rr);
  }
  w.u64(flow_seq_);
  w.u32(cmds_in_flight_);
  w.u64(intr_status_);
  ckpt::save(w, stats_.msgs_launched);
  ckpt::save(w, stats_.msgs_received);
  ckpt::save(w, stats_.express_pushed);
  ckpt::save(w, stats_.express_popped);
  ckpt::save(w, stats_.rx_hits);
  ckpt::save(w, stats_.rx_misses);
  ckpt::save(w, stats_.rx_dropped);
  ckpt::save(w, stats_.rx_held_ps);
  ckpt::save(w, stats_.cmds_local);
  ckpt::save(w, stats_.cmds_remote);
  ckpt::save(w, stats_.cmds_immediate);
  ckpt::save(w, stats_.protection_violations);
  ckpt::save(w, stats_.xlat_lookups);
  ckpt::save(w, stats_.block_reads);
  ckpt::save(w, stats_.block_txs);
  ckpt::save(w, stats_.block_xfers);
  ckpt::save(w, stats_.ibus_busy);
}

}  // namespace sv::niu

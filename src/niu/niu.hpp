// The complete NIU card: CTRL + aBIU + sBIU + TxU/RxU + the three SRAM
// banks, assembled and wired (paper Figure 2).
#pragma once

#include <memory>

#include "mem/bus.hpp"
#include "mem/cls_sram.hpp"
#include "mem/sram.hpp"
#include "net/network.hpp"
#include "niu/abiu.hpp"
#include "niu/ctrl.hpp"
#include "niu/sbiu.hpp"
#include "niu/txu_rxu.hpp"

namespace sv::niu {

class Niu {
 public:
  struct Params {
    Ctrl::Params ctrl;
    ABiu::Params abiu;
    SBiu::Params sbiu;
    TxU::Params txu;
    RxU::Params rxu;
    mem::DualPortedSram::Params asram;
    mem::DualPortedSram::Params ssram;
    mem::ClsSram::Params cls;  // region must cover the node's S-COMA range

    Params() {
      cls.region_base = kScomaBase;
      cls.region_size = kScomaDefaultSize;
    }
  };

  Niu(sim::Kernel& kernel, const std::string& name, sim::NodeId node,
      mem::MemBus& ap_bus, net::Network& network, Params params);

  /// Spawn all NIU processes. Call once after construction.
  void start();

  [[nodiscard]] Ctrl& ctrl() { return *ctrl_; }
  [[nodiscard]] ABiu& abiu() { return *abiu_; }
  [[nodiscard]] SBiu& sbiu() { return *sbiu_; }
  [[nodiscard]] mem::DualPortedSram& asram() { return *asram_; }
  [[nodiscard]] mem::DualPortedSram& ssram() { return *ssram_; }
  [[nodiscard]] mem::DualPortedSram& sram_of(SramBank bank) {
    return bank == SramBank::kASram ? *asram_ : *ssram_;
  }
  [[nodiscard]] mem::ClsSram& cls() { return *cls_; }

 private:
  std::unique_ptr<mem::DualPortedSram> asram_;
  std::unique_ptr<mem::DualPortedSram> ssram_;
  std::unique_ptr<mem::ClsSram> cls_;
  std::unique_ptr<Ctrl> ctrl_;
  std::unique_ptr<ABiu> abiu_;
  std::unique_ptr<SBiu> sbiu_;
  std::unique_ptr<TxU> txu_;
  std::unique_ptr<RxU> rxu_;
};

}  // namespace sv::niu

// sBIU: the sP-side bus interface unit.
//
// In the real NIU the sP reaches CTRL, the SRAMs and the aBIU over its own
// 604 bus through this FPGA. The sP is the only master on that bus, so we
// model the sP bus as a constant-latency port: every sBIU operation charges
// a configurable number of sP-bus cycles and then performs the access. This
// preserves what the paper's evaluation cares about — firmware occupancy —
// without simulating a second snooping bus with a single master.
#pragma once

#include "niu/abiu.hpp"
#include "niu/command.hpp"
#include "niu/ctrl.hpp"
#include "sim/coro.hpp"

namespace sv::niu {

class SBiu : public sim::SimObject {
 public:
  struct Params {
    sim::Clock sp_bus_clock{15000};  // the sP's 60x bus also runs at 66 MHz
    sim::Cycles uncached_op_cycles = 3;  // one uncached load/store
    sim::Cycles sram_word_cycles = 1;    // per extra 8 bytes of sSRAM data
  };

  SBiu(sim::Kernel& kernel, std::string name, Ctrl& ctrl, ABiu& abiu,
       Params params);

  [[nodiscard]] Ctrl& ctrl() { return ctrl_; }
  [[nodiscard]] ABiu& abiu() { return abiu_; }

  // --- Immediate command interface (read/update CTRL state synchronously) ---
  sim::Co<void> immediate(Command cmd);
  sim::Co<std::uint64_t> read_reg(SysReg r);
  sim::Co<void> write_reg(SysReg r, std::uint64_t v);

  /// Read CTRL queue pointers (used by firmware polling loops).
  sim::Co<std::uint16_t> rx_producer(unsigned q);
  sim::Co<std::uint16_t> tx_consumer(unsigned q);
  sim::Co<void> rx_consumer_update(unsigned q, std::uint16_t v);
  sim::Co<void> tx_producer_update(unsigned q, std::uint16_t v);

  // --- Ordered local command queues ---
  sim::Co<void> post(unsigned cmdq, Command cmd);

  /// Read CTRL's command-queue status register (pending depth).
  sim::Co<std::size_t> cmd_depth(unsigned cmdq);

  // --- sSRAM access from the sP ---
  sim::Co<void> read_ssram(std::uint32_t offset, std::span<std::byte> out);
  sim::Co<void> write_ssram(std::uint32_t offset,
                            std::span<const std::byte> in);

  // --- aBIU-sBIU queues (the forwarded-operation path) ---
  [[nodiscard]] sim::Channel<FwdOp>& numa_ops() { return abiu_.numa_ops(); }
  [[nodiscard]] sim::Channel<FwdOp>& scoma_ops() { return abiu_.scoma_ops(); }

 private:
  sim::Co<void> cost(sim::Cycles cycles);

  Ctrl& ctrl_;
  ABiu& abiu_;
  Params params_;
};

}  // namespace sv::niu

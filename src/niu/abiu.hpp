// aBIU: the aP-side bus interface unit (an FPGA in the real NIU).
//
// The aBIU sits on the aP memory bus in the second processor slot. It
//   - responds to the memory-mapped NIU windows (aSRAM, Express Tx/Rx,
//     pointer updates, system registers),
//   - watches every aP bus operation: for the NUMA window it forwards
//     operations to sP firmware (retrying loads until firmware supplies the
//     data); for the S-COMA region it checks clsSRAM state through a
//     configurable reaction table and retries / forwards accordingly,
//   - acts as CTRL's bus master on the aP bus (block operations, remote
//     command writes, coherence kills/flushes).
//
// "Reconfigurable hardware" is modelled as runtime-configurable tables
// (the reaction table, the NUMA policy) — the simulator analogue of
// reprogramming the FPGA.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mem/bus.hpp"
#include "mem/cls_sram.hpp"
#include "niu/ctrl.hpp"
#include "niu/regs.hpp"
#include "sim/coro.hpp"
#include "sim/stats.hpp"

namespace sv::niu {

/// Coarse bus-operation classes used to index the reaction tables.
enum class OpClass : unsigned {
  kLoad = 0,       // kRead / kReadSingle
  kStore = 1,      // kRWITM / kKill (write-ownership) / kWriteSingle
  kWriteback = 2,  // kWriteLine (cache eviction)
  kCount = 3,
};

[[nodiscard]] OpClass classify(mem::BusOp op);

/// What the aBIU does with a checked aP bus operation.
struct Reaction {
  bool retry = false;    // ARTRY the operation
  bool forward = false;  // enqueue it for sP firmware
};

/// An aP bus operation forwarded to firmware (over the aBIU-sBIU queue).
struct FwdOp {
  mem::BusOp op = mem::BusOp::kRead;
  mem::Addr addr = 0;
  std::uint32_t size = 0;
  std::uint32_t token = 0;  // identifies a pending retried load
  std::vector<std::byte> wdata;  // captured store data (absorbed writes)
};

struct ABiuStats {
  sim::Counter sram_reads;
  sim::Counter sram_writes;
  sim::Counter express_stores;
  sim::Counter express_loads;
  sim::Counter express_empty_loads;
  sim::Counter pointer_updates;
  sim::Counter numa_forwards;
  sim::Counter numa_retries;
  sim::Counter scoma_checks;
  sim::Counter scoma_forwards;
  sim::Counter scoma_retries;
  sim::Counter master_reads;
  sim::Counter master_writes;
  sim::Counter master_kills;
  sim::Counter supplied_loads;
};

class ABiu : public sim::SimObject, public mem::BusDevice, public ApBusPort {
 public:
  struct Params {
    mem::Addr numa_base = kNumaBase;
    mem::Addr numa_size = kNumaSize;
    bool ap_sysreg_access = false;  // aP may touch system registers
    sim::Cycles sram_read_latency = 3;
    sim::Cycles sram_write_latency = 1;
    sim::Cycles express_rx_latency = 4;
    sim::Cycles regop_latency = 2;
    sim::Cycles supplied_load_latency = 2;
  };

  ABiu(sim::Kernel& kernel, std::string name, Ctrl& ctrl, mem::MemBus& bus,
       Params params);

  // --- BusDevice --------------------------------------------------------------
  [[nodiscard]] std::string_view device_name() const override {
    return name();
  }
  mem::SnoopResult bus_snoop(const mem::BusRequest& req) override;
  void bus_read_data(const mem::BusRequest& req,
                     std::span<std::byte> out) override;
  void bus_write_data(const mem::BusRequest& req,
                      std::span<const std::byte> in) override;
  void bus_observe(const mem::BusRequest& req,
                   const mem::BusResult& res) override;
  // Fast-path contract: NIU-window snoops are a pure decode of static
  // configuration; NUMA and S-COMA snoops mutate forwarding state, so any
  // address they cover is unstable. Observes only act on tracked or
  // reflected ranges.
  [[nodiscard]] bool bus_snoop_stable(
      const mem::BusRequest& req) const override;
  [[nodiscard]] bool bus_observe_trivial(
      const mem::BusRequest& req) const override;

  // --- ApBusPort (CTRL master services) ----------------------------------------
  sim::Co<void> master_read(mem::Addr addr,
                            std::span<std::byte> out) override;
  sim::Co<void> master_write(mem::Addr addr,
                             std::span<const std::byte> in) override;
  sim::Co<void> master_kill(mem::Addr line) override;
  sim::Co<void> master_flush(mem::Addr line) override;
  void supply_load(std::uint32_t tag,
                   std::span<const std::byte> data) override;
  void cls_updated(mem::Addr addr, std::uint32_t len) override;

  // --- Firmware-side interfaces (reached through the sBIU) -----------------------
  sim::Channel<FwdOp>& numa_ops() { return numa_ops_; }
  sim::Channel<FwdOp>& scoma_ops() { return scoma_ops_; }

  /// Firmware signals that the S-COMA transaction for `line` is complete;
  /// further misses on that line may be forwarded again.
  void scoma_complete(mem::Addr line);

  // --- Hardware miss send (paper section 5, "Extending Default
  // Mechanisms": "the aBIU can be modified to send a message to the home
  // site directly, rather than composing a message to the queue serviced
  // by the local sP firmware"). The protocol installs a composer — the
  // simulator analogue of reprogramming the FPGA with the protocol's
  // message format — and the aBIU injects the request itself, cutting the
  // local sP out of the miss path entirely.
  using MissComposer = std::function<net::Packet(const FwdOp&)>;
  void set_hw_miss_send(MissComposer composer) {
    hw_miss_composer_ = std::move(composer);
  }
  [[nodiscard]] bool hw_miss_send_enabled() const {
    return static_cast<bool>(hw_miss_composer_);
  }

  // --- Write tracking for diff-ing hardware (paper section 5:
  // "StarT-Voyager's clsSRAM can be used to track modifications at the
  // cache-line granularity, thus reducing the amount of diff-ing
  // required"). Writes (and write-intent bus operations) to a tracked
  // range OR kClsDirty into the line's cls state; the kBlockDiffTx block
  // engine sends only dirty lines and clears the bits. The range must lie
  // inside the clsSRAM-covered region and is initialized to ReadWrite.
  static constexpr std::uint8_t kClsDirty = 0x8;
  void enable_write_tracking(mem::Addr base, mem::Addr size);

  /// Reconfigure the S-COMA reaction table entry for (op class, cls bits).
  void set_scoma_reaction(OpClass cls, std::uint8_t bits, Reaction r);
  [[nodiscard]] Reaction scoma_reaction(OpClass cls, std::uint8_t bits) const;

  /// Reconfigure the NUMA policy per op class.
  void set_numa_reaction(OpClass cls, Reaction r);

  // --- Reflective memory (paper section 5, "Extending Default Mechanisms") --
  /// Watch writes to [base, base+size) of ordinary DRAM. In firmware mode
  /// captured writes are pushed to reflect_ops() for the sP; in hardware
  /// mode the aBIU itself emits remote kWriteApDram commands to each peer
  /// (the all-hardware variant the paper sketches).
  struct ReflectPeer {
    sim::NodeId node;
    mem::Addr remote_base;
  };
  void add_reflect_range(mem::Addr base, mem::Addr size, bool hw_mode,
                         std::vector<ReflectPeer> peers);
  sim::Channel<FwdOp>& reflect_ops() { return reflect_ops_; }

  [[nodiscard]] ABiuStats& stats() { return stats_; }
  [[nodiscard]] const Params& params() const { return params_; }

  /// S-COMA default cls-bit encodings (the firmware protocol's choice).
  enum ClsState : std::uint8_t {
    kClsInvalid = 0,
    kClsReadOnly = 1,
    kClsReadWrite = 2,
    kClsPending = 3,
  };

 private:
  [[nodiscard]] bool in_niu_window(mem::Addr a) const;
  [[nodiscard]] bool in_numa(mem::Addr a) const;
  [[nodiscard]] bool in_tracked(mem::Addr a) const;
  mem::SnoopResult snoop_niu_window(const mem::BusRequest& req);
  mem::SnoopResult snoop_numa(const mem::BusRequest& req);
  mem::SnoopResult snoop_scoma(const mem::BusRequest& req);

  struct PendingLoad {
    std::uint32_t token = 0;
    bool ready = false;
    std::array<std::byte, mem::kLineBytes> data{};
  };

  Ctrl& ctrl_;
  mem::MemBus& bus_;
  int bus_id_;
  Params params_;

  struct ReflectRange {
    mem::Addr base = 0;
    mem::Addr size = 0;
    bool hw_mode = false;
    std::vector<ReflectPeer> peers;
  };

  sim::Co<void> hw_reflect(const ReflectRange& range, mem::Addr addr,
                           std::vector<std::byte> data);

  sim::Co<void> hw_miss_send(net::Packet pkt);

  sim::Channel<FwdOp> numa_ops_;
  sim::Channel<FwdOp> scoma_ops_;
  sim::Channel<FwdOp> reflect_ops_;
  std::vector<ReflectRange> reflect_ranges_;
  MissComposer hw_miss_composer_;
  struct TrackRange {
    mem::Addr base;
    mem::Addr size;
  };
  std::vector<TrackRange> track_ranges_;

  std::unordered_map<mem::Addr, PendingLoad> numa_pending_;  // by line
  std::unordered_set<mem::Addr> scoma_pending_;              // by line
  std::uint32_t next_token_ = 1;

  Reaction numa_table_[static_cast<unsigned>(OpClass::kCount)];
  Reaction scoma_table_[static_cast<unsigned>(OpClass::kCount)][16];

  ABiuStats stats_;
};

}  // namespace sv::niu

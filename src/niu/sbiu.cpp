#include "niu/sbiu.hpp"

namespace sv::niu {

SBiu::SBiu(sim::Kernel& kernel, std::string name, Ctrl& ctrl, ABiu& abiu,
           Params params)
    : sim::SimObject(kernel, std::move(name)),
      ctrl_(ctrl),
      abiu_(abiu),
      params_(params) {}

sim::Co<void> SBiu::cost(sim::Cycles cycles) {
  co_await sim::delay(kernel_, params_.sp_bus_clock.to_ticks(cycles));
}

sim::Co<void> SBiu::immediate(Command cmd) {
  co_await cost(params_.uncached_op_cycles);
  co_await ctrl_.exec_immediate(std::move(cmd));
}

sim::Co<std::uint64_t> SBiu::read_reg(SysReg r) {
  co_await cost(params_.uncached_op_cycles);
  co_return ctrl_.read_reg(r);
}

sim::Co<void> SBiu::write_reg(SysReg r, std::uint64_t v) {
  co_await cost(params_.uncached_op_cycles);
  ctrl_.write_reg(r, v);
}

sim::Co<std::uint16_t> SBiu::rx_producer(unsigned q) {
  co_await cost(params_.uncached_op_cycles);
  co_return ctrl_.rxq(q).producer;
}

sim::Co<std::uint16_t> SBiu::tx_consumer(unsigned q) {
  co_await cost(params_.uncached_op_cycles);
  co_return ctrl_.txq(q).consumer;
}

sim::Co<void> SBiu::rx_consumer_update(unsigned q, std::uint16_t v) {
  co_await cost(params_.uncached_op_cycles);
  ctrl_.rx_consumer_update(q, v);
}

sim::Co<void> SBiu::tx_producer_update(unsigned q, std::uint16_t v) {
  co_await cost(params_.uncached_op_cycles);
  ctrl_.tx_producer_update(q, v);
}

sim::Co<void> SBiu::post(unsigned cmdq, Command cmd) {
  co_await cost(params_.uncached_op_cycles);
  ctrl_.post_command(cmdq, std::move(cmd));
}

sim::Co<std::size_t> SBiu::cmd_depth(unsigned cmdq) {
  co_await cost(params_.uncached_op_cycles);
  co_return ctrl_.pending_commands(cmdq);
}

sim::Co<void> SBiu::read_ssram(std::uint32_t offset,
                               std::span<std::byte> out) {
  co_await cost(params_.uncached_op_cycles +
                params_.sram_word_cycles *
                    static_cast<sim::Cycles>((out.size() + 7) / 8));
  co_await ctrl_.sram(SramBank::kSSram)
      .access(mem::DualPortedSram::Port::kBus,
              static_cast<std::uint32_t>(out.size()));
  ctrl_.sram(SramBank::kSSram).read(offset, out);
}

sim::Co<void> SBiu::write_ssram(std::uint32_t offset,
                                std::span<const std::byte> in) {
  co_await cost(params_.uncached_op_cycles +
                params_.sram_word_cycles *
                    static_cast<sim::Cycles>((in.size() + 7) / 8));
  co_await ctrl_.sram(SramBank::kSSram)
      .access(mem::DualPortedSram::Port::kBus,
              static_cast<std::uint32_t>(in.size()));
  ctrl_.sram(SramBank::kSSram).write(offset, in);
}

}  // namespace sv::niu

// TxU / RxU: the network-facing datapath (one FPGA in the real NIU).
//
// TxU drains the transmit queues CTRL arbitrates (priority classes, then
// round-robin) and launches messages; RxU accepts packets from the network
// — high priority strictly first — and hands them to CTRL's receive
// dispatch (queue-cache lookup, full-queue policies, remote commands).
// Network flow-control credits are returned only after CTRL accepts a
// packet, so a held receive queue backpressures the fabric, reproducing the
// deadlock hazard the paper attributes to the kHold policy.
#pragma once

#include <array>
#include <deque>

#include "net/network.hpp"
#include "niu/ctrl.hpp"
#include "sim/coro.hpp"
#include "sim/kernel.hpp"

namespace sv::niu {

class TxU : public sim::SimObject {
 public:
  struct Params {
    sim::Clock clock{15000};
    sim::Cycles per_message_cycles = 2;  // formatting overhead
  };

  TxU(sim::Kernel& kernel, std::string name, Ctrl& ctrl, Params params);

  /// Spawn the transmit process.
  void start();

 private:
  sim::Co<void> loop();

  Ctrl& ctrl_;
  Params params_;
  bool started_ = false;
};

class RxU : public sim::SimObject {
 public:
  struct Params {
    sim::Clock clock{15000};
    sim::Cycles per_message_cycles = 2;
  };

  RxU(sim::Kernel& kernel, std::string name, Ctrl& ctrl,
      net::Network& network, Params params);

  /// Register with the network and spawn the receive process.
  void start();

  [[nodiscard]] std::size_t buffered() const {
    return vq_[0].size() + vq_[1].size();
  }

 private:
  void deliver(net::Packet&& pkt);
  sim::Co<void> loop();

  Ctrl& ctrl_;
  net::Network& network_;
  Params params_;
  std::array<std::deque<net::Packet>, net::kNumPriorities> vq_;
  sim::Signal arrived_;
  bool started_ = false;
};

}  // namespace sv::niu

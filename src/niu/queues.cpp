#include "niu/queues.hpp"

#include <cstring>

namespace sv::niu {

namespace {

void put_u16(std::byte* p, std::uint16_t v) {
  p[0] = static_cast<std::byte>(v & 0xFF);
  p[1] = static_cast<std::byte>((v >> 8) & 0xFF);
}

std::uint16_t get_u16(const std::byte* p) {
  return static_cast<std::uint16_t>(static_cast<unsigned>(p[0]) |
                                    (static_cast<unsigned>(p[1]) << 8));
}

void put_u32(std::byte* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xFF);
  }
}

std::uint32_t get_u32(const std::byte* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

}  // namespace

void MsgDescriptor::encode(std::byte out[8]) const {
  put_u16(out, vdest);
  out[2] = static_cast<std::byte>(length);
  out[3] = static_cast<std::byte>(flags);
  put_u32(out + 4, aux);
}

MsgDescriptor MsgDescriptor::decode(const std::byte in[8]) {
  MsgDescriptor d;
  d.vdest = get_u16(in);
  d.length = static_cast<std::uint8_t>(in[2]);
  d.flags = static_cast<std::uint8_t>(in[3]);
  d.aux = get_u32(in + 4);
  return d;
}

void XlatEntry::encode(std::byte out[8]) const {
  put_u16(out, phys_node);
  put_u16(out + 2, logical_queue);
  out[4] = static_cast<std::byte>(priority);
  out[5] = static_cast<std::byte>(valid ? 1 : 0);
  out[6] = std::byte{0};
  out[7] = std::byte{0};
}

XlatEntry XlatEntry::decode(const std::byte in[8]) {
  XlatEntry e;
  e.phys_node = get_u16(in);
  e.logical_queue = get_u16(in + 2);
  e.priority = static_cast<std::uint8_t>(in[4]);
  e.valid = in[5] != std::byte{0};
  return e;
}

void RxDescriptor::encode(std::byte out[8]) const {
  put_u16(out, src_node);
  out[2] = static_cast<std::byte>(length);
  out[3] = static_cast<std::byte>(flags);
  put_u16(out + 4, logical);
  out[6] = std::byte{0};
  out[7] = std::byte{0};
}

RxDescriptor RxDescriptor::decode(const std::byte in[8]) {
  RxDescriptor d;
  d.src_node = get_u16(in);
  d.length = static_cast<std::uint8_t>(in[2]);
  d.flags = static_cast<std::uint8_t>(in[3]);
  d.logical = get_u16(in + 4);
  return d;
}

}  // namespace sv::niu

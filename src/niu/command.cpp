#include "niu/command.hpp"

#include <cstring>
#include <stdexcept>

namespace sv::niu {

namespace {

// Header layout (16 bytes):
//   [0]    op
//   [1]    flags: bit0 set_cls, bit1 remote-notify-marker (unused on wire)
//   [2]    cls_bits
//   [3]    reserved
//   [4:5]  queue (kNotifyLocal) / src_node
//   [6:7]  tag low 16 (kSupplyLoad/kNotifyLocal use tag)
//   [8:15] addr
void put_u16(std::byte* p, std::uint16_t v) {
  p[0] = static_cast<std::byte>(v & 0xFF);
  p[1] = static_cast<std::byte>((v >> 8) & 0xFF);
}

std::uint16_t get_u16(const std::byte* p) {
  return static_cast<std::uint16_t>(static_cast<unsigned>(p[0]) |
                                    (static_cast<unsigned>(p[1]) << 8));
}

void put_u64(std::byte* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xFF);
  }
}

std::uint64_t get_u64(const std::byte* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

bool op_encodable(CmdOp op) {
  switch (op) {
    case CmdOp::kWriteApDram:
    case CmdOp::kWriteClsState:
    case CmdOp::kNotifyLocal:
    case CmdOp::kSupplyLoad:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::vector<std::byte> encode_remote(const Command& cmd) {
  if (!op_encodable(cmd.op)) {
    throw std::invalid_argument("encode_remote: op cannot travel");
  }
  if (cmd.data.size() > kRemoteCmdMaxData) {
    throw std::invalid_argument("encode_remote: payload too large");
  }
  std::vector<std::byte> wire(kRemoteCmdHeaderBytes + cmd.data.size());
  wire[0] = static_cast<std::byte>(cmd.op);
  wire[1] = static_cast<std::byte>((cmd.set_cls ? 1u : 0u) |
                                   (cmd.chunk_notify ? 4u : 0u));
  wire[2] = static_cast<std::byte>(cmd.cls_bits);
  wire[3] = std::byte{0};
  put_u16(wire.data() + 4, cmd.op == CmdOp::kNotifyLocal
                               ? cmd.queue
                               : cmd.src_node);
  put_u16(wire.data() + 6, static_cast<std::uint16_t>(cmd.tag & 0xFFFF));
  // The clsSRAM-range length rides in the high bits of the addr word for
  // kWriteClsState (addresses are < 2^40 in this machine).
  std::uint64_t addr_word = cmd.addr;
  if (cmd.op == CmdOp::kWriteClsState) {
    addr_word |= static_cast<std::uint64_t>(cmd.len) << 40;
  }
  put_u64(wire.data() + 8, addr_word);
  std::memcpy(wire.data() + kRemoteCmdHeaderBytes, cmd.data.data(),
              cmd.data.size());
  return wire;
}

Command decode_remote(std::span<const std::byte> wire) {
  if (wire.size() < kRemoteCmdHeaderBytes) {
    throw std::invalid_argument("decode_remote: short payload");
  }
  Command cmd;
  cmd.op = static_cast<CmdOp>(wire[0]);
  if (!op_encodable(cmd.op)) {
    throw std::invalid_argument("decode_remote: bad op");
  }
  const auto flags = static_cast<unsigned>(wire[1]);
  cmd.set_cls = (flags & 1u) != 0;
  cmd.chunk_notify = (flags & 4u) != 0;
  cmd.cls_bits = static_cast<std::uint8_t>(wire[2]);
  const std::uint16_t qsrc = get_u16(wire.data() + 4);
  if (cmd.op == CmdOp::kNotifyLocal) {
    cmd.queue = qsrc;
  } else {
    cmd.src_node = qsrc;
  }
  cmd.tag = get_u16(wire.data() + 6);
  const std::uint64_t addr_word = get_u64(wire.data() + 8);
  cmd.addr = addr_word & ((std::uint64_t{1} << 40) - 1);
  if (cmd.op == CmdOp::kWriteClsState) {
    cmd.len = static_cast<std::uint32_t>(addr_word >> 40);
  }
  cmd.data.assign(wire.begin() + kRemoteCmdHeaderBytes, wire.end());
  if (cmd.op == CmdOp::kWriteApDram) {
    cmd.len = static_cast<std::uint32_t>(cmd.data.size());
  }
  return cmd;
}

}  // namespace sv::niu

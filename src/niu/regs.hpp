// NIU address map and system-register definitions (the aP's view).
//
// The NIU occupies the top of the node's physical address space. Regions:
//
//   kApDramBase    main memory (claimed by the memory controller); the
//                  S-COMA region is ordinary local DRAM whose access is
//                  gated line-by-line through clsSRAM state,
//   kNumaBase      the 1 GB NUMA window: the aBIU forwards aP accesses in
//                  this range to sP firmware,
//   kNiuBase       the memory-mapped NIU windows described below.
//
// NIU windows (offsets from kNiuBase):
//   aSRAM window      direct load/store access to aSRAM; message queue
//                     buffers and the CTRL pointer shadows live here,
//   Express Tx window address bits encode (tx queue, virtual destination,
//                     one payload byte); the 4-byte store data completes the
//                     5-byte express payload,
//   Express Rx window an 8-byte uncached load pops one express message,
//   Pointer window    stores encode producer/consumer pointer updates that
//                     the aBIU forwards to CTRL,
//   SysReg window     privileged CTRL system registers.
#pragma once

#include <cstdint>

#include "mem/backing_store.hpp"

namespace sv::niu {

using mem::Addr;

// --- Node physical address map ---------------------------------------------

inline constexpr Addr kApDramBase = 0x0000'0000;
inline constexpr Addr kApDramDefaultSize = 64ull * 1024 * 1024;

inline constexpr Addr kNumaBase = 0x4000'0000;
inline constexpr Addr kNumaSize = 0x4000'0000;  // 1 GB (paper section 5)

inline constexpr Addr kScomaBase = 0x8000'0000;
inline constexpr Addr kScomaDefaultSize = 16ull * 1024 * 1024;

inline constexpr Addr kNiuBase = 0xF000'0000;

inline constexpr Addr kAsramWindowOffset = 0x0000'0000;
inline constexpr Addr kExpressTxWindowOffset = 0x0100'0000;
inline constexpr Addr kExpressRxWindowOffset = 0x0200'0000;
inline constexpr Addr kPtrWindowOffset = 0x0300'0000;
inline constexpr Addr kSysRegWindowOffset = 0x0400'0000;
inline constexpr Addr kNiuWindowSpan = 0x0500'0000;

// --- Express Tx window encoding --------------------------------------------
// addr = base + (queue << 18) + (vdest << 10) + (byte << 2)

inline constexpr unsigned kExpressTxQueueShift = 18;
inline constexpr unsigned kExpressTxDestShift = 10;
inline constexpr unsigned kExpressTxByteShift = 2;

[[nodiscard]] constexpr Addr express_tx_addr(unsigned queue, unsigned vdest,
                                             std::uint8_t extra_byte) {
  return (static_cast<Addr>(queue) << kExpressTxQueueShift) |
         (static_cast<Addr>(vdest) << kExpressTxDestShift) |
         (static_cast<Addr>(extra_byte) << kExpressTxByteShift);
}

// --- Express Rx window encoding --------------------------------------------
// addr = base + queue * 16; an 8-byte load pops one message.

inline constexpr Addr kExpressRxStride = 16;

// --- Pointer window encoding ------------------------------------------------
// addr = base + kind * 0x100 + queue * 0x10; the 4-byte store data is the
// new free-running pointer value.

enum class PtrKind : unsigned {
  kTxProducer = 0,  // aP finished composing: launch
  kRxConsumer = 1,  // aP finished receiving: free the slot
};

[[nodiscard]] constexpr Addr ptr_window_addr(PtrKind kind, unsigned queue) {
  return static_cast<Addr>(kind) * 0x100 + static_cast<Addr>(queue) * 0x10;
}

// --- aSRAM pointer shadows ---------------------------------------------------
// CTRL shadows the pointers it advances into the first 256 bytes of aSRAM so
// the aP can poll them with plain loads (paper section 5).

inline constexpr Addr kTxConsumerShadowBase = 0x00;  // + queue * 4
inline constexpr Addr kRxProducerShadowBase = 0x80;  // + queue * 4
inline constexpr Addr kShadowRegionBytes = 0x100;

[[nodiscard]] constexpr Addr tx_consumer_shadow(unsigned queue) {
  return kTxConsumerShadowBase + queue * 4;
}
[[nodiscard]] constexpr Addr rx_producer_shadow(unsigned queue) {
  return kRxProducerShadowBase + queue * 4;
}

// --- System registers --------------------------------------------------------

enum class SysReg : unsigned {
  kTxPriority = 0,     // 2 bits per tx queue: arbitration class
  kInterruptStatus,    // pending interrupt causes (read/clear)
  kInterruptEnable,
  kTranslationBase,    // sSRAM offset of the destination translation table
  kTranslationSize,    // number of entries
  kShutdownStatus,     // bitmask of shut-down (protection-violated) tx queues
  kNodeId,
  kCount,
};

/// Interrupt cause bits (kInterruptStatus).
enum : std::uint64_t {
  kIntrProtection = 1u << 0,   // tx protection violation, queue shut down
  kIntrRxArrival = 1u << 1,    // message arrived on interrupt-enabled queue
  kIntrCmdComplete = 1u << 2,  // command with notify completed
  kIntrRxMiss = 1u << 3,       // message diverted to the miss queue
};

// --- Fixed hardware shape -----------------------------------------------------

inline constexpr unsigned kNumTxQueues = 16;
inline constexpr unsigned kNumRxQueues = 16;
inline constexpr unsigned kNumCmdQueues = 2;
inline constexpr unsigned kNumPriorityClasses = 4;

/// Hardware rx queue reserved as the miss/overflow queue by convention.
inline constexpr unsigned kMissRxQueue = 15;

}  // namespace sv::niu

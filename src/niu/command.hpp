// CTRL command set.
//
// Commands are the NIU's internal RPC: firmware (through the sBIU) posts
// them to the two ordered local command queues, remote NIUs send them over
// the network into the remote command queue, and the BIUs generate them in
// hardware for compound operations. A single Command struct covers all ops;
// field meaning depends on `op` (documented per op below).
//
// Ordering: local command queues execute strictly in order *except* block
// operations, which are handed to the block engines and complete
// asynchronously (paper section 4). A command with `fence` set waits for
// all previously-issued block operations to finish first.
#pragma once

#include <cstdint>
#include <vector>

#include "mem/backing_store.hpp"
#include "net/packet.hpp"
#include "niu/queues.hpp"

namespace sv::niu {

enum class CmdOp : std::uint8_t {
  /// Write `data` into SRAM `bank` at `sram_offset`.
  kWriteSram = 0,
  /// Master-write `data` to aP DRAM at `addr` (coherent bus write). When
  /// `set_cls` is set, also update clsSRAM state for the written lines to
  /// `cls_bits` after the data lands (the approach-5 aBIU extension).
  kWriteApDram,
  /// Master-read `len` bytes from aP DRAM at `addr` into SRAM
  /// `bank`/`sram_offset` (single transfer; block reads use kBlockRead).
  kReadApDram,
  /// Send a message: dest_node/queue/priority (raw) or vdest translation
  /// when `translate` is set; payload = `data` plus an optional SRAM attach
  /// of `attach_len` bytes from `bank`/`sram_offset` (TagOn path).
  kSendMessage,
  /// Set clsSRAM state for `len` bytes of lines starting at `addr` to
  /// `cls_bits`.
  kWriteClsState,
  /// Issue a kill (invalidate) on the aP bus for the line at `addr`.
  kBusKill,
  /// Issue a flush (writeback+invalidate) on the aP bus for line `addr`.
  kBusFlush,
  /// NUMA: complete the pending retried aP load identified by `tag` with
  /// `data` (the aBIU stops retrying and supplies the value).
  kSupplyLoad,
  /// Block engine: read `len` (<= one page) bytes of aP DRAM at `addr`
  /// into SRAM `bank`/`sram_offset`.
  kBlockRead,
  /// Block engine: packetize `len` bytes of SRAM `bank`/`sram_offset` and
  /// send them to `dest_node` as remote kWriteApDram commands targeting
  /// `dest_addr`. Honors `set_cls`/`cls_bits` (remote clsSRAM update per
  /// arriving chunk) and `remote_notify*` (a final remote kNotifyLocal).
  kBlockTx,
  /// Chained block read + block transmit (the "very efficient DMA" path):
  /// aP DRAM `addr` -> SRAM staging at `bank`/`sram_offset` -> network to
  /// `dest_node`/`dest_addr`, double-buffered across the two engines.
  kBlockXfer,
  /// Copy `len` bytes between SRAM banks: `bank`/`sram_offset` ->
  /// `bank2`/`sram_offset2`.
  kCopySram,
  /// Diff-ing hardware (paper section 5, update-based shared memory):
  /// send only the *modified* lines of [addr, addr+len) of aP DRAM to
  /// `dest_node`/`dest_addr`. diff_mode 0 uses the clsSRAM dirty bits
  /// maintained by the aBIU write tracker (and clears them); diff_mode 1
  /// compares against an old copy staged at `bank`/`sram_offset` (and
  /// refreshes it). Honors remote_notify.
  kBlockDiffTx,
  /// Enqueue `data` as a message into local logical rx queue `queue`
  /// (delivery as if it arrived from node `src_node`).
  kNotifyLocal,
  /// Write CTRL system register `reg` = `value`.
  kWriteReg,
};

inline constexpr net::QueueId kNoNotify = 0xFFFD;

/// Logical rx queue that receives per-chunk arrival notifications for
/// remote writes carrying `chunk_notify` (the approach-4 firmware path:
/// the receiving sP learns each chunk has landed and opens its lines).
inline constexpr net::QueueId kChunkArrivalQueue = 0xFFF0;

struct Command {
  CmdOp op = CmdOp::kWriteSram;

  mem::Addr addr = 0;
  std::uint32_t len = 0;

  SramBank bank = SramBank::kASram;
  std::uint32_t sram_offset = 0;
  SramBank bank2 = SramBank::kASram;
  std::uint32_t sram_offset2 = 0;

  sim::NodeId dest_node = 0;
  mem::Addr dest_addr = 0;
  net::QueueId queue = 0;
  std::uint8_t priority = net::kPriorityLow;
  bool translate = false;
  std::uint16_t vdest = 0;

  bool set_cls = false;
  std::uint8_t cls_bits = 0;

  /// kWriteApDram only: after the data lands, notify the receiving node's
  /// firmware via kChunkArrivalQueue with {addr, len}.
  bool chunk_notify = false;

  std::uint32_t attach_len = 0;  // kSendMessage SRAM attach size

  std::uint32_t tag = 0;  // kSupplyLoad token / notify payload tag
  std::uint16_t src_node = 0;

  std::uint32_t reg = 0;
  std::uint64_t value = 0;

  /// kBlockDiffTx: 0 = clsSRAM dirty-bit tracked, 1 = value diff against
  /// the staged old copy.
  std::uint8_t diff_mode = 0;

  bool fence = false;

  /// Local completion notification: when not kNoNotify, CTRL enqueues an
  /// 8-byte {tag} message into this logical rx queue after the command
  /// (including any block work) completes.
  net::QueueId notify_queue = kNoNotify;
  std::uint32_t notify_tag = 0;

  /// Remote completion (kBlockTx/kBlockXfer): after the final data packet,
  /// send a kNotifyLocal to the destination for this queue/tag.
  bool remote_notify = false;
  net::QueueId remote_notify_queue = 0;
  std::uint32_t remote_notify_tag = 0;

  std::vector<std::byte> data;
};

/// Remote-command wire format: a fixed 16-byte header followed by payload.
/// Only the ops that travel between nodes are encodable (kWriteApDram,
/// kWriteClsState, kNotifyLocal, kSupplyLoad).
inline constexpr std::size_t kRemoteCmdHeaderBytes = 16;
inline constexpr std::size_t kRemoteCmdMaxData =
    net::kMaxPayloadBytes - kRemoteCmdHeaderBytes;

/// Encode `cmd` for the network. Throws std::invalid_argument for ops that
/// cannot travel or payloads that exceed kRemoteCmdMaxData.
[[nodiscard]] std::vector<std::byte> encode_remote(const Command& cmd);

/// Decode a remote command payload. Throws std::invalid_argument on
/// malformed input.
[[nodiscard]] Command decode_remote(std::span<const std::byte> wire);

}  // namespace sv::niu

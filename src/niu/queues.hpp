// Queue descriptors: the state CTRL keeps for its 16 transmit and 16
// receive hardware queues (paper section 4, "Underlying Queue Support").
//
// Producer/consumer pointers are free-running 16-bit counters; a queue with
// S slots is full when producer - consumer == S and empty when they are
// equal. Slot index = counter % S. Buffer storage lives in one of the two
// dual-ported SRAM banks; only the pointers live inside CTRL.
#pragma once

#include <cstdint>

#include "mem/backing_store.hpp"
#include "net/packet.hpp"

namespace sv::niu {

enum class SramBank : std::uint8_t { kASram = 0, kSSram = 1 };

/// Message slot layout (Basic format): an 8-byte descriptor followed by up
/// to 88 bytes of data, so a slot is 96 bytes.
inline constexpr std::uint32_t kBasicSlotBytes = 96;
inline constexpr std::uint32_t kBasicHeaderBytes = 8;
inline constexpr std::uint32_t kBasicMaxData = 88;

/// Express slots hold the 8-byte packed message only.
inline constexpr std::uint32_t kExpressSlotBytes = 8;
inline constexpr std::uint32_t kExpressPayloadBytes = 5;

/// TagOn attachment sizes: 1.5 or 2.5 cache lines (paper section 5).
inline constexpr std::uint32_t kTagOnSmallBytes = 48;
inline constexpr std::uint32_t kTagOnLargeBytes = 80;

/// Basic message descriptor, the first 8 bytes of a Tx slot.
///   bytes 0-1  virtual destination (or physical node when raw)
///   byte  2    data length (0..88)
///   byte  3    flags
///   bytes 4-7  TagOn SRAM offset, or raw-mode destination queue (bytes 4-5)
struct MsgDescriptor {
  std::uint16_t vdest = 0;
  std::uint8_t length = 0;
  std::uint8_t flags = 0;
  std::uint32_t aux = 0;

  enum : std::uint8_t {
    kFlagTagOn = 1 << 0,
    kFlagTagOnLarge = 1 << 1,  // 80 bytes instead of 48
    kFlagRaw = 1 << 2,         // bypass translation (trusted queues only)
    kFlagHighPriority = 1 << 3,
    kFlagTagOnSSram = 1 << 4,  // TagOn data comes from sSRAM, not aSRAM
  };

  [[nodiscard]] bool tagon() const { return (flags & kFlagTagOn) != 0; }
  [[nodiscard]] std::uint32_t tagon_bytes() const {
    return (flags & kFlagTagOnLarge) != 0 ? kTagOnLargeBytes
                                          : kTagOnSmallBytes;
  }
  [[nodiscard]] bool raw() const { return (flags & kFlagRaw) != 0; }

  void encode(std::byte out[8]) const;
  static MsgDescriptor decode(const std::byte in[8]);
};

/// Destination-translation table entry (8 bytes, resident in sSRAM).
struct XlatEntry {
  std::uint16_t phys_node = 0;
  net::QueueId logical_queue = 0;
  std::uint8_t priority = net::kPriorityLow;
  bool valid = false;

  void encode(std::byte out[8]) const;
  static XlatEntry decode(const std::byte in[8]);
  static constexpr std::uint32_t kBytes = 8;
};

struct TxQueueState {
  bool enabled = false;
  bool shutdown = false;  // set on protection violation
  bool express = false;   // slots hold packed express entries
  bool raw_allowed = false;
  bool translate = true;
  SramBank bank = SramBank::kASram;
  std::uint32_t base = 0;        // SRAM offset of the buffer region
  std::uint16_t slots = 0;       // power of two
  std::uint16_t slot_bytes = kBasicSlotBytes;
  std::uint16_t producer = 0;    // advanced by the sender (aP/sP via BIU)
  std::uint16_t consumer = 0;    // advanced by CTRL after launch
  std::uint16_t and_mask = 0xFFFF;
  std::uint16_t or_mask = 0;
  std::uint8_t priority_class = 0;  // arbitration class (0 = lowest)

  [[nodiscard]] std::uint16_t occupancy() const {
    return static_cast<std::uint16_t>(producer - consumer);
  }
  [[nodiscard]] bool empty() const { return producer == consumer; }
  [[nodiscard]] bool full() const { return occupancy() >= slots; }
  [[nodiscard]] std::uint32_t slot_addr(std::uint16_t counter) const {
    return base + static_cast<std::uint32_t>(counter % slots) * slot_bytes;
  }
};

/// What to do with a message arriving at a full receive queue (section 4).
enum class RxFullPolicy : std::uint8_t {
  kDivert,  // send it to the miss/overflow queue (default)
  kDrop,    // discard
  kHold,    // stall the RxU until space frees (can deadlock the network)
};

struct RxQueueState {
  bool enabled = false;
  bool express = false;
  bool interrupt_on_arrival = false;
  SramBank bank = SramBank::kASram;
  std::uint32_t base = 0;
  std::uint16_t slots = 0;
  std::uint16_t slot_bytes = kBasicSlotBytes;
  std::uint16_t producer = 0;  // advanced by CTRL on arrival
  std::uint16_t consumer = 0;  // advanced by the receiver via BIU
  RxFullPolicy full_policy = RxFullPolicy::kDivert;
  /// Logical queue id cached in this hardware queue (the rx-queue cache
  /// "tag"); kLogicalNone when the queue is unbound.
  net::QueueId logical = kLogicalNone;

  static constexpr net::QueueId kLogicalNone = 0xFFFE;

  [[nodiscard]] std::uint16_t occupancy() const {
    return static_cast<std::uint16_t>(producer - consumer);
  }
  [[nodiscard]] bool empty() const { return producer == consumer; }
  [[nodiscard]] bool full() const { return occupancy() >= slots; }
  [[nodiscard]] std::uint32_t slot_addr(std::uint16_t counter) const {
    return base + static_cast<std::uint32_t>(counter % slots) * slot_bytes;
  }
};

/// Received-message slot layout (Basic): 8-byte rx descriptor + data.
///   bytes 0-1  source node
///   byte  2    data length
///   byte  3    flags (bit0: valid)
///   bytes 4-5  logical queue the message addressed
///   bytes 6-7  reserved
struct RxDescriptor {
  std::uint16_t src_node = 0;
  std::uint8_t length = 0;
  std::uint8_t flags = 1;
  net::QueueId logical = 0;

  void encode(std::byte out[8]) const;
  static RxDescriptor decode(const std::byte in[8]);
};

}  // namespace sv::niu

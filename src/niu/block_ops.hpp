// The two block-operation units (paper section 4).
//
// The block-read unit streams up to one aligned page of aP DRAM into SRAM
// by issuing line-burst reads on the aP bus. The block-transmit unit
// packetizes an SRAM region into remote kWriteApDram commands and injects
// them into the network. kBlockXfer chains the two through a double-buffered
// staging area, giving the "very efficient DMA" the paper describes: the
// read of chunk i+1 overlaps the transmission of chunk i.
#pragma once

#include "niu/command.hpp"
#include "sim/coro.hpp"
#include "sim/stats.hpp"
#include "trace/trace.hpp"

namespace sv::niu {

class Ctrl;

inline constexpr std::uint32_t kBlockMaxBytes = 4096;  // one page

class BlockEngines {
 public:
  explicit BlockEngines(Ctrl& ctrl);

  /// aP DRAM -> SRAM. cmd.len must be <= kBlockMaxBytes and must not cross
  /// a page boundary (firmware splits larger requests; see fw::DmaEngine).
  sim::Co<void> block_read(Command cmd);

  /// SRAM -> network (remote kWriteApDram commands to cmd.dest_node).
  sim::Co<void> block_tx(Command cmd);

  /// Chained read+tx with double buffering through the staging area at
  /// cmd.bank/cmd.sram_offset (2 * chunk bytes of SRAM).
  sim::Co<void> block_xfer(Command cmd);

  /// Diff-ing transmit: send only modified lines (see CmdOp::kBlockDiffTx).
  sim::Co<void> block_diff_tx(Command cmd);

  [[nodiscard]] unsigned outstanding() const { return outstanding_; }
  sim::Signal& drained() { return drained_; }

  void begin_op() { ++outstanding_; }
  void end_op() {
    --outstanding_;
    if (outstanding_ == 0) {
      drained_.pulse();
    }
  }

 private:
  /// One staged chunk: read `len` bytes of DRAM at `addr` into SRAM.
  sim::Co<void> read_chunk(const Command& cmd, mem::Addr addr,
                           std::uint32_t sram_offset, std::uint32_t len);
  /// Send `len` bytes of SRAM as remote write commands.
  sim::Co<void> tx_chunk(const Command& cmd, std::uint32_t sram_offset,
                         mem::Addr dest_addr, std::uint32_t len, bool last);

  Ctrl& ctrl_;
  sim::Semaphore read_unit_;
  sim::Semaphore tx_unit_;
  unsigned outstanding_ = 0;
  sim::Signal drained_;
  trace::TrackId read_track_ = trace::kNoTrack;
  trace::TrackId tx_track_ = trace::kNoTrack;
};

}  // namespace sv::niu

#include "niu/block_ops.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <vector>

#include "niu/ctrl.hpp"

namespace sv::niu {

namespace {

/// Data bytes carried per remote-write packet. 64 keeps destination writes
/// line-aligned (two 32-byte bursts) when the transfer base is aligned.
constexpr std::uint32_t kWireChunk = 64;
static_assert(kWireChunk <= kRemoteCmdMaxData);

void check_block_bounds(const Command& cmd, mem::Addr addr) {
  if (cmd.len == 0 || cmd.len > kBlockMaxBytes) {
    throw std::invalid_argument("block op: bad length");
  }
  if ((addr % kBlockMaxBytes) + cmd.len > kBlockMaxBytes) {
    throw std::invalid_argument("block op: crosses page boundary");
  }
  if (addr % mem::kLineBytes != 0 || cmd.len % mem::kLineBytes != 0) {
    throw std::invalid_argument("block op: not line-aligned");
  }
}

}  // namespace

BlockEngines::BlockEngines(Ctrl& ctrl)
    : ctrl_(ctrl),
      read_unit_(ctrl.kernel(), 1),
      tx_unit_(ctrl.kernel(), 1),
      drained_(ctrl.kernel()) {}

sim::Co<void> BlockEngines::read_chunk(const Command& cmd, mem::Addr addr,
                                       std::uint32_t sram_offset,
                                       std::uint32_t len) {
  // Stream DRAM lines into SRAM with the line read and the IBus write of
  // the previous line overlapped (the engine is pipelined in hardware).
  const sim::Tick chunk_start = ctrl_.now();
  unsigned pending = 0;
  sim::Signal done(ctrl_.kernel());
  for (std::uint32_t off = 0; off < len; off += mem::kLineBytes) {
    auto buf = std::make_shared<std::vector<std::byte>>(mem::kLineBytes);
    co_await ctrl_.ap_port().master_read(addr + off, *buf);
    ++pending;
    sim::spawn([](BlockEngines* self, const Command* c,
                  std::shared_ptr<std::vector<std::byte>> data,
                  std::uint32_t dst, unsigned* cnt,
                  sim::Signal* sig) -> sim::Co<void> {
      co_await self->ctrl_.ibus_access(c->bank, mem::kLineBytes);
      self->ctrl_.sram(c->bank).write(dst, *data);
      --*cnt;
      sig->pulse();
    }(this, &cmd, std::move(buf), sram_offset + off, &pending, &done));
  }
  while (pending != 0) {
    co_await done;
  }
  if (trace::Tracer* tr = ctrl_.tracing()) {
    tr->span(ctrl_.trace_lane(read_track_, "NIU.BlkRd", "niu"),
             "read " + std::to_string(len) + "B", chunk_start, ctrl_.now());
  }
}

sim::Co<void> BlockEngines::tx_chunk(const Command& cmd,
                                     std::uint32_t sram_offset,
                                     mem::Addr dest_addr, std::uint32_t len,
                                     bool last) {
  const sim::Tick chunk_start = ctrl_.now();
  for (std::uint32_t off = 0; off < len; off += kWireChunk) {
    const std::uint32_t n = std::min(kWireChunk, len - off);
    Command wr;
    wr.op = CmdOp::kWriteApDram;
    wr.addr = dest_addr + off;
    wr.src_node = static_cast<std::uint16_t>(ctrl_.node());
    wr.set_cls = cmd.set_cls;
    wr.cls_bits = cmd.cls_bits;
    wr.chunk_notify = cmd.chunk_notify;
    wr.data.resize(n);
    co_await ctrl_.ibus_access(cmd.bank, n);
    ctrl_.sram(cmd.bank).read(sram_offset + off, wr.data);

    net::Packet pkt;
    pkt.src = ctrl_.node();
    pkt.dest = cmd.dest_node;
    pkt.dest_queue = net::kRemoteCmdQueue;
    pkt.priority = cmd.priority;
    pkt.payload = encode_remote(wr);
    co_await ctrl_.inject(std::move(pkt));
  }
  if (trace::Tracer* tr = ctrl_.tracing()) {
    tr->span(ctrl_.trace_lane(tx_track_, "NIU.BlkTx", "niu"),
             "tx " + std::to_string(len) + "B", chunk_start, ctrl_.now());
  }

  if (last && cmd.remote_notify) {
    Command note;
    note.op = CmdOp::kNotifyLocal;
    note.queue = cmd.remote_notify_queue;
    note.tag = cmd.remote_notify_tag;
    note.src_node = static_cast<std::uint16_t>(ctrl_.node());
    note.data.resize(4);
    std::memcpy(note.data.data(), &cmd.remote_notify_tag, 4);

    net::Packet pkt;
    pkt.src = ctrl_.node();
    pkt.dest = cmd.dest_node;
    pkt.dest_queue = net::kRemoteCmdQueue;
    pkt.priority = cmd.priority;
    pkt.payload = encode_remote(note);
    co_await ctrl_.inject(std::move(pkt));
  }
}

sim::Co<void> BlockEngines::block_read(Command cmd) {
  check_block_bounds(cmd, cmd.addr);
  co_await read_unit_.acquire();
  co_await read_chunk(cmd, cmd.addr, cmd.sram_offset, cmd.len);
  read_unit_.release();
}

sim::Co<void> BlockEngines::block_tx(Command cmd) {
  check_block_bounds(cmd, cmd.dest_addr);
  co_await tx_unit_.acquire();
  co_await tx_chunk(cmd, cmd.sram_offset, cmd.dest_addr, cmd.len,
                    /*last=*/true);
  tx_unit_.release();
}

sim::Co<void> BlockEngines::block_diff_tx(Command cmd) {
  check_block_bounds(cmd, cmd.addr);
  co_await tx_unit_.acquire();

  auto& cls = ctrl_.cls();
  std::vector<std::byte> line(mem::kLineBytes);
  std::vector<std::byte> old_line(mem::kLineBytes);
  bool sent_any = false;

  for (std::uint32_t off = 0; off < cmd.len; off += mem::kLineBytes) {
    const mem::Addr src = cmd.addr + off;
    bool modified;
    if (cmd.diff_mode == 0) {
      // cls-tracked mode: the aBIU write tracker marked dirty lines.
      modified = (cls.peek(src) & 0x8) != 0;
      if (!modified) {
        continue;
      }
      co_await ctrl_.ap_port().master_read(src, line);
      co_await cls.write_state(src, cls.peek(src) & 0x7);
    } else {
      // Value-diff mode: compare against (and refresh) the old copy.
      co_await ctrl_.ap_port().master_read(src, line);
      co_await ctrl_.ibus_access(cmd.bank, mem::kLineBytes);
      ctrl_.sram(cmd.bank).read(cmd.sram_offset + off, old_line);
      modified = line != old_line;
      if (!modified) {
        continue;
      }
      co_await ctrl_.ibus_access(cmd.bank, mem::kLineBytes);
      ctrl_.sram(cmd.bank).write(cmd.sram_offset + off, line);
    }

    Command wr;
    wr.op = CmdOp::kWriteApDram;
    wr.addr = cmd.dest_addr + off;
    wr.src_node = static_cast<std::uint16_t>(ctrl_.node());
    wr.data = line;

    net::Packet pkt;
    pkt.src = ctrl_.node();
    pkt.dest = cmd.dest_node;
    pkt.dest_queue = net::kRemoteCmdQueue;
    pkt.priority = cmd.priority;
    pkt.payload = encode_remote(wr);
    co_await ctrl_.inject(std::move(pkt));
    sent_any = true;
  }
  (void)sent_any;

  if (cmd.remote_notify) {
    Command note;
    note.op = CmdOp::kNotifyLocal;
    note.queue = cmd.remote_notify_queue;
    note.tag = cmd.remote_notify_tag;
    note.src_node = static_cast<std::uint16_t>(ctrl_.node());
    note.data.resize(4);
    std::memcpy(note.data.data(), &cmd.remote_notify_tag, 4);

    net::Packet pkt;
    pkt.src = ctrl_.node();
    pkt.dest = cmd.dest_node;
    pkt.dest_queue = net::kRemoteCmdQueue;
    pkt.priority = cmd.priority;
    pkt.payload = encode_remote(note);
    co_await ctrl_.inject(std::move(pkt));
  }
  tx_unit_.release();
}

sim::Co<void> BlockEngines::block_xfer(Command cmd) {
  check_block_bounds(cmd, cmd.addr);
  check_block_bounds(cmd, cmd.dest_addr);
  const std::uint32_t chunk =
      std::min(ctrl_.params().block_chunk_bytes, cmd.len);

  struct Staged {
    std::uint32_t buf;
    std::uint32_t offset;
    std::uint32_t len;
    bool last;
  };
  sim::Channel<Staged> ready(ctrl_.kernel());
  sim::Channel<std::uint32_t> free_bufs(ctrl_.kernel());
  free_bufs.push(0);
  free_bufs.push(1);

  // Reader side: fill alternating staging buffers from aP DRAM.
  sim::spawn([](BlockEngines* self, Command c, std::uint32_t chunk_bytes,
                sim::Channel<Staged>* out,
                sim::Channel<std::uint32_t>* bufs) -> sim::Co<void> {
    co_await self->read_unit_.acquire();
    for (std::uint32_t off = 0; off < c.len; off += chunk_bytes) {
      const std::uint32_t n = std::min(chunk_bytes, c.len - off);
      const std::uint32_t b = co_await bufs->pop();
      co_await self->read_chunk(c, c.addr + off,
                                c.sram_offset + b * chunk_bytes, n);
      out->push(Staged{b, off, n, off + n >= c.len});
    }
    self->read_unit_.release();
  }(this, cmd, chunk, &ready, &free_bufs));

  // Transmit side (this coroutine): ship chunks as they become ready.
  co_await tx_unit_.acquire();
  for (;;) {
    const Staged s = co_await ready.pop();
    co_await tx_chunk(cmd, cmd.sram_offset + s.buf * chunk,
                      cmd.dest_addr + s.offset, s.len, s.last);
    free_bufs.push(s.buf);
    if (s.last) {
      break;
    }
  }
  tx_unit_.release();
}

}  // namespace sv::niu

// CTRL: the core-NIU ASIC (paper sections 3-4).
//
// CTRL owns everything the paper lists as core functionality:
//   - 16 transmit + 16 receive hardware queues (pointers live here, buffer
//     storage in the dual-ported SRAMs),
//   - two ordered local command queues + the remote command queue,
//   - transmit-queue priority arbitration,
//   - protection and destination translation (AND/OR mask + table in sSRAM),
//   - receive-queue caching with the miss/overflow queue,
//   - the block read / block transmit engines,
//   - the IBus (the NIU's central datapath),
//   - pointer shadowing into aSRAM and the sP interrupt lines.
//
// The TxU/RxU (network formatting) and the BIUs (bus interfaces) drive CTRL
// through the public interface below, mirroring the hardware interfaces the
// paper describes between CTRL and the FPGAs.
#pragma once

#include <array>
#include <deque>
#include <memory>
#include <optional>

#include "mem/cls_sram.hpp"
#include "mem/sram.hpp"
#include "net/network.hpp"
#include "niu/command.hpp"
#include "niu/queues.hpp"
#include "niu/regs.hpp"
#include "sim/coro.hpp"
#include "sim/kernel.hpp"
#include "sim/logger.hpp"
#include "sim/stats.hpp"
#include "trace/trace.hpp"

namespace sv::niu {

class BlockEngines;

/// The aBIU's bus-master services, used by CTRL for block operations,
/// remote-command execution and coherence actions on the aP bus.
class ApBusPort {
 public:
  virtual ~ApBusPort() = default;
  virtual sim::Co<void> master_read(mem::Addr addr,
                                    std::span<std::byte> out) = 0;
  virtual sim::Co<void> master_write(mem::Addr addr,
                                     std::span<const std::byte> in) = 0;
  virtual sim::Co<void> master_kill(mem::Addr line) = 0;
  virtual sim::Co<void> master_flush(mem::Addr line) = 0;
  /// NUMA: complete a pending retried aP load (token from the forward).
  virtual void supply_load(std::uint32_t tag,
                           std::span<const std::byte> data) = 0;
  /// clsSRAM state changed for [addr, addr+len): pending S-COMA forwards
  /// for those lines are complete (data grants arrive this way).
  virtual void cls_updated(mem::Addr addr, std::uint32_t len) = 0;
};

struct CtrlStats {
  sim::Counter msgs_launched;
  sim::Counter msgs_received;
  sim::Counter express_pushed;
  sim::Counter express_popped;
  sim::Counter rx_hits;
  sim::Counter rx_misses;       // diverted to the miss queue
  sim::Counter rx_dropped;
  sim::Counter rx_held_ps;      // total hold time (kHold policy), in ps
  sim::Counter cmds_local;
  sim::Counter cmds_remote;
  sim::Counter cmds_immediate;
  sim::Counter protection_violations;
  sim::Counter xlat_lookups;
  sim::Counter block_reads;
  sim::Counter block_txs;
  sim::Counter block_xfers;
  sim::BusyTracker ibus_busy;
};

class Ctrl : public sim::SimObject {
 public:
  struct Params {
    sim::Clock clock{15000};              // CTRL runs at bus clock
    sim::Cycles cmd_dispatch_cycles = 2;  // per-command decode overhead
    sim::Cycles pointer_update_cycles = 1;
    std::uint32_t xlat_base = 0;          // sSRAM offset of the table
    std::uint32_t xlat_entries = 256;
    std::uint32_t block_chunk_bytes = 2048;  // block-xfer double buffering
  };

  Ctrl(sim::Kernel& kernel, std::string name, sim::NodeId node, Params params,
       mem::DualPortedSram& asram, mem::DualPortedSram& ssram,
       mem::ClsSram& cls);
  ~Ctrl() override;

  /// Late wiring (the BIUs and network are built around CTRL).
  void bind(ApBusPort* ap_port, net::Network* network);

  /// Spawn the command-queue processors. Call once after bind().
  void start();

  [[nodiscard]] sim::NodeId node() const { return node_; }
  [[nodiscard]] const Params& params() const { return params_; }

  // --- Queue state (configuration is privileged: sP / OS code) -------------
  TxQueueState& txq(unsigned q) { return txq_.at(q); }
  RxQueueState& rxq(unsigned q) { return rxq_.at(q); }
  [[nodiscard]] const TxQueueState& txq(unsigned q) const {
    return txq_.at(q);
  }
  [[nodiscard]] const RxQueueState& rxq(unsigned q) const {
    return rxq_.at(q);
  }

  // --- Pointer interface (from the BIUs) ------------------------------------
  void tx_producer_update(unsigned q, std::uint16_t value);
  void rx_consumer_update(unsigned q, std::uint16_t value);

  // --- Express engines (driven by the aBIU) ---------------------------------
  static constexpr std::uint64_t kExpressEmpty = ~std::uint64_t{0};

  /// Compose+launch an express message: write the packed entry into the
  /// queue's SRAM FIFO and advance the producer. Waits when the queue is
  /// full (backpressuring the posting BIU).
  sim::Co<void> express_tx_push(unsigned q, std::uint64_t entry);

  /// Pop one express message (functional; the bus read's snoop latency
  /// models the access time). Returns kExpressEmpty when none is pending.
  std::uint64_t express_rx_pop(unsigned q);

  // --- Command interfaces ----------------------------------------------------
  /// Post to one of the two ordered local command queues.
  void post_command(unsigned cmdq, Command cmd);
  /// Post to the remote command queue (RxU does this for arriving packets).
  void post_remote_command(Command cmd);
  /// sP immediate interface: execute one command synchronously.
  sim::Co<void> exec_immediate(Command cmd);

  /// Commands pending across all command queues (fence/test support).
  [[nodiscard]] bool commands_idle() const;
  sim::Signal& commands_drained() { return cmds_drained_; }

  /// Queue-status interface: commands waiting in local queue `cmdq` (the
  /// status register firmware polls to pace its command issue).
  [[nodiscard]] std::size_t pending_commands(unsigned cmdq) const {
    return local_cmds_.at(cmdq)->size();
  }
  /// Pulsed after every command completes (queue-status change).
  sim::Signal& command_progress() { return cmd_progress_; }

  // --- Receive path (driven by the RxU) --------------------------------------
  sim::Co<void> rx_deliver(net::Packet pkt);

  /// Deliver a locally-generated message into a logical rx queue.
  sim::Co<void> notify_local(net::QueueId logical,
                             std::span<const std::byte> data,
                             std::uint16_t src_node);

  // --- Transmit path (driven by the TxU) --------------------------------------
  sim::Signal& tx_work() { return tx_work_; }
  /// Pick the next transmit queue: highest priority class first,
  /// round-robin within a class. Returns -1 when nothing is pending.
  [[nodiscard]] int pick_tx_queue();
  /// Compose, translate, protect and launch the head message of queue q.
  sim::Co<void> tx_launch(unsigned q);

  /// Shared network injection port (TxU and the block engines).
  sim::Co<void> inject(net::Packet pkt);

  // --- IBus and SRAM ----------------------------------------------------------
  /// Occupy the IBus (and the selected SRAM's IBus port) for a transfer.
  sim::Co<void> ibus_access(SramBank bank, std::uint32_t bytes);
  [[nodiscard]] mem::DualPortedSram& sram(SramBank bank) {
    return bank == SramBank::kASram ? asram_ : ssram_;
  }
  [[nodiscard]] mem::ClsSram& cls() { return cls_; }
  [[nodiscard]] ApBusPort& ap_port() { return *ap_port_; }

  // --- System registers and interrupts -----------------------------------------
  [[nodiscard]] std::uint64_t read_reg(SysReg r) const;
  void write_reg(SysReg r, std::uint64_t v);
  void raise_interrupt(std::uint64_t cause);
  void clear_interrupts(std::uint64_t mask);
  [[nodiscard]] std::uint64_t interrupt_status() const {
    return intr_status_;
  }
  sim::Signal& sp_interrupt() { return sp_intr_; }

  /// Pulsed whenever a message lands in any rx queue.
  sim::Signal& rx_arrival() { return rx_arrival_; }
  /// Pulsed whenever tx or rx queue space frees up.
  sim::Signal& queue_space() { return queue_space_; }

  [[nodiscard]] CtrlStats& stats() { return stats_; }
  [[nodiscard]] const CtrlStats& stats() const { return stats_; }

  /// Snapshot state: every tx/rx hardware queue's control block (enable /
  /// shutdown flags, free-running producer/consumer counters, binding),
  /// the per-class round-robin cursors, flow-id sequence, interrupt status
  /// and all CTRL counters (DESIGN.md §14).
  void ckpt_save(ckpt::Writer& w) const;

  /// Shut down tx queue `q` (protection machinery): the queue stops
  /// launching, the shutdown status register bit is set and a protection
  /// interrupt is raised. Also the surface for the reliable-delivery
  /// layer's give-up path: a peer declared dead shuts the sending queue.
  void shutdown_tx_queue(unsigned q);

 private:
  friend class BlockEngines;

  sim::Co<void> command_loop(sim::Channel<Command>& chan,
                             sim::Counter& counter);
  sim::Co<void> execute(Command cmd);
  sim::Co<void> run_block_command(Command cmd);
  sim::Co<void> finish_command(const Command& cmd);

  /// Translate a (masked) virtual destination. nullopt => protection fail.
  sim::Co<std::optional<XlatEntry>> translate(std::uint16_t and_mask,
                                              std::uint16_t or_mask,
                                              std::uint16_t vdest);

  sim::Co<void> write_shadow(mem::Addr offset, std::uint32_t value);
  /// Gate entry to the miss/overflow queue, honoring its full policy.
  /// Returns false when the message must be dropped.
  sim::Co<bool> divert_to_miss();
  sim::Co<void> rx_enqueue(unsigned qidx, const RxDescriptor& desc,
                           std::span<const std::byte> data,
                           std::uint64_t flow = 0);
  [[nodiscard]] int rx_lookup(net::QueueId logical) const;

  // --- Tracing helpers (no-ops when no tracer is attached) -------------------
  /// The kernel's tracer when tracing is on, else nullptr.
  [[nodiscard]] trace::Tracer* tracing() const;
  /// Lazily register a lane under this NIU's node process ("n0").
  trace::TrackId trace_lane(trace::TrackId& cache, std::string lane,
                            std::string_view category,
                            bool counter = false) const;
  void trace_tx_depth(unsigned q);
  void trace_rx_depth(unsigned q);
  /// Close residency spans for `count` consumed slots of rx queue q.
  void trace_rx_consumed(unsigned q, unsigned count);

  sim::NodeId node_;
  Params params_;
  std::uint64_t flow_seq_ = 0;  // per-node flow ids for traced packets
  mem::DualPortedSram& asram_;
  mem::DualPortedSram& ssram_;
  mem::ClsSram& cls_;
  ApBusPort* ap_port_ = nullptr;
  net::Network* network_ = nullptr;

  std::array<TxQueueState, kNumTxQueues> txq_{};
  std::array<RxQueueState, kNumRxQueues> rxq_{};
  unsigned tx_rr_[kNumPriorityClasses] = {};  // round-robin state per class

  std::array<std::unique_ptr<sim::Channel<Command>>, kNumCmdQueues>
      local_cmds_;
  std::unique_ptr<sim::Channel<Command>> remote_cmds_;
  unsigned cmds_in_flight_ = 0;
  sim::Signal cmds_drained_;
  sim::Signal cmd_progress_;

  std::unique_ptr<BlockEngines> blocks_;

  sim::Semaphore ibus_;
  sim::Semaphore net_port_;
  sim::Signal tx_work_;
  sim::Signal rx_arrival_;
  sim::Signal queue_space_;
  sim::Signal sp_intr_;
  std::uint64_t intr_status_ = 0;
  std::uint64_t intr_enable_ = ~std::uint64_t{0};

  CtrlStats stats_;
  sim::Logger log_;
  bool started_ = false;

  // Trace lanes (lazily registered; kNoTrack until first use).
  mutable trace::TrackId ibus_track_ = trace::kNoTrack;
  mutable trace::TrackId txu_track_ = trace::kNoTrack;
  mutable trace::TrackId rxu_track_ = trace::kNoTrack;
  mutable trace::TrackId inject_track_ = trace::kNoTrack;
  mutable trace::TrackId cmd_track_ = trace::kNoTrack;
  mutable std::array<trace::TrackId, kNumTxQueues> txq_depth_track_;
  mutable std::array<trace::TrackId, kNumRxQueues> rxq_depth_track_;
  mutable std::array<trace::TrackId, kNumRxQueues> rxq_res_track_;
  struct RxResident {
    std::uint64_t flow;
    sim::Tick since;
  };
  std::array<std::deque<RxResident>, kNumRxQueues> rx_resident_;
};

}  // namespace sv::niu

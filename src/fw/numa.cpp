#include "fw/numa.hpp"
#include "ckpt/io.hpp"

namespace sv::fw {

namespace {

std::vector<std::byte> with_data(const NumaMsg& msg,
                                 std::span<const std::byte> data) {
  std::vector<std::byte> out(sizeof(NumaMsg) + data.size());
  std::memcpy(out.data(), &msg, sizeof(NumaMsg));
  std::memcpy(out.data() + sizeof(NumaMsg), data.data(), data.size());
  return out;
}

}  // namespace

NumaEngine::NumaEngine(sim::Kernel& kernel, std::string name,
                       cpu::Processor& sp, niu::SBiu& sbiu, Params params,
                       Costs costs)
    : FwService(kernel, std::move(name), sp, sbiu, params.queues.numa_req,
                /*scratch=*/0x0F00, costs),
      params_(params) {}

void NumaEngine::start() {
  sim::spawn(client_loop());
  sim::spawn(home_loop());
  sim::spawn(reply_loop());
}

void NumaEngine::claim_region(mem::Addr base, mem::Addr size,
                              RegionHandler handler) {
  claims_.push_back(Claim{base, size, std::move(handler)});
}

sim::NodeId NumaEngine::home_of(mem::Addr a) const {
  return static_cast<sim::NodeId>(((a - params_.base) / params_.page_bytes) %
                                  params_.num_nodes);
}

sim::Co<void> NumaEngine::client_loop() {
  auto& ops = sbiu_.numa_ops();
  for (;;) {
    niu::FwdOp op = co_await ops.pop();
    bool claimed = false;
    for (const Claim& c : claims_) {
      if (op.addr >= c.base && op.addr < c.base + c.size) {
        co_await c.handler(op);
        claimed = true;
        break;
      }
    }
    if (!claimed) {
      co_await handle_op(std::move(op));
    }
  }
}

sim::Co<void> NumaEngine::handle_op(niu::FwdOp op) {
  const sim::Tick h0 = now();
  co_await sp_.acquire();
  co_await sp_.work(costs_.dispatch + costs_.handler);
  const sim::NodeId home = home_of(op.addr);
  const mem::Addr backing = backing_of(op.addr);

  if (niu::classify(op.op) == niu::OpClass::kLoad) {
    if (home == node()) {
      // Local home: fetch the line and complete the retried load directly.
      std::byte line[mem::kLineBytes];
      co_await read_ap(backing, line);
      niu::Command supply;
      supply.op = niu::CmdOp::kSupplyLoad;
      supply.tag = op.token;
      supply.data.assign(line, line + mem::kLineBytes);
      co_await sbiu_.immediate(std::move(supply));
    } else {
      remote_loads_.inc();
      NumaMsg msg;
      msg.kind = NumaMsg::kReadReq;
      msg.requester = static_cast<std::uint16_t>(node());
      msg.token = op.token;
      msg.addr = op.addr;
      co_await send(home, kNumaReqL, to_bytes(msg));
    }
  } else {
    if (home == node()) {
      co_await write_ap(backing, op.wdata);
    } else {
      remote_stores_.inc();
      NumaMsg msg;
      msg.kind = NumaMsg::kWrite;
      msg.requester = static_cast<std::uint16_t>(node());
      msg.addr = op.addr;
      co_await send(home, kNumaReqL, with_data(msg, op.wdata));
    }
  }
  sp_.release();
  trace_handler("numa.client", h0);
}

sim::Co<void> NumaEngine::home_loop() {
  for (;;) {
    co_await wait_msg();
    const sim::Tick h0 = now();
    co_await sp_.acquire();
    co_await sp_.work(costs_.dispatch + costs_.handler);
    RxMsg rx = co_await read_msg();
    const auto msg = rx.as<NumaMsg>();
    const mem::Addr backing = backing_of(msg.addr);

    if (msg.kind == NumaMsg::kReadReq) {
      std::byte line[mem::kLineBytes];
      co_await read_ap(backing, line);
      NumaMsg rsp;
      rsp.kind = NumaMsg::kReadRsp;
      rsp.token = msg.token;
      rsp.addr = msg.addr;
      co_await send(msg.requester, kNumaRspL, with_data(rsp, line),
                    net::kPriorityHigh);
    } else if (msg.kind == NumaMsg::kWrite) {
      const std::span<const std::byte> data(
          rx.data.data() + sizeof(NumaMsg), rx.data.size() - sizeof(NumaMsg));
      co_await write_ap(backing, data);
    }
    sp_.release();
    trace_handler("numa.home", h0);
  }
}

sim::Co<void> NumaEngine::reply_loop() {
  auto& ctrl = sbiu_.ctrl();
  const unsigned q = params_.queues.numa_rsp;
  for (;;) {
    while (ctrl.rxq(q).empty()) {
      co_await ctrl.rx_arrival();
    }
    const sim::Tick h0 = now();
    co_await sp_.acquire();
    co_await sp_.work(costs_.dispatch);
    auto& rq = ctrl.rxq(q);
    const std::uint32_t slot = rq.slot_addr(rq.consumer);
    std::byte buf[niu::kBasicHeaderBytes + sizeof(NumaMsg) +
                  mem::kLineBytes];
    co_await sbiu_.read_ssram(slot, buf);
    co_await sbiu_.rx_consumer_update(
        q, static_cast<std::uint16_t>(rq.consumer + 1));

    NumaMsg msg{};
    std::memcpy(&msg, buf + niu::kBasicHeaderBytes, sizeof(NumaMsg));
    niu::Command supply;
    supply.op = niu::CmdOp::kSupplyLoad;
    supply.tag = msg.token;
    supply.data.assign(
        buf + niu::kBasicHeaderBytes + sizeof(NumaMsg),
        buf + niu::kBasicHeaderBytes + sizeof(NumaMsg) + mem::kLineBytes);
    co_await sbiu_.immediate(std::move(supply));
    sp_.release();
    trace_handler("numa.reply", h0);
  }
}

void NumaEngine::ckpt_save(ckpt::Writer& w) const {
  FwService::ckpt_save(w);
  w.u64(remote_loads_.value());
  w.u64(remote_stores_.value());
}

}  // namespace sv::fw

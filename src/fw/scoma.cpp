#include "fw/scoma.hpp"

#include "niu/abiu.hpp"
#include <algorithm>
#include "ckpt/io.hpp"
#include "sim/crc32.hpp"

namespace sv::fw {

namespace {

std::vector<std::byte> with_data(const ScomaMsg& msg,
                                 std::span<const std::byte> data) {
  std::vector<std::byte> out(sizeof(ScomaMsg) + data.size());
  std::memcpy(out.data(), &msg, sizeof(ScomaMsg));
  std::memcpy(out.data() + sizeof(ScomaMsg), data.data(), data.size());
  return out;
}

}  // namespace

ScomaEngine::ScomaEngine(sim::Kernel& kernel, std::string name,
                         cpu::Processor& sp, niu::SBiu& sbiu, Params params,
                         Costs costs)
    : FwService(kernel, std::move(name), sp, sbiu, params.queues.scoma_req,
                /*scratch=*/0x0F40, costs),
      params_(params),
      acks_(kernel) {}

void ScomaEngine::start() {
  sim::spawn(client_loop());
  sim::spawn(demand_loop());
  sim::spawn(home_loop());
}

sim::NodeId ScomaEngine::home_of(mem::Addr a) const {
  return static_cast<sim::NodeId>(((a - params_.base) / params_.page_bytes) %
                                  params_.num_nodes);
}

void ScomaEngine::enable_hw_miss_send() {
  sbiu_.abiu().set_hw_miss_send([this](const niu::FwdOp& op) {
    ScomaMsg msg;
    msg.kind = niu::classify(op.op) == niu::OpClass::kLoad
                   ? ScomaMsg::kReadReq
                   : ScomaMsg::kWriteReq;
    msg.node = static_cast<std::uint16_t>(node());
    msg.addr = op.addr;
    if (msg.kind == ScomaMsg::kReadReq) {
      sstats_.read_misses.inc();
    } else {
      sstats_.write_misses.inc();
    }
    net::Packet pkt;
    pkt.src = node();
    pkt.dest = home_of(op.addr);
    pkt.dest_queue = kScomaReqL;
    pkt.priority = net::kPriorityLow;
    const auto bytes = to_bytes(msg);
    pkt.payload.assign(bytes.begin(), bytes.end());
    return pkt;
  });
}

void ScomaEngine::init_cls() {
  // O(1) regardless of region size: install the home-ownership map as the
  // SRAM's power-on default instead of poking every line. Everything is
  // value-captured (home_of is pure in these params), so the function
  // outlives the engine if teardown order ever changes.
  const mem::Addr base = params_.base;
  const mem::Addr page = params_.page_bytes;
  const std::size_t num_nodes = params_.num_nodes;
  const sim::NodeId self = node();
  sbiu_.ctrl().cls().set_default(
      [base, page, num_nodes, self](mem::Addr a) -> std::uint8_t {
        const auto home =
            static_cast<sim::NodeId>(((a - base) / page) % num_nodes);
        return home == self ? niu::ABiu::kClsReadWrite
                            : niu::ABiu::kClsInvalid;
      });
}

ScomaEngine::Dir& ScomaEngine::dir_of(mem::Addr line) {
  auto [it, inserted] = dirs_.try_emplace(line);
  if (inserted) {
    it->second.owner = static_cast<std::uint16_t>(node());  // home starts RW
  }
  return it->second;
}

sim::Co<void> ScomaEngine::set_local_cls(mem::Addr line, std::uint8_t cls) {
  niu::Command cmd;
  cmd.op = niu::CmdOp::kWriteClsState;
  cmd.addr = line;
  cmd.len = mem::kLineBytes;
  cmd.cls_bits = cls;
  co_await sbiu_.immediate(std::move(cmd));
}

sim::Co<void> ScomaEngine::flush_local(mem::Addr line) {
  niu::Command cmd;
  cmd.op = niu::CmdOp::kBusFlush;
  cmd.addr = line;
  co_await sbiu_.immediate(std::move(cmd));
}

// --- Client side --------------------------------------------------------------

sim::Co<void> ScomaEngine::client_loop() {
  auto& ops = sbiu_.scoma_ops();
  for (;;) {
    niu::FwdOp op = co_await ops.pop();
    const sim::Tick h0 = now();
    co_await sp_.acquire();
    co_await sp_.work(costs_.dispatch + costs_.handler);
    ScomaMsg msg;
    msg.kind = niu::classify(op.op) == niu::OpClass::kLoad ? ScomaMsg::kReadReq
                                                      : ScomaMsg::kWriteReq;
    msg.node = static_cast<std::uint16_t>(node());
    msg.addr = op.addr;
    if (msg.kind == ScomaMsg::kReadReq) {
      sstats_.read_misses.inc();
    } else {
      sstats_.write_misses.inc();
    }
    co_await send(home_of(op.addr), kScomaReqL, to_bytes(msg));
    sp_.release();
    trace_handler("scoma.miss", h0);
  }
}

sim::Co<void> ScomaEngine::demand_loop() {
  auto& ctrl = sbiu_.ctrl();
  const unsigned q = params_.queues.scoma_rsp;
  for (;;) {
    while (ctrl.rxq(q).empty()) {
      co_await ctrl.rx_arrival();
    }
    const sim::Tick h0 = now();
    co_await sp_.acquire();
    co_await sp_.work(costs_.dispatch);
    auto& rq = ctrl.rxq(q);
    const std::uint32_t slot = rq.slot_addr(rq.consumer);
    std::byte buf[niu::kBasicHeaderBytes + sizeof(ScomaMsg) +
                  mem::kLineBytes];
    co_await sbiu_.read_ssram(slot, buf);
    const auto desc = niu::RxDescriptor::decode(buf);
    co_await sbiu_.rx_consumer_update(
        q, static_cast<std::uint16_t>(rq.consumer + 1));
    ScomaMsg msg{};
    std::memcpy(&msg, buf + niu::kBasicHeaderBytes, sizeof(ScomaMsg));

    switch (msg.kind) {
      case ScomaMsg::kInval: {
        co_await sp_.work(costs_.handler);
        // Close the line before flushing the cache: otherwise the aP can
        // refill a stale copy in the window between flush and cls update.
        co_await set_local_cls(msg.addr, niu::ABiu::kClsInvalid);
        co_await flush_local(msg.addr);
        ScomaMsg ack;
        ack.kind = ScomaMsg::kAck;
        ack.node = static_cast<std::uint16_t>(node());
        ack.addr = msg.addr;
        co_await send(desc.src_node, kScomaRspL, to_bytes(ack),
                      net::kPriorityHigh);
        break;
      }
      case ScomaMsg::kRecallShare:
      case ScomaMsg::kRecallInval: {
        co_await sp_.work(costs_.handler);
        // Demote the cls state before flushing so the aP cannot slip a
        // stale refill (or a silent store) into the demotion window.
        co_await set_local_cls(msg.addr,
                               msg.kind == ScomaMsg::kRecallShare
                                   ? niu::ABiu::kClsReadOnly
                                   : niu::ABiu::kClsInvalid);
        co_await flush_local(msg.addr);
        std::byte line[mem::kLineBytes];
        co_await read_ap(msg.addr, line);
        ScomaMsg ack;
        ack.kind = ScomaMsg::kAckData;
        ack.node = static_cast<std::uint16_t>(node());
        ack.addr = msg.addr;
        co_await send(desc.src_node, kScomaRspL, with_data(ack, line),
                      net::kPriorityHigh);
        break;
      }
      case ScomaMsg::kAck:
      case ScomaMsg::kAckData: {
        AckInfo info;
        info.kind = msg.kind;
        info.node = msg.node;
        info.addr = msg.addr;
        info.data.assign(buf + niu::kBasicHeaderBytes + sizeof(ScomaMsg),
                         buf + niu::kBasicHeaderBytes + sizeof(ScomaMsg) +
                             (desc.length - sizeof(ScomaMsg)));
        acks_.push(std::move(info));
        break;
      }
      default:
        break;
    }
    sp_.release();
    trace_handler("scoma.demand", h0);
  }
}

// --- Home side ----------------------------------------------------------------

sim::Co<void> ScomaEngine::home_loop() {
  for (;;) {
    co_await wait_msg();
    const sim::Tick h0 = now();
    co_await sp_.acquire();
    co_await sp_.work(costs_.dispatch);
    RxMsg rx = co_await read_msg();
    sp_.release();
    co_await serve_request(rx.as<ScomaMsg>());
    trace_handler("scoma.home", h0);
  }
}

sim::Co<void> ScomaEngine::recall_owner(Dir& dir, mem::Addr line,
                                        bool to_shared) {
  const std::uint16_t owner = dir.owner;
  dir.owner = kNoOwner;
  sstats_.recalls.inc();
  if (owner == node()) {
    // The home itself holds the line RW: flush the aP cache so DRAM is
    // current and demote our own cls state.
    co_await sp_.acquire();
    co_await sp_.work(costs_.handler);
    co_await set_local_cls(line, to_shared ? niu::ABiu::kClsReadOnly
                                           : niu::ABiu::kClsInvalid);
    co_await flush_local(line);
    sp_.release();
    if (to_shared) {
      dir.sharers.insert(static_cast<std::uint16_t>(node()));
    }
    co_return;
  }

  ScomaMsg recall;
  recall.kind =
      to_shared ? ScomaMsg::kRecallShare : ScomaMsg::kRecallInval;
  recall.node = static_cast<std::uint16_t>(node());
  recall.addr = line;
  co_await sp_.acquire();
  co_await sp_.work(costs_.handler);
  co_await send(owner, kScomaRspL, to_bytes(recall), net::kPriorityHigh);
  sp_.release();

  // Collect the data ack (the demand loop routes it to us). The sP is free
  // while we wait. Unrelated acks are set aside and requeued afterwards.
  std::vector<AckInfo> deferred;
  for (;;) {
    AckInfo ack = co_await acks_.pop();
    if (ack.kind == ScomaMsg::kAckData && ack.addr == line) {
      co_await sp_.acquire();
      co_await sp_.work(costs_.handler);
      co_await write_ap(line, ack.data);
      sp_.release();
      break;
    }
    deferred.push_back(std::move(ack));
  }
  for (auto& d : deferred) {
    acks_.push(std::move(d));
  }
  if (to_shared) {
    dir.sharers.insert(owner);
  }
}

sim::Co<void> ScomaEngine::invalidate_sharers(Dir& dir, mem::Addr line,
                                              std::uint16_t except) {
  unsigned expected = 0;
  for (const std::uint16_t s : dir.sharers) {
    if (s == except) {
      continue;
    }
    sstats_.invalidations.inc();
    if (s == node()) {
      co_await sp_.acquire();
      co_await sp_.work(costs_.handler);
      co_await set_local_cls(line, niu::ABiu::kClsInvalid);
      co_await flush_local(line);
      sp_.release();
      continue;
    }
    ScomaMsg inval;
    inval.kind = ScomaMsg::kInval;
    inval.node = static_cast<std::uint16_t>(node());
    inval.addr = line;
    co_await sp_.acquire();
    co_await sp_.work(costs_.handler);
    co_await send(s, kScomaRspL, to_bytes(inval), net::kPriorityHigh);
    sp_.release();
    ++expected;
  }
  std::vector<AckInfo> deferred;
  while (expected > 0) {
    AckInfo ack = co_await acks_.pop();
    if (ack.kind == ScomaMsg::kAck && ack.addr == line) {
      --expected;
    } else {
      deferred.push_back(std::move(ack));
    }
  }
  for (auto& d : deferred) {
    acks_.push(std::move(d));
  }
  dir.sharers.clear();
}

sim::Co<void> ScomaEngine::grant(mem::Addr line, std::uint16_t to,
                                 std::uint8_t cls) {
  sstats_.grants.inc();
  if (to == node()) {
    co_await sp_.acquire();
    co_await sp_.work(costs_.handler);
    co_await set_local_cls(line, cls);
    sp_.release();
    co_return;
  }
  std::byte data[mem::kLineBytes];
  co_await sp_.acquire();
  co_await sp_.work(costs_.handler);
  co_await read_ap(line, data);

  niu::Command wr;
  wr.op = niu::CmdOp::kWriteApDram;
  wr.addr = line;
  wr.data.assign(data, data + mem::kLineBytes);
  wr.set_cls = true;
  wr.cls_bits = cls;
  wr.src_node = static_cast<std::uint16_t>(node());
  net::Packet pkt;
  pkt.src = node();
  pkt.dest = to;
  pkt.dest_queue = net::kRemoteCmdQueue;
  pkt.priority = net::kPriorityHigh;
  pkt.payload = niu::encode_remote(wr);
  co_await sbiu_.ctrl().inject(std::move(pkt));
  sp_.release();
}

sim::Co<void> ScomaEngine::serve_request(const ScomaMsg& req) {
  Dir& dir = dir_of(req.addr);
  const auto self = static_cast<std::uint16_t>(node());

  if (req.kind == ScomaMsg::kReadReq) {
    if (dir.owner != kNoOwner) {
      if (dir.owner == req.node) {
        co_return;  // stale request: requester already owns the line
      }
      co_await recall_owner(dir, req.addr, /*to_shared=*/true);
    }
    co_await grant(req.addr, req.node, niu::ABiu::kClsReadOnly);
    dir.sharers.insert(req.node);
    co_return;
  }

  if (req.kind == ScomaMsg::kWriteReq) {
    if (dir.owner != kNoOwner) {
      if (dir.owner == req.node) {
        co_return;  // stale: already exclusive
      }
      co_await recall_owner(dir, req.addr, /*to_shared=*/false);
    }
    co_await invalidate_sharers(dir, req.addr, req.node);
    // If the home granted itself RO earlier it is in sharers and was not
    // excepted; make sure our own cls is clean when granting remotely.
    if (req.node != self) {
      co_await sp_.acquire();
      co_await set_local_cls(req.addr, niu::ABiu::kClsInvalid);
      co_await flush_local(req.addr);
      sp_.release();
    }
    co_await grant(req.addr, req.node, niu::ABiu::kClsReadWrite);
    dir.owner = req.node;
    co_return;
  }
}

// --- ChunkOpener -----------------------------------------------------------------

ChunkOpener::ChunkOpener(sim::Kernel& kernel, std::string name,
                         cpu::Processor& sp, niu::SBiu& sbiu,
                         FwQueueMap queues, std::uint8_t open_bits,
                         Costs costs)
    : FwService(kernel, std::move(name), sp, sbiu, queues.chunk_arrival,
                /*scratch=*/0x0F80, costs),
      open_bits_(open_bits) {}

void ChunkOpener::start() { sim::spawn(loop()); }

sim::Co<void> ChunkOpener::loop() {
  for (;;) {
    co_await wait_msg();
    const sim::Tick h0 = now();
    co_await sp_.acquire();
    co_await sp_.work(costs_.dispatch);
    RxMsg msg = co_await read_msg();
    std::uint64_t addr = 0;
    std::uint32_t len = 0;
    std::memcpy(&addr, msg.data.data(), 8);
    std::memcpy(&len, msg.data.data() + 8, 4);
    co_await sp_.work(costs_.handler);
    niu::Command cmd;
    cmd.op = niu::CmdOp::kWriteClsState;
    cmd.addr = addr;
    cmd.len = len;
    cmd.cls_bits = open_bits_;
    co_await sbiu_.immediate(std::move(cmd));
    sp_.release();
    trace_handler("chunk.open", h0);
  }
}

void ScomaEngine::ckpt_save(ckpt::Writer& w) const {
  FwService::ckpt_save(w);
  w.u64(sstats_.read_misses.value());
  w.u64(sstats_.write_misses.value());
  w.u64(sstats_.recalls.value());
  w.u64(sstats_.invalidations.value());
  w.u64(sstats_.grants.value());
  std::vector<mem::Addr> lines;
  lines.reserve(dirs_.size());
  for (const auto& [line, dir] : dirs_) {
    (void)dir;
    lines.push_back(line);
  }
  std::sort(lines.begin(), lines.end());
  std::uint32_t crc = 0;
  for (const mem::Addr line : lines) {
    const Dir& dir = dirs_.at(line);
    crc = sim::crc32(std::as_bytes(std::span(&line, 1)), crc);
    const std::uint16_t owner = dir.owner;
    crc = sim::crc32(std::as_bytes(std::span(&owner, 1)), crc);
    for (const std::uint16_t sharer : dir.sharers) {  // std::set: sorted
      crc = sim::crc32(std::as_bytes(std::span(&sharer, 1)), crc);
    }
  }
  w.u64(lines.size());
  w.u32(crc);
}

}  // namespace sv::fw

#include "fw/reflective.hpp"

namespace sv::fw {

ReflectiveEngine::ReflectiveEngine(sim::Kernel& kernel, std::string name,
                                   cpu::Processor& sp, niu::SBiu& sbiu,
                                   Params params, Costs costs)
    : FwService(kernel, std::move(name), sp, sbiu,
                params.queues.fw_done /*unused queue*/, /*scratch=*/0x0FE0,
                costs),
      params_(std::move(params)) {
  sbiu_.abiu().add_reflect_range(params_.local_base, params_.size,
                                 /*hw_mode=*/false, params_.peers);
}

void ReflectiveEngine::start() { sim::spawn(loop()); }

sim::Co<void> ReflectiveEngine::loop() {
  auto& ops = sbiu_.abiu().reflect_ops();
  for (;;) {
    niu::FwdOp op = co_await ops.pop();
    const sim::Tick h0 = now();
    co_await sp_.acquire();
    co_await sp_.work(costs_.dispatch + costs_.handler);
    for (const auto& peer : params_.peers) {
      niu::Command wr;
      wr.op = niu::CmdOp::kWriteApDram;
      wr.addr = peer.remote_base + (op.addr - params_.local_base);
      wr.src_node = static_cast<std::uint16_t>(node());
      wr.data = op.wdata;

      net::Packet pkt;
      pkt.src = node();
      pkt.dest = peer.node;
      pkt.dest_queue = net::kRemoteCmdQueue;
      pkt.priority = net::kPriorityLow;
      pkt.payload = niu::encode_remote(wr);
      co_await sbiu_.ctrl().inject(std::move(pkt));
    }
    events_.inc();
    sp_.release();
    trace_handler("reflect", h0);
  }
}

}  // namespace sv::fw

#include "fw/dma.hpp"

#include <algorithm>
#include "ckpt/io.hpp"

namespace sv::fw {

DmaEngine::DmaEngine(sim::Kernel& kernel, std::string name,
                     cpu::Processor& sp, niu::SBiu& sbiu, Params params,
                     Costs costs)
    : FwService(kernel, std::move(name), sp, sbiu, params.queues.dma_req,
                /*scratch=*/params.staging_offset - 64, costs),
      params_(params),
      done_seen_(kernel) {}

void DmaEngine::start() {
  sim::spawn(loop());
  sim::spawn(done_loop());
}

sim::Co<void> DmaEngine::loop() {
  for (;;) {
    co_await wait_msg();
    const sim::Tick h0 = now();
    co_await sp_.acquire();
    co_await sp_.work(costs_.dispatch);
    RxMsg msg = co_await read_msg();
    sp_.release();
    co_await handle(msg.as<DmaRequest>());
    trace_handler("dma", h0);
  }
}

sim::Co<void> DmaEngine::done_loop() {
  auto& ctrl = sbiu_.ctrl();
  const unsigned q = params_.queues.fw_done;
  for (;;) {
    while (ctrl.rxq(q).empty()) {
      co_await ctrl.rx_arrival();
    }
    const sim::Tick h0 = now();
    co_await sp_.acquire();
    co_await sp_.work(costs_.dispatch);
    auto& rq = ctrl.rxq(q);
    const std::uint32_t slot = rq.slot_addr(rq.consumer);
    std::byte buf[niu::kBasicHeaderBytes + 8];
    co_await sbiu_.read_ssram(slot, buf);
    std::uint32_t tag = 0;
    std::memcpy(&tag, buf + niu::kBasicHeaderBytes, 4);
    co_await sbiu_.rx_consumer_update(
        q, static_cast<std::uint16_t>(rq.consumer + 1));
    sp_.release();
    trace_handler("dma.done", h0);
    completed_tags_.push_back(tag);
    done_seen_.pulse();
  }
}

sim::Co<void> DmaEngine::wait_done(std::uint32_t tag) {
  for (;;) {
    auto it =
        std::find(completed_tags_.begin(), completed_tags_.end(), tag);
    if (it != completed_tags_.end()) {
      completed_tags_.erase(it);
      co_return;
    }
    co_await done_seen_;
  }
}

sim::Co<void> DmaEngine::handle(DmaRequest req) {
  if (req.kind == 1) {
    // Pull: ask the node holding the data to push it back to us.
    DmaRequest push = req;
    push.kind = 0;
    push.reply_node = static_cast<std::uint16_t>(node());
    const sim::NodeId holder = req.dest_node;
    push.dest_node = static_cast<std::uint16_t>(node());
    push.sender_done_queue = niu::kNoNotify;
    co_await sp_.acquire();
    co_await sp_.work(costs_.handler);
    co_await send(holder, kDmaReqL, to_bytes(push));
    sp_.release();
    co_return;
  }

  // Push: split into page-bounded chunks, ping-pong two staging areas, and
  // keep at most two block transfers in flight.
  const std::uint32_t staging_bytes =
      2 * sbiu_.ctrl().params().block_chunk_bytes;
  std::uint32_t issued = 0;
  std::vector<std::uint32_t> tags;

  std::uint64_t src = req.src_addr;
  std::uint64_t dst = req.dst_addr;
  std::uint32_t remaining = req.len;
  while (remaining > 0) {
    const auto n = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        {remaining, params_.chunk,
         niu::kBlockMaxBytes - (src % niu::kBlockMaxBytes),
         niu::kBlockMaxBytes - (dst % niu::kBlockMaxBytes)}));
    const bool last = n == remaining;

    if (issued >= 2) {
      co_await wait_done(tags[issued - 2]);
    }

    niu::Command cmd;
    cmd.op = niu::CmdOp::kBlockXfer;
    cmd.addr = src;
    cmd.dest_addr = dst;
    cmd.len = n;
    cmd.bank = niu::SramBank::kSSram;
    cmd.sram_offset =
        params_.staging_offset + (issued % 2) * staging_bytes;
    cmd.dest_node = req.dest_node;
    cmd.notify_queue = kFwDoneL;
    cmd.notify_tag = next_tag_++;
    if (last && req.completion_queue != niu::kNoNotify) {
      cmd.remote_notify = true;
      cmd.remote_notify_queue = req.completion_queue;
      cmd.remote_notify_tag = req.completion_tag;
    }
    tags.push_back(cmd.notify_tag);

    co_await sp_.acquire();
    co_await sp_.work(costs_.handler);
    co_await sbiu_.post(params_.cmdq, std::move(cmd));
    sp_.release();

    src += n;
    dst += n;
    remaining -= n;
    ++issued;
  }

  // Drain the tail of the pipeline.
  for (std::uint32_t i = issued >= 2 ? issued - 2 : 0; i < issued; ++i) {
    co_await wait_done(tags[i]);
  }

  if (req.sender_done_queue != niu::kNoNotify) {
    niu::Command note;
    note.op = niu::CmdOp::kNotifyLocal;
    note.queue = req.sender_done_queue;
    note.src_node = static_cast<std::uint16_t>(node());
    note.data.resize(4);
    std::memcpy(note.data.data(), &req.sender_done_tag, 4);
    co_await sp_.acquire();
    co_await sbiu_.immediate(std::move(note));
    sp_.release();
  }
}

void DmaEngine::ckpt_save(ckpt::Writer& w) const {
  FwService::ckpt_save(w);
  w.u32(next_tag_);
  w.u64(completed_tags_.size());
  for (const std::uint32_t tag : completed_tags_) {
    w.u32(tag);
  }
}

}  // namespace sv::fw

#include "fw/firmware.hpp"

#include "ckpt/io.hpp"

namespace sv::fw {

FwService::FwService(sim::Kernel& kernel, std::string name,
                     cpu::Processor& sp, niu::SBiu& sbiu, unsigned hwq,
                     std::uint32_t scratch, Costs costs)
    : sim::SimObject(kernel, std::move(name)),
      sp_(sp),
      sbiu_(sbiu),
      hwq_(hwq),
      scratch_(scratch),
      costs_(costs) {}

void FwService::trace_handler(const char* what, sim::Tick start) {
  trace::Tracer* tr = kernel_.tracer();
  if (tr == nullptr || !tr->enabled() || now() < start) {
    return;
  }
  if (trace_track_ == trace::kNoTrack) {
    trace_track_ = tr->track_for(name(), "fw");
  }
  tr->span(trace_track_, what, start, now());
}

bool FwService::has_msg() const {
  return !sbiu_.ctrl().rxq(hwq_).empty();
}

sim::Co<void> FwService::wait_msg() {
  auto& ctrl = sbiu_.ctrl();
  while (ctrl.rxq(hwq_).empty()) {
    co_await ctrl.rx_arrival();
  }
}

sim::Co<RxMsg> FwService::read_msg() {
  auto& ctrl = sbiu_.ctrl();
  auto& q = ctrl.rxq(hwq_);
  RxMsg msg;
  const std::uint32_t slot = q.slot_addr(q.consumer);
  std::byte hdr[niu::kBasicHeaderBytes];
  co_await sbiu_.read_ssram(slot, hdr);
  msg.desc = niu::RxDescriptor::decode(hdr);
  if (msg.desc.length > 0) {
    msg.data.resize(msg.desc.length);
    co_await sbiu_.read_ssram(slot + niu::kBasicHeaderBytes, msg.data);
  }
  co_await sbiu_.rx_consumer_update(
      hwq_, static_cast<std::uint16_t>(q.consumer + 1));
  events_.inc();
  co_return msg;
}

sim::Co<void> FwService::send(sim::NodeId dest, net::QueueId q,
                              std::span<const std::byte> data,
                              std::uint8_t priority) {
  niu::Command cmd;
  cmd.op = niu::CmdOp::kSendMessage;
  cmd.dest_node = dest;
  cmd.queue = q;
  cmd.priority = priority;
  cmd.data.assign(data.begin(), data.end());
  co_await sbiu_.immediate(std::move(cmd));
}

sim::Co<void> FwService::read_ap(mem::Addr addr, std::span<std::byte> out) {
  niu::Command cmd;
  cmd.op = niu::CmdOp::kReadApDram;
  cmd.addr = addr;
  cmd.len = static_cast<std::uint32_t>(out.size());
  cmd.bank = niu::SramBank::kSSram;
  cmd.sram_offset = scratch_;
  co_await sbiu_.immediate(std::move(cmd));
  co_await sbiu_.read_ssram(scratch_, out);
}

sim::Co<void> FwService::write_ap(mem::Addr addr,
                                  std::span<const std::byte> in) {
  niu::Command cmd;
  cmd.op = niu::CmdOp::kWriteApDram;
  cmd.addr = addr;
  cmd.data.assign(in.begin(), in.end());
  co_await sbiu_.immediate(std::move(cmd));
}

void FwService::ckpt_save(ckpt::Writer& w) const { w.u64(events_.value()); }

}  // namespace sv::fw

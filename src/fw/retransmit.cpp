#include "fw/retransmit.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

#include "ckpt/stats_io.hpp"
#include "trace/trace.hpp"

namespace sv::fw {

RetransmitEngine::RetransmitEngine(sim::Kernel& kernel, std::string name,
                                   Params params)
    : sim::SimObject(kernel, std::move(name)),
      params_(params),
      rearm_(kernel) {
  assert(params_.base_timeout > 0);
  assert(params_.backoff >= 1.0);
}

void RetransmitEngine::bind(RetransmitFn retransmit, GiveUpFn give_up) {
  retransmit_ = std::move(retransmit);
  give_up_ = std::move(give_up);
}

void RetransmitEngine::start() {
  if (started_) {
    throw std::logic_error(name() + ": started twice");
  }
  started_ = true;
  sim::spawn(timer_loop());
}

void RetransmitEngine::arm(sim::NodeId peer) {
  PeerTimer& t = timers_[peer];
  if (t.armed || t.dead) {
    return;
  }
  t.armed = true;
  t.deadline = now() + timeout_for(t.attempts);
  rearm_.pulse();
}

void RetransmitEngine::progress(sim::NodeId peer) {
  PeerTimer& t = timers_[peer];
  t.attempts = 0;
  if (t.armed) {
    t.deadline = now() + params_.base_timeout;
  }
}

void RetransmitEngine::disarm(sim::NodeId peer) {
  timers_[peer].armed = false;
}

bool RetransmitEngine::given_up(sim::NodeId peer) const {
  const auto it = timers_.find(peer);
  return it != timers_.end() && it->second.dead;
}

sim::Tick RetransmitEngine::timeout_for(unsigned attempts) const {
  double t = static_cast<double>(params_.base_timeout);
  for (unsigned i = 0; i < attempts; ++i) {
    t *= params_.backoff;
  }
  return static_cast<sim::Tick>(t);
}

void RetransmitEngine::mark(const char* what, sim::NodeId peer) {
  if (trace::Tracer* tr = kernel_.tracer()) {
    const trace::TrackId t = tr->track_for(name(), "fw");
    tr->instant(t, std::string(what) + " n" + std::to_string(peer), now());
  }
}

sim::Co<void> RetransmitEngine::timer_loop() {
  for (;;) {
    // Earliest armed deadline; sleep on rearm_ when nothing is pending.
    sim::Tick next = sim::kTickInvalid;
    for (const auto& [peer, t] : timers_) {
      if (t.armed && !t.dead && t.deadline < next) {
        next = t.deadline;
      }
    }
    if (next == sim::kTickInvalid) {
      co_await rearm_;
      continue;
    }
    if (next > now()) {
      // Oversleeping is fine: deadlines only move outward while we sleep,
      // and the loop re-scans after every wakeup.
      co_await sim::delay(kernel_, next - now());
      continue;
    }

    // Fire every expired timer. std::map iterators stay valid across the
    // co_await (arm() may insert, nothing erases).
    for (auto& [peer, t] : timers_) {
      if (!t.armed || t.dead || t.deadline > now()) {
        continue;
      }
      ++t.attempts;
      if (t.attempts > params_.give_up_after) {
        t.dead = true;
        t.armed = false;
        stats_.giveups.inc();
        mark("retx give-up", peer);
        if (give_up_) {
          give_up_(peer);
        }
        continue;
      }
      stats_.timeouts.inc();
      mark("retx timeout", peer);
      t.deadline = now() + timeout_for(t.attempts);
      if (retransmit_) {
        co_await retransmit_(peer);
      }
    }
  }
}

void RetransmitEngine::ckpt_save(ckpt::Writer& w) const {
  w.u64(timers_.size());
  for (const auto& [peer, t] : timers_) {
    w.u32(peer);
    w.b(t.armed);
    w.b(t.dead);
    w.u32(t.attempts);
    w.tick(t.deadline);
  }
  ckpt::save(w, stats_.timeouts);
  ckpt::save(w, stats_.giveups);
}

}  // namespace sv::fw

// Reflective-memory emulation (paper section 5, "Extending Default
// Mechanisms"): Shrimp/Memory-Channel-style automatic update.
//
// The aBIU watches stores to a configured DRAM window and captures the
// written data. In firmware mode (this engine) the sP forwards each update
// to every subscribed peer as a remote kWriteApDram; the aBIU also supports
// an all-hardware mode where it composes the remote update itself (see
// ABiu::add_reflect_range) — the paper's "further enhancements to the aBIU"
// variant, useful for comparing firmware vs. hardware implementation cost.
#pragma once

#include "fw/firmware.hpp"
#include "niu/abiu.hpp"

namespace sv::fw {

class ReflectiveEngine final : public FwService {
 public:
  struct Params {
    mem::Addr local_base = 0;
    mem::Addr size = 0;
    std::vector<niu::ABiu::ReflectPeer> peers;
    FwQueueMap queues;
  };

  ReflectiveEngine(sim::Kernel& kernel, std::string name, cpu::Processor& sp,
                   niu::SBiu& sbiu, Params params, Costs costs = {});

  void start() override;

  [[nodiscard]] const sim::Counter& updates_forwarded() const {
    return events_;
  }

 private:
  sim::Co<void> loop();
  Params params_;
};

}  // namespace sv::fw

// Timeout-retransmit engine for the reliable-delivery layer.
//
// Plays the role of a firmware handler on the service processor: it keeps
// one timer per peer with outstanding unacknowledged frames, fires a
// retransmission when the timer expires, backs the timeout off
// exponentially on repeated expiries, and after a configurable number of
// fruitless attempts declares the peer dead (the give-up callback — the
// msg::ReliableChannel wires this to the NIU's tx-queue shutdown
// machinery, so an unreachable peer surfaces exactly like a protection
// shutdown).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "sim/coro.hpp"
#include "sim/kernel.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace sv::fw {

class RetransmitEngine : public sim::SimObject {
 public:
  struct Params {
    sim::Tick base_timeout = 50 * sim::kMicrosecond;
    double backoff = 2.0;      // timeout multiplier per consecutive expiry
    unsigned give_up_after = 8;  // expiries with no progress => peer dead
  };

  /// Resend everything still outstanding to `peer`.
  using RetransmitFn = std::function<sim::Co<void>(sim::NodeId peer)>;
  /// The peer has been declared dead (called at most once per peer).
  using GiveUpFn = std::function<void(sim::NodeId peer)>;

  struct Stats {
    sim::Counter timeouts;  // expiries that triggered a retransmission
    sim::Counter giveups;
  };

  RetransmitEngine(sim::Kernel& kernel, std::string name, Params params);

  void bind(RetransmitFn retransmit, GiveUpFn give_up);

  /// Spawn the timer process. Call once, after bind().
  void start();

  /// Ensure a timer is running for `peer` (no-op if already armed or dead).
  void arm(sim::NodeId peer);
  /// Forward progress (a new cumulative ACK): reset the backoff and push
  /// the deadline out from now.
  void progress(sim::NodeId peer);
  /// Nothing outstanding any more: stop the timer.
  void disarm(sim::NodeId peer);

  [[nodiscard]] bool given_up(sim::NodeId peer) const;
  [[nodiscard]] const Params& params() const { return params_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Snapshot state: per-peer timers (armed/dead flags, backoff attempt
  /// count, absolute deadline) and the timeout/give-up counters.
  void ckpt_save(ckpt::Writer& w) const;

 private:
  struct PeerTimer {
    bool armed = false;
    bool dead = false;
    unsigned attempts = 0;  // consecutive expiries without progress
    sim::Tick deadline = 0;
  };

  [[nodiscard]] sim::Tick timeout_for(unsigned attempts) const;
  sim::Co<void> timer_loop();
  void mark(const char* what, sim::NodeId peer);

  Params params_;
  RetransmitFn retransmit_;
  GiveUpFn give_up_;
  Stats stats_;
  std::map<sim::NodeId, PeerTimer> timers_;
  sim::Signal rearm_;
  bool started_ = false;
};

}  // namespace sv::fw

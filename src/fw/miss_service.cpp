#include "fw/miss_service.hpp"
#include "ckpt/io.hpp"

namespace sv::fw {

MissService::MissService(sim::Kernel& kernel, std::string name,
                         cpu::Processor& sp, niu::SBiu& sbiu,
                         FwQueueMap queues, Costs costs)
    : FwService(kernel, std::move(name), sp, sbiu, queues.miss,
                /*scratch=*/0x0FC0, costs) {}

void MissService::start() { sim::spawn(loop()); }

void MissService::register_queue(net::QueueId logical, DramQueueDesc desc) {
  queues_[logical] = Entry{desc, 0};
}

sim::Co<void> MissService::loop() {
  for (;;) {
    co_await wait_msg();
    const sim::Tick h0 = now();
    co_await sp_.acquire();
    co_await sp_.work(costs_.dispatch);
    RxMsg msg = co_await read_msg();

    auto it = queues_.find(msg.desc.logical);
    if (it == queues_.end()) {
      unregistered_.inc();
      sp_.release();
      trace_handler("miss.unregistered", h0);
      continue;
    }
    Entry& e = it->second;

    // Full check against the aP-maintained consumer word in DRAM.
    std::byte cword[4];
    co_await read_ap(e.desc.base + 4, cword);
    std::uint32_t consumer = 0;
    std::memcpy(&consumer, cword, 4);
    if (e.producer - consumer >= e.desc.slots) {
      overflowed_.inc();
      sp_.release();
      trace_handler("miss.overflow", h0);
      continue;
    }

    co_await sp_.work(costs_.handler);
    // Write descriptor + data into the DRAM slot, then publish producer.
    std::vector<std::byte> slot(niu::kBasicHeaderBytes + msg.data.size());
    msg.desc.encode(slot.data());
    std::memcpy(slot.data() + niu::kBasicHeaderBytes, msg.data.data(),
                msg.data.size());
    co_await write_ap(e.desc.slot_addr(e.producer), slot);
    ++e.producer;
    std::byte pword[4];
    std::memcpy(pword, &e.producer, 4);
    co_await write_ap(e.desc.base, pword);
    sp_.release();
    trace_handler("miss.spill", h0);
  }
}

void MissService::ckpt_save(ckpt::Writer& w) const {
  FwService::ckpt_save(w);
  w.u64(unregistered_.value());
  w.u64(overflowed_.value());
  w.u64(queues_.size());
  for (const auto& [logical, entry] : queues_) {  // std::map: key order
    w.u32(logical);
    w.u32(entry.producer);
  }
}

}  // namespace sv::fw

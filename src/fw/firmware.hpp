// Firmware framework for the sP.
//
// Firmware is a set of event-driven services (DMA, NUMA, S-COMA, miss
// service, ...) that share the single sP: a service acquires the processor
// for the duration of each handler, so firmware occupancy — the effect the
// paper's evaluation highlights — emerges naturally from contention.
//
// Standard queue plan (configured by sys::Node):
//   hw rx queue 8   DMA requests            logical kDmaReqL
//   hw rx queue 9   NUMA home requests      logical kNumaReqL
//   hw rx queue 10  NUMA client replies     logical kNumaRspL
//   hw rx queue 11  S-COMA home requests    logical kScomaReqL
//   hw rx queue 12  S-COMA demands/acks     logical kScomaRspL
//   hw rx queue 13  chunk arrivals          logical niu::kChunkArrivalQueue
//   hw rx queue 14  firmware completions    logical kFwDoneL
//   hw rx queue 15  miss/overflow queue     (no logical binding)
#pragma once

#include <algorithm>
#include <cstring>
#include <type_traits>
#include <vector>

#include "cpu/processor.hpp"
#include "niu/sbiu.hpp"
#include "sim/coro.hpp"
#include "trace/trace.hpp"

namespace sv::ckpt {
class Writer;
}  // namespace sv::ckpt

namespace sv::fw {

inline constexpr net::QueueId kDmaReqL = 0x0F00;
inline constexpr net::QueueId kNumaReqL = 0x0F01;
inline constexpr net::QueueId kNumaRspL = 0x0F02;
inline constexpr net::QueueId kScomaReqL = 0x0F03;
inline constexpr net::QueueId kScomaRspL = 0x0F04;
inline constexpr net::QueueId kFwDoneL = 0x0F05;

struct FwQueueMap {
  unsigned dma_req = 8;
  unsigned numa_req = 9;
  unsigned numa_rsp = 10;
  unsigned scoma_req = 11;
  unsigned scoma_rsp = 12;
  unsigned chunk_arrival = 13;
  unsigned fw_done = 14;
  unsigned miss = niu::kMissRxQueue;
};

struct RxMsg {
  niu::RxDescriptor desc;
  std::vector<std::byte> data;

  template <typename T>
  [[nodiscard]] T as() const {
    static_assert(std::is_trivially_copyable_v<T>);
    T v{};
    std::memcpy(&v, data.data(), std::min(sizeof(T), data.size()));
    return v;
  }
};

template <typename T>
[[nodiscard]] std::vector<std::byte> to_bytes(const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<std::byte> out(sizeof(T));
  std::memcpy(out.data(), &v, sizeof(T));
  return out;
}

/// Base class for firmware services: message receive, message send, and
/// aP-DRAM access helpers, all with explicit sP cycle costs.
class FwService : public sim::SimObject {
 public:
  struct Costs {
    sim::Cycles dispatch = 20;  // wake + decode per event
    sim::Cycles handler = 30;   // base handling work per event
  };

  FwService(sim::Kernel& kernel, std::string name, cpu::Processor& sp,
            niu::SBiu& sbiu, unsigned hwq, std::uint32_t scratch,
            Costs costs);

  virtual ~FwService() = default;

  /// Spawn the service's loops.
  virtual void start() = 0;

  /// Snapshot state. The base writes the event counter; engines with
  /// protocol state (directories, queue images, in-flight tags) override
  /// and chain back to this.
  virtual void ckpt_save(ckpt::Writer& w) const;

 protected:
  /// Wait (without occupying the sP) until this service's queue is
  /// non-empty.
  sim::Co<void> wait_msg();
  [[nodiscard]] bool has_msg() const;

  /// Read and consume the head message (charges sbiu costs). The caller
  /// must hold the sP.
  sim::Co<RxMsg> read_msg();

  /// Send a protocol message to `dest`'s logical queue `q`.
  sim::Co<void> send(sim::NodeId dest, net::QueueId q,
                     std::span<const std::byte> data,
                     std::uint8_t priority = net::kPriorityLow);

  /// Coherent aP-DRAM access through CTRL (immediate commands).
  sim::Co<void> read_ap(mem::Addr addr, std::span<std::byte> out);
  sim::Co<void> write_ap(mem::Addr addr, std::span<const std::byte> in);

  [[nodiscard]] sim::NodeId node() const { return sbiu_.ctrl().node(); }

  /// Record a trace span `what` covering [start, now] on this service's
  /// lane (SimObject name, e.g. "n0.fw.dma"). No-op unless tracing.
  void trace_handler(const char* what, sim::Tick start);

  cpu::Processor& sp_;
  niu::SBiu& sbiu_;
  unsigned hwq_;
  std::uint32_t scratch_;  // private sSRAM scratch area offset
  Costs costs_;
  sim::Counter events_;

 private:
  trace::TrackId trace_track_ = trace::kNoTrack;
};

}  // namespace sv::fw

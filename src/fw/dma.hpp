// DMA engine firmware (paper section 5).
//
// The aP requests a DMA by sending a Basic message to the sP's DMA queue.
// Firmware splits the transfer into page-bounded block operations and posts
// chained kBlockXfer commands, ping-ponging between two sSRAM staging areas
// so the block engines stay busy across page boundaries. Completion is
// signalled to the receiver ("am_store"-style message into its regular
// queue) and optionally back to the sender.
//
// A remote-read DMA is implemented by forwarding the request to the remote
// sP, which performs the push in the opposite direction.
#pragma once

#include <cstdint>
#include <deque>

#include "fw/firmware.hpp"
#include "niu/block_ops.hpp"

namespace sv::fw {

/// Wire format of a DMA request message (aP -> sP, or sP -> remote sP).
struct DmaRequest {
  std::uint64_t src_addr = 0;   // DRAM address at the data's source node
  std::uint64_t dst_addr = 0;   // DRAM address at the destination node
  std::uint32_t len = 0;
  std::uint16_t dest_node = 0;  // where the data lands
  std::uint16_t kind = 0;       // 0 = write/push, 1 = read/pull
  net::QueueId completion_queue = niu::kNoNotify;  // receiver-side notify
  std::uint16_t _pad0 = 0;
  std::uint32_t completion_tag = 0;
  net::QueueId sender_done_queue = niu::kNoNotify;  // sender-side notify
  std::uint16_t reply_node = 0;  // pull: node the data must be pushed to
  std::uint32_t sender_done_tag = 0;

  /// Block-op alignment contract (see niu::BlockEngines).
  [[nodiscard]] bool aligned() const {
    return src_addr % mem::kLineBytes == 0 &&
           dst_addr % mem::kLineBytes == 0 && len % mem::kLineBytes == 0;
  }
};

class DmaEngine final : public FwService {
 public:
  struct Params {
    std::uint32_t staging_offset = 0x10000;  // sSRAM: 2 areas x 2 buffers
    std::uint32_t chunk = niu::kBlockMaxBytes;
    unsigned cmdq = 0;
    FwQueueMap queues;
  };

  DmaEngine(sim::Kernel& kernel, std::string name, cpu::Processor& sp,
            niu::SBiu& sbiu, Params params, Costs costs = {});

  void start() override;

  [[nodiscard]] const sim::Counter& requests() const { return events_; }

  /// Snapshot state: base event counter, the tag allocator, and any
  /// completion tags seen but not yet consumed by wait_done().
  void ckpt_save(ckpt::Writer& w) const override;

 private:
  sim::Co<void> loop();
  sim::Co<void> done_loop();
  sim::Co<void> handle(DmaRequest req);
  sim::Co<void> wait_done(std::uint32_t tag);

  Params params_;
  std::deque<std::uint32_t> completed_tags_;
  sim::Signal done_seen_;
  std::uint32_t next_tag_ = 0x40000000;
};

}  // namespace sv::fw

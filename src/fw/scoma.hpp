// S-COMA shared-memory firmware (paper section 5).
//
// The S-COMA region is a global address range backed, on every node, by
// local DRAM used as an L3 cache; clsSRAM keeps 4 state bits per line that
// the aBIU checks on every aP bus operation. Firmware runs a home-based
// MSI invalidate protocol at cache-line granularity:
//
//   client miss  -> ReadReq/WriteReq to the line's (page-interleaved) home
//   home         -> recalls the RW owner / invalidates sharers as needed,
//                   then grants by a remote kWriteApDram carrying the line
//                   data *and* the new cls state — the grant is executed
//                   entirely by the requester's NIU hardware ("data
//                   supplied by a remote node ... can be received via the
//                   remote command queue to avoid firmware execution on the
//                   return", paper section 5).
//
// Deadlock discipline: requests (ReadReq/WriteReq) and demands/replies
// (Inval/Recall/Ack) travel on distinct logical queues serviced by distinct
// loops; the demand loop never waits on remote state, so the home can
// always collect its acks.
//
// cls encodings are ABiu::ClsState. Directory state lives in firmware
// (sP program state), charged via handler costs.
#pragma once

#include <set>
#include <unordered_map>

#include "fw/firmware.hpp"
#include "niu/regs.hpp"

namespace sv::fw {

struct ScomaMsg {
  enum Kind : std::uint8_t {
    kReadReq = 0,
    kWriteReq = 1,
    kInval = 2,
    kRecallShare = 3,
    kRecallInval = 4,
    kAck = 5,
    kAckData = 6,
  };
  std::uint8_t kind = kReadReq;
  std::uint8_t _pad = 0;
  std::uint16_t node = 0;  // requester / acker
  std::uint32_t _pad2 = 0;
  std::uint64_t addr = 0;  // line address
  // kAckData: line data follows on the wire.
};

class ScomaEngine final : public FwService {
 public:
  struct Params {
    FwQueueMap queues;
    std::size_t num_nodes = 2;
    mem::Addr base = niu::kScomaBase;
    mem::Addr size = niu::kScomaDefaultSize;
    std::uint32_t page_bytes = 4096;  // home interleave granularity
  };

  ScomaEngine(sim::Kernel& kernel, std::string name, cpu::Processor& sp,
              niu::SBiu& sbiu, Params params, Costs costs = {});

  void start() override;

  /// One-time cls initialization: home-owned lines start ReadWrite at the
  /// home, everything else Invalid. Call before the simulation begins.
  void init_cls();

  /// Install the paper's aBIU extension: the aBIU composes and sends miss
  /// requests to the home directly, bypassing this engine's client loop
  /// (which stays running but sees no traffic). Home/demand handling is
  /// unchanged.
  void enable_hw_miss_send();

  [[nodiscard]] sim::NodeId home_of(mem::Addr a) const;

  struct Stats {
    sim::Counter read_misses;
    sim::Counter write_misses;
    sim::Counter recalls;
    sim::Counter invalidations;
    sim::Counter grants;
  };
  [[nodiscard]] const Stats& stats() const { return sstats_; }

  /// Snapshot state: base event counter, the five protocol counters, and
  /// a digest of the directory (owner + sharer sets, in line order).
  void ckpt_save(ckpt::Writer& w) const override;

 private:
  static constexpr std::uint16_t kNoOwner = 0xFFFF;
  struct Dir {
    std::uint16_t owner = kNoOwner;
    std::set<std::uint16_t> sharers;
  };

  sim::Co<void> client_loop();  // aBIU-forwarded misses -> requests
  sim::Co<void> demand_loop();  // Inval/Recall demands + routing acks
  sim::Co<void> home_loop();    // serves requests serially

  sim::Co<void> serve_request(const ScomaMsg& req);
  /// Demote/evict the current owner so the home DRAM copy is valid again.
  sim::Co<void> recall_owner(Dir& dir, mem::Addr line, bool to_shared);
  sim::Co<void> invalidate_sharers(Dir& dir, mem::Addr line,
                                   std::uint16_t except);
  sim::Co<void> grant(mem::Addr line, std::uint16_t to, std::uint8_t cls);
  sim::Co<void> set_local_cls(mem::Addr line, std::uint8_t cls);
  sim::Co<void> flush_local(mem::Addr line);

  Dir& dir_of(mem::Addr line);

  Params params_;
  std::unordered_map<mem::Addr, Dir> dirs_;

  struct AckInfo {
    std::uint8_t kind;
    std::uint16_t node;
    mem::Addr addr;
    std::vector<std::byte> data;
  };
  sim::Channel<AckInfo> acks_;
  Stats sstats_;
};

/// Approach-4 helper: a service that opens clsSRAM lines as block-transfer
/// chunks arrive (consumes the kChunkArrivalQueue notifications emitted by
/// remote writes carrying chunk_notify).
class ChunkOpener final : public FwService {
 public:
  ChunkOpener(sim::Kernel& kernel, std::string name, cpu::Processor& sp,
              niu::SBiu& sbiu, FwQueueMap queues, std::uint8_t open_bits,
              Costs costs = {});

  void start() override;

  [[nodiscard]] const sim::Counter& chunks_opened() const { return events_; }

 private:
  sim::Co<void> loop();
  std::uint8_t open_bits_;
};

}  // namespace sv::fw

// Rx-queue-cache miss service (paper section 4).
//
// The NIU caches a small number of logical receive queues in hardware; a
// message for an unbound logical queue is diverted to the miss/overflow
// queue, and this firmware writes it to the queue's DRAM-resident image.
// The aP library polls the DRAM-resident queue directly (msg::DramQueue).
//
// DRAM-resident queue layout (base must be 64-byte aligned):
//   base + 0   u32 producer (written by firmware)
//   base + 4   u32 consumer (written by the aP library)
//   base + 64  slots (slot_bytes each: 8-byte RxDescriptor + data)
#pragma once

#include <map>

#include "fw/firmware.hpp"

namespace sv::fw {

struct DramQueueDesc {
  mem::Addr base = 0;
  std::uint16_t slots = 0;
  std::uint16_t slot_bytes = niu::kBasicSlotBytes;

  [[nodiscard]] mem::Addr slot_addr(std::uint32_t producer) const {
    return base + 64 + static_cast<mem::Addr>(producer % slots) * slot_bytes;
  }
};

class MissService final : public FwService {
 public:
  MissService(sim::Kernel& kernel, std::string name, cpu::Processor& sp,
              niu::SBiu& sbiu, FwQueueMap queues, Costs costs = {});

  void start() override;

  /// Register the DRAM-resident image of logical queue `logical`.
  void register_queue(net::QueueId logical, DramQueueDesc desc);

  [[nodiscard]] const sim::Counter& serviced() const { return events_; }
  [[nodiscard]] const sim::Counter& unregistered() const {
    return unregistered_;
  }
  [[nodiscard]] const sim::Counter& overflowed() const { return overflowed_; }

  /// Snapshot state: base event counter, the unregistered/overflow counts,
  /// and every registered queue's firmware-side producer cursor.
  void ckpt_save(ckpt::Writer& w) const override;

 private:
  sim::Co<void> loop();

  struct Entry {
    DramQueueDesc desc;
    std::uint32_t producer = 0;  // firmware-side cached copy
  };
  std::map<net::QueueId, Entry> queues_;
  sim::Counter unregistered_;
  sim::Counter overflowed_;
};

}  // namespace sv::fw

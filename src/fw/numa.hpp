// NUMA shared-memory firmware (paper section 5).
//
// aP accesses in the 1 GB NUMA window are forwarded by the aBIU to the sP
// (loads are retried on the bus until firmware supplies the data; stores
// are absorbed and posted). Firmware maps each page to a home node
// (page-interleaved) whose DRAM holds the backing storage, and runs a
// simple remote-access protocol:
//
//   client: load miss  -> ReadReq to home; reply data -> kSupplyLoad
//           store      -> Write (with data) to home
//   home:   ReadReq    -> read backing DRAM, ReadRsp (high priority)
//           Write      -> write backing DRAM
//
// There is no caching and hence no coherence traffic — exactly the
// mechanism's contract. Regions of the window can be claimed by other
// engines (e.g. reflective memory) through the handler registry.
#pragma once

#include <functional>
#include <map>

#include "fw/firmware.hpp"
#include "niu/regs.hpp"

namespace sv::fw {

/// Backing storage for NUMA address A lives at the home node's DRAM
/// address kNumaBackingBase + (A - kNumaBase).
inline constexpr mem::Addr kNumaBackingBase = 0x1000'0000;

struct NumaMsg {
  enum Kind : std::uint8_t { kReadReq = 0, kReadRsp = 1, kWrite = 2 };
  std::uint8_t kind = kReadReq;
  std::uint8_t _pad = 0;
  std::uint16_t requester = 0;
  std::uint32_t token = 0;
  std::uint64_t addr = 0;
  // kWrite/kReadRsp: data bytes follow the struct on the wire.
};

class NumaEngine final : public FwService {
 public:
  struct Params {
    FwQueueMap queues;
    std::size_t num_nodes = 2;
    mem::Addr base = niu::kNumaBase;
    std::uint32_t page_bytes = 4096;  // home interleave granularity
  };

  /// A claimed sub-window handler: receives forwarded ops instead of the
  /// NUMA protocol.
  using RegionHandler = std::function<sim::Co<void>(const niu::FwdOp&)>;

  NumaEngine(sim::Kernel& kernel, std::string name, cpu::Processor& sp,
             niu::SBiu& sbiu, Params params, Costs costs = {});

  void start() override;

  /// Route forwarded ops in [base, base+size) to `handler` instead.
  void claim_region(mem::Addr base, mem::Addr size, RegionHandler handler);

  [[nodiscard]] sim::NodeId home_of(mem::Addr a) const;
  [[nodiscard]] mem::Addr backing_of(mem::Addr a) const {
    return kNumaBackingBase + (a - params_.base);
  }

  [[nodiscard]] const sim::Counter& remote_loads() const {
    return remote_loads_;
  }
  [[nodiscard]] const sim::Counter& remote_stores() const {
    return remote_stores_;
  }

  /// Snapshot state: base event counter plus remote load/store counts.
  /// (claims_ is construction-time wiring, not dynamic state.)
  void ckpt_save(ckpt::Writer& w) const override;

 private:
  sim::Co<void> client_loop();   // consumes aBIU-forwarded operations
  sim::Co<void> home_loop();     // services ReadReq/Write messages
  sim::Co<void> reply_loop();    // services ReadRsp messages

  sim::Co<void> handle_op(niu::FwdOp op);

  Params params_;
  struct Claim {
    mem::Addr base;
    mem::Addr size;
    RegionHandler handler;
  };
  std::vector<Claim> claims_;
  sim::Counter remote_loads_;
  sim::Counter remote_stores_;
};

}  // namespace sv::fw

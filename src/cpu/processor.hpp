// Scripted processor model.
//
// Workloads are coroutines that issue cached/uncached loads and stores,
// cache-management ops and abstract "work" (compute cycles). The same model
// serves the 166 MHz application processor (with its snooping cache) and
// the 100 MHz embedded service processor.
//
// Occupancy accounting: every tick a program spends inside a Processor
// operation is charged to busy(); the paper's aP/sP occupancy comparisons
// come straight from this tracker.
#pragma once

#include <functional>

#include "mem/bus.hpp"
#include "mem/cache.hpp"
#include "sim/coro.hpp"
#include "sim/fastpath.hpp"
#include "sim/kernel.hpp"
#include "sim/stats.hpp"

namespace sv::cpu {

class Processor : public sim::SimObject, public mem::BusDevice {
 public:
  struct Params {
    sim::Clock clock{6000};        // 166.67 MHz 604e
    sim::Cycles op_overhead = 2;   // issue overhead per memory operation
    /// Quantum batching: fold a guaranteed single-chunk cache hit (work
    /// charge + hit delay) into one kernel event when the access provably
    /// cannot observe or affect shared state (DESIGN.md §12). Bit-identical
    /// either way; defaults off under SV_NO_FASTPATH=1.
    bool fastpath = sim::fastpath_default();
  };

  /// `cache` may be null (the sP model runs uncached).
  Processor(sim::Kernel& kernel, std::string name, mem::MemBus& bus,
            mem::SnoopingCache* cache, Params params);

  [[nodiscard]] const Params& params() const { return params_; }
  [[nodiscard]] mem::SnoopingCache* cache() { return cache_; }

  /// Execute for `c` processor cycles (models instruction work).
  sim::Co<void> work(sim::Cycles c);

  /// Cacheable accesses (require a cache).
  sim::Co<void> load(mem::Addr a, std::span<std::byte> out);
  sim::Co<void> store(mem::Addr a, std::span<const std::byte> in);

  /// Uncached accesses (straight to the bus, split into <=8-byte singles).
  sim::Co<void> load_uncached(mem::Addr a, std::span<std::byte> out);
  sim::Co<void> store_uncached(mem::Addr a, std::span<const std::byte> in);

  template <typename T>
  sim::Co<T> load_scalar(mem::Addr a, bool cached = true) {
    T v{};
    auto buf = std::as_writable_bytes(std::span(&v, 1));
    if (cached) {
      co_await load(a, buf);
    } else {
      co_await load_uncached(a, buf);
    }
    co_return v;
  }

  template <typename T>
  sim::Co<void> store_scalar(mem::Addr a, T v, bool cached = true) {
    auto buf = std::as_bytes(std::span(&v, 1));
    if (cached) {
      co_await store(a, buf);
    } else {
      co_await store_uncached(a, buf);
    }
  }

  /// Cache management (dcbf / dcbi equivalents). No-ops without a cache.
  sim::Co<void> flush_line(mem::Addr a);
  sim::Co<void> flush_range(mem::Addr a, std::size_t len);
  sim::Co<void> invalidate_line(mem::Addr a);

  /// Mutual exclusion for agents sharing this processor (firmware handlers
  /// serialize on the sP through this).
  sim::Co<void> acquire() { co_await mutex_.acquire(); }
  void release() { mutex_.release(); }

  /// Spawn a program on this processor. `done` (optional) fires when the
  /// program returns.
  void run(sim::Co<void> program, sim::OneShot* done = nullptr);

  /// Total simulated time spent executing operations.
  [[nodiscard]] sim::Tick busy() const { return busy_.busy(); }
  [[nodiscard]] const sim::Counter& ops() const { return ops_; }

  /// Simulated ticks covered by batched quanta. Deliberately an accessor,
  /// not a StatRegistry entry: it is zero in slow mode by construction and
  /// the registry dump must stay byte-identical across modes.
  [[nodiscard]] sim::Tick quantum_ticks() const { return quantum_ticks_; }

  /// Snapshot state: op count, busy time, and batched-quantum coverage.
  void ckpt_save(ckpt::Writer& w) const;

  // --- BusDevice (the processor masters the bus for uncached ops; it never
  // claims addresses or holds state, so snooping is trivial) ---
  [[nodiscard]] std::string_view device_name() const override {
    return name();
  }
  mem::SnoopResult bus_snoop(const mem::BusRequest&) override { return {}; }
  [[nodiscard]] bool bus_snoop_stable(const mem::BusRequest&) const override {
    return true;  // bus_snoop is unconditionally kIgnore
  }
  [[nodiscard]] bool bus_observe_trivial(
      const mem::BusRequest&) const override {
    return true;  // bus_observe is the default no-op
  }
  void fastpath_revoke() override { batch_revoke(); }

 private:
  class BusyScope;

  /// In-flight batched quantum. At most one can be live per processor —
  /// try_batch refuses to engage while one is — but programs sharing the
  /// processor (several coroutines may issue cached accesses concurrently,
  /// e.g. the app runtime's ranks plus its shm dispatcher) mean a revoked
  /// waiter can still be pending its wake event while a *new* batch
  /// engages and reuses this record. Per-await outcome state therefore
  /// lives in the awaiter (stable inside the suspended coroutine frame),
  /// never in this shared record.
  struct Batch {
    bool live = false;
    std::uint64_t gen = 0;   // liveness token for the completion event
    std::uint64_t s0 = 0;    // work-phase key; completion key is s0 + 1
    sim::Tick t0 = 0;        // operation entry time
    sim::Tick t_work = 0;    // end of the issue-overhead charge
    sim::Tick t_end = 0;     // completion (t_work + cache hit latency)
    void* line = nullptr;    // cache line handle captured at engagement
    mem::Addr addr = 0;
    std::byte* rdata = nullptr;
    const std::byte* wdata = nullptr;
    std::size_t size = 0;
    std::coroutine_handle<> waiter;
    int* outcome = nullptr;  // awaiter-owned; 0 completed, 1 revoked
  };

  struct BatchAwait {
    Processor& cpu;
    /// 0 = batch completed in one event; 1 = revoked, resume fell back to
    /// the slow schedule's work key. Written through Batch::outcome before
    /// this awaiter resumes; owned here so a later engagement overwriting
    /// the shared Batch record cannot alias it.
    mutable int result = 0;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const {
      cpu.batch_.waiter = h;
      cpu.batch_.outcome = &result;
    }
    int await_resume() const noexcept { return result; }
  };

  /// Check quantum-batch eligibility for a cached access and, on success,
  /// engage: lock the cache, fill batch_ and schedule the completion event
  /// at (t_end, s0 + 1).
  bool try_batch(mem::Addr a, std::byte* rdata, const std::byte* wdata,
                 std::size_t size, std::uint64_t s0, sim::Tick t0);
  void batch_complete(std::uint64_t gen);
  void batch_revoke();

  /// Record a busy span mirroring a busy_.add_busy charge, so the trace
  /// lane's occupancy equals busy()/now exactly.
  void trace_busy(const char* what, sim::Tick start, sim::Tick end);

  Params params_;
  mem::MemBus& bus_;
  mem::SnoopingCache* cache_;
  int bus_id_;
  sim::Semaphore mutex_;
  sim::BusyTracker busy_;
  sim::Counter ops_;
  sim::Tick quantum_ticks_ = 0;
  Batch batch_;
  trace::TrackId trace_track_ = trace::kNoTrack;
};

}  // namespace sv::cpu

#include "cpu/processor.hpp"

#include <algorithm>
#include <stdexcept>

#include "ckpt/stats_io.hpp"

namespace sv::cpu {

Processor::Processor(sim::Kernel& kernel, std::string name, mem::MemBus& bus,
                     mem::SnoopingCache* cache, Params params)
    : sim::SimObject(kernel, std::move(name)),
      params_(params),
      bus_(bus),
      cache_(cache),
      bus_id_(bus.attach(this)),
      mutex_(kernel, 1) {
  if (cache_ != nullptr) {
    // Cache entry points that could interleave with an in-flight batch
    // (flush/invalidate/purge and direct read/write) revoke it first, so
    // they always see the same mutex/schedule state as in slow mode.
    cache_->set_fastpath_revoke([this] { batch_revoke(); });
  }
}

void Processor::trace_busy(const char* what, sim::Tick start, sim::Tick end) {
  trace::Tracer* tr = kernel_.tracer();
  if (tr == nullptr || !tr->enabled() || end <= start) {
    return;
  }
  if (trace_track_ == trace::kNoTrack) {
    trace_track_ = tr->track_for(name(), "cpu");
  }
  tr->span(trace_track_, what, start, end);
}

sim::Co<void> Processor::work(sim::Cycles c) {
  const sim::Tick dur = params_.clock.to_ticks(c);
  busy_.add_busy(dur);
  trace_busy("work", now(), now() + dur);
  co_await sim::delay(kernel_, dur);
}

sim::Co<void> Processor::load(mem::Addr a, std::span<std::byte> out) {
  if (cache_ == nullptr) {
    co_await load_uncached(a, out);
    co_return;
  }
  // Reserve the work-phase key plus one key per cache chunk up front — in
  // BOTH modes — so fast and slow runs issue identical sequence numbers at
  // identical program points (the bit-identity argument, DESIGN.md §12).
  const sim::Tick t0 = now();
  const sim::Tick work_ticks = params_.clock.to_ticks(params_.op_overhead);
  const std::uint64_t s0 =
      kernel_.reserve_seqs(1 + mem::SnoopingCache::chunk_count(a, out.size()));
  busy_.add_busy(work_ticks);
  trace_busy("work", t0, t0 + work_ticks);
  if (try_batch(a, out.data(), nullptr, out.size(), s0, t0)) {
    if (co_await BatchAwait{*this} == 0) {
      co_return;  // completed in one event; stats applied at the hit key
    }
    // Revoked: resumed at (t_work, s0), exactly where the slow path's work
    // delay would have dispatched. Fall through to the slow cache access.
  } else {
    co_await sim::seq_delay(kernel_, t0 + work_ticks, s0);
  }
  co_await cache_->read(a, out, s0 + 1);
  ops_.inc();
  busy_.add_busy(now() - t0 - work_ticks);
  trace_busy("load", t0 + work_ticks, now());
}

sim::Co<void> Processor::store(mem::Addr a, std::span<const std::byte> in) {
  if (cache_ == nullptr) {
    co_await store_uncached(a, in);
    co_return;
  }
  const sim::Tick t0 = now();
  const sim::Tick work_ticks = params_.clock.to_ticks(params_.op_overhead);
  const std::uint64_t s0 =
      kernel_.reserve_seqs(1 + mem::SnoopingCache::chunk_count(a, in.size()));
  busy_.add_busy(work_ticks);
  trace_busy("work", t0, t0 + work_ticks);
  if (try_batch(a, nullptr, in.data(), in.size(), s0, t0)) {
    if (co_await BatchAwait{*this} == 0) {
      co_return;
    }
  } else {
    co_await sim::seq_delay(kernel_, t0 + work_ticks, s0);
  }
  co_await cache_->write(a, in, s0 + 1);
  ops_.inc();
  busy_.add_busy(now() - t0 - work_ticks);
  trace_busy("store", t0 + work_ticks, now());
}

// --- Quantum batching (DESIGN.md §12) --------------------------------------

bool Processor::try_batch(mem::Addr a, std::byte* rdata,
                          const std::byte* wdata, std::size_t size,
                          std::uint64_t s0, sim::Tick t0) {
  if (!params_.fastpath || kernel_.fault_injector() != nullptr) {
    return false;
  }
  trace::Tracer* tr = kernel_.tracer();
  if (tr != nullptr && tr->enabled()) {
    return false;
  }
  // A bus transaction in flight could snoop or observe this cache mid-batch
  // without re-entering transact (no revocation choke point), so the batch
  // requires a fully quiescent bus.
  if (!bus_.fast_quiescent()) {
    return false;
  }
  // Another program sharing this processor may already hold the batch
  // record (a live batch keeps the bus quiescent, so fast_quiescent()
  // cannot see it). Concurrent cached accesses take the slow path — whose
  // cache entry point revokes the live batch exactly like any other
  // interleaving agent would.
  if (batch_.live) {
    return false;
  }
  void* line = cache_->batch_begin(a, size, wdata != nullptr);
  if (line == nullptr) {
    return false;
  }
  Batch& b = batch_;
  b.live = true;
  ++b.gen;
  b.s0 = s0;
  b.t0 = t0;
  b.t_work = t0 + params_.clock.to_ticks(params_.op_overhead);
  b.t_end = b.t_work + cache_->hit_ticks();
  b.line = line;
  b.addr = a;
  b.rdata = rdata;
  b.wdata = wdata;
  b.size = size;
  kernel_.schedule_at_seq(b.t_end, s0 + 1,
                          [this, gen = b.gen] { batch_complete(gen); });
  bus_.note_device_fast_state(+1);
  return true;
}

void Processor::batch_complete(std::uint64_t gen) {
  Batch& b = batch_;
  if (!b.live || b.gen != gen) {
    return;  // revoked; this event is dead
  }
  // Reproduces the slow path's actions at its chunk-hit dispatch
  // (t_end, s0+1): commit through the handle captured at engagement (the
  // slow path captures its Line* before the hit delay and commits blindly
  // after), then the processor-side op accounting.
  cache_->batch_commit(b.line, b.addr, b.rdata, b.wdata, b.size);
  ops_.inc();
  busy_.add_busy(b.t_end - b.t_work);
  quantum_ticks_ += b.t_end - b.t0;
  b.live = false;
  *b.outcome = 0;
  bus_.note_device_fast_state(-1);
  // Resume last: the continuation may issue a new batch that re-uses the
  // record.
  b.waiter.resume();
}

void Processor::batch_revoke() {
  Batch& b = batch_;
  if (!b.live) {
    return;
  }
  const sim::Tick t = kernel_.now();
  const std::uint64_t s = kernel_.current_seq();
  if (t < b.t_work || (t == b.t_work && s < b.s0)) {
    // Before the work-phase key: fold back onto the slow schedule. Release
    // the eagerly-taken cache lock (nothing can be queued on it: it was
    // free at engagement and every acquirer since revokes first) and wake
    // the program at the work key — exactly where the slow path's first
    // event would have dispatched. Capture the handle and outcome slot
    // now: by the time the wake fires, another program may have engaged a
    // new batch and overwritten the shared record.
    ++b.gen;
    b.live = false;
    cache_->batch_abort();
    bus_.note_device_fast_state(-1);
    kernel_.schedule_at_seq(b.t_work, b.s0,
                            [h = b.waiter, out = b.outcome] {
                              *out = 1;
                              h.resume();
                            });
  }
  // At or after the work key this is a no-op: the slow path would hold the
  // cache lock here too, the completion event coincides with the slow
  // chunk-hit key, and the commit is blind — every observable already
  // matches the slow schedule, so the batch can safely run to completion.
}

sim::Co<void> Processor::load_uncached(mem::Addr a,
                                       std::span<std::byte> out) {
  std::size_t done = 0;
  while (done < out.size()) {
    const mem::Addr addr = a + done;
    const std::size_t to_boundary = 8 - (addr % 8);
    const auto n = static_cast<std::uint32_t>(
        std::min<std::size_t>({out.size() - done, to_boundary, 8}));
    const sim::Tick t0 = now();
    const sim::Tick work_ticks = params_.clock.to_ticks(params_.op_overhead);
    // The issue-overhead charge is folded into the transaction as a lead-in
    // (req.lead_ticks) instead of a separate work() delay: the slow path
    // replays it event-for-event, and the fast path completes the whole op
    // — work, arbitration, data tenure — in a single kernel event
    // (DESIGN.md §12). Busy/trace accounting stays here, at the same
    // dispatch the old work() call charged it.
    busy_.add_busy(work_ticks);
    trace_busy("work", t0, t0 + work_ticks);
    mem::BusRequest req;
    req.op = mem::BusOp::kReadSingle;
    req.addr = addr;
    req.size = n;
    req.rdata = out.data() + done;
    req.from_ap = true;
    req.lead_ticks = work_ticks;
    co_await bus_.transact_retry(bus_id_, req);
    ops_.inc();
    busy_.add_busy(now() - t0 - work_ticks);
    trace_busy("load.u", t0 + work_ticks, now());
    done += n;
  }
}

sim::Co<void> Processor::store_uncached(mem::Addr a,
                                        std::span<const std::byte> in) {
  std::size_t done = 0;
  while (done < in.size()) {
    const mem::Addr addr = a + done;
    const std::size_t to_boundary = 8 - (addr % 8);
    const auto n = static_cast<std::uint32_t>(
        std::min<std::size_t>({in.size() - done, to_boundary, 8}));
    const sim::Tick t0 = now();
    const sim::Tick work_ticks = params_.clock.to_ticks(params_.op_overhead);
    busy_.add_busy(work_ticks);
    trace_busy("work", t0, t0 + work_ticks);
    mem::BusRequest req;
    req.op = mem::BusOp::kWriteSingle;
    req.addr = addr;
    req.size = n;
    req.wdata = in.data() + done;
    req.from_ap = true;
    req.lead_ticks = work_ticks;
    co_await bus_.transact_retry(bus_id_, req);
    ops_.inc();
    busy_.add_busy(now() - t0 - work_ticks);
    trace_busy("store.u", t0 + work_ticks, now());
    done += n;
  }
}

sim::Co<void> Processor::flush_line(mem::Addr a) {
  if (cache_ == nullptr) {
    co_return;
  }
  const sim::Tick t0 = now();
  co_await cache_->flush_line(a);
  busy_.add_busy(now() - t0);
  trace_busy("flush", t0, now());
}

sim::Co<void> Processor::flush_range(mem::Addr a, std::size_t len) {
  if (cache_ == nullptr) {
    co_return;
  }
  const sim::Tick t0 = now();
  co_await cache_->flush_range(a, len);
  busy_.add_busy(now() - t0);
  trace_busy("flush", t0, now());
}

sim::Co<void> Processor::invalidate_line(mem::Addr a) {
  if (cache_ == nullptr) {
    co_return;
  }
  co_await cache_->invalidate_line(a);
}

void Processor::run(sim::Co<void> program, sim::OneShot* done) {
  sim::spawn([](sim::Co<void> prog, sim::OneShot* d) -> sim::Co<void> {
    co_await std::move(prog);
    if (d != nullptr) {
      d->fire();
    }
  }(std::move(program), done));
}

void Processor::ckpt_save(ckpt::Writer& w) const {
  ckpt::save(w, ops_);
  ckpt::save(w, busy_);
  w.u64(quantum_ticks_);
}

}  // namespace sv::cpu

#include "cpu/processor.hpp"

#include <algorithm>
#include <stdexcept>

namespace sv::cpu {

Processor::Processor(sim::Kernel& kernel, std::string name, mem::MemBus& bus,
                     mem::SnoopingCache* cache, Params params)
    : sim::SimObject(kernel, std::move(name)),
      params_(params),
      bus_(bus),
      cache_(cache),
      bus_id_(bus.attach(this)),
      mutex_(kernel, 1) {}

void Processor::trace_busy(const char* what, sim::Tick start, sim::Tick end) {
  trace::Tracer* tr = kernel_.tracer();
  if (tr == nullptr || !tr->enabled() || end <= start) {
    return;
  }
  if (trace_track_ == trace::kNoTrack) {
    trace_track_ = tr->track_for(name(), "cpu");
  }
  tr->span(trace_track_, what, start, end);
}

sim::Co<void> Processor::work(sim::Cycles c) {
  const sim::Tick dur = params_.clock.to_ticks(c);
  busy_.add_busy(dur);
  trace_busy("work", now(), now() + dur);
  co_await sim::delay(kernel_, dur);
}

sim::Co<void> Processor::load(mem::Addr a, std::span<std::byte> out) {
  if (cache_ == nullptr) {
    co_await load_uncached(a, out);
    co_return;
  }
  const sim::Tick t0 = now();
  co_await work(params_.op_overhead);
  co_await cache_->read(a, out);
  ops_.inc();
  busy_.add_busy(now() - t0 - params_.clock.to_ticks(params_.op_overhead));
  trace_busy("load", t0 + params_.clock.to_ticks(params_.op_overhead), now());
}

sim::Co<void> Processor::store(mem::Addr a, std::span<const std::byte> in) {
  if (cache_ == nullptr) {
    co_await store_uncached(a, in);
    co_return;
  }
  const sim::Tick t0 = now();
  co_await work(params_.op_overhead);
  co_await cache_->write(a, in);
  ops_.inc();
  busy_.add_busy(now() - t0 - params_.clock.to_ticks(params_.op_overhead));
  trace_busy("store", t0 + params_.clock.to_ticks(params_.op_overhead),
             now());
}

sim::Co<void> Processor::load_uncached(mem::Addr a,
                                       std::span<std::byte> out) {
  std::size_t done = 0;
  while (done < out.size()) {
    const mem::Addr addr = a + done;
    const std::size_t to_boundary = 8 - (addr % 8);
    const auto n = static_cast<std::uint32_t>(
        std::min<std::size_t>({out.size() - done, to_boundary, 8}));
    const sim::Tick t0 = now();
    co_await work(params_.op_overhead);
    mem::BusRequest req;
    req.op = mem::BusOp::kReadSingle;
    req.addr = addr;
    req.size = n;
    req.rdata = out.data() + done;
    req.from_ap = true;
    co_await bus_.transact_retry(bus_id_, req);
    ops_.inc();
    busy_.add_busy(now() - t0 - params_.clock.to_ticks(params_.op_overhead));
    trace_busy("load.u", t0 + params_.clock.to_ticks(params_.op_overhead),
               now());
    done += n;
  }
}

sim::Co<void> Processor::store_uncached(mem::Addr a,
                                        std::span<const std::byte> in) {
  std::size_t done = 0;
  while (done < in.size()) {
    const mem::Addr addr = a + done;
    const std::size_t to_boundary = 8 - (addr % 8);
    const auto n = static_cast<std::uint32_t>(
        std::min<std::size_t>({in.size() - done, to_boundary, 8}));
    const sim::Tick t0 = now();
    co_await work(params_.op_overhead);
    mem::BusRequest req;
    req.op = mem::BusOp::kWriteSingle;
    req.addr = addr;
    req.size = n;
    req.wdata = in.data() + done;
    req.from_ap = true;
    co_await bus_.transact_retry(bus_id_, req);
    ops_.inc();
    busy_.add_busy(now() - t0 - params_.clock.to_ticks(params_.op_overhead));
    trace_busy("store.u", t0 + params_.clock.to_ticks(params_.op_overhead),
               now());
    done += n;
  }
}

sim::Co<void> Processor::flush_line(mem::Addr a) {
  if (cache_ == nullptr) {
    co_return;
  }
  const sim::Tick t0 = now();
  co_await cache_->flush_line(a);
  busy_.add_busy(now() - t0);
  trace_busy("flush", t0, now());
}

sim::Co<void> Processor::flush_range(mem::Addr a, std::size_t len) {
  if (cache_ == nullptr) {
    co_return;
  }
  const sim::Tick t0 = now();
  co_await cache_->flush_range(a, len);
  busy_.add_busy(now() - t0);
  trace_busy("flush", t0, now());
}

sim::Co<void> Processor::invalidate_line(mem::Addr a) {
  if (cache_ == nullptr) {
    co_return;
  }
  co_await cache_->invalidate_line(a);
}

void Processor::run(sim::Co<void> program, sim::OneShot* done) {
  sim::spawn([](sim::Co<void> prog, sim::OneShot* d) -> sim::Co<void> {
    co_await std::move(prog);
    if (d != nullptr) {
      d->fire();
    }
  }(std::move(program), done));
}

}  // namespace sv::cpu

// Channel: a small MPI-flavoured veneer over Basic messages — the "MPI
// library that presents the usual interface but uses the underlying NIU
// support" the paper promises at layer 0.
//
// Provides tagged, arbitrarily-sized sends with fragmentation/reassembly,
// plus barrier and allreduce collectives built from the same primitives.
#pragma once

#include <cstdint>
#include <cstring>
#include <list>

#include "msg/endpoint.hpp"

namespace sv::msg {

class Channel {
 public:
  Channel(Endpoint& ep, AddressMap map, sim::NodeId self);

  /// Tagged send; fragments across Basic messages as needed.
  sim::Co<void> send(sim::NodeId dest, std::uint32_t tag,
                     std::span<const std::byte> data);

  template <typename T>
  sim::Co<void> send_value(sim::NodeId dest, std::uint32_t tag, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    co_await send(dest, tag, std::as_bytes(std::span(&v, 1)));
  }

  /// Blocking tagged receive from a specific source. Non-matching messages
  /// are buffered for later receives.
  sim::Co<std::vector<std::byte>> recv(sim::NodeId src, std::uint32_t tag);

  template <typename T>
  sim::Co<T> recv_value(sim::NodeId src, std::uint32_t tag) {
    auto bytes = co_await recv(src, tag);
    T v{};
    std::memcpy(&v, bytes.data(), std::min(sizeof(T), bytes.size()));
    co_return v;
  }

  /// Barrier across ranks [0, nodes): gather-at-0 then broadcast.
  sim::Co<void> barrier();

  /// Allreduce (sum) of a u64 across all ranks.
  sim::Co<std::uint64_t> allreduce_sum(std::uint64_t value);

  [[nodiscard]] sim::NodeId rank() const { return self_; }
  [[nodiscard]] std::size_t size() const { return map_.nodes; }

 private:
  struct FragHeader {
    std::uint32_t tag = 0;
    std::uint16_t frag = 0;
    std::uint16_t total = 0;
  };
  static constexpr std::size_t kFragData =
      niu::kBasicMaxData - sizeof(FragHeader);

  struct Assembly {
    std::uint16_t src;
    std::uint32_t tag;
    std::uint16_t received = 0;
    std::uint16_t total = 0;
    std::vector<std::byte> data;
  };

  /// Pull one fragment from the endpoint and merge it into assemblies_;
  /// returns an iterator to a completed assembly matching (src, tag), or
  /// end() if none completed yet.
  sim::Co<void> pump();
  std::list<Assembly>::iterator find_complete(sim::NodeId src,
                                              std::uint32_t tag);

  Endpoint& ep_;
  AddressMap map_;
  sim::NodeId self_;
  std::list<Assembly> assemblies_;

  static constexpr std::uint32_t kBarrierTag = 0xFFFF0001;
  static constexpr std::uint32_t kReduceTag = 0xFFFF0002;
};

}  // namespace sv::msg

#include "msg/channel.hpp"

namespace sv::msg {

Channel::Channel(Endpoint& ep, AddressMap map, sim::NodeId self)
    : ep_(ep), map_(map), self_(self) {}

sim::Co<void> Channel::send(sim::NodeId dest, std::uint32_t tag,
                            std::span<const std::byte> data) {
  const std::size_t total_frags =
      data.empty() ? 1 : (data.size() + kFragData - 1) / kFragData;
  for (std::size_t f = 0; f < total_frags; ++f) {
    const std::size_t off = f * kFragData;
    const std::size_t n = std::min(kFragData, data.size() - off);
    FragHeader hdr;
    hdr.tag = tag;
    hdr.frag = static_cast<std::uint16_t>(f);
    hdr.total = static_cast<std::uint16_t>(total_frags);
    std::vector<std::byte> frame(sizeof(FragHeader) + n);
    std::memcpy(frame.data(), &hdr, sizeof(FragHeader));
    if (n > 0) {
      std::memcpy(frame.data() + sizeof(FragHeader), data.data() + off, n);
    }
    co_await ep_.send(map_.user0(dest), frame);
  }
}

sim::Co<void> Channel::pump() {
  Message m = co_await ep_.recv();
  FragHeader hdr{};
  std::memcpy(&hdr, m.data.data(), sizeof(FragHeader));
  const std::size_t payload = m.data.size() - sizeof(FragHeader);

  Assembly* asmb = nullptr;
  for (auto& a : assemblies_) {
    if (a.src == m.src_node && a.tag == hdr.tag && a.received < a.total) {
      asmb = &a;
      break;
    }
  }
  if (asmb == nullptr) {
    assemblies_.push_back(Assembly{m.src_node, hdr.tag, 0, hdr.total, {}});
    asmb = &assemblies_.back();
    asmb->data.resize(static_cast<std::size_t>(hdr.total) * kFragData);
  }
  std::memcpy(asmb->data.data() + static_cast<std::size_t>(hdr.frag) *
                                      kFragData,
              m.data.data() + sizeof(FragHeader), payload);
  ++asmb->received;
  if (hdr.frag + 1 == hdr.total) {
    // Last fragment fixes the true size.
    asmb->data.resize(static_cast<std::size_t>(hdr.frag) * kFragData +
                      payload);
  }
}

std::list<Channel::Assembly>::iterator Channel::find_complete(
    sim::NodeId src, std::uint32_t tag) {
  for (auto it = assemblies_.begin(); it != assemblies_.end(); ++it) {
    if (it->src == src && it->tag == tag && it->received == it->total) {
      return it;
    }
  }
  return assemblies_.end();
}

sim::Co<std::vector<std::byte>> Channel::recv(sim::NodeId src,
                                              std::uint32_t tag) {
  for (;;) {
    auto it = find_complete(src, tag);
    if (it != assemblies_.end()) {
      std::vector<std::byte> out = std::move(it->data);
      assemblies_.erase(it);
      co_return out;
    }
    co_await pump();
  }
}

sim::Co<void> Channel::barrier() {
  const std::uint8_t token = 1;
  const auto data = std::as_bytes(std::span(&token, 1));
  if (self_ == 0) {
    for (sim::NodeId n = 1; n < map_.nodes; ++n) {
      (void)co_await recv(n, kBarrierTag);
    }
    for (sim::NodeId n = 1; n < map_.nodes; ++n) {
      co_await send(n, kBarrierTag, data);
    }
  } else {
    co_await send(0, kBarrierTag, data);
    (void)co_await recv(0, kBarrierTag);
  }
}

sim::Co<std::uint64_t> Channel::allreduce_sum(std::uint64_t value) {
  if (self_ == 0) {
    std::uint64_t sum = value;
    for (sim::NodeId n = 1; n < map_.nodes; ++n) {
      sum += co_await recv_value<std::uint64_t>(n, kReduceTag);
    }
    for (sim::NodeId n = 1; n < map_.nodes; ++n) {
      co_await send_value(n, kReduceTag, sum);
    }
    co_return sum;
  }
  co_await send_value(0, kReduceTag, value);
  co_return co_await recv_value<std::uint64_t>(0, kReduceTag);
}

}  // namespace sv::msg

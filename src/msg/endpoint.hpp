// Layer-0 user library: message passing from application code.
//
// An Endpoint wraps one node's user transmit/receive queues the way the
// paper's library code does: message buffers are composed with cacheable
// stores into the memory-mapped aSRAM window (then flushed so the data
// reaches the SRAM), pointers are updated with single uncached stores whose
// *address* encodes the operation, and receive pointers are discovered by
// polling the CTRL shadow copies in aSRAM with uncached loads.
#pragma once

#include <bit>
#include <optional>
#include <vector>

#include "cpu/processor.hpp"
#include "niu/queues.hpp"
#include "niu/regs.hpp"
#include "sim/coro.hpp"

namespace sv::msg {

/// Machine-wide virtual-destination layout. The OS fills every node's
/// translation table so that section s, entry n targets node n's queue for
/// service s. Sections: 0 = user basic queue, 1 = DMA request queue,
/// 2 = second user queue, 3 = user express queue.
struct AddressMap {
  std::size_t nodes = 2;

  static constexpr net::QueueId kUser0L = 0x0100;
  static constexpr net::QueueId kUser1L = 0x0101;
  static constexpr net::QueueId kExpressL = 0x0102;

  /// Section stride: a power of two so sections can be selected with the
  /// NIU's AND/OR destination masks (the express queue ORs its section base
  /// into the 8-bit vdest carried in the store address).
  [[nodiscard]] std::size_t stride() const { return std::bit_ceil(nodes); }

  [[nodiscard]] std::uint16_t user0(sim::NodeId n) const {
    return static_cast<std::uint16_t>(n);
  }
  [[nodiscard]] std::uint16_t dma(sim::NodeId n) const {
    return static_cast<std::uint16_t>(stride() + n);
  }
  [[nodiscard]] std::uint16_t user1(sim::NodeId n) const {
    return static_cast<std::uint16_t>(2 * stride() + n);
  }
  /// Express messages pass only the node number in the store address; the
  /// queue's OR mask adds the section base.
  [[nodiscard]] std::uint16_t express(sim::NodeId n) const {
    return static_cast<std::uint16_t>(n);
  }
  [[nodiscard]] std::uint16_t express_section() const {
    return static_cast<std::uint16_t>(3 * stride());
  }
  [[nodiscard]] std::size_t table_entries() const { return 4 * stride(); }
};

/// Library-side mirror of one queue's geometry (SRAM offsets are
/// bank-relative; the aP reaches them through the aSRAM window).
struct QueueConfig {
  unsigned hwq = 0;
  std::uint32_t base = 0;
  std::uint16_t slots = 0;
  std::uint16_t slot_bytes = niu::kBasicSlotBytes;
};

/// A message as the library hands it to the application.
struct Message {
  std::uint16_t src_node = 0;
  net::QueueId logical = 0;
  std::vector<std::byte> data;
};

struct ExpressMessage {
  std::uint8_t src_node = 0;
  std::uint8_t extra = 0;     // the byte carried in the store address
  std::uint32_t word = 0;     // the 4 bytes carried on the data bus
};

/// Serializes one hardware queue's multi-step library protocol. Each send
/// (or receive) is several bus operations with suspension points between
/// them; two coroutines driving the same queue concurrently used to
/// interleave those steps and compose into the same slot. The gate makes
/// late arrivals queue behind the op in flight instead — back-to-back
/// nonblocking sends from the app runtime are the first real client.
/// Uncontended acquire/release never suspends and schedules nothing, so a
/// single-user endpoint behaves exactly as before (bit-identical traces).
class QueueGate {
 public:
  explicit QueueGate(sim::Kernel& k) : sem_(k, 1) {}
  [[nodiscard]] auto enter() { return sem_.acquire(); }
  void leave() { sem_.release(); }

 private:
  sim::Semaphore sem_;
};

class Endpoint {
 public:
  struct Config {
    QueueConfig tx;          // basic transmit queue
    QueueConfig rx;          // basic receive queue
    QueueConfig express_tx;  // express transmit queue
    QueueConfig express_rx;  // express receive queue
    QueueConfig raw_tx;      // trusted raw queue (slots == 0: unavailable)
    std::uint32_t staging_base = 0x8000;  // aSRAM staging for TagOn data
    /// Message-arrival interrupt line (paper section 4: "message arrival
    /// can raise an interrupt if its receive queue has been configured
    /// accordingly"). When wired, recv_interrupt() sleeps on it instead
    /// of polling the producer shadow.
    sim::Signal* arrival = nullptr;
  };

  Endpoint(cpu::Processor& ap, Config config);

  // --- Basic messages -------------------------------------------------------
  /// Compose and launch a Basic message (<= 88 bytes) to virtual
  /// destination `vdest` (translated by the NIU).
  sim::Co<void> send(std::uint16_t vdest, std::span<const std::byte> data);

  /// TagOn: a Basic message plus `large ? 80 : 48` bytes of aSRAM data at
  /// `sram_offset` appended by CTRL during launch.
  sim::Co<void> send_tagon(std::uint16_t vdest,
                           std::span<const std::byte> data,
                           std::uint32_t sram_offset, bool large);

  /// Raw (untranslated) send to an explicit node/queue. Requires the
  /// trusted raw queue; protection is bypassed (paper section 4).
  sim::Co<void> send_raw(sim::NodeId dest, net::QueueId queue,
                         std::span<const std::byte> data,
                         bool high_priority = false);

  /// Place data in the aSRAM staging area (for TagOn payloads).
  sim::Co<void> stage(std::uint32_t sram_offset,
                      std::span<const std::byte> data);
  [[nodiscard]] std::uint32_t staging_base() const {
    return config_.staging_base;
  }

  /// Non-blocking receive.
  sim::Co<std::optional<Message>> try_recv();
  /// Blocking receive (polls the producer shadow).
  sim::Co<Message> recv();
  /// Blocking receive that sleeps on the arrival interrupt instead of
  /// polling; `isr_cycles` models interrupt entry/exit cost. Requires
  /// Config::arrival to be wired.
  sim::Co<Message> recv_interrupt(sim::Cycles isr_cycles = 200);

  // --- Express messages ------------------------------------------------------
  /// One uncached store: 5-byte payload (1 address byte + 4 data bytes).
  sim::Co<void> send_express(std::uint8_t vdest, std::uint8_t extra,
                             std::uint32_t word);
  /// One uncached load; empty queue returns nullopt.
  sim::Co<std::optional<ExpressMessage>> try_recv_express();
  sim::Co<ExpressMessage> recv_express();

  [[nodiscard]] cpu::Processor& ap() { return ap_; }
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  /// Wait until the basic tx queue has a free slot.
  sim::Co<void> wait_tx_space();

  cpu::Processor& ap_;
  Config config_;
  QueueGate tx_gate_;    // basic tx (send / send_tagon)
  QueueGate rx_gate_;    // basic rx (try_recv / recv)
  QueueGate extx_gate_;  // express tx
  QueueGate raw_gate_;   // raw tx
  std::uint16_t tx_producer_ = 0;
  std::uint16_t tx_consumer_seen_ = 0;
  std::uint16_t rx_consumer_ = 0;
  std::uint16_t rx_producer_seen_ = 0;
  std::uint16_t extx_producer_ = 0;
  std::uint16_t extx_consumer_seen_ = 0;
  std::uint16_t raw_producer_ = 0;
  std::uint16_t raw_consumer_seen_ = 0;
};

}  // namespace sv::msg

#include "msg/endpoint.hpp"

#include <cstring>
#include <stdexcept>

namespace sv::msg {

namespace {

using niu::kAsramWindowOffset;
using niu::kExpressRxWindowOffset;
using niu::kExpressTxWindowOffset;
using niu::kNiuBase;
using niu::kPtrWindowOffset;

mem::Addr asram_addr(std::uint32_t offset) {
  return kNiuBase + kAsramWindowOffset + offset;
}

}  // namespace

Endpoint::Endpoint(cpu::Processor& ap, Config config)
    : ap_(ap),
      config_(config),
      tx_gate_(ap.kernel()),
      rx_gate_(ap.kernel()),
      extx_gate_(ap.kernel()),
      raw_gate_(ap.kernel()) {}

sim::Co<void> Endpoint::wait_tx_space() {
  const auto& q = config_.tx;
  while (static_cast<std::uint16_t>(tx_producer_ - tx_consumer_seen_) >=
         q.slots) {
    tx_consumer_seen_ = static_cast<std::uint16_t>(
        co_await ap_.load_scalar<std::uint32_t>(
            asram_addr(niu::tx_consumer_shadow(q.hwq)), /*cached=*/false));
  }
}

sim::Co<void> Endpoint::send(std::uint16_t vdest,
                             std::span<const std::byte> data) {
  if (data.size() > niu::kBasicMaxData) {
    throw std::invalid_argument("Endpoint::send: message too large");
  }
  co_await tx_gate_.enter();
  co_await wait_tx_space();

  const auto& q = config_.tx;
  const std::uint32_t slot =
      q.base + static_cast<std::uint32_t>(tx_producer_ % q.slots) *
                   q.slot_bytes;

  niu::MsgDescriptor d;
  d.vdest = vdest;
  d.length = static_cast<std::uint8_t>(data.size());
  std::byte hdr[niu::kBasicHeaderBytes];
  d.encode(hdr);

  // Compose through the cache, then flush so the SRAM holds the message.
  co_await ap_.store(asram_addr(slot), hdr);
  if (!data.empty()) {
    co_await ap_.store(asram_addr(slot + niu::kBasicHeaderBytes), data);
  }
  co_await ap_.flush_range(asram_addr(slot),
                           niu::kBasicHeaderBytes + data.size());

  // Launch: a single uncached store to the pointer window.
  ++tx_producer_;
  co_await ap_.store_scalar<std::uint32_t>(
      kNiuBase + kPtrWindowOffset +
          niu::ptr_window_addr(niu::PtrKind::kTxProducer, q.hwq),
      tx_producer_, /*cached=*/false);
  tx_gate_.leave();
}

sim::Co<void> Endpoint::send_tagon(std::uint16_t vdest,
                                   std::span<const std::byte> data,
                                   std::uint32_t sram_offset, bool large) {
  const std::uint32_t tagon_bytes =
      large ? niu::kTagOnLargeBytes : niu::kTagOnSmallBytes;
  if (data.size() + tagon_bytes > net::kMaxPayloadBytes) {
    throw std::invalid_argument("Endpoint::send_tagon: payload too large");
  }
  co_await tx_gate_.enter();
  co_await wait_tx_space();

  const auto& q = config_.tx;
  const std::uint32_t slot =
      q.base + static_cast<std::uint32_t>(tx_producer_ % q.slots) *
                   q.slot_bytes;

  niu::MsgDescriptor d;
  d.vdest = vdest;
  d.length = static_cast<std::uint8_t>(data.size());
  d.flags = niu::MsgDescriptor::kFlagTagOn |
            (large ? niu::MsgDescriptor::kFlagTagOnLarge : 0);
  d.aux = sram_offset;
  std::byte hdr[niu::kBasicHeaderBytes];
  d.encode(hdr);

  co_await ap_.store(asram_addr(slot), hdr);
  if (!data.empty()) {
    co_await ap_.store(asram_addr(slot + niu::kBasicHeaderBytes), data);
  }
  co_await ap_.flush_range(asram_addr(slot),
                           niu::kBasicHeaderBytes + data.size());

  ++tx_producer_;
  co_await ap_.store_scalar<std::uint32_t>(
      kNiuBase + kPtrWindowOffset +
          niu::ptr_window_addr(niu::PtrKind::kTxProducer, q.hwq),
      tx_producer_, /*cached=*/false);
  tx_gate_.leave();
}

sim::Co<void> Endpoint::send_raw(sim::NodeId dest, net::QueueId queue,
                                 std::span<const std::byte> data,
                                 bool high_priority) {
  const auto& q = config_.raw_tx;
  if (q.slots == 0) {
    throw std::logic_error("Endpoint::send_raw: no raw queue configured");
  }
  if (data.size() > niu::kBasicMaxData) {
    throw std::invalid_argument("Endpoint::send_raw: message too large");
  }
  co_await raw_gate_.enter();
  while (static_cast<std::uint16_t>(raw_producer_ - raw_consumer_seen_) >=
         q.slots) {
    raw_consumer_seen_ = static_cast<std::uint16_t>(
        co_await ap_.load_scalar<std::uint32_t>(
            asram_addr(niu::tx_consumer_shadow(q.hwq)), /*cached=*/false));
  }

  const std::uint32_t slot =
      q.base + static_cast<std::uint32_t>(raw_producer_ % q.slots) *
                   q.slot_bytes;
  niu::MsgDescriptor d;
  d.vdest = static_cast<std::uint16_t>(dest);
  d.length = static_cast<std::uint8_t>(data.size());
  d.flags = niu::MsgDescriptor::kFlagRaw |
            (high_priority ? niu::MsgDescriptor::kFlagHighPriority : 0);
  d.aux = queue;
  std::byte hdr[niu::kBasicHeaderBytes];
  d.encode(hdr);

  co_await ap_.store(asram_addr(slot), hdr);
  if (!data.empty()) {
    co_await ap_.store(asram_addr(slot + niu::kBasicHeaderBytes), data);
  }
  co_await ap_.flush_range(asram_addr(slot),
                           niu::kBasicHeaderBytes + data.size());

  ++raw_producer_;
  co_await ap_.store_scalar<std::uint32_t>(
      kNiuBase + kPtrWindowOffset +
          niu::ptr_window_addr(niu::PtrKind::kTxProducer, q.hwq),
      raw_producer_, /*cached=*/false);
  raw_gate_.leave();
}

sim::Co<void> Endpoint::stage(std::uint32_t sram_offset,
                              std::span<const std::byte> data) {
  co_await ap_.store(asram_addr(sram_offset), data);
  co_await ap_.flush_range(asram_addr(sram_offset), data.size());
}

sim::Co<std::optional<Message>> Endpoint::try_recv() {
  const auto& q = config_.rx;
  co_await rx_gate_.enter();
  if (rx_consumer_ == rx_producer_seen_) {
    rx_producer_seen_ = static_cast<std::uint16_t>(
        co_await ap_.load_scalar<std::uint32_t>(
            asram_addr(niu::rx_producer_shadow(q.hwq)), /*cached=*/false));
    if (rx_consumer_ == rx_producer_seen_) {
      rx_gate_.leave();
      co_return std::nullopt;
    }
  }

  const std::uint32_t slot =
      q.base + static_cast<std::uint32_t>(rx_consumer_ % q.slots) *
                   q.slot_bytes;
  // The slot was last read a full queue-wrap ago: discard stale cache lines
  // before reading the fresh message.
  const mem::Addr first = mem::line_base(asram_addr(slot));
  const mem::Addr last =
      mem::line_base(asram_addr(slot) + q.slot_bytes - 1);
  for (mem::Addr a = first; a <= last; a += mem::kLineBytes) {
    co_await ap_.invalidate_line(a);
  }

  std::byte hdr[niu::kBasicHeaderBytes];
  co_await ap_.load(asram_addr(slot), hdr);
  const auto desc = niu::RxDescriptor::decode(hdr);

  Message msg;
  msg.src_node = desc.src_node;
  msg.logical = desc.logical;
  msg.data.resize(desc.length);
  if (desc.length > 0) {
    co_await ap_.load(asram_addr(slot + niu::kBasicHeaderBytes), msg.data);
  }

  ++rx_consumer_;
  co_await ap_.store_scalar<std::uint32_t>(
      kNiuBase + kPtrWindowOffset +
          niu::ptr_window_addr(niu::PtrKind::kRxConsumer, q.hwq),
      rx_consumer_, /*cached=*/false);
  rx_gate_.leave();
  co_return msg;
}

sim::Co<Message> Endpoint::recv() {
  for (;;) {
    auto msg = co_await try_recv();
    if (msg.has_value()) {
      co_return std::move(*msg);
    }
  }
}

sim::Co<Message> Endpoint::recv_interrupt(sim::Cycles isr_cycles) {
  if (config_.arrival == nullptr) {
    throw std::logic_error(
        "Endpoint::recv_interrupt: no arrival interrupt wired");
  }
  for (;;) {
    auto msg = co_await try_recv();
    if (msg.has_value()) {
      co_return std::move(*msg);
    }
    // Sleep until the NIU signals an arrival, then pay interrupt cost.
    co_await *config_.arrival;
    co_await ap_.work(isr_cycles);
  }
}

sim::Co<void> Endpoint::send_express(std::uint8_t vdest, std::uint8_t extra,
                                     std::uint32_t word) {
  const auto& q = config_.express_tx;
  co_await extx_gate_.enter();
  while (static_cast<std::uint16_t>(extx_producer_ - extx_consumer_seen_) >=
         q.slots) {
    extx_consumer_seen_ = static_cast<std::uint16_t>(
        co_await ap_.load_scalar<std::uint32_t>(
            asram_addr(niu::tx_consumer_shadow(q.hwq)), /*cached=*/false));
  }
  ++extx_producer_;
  co_await ap_.store_scalar<std::uint32_t>(
      kNiuBase + kExpressTxWindowOffset +
          niu::express_tx_addr(q.hwq, vdest, extra),
      word, /*cached=*/false);
  extx_gate_.leave();
}

sim::Co<std::optional<ExpressMessage>> Endpoint::try_recv_express() {
  const auto& q = config_.express_rx;
  const auto entry = co_await ap_.load_scalar<std::uint64_t>(
      kNiuBase + kExpressRxWindowOffset + q.hwq * niu::kExpressRxStride,
      /*cached=*/false);
  if (entry == ~std::uint64_t{0}) {
    co_return std::nullopt;
  }
  std::byte bytes[8];
  std::memcpy(bytes, &entry, 8);
  ExpressMessage msg;
  msg.src_node = static_cast<std::uint8_t>(bytes[1]);
  msg.extra = static_cast<std::uint8_t>(bytes[2]);
  std::memcpy(&msg.word, bytes + 4, 4);
  co_return msg;
}

sim::Co<ExpressMessage> Endpoint::recv_express() {
  for (;;) {
    auto msg = co_await try_recv_express();
    if (msg.has_value()) {
      co_return *msg;
    }
  }
}

}  // namespace sv::msg

#include "msg/dma.hpp"

namespace sv::msg {

sim::Co<void> dma_write(Endpoint& ep, const AddressMap& map,
                        sim::NodeId self, sim::NodeId dest, mem::Addr src,
                        mem::Addr dst, std::uint32_t len,
                        net::QueueId completion_queue, std::uint32_t tag,
                        net::QueueId sender_done_queue) {
  fw::DmaRequest req;
  req.kind = 0;
  req.src_addr = src;
  req.dst_addr = dst;
  req.len = len;
  req.dest_node = static_cast<std::uint16_t>(dest);
  req.completion_queue = completion_queue;
  req.completion_tag = tag;
  if (sender_done_queue != niu::kNoNotify) {
    req.sender_done_queue = sender_done_queue;
    req.sender_done_tag = tag;
  }
  co_await ep.send(map.dma(self), fw::to_bytes(req));
}

sim::Co<void> dma_read(Endpoint& ep, const AddressMap& map, sim::NodeId self,
                       sim::NodeId src_node, mem::Addr src, mem::Addr dst,
                       std::uint32_t len, net::QueueId completion_queue,
                       std::uint32_t tag) {
  fw::DmaRequest req;
  req.kind = 1;
  req.src_addr = src;
  req.dst_addr = dst;
  req.len = len;
  req.dest_node = static_cast<std::uint16_t>(src_node);  // data holder
  req.completion_queue = completion_queue;
  req.completion_tag = tag;
  co_await ep.send(map.dma(self), fw::to_bytes(req));
}

}  // namespace sv::msg

#include "msg/dram_queue.hpp"

namespace sv::msg {

sim::Co<std::optional<Message>> DramQueue::try_recv() {
  const auto producer = co_await ap_.load_scalar<std::uint32_t>(
      desc_.base, /*cached=*/false);
  if (producer == consumer_) {
    co_return std::nullopt;
  }

  const mem::Addr slot = desc_.slot_addr(consumer_);
  // Fresh data was written by the NIU: drop any stale cached lines first.
  for (mem::Addr a = mem::line_base(slot);
       a <= mem::line_base(slot + desc_.slot_bytes - 1);
       a += mem::kLineBytes) {
    co_await ap_.invalidate_line(a);
  }
  std::byte hdr[niu::kBasicHeaderBytes];
  co_await ap_.load(slot, hdr);
  const auto desc = niu::RxDescriptor::decode(hdr);

  Message msg;
  msg.src_node = desc.src_node;
  msg.logical = desc.logical;
  msg.data.resize(desc.length);
  if (desc.length > 0) {
    co_await ap_.load(slot + niu::kBasicHeaderBytes, msg.data);
  }

  ++consumer_;
  co_await ap_.store_scalar<std::uint32_t>(desc_.base + 4, consumer_,
                                           /*cached=*/false);
  co_return msg;
}

sim::Co<Message> DramQueue::recv() {
  for (;;) {
    auto msg = co_await try_recv();
    if (msg.has_value()) {
      co_return std::move(*msg);
    }
  }
}

}  // namespace sv::msg

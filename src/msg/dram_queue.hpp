// aP-side reader for DRAM-resident receive queues (the spill target of the
// NIU's receive-queue cache; see fw::MissService for the layout).
#pragma once

#include <optional>

#include "cpu/processor.hpp"
#include "fw/miss_service.hpp"
#include "msg/endpoint.hpp"

namespace sv::msg {

class DramQueue {
 public:
  DramQueue(cpu::Processor& ap, fw::DramQueueDesc desc)
      : ap_(ap), desc_(desc) {}

  /// Poll the firmware-maintained producer word and consume one message if
  /// available.
  sim::Co<std::optional<Message>> try_recv();
  sim::Co<Message> recv();

  [[nodiscard]] const fw::DramQueueDesc& desc() const { return desc_; }

 private:
  cpu::Processor& ap_;
  fw::DramQueueDesc desc_;
  std::uint32_t consumer_ = 0;
};

}  // namespace sv::msg

// Reliable delivery over Basic messages, for runs where the fabric is
// allowed to lose or corrupt packets (src/fault/).
//
// The Arctic network itself guarantees loss-free ordered delivery; this
// layer explores the cluster-style alternative the paper's section 7 hints
// at: commodity-fabric semantics recovered in the library. Each
// (src, dst) pair carries a sequence-numbered stream of CRC-checked DATA
// frames over the user queue; the receiver acknowledges cumulatively and
// NACKs sequence gaps. ACK/NACK control frames travel on the *second
// network priority* through the trusted raw queue, so control traffic
// overtakes bulk data in the fabric. Lost frames are recovered go-back-N
// style, either by a NACK (fast path) or by the fw::RetransmitEngine's
// exponential-backoff timeout; when the engine gives up the peer is
// declared failed and the give-up callback runs (the tests wire it to
// niu::Ctrl::shutdown_tx_queue, surfacing exactly like a protection
// shutdown).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "fw/retransmit.hpp"
#include "msg/endpoint.hpp"

namespace sv::msg {

struct ReliableStats {
  sim::Counter payloads_sent;       // application send() calls accepted
  sim::Counter payloads_delivered;  // handed to the application, in order
  sim::Counter frames_sent;         // DATA frames on the wire (incl. retx)
  sim::Counter frames_received;     // frames of any kind that arrived
  sim::Counter retransmitted;       // DATA frames resent (timeout or NACK)
  sim::Counter acks_sent;
  sim::Counter nacks_sent;
  sim::Counter acks_received;
  sim::Counter nacks_received;
  sim::Counter duplicates;        // already-delivered DATA discarded
  sim::Counter out_of_order;      // sequence-gap DATA discarded
  sim::Counter corrupt_rejected;  // CRC / header check failures
};

class ReliableChannel {
 public:
  struct Params {
    std::size_t window = 16;  // max unacked DATA frames per peer
    fw::RetransmitEngine::Params retransmit;
  };

  /// Wire header prepended to every frame.
  static constexpr std::size_t kHeaderBytes = 16;
  /// Max application payload per send(): a Basic slot minus the header.
  static constexpr std::size_t kMaxPayload =
      niu::kBasicMaxData - kHeaderBytes;

  /// The endpoint must be dedicated to this channel: the dispatcher owns
  /// its receive side.
  ReliableChannel(Endpoint& ep, AddressMap map, sim::NodeId self,
                  Params params);
  /// Default Params.
  ReliableChannel(Endpoint& ep, AddressMap map, sim::NodeId self);

  /// Spawn the receive dispatcher (on the node's aP) and the retransmit
  /// timer. Call once, before any send()/recv().
  void start();

  /// Called (at most once per peer) when retransmission gives up.
  void set_give_up(std::function<void(sim::NodeId peer)> fn) {
    give_up_ = std::move(fn);
  }

  /// Reliable in-order send. Blocks while the window to `dest` is full.
  /// Returns without sending when the peer has been declared failed.
  sim::Co<void> send(sim::NodeId dest, std::span<const std::byte> payload);

  /// Next in-order payload from `src` (blocks until one is delivered).
  sim::Co<std::vector<std::byte>> recv(sim::NodeId src);

  /// True once the retransmit engine gave up on `peer`.
  [[nodiscard]] bool failed(sim::NodeId peer) const;

  /// DATA frames sent but not yet cumulatively acknowledged (the
  /// "retransmit-pending" term of the conservation invariant).
  [[nodiscard]] std::size_t unacked() const;

  [[nodiscard]] const ReliableStats& stats() const { return stats_; }
  [[nodiscard]] fw::RetransmitEngine& engine() { return engine_; }

  /// Snapshot state: every go-back-N window — per tx peer the next
  /// sequence, NACK dedup cursor, failed flag and the unacked frames
  /// (sequence numbers raw, frame bytes as a CRC-32 digest); per rx peer
  /// the expected sequence, gap-NACK cursor and undelivered ready queue —
  /// plus all protocol counters and the retransmit engine's timers.
  void ckpt_save(ckpt::Writer& w) const;

 private:
  enum class Kind : std::uint8_t { kData = 1, kAck = 2, kNack = 3 };

  // Window frames are immutable once built; shared ownership lets
  // resend_window() snapshot the window by bumping refcounts instead of
  // deep-copying every frame (go-back-N under loss used to copy the whole
  // window per NACK).
  using Frame = std::shared_ptr<const std::vector<std::byte>>;

  struct TxPeer {
    std::uint64_t next_seq = 1;
    std::uint64_t nack_resent_for = 0;  // dedupe go-back-N per NACK burst
    bool failed = false;
    // Unacked frames in sequence order (seq, full wire frame).
    std::deque<std::pair<std::uint64_t, Frame>> window;
  };

  struct RxPeer {
    std::uint64_t expected = 1;
    std::uint64_t nacked_for = 0;  // one NACK per distinct gap position
    std::deque<std::vector<std::byte>> ready;  // in-order, undelivered
  };

  [[nodiscard]] std::vector<std::byte> make_frame(
      Kind kind, std::uint64_t seq, std::span<const std::byte> payload) const;
  sim::Co<void> send_frame(sim::NodeId dest,
                           const std::vector<std::byte>& frame, bool control);
  sim::Co<void> send_control(sim::NodeId dest, Kind kind, std::uint64_t seq);
  sim::Co<void> dispatch_loop();
  sim::Co<void> handle(Message m);
  sim::Co<void> handle_data(sim::NodeId peer, std::uint64_t seq,
                            std::span<const std::byte> payload);
  sim::Co<void> handle_ack(sim::NodeId peer, std::uint64_t acked, bool nack);
  /// Go-back-N: resend every frame still in the window to `peer`.
  sim::Co<void> resend_window(sim::NodeId peer);
  void declare_failed(sim::NodeId peer);

  Endpoint& ep_;
  AddressMap map_;
  sim::NodeId self_;
  Params params_;
  fw::RetransmitEngine engine_;
  ReliableStats stats_;
  sim::Semaphore tx_mutex_;      // serializes all endpoint tx activity
  sim::Signal window_sig_;       // pulsed when window space frees (or fail)
  sim::Signal delivered_sig_;    // pulsed when a payload becomes readable
  std::map<sim::NodeId, TxPeer> tx_;
  std::map<sim::NodeId, RxPeer> rx_;
  std::function<void(sim::NodeId)> give_up_;
  bool started_ = false;
};

}  // namespace sv::msg

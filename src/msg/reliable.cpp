#include "msg/reliable.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

#include "ckpt/stats_io.hpp"
#include "sim/crc32.hpp"

namespace sv::msg {

namespace {

constexpr std::uint8_t kVersion = 0x5A;

// 16-byte wire header; CRC covers the whole frame with the crc field
// zeroed, so a single bit flip anywhere (header or payload) is caught.
struct Wire {
  std::uint8_t kind = 0;
  std::uint8_t version = kVersion;
  std::uint16_t reserved = 0;
  std::uint32_t crc = 0;
  std::uint64_t seq = 0;
};
static_assert(sizeof(Wire) == ReliableChannel::kHeaderBytes);

std::uint32_t frame_crc(std::span<const std::byte> frame) {
  // CRC with the 4-byte crc field (offset 4) treated as zero.
  const std::byte zeros[4] = {};
  std::uint32_t c = sim::crc32(frame.subspan(0, 4));
  c = sim::crc32(zeros, c);
  c = sim::crc32(frame.subspan(8), c);
  return c;
}

}  // namespace

ReliableChannel::ReliableChannel(Endpoint& ep, AddressMap map,
                                 sim::NodeId self, Params params)
    : ep_(ep),
      map_(map),
      self_(self),
      params_(params),
      engine_(ep.ap().kernel(), "n" + std::to_string(self) + ".fw.retx",
              params.retransmit),
      tx_mutex_(ep.ap().kernel(), 1),
      window_sig_(ep.ap().kernel()),
      delivered_sig_(ep.ap().kernel()) {
  if (params_.window == 0) {
    throw std::invalid_argument("ReliableChannel: zero window");
  }
}

ReliableChannel::ReliableChannel(Endpoint& ep, AddressMap map,
                                 sim::NodeId self)
    : ReliableChannel(ep, map, self, Params{}) {}

void ReliableChannel::start() {
  if (started_) {
    throw std::logic_error("ReliableChannel: started twice");
  }
  started_ = true;
  engine_.bind(
      [this](sim::NodeId peer) -> sim::Co<void> {
        co_await resend_window(peer);
      },
      [this](sim::NodeId peer) { declare_failed(peer); });
  engine_.start();
  ep_.ap().run(dispatch_loop());
}

std::vector<std::byte> ReliableChannel::make_frame(
    Kind kind, std::uint64_t seq, std::span<const std::byte> payload) const {
  Wire w;
  w.kind = static_cast<std::uint8_t>(kind);
  w.seq = seq;
  std::vector<std::byte> frame(sizeof(Wire) + payload.size());
  std::memcpy(frame.data(), &w, sizeof(Wire));
  if (!payload.empty()) {
    std::memcpy(frame.data() + sizeof(Wire), payload.data(), payload.size());
  }
  const std::uint32_t crc = frame_crc(frame);
  std::memcpy(frame.data() + offsetof(Wire, crc), &crc, sizeof(crc));
  return frame;
}

sim::Co<void> ReliableChannel::send(sim::NodeId dest,
                                    std::span<const std::byte> payload) {
  assert(started_ && "ReliableChannel::start() not called");
  if (payload.size() > kMaxPayload) {
    throw std::invalid_argument("ReliableChannel: payload too large");
  }
  TxPeer& p = tx_[dest];
  while (p.window.size() >= params_.window && !p.failed) {
    co_await window_sig_;
  }
  if (p.failed) {
    co_return;  // peer declared dead; check failed(dest)
  }
  const std::uint64_t seq = p.next_seq++;
  const auto frame = std::make_shared<const std::vector<std::byte>>(
      make_frame(Kind::kData, seq, payload));
  p.window.emplace_back(seq, frame);
  stats_.payloads_sent.inc();
  co_await send_frame(dest, *frame, /*control=*/false);
  engine_.arm(dest);
}

sim::Co<std::vector<std::byte>> ReliableChannel::recv(sim::NodeId src) {
  RxPeer& r = rx_[src];
  while (r.ready.empty()) {
    co_await delivered_sig_;
  }
  std::vector<std::byte> payload = std::move(r.ready.front());
  r.ready.pop_front();
  co_return payload;
}

sim::Co<void> ReliableChannel::send_frame(sim::NodeId dest,
                                          const std::vector<std::byte>& frame,
                                          bool control) {
  // One tx flow at a time: application sends, dispatcher ACKs and engine
  // retransmissions all interleave on the same endpoint.
  co_await tx_mutex_.acquire();
  if (control) {
    // Second network priority via the trusted raw queue: control frames
    // overtake bulk data in the fabric.
    co_await ep_.send_raw(dest, AddressMap::kUser0L, frame,
                          /*high_priority=*/true);
  } else {
    co_await ep_.send(map_.user0(dest), frame);
  }
  stats_.frames_sent.inc();
  tx_mutex_.release();
}

sim::Co<void> ReliableChannel::send_control(sim::NodeId dest, Kind kind,
                                            std::uint64_t seq) {
  co_await send_frame(dest, make_frame(kind, seq, {}), /*control=*/true);
  if (kind == Kind::kAck) {
    stats_.acks_sent.inc();
  } else {
    stats_.nacks_sent.inc();
  }
}

sim::Co<void> ReliableChannel::dispatch_loop() {
  for (;;) {
    Message m = co_await ep_.recv();
    co_await handle(std::move(m));
  }
}

sim::Co<void> ReliableChannel::handle(Message m) {
  stats_.frames_received.inc();
  if (m.data.size() < sizeof(Wire)) {
    stats_.corrupt_rejected.inc();
    co_return;
  }
  Wire w;
  std::memcpy(&w, m.data.data(), sizeof(Wire));
  if (w.version != kVersion || frame_crc(m.data) != w.crc) {
    // Corrupted in flight: discard silently. Recovery is the sender's
    // job (gap NACK or retransmit timeout).
    stats_.corrupt_rejected.inc();
    co_return;
  }
  const auto peer = static_cast<sim::NodeId>(m.src_node);
  switch (static_cast<Kind>(w.kind)) {
    case Kind::kData:
      co_await handle_data(peer, w.seq,
                           std::span(m.data).subspan(sizeof(Wire)));
      break;
    case Kind::kAck:
      co_await handle_ack(peer, w.seq, /*nack=*/false);
      break;
    case Kind::kNack:
      co_await handle_ack(peer, w.seq, /*nack=*/true);
      break;
    default:
      stats_.corrupt_rejected.inc();
      break;
  }
}

sim::Co<void> ReliableChannel::handle_data(
    sim::NodeId peer, std::uint64_t seq, std::span<const std::byte> payload) {
  RxPeer& r = rx_[peer];
  if (seq == r.expected) {
    ++r.expected;
    r.ready.emplace_back(payload.begin(), payload.end());
    stats_.payloads_delivered.inc();
    delivered_sig_.pulse();
    co_await send_control(peer, Kind::kAck, r.expected - 1);
  } else if (seq < r.expected) {
    // Retransmitted duplicate: discard, but re-ACK so the sender's window
    // advances even when the original ACK was lost.
    stats_.duplicates.inc();
    co_await send_control(peer, Kind::kAck, r.expected - 1);
  } else {
    // Sequence gap: something before `seq` was lost. NACK once per gap
    // position; later out-of-order arrivals for the same gap stay silent
    // (the sender's timeout covers a lost NACK).
    stats_.out_of_order.inc();
    if (r.nacked_for != r.expected) {
      r.nacked_for = r.expected;
      co_await send_control(peer, Kind::kNack, r.expected - 1);
    }
  }
}

sim::Co<void> ReliableChannel::handle_ack(sim::NodeId peer,
                                          std::uint64_t acked, bool nack) {
  TxPeer& p = tx_[peer];
  if (nack) {
    stats_.nacks_received.inc();
  } else {
    stats_.acks_received.inc();
  }
  bool progressed = false;
  while (!p.window.empty() && p.window.front().first <= acked) {
    p.window.pop_front();
    progressed = true;
  }
  if (progressed) {
    window_sig_.pulse();
    engine_.progress(peer);
  }
  if (p.window.empty()) {
    engine_.disarm(peer);
  }
  if (nack && !p.window.empty()) {
    // Go-back-N fast path, deduped so a burst of out-of-order arrivals
    // behind one loss triggers a single resend of the window.
    const std::uint64_t want = acked + 1;
    if (want > p.nack_resent_for) {
      p.nack_resent_for = want;
      co_await resend_window(peer);
    }
  }
}

sim::Co<void> ReliableChannel::resend_window(sim::NodeId peer) {
  TxPeer& p = tx_[peer];
  // Snapshot: ACKs arriving while we suspend inside send_frame() mutate
  // the window; stale resends are discarded as duplicates at the receiver.
  // Frames are shared and immutable, so the snapshot is refcount bumps,
  // not deep copies of every unacked frame.
  std::vector<Frame> frames;
  frames.reserve(p.window.size());
  for (const auto& [seq, frame] : p.window) {
    frames.push_back(frame);
  }
  for (const auto& frame : frames) {
    if (p.failed) {
      co_return;
    }
    co_await send_frame(peer, *frame, /*control=*/false);
    stats_.retransmitted.inc();
  }
}

void ReliableChannel::declare_failed(sim::NodeId peer) {
  TxPeer& p = tx_[peer];
  if (p.failed) {
    return;
  }
  p.failed = true;
  window_sig_.pulse();  // release senders blocked on window space
  if (give_up_) {
    give_up_(peer);
  }
}

bool ReliableChannel::failed(sim::NodeId peer) const {
  const auto it = tx_.find(peer);
  return it != tx_.end() && it->second.failed;
}

std::size_t ReliableChannel::unacked() const {
  std::size_t n = 0;
  for (const auto& [peer, p] : tx_) {
    n += p.window.size();
  }
  return n;
}

void ReliableChannel::ckpt_save(ckpt::Writer& w) const {
  w.u64(tx_.size());
  for (const auto& [peer, p] : tx_) {
    w.u32(peer);
    w.u64(p.next_seq);
    w.u64(p.nack_resent_for);
    w.b(p.failed);
    w.u64(p.window.size());
    for (const auto& [seq, frame] : p.window) {
      w.u64(seq);
      w.u32(sim::crc32(*frame));
    }
  }
  w.u64(rx_.size());
  for (const auto& [peer, p] : rx_) {
    w.u32(peer);
    w.u64(p.expected);
    w.u64(p.nacked_for);
    w.u64(p.ready.size());
    std::uint32_t crc = 0;
    for (const std::vector<std::byte>& payload : p.ready) {
      crc = sim::crc32(payload, crc);
    }
    w.u32(crc);
  }
  ckpt::save(w, stats_.payloads_sent);
  ckpt::save(w, stats_.payloads_delivered);
  ckpt::save(w, stats_.frames_sent);
  ckpt::save(w, stats_.frames_received);
  ckpt::save(w, stats_.retransmitted);
  ckpt::save(w, stats_.acks_sent);
  ckpt::save(w, stats_.nacks_sent);
  ckpt::save(w, stats_.acks_received);
  ckpt::save(w, stats_.nacks_received);
  ckpt::save(w, stats_.duplicates);
  ckpt::save(w, stats_.out_of_order);
  ckpt::save(w, stats_.corrupt_rejected);
  engine_.ckpt_save(w);
}

}  // namespace sv::msg

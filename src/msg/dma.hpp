// Layer-0 DMA client API (paper section 5).
//
// The aP requests a DMA by messaging its local sP's DMA engine; firmware
// drives the block engines (see fw::DmaEngine). Completion lands in the
// receiver's regular message queue — the am_store-style notification the
// paper's experiments use.
#pragma once

#include "fw/dma.hpp"
#include "msg/endpoint.hpp"

namespace sv::msg {

/// Copy `len` bytes from this node's DRAM at `src` to `dest` node's DRAM at
/// `dst`. All of src, dst and len must be 32-byte aligned. When
/// `completion_queue` is a valid logical queue, the *receiver* gets a
/// notification message carrying `tag` after the data has landed; when
/// `sender_done_queue` is a valid logical queue the sender side gets one
/// too (on that queue).
sim::Co<void> dma_write(Endpoint& ep, const AddressMap& map,
                        sim::NodeId self, sim::NodeId dest, mem::Addr src,
                        mem::Addr dst, std::uint32_t len,
                        net::QueueId completion_queue, std::uint32_t tag,
                        net::QueueId sender_done_queue = niu::kNoNotify);

/// Fetch `len` bytes from `src_node`'s DRAM at `src` into this node's DRAM
/// at `dst`. The local user queue receives the completion carrying `tag`.
sim::Co<void> dma_read(Endpoint& ep, const AddressMap& map, sim::NodeId self,
                       sim::NodeId src_node, mem::Addr src, mem::Addr dst,
                       std::uint32_t len, net::QueueId completion_queue,
                       std::uint32_t tag);

}  // namespace sv::msg

// Statistics collection: counters, scalar samples, log2 histograms, and a
// registry so any component can publish metrics that harnesses/benches dump.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace sv::sim {

/// Monotonically increasing event counter.
class Counter {
 public:
  void inc(std::uint64_t by = 1) { value_ += by; }
  [[nodiscard]] std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Accumulates samples: count / sum / min / max / mean.
class Accumulator {
 public:
  void sample(double v) {
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }

  void reset() { *this = Accumulator{}; }

  /// Fold another accumulator into this one. Merging is order-sensitive for
  /// the double sum, so callers that need reproducible aggregates must
  /// merge shards in a fixed order (e.g. node id order).
  void merge(const Accumulator& o) {
    count_ += o.count_;
    sum_ += o.sum_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Power-of-two bucketed histogram for latencies / sizes.
class Histogram {
 public:
  void sample(std::uint64_t v);

  [[nodiscard]] std::uint64_t count() const { return acc_.count(); }
  [[nodiscard]] double mean() const { return acc_.mean(); }
  [[nodiscard]] std::uint64_t min() const {
    return static_cast<std::uint64_t>(acc_.min());
  }
  [[nodiscard]] std::uint64_t max() const {
    return static_cast<std::uint64_t>(acc_.max());
  }

  /// Bucket i counts samples in [2^(i-1), 2^i), bucket 0 counts v==0..1.
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const {
    return buckets_;
  }

  /// Approximate p-th percentile (0..100) from the bucket boundaries.
  [[nodiscard]] std::uint64_t percentile(double p) const;

  void reset() {
    acc_.reset();
    buckets_.clear();
  }

  /// Fold another histogram into this one (bucket-wise). Same ordering
  /// caveat as Accumulator::merge.
  void merge(const Histogram& o) {
    acc_.merge(o.acc_);
    if (o.buckets_.size() > buckets_.size()) {
      buckets_.resize(o.buckets_.size(), 0);
    }
    for (std::size_t i = 0; i < o.buckets_.size(); ++i) {
      buckets_[i] += o.buckets_[i];
    }
  }

 private:
  Accumulator acc_;
  std::vector<std::uint64_t> buckets_;
};

/// Tracks busy time of a unit to report occupancy (fraction of wall time).
class BusyTracker {
 public:
  void add_busy(Tick duration) { busy_ += duration; }
  [[nodiscard]] Tick busy() const { return busy_; }
  [[nodiscard]] double occupancy(Tick elapsed) const {
    return elapsed == 0
               ? 0.0
               : static_cast<double>(busy_) / static_cast<double>(elapsed);
  }
  void reset() { busy_ = 0; }

 private:
  Tick busy_ = 0;
};

/// A named bag of metrics; components register values by dotted path.
class StatRegistry {
 public:
  void set(const std::string& name, double value) { values_[name] = value; }
  void add(const std::string& name, double delta) { values_[name] += delta; }

  [[nodiscard]] double get(const std::string& name) const {
    auto it = values_.find(name);
    return it != values_.end() ? it->second : 0.0;
  }
  [[nodiscard]] bool contains(const std::string& name) const {
    return values_.count(name) != 0;
  }
  [[nodiscard]] const std::map<std::string, double>& all() const {
    return values_;
  }

  void dump(std::ostream& os) const;
  /// Dump as a flat JSON object {"dotted.name": value, ...}.
  void dump_json(std::ostream& os) const;
  void clear() { values_.clear(); }

 private:
  std::map<std::string, double> values_;
};

}  // namespace sv::sim

// Statistics collection: counters, scalar samples, log2 histograms, and a
// registry so any component can publish metrics that harnesses/benches dump.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/types.hpp"

namespace sv::sim {

/// Monotonically increasing event counter.
class Counter {
 public:
  void inc(std::uint64_t by = 1) { value_ += by; }
  [[nodiscard]] std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Accumulates samples: count / sum / min / max / mean.
class Accumulator {
 public:
  void sample(double v) {
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }

  void reset() { *this = Accumulator{}; }

  /// Fold another accumulator into this one. Merging is order-sensitive for
  /// the double sum, so callers that need reproducible aggregates must
  /// merge shards in a fixed order (e.g. node id order).
  void merge(const Accumulator& o) {
    count_ += o.count_;
    sum_ += o.sum_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Power-of-two bucketed histogram for latencies / sizes.
class Histogram {
 public:
  void sample(std::uint64_t v);

  [[nodiscard]] std::uint64_t count() const { return acc_.count(); }
  [[nodiscard]] double mean() const { return acc_.mean(); }
  [[nodiscard]] std::uint64_t min() const {
    return static_cast<std::uint64_t>(acc_.min());
  }
  [[nodiscard]] std::uint64_t max() const {
    return static_cast<std::uint64_t>(acc_.max());
  }

  /// Bucket i counts samples in [2^(i-1), 2^i), bucket 0 counts v==0..1.
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const {
    return buckets_;
  }

  /// Approximate p-th percentile (0..100) from the bucket boundaries.
  [[nodiscard]] std::uint64_t percentile(double p) const;

  void reset() {
    acc_.reset();
    buckets_.clear();
  }

  /// Fold another histogram into this one (bucket-wise). Same ordering
  /// caveat as Accumulator::merge.
  void merge(const Histogram& o) {
    acc_.merge(o.acc_);
    if (o.buckets_.size() > buckets_.size()) {
      buckets_.resize(o.buckets_.size(), 0);
    }
    for (std::size_t i = 0; i < o.buckets_.size(); ++i) {
      buckets_[i] += o.buckets_[i];
    }
  }

 private:
  Accumulator acc_;
  std::vector<std::uint64_t> buckets_;
};

/// Tracks busy time of a unit to report occupancy (fraction of wall time).
class BusyTracker {
 public:
  void add_busy(Tick duration) { busy_ += duration; }
  [[nodiscard]] Tick busy() const { return busy_; }
  [[nodiscard]] double occupancy(Tick elapsed) const {
    return elapsed == 0
               ? 0.0
               : static_cast<double>(busy_) / static_cast<double>(elapsed);
  }
  void reset() { busy_ = 0; }

 private:
  Tick busy_ = 0;
};

/// A named bag of metrics; components register values by dotted path.
///
/// Scalability: a 1024-node machine publishes ~40k per-node stats, and
/// inserting each into the sorted map costs a string-compare walk. Bulk
/// writers (one per node, say) instead append to a *shard* — an unsorted
/// vector the registry merges lazily. Appends are O(1); the sort is paid
/// once, at dump (or first lookup), over a flat array rather than per
/// insert. Dump output is canonical (sorted, deduplicated) regardless of
/// how values were split between shards and direct set() calls, so
/// sharding is invisible in the bytes a harness sees.
///
/// Duplicate-name resolution, everywhere the views must agree: a direct
/// set() overlay beats any shard entry, and among shard entries the last
/// write (shard order, then append order) wins.
class StatRegistry {
 public:
  /// Append-only slice of the registry, meant for one bulk writer. Fill is
  /// unsynchronized-single-writer: distinct shards may be filled from
  /// distinct threads, but open_shard() itself and everything else on the
  /// registry is coordinator-only.
  class Shard {
   public:
    void set(std::string name, double value) {
      entries_.emplace_back(std::move(name), value);
    }

   private:
    friend class StatRegistry;
    std::vector<std::pair<std::string, double>> entries_;
  };

  /// Open a new shard. The reference stays valid for the registry's
  /// lifetime (shards live in a deque); the shard's entries are absorbed
  /// by the next lookup/dump merge.
  Shard& open_shard() { return shards_.emplace_back(); }

  void set(const std::string& name, double value) { values_[name] = value; }
  void add(const std::string& name, double delta) {
    materialize();
    values_[name] += delta;
  }

  [[nodiscard]] double get(const std::string& name) const {
    materialize();
    auto it = values_.find(name);
    return it != values_.end() ? it->second : 0.0;
  }
  [[nodiscard]] bool contains(const std::string& name) const {
    materialize();
    return values_.count(name) != 0;
  }
  [[nodiscard]] const std::map<std::string, double>& all() const {
    materialize();
    return values_;
  }

  void dump(std::ostream& os) const;
  /// Dump as a flat JSON object {"dotted.name": value, ...}. Never
  /// materializes: merges shards and the overlay map by sorting
  /// string_views, so a dump-only consumer skips map construction.
  void dump_json(std::ostream& os) const;
  void clear() {
    values_.clear();
    shards_.clear();
  }

 private:
  /// One merged (name, value) entry during a canonical dump.
  struct MergedRef {
    std::string_view name;
    double value;
    std::uint64_t rank;  // duplicate resolution: highest rank wins
  };

  /// Gather map + shards, sorted by name, duplicates resolved.
  [[nodiscard]] std::vector<MergedRef> merged_sorted() const;

  /// Drain every shard into the overlay map (overlay wins on conflict).
  void materialize() const;

  // Lookups are const but may fold shards in: both stores are mutable and
  // the fold is idempotent, so const views stay consistent.
  mutable std::map<std::string, double> values_;
  mutable std::deque<Shard> shards_;
};

}  // namespace sv::sim

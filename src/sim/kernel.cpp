#include "sim/kernel.hpp"

#include <stdexcept>

namespace sv::sim {

void Kernel::schedule_abs(Tick when, EventQueue::Callback fn) {
  if (when < now_) {
    throw std::logic_error("Kernel::schedule_abs: time in the past");
  }
  events_.push(when, std::move(fn));
}

void Kernel::post(Tick when, std::uint32_t src, std::uint64_t seq,
                  EventQueue::Callback fn) {
  if (deferred_mailbox_) {
    const std::lock_guard<std::mutex> lock(staged_mu_);
    staged_.push_back(CrossMsg{when, src, seq, std::move(fn)});
    return;
  }
  mailbox_.push(CrossMsg{when, src, seq, std::move(fn)});
}

void Kernel::commit_mailbox() {
  const std::lock_guard<std::mutex> lock(staged_mu_);
  for (auto& m : staged_) {
    mailbox_.push(std::move(m));
  }
  staged_.clear();
}

bool Kernel::dispatch_one(Tick bound) {
  const Tick next = next_event_time();
  if (next == kTickInvalid || next > bound) {
    return false;
  }
  now_ = next;
  // Inject every mailbox message due now, in (src, seq) order: the heap
  // hands them over sorted, and each gets a fresh queue sequence number, so
  // they run after events already scheduled at this tick and before
  // anything scheduled while it executes — independent of when they were
  // posted, which is the property that keeps single-domain and partitioned
  // runs identical.
  while (!mailbox_.empty() && mailbox_.top().when == next) {
    events_.push(next, std::move(mailbox_.top().fn));
    mailbox_.pop();
  }
  auto fn = events_.pop();
  fn();
  ++executed_;
  ++run_executed_;
  if (event_limit_ != 0 && run_executed_ >= event_limit_) {
    throw std::runtime_error("Kernel: event limit exceeded (runaway?)");
  }
  return true;
}

Tick Kernel::run() {
  run_executed_ = 0;
  while (dispatch_one(kTickInvalid)) {
  }
  return now_;
}

Tick Kernel::run_until(Tick t) {
  run_executed_ = 0;
  while (dispatch_one(t)) {
  }
  if (now_ < t) {
    now_ = t;
  }
  return now_;
}

bool Kernel::step() { return dispatch_one(kTickInvalid); }

}  // namespace sv::sim

#include "sim/kernel.hpp"

#include <algorithm>
#include <stdexcept>

#include "ckpt/io.hpp"

namespace sv::sim {

void Kernel::schedule_abs(Tick when, EventQueue::Callback fn) {
  if (when < now_) {
    throw std::logic_error("Kernel::schedule_abs: time in the past");
  }
  events_.push(when, std::move(fn));
}

void Kernel::schedule_at_seq(Tick when, std::uint64_t seq,
                             EventQueue::Callback fn) {
  if (when < now_) {
    throw std::logic_error("Kernel::schedule_at_seq: time in the past");
  }
  events_.push_at_seq(when, seq, std::move(fn));
}

void Kernel::post(Tick when, std::uint32_t src, std::uint64_t seq,
                  EventQueue::Callback fn) {
  if (deferred_mailbox_) {
    bool was_empty;
    {
      const std::lock_guard<std::mutex> lock(staged_mu_);
      was_empty = staged_.empty();
      staged_.push_back(CrossMsg{when, src, seq, std::move(fn)});
    }
    // First arrival since the last commit: tell the coordinator (outside
    // staged_mu_, so its own lock never nests under ours).
    if (was_empty && post_notify_) {
      post_notify_();
    }
    return;
  }
  mailbox_.push(CrossMsg{when, src, seq, std::move(fn)});
}

void Kernel::commit_mailbox() {
  const std::lock_guard<std::mutex> lock(staged_mu_);
  for (auto& m : staged_) {
    mailbox_.push(std::move(m));
  }
  staged_.clear();
}

bool Kernel::dispatch_one(Tick bound) {
  if (mailbox_.empty()) {
    // Fast path (the overwhelmingly common case): no pending cross-domain
    // messages, so the next event is simply the queue front. try_pop finds
    // and removes it in one traversal — the general path below locates the
    // front twice (next_time() to compare against the mailbox, pop() to
    // take it). Dispatch order is identical: with an empty mailbox the
    // comparisons below degenerate to exactly this.
    EventQueue::Popped ev = events_.try_pop(bound);
    if (!ev.fn) {
      return false;
    }
    now_ = ev.when;
    current_seq_ = ev.seq;
    ev.fn();
  } else {
    const Tick qt = events_.empty() ? kTickInvalid : events_.next_time();
    const Tick mt = mailbox_.top().when;
    const Tick next = qt < mt ? qt : mt;
    if (next > bound) {
      return false;
    }
    now_ = next;
    events_.advance(next);
    if (mt == next) {
      // Inject every mailbox message due now, in (src, seq) order: the heap
      // hands them over sorted, and each gets a fresh queue sequence number,
      // so they run after events already scheduled at this tick and before
      // anything scheduled while it executes — independent of when they were
      // posted, which is the property that keeps single-domain and
      // partitioned runs identical.
      do {
        events_.push(next, std::move(mailbox_.top().fn));
        mailbox_.pop();
      } while (!mailbox_.empty() && mailbox_.top().when == next);
    }
    EventQueue::Popped ev = events_.pop();
    current_seq_ = ev.seq;
    ev.fn();
  }
  ++executed_;
  ++run_executed_;
  if (event_limit_ != 0 && run_executed_ >= event_limit_) {
    throw std::runtime_error("Kernel: event limit exceeded (runaway?)");
  }
  return true;
}

Tick Kernel::run() {
  run_executed_ = 0;
  run_bound_ = kTickInvalid;
  while (dispatch_one(kTickInvalid)) {
  }
  return now_;
}

Tick Kernel::run_until(Tick t) {
  run_executed_ = 0;
  run_bound_ = t;
  while (dispatch_one(t)) {
  }
  if (now_ < t) {
    now_ = t;
    events_.advance(t);
  }
  return now_;
}

bool Kernel::step() { return dispatch_one(kTickInvalid); }

void Kernel::ckpt_save(ckpt::Writer& w) const {
  w.tick(now_);
  w.u64(executed_);
  events_.ckpt_save(w);
  // Mailbox keys in canonical (when, src, seq) order. The callbacks are
  // closures and restore by replay, like the event queue's. staged_ is
  // intentionally not captured: at an epoch barrier it has been committed
  // and is empty.
  struct Expose : Mailbox {
    static const std::vector<CrossMsg>& container(const Mailbox& q) {
      return q.*&Expose::c;
    }
  };
  struct Key {
    Tick when;
    std::uint32_t src;
    std::uint64_t seq;
    bool operator<(const Key& o) const {
      if (when != o.when) {
        return when < o.when;
      }
      return src != o.src ? src < o.src : seq < o.seq;
    }
  };
  std::vector<Key> keys;
  for (const CrossMsg& m : Expose::container(mailbox_)) {
    keys.push_back(Key{m.when, m.src, m.seq});
  }
  std::sort(keys.begin(), keys.end());
  w.u64(keys.size());
  for (const Key& k : keys) {
    w.tick(k.when);
    w.u32(k.src);
    w.u64(k.seq);
  }
}

}  // namespace sv::sim

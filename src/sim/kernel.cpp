#include "sim/kernel.hpp"

#include <stdexcept>

namespace sv::sim {

void Kernel::schedule_abs(Tick when, EventQueue::Callback fn) {
  if (when < now_) {
    throw std::logic_error("Kernel::schedule_abs: time in the past");
  }
  events_.push(when, std::move(fn));
}

Tick Kernel::run() {
  while (!events_.empty()) {
    now_ = events_.next_time();
    auto fn = events_.pop();
    fn();
    ++executed_;
    if (event_limit_ != 0 && executed_ >= event_limit_) {
      throw std::runtime_error("Kernel: event limit exceeded (runaway?)");
    }
  }
  return now_;
}

Tick Kernel::run_until(Tick t) {
  while (!events_.empty() && events_.next_time() <= t) {
    now_ = events_.next_time();
    auto fn = events_.pop();
    fn();
    ++executed_;
    if (event_limit_ != 0 && executed_ >= event_limit_) {
      throw std::runtime_error("Kernel: event limit exceeded (runaway?)");
    }
  }
  if (now_ < t) {
    now_ = t;
  }
  return now_;
}

bool Kernel::step() {
  if (events_.empty()) {
    return false;
  }
  now_ = events_.next_time();
  auto fn = events_.pop();
  fn();
  ++executed_;
  return true;
}

}  // namespace sv::sim

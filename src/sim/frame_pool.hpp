// FramePool: a freelist allocator for coroutine frames.
//
// Every simulated sequential process is a C++20 coroutine, and every call
// to one (Ctrl::tx_launch, Bus::access, Link::send, delay-wrapped helpers,
// ...) allocates a frame with ::operator new and frees it at completion.
// In steady state that is several malloc/free pairs per simulated message
// — the second-largest kernel-path overhead after std::function events
// (DESIGN.md §11).
//
// Frames recycle through per-thread, per-size-class freelists instead.
// Blocks carry a 16-byte header holding their size class, so deallocation
// needs no size plumbing; classes are 64-byte granules up to 2 KiB (real
// frame sizes here are ~100-600 bytes), larger requests pass through to
// the global heap. Freed blocks push onto the *freeing* thread's list —
// with the parallel kernel a domain may migrate between workers, so a
// frame can retire on a different thread than it was born on; the lists
// are capped, so memory just circulates instead of accumulating.
//
// Reuse is invisible to simulation semantics (frames carry no identity),
// so determinism and bit-identical parallel equivalence are unaffected.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>

namespace sv::sim {

class FramePool {
 public:
  static constexpr std::size_t kHeader = 16;  // keeps 16-byte alignment
  static constexpr std::size_t kGranule = 64;
  static constexpr std::size_t kClasses = 32;  // up to 2 KiB blocks
  static constexpr std::size_t kMaxFree = 128;  // retained blocks per class

  static void* allocate(std::size_t bytes) {
    const std::size_t need = bytes + kHeader;
    const std::size_t cls = (need + kGranule - 1) / kGranule;
    if (cls < kClasses) {
      Bin& bin = bins()[cls];
      if (bin.head != nullptr) {
        void* raw = bin.head;
        bin.head = *static_cast<void**>(raw);
        --bin.count;
        // The freelist link overwrote the header word; restore the class.
        *static_cast<std::uint64_t*>(raw) = cls;
        return static_cast<char*>(raw) + kHeader;
      }
      void* raw = ::operator new(cls * kGranule);
      *static_cast<std::uint64_t*>(raw) = cls;
      return static_cast<char*>(raw) + kHeader;
    }
    void* raw = ::operator new(need);
    *static_cast<std::uint64_t*>(raw) = 0;  // pass-through marker
    return static_cast<char*>(raw) + kHeader;
  }

  static void deallocate(void* p) noexcept {
    if (p == nullptr) {
      return;
    }
    void* raw = static_cast<char*>(p) - kHeader;
    const std::uint64_t cls = *static_cast<std::uint64_t*>(raw);
    if (cls == 0) {
      ::operator delete(raw);
      return;
    }
    Bin& bin = bins()[cls];
    if (bin.count >= kMaxFree) {
      ::operator delete(raw);
      return;
    }
    *static_cast<void**>(raw) = bin.head;
    bin.head = raw;
    ++bin.count;
  }

 private:
  struct Bin {
    void* head = nullptr;
    std::size_t count = 0;
  };

  static Bin* bins() {
    thread_local Bin t_bins[kClasses];
    return t_bins;
  }
};

}  // namespace sv::sim

#include "sim/stats.hpp"

#include <bit>
#include <cmath>

namespace sv::sim {

void Histogram::sample(std::uint64_t v) {
  acc_.sample(static_cast<double>(v));
  const std::size_t bucket =
      v <= 1 ? 0 : static_cast<std::size_t>(std::bit_width(v - 1));
  if (bucket >= buckets_.size()) {
    buckets_.resize(bucket + 1, 0);
  }
  ++buckets_[bucket];
}

std::uint64_t Histogram::percentile(double p) const {
  if (acc_.count() == 0) {
    return 0;
  }
  const auto target = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(acc_.count())));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      return i == 0 ? 1 : (std::uint64_t{1} << i);
    }
  }
  return max();
}

void StatRegistry::dump(std::ostream& os) const {
  for (const auto& [name, value] : values_) {
    os << name << " = " << value << '\n';
  }
}

}  // namespace sv::sim

#include "sim/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace sv::sim {

void Histogram::sample(std::uint64_t v) {
  acc_.sample(static_cast<double>(v));
  const std::size_t bucket =
      v <= 1 ? 0 : static_cast<std::size_t>(std::bit_width(v - 1));
  if (bucket >= buckets_.size()) {
    buckets_.resize(bucket + 1, 0);
  }
  ++buckets_[bucket];
}

std::uint64_t Histogram::percentile(double p) const {
  if (acc_.count() == 0) {
    return 0;
  }
  p = std::clamp(p, 0.0, 100.0);
  if (p <= 0.0) {
    return min();
  }
  const auto target = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(acc_.count())));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      // Bucket i spans [2^(i-1), 2^i); clamp its upper bound to the
      // observed sample range so exact values round-trip.
      const std::uint64_t bound = i == 0 ? 1 : (std::uint64_t{1} << i);
      return std::clamp(bound, min(), max());
    }
  }
  return max();
}

void StatRegistry::dump(std::ostream& os) const {
  for (const auto& [name, value] : values_) {
    os << name << " = " << value << '\n';
  }
}

void StatRegistry::dump_json(std::ostream& os) const {
  os << "{\n";
  bool first = true;
  for (const auto& [name, value] : values_) {
    if (!first) {
      os << ",\n";
    }
    first = false;
    os << "  \"";
    for (const char c : name) {
      if (c == '"' || c == '\\') {
        os << '\\';
      }
      os << c;
    }
    os << "\": ";
    if (std::isfinite(value)) {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", value);
      os << buf;
    } else {
      os << "null";  // JSON has no inf/nan literals
    }
  }
  os << "\n}\n";
}

}  // namespace sv::sim

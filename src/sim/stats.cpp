#include "sim/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace sv::sim {

void Histogram::sample(std::uint64_t v) {
  acc_.sample(static_cast<double>(v));
  const std::size_t bucket =
      v <= 1 ? 0 : static_cast<std::size_t>(std::bit_width(v - 1));
  if (bucket >= buckets_.size()) {
    buckets_.resize(bucket + 1, 0);
  }
  ++buckets_[bucket];
}

std::uint64_t Histogram::percentile(double p) const {
  if (acc_.count() == 0) {
    return 0;
  }
  p = std::clamp(p, 0.0, 100.0);
  if (p <= 0.0) {
    return min();
  }
  const auto target = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(acc_.count())));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      // Bucket i spans [2^(i-1), 2^i); clamp its upper bound to the
      // observed sample range so exact values round-trip.
      const std::uint64_t bound = i == 0 ? 1 : (std::uint64_t{1} << i);
      return std::clamp(bound, min(), max());
    }
  }
  return max();
}

void StatRegistry::materialize() const {
  if (shards_.empty()) {
    return;
  }
  // Fold shards first (last write wins), then let the overlay map absorb
  // only the names it doesn't already have — merge() keeps the target's
  // entry on conflict, which is exactly the overlay-wins rule.
  std::map<std::string, double> merged;
  for (Shard& s : shards_) {
    for (auto& [name, value] : s.entries_) {
      merged.insert_or_assign(std::move(name), value);
    }
  }
  values_.merge(merged);
  shards_.clear();
}

std::vector<StatRegistry::MergedRef> StatRegistry::merged_sorted() const {
  std::vector<MergedRef> refs;
  std::size_t total = values_.size();
  for (const Shard& s : shards_) {
    total += s.entries_.size();
  }
  refs.reserve(total);
  std::uint64_t rank = 0;
  for (const Shard& s : shards_) {
    for (const auto& [name, value] : s.entries_) {
      refs.push_back(MergedRef{name, value, rank++});
    }
  }
  for (const auto& [name, value] : values_) {
    // The overlay outranks every shard entry.
    refs.push_back(MergedRef{name, value, ~std::uint64_t{0}});
  }
  std::sort(refs.begin(), refs.end(), [](const MergedRef& a,
                                         const MergedRef& b) {
    return a.name != b.name ? a.name < b.name : a.rank < b.rank;
  });
  // Equal names are now adjacent, highest rank last: keep only that one.
  std::size_t out = 0;
  for (std::size_t i = 0; i < refs.size(); ++i) {
    if (i + 1 < refs.size() && refs[i + 1].name == refs[i].name) {
      continue;
    }
    refs[out++] = refs[i];
  }
  refs.resize(out);
  return refs;
}

void StatRegistry::dump(std::ostream& os) const {
  for (const MergedRef& r : merged_sorted()) {
    os << r.name << " = " << r.value << '\n';
  }
}

void StatRegistry::dump_json(std::ostream& os) const {
  os << "{\n";
  bool first = true;
  for (const MergedRef& r : merged_sorted()) {
    if (!first) {
      os << ",\n";
    }
    first = false;
    os << "  \"";
    for (const char c : r.name) {
      if (c == '"' || c == '\\') {
        os << '\\';
      }
      os << c;
    }
    os << "\": ";
    if (std::isfinite(r.value)) {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", r.value);
      os << buf;
    } else {
      os << "null";  // JSON has no inf/nan literals
    }
  }
  os << "\n}\n";
}

}  // namespace sv::sim

#include "sim/event.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <utility>

#include "ckpt/io.hpp"

namespace sv::sim {

EventQueue::EventQueue() : buckets_(kBuckets) {
  // Pre-size every bucket for the common case (queue depth ~10, spread
  // thin). Without this, each first touch of a bucket costs one heap
  // allocation, which would show up as a steady malloc trickle in sparse
  // workloads (tests/alloc_hook_test.cpp pins this at zero).
  for (Bucket& b : buckets_) {
    b.items.reserve(2);
  }
}

void EventQueue::push(Tick when, Callback fn) {
  push_at_seq(when, next_seq_++, std::move(fn));
}

void EventQueue::push_at_seq(Tick when, std::uint64_t seq, Callback fn) {
  if (!in_window(when)) {
    std::uint32_t idx;
    if (!far_free_.empty()) {
      idx = far_free_.back();
      far_free_.pop_back();
      far_slab_[idx] = std::move(fn);
    } else {
      idx = static_cast<std::uint32_t>(far_slab_.size());
      far_slab_.push_back(std::move(fn));
    }
    heap_.push(HeapRec{when, seq, idx});
    // A far event can still be the earliest overall; pop() compares the
    // heap top against the wheel front, so no cache to invalidate.
    return;
  }
  const std::size_t bi = bucket_index(when);
  Bucket& b = buckets_[bi];
  // Push is always an O(1) append. Chained workloads schedule in monotone
  // time order, so the append usually keeps the bucket sorted by
  // (when, seq) and the bucket never needs a sort at all. The comparison
  // is on the full key: events carrying a reserved (older) sequence
  // number may arrive after a same-tick event with a fresher one.
  const bool in_order =
      b.items.empty() || b.items.back().when < when ||
      (b.items.back().when == when && b.items.back().seq <= seq);
  b.items.push_back(Rec{when, seq, std::move(fn)});
  set_bit(bi);
  ++wheel_count_;
  if (!in_order) {
    // Out-of-order arrival. Reserved-key pushes (fast-path completions,
    // DESIGN.md §12) usually land only a handful of slots behind the tail,
    // so first try a bounded backward scan and rotate into place — the
    // bucket stays sorted and front_bucket() never pays a tail sort for
    // it. Arrivals further than kNearShift slots out of order (bursts with
    // random deltas) fall back to flagging the bucket; front_bucket()
    // sorts the pending tail once when the bucket becomes the earliest.
    // Unconditionally sorting on activation profiled at ~17% of chained
    // dispatch; unbounded sorted-insert is O(n) per event for bursty
    // buckets. The bound gives each workload its cheap path.
    constexpr std::size_t kNearShift = 8;
    bool placed = false;
    if (!b.unsorted) {
      const std::size_t i = b.items.size() - 1;
      const std::size_t stop =
          (i - b.head > kNearShift) ? i - kNearShift : b.head;
      std::size_t j = i;
      while (j > stop) {
        const Rec& p = b.items[j - 1];
        if (p.when < when || (p.when == when && p.seq <= seq)) {
          break;
        }
        --j;
      }
      if (j == b.head || b.items[j - 1].when < when ||
          (b.items[j - 1].when == when && b.items[j - 1].seq <= seq)) {
        std::rotate(b.items.begin() + static_cast<std::ptrdiff_t>(j),
                    b.items.end() - 1, b.items.end());
        placed = true;  // bucket still sorted; front cache stays valid
      }
    }
    if (!placed) {
      b.unsorted = true;
      if (bi == cur_bucket_) {
        cur_bucket_ = kNoBucket;  // front cache requires a sorted bucket
      }
    }
  }
  if (cur_bucket_ != kNoBucket && bi != cur_bucket_) {
    const Bucket& cur = buckets_[cur_bucket_];
    const Rec& front = cur.items[cur.head];
    if (when < front.when || (when == front.when && seq < front.seq)) {
      cur_bucket_ = kNoBucket;  // the new event outruns the cached front
    }
  }
}

std::size_t EventQueue::scan_from_floor() const {
  // Circular scan for the first occupied bucket at or after the floor's
  // bucket. The window spans exactly one wheel revolution, so circular
  // index order is time order. Two levels: summary_ bit g marks group
  // occ_[g] non-empty, so the scan is at most three bit-scans.
  const std::size_t from = bucket_index(floor_);
  const std::size_t g0 = from >> 6;

  // (1) The floor's own group, bits at or after the floor bucket.
  if (const std::uint64_t w = occ_[g0] & (~std::uint64_t{0} << (from & 63))) {
    return (g0 << 6) + static_cast<std::size_t>(std::countr_zero(w));
  }
  // (2) Later groups this revolution. The double shift sidesteps the
  // undefined full-width shift when g0 == 63.
  if (const std::uint64_t s = summary_ & ((~std::uint64_t{0} << g0) << 1)) {
    const auto g = static_cast<std::size_t>(std::countr_zero(s));
    return (g << 6) + static_cast<std::size_t>(std::countr_zero(occ_[g]));
  }
  // (3) Wrapped groups (bucket index below the floor's: later in time).
  if (const std::uint64_t s = summary_ & ((std::uint64_t{1} << g0) - 1)) {
    const auto g = static_cast<std::size_t>(std::countr_zero(s));
    return (g << 6) + static_cast<std::size_t>(std::countr_zero(occ_[g]));
  }
  // (4) The floor's group again, wrapped bits below the floor bucket.
  if (const std::uint64_t w =
          occ_[g0] & ((std::uint64_t{1} << (from & 63)) - 1)) {
    return (g0 << 6) + static_cast<std::size_t>(std::countr_zero(w));
  }
  assert(false && "scan_from_floor: wheel_count_ > 0 but no bit set");
  return 0;
}

EventQueue::Bucket& EventQueue::front_bucket() const {
  if (cur_bucket_ == kNoBucket) {
    cur_bucket_ = static_cast<std::uint32_t>(scan_from_floor());
    Bucket& b = buckets_[cur_bucket_];
    if (b.unsorted) {
      sort_pending(b);
      b.unsorted = false;
    }
  }
  return buckets_[cur_bucket_];
}

void EventQueue::sort_pending(Bucket& b) const {
  // Only the pending tail: items[0..head) are already dispatched (their
  // callbacks moved out) and must keep their positions.
  const auto first = b.items.begin() + b.head;
  const auto cmp = [](const Rec& a, const Rec& c) {
    return a.when != c.when ? a.when < c.when : a.seq < c.seq;
  };
  const std::size_t n = b.items.size() - b.head;
  if (n <= 16) {
    std::sort(first, b.items.end(), cmp);
    return;
  }
  // Bulk bursts: a Rec is 80 bytes, so letting std::sort shuffle records
  // directly moves ~80 * n log n bytes. Sort 24-byte (when, seq, index)
  // keys instead and apply the permutation with 2n record moves.
  keys_.clear();
  keys_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys_.push_back(SortKey{first[i].when, first[i].seq,
                            static_cast<std::uint32_t>(i)});
  }
  std::sort(keys_.begin(), keys_.end(),
            [](const SortKey& a, const SortKey& c) {
              return a.when != c.when ? a.when < c.when : a.seq < c.seq;
            });
  scratch_.clear();
  scratch_.reserve(n);
  for (const SortKey& k : keys_) {
    scratch_.push_back(std::move(first[k.idx]));
  }
  std::move(scratch_.begin(), scratch_.end(), first);
}

Tick EventQueue::next_time() const {
  Tick t = heap_.empty() ? kTickInvalid : heap_.top().when;
  if (wheel_count_ != 0) {
    const Bucket& b = front_bucket();
    const Tick wt = b.items[b.head].when;
    if (wt < t) {
      t = wt;
    }
  }
  return t;
}

EventQueue::Popped EventQueue::pop() { return try_pop(kTickInvalid); }

EventQueue::Popped EventQueue::try_pop(Tick bound) {
  if (wheel_count_ != 0) {
    Bucket& b = front_bucket();
    Rec& r = b.items[b.head];
    if (heap_.empty() || r.when < heap_.top().when ||
        (r.when == heap_.top().when && r.seq < heap_.top().seq)) {
      if (r.when > bound) {
        return Popped{kTickInvalid, 0, {}};
      }
      Popped p{r.when, r.seq, std::move(r.fn)};
      floor_ = r.when;
      ++b.head;
      --wheel_count_;
      if (b.head == b.items.size()) {
        b.items.clear();
        b.head = 0;
        b.unsorted = false;
        clear_bit(cur_bucket_);
        cur_bucket_ = kNoBucket;
      }
      return p;
    }
  }
  if (heap_.empty() || heap_.top().when > bound) {
    return Popped{kTickInvalid, 0, {}};
  }
  const HeapRec h = heap_.top();
  Popped p{h.when, h.seq, std::move(far_slab_[h.idx])};
  far_free_.push_back(h.idx);
  floor_ = p.when;
  heap_.pop();
  return p;
}

void EventQueue::ckpt_save(ckpt::Writer& w) const {
  w.tick(floor_);
  w.u64(next_seq_);
  // Collect every pending key: wheel bucket tails plus the far heap. The
  // heap's internal layout is an implementation detail, so keys are
  // emitted in (when, seq) dispatch order — the canonical form a replayed
  // queue must reproduce exactly.
  struct Key {
    Tick when;
    std::uint64_t seq;
    bool operator<(const Key& o) const {
      return when != o.when ? when < o.when : seq < o.seq;
    }
  };
  std::vector<Key> keys;
  keys.reserve(size());
  for (const Bucket& b : buckets_) {
    for (std::size_t i = b.head; i < b.items.size(); ++i) {
      keys.push_back(Key{b.items[i].when, b.items[i].seq});
    }
  }
  // priority_queue hides its container; a derived type can still name the
  // protected member `c` to read it without popping (and without copying
  // the move-only callbacks a real pop would disturb).
  struct Expose : std::priority_queue<HeapRec, std::vector<HeapRec>,
                                      std::greater<>> {
    static const std::vector<HeapRec>& container(
        const std::priority_queue<HeapRec, std::vector<HeapRec>,
                                  std::greater<>>& q) {
      return q.*&Expose::c;
    }
  };
  for (const HeapRec& h : Expose::container(heap_)) {
    keys.push_back(Key{h.when, h.seq});
  }
  std::sort(keys.begin(), keys.end());
  w.u64(keys.size());
  for (const Key& k : keys) {
    w.tick(k.when);
    w.u64(k.seq);
  }
}

}  // namespace sv::sim

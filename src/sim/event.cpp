#include "sim/event.hpp"

#include <utility>

namespace sv::sim {

void EventQueue::push(Tick when, Callback fn) {
  heap_.push(Entry{when, next_seq_++, std::move(fn)});
}

EventQueue::Callback EventQueue::pop() {
  Callback fn = std::move(heap_.top().fn);
  heap_.pop();
  return fn;
}

}  // namespace sv::sim

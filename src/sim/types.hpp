// Core time and identifier types for the StarT-Voyager simulator.
//
// The global time base is the Tick, defined as one picosecond. Picosecond
// resolution lets the distinct clock domains of the modelled machine (166 MHz
// application processor, 100 MHz service processor, 66 MHz memory bus, 80 MHz
// Arctic link clock) interleave with exact integer periods and no rounding
// drift over arbitrarily long runs.
#pragma once

#include <cstdint>
#include <limits>

namespace sv::sim {

/// Simulated time in picoseconds.
using Tick = std::uint64_t;

/// A count of cycles in some clock domain (see Clock).
using Cycles = std::uint64_t;

inline constexpr Tick kTickInvalid = std::numeric_limits<Tick>::max();

/// Convenience literals for expressing durations in code and configs.
inline constexpr Tick kPicosecond = 1;
inline constexpr Tick kNanosecond = 1000;
inline constexpr Tick kMicrosecond = 1000 * kNanosecond;
inline constexpr Tick kMillisecond = 1000 * kMicrosecond;

/// A clock domain: converts between cycles and ticks. Periods are exact
/// integer picosecond counts; the default machine configuration only uses
/// frequencies whose periods divide evenly into picoseconds.
class Clock {
 public:
  constexpr Clock() = default;
  explicit constexpr Clock(Tick period_ps) : period_(period_ps) {}

  [[nodiscard]] constexpr Tick period() const { return period_; }

  [[nodiscard]] constexpr Tick to_ticks(Cycles c) const { return c * period_; }

  /// Number of whole cycles that fit in `t` (rounds down).
  [[nodiscard]] constexpr Cycles to_cycles(Tick t) const { return t / period_; }

  /// Ticks until the next edge at or after absolute time `now`.
  [[nodiscard]] constexpr Tick until_next_edge(Tick now) const {
    const Tick rem = now % period_;
    return rem == 0 ? 0 : period_ - rem;
  }

  /// Frequency in MHz (approximate, for reporting only).
  [[nodiscard]] constexpr double mhz() const {
    return period_ == 0 ? 0.0 : 1e6 / static_cast<double>(period_);
  }

 private:
  Tick period_ = 1000;  // default: 1 GHz
};

/// Identifies a node (site) in the cluster.
using NodeId = std::uint32_t;

inline constexpr NodeId kNodeInvalid = std::numeric_limits<NodeId>::max();

}  // namespace sv::sim

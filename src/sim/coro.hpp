// Coroutine support for simulated sequential processes.
//
// Hardware state machines with long sequential flows (firmware handlers,
// processor programs, DMA engines) are written as C++20 coroutines that
// suspend on simulated time. The primitives are:
//
//   Co<T>       an awaitable, lazily-started coroutine returning T
//   spawn(co)   detach a Co<void> as a root simulation process
//   delay(k,dt) awaitable: resume dt ticks later
//   OneShot     one-shot broadcast event (fire() wakes all waiters, sticky)
//   Signal      recurring broadcast event (pulse() wakes current waiters)
//   Future<T>/Promise<T>   one-shot value handoff
//   Channel<T>  unbounded FIFO with awaitable pop (direct handoff, no races)
//   Semaphore   counting semaphore with awaitable acquire
//
// All wakeups are scheduled through the Kernel at delta 0, so resumption
// order is deterministic and no callback ever runs re-entrantly inside the
// code that triggered it.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdio>
#include <deque>
#include <exception>
#include <memory>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/frame_pool.hpp"
#include "sim/kernel.hpp"
#include "sim/types.hpp"

namespace sv::sim {

// ---------------------------------------------------------------------------
// Co<T>: awaitable coroutine with continuation chaining.
// ---------------------------------------------------------------------------

template <typename T>
class Co;

namespace detail {

struct CoPromiseBase {
  // Coroutine frames recycle through the per-thread FramePool instead of
  // the global heap: one less malloc/free pair per simulated call.
  static void* operator new(std::size_t n) { return FramePool::allocate(n); }
  static void operator delete(void* p) noexcept { FramePool::deallocate(p); }

  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename P>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<P> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() { exception = std::current_exception(); }
};

template <typename T>
struct CoPromise : CoPromiseBase {
  std::optional<T> value;

  Co<T> get_return_object();
  void return_value(T v) { value.emplace(std::move(v)); }
};

template <>
struct CoPromise<void> : CoPromiseBase {
  Co<void> get_return_object();
  void return_void() {}
};

}  // namespace detail

/// An awaitable coroutine. Lazily started: the body runs only once awaited
/// (or resumed by spawn()). Move-only; the handle is destroyed with the Co.
template <typename T>
class [[nodiscard]] Co {
 public:
  using promise_type = detail::CoPromise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Co() = default;
  explicit Co(Handle h) : handle_(h) {}
  Co(Co&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}
  Co& operator=(Co&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, {});
    }
    return *this;
  }
  Co(const Co&) = delete;
  Co& operator=(const Co&) = delete;
  ~Co() { destroy(); }

  [[nodiscard]] bool valid() const { return static_cast<bool>(handle_); }
  [[nodiscard]] bool done() const { return handle_ && handle_.done(); }

  /// Awaiting a Co starts it and suspends the caller until it completes.
  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle h;
      bool await_ready() const noexcept { return !h || h.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;  // symmetric transfer into the child
      }
      T await_resume() {
        auto& p = h.promise();
        if (p.exception) {
          std::rethrow_exception(p.exception);
        }
        if constexpr (!std::is_void_v<T>) {
          return std::move(*p.value);
        }
      }
    };
    return Awaiter{handle_};
  }

  Handle release() { return std::exchange(handle_, {}); }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  Handle handle_{};
};

namespace detail {

template <typename T>
Co<T> CoPromise<T>::get_return_object() {
  return Co<T>(std::coroutine_handle<CoPromise<T>>::from_promise(*this));
}

inline Co<void> CoPromise<void>::get_return_object() {
  return Co<void>(std::coroutine_handle<CoPromise<void>>::from_promise(*this));
}

/// Fire-and-forget root coroutine used by spawn(). Self-destroying.
struct RootTask {
  struct promise_type {
    static void* operator new(std::size_t n) { return FramePool::allocate(n); }
    static void operator delete(void* p) noexcept { FramePool::deallocate(p); }

    RootTask get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() {
      // A root simulation process must not throw: there is nobody to catch.
      std::fprintf(stderr, "sv::sim: unhandled exception in root task\n");
      std::terminate();
    }
  };
};

}  // namespace detail

/// Detach `co` as a root process. The body starts running immediately (up to
/// its first suspension point) in the caller's context.
inline void spawn(Co<void> co) {
  [](Co<void> c) -> detail::RootTask { co_await std::move(c); }(std::move(co));
}

// ---------------------------------------------------------------------------
// Time awaitables.
// ---------------------------------------------------------------------------

struct DelayAwaiter {
  Kernel& kernel;
  Tick dt;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    kernel.schedule(dt, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}
};

/// co_await delay(kernel, dt): resume dt ticks later (dt==0 yields).
inline DelayAwaiter delay(Kernel& k, Tick dt) { return DelayAwaiter{k, dt}; }

struct SeqDelayAwaiter {
  Kernel& kernel;
  Tick when;           // absolute
  std::uint64_t seq;   // reserved via Kernel::reserve_seqs
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    kernel.schedule_at_seq(when, seq, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}
};

/// co_await seq_delay(kernel, when, seq): resume at absolute time `when`
/// under a pre-reserved dispatch sequence number. The slow path of a
/// fast-path-capable operation uses this for every timed phase, so the
/// phase occupies exactly the dispatch-order slot that was reserved at the
/// operation's entry — the mechanism behind fast/slow bit-identity
/// (DESIGN.md §12).
inline SeqDelayAwaiter seq_delay(Kernel& k, Tick when, std::uint64_t seq) {
  return SeqDelayAwaiter{k, when, seq};
}

// ---------------------------------------------------------------------------
// OneShot: sticky one-shot broadcast.
// ---------------------------------------------------------------------------

class OneShot {
 public:
  explicit OneShot(Kernel& k) : kernel_(&k) {}

  void fire() {
    if (fired_) {
      return;
    }
    fired_ = true;
    wake_all();
  }

  [[nodiscard]] bool fired() const { return fired_; }

  auto operator co_await() noexcept {
    struct Awaiter {
      OneShot* self;
      bool await_ready() const noexcept { return self->fired_; }
      void await_suspend(std::coroutine_handle<> h) {
        self->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  void wake_all() {
    auto ws = std::move(waiters_);
    waiters_.clear();
    for (auto h : ws) {
      kernel_->schedule(0, [h] { h.resume(); });
    }
  }

  Kernel* kernel_;
  bool fired_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

// ---------------------------------------------------------------------------
// Signal: recurring broadcast. Waiters see only pulses after they wait.
// ---------------------------------------------------------------------------

class Signal {
 public:
  explicit Signal(Kernel& k) : kernel_(&k) {}

  void pulse() {
    // Swap through a scratch vector instead of moving-and-destroying, so
    // both buffers' capacity survives and the steady pulse/wait cycle
    // allocates nothing (tests/alloc_hook_test.cpp). Waiters registered by
    // the resumed coroutines land in the (empty) waiters_ and only see
    // later pulses, as before.
    scratch_.clear();
    waiters_.swap(scratch_);
    for (auto h : scratch_) {
      kernel_->schedule(0, [h] { h.resume(); });
    }
  }

  auto operator co_await() noexcept {
    struct Awaiter {
      Signal* self;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        self->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  /// Wait until `pred()` holds, re-checking on every pulse.
  template <typename Pred>
  Co<void> until(Pred pred) {
    while (!pred()) {
      co_await *this;
    }
  }

 private:
  Kernel* kernel_;
  std::vector<std::coroutine_handle<>> waiters_;
  std::vector<std::coroutine_handle<>> scratch_;  // recycled by pulse()
};

// ---------------------------------------------------------------------------
// Future / Promise: one-shot value handoff with shared state.
// ---------------------------------------------------------------------------

namespace detail {
template <typename T>
struct FutureState {
  explicit FutureState(Kernel& k) : event(k) {}
  OneShot event;
  std::optional<T> value;
};
}  // namespace detail

template <typename T>
class Future {
 public:
  explicit Future(std::shared_ptr<detail::FutureState<T>> st)
      : state_(std::move(st)) {}

  [[nodiscard]] bool ready() const { return state_->event.fired(); }

  /// co_await fut: suspends until the value is set, then returns a copy of
  /// it (futures may be awaited by multiple consumers).
  Co<T> get() {
    co_await state_->event;
    co_return *state_->value;
  }

 private:
  std::shared_ptr<detail::FutureState<T>> state_;
};

template <typename T>
class Promise {
 public:
  explicit Promise(Kernel& k)
      : state_(std::make_shared<detail::FutureState<T>>(k)) {}

  [[nodiscard]] Future<T> get_future() const { return Future<T>(state_); }

  void set_value(T v) {
    assert(!state_->event.fired() && "Promise set twice");
    state_->value.emplace(std::move(v));
    state_->event.fire();
  }

 private:
  std::shared_ptr<detail::FutureState<T>> state_;
};

// ---------------------------------------------------------------------------
// Channel<T>: unbounded FIFO with awaitable pop.
// ---------------------------------------------------------------------------

template <typename T>
class Channel {
 public:
  explicit Channel(Kernel& k) : kernel_(&k) {}

  void push(T v) {
    if (!waiters_.empty()) {
      // Direct handoff: fill the oldest waiter's slot and wake it. The item
      // never touches the queue, so a concurrently-ready popper cannot
      // steal it between wake and resume.
      Waiter* w = waiters_.front();
      waiters_.pop_front();
      w->slot.emplace(std::move(v));
      kernel_->schedule(0, [h = w->handle] { h.resume(); });
      return;
    }
    items_.push_back(std::move(v));
  }

  /// Awaitable pop: returns immediately if an item is queued, else suspends.
  auto pop() noexcept {
    struct Awaiter : Waiter {
      Channel* self;
      explicit Awaiter(Channel* c) : self(c) {}
      bool await_ready() {
        if (!self->items_.empty()) {
          this->slot.emplace(std::move(self->items_.front()));
          self->items_.pop_front();
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        this->handle = h;
        self->waiters_.push_back(this);
      }
      T await_resume() { return std::move(*this->slot); }
    };
    return Awaiter{this};
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    if (items_.empty()) {
      return std::nullopt;
    }
    T v = std::move(items_.front());
    items_.pop_front();
    return v;
  }

  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] std::size_t waiter_count() const { return waiters_.size(); }

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    std::optional<T> slot;
  };

  Kernel* kernel_;
  std::deque<T> items_;
  std::deque<Waiter*> waiters_;
};

// ---------------------------------------------------------------------------
// WaitGroup: await completion of a dynamic set of detached coroutines.
// ---------------------------------------------------------------------------

/// Counter of in-flight detached tasks with an awaitable join. add() before
/// spawning each task, done() as its last act, wait() to suspend until the
/// count returns to zero. Unlike OneShot it is reusable: the count may grow
/// again after a successful wait. The app runtime uses one per process to
/// guarantee every nonblocking operation has completed before the process
/// reports done.
class WaitGroup {
 public:
  explicit WaitGroup(Kernel& k) : sig_(k) {}

  void add(std::size_t n = 1) { count_ += n; }

  void done() {
    assert(count_ > 0 && "WaitGroup::done without matching add");
    if (--count_ == 0) {
      sig_.pulse();
    }
  }

  [[nodiscard]] std::size_t pending() const { return count_; }

  Co<void> wait() {
    while (count_ > 0) {
      co_await sig_;
    }
  }

 private:
  Signal sig_;
  std::size_t count_ = 0;
};

// ---------------------------------------------------------------------------
// Semaphore.
// ---------------------------------------------------------------------------

class Semaphore {
 public:
  Semaphore(Kernel& k, std::size_t initial) : kernel_(&k), count_(initial) {}

  auto acquire() noexcept {
    struct Awaiter {
      Semaphore* self;
      bool await_ready() const {
        if (self->count_ > 0) {
          --self->count_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        self->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  /// Synchronous acquire attempt — succeeds exactly when the awaitable
  /// acquire() would have completed without suspending. Fast paths use it
  /// to take a permit they have already proven free; on revocation the
  /// permit is handed back with release(), which with no waiters (the only
  /// state a fast path can be granted in) is side-effect-free.
  bool try_acquire() {
    if (count_ > 0) {
      --count_;
      return true;
    }
    return false;
  }

  void release() {
    if (!waiters_.empty()) {
      // Direct handoff: the permit goes straight to the oldest waiter.
      auto h = waiters_.front();
      waiters_.pop_front();
      kernel_->schedule(0, [h] { h.resume(); });
      return;
    }
    ++count_;
  }

  [[nodiscard]] std::size_t available() const { return count_; }

 private:
  Kernel* kernel_;
  std::size_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

}  // namespace sv::sim

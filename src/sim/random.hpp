// Deterministic pseudo-random number generation (xoshiro256**) so every
// simulation run is exactly reproducible from its seed.
#pragma once

#include <cstdint>

namespace sv::sim {

class Rng {
 public:
  static constexpr std::uint64_t kDefaultSeed = 0x57AE2701B0A9E5ULL;

  explicit Rng(std::uint64_t seed = kDefaultSeed) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be nonzero.
  std::uint64_t below(std::uint64_t bound) {
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool chance(double p) { return uniform() < p; }

  /// Raw xoshiro state, for checkpointing: a restored stream continues the
  /// exact draw sequence of the saved one (DESIGN.md §14).
  struct State {
    std::uint64_t s[4];
  };
  [[nodiscard]] State state() const {
    return {{state_[0], state_[1], state_[2], state_[3]}};
  }
  void set_state(const State& st) {
    for (int i = 0; i < 4; ++i) {
      state_[i] = st.s[i];
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace sv::sim

// Global fast-path kill switch.
//
// Fast paths (DESIGN.md §12) are on by default; SV_NO_FASTPATH=1 in the
// environment forces every Params.fastpath default to false, which is the
// escape hatch the byte-identity tests and the golden corpus use to compare
// modes. Components read the environment once — per-run toggling goes
// through the explicit Params flags, not the environment.
#pragma once

#include <cstdlib>

namespace sv::sim {

/// Default value for every fast-path Params flag: true unless
/// SV_NO_FASTPATH is set to a non-empty value other than "0".
inline bool fastpath_default() {
  static const bool enabled = [] {
    const char* v = std::getenv("SV_NO_FASTPATH");
    return v == nullptr || v[0] == '\0' || (v[0] == '0' && v[1] == '\0');
  }();
  return enabled;
}

}  // namespace sv::sim

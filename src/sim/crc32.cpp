#include "sim/crc32.hpp"

#include <array>

namespace sv::sim {
namespace {

constexpr std::uint32_t kPoly = 0xEDB88320u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? kPoly ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32(std::span<const std::byte> data, std::uint32_t crc) {
  crc = ~crc;
  for (const std::byte b : data) {
    crc = kTable[(crc ^ static_cast<std::uint32_t>(b)) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace sv::sim

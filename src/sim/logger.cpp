#include "sim/logger.hpp"

#include <cstdio>
#include <map>

#include "sim/kernel.hpp"

namespace sv::sim {

namespace {

LogLevel g_global_level = LogLevel::kWarn;
std::map<std::string, LogLevel>& overrides() {
  static std::map<std::string, LogLevel> m;
  return m;
}

}  // namespace

LogLevel LogConfig::global_level() { return g_global_level; }

void LogConfig::set_global_level(LogLevel lvl) { g_global_level = lvl; }

void LogConfig::set_component_level(const std::string& component,
                                    LogLevel lvl) {
  overrides()[component] = lvl;
}

LogLevel LogConfig::level_for(const std::string& component) {
  auto it = overrides().find(component);
  return it != overrides().end() ? it->second : g_global_level;
}

void LogConfig::reset() {
  g_global_level = LogLevel::kWarn;
  overrides().clear();
}

Logger::Logger(const Kernel& kernel, std::string component)
    : kernel_(&kernel), component_(std::move(component)) {}

bool Logger::enabled(LogLevel lvl) const {
  return static_cast<int>(lvl) >=
         static_cast<int>(LogConfig::level_for(component_));
}

void Logger::emit(LogLevel lvl, const std::string& message) const {
  std::fprintf(stderr, "[%12llu ps] %-5.5s %-18.18s %s\n",
               static_cast<unsigned long long>(kernel_->now()),
               std::string(to_string(lvl)).c_str(), component_.c_str(),
               message.c_str());
}

std::string_view to_string(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace sv::sim

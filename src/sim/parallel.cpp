#include "sim/parallel.hpp"

#include <algorithm>
#include <stdexcept>

namespace sv::sim {

ParallelKernel::ParallelKernel(std::vector<Kernel*> domains, unsigned threads,
                               Tick lookahead)
    : domains_(std::move(domains)), lookahead_(lookahead) {
  if (domains_.empty()) {
    throw std::invalid_argument("ParallelKernel: no domains");
  }
  if (lookahead_ == 0) {
    throw std::invalid_argument("ParallelKernel: lookahead must be >= 1");
  }
  active_.reserve(domains_.size());
  woken_.reserve(domains_.size());
  for (std::size_t d = 0; d < domains_.size(); ++d) {
    domains_[d]->set_deferred_mailbox(true);
    domains_[d]->set_post_notify([this, d] {
      // At most one firing per domain per epoch (the staged buffer only
      // empties at a barrier), so the wake list needs no deduplication.
      const std::lock_guard<std::mutex> lock(wake_mu_);
      woken_.push_back(d);
    });
    // Everyone starts active: nodes schedule their service loops during
    // construction, and a truly idle domain parks after the first epoch.
    active_.push_back(d);
  }
  const unsigned n = std::clamp<unsigned>(
      threads, 1U, static_cast<unsigned>(domains_.size()));
  workers_.reserve(n);
  for (unsigned id = 0; id < n; ++id) {
    workers_.emplace_back([this, id] { worker_main(id); });
  }
}

ParallelKernel::~ParallelKernel() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ParallelKernel::worker_main(unsigned id) {
  std::uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) {
        return;
      }
      seen = generation_;
    }
    // Outside the lock: workers partition the active list by the fixed
    // rule "domain d runs on worker d % threads" — the same assignment
    // the run-everything scheme used, so any per-thread effect stays
    // reproducible — and active_/epoch_end_ were published under mu_
    // before generation_ bumped.
    std::exception_ptr err;
    try {
      const std::size_t stride = workers_.size();
      for (const std::size_t d : active_) {
        if (d % stride == id) {
          domains_[d]->run_until(epoch_end_);
        }
      }
    } catch (...) {
      err = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (err && !error_) {
        error_ = err;
      }
      if (--running_ == 0) {
        done_cv_.notify_one();
      }
    }
  }
}

void ParallelKernel::run_epoch() {
  epoch_end_ = epoch_start_ + lookahead_ - 1;
  {
    std::unique_lock<std::mutex> lock(mu_);
    running_ = static_cast<unsigned>(workers_.size());
    ++generation_;
    start_cv_.notify_all();
    done_cv_.wait(lock, [&] { return running_ == 0; });
    if (error_) {
      auto err = error_;
      error_ = nullptr;
      std::rethrow_exception(err);
    }
  }
  // All workers are parked (the wait above is the happens-before edge), so
  // the coordinator may touch every domain. Only domains that ran this
  // epoch or received mail can have changed state: commit exactly those
  // mailboxes and rebuild the active list from them — O(active + woken),
  // never O(domains).
  std::vector<std::size_t> woken;
  {
    const std::lock_guard<std::mutex> lock(wake_mu_);
    woken.swap(woken_);
  }
  std::sort(woken.begin(), woken.end());

  std::vector<std::size_t> next;
  next.reserve(active_.size() + woken.size());
  auto a = active_.begin();
  auto w = woken.begin();
  const auto visit = [&](std::size_t d) {
    domains_[d]->commit_mailbox();
    if (!domains_[d]->idle()) {
      next.push_back(d);
    }
  };
  while (a != active_.end() || w != woken.end()) {
    if (w == woken.end() || (a != active_.end() && *a <= *w)) {
      if (w != woken.end() && *w == *a) {
        ++w;  // active domain that also got mail: visit once
      }
      visit(*a++);
    } else {
      visit(*w++);
    }
  }
  active_.swap(next);

  now_ = epoch_end_;
  epoch_start_ += lookahead_;
}

void ParallelKernel::quiesce() {
  for (Kernel* d : domains_) {
    if (d->now() < now_) {
      // Parked domains are idle by construction, so this only advances
      // the clock and the event wheel — no events can run.
      d->run_until(now_);
    }
  }
}

bool ParallelKernel::run_epochs_until(const std::function<bool()>& pred,
                                      Tick deadline) {
  // Between calls, callers may have scheduled work directly onto a parked
  // domain's kernel (drivers starting coroutines do exactly that) — the
  // post-notify hook only covers cross-domain post(). One O(domains)
  // rescan per call (not per epoch) re-admits them; mid-run, parked
  // domains are only ever reachable via post(), which the hook covers.
  active_.clear();
  for (std::size_t d = 0; d < domains_.size(); ++d) {
    if (!domains_[d]->idle()) {
      active_.push_back(d);
    }
  }
  const auto finish = [this](bool result) {
    quiesce();
    return result;
  };
  if (pred()) {
    return finish(true);
  }
  while (epoch_start_ <= deadline) {
    run_epoch();
    if (pred()) {
      return finish(true);
    }
    if (idle()) {
      return finish(false);
    }
  }
  return finish(false);
}

}  // namespace sv::sim

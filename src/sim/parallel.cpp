#include "sim/parallel.hpp"

#include <algorithm>
#include <stdexcept>

namespace sv::sim {

ParallelKernel::ParallelKernel(std::vector<Kernel*> domains, unsigned threads,
                               Tick lookahead)
    : domains_(std::move(domains)), lookahead_(lookahead) {
  if (domains_.empty()) {
    throw std::invalid_argument("ParallelKernel: no domains");
  }
  if (lookahead_ == 0) {
    throw std::invalid_argument("ParallelKernel: lookahead must be >= 1");
  }
  for (Kernel* d : domains_) {
    d->set_deferred_mailbox(true);
  }
  const unsigned n = std::clamp<unsigned>(
      threads, 1U, static_cast<unsigned>(domains_.size()));
  workers_.reserve(n);
  for (unsigned id = 0; id < n; ++id) {
    workers_.emplace_back([this, id] { worker_main(id); });
  }
}

ParallelKernel::~ParallelKernel() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ParallelKernel::worker_main(unsigned id) {
  std::uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) {
        return;
      }
      seen = generation_;
    }
    // Outside the lock: each worker owns a fixed, disjoint set of domains,
    // and the bound was published under mu_ before generation_ bumped.
    std::exception_ptr err;
    try {
      const std::size_t stride = workers_.size();
      for (std::size_t d = id; d < domains_.size(); d += stride) {
        domains_[d]->run_until(epoch_end_);
      }
    } catch (...) {
      err = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (err && !error_) {
        error_ = err;
      }
      if (--running_ == 0) {
        done_cv_.notify_one();
      }
    }
  }
}

void ParallelKernel::run_epoch() {
  epoch_end_ = epoch_start_ + lookahead_ - 1;
  {
    std::unique_lock<std::mutex> lock(mu_);
    running_ = static_cast<unsigned>(workers_.size());
    ++generation_;
    start_cv_.notify_all();
    done_cv_.wait(lock, [&] { return running_ == 0; });
    if (error_) {
      auto err = error_;
      error_ = nullptr;
      std::rethrow_exception(err);
    }
  }
  // All workers are parked (the wait above is the happens-before edge), so
  // the coordinator may touch every domain.
  for (Kernel* d : domains_) {
    d->commit_mailbox();
  }
  now_ = epoch_end_;
  epoch_start_ += lookahead_;
}

bool ParallelKernel::idle() const {
  return std::all_of(domains_.begin(), domains_.end(),
                     [](const Kernel* d) { return d->idle(); });
}

bool ParallelKernel::run_epochs_until(const std::function<bool()>& pred,
                                      Tick deadline) {
  if (pred()) {
    return true;
  }
  while (epoch_start_ <= deadline) {
    run_epoch();
    if (pred()) {
      return true;
    }
    if (idle()) {
      return false;
    }
  }
  return false;
}

}  // namespace sv::sim
